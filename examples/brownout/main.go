// Brownout: failure injection. The paper closes §5.3 warning that "we must
// be careful to evaluate the impact of future technological changes on our
// results" — this example evaluates the impact of *degraded* technology: a
// two-hour backbone brownout (5% capacity) in the middle of the workload.
//
// It compares how the coupled baseline and the decoupled winner absorb the
// failure, and renders the grid-occupancy timeline around it.
//
// Run with:
//
//	go run ./examples/brownout
package main

import (
	"fmt"
	"log"
	"os"

	"chicsim/internal/core"
	"chicsim/internal/report"
)

func main() {
	base := core.DefaultConfig()
	base.TotalJobs = 3000
	base.SampleInterval = 120
	brownout := core.Degradation{At: 3000, Duration: 7200, Multiplier: 0.05, BackboneOnly: true}

	type row struct {
		name    string
		healthy core.Results
		hurt    core.Results
	}
	var rows []row
	for _, pair := range [][2]string{
		{"JobLocal", "DataDoNothing"},
		{"JobDataPresent", "DataLeastLoaded"},
	} {
		cfg := base
		cfg.ES, cfg.DS = pair[0], pair[1]
		healthy, err := core.RunConfig(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Degradations = []core.Degradation{brownout}
		hurt, err := core.RunConfig(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{pair[0] + "+" + pair[1], healthy, hurt})
	}

	fmt.Println("backbone brownout: t=3000 s, 7200 s at 5% capacity")
	fmt.Printf("%-36s %12s %12s %10s\n", "policy pair", "healthy (s)", "brownout (s)", "slowdown")
	for _, r := range rows {
		fmt.Printf("%-36s %12.1f %12.1f %9.2fx\n",
			r.name, r.healthy.AvgResponseSec, r.hurt.AvgResponseSec,
			r.hurt.AvgResponseSec/r.healthy.AvgResponseSec)
	}

	fmt.Println("\ndecoupled grid during the brownout (occupancy barely dips —")
	fmt.Println("jobs already run where their data lives):")
	report.Timeline(os.Stdout, rows[1].hurt.Samples, 100)
	fmt.Println("\ncoupled grid during the brownout (starves while transfers crawl):")
	report.Timeline(os.Stdout, rows[0].hurt.Samples, 100)
}
