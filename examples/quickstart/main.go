// Quickstart: build the paper's Table 1 Data Grid, run the winning
// algorithm pair (JobDataPresent + DataLeastLoaded), and compare it against
// the naive coupled baseline (JobLeastLoaded + DataDoNothing).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chicsim/internal/core"
)

func main() {
	cfg := core.DefaultConfig() // 30 sites, 120 users, 200 datasets, 6000 jobs

	fmt.Println("running decoupled scheduling: JobDataPresent + DataLeastLoaded ...")
	cfg.ES, cfg.DS = "JobDataPresent", "DataLeastLoaded"
	decoupled, err := core.RunConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running coupled baseline:     JobLeastLoaded + DataDoNothing ...")
	cfg.ES, cfg.DS = "JobLeastLoaded", "DataDoNothing"
	coupled, err := core.RunConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, r core.Results) {
		fmt.Printf("%-12s response %7.1f s/job   data %7.1f MB/job   idle %5.1f%%   makespan %8.0f s\n",
			name, r.AvgResponseSec, r.AvgDataPerJobMB, 100*r.IdleFrac, r.Makespan)
	}
	fmt.Println()
	show("decoupled:", decoupled)
	show("coupled:", coupled)
	fmt.Printf("\ndecoupling computation from data placement cut response time %.1fx\n",
		coupled.AvgResponseSec/decoupled.AvgResponseSec)
	fmt.Printf("and moved %.0fx less data per job.\n",
		coupled.AvgDataPerJobMB/decoupled.AvgDataPerJobMB)
}
