// Feedback scheduling: closing the loop that the paper's static
// algorithms leave open. The External Scheduler in the paper ranks sites
// on whatever the GIS last published; when that snapshot is stale (the
// contended-grid regime, InfoStaleness ≫ job interarrival), every ES
// instance herds jobs onto the site that *looked* idle two minutes ago.
//
// JobFeedback+DataFeedback subscribe to live telemetry instead: smoothed
// queue trends, per-link congestion backlog, GIS snapshot age, and fault
// history. This example runs the static paper pair and the adaptive pair
// side by side on the same contended grid and prints both, plus the
// degraded-grid (site crashes) comparison.
//
// Run with:
//
//	go run ./examples/feedback
package main

import (
	"fmt"
	"log"

	"chicsim/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.TotalJobs = 3000 // half workload: this comparison runs 4 simulations
	cfg.InfoStaleness = 120
	cfg.Faults.SiteCrash.MTTR = 600
	cfg.Faults.RequeueOnRecovery = true
	cfg.Faults.RestoreReplicas = true

	pairs := []struct{ es, ds string }{
		{"JobDataPresent", "DataLeastLoaded"}, // paper's best static pair
		{"JobFeedback", "DataFeedback"},       // adaptive pair
	}
	scenarios := []struct {
		name string
		mtbf float64
	}{
		{"contended (staleness 120s)", 0},
		{"degraded (+crashes, MTBF 1h)", 3600},
	}

	fmt.Printf("%-32s %26s %26s\n", "scenario", "JobDataPresent+DataLL", "JobFeedback+DataFeedback")
	for _, sc := range scenarios {
		fmt.Printf("%-32s", sc.name)
		for _, p := range pairs {
			c := cfg
			c.ES = p.es
			c.DS = p.ds
			c.Faults.SiteCrash.MTBF = sc.mtbf
			res, err := core.RunConfig(c)
			if err != nil {
				log.Fatalf("%s+%s: %v", p.es, p.ds, err)
			}
			fmt.Printf(" %20.1f s avg", res.AvgResponseSec)
		}
		fmt.Println()
	}
	fmt.Println("\nThe adaptive pair discounts stale GIS loads toward its own EWMA")
	fmt.Println("prediction, spreads bursts that static policies pile onto one site,")
	fmt.Println("and steers replicas away from congested links and flaky sites.")
}
