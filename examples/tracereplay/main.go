// Trace replay: generate a workload trace, persist it, and replay the same
// trace under different scheduling policies — the workflow the paper plans
// for real Fermilab access patterns ("we are currently working on using
// workloads from Fermi Laboratory").
//
// Replaying one fixed trace removes workload noise from a policy
// comparison: every policy sees byte-identical job streams.
//
// Run with:
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"chicsim/internal/core"
	"chicsim/internal/rng"
	"chicsim/internal/workload"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Sites = 15
	cfg.RegionFanout = 5
	cfg.Users = 45
	cfg.TotalJobs = 1500
	cfg.Files = 120

	// 1. Generate a workload and write it to disk as a JSON-lines trace.
	wl, err := workload.Generate(cfg.WorkloadSpec(), rng.New(7))
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "chicsim-trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := wl.WriteTrace(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("wrote %d-job trace to %s\n\n", wl.TotalJobs(), path)

	// 2. Reload it, as an external tool would.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	replay, err := workload.ReadTrace(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Replay the identical trace under three policies.
	fmt.Printf("%-36s %14s %14s\n", "policy pair", "response (s)", "data (MB/job)")
	for _, pair := range [][2]string{
		{"JobLeastLoaded", "DataDoNothing"},
		{"JobLocal", "DataDoNothing"},
		{"JobDataPresent", "DataLeastLoaded"},
	} {
		c := cfg
		c.ES, c.DS = pair[0], pair[1]
		c.Trace = replay
		res, err := core.RunConfig(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s %14.1f %14.1f\n", pair[0]+" + "+pair[1], res.AvgResponseSec, res.AvgDataPerJobMB)
	}
	fmt.Println("\nevery policy replayed the byte-identical job stream from the trace.")
}
