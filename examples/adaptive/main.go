// Adaptive scheduling: the paper's future-work proposal (§5.3) — "slow
// links and large datasets might imply scheduling the jobs at the data
// source ... if the data is small and network links are not congested,
// moving the data to the job source ... might be viable alternatives."
//
// This example sweeps link bandwidth from 5 to 200 MB/s and shows the
// JobAdaptive extension tracking whichever fixed policy (JobLocal or
// JobDataPresent) is better at each point.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"chicsim/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.TotalJobs = 3000 // half workload: this sweep runs 15 simulations
	cfg.DS = "DataLeastLoaded"

	bws := []float64{5, 10, 25, 50, 200}
	fmt.Printf("%-10s %14s %14s %14s\n", "bandwidth", "JobLocal", "JobDataPresent", "JobAdaptive")
	for _, bw := range bws {
		row := make(map[string]float64)
		for _, esName := range []string{"JobLocal", "JobDataPresent", "JobAdaptive"} {
			c := cfg
			c.BandwidthMBps = bw
			c.ES = esName
			res, err := core.RunConfig(c)
			if err != nil {
				log.Fatalf("%s@%g: %v", esName, bw, err)
			}
			row[esName] = res.AvgResponseSec
		}
		fmt.Printf("%7.0fMB/s %14.1f %14.1f %14.1f\n",
			bw, row["JobLocal"], row["JobDataPresent"], row["JobAdaptive"])
	}
	fmt.Println("\nJobAdaptive pulls small/cheap inputs to the user's site and follows")
	fmt.Println("the data when the pull would dominate the job's runtime, staying near")
	fmt.Println("the better fixed policy on both sides of the crossover.")
}
