// Deep-tier grid: the GriPhyN project the paper cites envisioned a
// four-tier hierarchy (CERN → regional centers → institutions →
// workstation pools) with progressively thinner links and uneven hardware.
// This example builds that grid — 24 sites at depth 3, tier bandwidths
// 100/20/5 MB/s, ±40% processor speeds — and checks whether the paper's
// headline result survives the deeper, messier topology.
//
// Run with:
//
//	go run ./examples/deeptier
package main

import (
	"fmt"
	"log"

	"chicsim/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Sites = 24
	cfg.Tiers = []int{2, 3, 4} // 1 root, 2 regions, 6 institutions, 24 sites
	cfg.TierBandwidthsMBps = []float64{100, 20, 5}
	cfg.Users = 96
	cfg.TotalJobs = 4800
	cfg.CPUSpreadFrac = 0.4

	fmt.Println("four-tier GriPhyN grid: 24 sites, tier links 100/20/5 MB/s, ±40% CPU speeds")
	fmt.Printf("%-36s %14s %14s %10s %12s\n", "policy pair", "response (s)", "data (MB/job)", "idle (%)", "job Gini")
	for _, pair := range [][2]string{
		{"JobLocal", "DataDoNothing"},
		{"JobLeastLoaded", "DataDoNothing"},
		{"JobDataPresent", "DataDoNothing"},
		{"JobDataPresent", "DataLeastLoaded"},
		{"JobRegional", "DataLeastLoaded"},
	} {
		c := cfg
		c.ES, c.DS = pair[0], pair[1]
		res, err := core.RunConfig(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s %14.1f %14.1f %10.1f %12.3f\n",
			pair[0]+" + "+pair[1], res.AvgResponseSec, res.AvgDataPerJobMB,
			100*res.IdleFrac, res.SiteJobGini)
	}
	fmt.Println("\nthe decoupled pair keeps its lead even four tiers deep: thin leaf")
	fmt.Println("links make data movement costlier, which favors moving jobs instead.")
}
