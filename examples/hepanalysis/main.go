// HEP analysis scenario: the paper's motivating workload — a community of
// physicists analyzing CMS-scale event datasets. A small set of "golden"
// datasets dominates requests (tight geometric popularity), files are
// large (1–2 GB), and analysis is CPU-heavy.
//
// The example sweeps all four External Scheduler algorithms under
// asynchronous replication and prints a ranking, demonstrating how to use
// the experiments harness for a custom study.
//
// Run with:
//
//	go run ./examples/hepanalysis
package main

import (
	"fmt"
	"log"
	"sort"

	"chicsim/internal/core"
	"chicsim/internal/experiments"
)

func main() {
	cfg := core.DefaultConfig()
	// A 12-institute virtual organization, 4 physicists each, working a
	// tight golden-dataset set with long analysis jobs.
	cfg.Sites = 12
	cfg.RegionFanout = 4
	cfg.Users = 48
	cfg.Files = 100
	cfg.TotalJobs = 2400
	cfg.MinFileGB = 1.0
	cfg.MaxFileGB = 2.0
	cfg.GeomP = 0.15       // popularity concentrated in ~20 datasets
	cfg.ComputePerGB = 600 // reconstruction-heavy analysis
	cfg.StorageGB = 20     // institutional disk caches
	cfg.DS = "DataLeastLoaded"

	var cells []experiments.Cell
	for _, esName := range core.PaperExternalNames() {
		cells = append(cells, experiments.Cell{ES: esName, DS: cfg.DS, BandwidthMBps: cfg.BandwidthMBps})
	}
	fmt.Printf("HEP VO: %d institutes, %d physicists, %d golden datasets, %d analysis jobs\n\n",
		cfg.Sites, cfg.Users, cfg.Files, cfg.TotalJobs)
	results := experiments.Run(experiments.Campaign{Base: cfg, Cells: cells, Seeds: []uint64{1, 2, 3}})

	sort.Slice(results, func(i, j int) bool { return results[i].AvgResponseSec < results[j].AvgResponseSec })
	fmt.Printf("%-18s %14s %14s %10s\n", "scheduler", "response (s)", "data (MB/job)", "idle (%)")
	for _, cr := range results {
		if cr.Err != nil {
			log.Fatalf("%v: %v", cr.Cell, cr.Err)
		}
		fmt.Printf("%-18s %14.1f %14.1f %10.1f\n",
			cr.Cell.ES, cr.AvgResponseSec, cr.AvgDataPerJobMB, 100*cr.AvgIdleFrac)
	}
	fmt.Println("\njobs-to-data placement plus replication keeps physicists' turnaround")
	fmt.Println("low while the WAN carries only replica pushes, not per-job staging.")
}
