// Package desim provides a deterministic discrete-event simulation engine.
//
// It replaces Parsec, the C-based simulation language the original ChicSim
// was built on, and provides the virtual clock on which every other
// simulator component runs. Events are callbacks scheduled at a virtual
// time; ties are broken by scheduling order, so a simulation driven by a
// seeded random source is exactly reproducible.
//
// # Kernel internals
//
// The queue is an inlined 4-ary heap of pooled event nodes ordered by
// (time, sequence) — a strict deterministic total order. Cancellation is
// lazy: Cancel marks the node and the queue drains it on pop (or in a
// batched compaction once dead nodes dominate), so the cancel-heavy flow
// matrix costs O(1) per cancel instead of an O(log n) removal. Nodes are
// recycled through a free list, making steady-state scheduling and
// stepping allocation-free. See DESIGN.md §13 for the invariants.
package desim

import (
	"fmt"
	"math"
)

// Time is virtual simulation time in seconds.
type Time = float64

// node is the pooled internal representation of one scheduled callback.
// Nodes are recycled through the engine's free list; gen counts reuses so
// stale Event handles can be detected.
type node struct {
	at       Time
	seq      uint64
	gen      uint64
	index    int32 // position in the heap; -1 once popped or pooled
	canceled bool
	fired    bool
	fn       func()
}

// Event is a handle to a scheduled callback. It can be cancelled before it
// fires via Engine.Cancel, or moved via Engine.Reschedule. The zero Event
// means "no event" and is safe to Cancel (a no-op).
//
// Handles stay valid after the event fires or is cancelled: Cancel remains
// a guaranteed no-op and Fired/Canceled keep reporting the outcome — until
// the engine recycles the underlying node for a later Schedule, after
// which the stale handle still cancels nothing (a generation check makes
// that unconditional) but Fired/Canceled report the generic
// lifecycle-over outcome (true, false) rather than the recorded one.
type Event struct {
	n   *node
	gen uint64
}

// IsZero reports whether the handle is the zero "no event" value.
func (ev Event) IsZero() bool { return ev.n == nil }

// live reports whether the handle still refers to the node's current
// occupant (scheduled, fired, or cancelled — but not yet recycled).
func (ev Event) live() bool { return ev.n != nil && ev.n.gen == ev.gen }

// At returns the virtual time the event is scheduled (or last fired).
// Unspecified for zero or recycled handles.
func (ev Event) At() Time {
	if !ev.live() {
		return math.NaN()
	}
	return ev.n.at
}

// Canceled reports whether the event was cancelled before it fired. An
// event that already executed stays Canceled() == false even if Cancel is
// called on it afterwards.
func (ev Event) Canceled() bool { return ev.live() && ev.n.canceled }

// Fired reports whether the event's callback has executed.
func (ev Event) Fired() bool {
	if ev.n == nil {
		return false
	}
	if ev.n.gen != ev.gen {
		// Node recycled: this event's lifecycle is over. Cancelled events
		// are overwhelmingly drained long before reuse, so report the
		// common outcome.
		return true
	}
	return ev.n.fired
}

// Engine is a discrete-event simulation engine. The zero value is ready to
// use. Engine is not safe for concurrent use: a simulation is a single
// logical thread of control (parallelism in this codebase lives one level
// up, across independent simulations).
type Engine struct {
	now     Time
	queue   []*node // 4-ary min-heap on (at, seq)
	seq     uint64
	fired   uint64
	live    int     // scheduled, neither cancelled nor fired
	dead    int     // cancelled nodes still awaiting drain from the queue
	free    []*node // recycled nodes
	stopped bool
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful in tests and
// for progress accounting).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the exact number of live scheduled events. Cancelled
// events still awaiting their lazy drain from the queue are not counted.
func (e *Engine) Pending() int { return e.live }

// Schedule registers fn to run after delay seconds of virtual time.
// A negative or NaN delay is an error in the caller; Schedule panics to
// surface the bug instead of silently reordering time.
func (e *Engine) Schedule(delay Time, fn func()) Event {
	if math.IsNaN(delay) || delay < 0 {
		panic(fmt.Sprintf("desim: Schedule with invalid delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At registers fn to run at absolute virtual time t, which must not be in
// the past.
func (e *Engine) At(t Time, fn func()) Event {
	if math.IsNaN(t) || t < e.now {
		panic(fmt.Sprintf("desim: At with time %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("desim: At with nil callback")
	}
	n := e.alloc()
	n.at = t
	n.seq = e.seq
	n.fn = fn
	e.seq++
	e.push(n)
	e.live++
	return Event{n: n, gen: n.gen}
}

// Reschedule moves a pending event to fire after delay seconds of virtual
// time, assigning it a fresh sequence number — exactly as if it had been
// cancelled and scheduled anew, but without the queue churn. netsim's
// reflow leans on the equivalence: rescheduling every completion event in
// admission order consumes sequence numbers identically to the
// cancel+schedule pattern it replaced, which keeps the (time, seq) event
// order — and therefore simulation Results — byte-identical. Rescheduling
// an event that fired, was cancelled, or whose node was recycled is a
// caller bug and panics.
func (e *Engine) Reschedule(ev Event, delay Time) {
	if math.IsNaN(delay) || delay < 0 {
		panic(fmt.Sprintf("desim: Reschedule with invalid delay %v", delay))
	}
	n := ev.n
	if n == nil || n.gen != ev.gen || n.canceled || n.fired || n.index < 0 {
		panic("desim: Reschedule of a dead or stale event")
	}
	n.at = e.now + delay
	n.seq = e.seq
	e.seq++
	// The new seq is the largest in the queue, so among equal times the
	// node sinks to the back — the same slot a fresh Schedule would take.
	if !e.siftDown(int(n.index)) {
		e.siftUp(int(n.index))
	}
}

// Cancel prevents a scheduled event from firing. Cancelling a zero handle,
// or an event that already fired or was already cancelled, is a harmless
// no-op; in particular, cancelling a fired event does not retroactively
// mark it Canceled. Because events at equal time execute in scheduling
// (seq) order, whether a cancel issued from event A reaches a
// same-timestamp event B before B fires is fully determined by their seq
// order — there is no race, and the outcome is identical on every run.
//
// Cancellation is lazy: the node stays queued, marked dead, and is
// dropped when it reaches the top (or in a batched compaction once dead
// nodes outnumber live ones), so Cancel itself is O(1).
func (e *Engine) Cancel(ev Event) {
	n := ev.n
	if n == nil || n.gen != ev.gen || n.canceled || n.fired {
		return
	}
	n.canceled = true
	e.live--
	if n.index < 0 {
		// A live event is always queued (At pushes, Step marks fired
		// before running the callback); release defensively rather than
		// leak if that invariant ever breaks.
		e.release(n)
		return
	}
	e.dead++
	if e.dead > 64 && e.dead*2 > len(e.queue) {
		e.compact()
	}
}

// Step executes the single next event, advancing the clock to its time.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		n := e.popTop()
		if n.canceled {
			e.dead--
			e.release(n)
			continue
		}
		e.now = n.at
		e.fired++
		e.live--
		n.fired = true
		fn := n.fn
		fn()
		e.release(n)
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time ≤ horizon, then advances the clock to
// horizon. Events scheduled beyond the horizon remain pending.
func (e *Engine) RunUntil(horizon Time) {
	e.stopped = false
	for !e.stopped {
		n := e.peek()
		if n == nil || n.at > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// Stop makes the current Run/RunUntil return after the in-flight event
// completes. Intended to be called from inside an event callback.
func (e *Engine) Stop() { e.stopped = true }

// peek returns the next live node without popping it, draining any dead
// nodes blocking the top.
func (e *Engine) peek() *node {
	for len(e.queue) > 0 {
		n := e.queue[0]
		if n.canceled {
			e.popTop()
			e.dead--
			e.release(n)
			continue
		}
		return n
	}
	return nil
}

// alloc takes a node from the free list (bumping its generation, which
// invalidates any handle to its previous occupant) or makes a fresh one.
func (e *Engine) alloc() *node {
	if k := len(e.free) - 1; k >= 0 {
		n := e.free[k]
		e.free[k] = nil
		e.free = e.free[:k]
		n.gen++
		n.canceled = false
		n.fired = false
		return n
	}
	return &node{index: -1}
}

// release returns a node whose lifecycle ended (fired, or cancelled and
// drained) to the free list. Its outcome flags stay readable through old
// handles until the node is reused.
func (e *Engine) release(n *node) {
	n.fn = nil
	n.index = -1
	e.free = append(e.free, n)
}

// compact drops every cancelled node from the queue in one pass and
// restores the heap property bottom-up. Only the internal layout changes:
// the (time, seq) pop order of live events — the determinism contract —
// is unaffected.
func (e *Engine) compact() {
	q := e.queue
	w := 0
	for _, n := range q {
		if n.canceled {
			e.release(n)
			continue
		}
		q[w] = n
		n.index = int32(w)
		w++
	}
	for i := w; i < len(q); i++ {
		q[i] = nil
	}
	e.queue = q[:w]
	e.dead = 0
	if w > 1 {
		for i := (w - 2) / 4; i >= 0; i-- {
			e.siftDown(i)
		}
	}
}

// nodeLess orders nodes by (time, sequence), the deterministic total order.
func nodeLess(a, b *node) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func (e *Engine) push(n *node) {
	n.index = int32(len(e.queue))
	e.queue = append(e.queue, n)
	e.siftUp(len(e.queue) - 1)
}

// popTop removes and returns the root node (not necessarily live).
func (e *Engine) popTop() *node {
	q := e.queue
	top := q[0]
	last := len(q) - 1
	if last > 0 {
		moved := q[last]
		q[0] = moved
		moved.index = 0
	}
	q[last] = nil
	e.queue = q[:last]
	if last > 1 {
		e.siftDown(0)
	}
	top.index = -1
	return top
}

func (e *Engine) siftUp(i int) {
	q := e.queue
	n := q[i]
	for i > 0 {
		p := (i - 1) / 4
		if !nodeLess(n, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = int32(i)
		i = p
	}
	q[i] = n
	n.index = int32(i)
}

// siftDown restores the heap below i, reporting whether the node moved.
func (e *Engine) siftDown(i int) bool {
	q := e.queue
	n := q[i]
	start := i
	size := len(q)
	for {
		c := i*4 + 1
		if c >= size {
			break
		}
		best := c
		end := c + 4
		if end > size {
			end = size
		}
		for j := c + 1; j < end; j++ {
			if nodeLess(q[j], q[best]) {
				best = j
			}
		}
		if !nodeLess(q[best], n) {
			break
		}
		q[i] = q[best]
		q[i].index = int32(i)
		i = best
	}
	q[i] = n
	n.index = int32(i)
	return i != start
}
