// Package desim provides a deterministic discrete-event simulation engine.
//
// It replaces Parsec, the C-based simulation language the original ChicSim
// was built on, and provides the virtual clock on which every other
// simulator component runs. Events are callbacks scheduled at a virtual
// time; ties are broken by scheduling order, so a simulation driven by a
// seeded random source is exactly reproducible.
package desim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual simulation time in seconds.
type Time = float64

// Event is a handle to a scheduled callback. It can be cancelled before it
// fires via Engine.Cancel.
type Event struct {
	at       Time
	seq      uint64
	index    int // heap index; -1 once popped or cancelled
	canceled bool
	fired    bool
	fn       func()
}

// At returns the virtual time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Canceled reports whether the event was cancelled before it fired. An
// event that already executed stays Canceled() == false even if Cancel is
// called on it afterwards.
func (e *Event) Canceled() bool { return e.canceled }

// Fired reports whether the event's callback has executed.
func (e *Event) Fired() bool { return e.fired }

// Engine is a discrete-event simulation engine. The zero value is ready to
// use. Engine is not safe for concurrent use: a simulation is a single
// logical thread of control (parallelism in this codebase lives one level
// up, across independent simulations).
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	fired   uint64
	stopped bool
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful in tests and
// for progress accounting).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled (including cancelled
// events not yet drained from the heap).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule registers fn to run after delay seconds of virtual time.
// A negative or NaN delay is an error in the caller; Schedule panics to
// surface the bug instead of silently reordering time.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if math.IsNaN(delay) || delay < 0 {
		panic(fmt.Sprintf("desim: Schedule with invalid delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At registers fn to run at absolute virtual time t, which must not be in
// the past.
func (e *Engine) At(t Time, fn func()) *Event {
	if math.IsNaN(t) || t < e.now {
		panic(fmt.Sprintf("desim: At with time %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("desim: At with nil callback")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired or was already cancelled is a harmless no-op; in
// particular, cancelling a fired event does not retroactively mark it
// Canceled. Because events at equal time execute in scheduling (seq)
// order, whether a cancel issued from event A reaches a same-timestamp
// event B before B fires is fully determined by their seq order — there
// is no race, and the outcome is identical on every run.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.fired {
		return
	}
	if ev.index < 0 {
		// Scheduled but already popped would imply fired; a negative index
		// on an unfired, uncancelled event only occurs for events never in
		// the heap, which At never produces. Mark defensively.
		ev.canceled = true
		return
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Step executes the single next event, advancing the clock to its time.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fired = true
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time ≤ horizon, then advances the clock to
// horizon. Events scheduled beyond the horizon remain pending.
func (e *Engine) RunUntil(horizon Time) {
	e.stopped = false
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.at > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// Stop makes the current Run/RunUntil return after the in-flight event
// completes. Intended to be called from inside an event callback.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		if e.queue[0].canceled {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0]
	}
	return nil
}

// eventHeap orders events by (time, sequence), giving a strict deterministic
// total order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
