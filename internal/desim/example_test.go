package desim_test

import (
	"fmt"

	"chicsim/internal/desim"
)

// A small simulation: two events and a cancellation. Events run in virtual
// time order regardless of scheduling order.
func Example() {
	eng := desim.New()
	eng.Schedule(10, func() { fmt.Println("second, at", eng.Now()) })
	eng.Schedule(5, func() { fmt.Println("first, at", eng.Now()) })
	doomed := eng.Schedule(7, func() { fmt.Println("never runs") })
	eng.Cancel(doomed)
	eng.Run()
	fmt.Println("clock:", eng.Now())
	// Output:
	// first, at 5
	// second, at 10
	// clock: 10
}

// Events may schedule further events; the queue drains in causal order.
func Example_cascade() {
	eng := desim.New()
	eng.Schedule(1, func() {
		fmt.Println("ping at", eng.Now())
		eng.Schedule(2, func() { fmt.Println("pong at", eng.Now()) })
	})
	eng.Run()
	// Output:
	// ping at 1
	// pong at 3
}
