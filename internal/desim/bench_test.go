package desim_test

import (
	"testing"

	"chicsim/internal/kernelbench"
)

// BenchmarkEngineChurn exercises the schedule/cancel-heavy pattern the
// flow-cancellation matrix produces (body shared with cmd/kernelbench).
func BenchmarkEngineChurn(b *testing.B) { kernelbench.EngineChurn(b) }

// BenchmarkEngineStep measures steady-state stepping; with the pooled
// event queue it must run at 0 allocs/op.
func BenchmarkEngineStep(b *testing.B) { kernelbench.EngineStep(b) }
