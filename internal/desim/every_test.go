package desim

import (
	"reflect"
	"testing"
)

func TestEveryFiresOnCadenceUntilStopped(t *testing.T) {
	eng := New()
	var fired []Time
	eng.Every(2.5, func() bool {
		fired = append(fired, eng.Now())
		return len(fired) < 3
	})
	eng.Run()
	want := []Time{2.5, 5, 7.5}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	if eng.Pending() != 0 {
		t.Fatalf("ticker left %d events pending after stopping", eng.Pending())
	}
}

func TestEveryInterleavesDeterministically(t *testing.T) {
	run := func() []Time {
		eng := New()
		var order []Time
		eng.Schedule(3, func() { order = append(order, eng.Now()) })
		eng.Every(3, func() bool {
			order = append(order, -eng.Now()) // mark ticker firings negative
			return eng.Now() < 9
		})
		eng.Run()
		return order
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic interleaving: %v vs %v", a, b)
	}
	// The one-shot at t=3 was scheduled before the ticker, so it fires
	// first at the tie.
	if len(a) < 2 || a[0] != 3 || a[1] != -3 {
		t.Fatalf("tie broken out of scheduling order: %v", a)
	}
}

func TestEveryInvalidArgsPanic(t *testing.T) {
	for _, interval := range []Time{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Every(%v) did not panic", interval)
				}
			}()
			New().Every(interval, func() bool { return false })
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Every with nil callback did not panic")
			}
		}()
		New().Every(1, nil)
	}()
}
