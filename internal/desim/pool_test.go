package desim

import (
	"testing"
	"testing/quick"
)

// TestPendingExactUnderCancellation pins the Pending contract: cancelled
// events stop counting immediately, even though the lazy queue drains
// their nodes later.
func TestPendingExactUnderCancellation(t *testing.T) {
	e := New()
	evs := make([]Event, 10)
	for i := range evs {
		evs[i] = e.Schedule(Time(i+1), func() {})
	}
	if got := e.Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	for i := 0; i < 10; i += 3 {
		e.Cancel(evs[i])
	}
	if got := e.Pending(); got != 6 {
		t.Fatalf("Pending after 4 cancels = %d, want 6", got)
	}
	e.Cancel(evs[0]) // double cancel must not double-count
	if got := e.Pending(); got != 6 {
		t.Fatalf("Pending after double cancel = %d, want 6", got)
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after Run = %d, want 0", got)
	}
}

// TestStaleHandleCancelIsNoOp is the pool-safety regression: once a node
// is recycled for a new event, a handle to its previous occupant must not
// be able to cancel the new one.
func TestStaleHandleCancelIsNoOp(t *testing.T) {
	e := New()
	old := e.Schedule(1, func() {})
	e.Run() // old fires; its node returns to the free list
	ran := false
	fresh := e.Schedule(1, func() { ran = true }) // recycles the node
	e.Cancel(old)                                 // stale: must not touch fresh
	e.Run()
	if !ran {
		t.Fatal("stale handle cancelled a recycled event")
	}
	if fresh.Canceled() {
		t.Fatal("recycled event marked cancelled by stale handle")
	}
}

// TestRescheduleMatchesCancelPlusSchedule pins the equivalence netsim's
// reflow relies on: Reschedule assigns a fresh sequence number, so among
// equal-time events the rescheduled one sorts exactly where a fresh
// Schedule would.
func TestRescheduleMatchesCancelPlusSchedule(t *testing.T) {
	e := New()
	var order []string
	a := e.Schedule(5, func() { order = append(order, "a") })
	e.Schedule(5, func() { order = append(order, "b") })
	e.Reschedule(a, 5) // same time, but now later seq than b
	e.Run()
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v, want [b a]", order)
	}
}

func TestRescheduleMovesTime(t *testing.T) {
	e := New()
	var order []string
	late := e.Schedule(10, func() { order = append(order, "late") })
	e.Schedule(2, func() {
		order = append(order, "mid")
		e.Reschedule(late, 1) // fires at 3, before the event at 5
	})
	e.Schedule(5, func() { order = append(order, "five") })
	e.Run()
	want := []string{"mid", "late", "five"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
}

func TestReschedulePanicsOnDeadEvent(t *testing.T) {
	for name, fn := range map[string]func(e *Engine){
		"fired": func(e *Engine) {
			ev := e.Schedule(1, func() {})
			e.Run()
			e.Reschedule(ev, 1)
		},
		"cancelled": func(e *Engine) {
			ev := e.Schedule(1, func() {})
			e.Cancel(ev)
			e.Reschedule(ev, 1)
		},
		"zero handle": func(e *Engine) {
			e.Reschedule(Event{}, 1)
		},
		"negative delay": func(e *Engine) {
			ev := e.Schedule(1, func() {})
			e.Reschedule(ev, -1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn(New())
		}()
	}
}

// TestCompactionKeepsOrder drives the queue far past the dead-node
// compaction threshold and checks that live events still pop in (time,
// seq) order with nothing lost.
func TestCompactionKeepsOrder(t *testing.T) {
	e := New()
	var got []int
	var evs []Event
	const total = 4096
	for i := 0; i < total; i++ {
		i := i
		evs = append(evs, e.Schedule(Time(i%101), func() { got = append(got, i) }))
	}
	// Cancel 75% so compaction triggers repeatedly.
	for i := 0; i < total; i++ {
		if i%4 != 0 {
			e.Cancel(evs[i])
		}
	}
	if got := e.Pending(); got != total/4 {
		t.Fatalf("Pending = %d, want %d", got, total/4)
	}
	e.Run()
	if len(got) != total/4 {
		t.Fatalf("fired %d, want %d", len(got), total/4)
	}
	for _, v := range got {
		if v%4 != 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	// Survivors at the same timestamp must preserve scheduling order.
	seen := map[Time][]int{}
	for _, v := range got {
		at := Time(v % 101)
		prev := seen[at]
		if len(prev) > 0 && prev[len(prev)-1] > v {
			t.Fatalf("tie order violated at t=%v: %d after %d", at, v, prev[len(prev)-1])
		}
		seen[at] = append(seen[at], v)
	}
}

// TestSteadyStateStepDoesNotAllocate is the zero-alloc acceptance check
// for the pooled queue: a self-rescheduling population stepping forever
// must not touch the heap allocator.
func TestSteadyStateStepDoesNotAllocate(t *testing.T) {
	e := New()
	for i := 0; i < 64; i++ {
		d := Time(1 + i%7)
		var fn func()
		fn = func() { e.Schedule(d, fn) }
		e.Schedule(d, fn)
	}
	// Warm up so queue and free list reach steady-state capacity.
	for i := 0; i < 1024; i++ {
		e.Step()
	}
	if allocs := testing.AllocsPerRun(1000, func() { e.Step() }); allocs != 0 {
		t.Fatalf("steady-state Step allocates %v/op, want 0", allocs)
	}
}

// Property: a random interleaving of schedule, cancel, reschedule, and
// step keeps Pending equal to a reference count of live events.
func TestQuickPendingConsistent(t *testing.T) {
	f := func(ops []uint8) bool {
		e := New()
		type tracked struct {
			ev       Event
			fired    *bool
			canceled bool
		}
		var live []tracked
		count := func() int {
			n := 0
			for i := range live {
				if !*live[i].fired && !live[i].canceled {
					n++
				}
			}
			return n
		}
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				fired := new(bool)
				f := func() { *fired = true }
				live = append(live, tracked{ev: e.Schedule(Time(op%7), f), fired: fired})
			case 2:
				if len(live) > 0 {
					i := int(op) % len(live)
					if !*live[i].fired && !live[i].canceled {
						e.Cancel(live[i].ev)
						live[i].canceled = true
					}
				}
			case 3:
				e.Step()
			}
			if e.Pending() != count() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
