package desim

import (
	"reflect"
	"testing"
)

// TestSameTimestampCancelBeforeFire pins the cancel+fire semantics the
// fault injector depends on: an event that cancels a *later-scheduled*
// event at the identical virtual time always wins — the target never
// fires, on every run.
func TestSameTimestampCancelBeforeFire(t *testing.T) {
	run := func() []string {
		e := New()
		var order []string
		var victim Event
		e.At(5, func() {
			order = append(order, "canceller")
			e.Cancel(victim)
		})
		victim = e.At(5, func() { order = append(order, "victim") })
		e.At(5, func() { order = append(order, "bystander") })
		e.Run()
		if !victim.Canceled() {
			t.Fatal("victim not marked canceled")
		}
		if victim.Fired() {
			t.Fatal("canceled victim reports Fired")
		}
		return order
	}
	want := []string{"canceller", "bystander"}
	first := run()
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("firing order = %v, want %v", first, want)
	}
	for i := 0; i < 10; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d order = %v, differs from first %v", i, got, first)
		}
	}
}

// TestSameTimestampCancelAfterFire is the mirror image: cancelling an
// *earlier-scheduled* event from a same-timestamp event arrives too late
// — the target has already executed, and the late Cancel must not
// retroactively mark it canceled.
func TestSameTimestampCancelAfterFire(t *testing.T) {
	e := New()
	var order []string
	target := e.At(3, func() { order = append(order, "target") })
	e.At(3, func() {
		order = append(order, "late-canceller")
		e.Cancel(target) // no-op: target fired in the same instant, earlier seq
	})
	e.Run()
	want := []string{"target", "late-canceller"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("firing order = %v, want %v", order, want)
	}
	if target.Canceled() {
		t.Fatal("late Cancel retroactively marked a fired event canceled")
	}
	if !target.Fired() {
		t.Fatal("fired event does not report Fired")
	}
}

// TestCancelRescheduleSameInstant exercises the cancel-then-reschedule
// pattern netsim's reflow uses, compressed into one virtual instant: the
// replacement event must fire exactly once and in deterministic order.
func TestCancelRescheduleSameInstant(t *testing.T) {
	e := New()
	fires := 0
	var old Event
	old = e.At(2, func() { t.Fatal("stale event fired") })
	e.At(2, func() {
		// Earlier seq than old? No: old has seq 0, this has seq 1, so old
		// would fire first — cancel it from a time-0 event instead.
	})
	e.At(0, func() {
		e.Cancel(old)
		e.At(2, func() { fires++ })
	})
	e.Run()
	if fires != 1 {
		t.Fatalf("replacement fired %d times, want 1", fires)
	}
}
