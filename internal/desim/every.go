package desim

import (
	"fmt"
	"math"
)

// Every schedules fn to run every interval seconds of virtual time, with
// the first firing at Now()+interval. After each firing, fn's return value
// decides whether the ticker re-arms: returning false ends the recurrence
// and leaves nothing in the queue, so a drained engine can still terminate.
//
// This is the primitive behind periodic activities — Dataset Scheduler
// wake-ups, state sampling, observability probes. Because each firing is an
// ordinary event, recurrences interleave deterministically with all other
// events under the engine's (time, sequence) total order.
func (e *Engine) Every(interval Time, fn func() bool) {
	if math.IsNaN(interval) || interval <= 0 {
		panic(fmt.Sprintf("desim: Every with invalid interval %v", interval))
	}
	if fn == nil {
		panic("desim: Every with nil callback")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.Schedule(interval, tick)
		}
	}
	e.Schedule(interval, tick)
}
