package desim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var e Engine
	ran := false
	e.Schedule(1, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("event did not run")
	}
	if e.Now() != 1 {
		t.Fatalf("clock = %v, want 1", e.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var got []Time
	for _, d := range []Time{5, 1, 3, 2, 4} {
		d := d
		e.Schedule(d, func() { got = append(got, d) })
	}
	e.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break violated at %d: %v", i, got)
		}
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	e := New()
	var order []string
	e.Schedule(1, func() {
		order = append(order, "a")
		e.Schedule(1, func() { order = append(order, "c") })
		e.Schedule(0, func() { order = append(order, "b") })
	})
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 2 {
		t.Fatalf("clock = %v, want 2", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("event not marked cancelled")
	}
	// Double cancel and cancel of the zero handle are no-ops.
	e.Cancel(ev)
	e.Cancel(Event{})
}

func TestCancelOneOfMany(t *testing.T) {
	e := New()
	var got []int
	var evs []Event
	for i := 0; i < 100; i++ {
		i := i
		evs = append(evs, e.Schedule(Time(i%13), func() { got = append(got, i) }))
	}
	for i := 0; i < 100; i += 3 {
		e.Cancel(evs[i])
	}
	e.Run()
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(got) != 66 {
		t.Fatalf("fired %d, want 66", len(got))
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, d := range []Time{1, 2, 3, 10} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("fired %d events before horizon, want 3", len(fired))
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want horizon 5", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d total, want 4", len(fired))
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	e.Run() // resumes
	if count != 10 {
		t.Fatalf("count after resume = %d, want 10", count)
	}
}

func TestPanicsOnInvalidSchedule(t *testing.T) {
	e := New()
	for name, fn := range map[string]func(){
		"negative delay": func() { e.Schedule(-1, func() {}) },
		"nil callback":   func() { e.Schedule(1, nil) },
		"past time":      func() { e.Schedule(5, func() {}); e.Run(); e.At(1, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: for any set of delays, execution order is sorted by time with
// ties in submission order.
func TestQuickOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		type rec struct {
			t   Time
			seq int
		}
		var got []rec
		for i, d := range delays {
			i, d := i, d
			e.Schedule(Time(d), func() { got = append(got, rec{Time(d), i}) })
		}
		e.Run()
		if len(got) != len(delays) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].t < got[i-1].t {
				return false
			}
			if got[i].t == got[i-1].t && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset fires exactly the complement.
func TestQuickCancelSubset(t *testing.T) {
	f := func(delays []uint8, mask []bool) bool {
		e := New()
		fired := make(map[int]bool)
		var evs []Event
		for i, d := range delays {
			i := i
			evs = append(evs, e.Schedule(Time(d), func() { fired[i] = true }))
		}
		cancelled := make(map[int]bool)
		for i := range evs {
			if i < len(mask) && mask[i] {
				e.Cancel(evs[i])
				cancelled[i] = true
			}
		}
		e.Run()
		for i := range delays {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving random schedule/cancel/step operations never
// violates the clock monotonicity invariant.
func TestQuickClockMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := New()
		last := Time(0)
		ok := true
		var live []Event
		for i := 0; i < 300; i++ {
			switch r.Intn(3) {
			case 0:
				live = append(live, e.Schedule(Time(r.Intn(50)), func() {
					if e.Now() < last {
						ok = false
					}
					last = e.Now()
				}))
			case 1:
				if len(live) > 0 {
					e.Cancel(live[r.Intn(len(live))])
				}
			case 2:
				e.Step()
			}
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97), func() {})
		}
		e.Run()
	}
}
