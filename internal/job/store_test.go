package job

import (
	"testing"

	"chicsim/internal/rng"
	"chicsim/internal/storage"
)

func TestStoreRecyclesSlotAfterFree(t *testing.T) {
	s := NewStore()
	inputs := []storage.FileID{7}
	j := s.Alloc(1, 0, 3, inputs, 60)
	j.Advance(Submitted, 1)
	j.Advance(Queued, 2)
	j.Advance(Running, 3)
	j.Advance(Done, 4)
	j.Holds = append(j.Holds, Hold{File: 7})
	j.RunIdx = 5
	j.Retries = 2
	s.Free(j)

	if s.Live() != 0 {
		t.Fatalf("Live = %d after free, want 0", s.Live())
	}
	k := s.Alloc(2, 1, 9, nil, 30)
	if k != j {
		t.Fatalf("Alloc after Free returned a new slot, want the recycled one")
	}
	if s.HighWater() != 1 {
		t.Fatalf("HighWater = %d, want 1 (recycling must not mint slots)", s.HighWater())
	}
	// The recycled slot must be indistinguishable from a fresh job.
	if k.ID != 2 || k.User != 1 || k.Origin != 9 || k.ComputeTime != 30 {
		t.Fatalf("recycled job identity not reset: %+v", k)
	}
	if k.State != Created || k.Site != -1 || k.RunIdx != -1 {
		t.Fatalf("recycled job runtime state not reset: %+v", k)
	}
	if k.Retries != 0 || k.LastFailedSite != -1 {
		t.Fatalf("recycled job failure state not reset: %+v", k)
	}
	if len(k.Holds) != 0 || len(k.Inputs) != 0 {
		t.Fatalf("recycled job scratch not reset: holds=%d inputs=%d", len(k.Holds), len(k.Inputs))
	}
	if k.SubmitTime != -1 || k.DispatchTime != -1 || k.DataReady != -1 || k.StartTime != -1 || k.EndTime != -1 {
		t.Fatalf("recycled job timestamps not reset: %+v", *k.Times)
	}
}

func TestStorePointersStableAcrossSlabGrowth(t *testing.T) {
	s := NewStore()
	n := 3*1024 + 17 // force several slab appends
	jobs := make([]*Job, n)
	for i := 0; i < n; i++ {
		jobs[i] = s.Alloc(ID(i), 0, 0, nil, 1)
		jobs[i].RunIdx = i
	}
	for i, j := range jobs {
		if j.ID != ID(i) || j.RunIdx != i {
			t.Fatalf("job %d moved or was clobbered by slab growth: %+v", i, j)
		}
	}
	if s.HighWater() != n || s.Live() != n {
		t.Fatalf("HighWater=%d Live=%d, want both %d", s.HighWater(), s.Live(), n)
	}
}

// TestStoreFreeListProperty drives a randomized alloc/free interleaving
// against a model and checks the store's core invariants: a live handle is
// never handed out twice, Live tracks the model exactly, and HighWater
// never exceeds the peak number of simultaneously live jobs — i.e. once
// the free list covers the steady state, allocation stops minting slots.
func TestStoreFreeListProperty(t *testing.T) {
	src := rng.New(20260807)
	s := NewStore()
	var live []*Job
	seen := make(map[*Job]bool) // handles currently live
	peak := 0
	nextID := ID(0)
	for op := 0; op < 20000; op++ {
		if len(live) == 0 || src.Float64() < 0.52 {
			j := s.Alloc(nextID, UserID(nextID%7), 0, nil, 1)
			nextID++
			if seen[j] {
				t.Fatalf("op %d: Alloc returned a handle that is already live (job %d)", op, j.ID)
			}
			if j.State != Created {
				t.Fatalf("op %d: Alloc returned state %v", op, j.State)
			}
			seen[j] = true
			live = append(live, j)
			if len(live) > peak {
				peak = len(live)
			}
		} else {
			i := src.Intn(len(live))
			j := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			delete(seen, j)
			s.Free(j)
		}
		if s.Live() != len(live) {
			t.Fatalf("op %d: Live = %d, model has %d", op, s.Live(), len(live))
		}
	}
	// Slab granularity: the store may have minted up to one slab beyond
	// the peak demand, never more.
	if hw := s.HighWater(); hw > peak+1023 {
		t.Fatalf("HighWater = %d, peak live was %d: free list not reused", hw, peak)
	}
}

func TestStoreFreePanics(t *testing.T) {
	t.Run("double free", func(t *testing.T) {
		s := NewStore()
		j := s.Alloc(1, 0, 0, nil, 1)
		s.Free(j)
		defer func() {
			if recover() == nil {
				t.Fatal("double Free did not panic")
			}
		}()
		s.Free(j)
	})
	t.Run("foreign job", func(t *testing.T) {
		s := NewStore()
		j := New(1, 0, 0, nil, 1)
		defer func() {
			if recover() == nil {
				t.Fatal("Free of a non-store job did not panic")
			}
		}()
		s.Free(j)
	})
}
