package job

import (
	"fmt"

	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

// slabSize is how many jobs each slab holds. Slabs are fixed-size so the
// *Job pointers handed out stay stable as the store grows (appending new
// slabs never moves existing ones).
const slabSize = 1024

// recycled marks a freed job sitting on the Store's free list; any use of
// such a job is a lifecycle bug and panics loudly in the State machinery.
const recycled State = -1

// Store is a slab allocator for jobs: the struct-of-arrays job storage
// behind million-job runs. Jobs live in index-addressed slabs — hot
// scheduling fields in one array, cold timestamps in a parallel array —
// and freed jobs go on a free list for reuse, so the steady-state
// dispatch→fetch→exec→complete loop allocates nothing per job: after the
// concurrency high-water mark is reached, every Alloc is a pop.
//
// Handles are ordinary *Job pointers (stable for the store's lifetime),
// so call sites are unchanged; only allocation and release go through the
// store. A job handle is valid from Alloc until Free; the core frees a
// job after its completion has been fully recorded.
type Store struct {
	slabs [][]Job   // hot fields, slabSize entries each
	times [][]Times // cold timestamps, parallel to slabs
	free  []*Job    // recycled entries, reused LIFO
	next  int       // fresh entries handed out so far (high-water mark)
	live  int       // entries allocated and not yet freed
}

// NewStore returns an empty job store.
func NewStore() *Store { return &Store{} }

// Alloc returns a job in the Created state, recycling a freed slot when
// one is available and growing by one slab otherwise.
func (s *Store) Alloc(id ID, user UserID, origin topology.SiteID, inputs []storage.FileID, compute float64) *Job {
	var j *Job
	if n := len(s.free); n > 0 {
		j = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		if s.next == len(s.slabs)*slabSize {
			hot := make([]Job, slabSize)
			cold := make([]Times, slabSize)
			for i := range hot {
				hot[i].Times = &cold[i]
				hot[i].fromStore = true
			}
			s.slabs = append(s.slabs, hot)
			s.times = append(s.times, cold)
		}
		j = &s.slabs[s.next/slabSize][s.next%slabSize]
		s.next++
	}
	s.live++
	initJob(j, id, user, origin, inputs, compute)
	return j
}

// Free returns a terminal job's slot to the store for reuse. The handle
// is dead after this call. Freeing a job twice, or one that did not come
// from a Store, panics.
func (s *Store) Free(j *Job) {
	if !j.fromStore {
		panic(fmt.Sprintf("job: Free of job %d not allocated from a Store", j.ID))
	}
	if j.State == recycled {
		panic(fmt.Sprintf("job: double Free of job %d", j.ID))
	}
	j.State = recycled
	j.Inputs = nil // owned by the workload; drop the reference
	s.free = append(s.free, j)
	s.live--
}

// Live returns how many jobs are currently allocated and not freed.
func (s *Store) Live() int { return s.live }

// HighWater returns how many distinct slots the store has ever handed
// out — the peak concurrent job footprint (allocation stops growing once
// the free list covers the steady state).
func (s *Store) HighWater() int { return s.next }
