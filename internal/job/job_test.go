package job

import (
	"testing"

	"chicsim/internal/storage"
)

func TestLifecycle(t *testing.T) {
	j := New(1, 2, 3, []storage.FileID{4}, 300)
	if j.State != Created {
		t.Fatalf("initial state = %v", j.State)
	}
	j.Advance(Submitted, 10)
	j.Advance(Queued, 12)
	j.Advance(Running, 50)
	j.Advance(Done, 350)
	if j.ResponseTime() != 340 {
		t.Fatalf("ResponseTime = %v", j.ResponseTime())
	}
	if j.QueueWait() != 38 {
		t.Fatalf("QueueWait = %v", j.QueueWait())
	}
	if j.SubmitTime != 10 || j.DispatchTime != 12 || j.StartTime != 50 || j.EndTime != 350 {
		t.Fatal("timestamps wrong")
	}
}

func TestIllegalTransitionPanics(t *testing.T) {
	j := New(1, 0, 0, nil, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on skipping states")
		}
	}()
	j.Advance(Running, 0)
}

func TestResponseTimeBeforeDonePanics(t *testing.T) {
	j := New(1, 0, 0, nil, 1)
	j.Advance(Submitted, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = j.ResponseTime()
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Created: "Created", Submitted: "Submitted", Queued: "Queued",
		Running: "Running", Done: "Done", State(99): "State(99)",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s, want)
		}
	}
}
