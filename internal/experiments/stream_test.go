package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// TestStreamRoundTrip runs a tiny campaign streaming cells to JSONL,
// reads the file back, and checks the reconstructed CellResults carry
// the same aggregates as the in-memory ones.
func TestStreamRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	sw, err := CreateStream(path)
	if err != nil {
		t.Fatal(err)
	}
	camp := Campaign{
		Base: tinyBase(),
		Cells: []Cell{
			{ES: "JobDataPresent", DS: "DataLeastLoaded", BandwidthMBps: 10},
			{ES: "JobRandom", DS: "DataRandom", BandwidthMBps: 10},
		},
		Seeds:   []uint64{1, 2},
		Workers: 2,
		OnCellDone: func(cr *CellResult) {
			if err := sw.Write(RecordOf(cr)); err != nil {
				t.Errorf("stream write: %v", err)
			}
		},
		DropRuns: true,
	}
	results := Run(camp)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	for _, cr := range results {
		if cr.Err != nil {
			t.Fatalf("cell %v: %v", cr.Cell, cr.Err)
		}
		if cr.Runs != nil {
			t.Fatalf("cell %v: DropRuns left %d runs in memory", cr.Cell, len(cr.Runs))
		}
		if cr.AvgResponseSec <= 0 {
			t.Fatalf("cell %v: aggregates missing after DropRuns", cr.Cell)
		}
	}

	loaded, err := ReadStreamFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(results) {
		t.Fatalf("stream holds %d cells, want %d", len(loaded), len(results))
	}
	// File order is completion order; match cells up by key. The streamed
	// record keeps the full Runs (written before DropRuns freed them), so
	// null them for the aggregate comparison.
	byCell := map[Cell]CellResult{}
	for _, cr := range loaded {
		if len(cr.Runs) != 2 {
			t.Fatalf("cell %v: stream kept %d runs, want 2", cr.Cell, len(cr.Runs))
		}
		cr.Runs = nil
		byCell[cr.Cell] = cr
	}
	for _, want := range results {
		got, ok := byCell[want.Cell]
		if !ok {
			t.Fatalf("cell %v missing from stream", want.Cell)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cell %v round-trip mismatch:\ngot:  %+v\nwant: %+v", want.Cell, got, want)
		}
	}
}

// TestStreamDeterministicAcrossWorkers: the aggregates that come out of
// a streamed + DropRuns campaign must be byte-identical to a plain
// in-memory campaign, regardless of worker count.
func TestStreamDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int, drop bool) []CellResult {
		camp := Campaign{
			Base: tinyBase(),
			Cells: []Cell{
				{ES: "JobDataPresent", DS: "DataLeastLoaded", BandwidthMBps: 10},
				{ES: "JobLeastLoaded", DS: "DataRandom", BandwidthMBps: 10},
			},
			Seeds:    []uint64{1, 2, 3},
			Workers:  workers,
			DropRuns: drop,
		}
		out := Run(camp)
		for i := range out {
			out[i].Runs = nil
		}
		return out
	}
	base := run(1, false)
	for _, workers := range []int{2, 4} {
		if got := run(workers, true); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d DropRuns: aggregates differ from serial in-memory run", workers)
		}
	}
}

func TestStreamErrRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "err.jsonl")
	sw, err := CreateStream(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := tinyBase()
	bad.DSInterval = 0 // invalid: every run errors
	camp := Campaign{
		Base:       bad,
		Cells:      []Cell{{ES: "JobRandom", DS: "DataRandom", BandwidthMBps: 10}},
		Seeds:      []uint64{1},
		Workers:    1,
		OnCellDone: func(cr *CellResult) { sw.Write(RecordOf(cr)) },
	}
	results := Run(camp)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("invalid config produced no error")
	}
	loaded, err := ReadStreamFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0].Err == nil {
		t.Fatalf("error did not survive the stream round-trip: %+v", loaded)
	}
}

// TestStreamWriterConcurrent exercises the writer's own locking (the
// campaign serializes OnCellDone, but the writer documents concurrency
// safety).
func TestStreamWriterConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.jsonl")
	sw, err := CreateStream(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				rec := CellRecord{Cell: Cell{ES: "JobRandom", DS: "DataRandom", BandwidthMBps: float64(w)}}
				if err := sw.Write(rec); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadStreamFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 100 {
		t.Fatalf("loaded %d records, want 100", len(loaded))
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
