package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"chicsim/internal/core"
)

// TestStreamRoundTrip runs a tiny campaign streaming cells to JSONL,
// reads the file back, and checks the reconstructed CellResults carry
// the same aggregates as the in-memory ones.
func TestStreamRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	sw, err := CreateStream(path)
	if err != nil {
		t.Fatal(err)
	}
	camp := Campaign{
		Base: tinyBase(),
		Cells: []Cell{
			{ES: "JobDataPresent", DS: "DataLeastLoaded", BandwidthMBps: 10},
			{ES: "JobRandom", DS: "DataRandom", BandwidthMBps: 10},
		},
		Seeds:   []uint64{1, 2},
		Workers: 2,
		OnCellDone: func(cr *CellResult) {
			if err := sw.Write(RecordOf(cr)); err != nil {
				t.Errorf("stream write: %v", err)
			}
		},
		DropRuns: true,
	}
	results := Run(camp)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	for _, cr := range results {
		if cr.Err != nil {
			t.Fatalf("cell %v: %v", cr.Cell, cr.Err)
		}
		if cr.Runs != nil {
			t.Fatalf("cell %v: DropRuns left %d runs in memory", cr.Cell, len(cr.Runs))
		}
		if cr.AvgResponseSec <= 0 {
			t.Fatalf("cell %v: aggregates missing after DropRuns", cr.Cell)
		}
	}

	loaded, err := ReadStreamFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(results) {
		t.Fatalf("stream holds %d cells, want %d", len(loaded), len(results))
	}
	// File order is completion order; match cells up by key. The streamed
	// record keeps the full Runs (written before DropRuns freed them), so
	// null them for the aggregate comparison.
	byCell := map[Cell]CellResult{}
	for _, cr := range loaded {
		if len(cr.Runs) != 2 {
			t.Fatalf("cell %v: stream kept %d runs, want 2", cr.Cell, len(cr.Runs))
		}
		cr.Runs = nil
		byCell[cr.Cell] = cr
	}
	for _, want := range results {
		got, ok := byCell[want.Cell]
		if !ok {
			t.Fatalf("cell %v missing from stream", want.Cell)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cell %v round-trip mismatch:\ngot:  %+v\nwant: %+v", want.Cell, got, want)
		}
	}
}

// TestStreamDeterministicAcrossWorkers: the aggregates that come out of
// a streamed + DropRuns campaign must be byte-identical to a plain
// in-memory campaign, regardless of worker count.
func TestStreamDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int, drop bool) []CellResult {
		camp := Campaign{
			Base: tinyBase(),
			Cells: []Cell{
				{ES: "JobDataPresent", DS: "DataLeastLoaded", BandwidthMBps: 10},
				{ES: "JobLeastLoaded", DS: "DataRandom", BandwidthMBps: 10},
			},
			Seeds:    []uint64{1, 2, 3},
			Workers:  workers,
			DropRuns: drop,
		}
		out := Run(camp)
		for i := range out {
			out[i].Runs = nil
		}
		return out
	}
	base := run(1, false)
	for _, workers := range []int{2, 4} {
		if got := run(workers, true); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d DropRuns: aggregates differ from serial in-memory run", workers)
		}
	}
}

func TestStreamErrRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "err.jsonl")
	sw, err := CreateStream(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := tinyBase()
	bad.DSInterval = 0 // invalid: every run errors
	camp := Campaign{
		Base:       bad,
		Cells:      []Cell{{ES: "JobRandom", DS: "DataRandom", BandwidthMBps: 10}},
		Seeds:      []uint64{1},
		Workers:    1,
		OnCellDone: func(cr *CellResult) { sw.Write(RecordOf(cr)) },
	}
	results := Run(camp)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("invalid config produced no error")
	}
	loaded, err := ReadStreamFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0].Err == nil {
		t.Fatalf("error did not survive the stream round-trip: %+v", loaded)
	}
}

// TestCanonicalize covers the at-least-once hardening used by
// `gridsweep -from-jsonl` and the fabric merge: duplicate cell records
// are deduped last-write-wins while first-seen order is preserved.
func TestCanonicalize(t *testing.T) {
	cell := func(es string, bw float64) Cell {
		return Cell{ES: es, DS: "DataRandom", BandwidthMBps: bw}
	}
	rec := func(c Cell, avg float64) CellResult {
		return CellResult{Cell: c, AvgResponseSec: avg}
	}
	a, b, c := cell("JobRandom", 10), cell("JobLeastLoaded", 10), cell("JobRandom", 100)

	in := []CellResult{
		rec(a, 1), // superseded below
		rec(b, 2),
		rec(a, 3), // rerun of a: last write wins, keeps a's slot
		rec(c, 4),
		rec(b, 5), // rerun of b
	}
	out, dropped := Canonicalize(in)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	want := []CellResult{rec(a, 3), rec(b, 5), rec(c, 4)}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("canonicalized:\ngot:  %+v\nwant: %+v", out, want)
	}

	// No duplicates: identity, zero drops.
	clean := []CellResult{rec(a, 1), rec(b, 2), rec(c, 3)}
	out, dropped = Canonicalize(clean)
	if dropped != 0 || !reflect.DeepEqual(out, clean) {
		t.Fatalf("clean input altered: dropped=%d got=%+v", dropped, out)
	}

	// Empty and nil inputs survive.
	if out, dropped = Canonicalize(nil); len(out) != 0 || dropped != 0 {
		t.Fatalf("nil input: got %d results, %d dropped", len(out), dropped)
	}
}

// TestStreamTruncatedTail: a stream whose final record was cut off by a
// crash mid-write yields every intact record plus an error, so callers
// can recover the completed prefix.
func TestStreamTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.jsonl")
	sw, err := CreateStream(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rec := CellRecord{Cell: Cell{ES: "JobRandom", DS: "DataRandom", BandwidthMBps: float64(i + 1)}}
		if err := sw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	js, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, js[:len(js)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	loaded, err := ReadStreamFile(path)
	if err == nil {
		t.Fatal("truncated stream parsed without error")
	}
	if len(loaded) != 2 {
		t.Fatalf("recovered %d records from truncated stream, want 2", len(loaded))
	}
	for i, cr := range loaded {
		if cr.Cell.BandwidthMBps != float64(i+1) {
			t.Fatalf("record %d: bandwidth %v, want %v", i, cr.Cell.BandwidthMBps, i+1)
		}
	}
}

// TestStreamGzip: paths ending in ".gz" are compressed on write and
// gunzipped on read (the internal/trace OpenLog/CreateWriter suffix
// convention), and per-record sync flushing keeps every completed record
// recoverable even if the process dies before Close.
func TestStreamGzip(t *testing.T) {
	dir := t.TempDir()
	plainPath := filepath.Join(dir, "cells.jsonl")
	gzPath := filepath.Join(dir, "cells.jsonl.gz")

	recs := []CellRecord{
		{Cell: Cell{ES: "JobRandom", DS: "DataRandom", BandwidthMBps: 10}, AvgResponseSec: 1.5},
		{Cell: Cell{ES: "JobLocal", DS: "DataLeastLoaded", BandwidthMBps: 100}, AvgResponseSec: 2.5},
	}
	writeAll := func(path string, close bool) {
		sw, err := CreateStream(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := sw.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if close {
			if err := sw.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	writeAll(plainPath, true)
	writeAll(gzPath, true)

	// The .gz file really is gzip (magic bytes), and smaller isn't
	// guaranteed at this size — but it must not be plaintext JSON.
	raw, err := os.ReadFile(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf("%s does not start with the gzip magic", gzPath)
	}

	plain, err := ReadStreamFile(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	zipped, err := ReadStreamFile(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zipped, plain) {
		t.Fatalf("gzip stream differs from plain stream:\ngz:    %+v\nplain: %+v", zipped, plain)
	}

	// Crash tolerance: records written but never Closed (no gzip footer)
	// are still readable thanks to the per-record sync flush.
	crashPath := filepath.Join(dir, "crash.jsonl.gz")
	writeAll(crashPath, false) // leak the writer: simulates a dead process
	recovered, err := ReadStreamFile(crashPath)
	if err == nil {
		t.Log("unterminated gzip stream parsed cleanly (acceptable)")
	}
	if len(recovered) != len(recs) {
		t.Fatalf("recovered %d records from unclosed gzip stream, want %d", len(recovered), len(recs))
	}
	if !reflect.DeepEqual(recovered, plain) {
		t.Fatal("records recovered from unclosed gzip stream differ")
	}
}

// TestStreamWriterConcurrent exercises the writer's own locking (the
// campaign serializes OnCellDone, but the writer documents concurrency
// safety).
func TestStreamWriterConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.jsonl")
	sw, err := CreateStream(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				rec := CellRecord{Cell: Cell{ES: "JobRandom", DS: "DataRandom", BandwidthMBps: float64(w)}}
				if err := sw.Write(rec); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadStreamFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 100 {
		t.Fatalf("loaded %d records, want 100", len(loaded))
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

// TestBoundedResultsDeterministicAcrossWorkers: bounded-mode results —
// including the seeded exemplar reservoir, whose randomness must come
// only from the per-run "results" sub-stream — are byte-identical however
// many workers execute the campaign.
func TestBoundedResultsDeterministicAcrossWorkers(t *testing.T) {
	check := func(t *testing.T, base core.Config, cells []Cell, seeds []uint64, parallel []int) {
		t.Helper()
		base.ResultMode = core.ResultModeBounded
		run := func(workers int) []CellResult {
			return Run(Campaign{Base: base, Cells: cells, Seeds: seeds, Workers: workers})
		}
		serial := run(1)
		for _, r := range serial {
			for _, rr := range r.Runs {
				if rr.ResultMode != core.ResultModeBounded || len(rr.Exemplars) == 0 {
					t.Fatalf("cell %v: bounded sketch fields missing", r.Cell)
				}
			}
		}
		want, err := json.Marshal(serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range parallel {
			got, err := json.Marshal(run(workers))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("workers=%d: bounded results differ from serial run", workers)
			}
		}
	}

	t.Run("tiny", func(t *testing.T) {
		check(t, tinyBase(),
			[]Cell{
				{ES: "JobDataPresent", DS: "DataLeastLoaded", BandwidthMBps: 10},
				{ES: "JobLeastLoaded", DS: "DataRandom", BandwidthMBps: 10},
			},
			[]uint64{1, 2, 3}, []int{2, 4})
	})

	// The scale case exercises the slab job store's recycling and the
	// scheduler scratch buffers at a topology where the high-water mark is
	// reached and crossed many times: 1000 sites, 10^5 jobs, bounded
	// results. Workers must still be byte-identical to a serial campaign.
	t.Run("1000-site-scale", func(t *testing.T) {
		if testing.Short() {
			t.Skip("scale determinism case skipped in -short mode")
		}
		base := core.DefaultConfig()
		base.Sites = 1000
		base.RegionFanout = 25
		base.Users = 4000
		base.Files = 2000
		base.TotalJobs = 100000
		check(t, base,
			[]Cell{{ES: "JobDataPresent", DS: "DataLeastLoaded", BandwidthMBps: 10}},
			[]uint64{1, 2}, []int{2})
	})
}
