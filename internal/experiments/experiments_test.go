package experiments

import (
	"strings"
	"testing"

	"chicsim/internal/core"
)

func tinyBase() core.Config {
	cfg := core.DefaultConfig()
	cfg.Sites = 6
	cfg.Users = 12
	cfg.Files = 30
	cfg.TotalJobs = 120
	cfg.RegionFanout = 3
	return cfg
}

func TestPaperCells(t *testing.T) {
	cells := PaperCells(10)
	if len(cells) != 12 {
		t.Fatalf("cells = %d, want 12 (4 ES × 3 DS)", len(cells))
	}
	seen := map[Cell]bool{}
	for _, c := range cells {
		if c.BandwidthMBps != 10 {
			t.Fatalf("bandwidth = %v", c.BandwidthMBps)
		}
		if seen[c] {
			t.Fatalf("duplicate cell %v", c)
		}
		seen[c] = true
	}
}

func TestFigure5Cells(t *testing.T) {
	cells := Figure5Cells()
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8 (4 ES × 2 bandwidths)", len(cells))
	}
	for _, c := range cells {
		if c.DS != "DataLeastLoaded" {
			t.Fatalf("DS = %s", c.DS)
		}
	}
}

func TestFullPaperCampaign(t *testing.T) {
	camp := FullPaperCampaign(core.DefaultConfig())
	if len(camp.Cells) != 24 || len(camp.Seeds) != 3 {
		t.Fatalf("campaign shape %d cells × %d seeds, want 24 × 3 (= 72 runs)", len(camp.Cells), len(camp.Seeds))
	}
}

func TestRunAggregates(t *testing.T) {
	camp := Campaign{
		Base: tinyBase(),
		Cells: []Cell{
			{ES: "JobDataPresent", DS: "DataLeastLoaded", BandwidthMBps: 10},
			{ES: "JobLocal", DS: "DataDoNothing", BandwidthMBps: 10},
		},
		Seeds:   []uint64{1, 2},
		Workers: 2,
	}
	results := Run(camp)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, cr := range results {
		if cr.Err != nil {
			t.Fatalf("%v: %v", cr.Cell, cr.Err)
		}
		if len(cr.Runs) != 2 {
			t.Fatalf("%v: %d runs", cr.Cell, len(cr.Runs))
		}
		if cr.Runs[0].Seed != 1 || cr.Runs[1].Seed != 2 {
			t.Fatalf("%v: runs not sorted by seed", cr.Cell)
		}
		if cr.AvgResponseSec <= 0 {
			t.Fatalf("%v: no aggregate", cr.Cell)
		}
		want := (cr.Runs[0].AvgResponseSec + cr.Runs[1].AvgResponseSec) / 2
		if diff := cr.AvgResponseSec - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%v: aggregate mean wrong", cr.Cell)
		}
	}
}

func TestFeedbackSweepCells(t *testing.T) {
	cells := FeedbackSweepCells(10, []float64{0, 3600})
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 4 pairs × 2 MTBF columns", len(cells))
	}
	seen := make(map[Cell]bool)
	for _, c := range cells {
		if seen[c] {
			t.Fatalf("duplicate cell %v", c)
		}
		seen[c] = true
		if c.BandwidthMBps != 10 {
			t.Fatalf("cell %v: bandwidth not threaded through", c)
		}
	}
	if !seen[Cell{ES: "JobFeedback", DS: "DataFeedback", BandwidthMBps: 10}] {
		t.Fatal("adaptive pair missing from the sweep")
	}
	if !seen[Cell{ES: "JobDataPresent", DS: "DataLeastLoaded", BandwidthMBps: 10}] {
		t.Fatal("static reference pair missing from the sweep")
	}
}

// TestFeedbackRunsDeterministicAcrossWorkerCounts extends the worker-
// count determinism guarantee to the adaptive pair: the tracker samples
// on the virtual clock only, so parallel campaign scheduling must not
// leak into its telemetry.
func TestFeedbackRunsDeterministicAcrossWorkerCounts(t *testing.T) {
	base := tinyBase()
	base.InfoStaleness = 120
	mk := func(workers int) []CellResult {
		return Run(Campaign{
			Base:    base,
			Cells:   []Cell{{ES: "JobFeedback", DS: "DataFeedback", BandwidthMBps: 10}},
			Seeds:   []uint64{1, 2, 3},
			Workers: workers,
		})
	}
	a, b := mk(1), mk(4)
	if a[0].Err != nil || b[0].Err != nil {
		t.Fatalf("errs: %v %v", a[0].Err, b[0].Err)
	}
	if a[0].AvgResponseSec != b[0].AvgResponseSec || a[0].StdResponseSec != b[0].StdResponseSec {
		t.Fatal("feedback results depend on worker count")
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	mk := func(workers int) []CellResult {
		return Run(Campaign{
			Base:    tinyBase(),
			Cells:   []Cell{{ES: "JobDataPresent", DS: "DataRandom", BandwidthMBps: 10}},
			Seeds:   []uint64{1, 2, 3},
			Workers: workers,
		})
	}
	a, b := mk(1), mk(4)
	if a[0].AvgResponseSec != b[0].AvgResponseSec || a[0].StdResponseSec != b[0].StdResponseSec {
		t.Fatal("results depend on worker count")
	}
}

func TestRunReportsErrors(t *testing.T) {
	base := tinyBase()
	results := Run(Campaign{
		Base:  base,
		Cells: []Cell{{ES: "JobBogus", DS: "DataRandom", BandwidthMBps: 10}},
		Seeds: []uint64{1},
	})
	if results[0].Err == nil {
		t.Fatal("expected error for bogus algorithm")
	}
}

func TestByCell(t *testing.T) {
	cells := PaperCells(10)
	results := make([]CellResult, len(cells))
	for i := range results {
		results[i].Cell = cells[i]
	}
	idx := ByCell(results)
	if len(idx) != 12 {
		t.Fatalf("index size %d", len(idx))
	}
	if idx[cells[3]] != &results[3] {
		t.Fatal("index points at wrong entry")
	}
}

func TestCellString(t *testing.T) {
	c := Cell{ES: "JobLocal", DS: "DataRandom", BandwidthMBps: 10}
	if !strings.Contains(c.String(), "JobLocal") || !strings.Contains(c.String(), "10") {
		t.Fatalf("String = %q", c)
	}
}

func TestFindBandwidthCrossover(t *testing.T) {
	base := tinyBase()
	base.TotalJobs = 240
	base.DS = "DataLeastLoaded"
	// JobLocal is slower than JobDataPresent on slow links and at least
	// matches it on fast ones; the crossover must land inside a sane
	// bracket if it exists.
	bw, err := FindBandwidthCrossover(base, "JobLocal", "JobDataPresent", 2, 400, 10, []uint64{1})
	if err != nil {
		t.Skipf("no crossover on the tiny grid (acceptable): %v", err)
	}
	if bw < 2 || bw > 400 {
		t.Fatalf("crossover %v outside bracket", bw)
	}
}

func TestFindBandwidthCrossoverErrors(t *testing.T) {
	base := tinyBase()
	if _, err := FindBandwidthCrossover(base, "JobLocal", "JobDataPresent", -1, 10, 1, nil); err == nil {
		t.Fatal("invalid bracket accepted")
	}
	if _, err := FindBandwidthCrossover(base, "JobLocal", "JobDataPresent", 10, 5, 1, nil); err == nil {
		t.Fatal("inverted bracket accepted")
	}
	base.TotalJobs = 60
	// Same algorithm on both sides: no sign change.
	if _, err := FindBandwidthCrossover(base, "JobLocal", "JobLocal", 5, 50, 5, []uint64{1}); err == nil {
		t.Fatal("no-crossover case accepted")
	}
}

func TestDefaultSeedsApplied(t *testing.T) {
	results := Run(Campaign{
		Base:  tinyBase(),
		Cells: []Cell{{ES: "JobLocal", DS: "DataDoNothing", BandwidthMBps: 10}},
	})
	if len(results[0].Runs) != 3 {
		t.Fatalf("default seeds gave %d runs, want 3", len(results[0].Runs))
	}
}
