package experiments

import (
	"reflect"
	"testing"

	"chicsim/internal/core"
)

// Probe series are produced inside each simulation's own deterministic
// event loop, so the campaign runner's worker count must not change a
// single sampled byte. This is the engine's determinism guarantee
// extended to the observability layer.
func TestProbeSeriesIdenticalAcrossWorkers(t *testing.T) {
	base := core.DefaultConfig()
	base.TotalJobs = 300 // small but long enough for several probe ticks

	run := func(workers int) []CellResult {
		return Run(Campaign{
			Base: base,
			Cells: []Cell{
				{ES: "JobDataPresent", DS: "DataLeastLoaded", BandwidthMBps: 10},
				{ES: "JobLeastLoaded", DS: "DataRandom", BandwidthMBps: 10},
			},
			Seeds:       []uint64{1, 2},
			Workers:     workers,
			ObsInterval: 120,
		})
	}

	serial, parallel := run(1), run(4)
	if len(serial) != len(parallel) {
		t.Fatalf("cell counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("cell %v failed: %v / %v", serial[i].Cell, serial[i].Err, parallel[i].Err)
		}
		for j := range serial[i].Runs {
			a, b := serial[i].Runs[j].Series, parallel[i].Runs[j].Series
			if a == nil || len(a.Points) == 0 {
				t.Fatalf("cell %v seed %d produced an empty series", serial[i].Cell, serial[i].Runs[j].Seed)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("cell %v seed %d: series differ between -workers=1 and -workers=4",
					serial[i].Cell, serial[i].Runs[j].Seed)
			}
		}
	}
}
