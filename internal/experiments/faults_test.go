package experiments

import (
	"encoding/json"
	"testing"

	"chicsim/internal/core"
)

// A faulted run is still one deterministic event loop, so the campaign
// runner's worker count must not change a byte of its Results — metrics,
// fault counters, or sampled series. This is the determinism acceptance
// criterion for the fault subsystem.
func TestFaultedRunsIdenticalAcrossWorkers(t *testing.T) {
	base := core.DefaultConfig()
	base.TotalJobs = 300
	base.Faults.SiteCrash.MTTR = 400
	base.Faults.CEFailure.MTBF = 2500
	base.Faults.CEFailure.MTTR = 300
	base.Faults.TransferAbort.MTBF = 1500
	base.Faults.RequeueOnRecovery = true
	base.Faults.RestoreReplicas = true

	cells := FaultSweepCells(10, []float64{0, 3000})
	run := func(workers int) []CellResult {
		return Run(Campaign{
			Base:        base,
			Cells:       cells,
			Seeds:       []uint64{1, 2},
			Workers:     workers,
			ObsInterval: 120,
		})
	}

	fingerprint := func(r core.Results) string {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	serial, parallel := run(1), run(4)
	faulted := 0
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("cell %v failed: %v / %v", serial[i].Cell, serial[i].Err, parallel[i].Err)
		}
		for j := range serial[i].Runs {
			a, b := serial[i].Runs[j], parallel[i].Runs[j]
			if fa, fb := fingerprint(a), fingerprint(b); fa != fb {
				t.Fatalf("cell %v seed %d: results differ between -workers=1 and -workers=4",
					serial[i].Cell, a.Seed)
			}
			faulted += a.Faults.FaultsInjected
		}
	}
	if faulted == 0 {
		t.Fatal("no faults injected anywhere in the sweep")
	}
}
