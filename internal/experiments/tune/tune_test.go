package tune

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"chicsim/internal/core"
	"chicsim/internal/experiments"
)

// bowl is a convex synthetic objective with its minimum at (3, -2).
func bowl(v []float64) (float64, error) {
	dx, dy := v[0]-3, v[1]+2
	return dx*dx + dy*dy, nil
}

var bowlKnobs = []Knob{
	{Name: "x", Min: -10, Max: 10, Step: 1},
	{Name: "y", Min: -10, Max: 10, Step: 1},
}

func TestHillClimbFindsMinimum(t *testing.T) {
	res, err := HillClimb(bowlKnobs, []float64{0, 0}, bowl, Options{Seed: 1, MaxEvals: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] != 3 || res.Best[1] != -2 {
		t.Fatalf("converged to %v, want [3 -2]", res.Best)
	}
	if res.BestScore != 0 {
		t.Fatalf("best score %v, want 0", res.BestScore)
	}
}

// TestHillClimbDeterministic is the tuner's reproducibility guarantee:
// the same seed over the same objective must produce an identical
// trajectory (same evaluations, same order, same incumbents) and an
// identical JSONL stream.
func TestHillClimbDeterministic(t *testing.T) {
	run := func() (Result, string) {
		var buf bytes.Buffer
		res, err := HillClimb(bowlKnobs, []float64{-5, 5}, bowl, Options{Seed: 99, MaxEvals: 100, Log: &buf})
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	a, alog := run()
	b, blog := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
	if alog != blog {
		t.Fatalf("same seed, different JSONL streams:\n%s\n%s", alog, blog)
	}
	if len(a.Trajectory) < 2 {
		t.Fatalf("trajectory has %d entries; climb did nothing", len(a.Trajectory))
	}
	// The stream must parse back into the trajectory.
	dec := json.NewDecoder(bytes.NewReader([]byte(alog)))
	for i := range a.Trajectory {
		var ev Eval
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if !reflect.DeepEqual(ev, a.Trajectory[i]) {
			t.Fatalf("JSONL line %d %+v != trajectory entry %+v", i, ev, a.Trajectory[i])
		}
	}
}

func TestHillClimbBudget(t *testing.T) {
	calls := 0
	obj := func(v []float64) (float64, error) {
		calls++
		return bowl(v)
	}
	res, err := HillClimb(bowlKnobs, []float64{-5, 5}, obj, Options{Seed: 1, MaxEvals: 3})
	if err != nil {
		t.Fatalf("budget exhaustion should end the climb cleanly, got %v", err)
	}
	if calls != 3 || res.Evals != 3 {
		t.Fatalf("spent %d calls / %d evals, want exactly 3", calls, res.Evals)
	}
}

func TestHillClimbCachesRepeatPoints(t *testing.T) {
	seen := make(map[string]int)
	obj := func(v []float64) (float64, error) {
		seen[pointKey(v)]++
		return bowl(v)
	}
	if _, err := HillClimb(bowlKnobs, []float64{2, -2}, obj, Options{Seed: 5, MaxEvals: 200}); err != nil {
		t.Fatal(err)
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("point %s evaluated %d times; cache not working", k, n)
		}
	}
}

// TestCampaignObjectiveDeterministic runs a tiny real campaign twice at
// the same knob point and requires bit-identical scores — the property
// that makes cached tuner evaluations trustworthy.
func TestCampaignObjectiveDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := core.DefaultConfig()
	base.Sites = 6
	base.Users = 12
	base.Files = 30
	base.TotalJobs = 240
	base.RegionFanout = 3
	base.ES, base.DS = "JobFeedback", "DataFeedback"
	base.InfoStaleness = 120
	template := experiments.Campaign{
		Base:     base,
		Cells:    []experiments.Cell{{ES: base.ES, DS: base.DS, BandwidthMBps: 10}},
		Seeds:    []uint64{1, 2},
		Workers:  2,
		DropRuns: true,
	}
	apply := func(cfg *core.Config, v []float64) { cfg.Feedback.QueueWeight = v[0] }
	obj := CampaignObjective(template, apply)
	a, err := obj([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := obj([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a <= 0 || math.IsNaN(a) {
		t.Fatalf("objective not deterministic or degenerate: %v vs %v", a, b)
	}
}
