// Package tune implements a deterministic hill-climbing optimizer for
// scheduler policy knobs. It drives full campaign runs (via the
// experiments package) as its objective function, walking a small set of
// bounded knobs toward minimum mean response time. Everything is seeded:
// the same tuner seed over the same objective yields a byte-identical
// evaluation trajectory, so tuning runs are reproducible experiments in
// their own right.
package tune

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"chicsim/internal/core"
	"chicsim/internal/experiments"
	"chicsim/internal/rng"
)

// Knob is one tunable parameter: a bounded axis the climber moves along
// in Step-sized increments.
type Knob struct {
	Name string
	Min  float64
	Max  float64
	Step float64
}

// Eval is one objective evaluation in the tuner's trajectory.
type Eval struct {
	Eval   int       `json:"eval"`   // 1-based evaluation index
	Values []float64 `json:"values"` // knob settings, in Knob order
	Score  float64   `json:"score"`  // objective value (lower is better)
	Best   bool      `json:"best"`   // true when this eval became the incumbent
}

// Options configures a hill-climb.
type Options struct {
	// Seed drives the knob visit order. Same seed + same objective ⇒
	// identical trajectory.
	Seed uint64
	// MaxEvals caps objective evaluations (default 64).
	MaxEvals int
	// MaxPasses caps coordinate-descent passes (default 16); the climb
	// also stops at the first pass with no accepted move.
	MaxPasses int
	// Log, when non-nil, receives one JSON line per evaluation as it
	// happens (the JSONL trajectory stream).
	Log io.Writer
	// OnEval, when non-nil, observes each evaluation as it completes.
	OnEval func(Eval)
}

// Result is the outcome of a hill-climb.
type Result struct {
	Best       []float64 // incumbent knob settings
	BestScore  float64
	Evals      int // objective evaluations spent (cache hits excluded)
	Passes     int // coordinate-descent passes completed
	Trajectory []Eval
}

// HillClimb minimizes objective over the knobs by deterministic
// coordinate descent: starting from start (clamped to bounds), it visits
// the knobs in seed-shuffled order each pass, tries one Step up and one
// Step down per knob, and accepts the first strict improvement. Repeated
// points are served from a cache without re-evaluating (and without
// appearing in the trajectory). The climb ends when a full pass accepts
// nothing, or a budget runs out.
func HillClimb(knobs []Knob, start []float64, objective func([]float64) (float64, error), opt Options) (Result, error) {
	if len(knobs) == 0 {
		return Result{}, fmt.Errorf("tune: no knobs")
	}
	if len(start) != len(knobs) {
		return Result{}, fmt.Errorf("tune: %d start values for %d knobs", len(start), len(knobs))
	}
	for _, k := range knobs {
		if k.Step <= 0 || k.Max < k.Min {
			return Result{}, fmt.Errorf("tune: knob %q has invalid range [%v, %v] step %v", k.Name, k.Min, k.Max, k.Step)
		}
	}
	if opt.MaxEvals <= 0 {
		opt.MaxEvals = 64
	}
	if opt.MaxPasses <= 0 {
		opt.MaxPasses = 16
	}

	res := Result{Best: make([]float64, len(knobs))}
	copy(res.Best, start)
	for i, k := range knobs {
		res.Best[i] = clamp(res.Best[i], k.Min, k.Max)
	}

	cache := make(map[string]float64)
	evaluate := func(v []float64) (float64, bool, error) {
		key := pointKey(v)
		if sc, ok := cache[key]; ok {
			return sc, false, nil
		}
		if res.Evals >= opt.MaxEvals {
			return 0, false, errBudget
		}
		sc, err := objective(v)
		if err != nil {
			return 0, false, err
		}
		res.Evals++
		cache[key] = sc
		return sc, true, nil
	}

	record := func(v []float64, sc float64, best bool) error {
		ev := Eval{Eval: res.Evals, Values: append([]float64(nil), v...), Score: sc, Best: best}
		res.Trajectory = append(res.Trajectory, ev)
		if opt.OnEval != nil {
			opt.OnEval(ev)
		}
		if opt.Log != nil {
			line, err := json.Marshal(ev)
			if err != nil {
				return err
			}
			if _, err := opt.Log.Write(append(line, '\n')); err != nil {
				return fmt.Errorf("tune: writing trajectory: %w", err)
			}
		}
		return nil
	}

	sc, _, err := evaluate(res.Best)
	if err != nil {
		return res, err
	}
	res.BestScore = sc
	if err := record(res.Best, sc, true); err != nil {
		return res, err
	}

	src := rng.New(opt.Seed)
	order := make([]int, len(knobs))
	for i := range order {
		order[i] = i
	}
	for pass := 0; pass < opt.MaxPasses; pass++ {
		shuffle(src, order)
		improved := false
		for _, ki := range order {
			k := knobs[ki]
			for _, dir := range []float64{+1, -1} {
				cand := append([]float64(nil), res.Best...)
				cand[ki] = clamp(cand[ki]+dir*k.Step, k.Min, k.Max)
				if cand[ki] == res.Best[ki] {
					continue
				}
				sc, fresh, err := evaluate(cand)
				if err == errBudget {
					res.Passes = pass
					return res, nil
				}
				if err != nil {
					return res, err
				}
				accepted := sc < res.BestScore
				if fresh {
					if rerr := record(cand, sc, accepted); rerr != nil {
						return res, rerr
					}
				}
				if accepted {
					res.Best = cand
					res.BestScore = sc
					improved = true
					break // move on to the next knob from the new point
				}
			}
		}
		res.Passes = pass + 1
		if !improved {
			break
		}
	}
	return res, nil
}

var errBudget = fmt.Errorf("tune: evaluation budget exhausted")

// CampaignObjective adapts a campaign template into a hill-climb
// objective: each evaluation applies the knob values to a copy of the
// template's base config (via apply), runs the campaign — reusing its
// registry, progress, and OnRunDone/OnCellDone callbacks — and scores the
// mean response time averaged over all cells. Cell errors fail the
// evaluation.
func CampaignObjective(template experiments.Campaign, apply func(*core.Config, []float64)) func([]float64) (float64, error) {
	return func(v []float64) (float64, error) {
		c := template
		c.Base = template.Base
		apply(&c.Base, v)
		results := experiments.Run(c)
		sum := 0.0
		for i := range results {
			if results[i].Err != nil {
				return 0, fmt.Errorf("tune: cell %v: %w", results[i].Cell, results[i].Err)
			}
			sum += results[i].AvgResponseSec
		}
		if len(results) == 0 {
			return 0, fmt.Errorf("tune: campaign has no cells")
		}
		return sum / float64(len(results)), nil
	}
}

// pointKey encodes a knob vector as a cache key (exact bit patterns, so
// only truly identical points collide).
func pointKey(v []float64) string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	}
	return b.String()
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// shuffle is an in-place Fisher–Yates over the tuner's own stream.
func shuffle(src *rng.Source, order []int) {
	for i := len(order) - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
}
