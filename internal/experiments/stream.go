package experiments

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"chicsim/internal/core"
)

// CellRecord is one completed campaign cell as streamed to a JSONL
// result file (`gridsweep -jsonl`). It carries everything the report
// renderers need, so final CSV/Markdown reports can be regenerated from
// the stream (`gridsweep -from-jsonl`) without holding — or re-running —
// the whole campaign.
type CellRecord struct {
	Cell Cell           `json:"cell"`
	Err  string         `json:"err,omitempty"`
	Runs []core.Results `json:"runs,omitempty"`

	AvgResponseSec     float64 `json:"avg_response_s"`
	StdResponseSec     float64 `json:"std_response_s"`
	CI95ResponseSec    float64 `json:"ci95_response_s"`
	AvgDataPerJobMB    float64 `json:"avg_data_per_job_mb"`
	AvgIdleFrac        float64 `json:"avg_idle_frac"`
	AvgDispatchWaitSec float64 `json:"avg_dispatch_wait_s"`
	AvgDataWaitSec     float64 `json:"avg_data_wait_s"`
	AvgCPUWaitSec      float64 `json:"avg_cpu_wait_s"`
	AvgExecSec         float64 `json:"avg_exec_s"`
}

// RecordOf converts an aggregated CellResult into its stream form.
func RecordOf(cr *CellResult) CellRecord {
	rec := CellRecord{
		Cell:               cr.Cell,
		Runs:               cr.Runs,
		AvgResponseSec:     cr.AvgResponseSec,
		StdResponseSec:     cr.StdResponseSec,
		CI95ResponseSec:    cr.CI95ResponseSec,
		AvgDataPerJobMB:    cr.AvgDataPerJobMB,
		AvgIdleFrac:        cr.AvgIdleFrac,
		AvgDispatchWaitSec: cr.AvgDispatchWaitSec,
		AvgDataWaitSec:     cr.AvgDataWaitSec,
		AvgCPUWaitSec:      cr.AvgCPUWaitSec,
		AvgExecSec:         cr.AvgExecSec,
	}
	if cr.Err != nil {
		rec.Err = cr.Err.Error()
	}
	return rec
}

// CellResult converts a stream record back to the in-memory form the
// report renderers consume.
func (rec CellRecord) CellResult() CellResult {
	cr := CellResult{
		Cell:               rec.Cell,
		Runs:               rec.Runs,
		AvgResponseSec:     rec.AvgResponseSec,
		StdResponseSec:     rec.StdResponseSec,
		CI95ResponseSec:    rec.CI95ResponseSec,
		AvgDataPerJobMB:    rec.AvgDataPerJobMB,
		AvgIdleFrac:        rec.AvgIdleFrac,
		AvgDispatchWaitSec: rec.AvgDispatchWaitSec,
		AvgDataWaitSec:     rec.AvgDataWaitSec,
		AvgCPUWaitSec:      rec.AvgCPUWaitSec,
		AvgExecSec:         rec.AvgExecSec,
	}
	if rec.Err != "" {
		cr.Err = fmt.Errorf("%s", rec.Err)
	}
	return cr
}

// StreamWriter appends CellRecords to a JSONL file, flushing after every
// record so an interrupted campaign leaves every completed cell on disk.
// Paths ending in ".gz" are gzip-compressed transparently (same
// convention as internal/trace.CreateWriter). Safe for concurrent use
// (writes are serialized by a mutex, though the campaign collector
// already serializes its OnCellDone calls).
type StreamWriter struct {
	mu  sync.Mutex
	f   *os.File
	gz  *gzip.Writer // nil for uncompressed streams
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// CreateStream opens (truncating) a JSONL result stream at path,
// layering gzip when the name ends in ".gz".
func CreateStream(path string) (*StreamWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: creating result stream: %w", err)
	}
	w := &StreamWriter{f: f}
	var sink io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		w.gz = gzip.NewWriter(f)
		sink = w.gz
	}
	w.bw = bufio.NewWriter(sink)
	w.enc = json.NewEncoder(w.bw)
	return w, nil
}

// Write appends one record and flushes it to the file.
func (w *StreamWriter) Write(rec CellRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.enc.Encode(rec); err != nil {
		w.err = err
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return err
	}
	if w.gz != nil {
		// Sync-flush the gzip layer so each record is recoverable from
		// disk even if the process dies before Close.
		if err := w.gz.Flush(); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

// Err returns the first write error, if any.
func (w *StreamWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes and closes every layer of the stream.
func (w *StreamWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	ferr := w.bw.Flush()
	if w.gz != nil {
		if zerr := w.gz.Close(); ferr == nil {
			ferr = zerr
		}
	}
	cerr := w.f.Close()
	if w.err != nil {
		return w.err
	}
	if ferr != nil {
		return ferr
	}
	return cerr
}

// ReadStream parses a JSONL result stream back into CellResults in file
// order (the order cells completed, not campaign order). On a decode
// error — typically a tail truncated by a crash mid-write — the records
// parsed so far are returned alongside the error, so callers can recover
// every completed cell from a partial stream.
func ReadStream(r io.Reader) ([]CellResult, error) {
	var out []CellResult
	dec := json.NewDecoder(r)
	for {
		var rec CellRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("experiments: record %d: %w", len(out)+1, err)
		}
		out = append(out, rec.CellResult())
	}
}

// ReadStreamFile reads a JSONL result stream from disk, gunzipping
// transparently when the name ends in ".gz" (same convention as
// internal/trace.OpenLog). Like ReadStream, it returns the parsed
// prefix alongside any decode error.
func ReadStreamFile(path string) ([]CellResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: opening result stream: %w", err)
	}
	defer f.Close()
	var r io.Reader = bufio.NewReader(f)
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("experiments: opening %s: %w", path, err)
		}
		defer zr.Close()
		r = zr
	}
	return ReadStream(r)
}

// Canonicalize hardens a streamed result set against the artifacts of
// at-least-once delivery: duplicate records (fabric upload retries,
// resumed campaigns appending cells already present) and out-of-order
// completion. Records are deduped by cell key with last-write-wins —
// a later record supersedes an earlier one for the same cell, matching
// "the rerun's result is the current one" semantics — while first-seen
// order is preserved. It returns the deduped results and how many
// superseded records were dropped, so callers can warn.
func Canonicalize(results []CellResult) ([]CellResult, int) {
	index := make(map[Cell]int, len(results))
	out := results[:0:0]
	dropped := 0
	for _, cr := range results {
		if at, seen := index[cr.Cell]; seen {
			out[at] = cr
			dropped++
			continue
		}
		index[cr.Cell] = len(out)
		out = append(out, cr)
	}
	return out, dropped
}
