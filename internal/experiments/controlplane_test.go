package experiments

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"chicsim/internal/obs/monitor"
	"chicsim/internal/obs/registry"
	"chicsim/internal/obs/watchdog"
)

// TestMonitorMidCampaign is the control-plane smoke test CI runs under
// -race: a campaign shares one registry with an HTTP monitor on an
// ephemeral port, /metrics and /status are scraped *while* workers run
// simulations, the Prometheus text must parse on every scrape, and the
// final counters must agree with the campaign's own results.
func TestMonitorMidCampaign(t *testing.T) {
	reg := registry.New()
	var done atomic.Int64
	type statusDoc struct {
		RunsDone int64 `json:"runs_done"`
		Total    int   `json:"total"`
	}
	const cells, seeds = 2, 3
	srv, err := monitor.Start("127.0.0.1:0", reg, func() any {
		return statusDoc{RunsDone: done.Load(), Total: cells * seeds}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Scrapers race the campaign until it finishes.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrapes := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get("http://" + srv.Addr() + "/metrics")
			if err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err := registry.CheckText(strings.NewReader(string(body))); err != nil {
				t.Errorf("mid-campaign /metrics does not parse: %v\n%s", err, body)
				return
			}
			resp, err = http.Get("http://" + srv.Addr() + "/status")
			if err != nil {
				t.Errorf("status: %v", err)
				return
			}
			var st statusDoc
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Errorf("mid-campaign /status does not parse: %v", err)
				return
			}
			if st.Total != cells*seeds {
				t.Errorf("/status total = %d, want %d", st.Total, cells*seeds)
				return
			}
			scrapes++
		}
	}()

	camp := Campaign{
		Base: tinyBase(),
		Cells: []Cell{
			{ES: "JobDataPresent", DS: "DataLeastLoaded", BandwidthMBps: 10},
			{ES: "JobRandom", DS: "DataRandom", BandwidthMBps: 10},
		},
		Seeds:    []uint64{1, 2, 3},
		Workers:  2,
		Metrics:  reg,
		Watchdog: watchdog.Fail,
		OnRunDone: func(c Cell, seed uint64, err error) {
			done.Add(1)
			srv.Publish("run_done", map[string]any{"cell": c.String(), "seed": seed})
		},
	}
	camp.Base.ObsInterval = 500
	results := Run(camp)
	close(stop)
	wg.Wait()

	totalJobs := 0
	for _, cr := range results {
		if cr.Err != nil {
			t.Fatalf("cell %v: %v", cr.Cell, cr.Err)
		}
		for _, r := range cr.Runs {
			totalJobs += r.JobsDone
		}
	}
	if done.Load() != cells*seeds {
		t.Fatalf("OnRunDone fired %d times, want %d", done.Load(), cells*seeds)
	}
	// Shared-registry counters merge across workers deterministically.
	if v, ok := reg.Value("sim_jobs_total", "done"); !ok || int(v) != totalJobs {
		t.Errorf("sim_jobs_total{done} = %v, %v; want %d", v, ok, totalJobs)
	}
	if v, ok := reg.Value("campaign_runs_total", "ok"); !ok || int(v) != cells*seeds {
		t.Errorf("campaign_runs_total{ok} = %v, %v; want %d", v, ok, cells*seeds)
	}
	if v, ok := reg.Value("campaign_cells_total"); !ok || int(v) != cells {
		t.Errorf("campaign_cells_total = %v, %v; want %d", v, ok, cells)
	}
	t.Logf("scraped /metrics+/status %d times mid-campaign", scrapes)
}

// TestCampaignSharedRegistryDeterministic: counter totals across a
// shared campaign registry must not depend on worker count.
func TestCampaignSharedRegistryDeterministic(t *testing.T) {
	gather := func(workers int) (float64, float64) {
		reg := registry.New()
		camp := Campaign{
			Base: tinyBase(),
			Cells: []Cell{
				{ES: "JobDataPresent", DS: "DataLeastLoaded", BandwidthMBps: 10},
				{ES: "JobLeastLoaded", DS: "DataLeastLoaded", BandwidthMBps: 10},
			},
			Seeds:   []uint64{1, 2},
			Workers: workers,
			Metrics: reg,
		}
		camp.Base.ObsInterval = 500
		for _, cr := range Run(camp) {
			if cr.Err != nil {
				t.Fatalf("cell %v: %v", cr.Cell, cr.Err)
			}
		}
		d, _ := reg.Value("sim_jobs_total", "done")
		disp, _ := reg.Value("sim_dispatches_total")
		return d, disp
	}
	d1, disp1 := gather(1)
	d4, disp4 := gather(4)
	if d1 != d4 || disp1 != disp4 {
		t.Errorf("shared-registry counters depend on workers: (%v, %v) vs (%v, %v)", d1, disp1, d4, disp4)
	}
}
