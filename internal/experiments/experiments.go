// Package experiments defines the paper's evaluation campaign — "a total
// of 72 simulation experiments. For each of our 4x3=12 pairs of scheduling
// algorithms, we ran six experiments: three with data grid parameters as
// above and three with network bandwidth increased by a factor of ten"
// (§5.2) — and a parallel runner that executes them across CPU cores.
//
// Independent simulations are the natural unit of parallelism here: each
// simulation itself is a deterministic single-threaded event loop, so
// results are bit-identical regardless of worker count.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"

	"chicsim/internal/core"
	"chicsim/internal/obs"
	"chicsim/internal/obs/registry"
	"chicsim/internal/obs/watchdog"
	"chicsim/internal/stats"
)

// Cell identifies one (ES, DS, bandwidth) combination in the campaign.
// SiteMTBF, when > 0, additionally subjects the cell to site-crash fault
// injection at that mean time between failures (degraded-grid sweeps).
type Cell struct {
	ES            string
	DS            string
	BandwidthMBps float64
	SiteMTBF      float64
}

func (c Cell) String() string {
	if c.SiteMTBF > 0 {
		return fmt.Sprintf("%s+%s@%gMB/s/mtbf=%gs", c.ES, c.DS, c.BandwidthMBps, c.SiteMTBF)
	}
	return fmt.Sprintf("%s+%s@%gMB/s", c.ES, c.DS, c.BandwidthMBps)
}

// CellResult aggregates one cell's seed replications.
type CellResult struct {
	Cell Cell
	Runs []core.Results
	Err  error // first failure, if any

	AvgResponseSec  float64 // mean over seeds
	StdResponseSec  float64
	CI95ResponseSec float64 // half-width of the 95% CI over seeds
	AvgDataPerJobMB float64
	AvgIdleFrac     float64

	// Response-time decomposition, mean over seeds of each run's per-job
	// means. The four components sum to AvgResponseSec (each run's do),
	// so the campaign tables can show *where* response time goes per cell.
	AvgDispatchWaitSec float64
	AvgDataWaitSec     float64
	AvgCPUWaitSec      float64
	AvgExecSec         float64
}

// ResponseSamples returns the per-seed response means (for significance
// tests between cells).
func (cr *CellResult) ResponseSamples() []float64 {
	out := make([]float64, 0, len(cr.Runs))
	for _, r := range cr.Runs {
		out = append(out, r.AvgResponseSec)
	}
	return out
}

// aggregate fills the derived fields from Runs.
func (cr *CellResult) aggregate() {
	if len(cr.Runs) == 0 {
		return
	}
	var data, idle []float64
	var disp, dwait, cpu, exec []float64
	for _, r := range cr.Runs {
		data = append(data, r.AvgDataPerJobMB)
		idle = append(idle, r.IdleFrac)
		disp = append(disp, r.AvgDispatchWaitSec)
		dwait = append(dwait, r.AvgDataWaitSec)
		cpu = append(cpu, r.AvgCPUWaitSec)
		exec = append(exec, r.AvgExecSec)
	}
	sum := stats.Summarize(cr.ResponseSamples())
	cr.AvgResponseSec = sum.Mean
	cr.StdResponseSec = sum.StdDev
	cr.CI95ResponseSec = sum.CI95
	cr.AvgDataPerJobMB = stats.Mean(data)
	cr.AvgIdleFrac = stats.Mean(idle)
	cr.AvgDispatchWaitSec = stats.Mean(disp)
	cr.AvgDataWaitSec = stats.Mean(dwait)
	cr.AvgCPUWaitSec = stats.Mean(cpu)
	cr.AvgExecSec = stats.Mean(exec)
}

// CompareResponse runs Welch's t-test on the per-seed response times of
// two cells, answering the paper's "no significant performance
// difference" style questions (§5.2: DataRandom vs DataLeastLoaded).
func CompareResponse(a, b *CellResult) (stats.TTestResult, error) {
	return stats.WelchTTest(a.ResponseSamples(), b.ResponseSamples())
}

// Campaign describes a set of cells to run with seed replication.
type Campaign struct {
	Base    core.Config // template; ES/DS/Bandwidth/Seed overridden per run
	Cells   []Cell
	Seeds   []uint64
	Workers int // <= 0: GOMAXPROCS

	// ObsInterval, when > 0, attaches the probe registry to every
	// simulation (overriding Base.ObsInterval) so each run's Results
	// carry a per-site time series. Each simulation samples on its own
	// virtual clock, so series are bit-identical regardless of Workers.
	ObsInterval float64

	// Progress, when non-nil, receives wall-clock telemetry (runs
	// done/total, sims/sec, ETA, worker occupancy) as workers pick up
	// and finish simulations. May be nil.
	Progress *obs.Progress

	// Metrics, when non-nil, is shared by every simulation in the
	// campaign: counters and histograms merge deterministically across
	// workers (the updates commute); gauges are last-write-wins between
	// concurrently running simulations. The runner adds its own
	// campaign_runs_total / campaign_cells_total counters. Requires an
	// effective ObsInterval > 0 (here or in Base), or every run errors.
	Metrics *registry.Registry

	// Watchdog applies the given invariant-check mode to every run; a
	// Fail-mode violation surfaces as that cell's Err. Requires an
	// effective ObsInterval > 0.
	Watchdog watchdog.Mode

	// OnViolation, when non-nil, observes watchdog violations from any
	// run. Called concurrently from worker goroutines.
	OnViolation func(cell Cell, seed uint64, v watchdog.Violation)

	// OnRunStart, when non-nil, is called as a worker picks up a run.
	// Called concurrently from worker goroutines.
	OnRunStart func(cell Cell, seed uint64)

	// OnRunDone, when non-nil, observes every finished run. Calls are
	// serialized in the collector goroutine (safe for unsynchronized
	// sinks), but their order across cells is scheduling-dependent.
	OnRunDone func(cell Cell, seed uint64, err error)

	// OnCellDone, when non-nil, receives each cell the moment its last
	// seed finishes, fully aggregated with Runs sorted by seed. Calls
	// are serialized in the collector goroutine — the JSONL streaming
	// hook. Cell completion order is scheduling-dependent; the slice
	// Run returns is always in campaign cell order.
	OnCellDone func(*CellResult)

	// DropRuns releases each cell's per-run Results right after the
	// cell aggregates (and OnCellDone observes it), bounding campaign
	// memory to in-flight cells instead of the whole result matrix.
	// Aggregates and Err survive; Runs come back nil.
	DropRuns bool
}

// PaperSeeds are the default three seed replications ("within each set of
// three, we ran with different random seeds").
func PaperSeeds() []uint64 { return []uint64{1, 2, 3} }

// PaperCells returns the paper's full 12-pair campaign at the given
// bandwidth.
func PaperCells(bandwidthMBps float64) []Cell {
	var cells []Cell
	for _, dsName := range core.PaperDatasetNames() {
		for _, esName := range core.PaperExternalNames() {
			cells = append(cells, Cell{ES: esName, DS: dsName, BandwidthMBps: bandwidthMBps})
		}
	}
	return cells
}

// Figure5Cells returns the 4 ES × {10, 100} MB/s cells with
// DataLeastLoaded, matching Figure 5.
func Figure5Cells() []Cell {
	var cells []Cell
	for _, bw := range []float64{10, 100} {
		for _, esName := range core.PaperExternalNames() {
			cells = append(cells, Cell{ES: esName, DS: "DataLeastLoaded", BandwidthMBps: bw})
		}
	}
	return cells
}

// FaultSweepCells returns the degraded-grid sweep: the paper's winning
// pair (JobDataPresent+DataLeastLoaded) against the random baseline
// (JobRandom+DataRandom), each at every site-crash MTBF in mtbfs. An
// MTBF of 0 is the failure-free control column.
func FaultSweepCells(bandwidthMBps float64, mtbfs []float64) []Cell {
	pairs := []struct{ es, ds string }{
		{"JobDataPresent", "DataLeastLoaded"},
		{"JobRandom", "DataRandom"},
	}
	var cells []Cell
	for _, p := range pairs {
		for _, mtbf := range mtbfs {
			cells = append(cells, Cell{ES: p.es, DS: p.ds, BandwidthMBps: bandwidthMBps, SiteMTBF: mtbf})
		}
	}
	return cells
}

// FeedbackSweepCells returns the adaptive-vs-static sweep: the feedback
// pair (JobFeedback+DataFeedback) against the paper's strongest static
// pairs, each at the given bandwidth and at every site-crash MTBF in
// mtbfs (0 = failure-free column). Run it on a contended base config
// (e.g. InfoStaleness raised to 120 s) to expose the stale-information
// herding the telemetry loop corrects.
func FeedbackSweepCells(bandwidthMBps float64, mtbfs []float64) []Cell {
	pairs := []struct{ es, ds string }{
		{"JobFeedback", "DataFeedback"},
		{"JobDataPresent", "DataLeastLoaded"},
		{"JobDataPresent", "DataRandom"},
		{"JobLeastLoaded", "DataLeastLoaded"},
	}
	var cells []Cell
	for _, p := range pairs {
		for _, mtbf := range mtbfs {
			cells = append(cells, Cell{ES: p.es, DS: p.ds, BandwidthMBps: bandwidthMBps, SiteMTBF: mtbf})
		}
	}
	return cells
}

// FullPaperCampaign returns all 72 experiments: 12 pairs × 2 bandwidths
// (cells) × 3 seeds (replications).
func FullPaperCampaign(base core.Config) Campaign {
	cells := append(PaperCells(10), PaperCells(100)...)
	return Campaign{Base: base, Cells: cells, Seeds: PaperSeeds()}
}

// Run executes the campaign, farming independent simulations out to
// worker goroutines, and returns per-cell aggregates in cell order.
func Run(c Campaign) []CellResult {
	if len(c.Seeds) == 0 {
		c.Seeds = PaperSeeds()
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c.Progress.SetWorkers(workers)

	type task struct {
		cell int
		seed uint64
	}
	type outcome struct {
		cell int
		seed uint64
		res  core.Results
		err  error
	}
	tasks := make(chan task)
	outcomes := make(chan outcome)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				cfg := c.Base
				cfg.ES = c.Cells[t.cell].ES
				cfg.DS = c.Cells[t.cell].DS
				cfg.BandwidthMBps = c.Cells[t.cell].BandwidthMBps
				cfg.Seed = t.seed
				if mtbf := c.Cells[t.cell].SiteMTBF; mtbf > 0 {
					cfg.Faults.SiteCrash.MTBF = mtbf
					if cfg.Faults.SiteCrash.MTTR == 0 {
						cfg.Faults.SiteCrash.MTTR = 600
					}
				}
				if c.ObsInterval > 0 {
					cfg.ObsInterval = c.ObsInterval
				}
				cfg.Metrics = c.Metrics
				cfg.Watchdog = c.Watchdog
				if c.OnViolation != nil {
					cell, seed := c.Cells[t.cell], t.seed
					cfg.OnViolation = func(v watchdog.Violation) { c.OnViolation(cell, seed, v) }
				}
				if c.OnRunStart != nil {
					c.OnRunStart(c.Cells[t.cell], t.seed)
				}
				c.Progress.RunStart()
				// Tag the run for CPU profiles: `go tool pprof -tagfocus`
				// can then attribute samples to a single campaign cell or
				// seed when hunting kernel hot spots.
				var res core.Results
				var err error
				pprof.Do(context.Background(), pprof.Labels(
					"cell", c.Cells[t.cell].String(),
					"seed", strconv.FormatUint(t.seed, 10),
				), func(context.Context) {
					res, err = core.RunConfig(cfg)
				})
				c.Progress.RunDone(fmt.Sprintf("%v seed=%d", c.Cells[t.cell], t.seed))
				outcomes <- outcome{cell: t.cell, seed: t.seed, res: res, err: err}
			}
		}()
	}
	go func() {
		for i := range c.Cells {
			for _, seed := range c.Seeds {
				tasks <- task{cell: i, seed: seed}
			}
		}
		close(tasks)
		wg.Wait()
		close(outcomes)
	}()

	var runsOK, runsErr, cellsDone registry.Counter
	if c.Metrics != nil {
		rt := c.Metrics.Counter("campaign_runs_total",
			"Simulations finished by the campaign runner, by outcome.", "status")
		runsOK, runsErr = rt.With("ok"), rt.With("error")
		cellsDone = c.Metrics.Counter("campaign_cells_total",
			"Campaign cells fully completed (all seeds in).").With()
	}

	results := make([]CellResult, len(c.Cells))
	pending := make([]int, len(c.Cells))
	for i := range results {
		results[i].Cell = c.Cells[i]
		pending[i] = len(c.Seeds)
	}
	// The collector (this loop) is the only goroutine touching results,
	// so every callback fired here runs serialized.
	for o := range outcomes {
		cr := &results[o.cell]
		if o.err != nil {
			if cr.Err == nil {
				cr.Err = o.err
			}
			runsErr.Inc()
		} else {
			cr.Runs = append(cr.Runs, o.res)
			runsOK.Inc()
		}
		if c.OnRunDone != nil {
			c.OnRunDone(c.Cells[o.cell], o.seed, o.err)
		}
		if pending[o.cell]--; pending[o.cell] == 0 {
			// Seed order within a cell is nondeterministic from the
			// channel; sort before aggregating so float summation order —
			// and therefore every aggregate — is byte-stable across
			// worker counts.
			sort.Slice(cr.Runs, func(a, b int) bool {
				return cr.Runs[a].Seed < cr.Runs[b].Seed
			})
			cr.aggregate()
			cellsDone.Inc()
			if c.OnCellDone != nil {
				c.OnCellDone(cr)
			}
			if c.DropRuns {
				cr.Runs = nil
			}
		}
	}
	return results
}

// FindBandwidthCrossover bisects for the link bandwidth at which two
// External Scheduler algorithms reach equal average response time — the
// crossover the paper's §5.3 observes between data-moving policies
// (JobLocal) and job-moving policies (JobDataPresent) as networks speed
// up. Both algorithms use the base config's DS. The responses must
// bracket the crossover at lo and hi (one algorithm faster at each end);
// otherwise an error is returned. Each probe averages the given seeds.
func FindBandwidthCrossover(base core.Config, esA, esB string, lo, hi, tolMBps float64, seeds []uint64) (float64, error) {
	if lo <= 0 || hi <= lo || tolMBps <= 0 {
		return 0, fmt.Errorf("experiments: invalid bracket [%v, %v] tol %v", lo, hi, tolMBps)
	}
	if len(seeds) == 0 {
		seeds = PaperSeeds()
	}
	diff := func(bw float64) (float64, error) {
		var dA, dB float64
		for _, seed := range seeds {
			for _, esName := range []string{esA, esB} {
				cfg := base
				cfg.ES = esName
				cfg.BandwidthMBps = bw
				cfg.Seed = seed
				res, err := core.RunConfig(cfg)
				if err != nil {
					return 0, err
				}
				if esName == esA {
					dA += res.AvgResponseSec
				} else {
					dB += res.AvgResponseSec
				}
			}
		}
		return dA - dB, nil
	}
	dLo, err := diff(lo)
	if err != nil {
		return 0, err
	}
	dHi, err := diff(hi)
	if err != nil {
		return 0, err
	}
	if dLo == 0 {
		return lo, nil
	}
	if dHi == 0 {
		return hi, nil
	}
	if (dLo > 0) == (dHi > 0) {
		return 0, fmt.Errorf("experiments: no crossover in [%v, %v] MB/s (diffs %v, %v)", lo, hi, dLo, dHi)
	}
	for hi-lo > tolMBps {
		mid := (lo + hi) / 2
		dMid, err := diff(mid)
		if err != nil {
			return 0, err
		}
		if dMid == 0 {
			return mid, nil
		}
		if (dMid > 0) == (dLo > 0) {
			lo, dLo = mid, dMid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// ByCell indexes results for lookup in assertions and report code.
func ByCell(results []CellResult) map[Cell]*CellResult {
	m := make(map[Cell]*CellResult, len(results))
	for i := range results {
		m[results[i].Cell] = &results[i]
	}
	return m
}
