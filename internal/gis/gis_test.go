package gis

import (
	"testing"

	"chicsim/internal/catalog"
	"chicsim/internal/desim"
	"chicsim/internal/rng"
	"chicsim/internal/topology"
)

func fixture(t *testing.T, staleness float64) (*desim.Engine, *catalog.Catalog, map[topology.SiteID]int, *Service) {
	t.Helper()
	eng := desim.New()
	cat := catalog.New()
	topo, err := topology.NewStar(4, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	loads := map[topology.SiteID]int{}
	svc := New(eng, cat, topo, func(s topology.SiteID) int { return loads[s] }, staleness)
	return eng, cat, loads, svc
}

func TestOracleMode(t *testing.T) {
	_, cat, loads, svc := fixture(t, 0)
	cat.DefineFile(1, 5e8)
	cat.Register(1, 2)
	loads[3] = 7
	if svc.Load(3) != 7 {
		t.Fatal("oracle load wrong")
	}
	loads[3] = 9
	if svc.Load(3) != 9 {
		t.Fatal("oracle load not live")
	}
	if reps := svc.Replicas(1); len(reps) != 1 || reps[0] != 2 {
		t.Fatalf("Replicas = %v", reps)
	}
	if !svc.HasReplica(1, 2) || svc.HasReplica(1, 0) {
		t.Fatal("HasReplica wrong")
	}
	if svc.FileSize(1) != 5e8 {
		t.Fatal("FileSize wrong")
	}
	if svc.NumSites() != 4 {
		t.Fatal("NumSites wrong")
	}
}

func TestStaleSnapshots(t *testing.T) {
	eng, cat, loads, svc := fixture(t, 60)
	cat.DefineFile(1, 5e8)
	loads[1] = 3

	var checks []func()
	at := func(ti desim.Time, fn func()) { checks = append(checks, func() { eng.At(ti, fn) }) }
	at(0, func() {
		if svc.Load(1) != 3 {
			t.Error("initial snapshot missed load")
		}
		loads[1] = 10
		cat.Register(1, 2)
		if svc.Load(1) != 3 {
			t.Error("snapshot should still say 3")
		}
		if svc.HasReplica(1, 2) {
			t.Error("snapshot should not see new replica yet")
		}
	})
	at(59, func() {
		if svc.Load(1) != 3 {
			t.Error("59s: snapshot should be unchanged")
		}
	})
	at(61, func() {
		if svc.Load(1) != 10 {
			t.Error("61s: snapshot should have refreshed")
		}
		if !svc.HasReplica(1, 2) {
			t.Error("61s: replica visible after refresh")
		}
		if reps := svc.Replicas(1); len(reps) != 1 || reps[0] != 2 {
			t.Errorf("Replicas = %v", reps)
		}
	})
	for _, c := range checks {
		c()
	}
	eng.Run()
}

func TestReplicasVisibleTo(t *testing.T) {
	eng := desim.New()
	cat := catalog.New()
	topo, err := topology.NewHierarchical(topology.Config{Sites: 9, RegionFanout: 3, Bandwidth: 1e6}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	svc := New(eng, cat, topo, func(topology.SiteID) int { return 0 }, 0)
	cat.DefineFile(1, 1e9)

	viewer := topology.SiteID(0)
	sibs := topo.Siblings(viewer)
	var outsider topology.SiteID = -1
	inRegion := map[topology.SiteID]bool{viewer: true}
	for _, s := range sibs {
		inRegion[s] = true
	}
	for s := topology.SiteID(0); s < 9; s++ {
		if !inRegion[s] {
			outsider = s
			break
		}
	}

	// Master at the outsider: globally visible even out of region.
	svc.SetMaster(1, outsider)
	cat.Register(1, outsider)
	cat.Register(1, sibs[0])
	got := svc.ReplicasVisibleTo(1, viewer)
	if len(got) != 2 {
		t.Fatalf("visible = %v, want master + sibling", got)
	}

	// A non-master replica out of region is invisible.
	var outsider2 topology.SiteID = -1
	for s := outsider + 1; s < 9; s++ {
		if !inRegion[s] && s != outsider {
			outsider2 = s
			break
		}
	}
	cat.Register(1, outsider2)
	got = svc.ReplicasVisibleTo(1, viewer)
	for _, r := range got {
		if r == outsider2 {
			t.Fatalf("out-of-region replica %d visible", outsider2)
		}
	}
	// The outsider itself sees its own copy.
	got = svc.ReplicasVisibleTo(1, outsider2)
	found := false
	for _, r := range got {
		if r == outsider2 {
			found = true
		}
	}
	if !found {
		t.Fatal("site cannot see its own replica")
	}
}

func TestLeastLoaded(t *testing.T) {
	_, _, loads, svc := fixture(t, 0)
	loads[0], loads[1], loads[2], loads[3] = 4, 1, 1, 9
	cands := []topology.SiteID{0, 1, 2, 3}
	counts := map[topology.SiteID]int{}
	tie := rng.New(3)
	for i := 0; i < 300; i++ {
		counts[svc.LeastLoaded(cands, tie)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("picked loaded site: %v", counts)
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Fatalf("ties not randomized: %v", counts)
	}
	// Deterministic without a tie-breaker: first in candidate order.
	if got := svc.LeastLoaded(cands, nil); got != 1 {
		t.Fatalf("deterministic pick = %d, want 1", got)
	}
}

func TestLeastLoadedEmptyPanics(t *testing.T) {
	_, _, _, svc := fixture(t, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	svc.LeastLoaded(nil, nil)
}

func TestFileSizeUnknownPanics(t *testing.T) {
	_, _, _, svc := fixture(t, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	svc.FileSize(42)
}
