// Package gis implements the Grid Information Service: the component that
// answers "what is the load at site X?" and "where are the replicas of
// file F?" for schedulers.
//
// The paper's modules obtain such external information "either from an
// information service (e.g., the Globus Toolkit's Monitoring and Discovery
// Service, Network Weather Service) or directly from sites". The default
// service is an oracle (fresh answers, as the paper effectively assumes);
// a configurable staleness interval makes the service answer from periodic
// snapshots instead, modelling MDS-style cached indexes (extension, see
// DESIGN.md §6).
package gis

import (
	"chicsim/internal/catalog"
	"chicsim/internal/desim"
	"chicsim/internal/rng"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

// LoadFunc reports a site's current load: the paper defines load as "the
// least number of jobs waiting to run", so this is the incoming-queue
// length.
type LoadFunc func(topology.SiteID) int

// Service answers scheduler queries about grid state.
type Service struct {
	eng      *desim.Engine
	cat      *catalog.Catalog
	topo     *topology.Topology
	loadOf   LoadFunc
	stale    float64 // snapshot refresh period; 0 = oracle
	snapTime desim.Time
	snapLoad []int
	// snapRep holds the snapshotted replica lists, indexed by file id
	// (nil for undefined files). The per-file buffers are reused across
	// refreshes — each refresh overwrites their contents wholesale, which
	// is indistinguishable from the historical fresh-copy-per-refresh
	// because no caller retains a returned slice across events.
	snapRep [][]topology.SiteID
	tieBuf  []topology.SiteID // LeastLoaded's detached tie set, reused

	// masterOf records each file's permanent master site. Masters are
	// globally advertised even under regional scoping (the initial
	// dataset→site mapping is static, well-known metadata).
	masterOf map[storage.FileID]topology.SiteID
	// regionOf caches each site's region membership for scoped queries.
	regionOf []map[topology.SiteID]bool
}

// New creates a service. staleness <= 0 yields an oracle.
func New(eng *desim.Engine, cat *catalog.Catalog, topo *topology.Topology, loadOf LoadFunc, staleness float64) *Service {
	return &Service{
		eng:      eng,
		cat:      cat,
		topo:     topo,
		loadOf:   loadOf,
		stale:    staleness,
		snapTime: -1,
	}
}

// Topology exposes the routed topology for hop/neighbor queries.
func (s *Service) Topology() *topology.Topology { return s.topo }

// SetMaster records a file's master site (used for scoped visibility:
// master locations are global knowledge).
func (s *Service) SetMaster(f storage.FileID, site topology.SiteID) {
	if s.masterOf == nil {
		s.masterOf = make(map[storage.FileID]topology.SiteID)
	}
	s.masterOf[f] = site
}

// region returns the membership set of viewer's region (viewer+siblings),
// built lazily.
func (s *Service) region(viewer topology.SiteID) map[topology.SiteID]bool {
	if s.regionOf == nil {
		s.regionOf = make([]map[topology.SiteID]bool, s.topo.NumSites())
	}
	if m := s.regionOf[viewer]; m != nil {
		return m
	}
	m := map[topology.SiteID]bool{viewer: true}
	for _, sib := range s.topo.Siblings(viewer) {
		m[sib] = true
	}
	s.regionOf[viewer] = m
	return m
}

// ReplicasVisibleTo returns the replica locations of f that a scheduler at
// `viewer` can see under regional information scoping: replicas within the
// viewer's region plus the file's master site. This models the paper's
// decentralized stance — "each site takes informed decisions based on its
// view of the Grid" — without a global replica index.
func (s *Service) ReplicasVisibleTo(f storage.FileID, viewer topology.SiteID) []topology.SiteID {
	all := s.Replicas(f)
	region := s.region(viewer)
	master, hasMaster := s.masterOf[f]
	out := make([]topology.SiteID, 0, len(all))
	for _, r := range all {
		if region[r] || (hasMaster && r == master) {
			out = append(out, r)
		}
	}
	return out
}

// NumSites returns the number of sites.
func (s *Service) NumSites() int { return s.topo.NumSites() }

// FileSize returns the file's size; it panics on unknown files (a
// scheduler asking about an undefined file is a harness bug).
func (s *Service) FileSize(f storage.FileID) float64 {
	size, ok := s.cat.Size(f)
	if !ok {
		panic("gis: size query for undefined file")
	}
	return size
}

func (s *Service) refresh() {
	if s.stale <= 0 {
		return
	}
	now := s.eng.Now()
	if s.snapTime >= 0 && now-s.snapTime < s.stale {
		return
	}
	s.snapTime = now
	n := s.topo.NumSites()
	if cap(s.snapLoad) < n {
		s.snapLoad = make([]int, n)
	}
	s.snapLoad = s.snapLoad[:n]
	for i := range s.snapLoad {
		s.snapLoad[i] = s.loadOf(topology.SiteID(i))
	}
	bound := s.cat.FileIDBound()
	for len(s.snapRep) < bound {
		s.snapRep = append(s.snapRep, nil)
	}
	for f := 0; f < bound; f++ {
		id := storage.FileID(f)
		if _, ok := s.cat.Size(id); !ok {
			s.snapRep[f] = nil
			continue
		}
		s.snapRep[f] = append(s.snapRep[f][:0], s.cat.ReplicaList(id)...)
	}
}

// SnapshotAge returns how old (in virtual seconds) the snapshot backing
// answers currently is: 0 for the oracle, and 0 before the first query
// has forced a snapshot. Exposed as an observability probe so a series
// shows how stale the information schedulers were acting on.
func (s *Service) SnapshotAge() float64 {
	if s.stale <= 0 || s.snapTime < 0 {
		return 0
	}
	return s.eng.Now() - s.snapTime
}

// Load returns the (possibly snapshotted) load of a site.
func (s *Service) Load(site topology.SiteID) int {
	if s.stale <= 0 {
		return s.loadOf(site)
	}
	s.refresh()
	return s.snapLoad[site]
}

// Replicas returns the (possibly snapshotted) replica locations of f,
// sorted by site id.
func (s *Service) Replicas(f storage.FileID) []topology.SiteID {
	if s.stale <= 0 {
		return s.cat.Replicas(f)
	}
	s.refresh()
	if f < 0 || int(f) >= len(s.snapRep) {
		return nil
	}
	return s.snapRep[f]
}

// HasReplica reports whether site currently holds f per the service's view.
func (s *Service) HasReplica(f storage.FileID, site topology.SiteID) bool {
	if s.stale <= 0 {
		return s.cat.HasReplica(f, site)
	}
	s.refresh()
	if f < 0 || int(f) >= len(s.snapRep) {
		return false
	}
	// Linear scan, not binary search: LeastLoaded's tie-set writes can
	// reorder a snapshot entry within a staleness window (see below), so
	// the slice is not guaranteed sorted.
	for _, r := range s.snapRep[f] {
		if r == site {
			return true
		}
	}
	return false
}

// LeastLoaded returns the candidate with minimum load; ties are broken
// uniformly at random from the tied set so no site is systematically
// preferred. It panics on an empty candidate list.
//
// Allocation-free emulation of the historical append-into-subslice tie
// set: while the running best set still aliases candidates, ties are
// written into candidates[1:] — observable when the caller passes a
// snapshot-backed slice, and recorded runs depend on those writes — and
// once a strictly lower load appears the set moves to a reused scratch
// buffer (the historical fresh allocation), after which candidates is
// never written again.
func (s *Service) LeastLoaded(candidates []topology.SiteID, tie *rng.Source) topology.SiteID {
	if len(candidates) == 0 {
		panic("gis: LeastLoaded with no candidates")
	}
	n := 1
	aliased := true
	bestLoad := s.Load(candidates[0])
	det := s.tieBuf[:0]
	for i := 1; i < len(candidates); i++ {
		c := candidates[i]
		l := s.Load(c)
		switch {
		case l < bestLoad:
			bestLoad = l
			aliased = false
			det = append(det[:0], c)
		case l == bestLoad:
			if aliased {
				candidates[n] = c
				n++
			} else {
				det = append(det, c)
			}
		}
	}
	s.tieBuf = det
	best := candidates[:n]
	if !aliased {
		best = det
	}
	if len(best) == 1 || tie == nil {
		return best[0]
	}
	return rng.Pick(tie, best)
}
