// Package topology models the hierarchical (GriPhyN-style) network that
// connects Data Grid sites.
//
// The paper assumes "a hierarchical network topology much like that
// envisioned by the GriPhyN project": a tree with a root hub, regional
// centers beneath it, and leaf sites beneath the regions. Every edge is a
// bidirectional link with a nominal bandwidth; the route between two sites
// climbs to their lowest common ancestor and descends.
package topology

import (
	"fmt"

	"chicsim/internal/rng"
)

// NodeID identifies a node in the topology (interior router or leaf site).
type NodeID int

// LinkID identifies a bidirectional link.
type LinkID int

// SiteID identifies a leaf site (dense 0..NumSites-1, distinct from NodeID).
type SiteID int

// Link is a bidirectional network link with a nominal bandwidth in
// bytes/second shared by all concurrent transfers that cross it.
type Link struct {
	ID        LinkID
	A, B      NodeID
	Bandwidth float64 // bytes per second
}

// Node is a vertex of the hierarchy.
type Node struct {
	ID     NodeID
	Parent NodeID // -1 for the root
	Depth  int
	Site   SiteID // >= 0 iff the node is a leaf site
	up     LinkID // link to parent; -1 for root
}

// Topology is an immutable routed network. Build one with NewHierarchical
// or NewStar and share it freely: all methods are read-only after
// construction.
type Topology struct {
	nodes    []Node
	links    []Link
	siteNode []NodeID     // site -> leaf node
	routes   [][][]LinkID // [srcSite][dstSite] -> ordered link path
	hops     [][]int
	siblings [][]SiteID // site -> same-parent sites, precomputed
}

// Config controls hierarchy construction.
type Config struct {
	Sites        int     // number of leaf sites (> 0)
	RegionFanout int     // leaf sites per regional center (> 0)
	Bandwidth    float64 // nominal bandwidth of access links, bytes/sec (> 0)
	// BackboneBandwidth, when > 0, overrides Bandwidth for the links
	// between the root and regional centers — GriPhyN-style provisioned
	// backbones. 0 means backbone links share the access bandwidth (the
	// paper's single "connectivity bandwidth").
	BackboneBandwidth float64
}

// NewHierarchical builds a three-tier tree: one root, ceil(Sites/Fanout)
// regional centers, and Sites leaves distributed round-robin over regions.
// The rand source only breaks ordering ties (region assignment shuffle) so
// that site index does not correlate with region membership.
func NewHierarchical(cfg Config, src *rng.Source) (*Topology, error) {
	if cfg.Sites <= 0 {
		return nil, fmt.Errorf("topology: Sites = %d, must be > 0", cfg.Sites)
	}
	if cfg.RegionFanout <= 0 {
		return nil, fmt.Errorf("topology: RegionFanout = %d, must be > 0", cfg.RegionFanout)
	}
	if cfg.Bandwidth <= 0 {
		return nil, fmt.Errorf("topology: Bandwidth = %v, must be > 0", cfg.Bandwidth)
	}
	backbone := cfg.BackboneBandwidth
	if backbone <= 0 {
		backbone = cfg.Bandwidth
	}
	t := &Topology{}
	root := t.addNode(-1, -1, cfg.Bandwidth)

	regions := (cfg.Sites + cfg.RegionFanout - 1) / cfg.RegionFanout
	regionNodes := make([]NodeID, regions)
	for r := 0; r < regions; r++ {
		regionNodes[r] = t.addNode(root, -1, backbone)
	}

	// Assign sites to regions round-robin over a shuffled site order.
	order := make([]int, cfg.Sites)
	for i := range order {
		order[i] = i
	}
	if src != nil {
		rng.Shuffle(src, order)
	}
	t.siteNode = make([]NodeID, cfg.Sites)
	for i, site := range order {
		region := regionNodes[i%regions]
		t.siteNode[site] = t.addNode(region, SiteID(site), cfg.Bandwidth)
	}
	t.computeRoutes()
	return t, nil
}

// NewTiered builds a general GriPhyN-style hierarchy with an arbitrary
// number of tiers: fanouts[i] children per node at depth i, with leaves at
// depth len(fanouts) becoming the sites. bandwidths[i] is the bandwidth of
// links from depth i to depth i+1; pass a single-element slice for uniform
// links. The GriPhyN vision is four tiers (CERN → regional centers →
// institutions → workstations); the paper's three-tier layout is
// NewTiered([]int{regions, sitesPerRegion}, ...).
func NewTiered(fanouts []int, bandwidths []float64) (*Topology, error) {
	if len(fanouts) == 0 {
		return nil, fmt.Errorf("topology: NewTiered needs at least one tier")
	}
	for i, f := range fanouts {
		if f <= 0 {
			return nil, fmt.Errorf("topology: tier %d fanout %d", i, f)
		}
	}
	if len(bandwidths) == 0 {
		return nil, fmt.Errorf("topology: NewTiered needs link bandwidths")
	}
	for i, b := range bandwidths {
		if b <= 0 {
			return nil, fmt.Errorf("topology: tier %d bandwidth %v", i, b)
		}
	}
	bwAt := func(depth int) float64 {
		if depth < len(bandwidths) {
			return bandwidths[depth]
		}
		return bandwidths[len(bandwidths)-1]
	}
	t := &Topology{}
	frontier := []NodeID{t.addNode(-1, -1, 0)}
	for depth, fanout := range fanouts {
		leafTier := depth == len(fanouts)-1
		var next []NodeID
		for _, parent := range frontier {
			for c := 0; c < fanout; c++ {
				site := SiteID(-1)
				if leafTier {
					site = SiteID(len(t.siteNode))
				}
				id := t.addNode(parent, site, bwAt(depth))
				if leafTier {
					t.siteNode = append(t.siteNode, id)
				}
				next = append(next, id)
			}
		}
		frontier = next
	}
	t.computeRoutes()
	return t, nil
}

// NewStar builds a degenerate hierarchy: every site hangs directly off one
// hub. Useful for tests and for isolating contention at a single shared
// point.
func NewStar(sites int, bandwidth float64) (*Topology, error) {
	if sites <= 0 || bandwidth <= 0 {
		return nil, fmt.Errorf("topology: invalid star parameters (sites=%d bw=%v)", sites, bandwidth)
	}
	t := &Topology{}
	hub := t.addNode(-1, -1, bandwidth)
	t.siteNode = make([]NodeID, sites)
	for s := 0; s < sites; s++ {
		t.siteNode[s] = t.addNode(hub, SiteID(s), bandwidth)
	}
	t.computeRoutes()
	return t, nil
}

func (t *Topology) addNode(parent NodeID, site SiteID, bw float64) NodeID {
	id := NodeID(len(t.nodes))
	n := Node{ID: id, Parent: parent, Site: site, up: -1}
	if parent >= 0 {
		n.Depth = t.nodes[parent].Depth + 1
		lid := LinkID(len(t.links))
		t.links = append(t.links, Link{ID: lid, A: parent, B: id, Bandwidth: bw})
		n.up = lid
	}
	t.nodes = append(t.nodes, n)
	return id
}

func (t *Topology) computeRoutes() {
	n := len(t.siteNode)
	t.routes = make([][][]LinkID, n)
	t.hops = make([][]int, n)
	for a := 0; a < n; a++ {
		t.routes[a] = make([][]LinkID, n)
		t.hops[a] = make([]int, n)
		for b := 0; b < n; b++ {
			path := t.route(t.siteNode[a], t.siteNode[b])
			t.routes[a][b] = path
			t.hops[a][b] = len(path)
		}
	}
	t.siblings = make([][]SiteID, n)
	for a := 0; a < n; a++ {
		parent := t.nodes[t.siteNode[a]].Parent
		var out []SiteID
		for s, nid := range t.siteNode {
			if s != a && t.nodes[nid].Parent == parent {
				out = append(out, SiteID(s))
			}
		}
		t.siblings[a] = out
	}
}

// route climbs both endpoints to their lowest common ancestor, collecting
// uplinks; the down-side links are appended in descent order.
func (t *Topology) route(a, b NodeID) []LinkID {
	if a == b {
		return nil
	}
	var up, down []LinkID
	x, y := a, b
	for x != y {
		if t.nodes[x].Depth >= t.nodes[y].Depth {
			up = append(up, t.nodes[x].up)
			x = t.nodes[x].Parent
		} else {
			down = append(down, t.nodes[y].up)
			y = t.nodes[y].Parent
		}
	}
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}

// NumSites returns the number of leaf sites.
func (t *Topology) NumSites() int { return len(t.siteNode) }

// NumLinks returns the number of links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Link returns the link with the given id.
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// Links returns all links (do not mutate).
func (t *Topology) Links() []Link { return t.links }

// Route returns the ordered list of links between two sites (empty when
// src == dst). The returned slice is shared; callers must not mutate it.
func (t *Topology) Route(src, dst SiteID) []LinkID { return t.routes[src][dst] }

// Hops returns the number of links on the route between two sites.
func (t *Topology) Hops(src, dst SiteID) int { return t.hops[src][dst] }

// Siblings returns the sites that share src's regional parent, excluding
// src itself. These are the "neighbors" used by the DataLeastLoaded dataset
// scheduler. The returned slice is precomputed and shared; callers must
// not mutate it.
func (t *Topology) Siblings(src SiteID) []SiteID { return t.siblings[src] }

// IsBackbone reports whether the link connects the root to a regional
// center (the shared top-tier links of the hierarchy).
func (t *Topology) IsBackbone(l LinkID) bool {
	link := t.links[l]
	return t.nodes[link.A].Parent == -1 || t.nodes[link.B].Parent == -1
}

// SiteDepth returns the tree depth of the site's leaf node.
func (t *Topology) SiteDepth(s SiteID) int { return t.nodes[t.siteNode[s]].Depth }
