package topology

import (
	"testing"
	"testing/quick"

	"chicsim/internal/rng"
)

func mustHier(t *testing.T, sites, fanout int) *Topology {
	t.Helper()
	topo, err := NewHierarchical(Config{Sites: sites, RegionFanout: fanout, Bandwidth: 10e6}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestHierarchicalShape(t *testing.T) {
	topo := mustHier(t, 30, 6)
	if topo.NumSites() != 30 {
		t.Fatalf("NumSites = %d", topo.NumSites())
	}
	// 1 root + 5 regions + 30 leaves => 36 nodes, 35 links.
	if topo.NumLinks() != 35 {
		t.Fatalf("NumLinks = %d, want 35", topo.NumLinks())
	}
	for s := 0; s < 30; s++ {
		if d := topo.SiteDepth(SiteID(s)); d != 2 {
			t.Fatalf("site %d depth = %d, want 2", s, d)
		}
	}
}

func TestRouteSelf(t *testing.T) {
	topo := mustHier(t, 10, 3)
	if len(topo.Route(4, 4)) != 0 {
		t.Fatal("self route should be empty")
	}
	if topo.Hops(4, 4) != 0 {
		t.Fatal("self hops should be 0")
	}
}

func TestRouteValidity(t *testing.T) {
	topo := mustHier(t, 30, 6)
	for a := 0; a < 30; a++ {
		for b := 0; b < 30; b++ {
			path := topo.Route(SiteID(a), SiteID(b))
			if a == b {
				continue
			}
			if len(path) < 2 {
				t.Fatalf("route %d->%d too short: %d links", a, b, len(path))
			}
			// Path must be a connected chain of links.
			cur := topo.siteNode[a]
			for i, lid := range path {
				l := topo.Link(lid)
				switch cur {
				case l.A:
					cur = l.B
				case l.B:
					cur = l.A
				default:
					t.Fatalf("route %d->%d link %d not adjacent", a, b, i)
				}
			}
			if cur != topo.siteNode[b] {
				t.Fatalf("route %d->%d does not end at destination", a, b)
			}
		}
	}
}

func TestRouteSymmetricLength(t *testing.T) {
	topo := mustHier(t, 20, 4)
	for a := 0; a < 20; a++ {
		for b := 0; b < 20; b++ {
			if topo.Hops(SiteID(a), SiteID(b)) != topo.Hops(SiteID(b), SiteID(a)) {
				t.Fatalf("asymmetric hops %d<->%d", a, b)
			}
		}
	}
}

func TestSiblingHops(t *testing.T) {
	topo := mustHier(t, 30, 6)
	for s := 0; s < 30; s++ {
		sibs := topo.Siblings(SiteID(s))
		if len(sibs) == 0 {
			t.Fatalf("site %d has no siblings", s)
		}
		for _, sib := range sibs {
			if h := topo.Hops(SiteID(s), sib); h != 2 {
				t.Fatalf("sibling hop count = %d, want 2", h)
			}
		}
	}
	// Non-siblings cross the root: 4 hops in a 3-tier tree.
	s0 := SiteID(0)
	sibs := map[SiteID]bool{}
	for _, sib := range topo.Siblings(s0) {
		sibs[sib] = true
	}
	for s := 1; s < 30; s++ {
		if !sibs[SiteID(s)] {
			if h := topo.Hops(s0, SiteID(s)); h != 4 {
				t.Fatalf("cross-region hops = %d, want 4", h)
			}
		}
	}
}

func TestNewTieredFourLevels(t *testing.T) {
	// GriPhyN vision: 1 root → 2 regions → 3 institutions each → 2
	// workstation-class sites each: 12 sites at depth 3.
	topo, err := NewTiered([]int{2, 3, 2}, []float64{100e6, 10e6, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumSites() != 12 {
		t.Fatalf("NumSites = %d, want 12", topo.NumSites())
	}
	for s := 0; s < 12; s++ {
		if d := topo.SiteDepth(SiteID(s)); d != 3 {
			t.Fatalf("site %d depth %d", s, d)
		}
	}
	// Deepest separation: 6 hops (3 up + 3 down).
	if h := topo.Hops(0, 11); h != 6 {
		t.Fatalf("cross-grid hops = %d, want 6", h)
	}
	// Sibling sites: 2 hops.
	sibs := topo.Siblings(0)
	if len(sibs) != 1 {
		t.Fatalf("siblings = %v, want exactly 1", sibs)
	}
	if h := topo.Hops(0, sibs[0]); h != 2 {
		t.Fatalf("sibling hops = %d", h)
	}
	// Tiered bandwidths land on the right links: leaf uplinks are 1 MB/s.
	leafUp := topo.Route(0, sibs[0])[0]
	if topo.Link(leafUp).Bandwidth != 1e6 {
		t.Fatalf("leaf uplink bw = %v", topo.Link(leafUp).Bandwidth)
	}
	// Backbone (root→region) links are 100 MB/s.
	for _, l := range topo.Links() {
		if topo.IsBackbone(l.ID) && l.Bandwidth != 100e6 {
			t.Fatalf("backbone bw = %v", l.Bandwidth)
		}
	}
}

func TestNewTieredMatchesHierarchicalShape(t *testing.T) {
	// NewTiered([]int{r, k}) has r regions × k sites, same depth layout
	// as NewHierarchical for divisible site counts.
	topo, err := NewTiered([]int{5, 6}, []float64{10e6})
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumSites() != 30 || topo.NumLinks() != 35 {
		t.Fatalf("sites=%d links=%d", topo.NumSites(), topo.NumLinks())
	}
	// Route validity across the tree.
	for a := 0; a < 30; a += 7 {
		for b := 0; b < 30; b += 5 {
			path := topo.Route(SiteID(a), SiteID(b))
			if (a == b) != (len(path) == 0) {
				t.Fatalf("route %d->%d length %d", a, b, len(path))
			}
		}
	}
}

func TestNewTieredErrors(t *testing.T) {
	if _, err := NewTiered(nil, []float64{1}); err == nil {
		t.Error("empty fanouts accepted")
	}
	if _, err := NewTiered([]int{2, 0}, []float64{1}); err == nil {
		t.Error("zero fanout accepted")
	}
	if _, err := NewTiered([]int{2}, nil); err == nil {
		t.Error("missing bandwidths accepted")
	}
	if _, err := NewTiered([]int{2}, []float64{-1}); err == nil {
		t.Error("negative bandwidth accepted")
	}
}

func TestBackboneBandwidth(t *testing.T) {
	topo, err := NewHierarchical(Config{Sites: 8, RegionFanout: 4, Bandwidth: 10e6, BackboneBandwidth: 100e6}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var access, backbone int
	for _, l := range topo.Links() {
		switch l.Bandwidth {
		case 10e6:
			access++
		case 100e6:
			backbone++
		default:
			t.Fatalf("unexpected bandwidth %v", l.Bandwidth)
		}
	}
	// 8 leaves (access), 2 regions (backbone).
	if access != 8 || backbone != 2 {
		t.Fatalf("access=%d backbone=%d", access, backbone)
	}
	// Default: zero backbone means uniform bandwidth.
	topo2 := mustHier(t, 8, 4)
	for _, l := range topo2.Links() {
		if l.Bandwidth != 10e6 {
			t.Fatalf("uniform topology has link at %v", l.Bandwidth)
		}
	}
}

func TestStar(t *testing.T) {
	topo, err := NewStar(5, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumLinks() != 5 {
		t.Fatalf("star links = %d, want 5", topo.NumLinks())
	}
	if topo.Hops(0, 1) != 2 {
		t.Fatalf("star hops = %d, want 2", topo.Hops(0, 1))
	}
	if len(topo.Siblings(0)) != 4 {
		t.Fatalf("star siblings = %d, want 4", len(topo.Siblings(0)))
	}
}

func TestSingleSite(t *testing.T) {
	topo, err := NewHierarchical(Config{Sites: 1, RegionFanout: 4, Bandwidth: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumSites() != 1 {
		t.Fatal("want 1 site")
	}
	if len(topo.Route(0, 0)) != 0 {
		t.Fatal("self route must be empty")
	}
}

func TestInvalidConfigs(t *testing.T) {
	cases := []Config{
		{Sites: 0, RegionFanout: 2, Bandwidth: 1},
		{Sites: 3, RegionFanout: 0, Bandwidth: 1},
		{Sites: 3, RegionFanout: 2, Bandwidth: 0},
		{Sites: -1, RegionFanout: 2, Bandwidth: 1},
	}
	for _, c := range cases {
		if _, err := NewHierarchical(c, rng.New(1)); err == nil {
			t.Errorf("config %+v: expected error", c)
		}
	}
	if _, err := NewStar(0, 1); err == nil {
		t.Error("NewStar(0): expected error")
	}
	if _, err := NewStar(2, -1); err == nil {
		t.Error("NewStar negative bw: expected error")
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := mustHier(t, 30, 6)
	b := mustHier(t, 30, 6)
	for s := 0; s < 30; s++ {
		sa, sb := a.Siblings(SiteID(s)), b.Siblings(SiteID(s))
		if len(sa) != len(sb) {
			t.Fatal("non-deterministic construction")
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatal("non-deterministic sibling sets")
			}
		}
	}
}

// Property: for random shapes, every pairwise route is a valid chain
// from src to dst and hop counts are symmetric.
func TestQuickRoutes(t *testing.T) {
	f := func(seed uint64, ns, nf uint8) bool {
		sites := int(ns)%40 + 1
		fanout := int(nf)%8 + 1
		topo, err := NewHierarchical(Config{Sites: sites, RegionFanout: fanout, Bandwidth: 1e6}, rng.New(seed))
		if err != nil {
			return false
		}
		for a := 0; a < sites; a++ {
			for b := 0; b < sites; b++ {
				path := topo.Route(SiteID(a), SiteID(b))
				if (a == b) != (len(path) == 0) {
					return false
				}
				cur := topo.siteNode[a]
				for _, lid := range path {
					l := topo.Link(lid)
					switch cur {
					case l.A:
						cur = l.B
					case l.B:
						cur = l.A
					default:
						return false
					}
				}
				if cur != topo.siteNode[b] {
					return false
				}
				if topo.Hops(SiteID(a), SiteID(b)) != topo.Hops(SiteID(b), SiteID(a)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
