package stats_test

import (
	"fmt"

	"chicsim/internal/stats"
)

// Summaries carry 95% confidence intervals for seed-replicated metrics.
func ExampleSummarize() {
	responses := []float64{514, 520, 509} // e.g. three seeds of one cell
	s := stats.Summarize(responses)
	fmt.Printf("n=%d mean=%.1f sd=%.1f\n", s.N, s.Mean, s.StdDev)
	// Output:
	// n=3 mean=514.3 sd=5.5
}

// Welch's t-test answers "is this difference real?" across seeds — the
// paper's DataRandom ≈ DataLeastLoaded claim in statistical form.
func ExampleWelchTTest() {
	dataRandom := []float64{527, 531, 525}
	dataLeastLoaded := []float64{514, 520, 509}
	r, err := stats.WelchTTest(dataRandom, dataLeastLoaded)
	if err != nil {
		panic(err)
	}
	fmt.Println("significant at 5%:", r.SignificantAt05)

	coupled := []float64{2373, 2391, 2350}
	r, _ = stats.WelchTTest(coupled, dataLeastLoaded)
	fmt.Println("coupled vs decoupled significant:", r.SignificantAt05)
	// Output:
	// significant at 5%: true
	// coupled vs decoupled significant: true
}

// Gini quantifies hotspot concentration: 0 is a perfectly balanced grid.
func ExampleGini() {
	balanced, _ := stats.Gini([]float64{10, 10, 10, 10})
	hotspot, _ := stats.Gini([]float64{37, 1, 1, 1})
	fmt.Printf("balanced=%.2f hotspot=%.2f\n", balanced, hotspot)
	// Output:
	// balanced=0.00 hotspot=0.68
}
