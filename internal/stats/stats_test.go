package stats

import (
	"math"
	"testing"
	"testing/quick"

	"chicsim/internal/rng"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if !almost(Variance(xs), 4.571428571, 1e-6) {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if !almost(StdDev(xs), 2.138089935, 1e-6) {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate cases")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	// Input must not be mutated.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Fatal("Median mutated input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 12, 14})
	if s.N != 3 || s.Mean != 12 || s.Min != 10 || s.Max != 14 {
		t.Fatalf("Summary = %+v", s)
	}
	// sd = 2, t(2 df) = 4.303 → CI = 4.303*2/sqrt(3).
	want := 4.303 * 2 / math.Sqrt(3)
	if !almost(s.CI95, want, 1e-9) {
		t.Fatalf("CI95 = %v, want %v", s.CI95, want)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
	if Summarize([]float64{5}).CI95 != 0 {
		t.Fatal("single-point CI must be 0")
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestTCritical(t *testing.T) {
	if tCritical95(1) != 12.706 || tCritical95(10) != 2.228 || tCritical95(30) != 2.042 {
		t.Fatal("table values wrong")
	}
	if tCritical95(45) != 2.02 || tCritical95(100) != 2.0 || tCritical95(1000) != 1.96 {
		t.Fatal("asymptotic values wrong")
	}
	if tCritical95(0) != 0 {
		t.Fatal("df=0")
	}
}

func TestWelchTTestDistinguishes(t *testing.T) {
	// Clearly different means, small variance: significant.
	a := []float64{100, 101, 99, 100, 100}
	b := []float64{200, 199, 201, 200, 200}
	r, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.SignificantAt05 {
		t.Fatalf("obvious difference not significant: %+v", r)
	}
	if r.T >= 0 {
		t.Fatalf("T sign: %v (a < b should give negative t)", r.T)
	}
}

func TestWelchTTestNoDifference(t *testing.T) {
	// Same distribution: not significant (matches the paper's
	// DataRandom ≈ DataLeastLoaded claim pattern).
	src := rng.New(5)
	var a, b []float64
	for i := 0; i < 10; i++ {
		a = append(a, 500+src.Range(-50, 50))
		b = append(b, 500+src.Range(-50, 50))
	}
	r, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.SignificantAt05 {
		t.Fatalf("same-distribution samples flagged significant: %+v", r)
	}
}

func TestWelchTTestErrors(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected size error")
	}
	if _, err := WelchTTest([]float64{5, 5}, []float64{7, 7}); err == nil {
		t.Fatal("expected zero-variance error")
	}
	if r, err := WelchTTest([]float64{5, 5}, []float64{5, 5}); err != nil || r.T != 0 {
		t.Fatal("identical zero-variance samples should give t=0")
	}
}

func TestGini(t *testing.T) {
	if g, _ := Gini([]float64{1, 1, 1, 1}); !almost(g, 0, 1e-12) {
		t.Fatalf("even Gini = %v", g)
	}
	// All mass in one element of n: G = (n-1)/n.
	if g, _ := Gini([]float64{0, 0, 0, 10}); !almost(g, 0.75, 1e-12) {
		t.Fatalf("concentrated Gini = %v", g)
	}
	if g, _ := Gini([]float64{0, 0}); g != 0 {
		t.Fatalf("zero-total Gini = %v", g)
	}
	if _, err := Gini(nil); err == nil {
		t.Fatal("empty Gini must error")
	}
	if _, err := Gini([]float64{1, -1}); err == nil {
		t.Fatal("negative Gini must error")
	}
}

func TestGiniOrderInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = src.Range(0, 100)
		}
		g1, err1 := Gini(xs)
		rng.Shuffle(src, xs)
		g2, err2 := Gini(xs)
		return err1 == nil && err2 == nil && almost(g1, g2, 1e-9) && g1 >= 0 && g1 < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if CoefficientOfVariation([]float64{5, 5, 5}) != 0 {
		t.Fatal("constant CV")
	}
	if CoefficientOfVariation(nil) != 0 {
		t.Fatal("empty CV")
	}
	cv := CoefficientOfVariation([]float64{90, 100, 110})
	if !almost(cv, 10/100.0, 1e-9) {
		t.Fatalf("CV = %v", cv)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(counts) != 5 || len(edges) != 6 {
		t.Fatal("shape wrong")
	}
	for _, c := range counts {
		if c != 2 {
			t.Fatalf("counts = %v", counts)
		}
	}
	if edges[0] != 0 || !almost(edges[5], 9, 1e-12) {
		t.Fatalf("edges = %v", edges)
	}
	// Max value lands in last bin.
	counts, _ = Histogram([]float64{1, 10}, 3)
	if counts[2] != 1 || counts[0] != 1 {
		t.Fatalf("extremes: %v", counts)
	}
	// Degenerate: all equal.
	counts, _ = Histogram([]float64{5, 5, 5}, 4)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("degenerate histogram lost samples: %v", counts)
	}
	if c, e := Histogram(nil, 2); len(c) != 2 || len(e) != 3 {
		t.Fatal("empty histogram shape")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Histogram([]float64{1}, 0)
}

// Property: Welch t-test is antisymmetric in its arguments.
func TestQuickTTestAntisymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		a := make([]float64, 5)
		b := make([]float64, 7)
		for i := range a {
			a[i] = src.Range(0, 100)
		}
		for i := range b {
			b[i] = src.Range(50, 150)
		}
		r1, err1 := WelchTTest(a, b)
		r2, err2 := WelchTTest(b, a)
		if err1 != nil || err2 != nil {
			return true // zero-variance draws: skip
		}
		return almost(r1.T, -r2.T, 1e-9) && r1.SignificantAt05 == r2.SignificantAt05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
