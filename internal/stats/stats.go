// Package stats provides the statistical machinery behind the paper's
// evaluation claims: seed-replication summaries with confidence intervals,
// Welch's t-test for "no significant performance difference" statements
// (§5.2: DataRandom vs DataLeastLoaded), and concentration measures (Gini)
// for quantifying the hotspots that motivate dynamic replication.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the middle value (mean of the two central values for even
// n; 0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Summary condenses a sample of replicated measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	// CI95 is the half-width of the 95% confidence interval for the mean
	// (Student-t with N−1 degrees of freedom); 0 for N < 2.
	CI95 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	if s.N >= 2 {
		s.CI95 = tCritical95(s.N-1) * s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f ±%.2f (95%% CI), sd=%.2f, range [%.2f, %.2f]",
		s.N, s.Mean, s.CI95, s.StdDev, s.Min, s.Max)
}

// tCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom (exact table for small df, asymptote beyond).
func tCritical95(df int) float64 {
	table := []float64{
		0,                                                             // df 0 (unused)
		12.706,                                                        // 1
		4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 2..10
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11..20
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21..30
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	if df < 60 {
		return 2.02
	}
	if df < 120 {
		return 2.0
	}
	return 1.96
}

// TTestResult is the outcome of a two-sample Welch t-test.
type TTestResult struct {
	T  float64 // t statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	// SignificantAt05 is true when |T| exceeds the two-sided 5% critical
	// value for DF — i.e. the means differ significantly.
	SignificantAt05 bool
}

// WelchTTest compares the means of two independent samples without
// assuming equal variances. Returns an error when either sample has fewer
// than two observations or both variances are zero.
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, fmt.Errorf("stats: WelchTTest needs ≥ 2 observations per sample (have %d, %d)", len(a), len(b))
	}
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se := sa + sb
	if se == 0 {
		if Mean(a) == Mean(b) {
			return TTestResult{T: 0, DF: na + nb - 2}, nil
		}
		return TTestResult{}, fmt.Errorf("stats: WelchTTest with zero variance and unequal means")
	}
	t := (Mean(a) - Mean(b)) / math.Sqrt(se)
	df := se * se / (sa*sa/(na-1) + sb*sb/(nb-1))
	crit := tCritical95(int(math.Floor(df)))
	return TTestResult{T: t, DF: df, SignificantAt05: math.Abs(t) > crit}, nil
}

// Gini returns the Gini coefficient of xs (0 = perfectly even, →1 =
// concentrated in one element). Negative values are invalid input.
// Used to quantify load and popularity concentration: the hotspot effect
// that makes JobDataPresent collapse without replication.
func Gini(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: Gini of empty sample")
	}
	total := 0.0
	for _, x := range xs {
		if x < 0 {
			return 0, fmt.Errorf("stats: Gini with negative value %v", x)
		}
		total += x
	}
	if total == 0 {
		return 0, nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	cum := 0.0
	for i, x := range s {
		cum += (2*float64(i+1) - n - 1) * x
	}
	return cum / (n * total), nil
}

// CoefficientOfVariation returns StdDev/Mean (0 when the mean is 0).
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Histogram buckets xs into n equal-width bins over [min, max], returning
// bin counts and edges (n+1 values). It panics when n <= 0.
func Histogram(xs []float64, n int) (counts []int, edges []float64) {
	if n <= 0 {
		panic("stats: Histogram with non-positive bin count")
	}
	counts = make([]int, n)
	edges = make([]float64, n+1)
	if len(xs) == 0 {
		return counts, edges
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if hi == lo {
		hi = lo + 1
	}
	w := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + w*float64(i)
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts, edges
}
