package obs

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func sampledRegistry() (*Registry, func(t float64)) {
	r := NewRegistry()
	level := 0.0
	total := 0.0
	r.Gauge("queue", func() float64 { return level })
	r.Counter("dispatches", func() float64 { return total })
	return r, func(t float64) {
		level = t / 2
		total += 1
		r.Sample(t)
	}
}

func TestJSONLSinkShape(t *testing.T) {
	var sb strings.Builder
	r, sample := sampledRegistry()
	r.StreamTo(NewJSONLSink(&sb))
	sample(100)
	sample(200)

	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 points:\n%s", len(lines), sb.String())
	}
	var header struct {
		Names []string `json:"names"`
		Kinds []string `json:"kinds"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatalf("header: %v", err)
	}
	if len(header.Names) != 2 || header.Names[0] != "queue" ||
		header.Kinds[0] != "gauge" || header.Kinds[1] != "counter" {
		t.Fatalf("header = %+v", header)
	}
	var pt struct {
		T      float64   `json:"t"`
		Values []float64 `json:"values"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &pt); err != nil {
		t.Fatalf("point: %v", err)
	}
	if pt.T != 200 || len(pt.Values) != 2 || pt.Values[0] != 100 || pt.Values[1] != 2 {
		t.Fatalf("point = %+v", pt)
	}
	if err := r.SinkErr(); err != nil {
		t.Fatalf("SinkErr = %v", err)
	}
}

func TestCSVSinkShape(t *testing.T) {
	var sb strings.Builder
	r, sample := sampledRegistry()
	r.StreamTo(NewCSVSink(&sb))
	sample(100)
	sample(200)

	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	want := []string{"t,queue,dispatches", "100,50,1", "200,100,2"}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
	if err := r.SinkErr(); err != nil {
		t.Fatalf("SinkErr = %v", err)
	}
}

// failAfter accepts n writes and then fails every subsequent one.
type failAfter struct {
	n      int
	writes int
}

func (w *failAfter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.n {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

// A sink error is sticky: the sink is dropped after the first failure,
// the error is reported via SinkErr, and the in-memory series keeps
// accumulating unaffected.
func TestSinkErrorSticky(t *testing.T) {
	w := &failAfter{n: 2} // header + first point succeed
	r, sample := sampledRegistry()
	r.StreamTo(NewJSONLSink(w))
	sample(100)
	sample(200) // fails; sink dropped
	sample(300) // must not reach the writer

	if err := r.SinkErr(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("SinkErr = %v", err)
	}
	if w.writes != 3 {
		t.Errorf("writer called %d times; the sink was not dropped after failing", w.writes)
	}
	if got := len(r.Series().Points); got != 3 {
		t.Errorf("in-memory series has %d points, want all 3", got)
	}
}

// A header failure surfaces immediately and no points are streamed.
func TestSinkHeaderError(t *testing.T) {
	w := &failAfter{n: 0}
	r, sample := sampledRegistry()
	r.StreamTo(NewJSONLSink(w))
	if err := r.SinkErr(); err == nil {
		t.Fatal("header failure not reported")
	}
	sample(100)
	if w.writes != 1 {
		t.Errorf("writer called %d times after header failure", w.writes)
	}
}

func TestStreamToNilIsNoop(t *testing.T) {
	r, sample := sampledRegistry()
	r.StreamTo(nil)
	sample(100)
	if err := r.SinkErr(); err != nil {
		t.Fatalf("SinkErr = %v", err)
	}
}

// Attaching a sink after sampling started would hand it a headerless
// tail of the series; that is a wiring bug, so it panics.
func TestStreamToAfterSamplingPanics(t *testing.T) {
	r, sample := sampledRegistry()
	sample(100)
	defer func() {
		if recover() == nil {
			t.Fatal("StreamTo after sampling did not panic")
		}
	}()
	r.StreamTo(NewJSONLSink(&strings.Builder{}))
}

func TestOpenStreamSink(t *testing.T) {
	var f Flags
	if sink, closeFn, err := f.OpenStreamSink(); sink != nil || closeFn != nil || err != nil {
		t.Fatalf("unset flag: (%v, %p, %v)", sink, closeFn, err)
	}

	dir := t.TempDir()
	cases := []struct {
		path string
		csv  bool
	}{
		{filepath.Join(dir, "series.csv"), true},
		{filepath.Join(dir, "series.jsonl"), false},
	}
	for _, tc := range cases {
		f.StreamPath = tc.path
		sink, closeFn, err := f.OpenStreamSink()
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if _, isCSV := sink.(*csvSink); isCSV != tc.csv {
			t.Errorf("%s: csv = %v, want %v", tc.path, isCSV, tc.csv)
		}
		if err := closeFn(); err != nil {
			t.Errorf("close %s: %v", tc.path, err)
		}
	}

	f.StreamPath = filepath.Join(dir, "no-such-dir", "x.jsonl")
	if _, _, err := f.OpenStreamSink(); err == nil {
		t.Error("unwritable path did not error")
	}
}
