// Package registry is the live metrics registry behind the campaign
// control plane: counters, gauges, and fixed-bucket histograms keyed by
// name plus label pairs, in the Prometheus data model.
//
// It complements the sibling obs.Registry (the virtual-time probe
// *series*) with *current-value* metrics that an HTTP monitor can scrape
// while a simulation — or a whole campaign of them — is still running.
// Two properties drive the design:
//
//   - Determinism. Metric updates are plain commutative arithmetic on
//     values the simulation already maintains; the registry schedules no
//     events, draws no random numbers, and is never read by scheduling
//     code, so attaching it cannot perturb a run's Results. Counter and
//     histogram totals are therefore bit-identical for a given seed
//     regardless of how many campaign workers update them concurrently.
//     Gather output is ordered by family registration and sorted label
//     values, never map order.
//
//   - Concurrency. A campaign updates one shared registry from many
//     simulation goroutines while the monitor scrapes it from an HTTP
//     handler. All value updates are lock-free atomics; the registry
//     mutex guards only registration and snapshotting.
package registry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"chicsim/internal/intern"
)

// Kind is the metric type of a family.
type Kind uint8

const (
	// CounterKind is a monotone running total.
	CounterKind Kind = iota
	// GaugeKind is an instantaneous level, set from the owning goroutine.
	GaugeKind
	// HistogramKind is a fixed-bucket distribution of observations.
	HistogramKind
)

func (k Kind) String() string {
	switch k {
	case CounterKind:
		return "counter"
	case GaugeKind:
		return "gauge"
	case HistogramKind:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry holds metric families. The zero value is not usable; call New.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	onGather []func()
	hasRT    bool // runtime probe installed (see RegisterRuntimeProbe)
}

// OnGather registers fn to run at the start of every Gather, before the
// families snapshot. Gauges whose source is pull-based (sampled on
// scrape, like the Go runtime probe) refresh themselves here rather than
// needing a background updater.
func (r *Registry) OnGather(fn func()) {
	if fn == nil {
		panic("registry: OnGather with nil function")
	}
	r.mu.Lock()
	r.onGather = append(r.onGather, fn)
	r.mu.Unlock()
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric with a fixed kind and label-name set.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, +Inf implicit

	// Series storage, guarded by mu. Labels are almost always absent or a
	// single value drawn from a small vocabulary, so the two common cases
	// avoid string-keyed maps entirely: a label-less family has one series
	// (solo), and a 1-label family interns the value to a dense id and
	// indexes a slice with it. Only families with >= 2 labels fall back to
	// joining the values into a map key.
	mu       sync.Mutex
	solo     *child            // len(labels) == 0
	vals     intern.Table      // len(labels) == 1: value -> dense id
	byID     []*child          // len(labels) == 1: dense id -> series
	children map[string]*child // len(labels) >= 2, lazily allocated
}

// child is one (family, label-values) time series.
type child struct {
	labelVals []string
	bits      atomic.Uint64 // float64 value for counters and gauges
	hist      *histState
}

// histState is the lock-free histogram storage: per-bucket counts (last
// slot is the +Inf overflow), total count, and the sum of observations.
type histState struct {
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// register returns the family for name, creating it on first use. A
// re-registration with a different kind, label set, or bucket layout is a
// programming error and panics.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("registry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRE.MatchString(l) {
			panic(fmt.Sprintf("registry: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.byName[name]; f != nil {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("registry: conflicting re-registration of %q", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("registry: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	switch len(f.labels) {
	case 0:
		if f.solo == nil {
			f.solo = f.newChild(values)
		}
		return f.solo
	case 1:
		id := f.vals.Intern(values[0])
		for int(id) >= len(f.byID) {
			f.byID = append(f.byID, nil)
		}
		if c := f.byID[id]; c != nil {
			return c
		}
		c := f.newChild(values)
		f.byID[id] = c
		return c
	default:
		key := strings.Join(values, "\x00")
		if c := f.children[key]; c != nil {
			return c
		}
		if f.children == nil {
			f.children = make(map[string]*child)
		}
		c := f.newChild(values)
		f.children[key] = c
		return c
	}
}

// newChild builds a series cell for the given label values. Caller holds
// f.mu and is responsible for filing the child under its key.
func (f *family) newChild(values []string) *child {
	c := &child{labelVals: append([]string(nil), values...)}
	if f.kind == HistogramKind {
		c.hist = &histState{counts: make([]atomic.Uint64, len(f.buckets)+1)}
	}
	return c
}

// series appends every live child to dst and returns it. Caller holds
// f.mu. Order is unspecified; Gather sorts by label values afterwards.
func (f *family) series(dst []*child) []*child {
	if f.solo != nil {
		dst = append(dst, f.solo)
	}
	for _, c := range f.byID {
		if c != nil {
			dst = append(dst, c)
		}
	}
	for _, c := range f.children {
		dst = append(dst, c)
	}
	return dst
}

// lookup returns the child for the given label values without creating
// it, or nil. Caller holds f.mu; len(values) must equal len(f.labels).
func (f *family) lookup(values []string) *child {
	switch len(f.labels) {
	case 0:
		return f.solo
	case 1:
		if id, ok := f.vals.Lookup(values[0]); ok && int(id) < len(f.byID) {
			return f.byID[id]
		}
		return nil
	default:
		return f.children[strings.Join(values, "\x00")]
	}
}

// CounterVec is a counter family; With yields one labelled counter.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family; With yields one labelled gauge.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family; With yields one labelled histogram.
type HistogramVec struct{ f *family }

// Counter registers (or finds) a counter family. Registration is
// idempotent, so independent simulations sharing a campaign registry can
// all "register" the same families and end up updating the same cells.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, CounterKind, labels, nil)}
}

// Gauge registers (or finds) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, GaugeKind, labels, nil)}
}

// Histogram registers (or finds) a fixed-bucket histogram family. buckets
// are ascending upper bounds; a final +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("registry: %q buckets not ascending: %v", name, buckets))
		}
	}
	return &HistogramVec{r.register(name, help, HistogramKind, labels, buckets)}
}

// With returns the counter for the given label values (created on first
// use). Hot paths should call With once and retain the handle.
func (v *CounterVec) With(values ...string) Counter { return Counter{v.f.child(values)} }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) Gauge { return Gauge{v.f.child(values)} }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) Histogram {
	return Histogram{v.f.child(values), v.f.buckets}
}

// Counter is a handle to one monotone series. The zero value is a no-op,
// so call sites can hold unconditionally-usable handles on runs where
// metrics are disabled.
type Counter struct{ c *child }

// Inc adds 1.
func (c Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative deltas panic: a shrinking counter
// upstream is a bug worth surfacing, not averaging away.
func (c Counter) Add(v float64) {
	if c.c == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		panic(fmt.Sprintf("registry: counter Add(%v)", v))
	}
	addFloat(&c.c.bits, v)
}

// Value returns the current total.
func (c Counter) Value() float64 {
	if c.c == nil {
		return 0
	}
	return math.Float64frombits(c.c.bits.Load())
}

// Gauge is a handle to one instantaneous series. The zero value is a
// no-op.
type Gauge struct{ c *child }

// Set stores the current level.
func (g Gauge) Set(v float64) {
	if g.c == nil {
		return
	}
	g.c.bits.Store(math.Float64bits(v))
}

// Add shifts the current level.
func (g Gauge) Add(v float64) {
	if g.c == nil {
		return
	}
	addFloat(&g.c.bits, v)
}

// Value returns the current level.
func (g Gauge) Value() float64 {
	if g.c == nil {
		return 0
	}
	return math.Float64frombits(g.c.bits.Load())
}

// Histogram is a handle to one fixed-bucket distribution. The zero value
// is a no-op.
type Histogram struct {
	c       *child
	buckets []float64
}

// Observe records one value.
func (h Histogram) Observe(v float64) {
	if h.c == nil {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	h.c.hist.counts[i].Add(1)
	h.c.hist.count.Add(1)
	addFloat(&h.c.hist.sumBits, v)
}

// Sample is one series of a gathered family.
type Sample struct {
	LabelValues []string
	Value       float64    // counters and gauges
	Hist        *HistValue // histograms
}

// HistValue is a histogram snapshot in Prometheus shape: cumulative
// counts per upper bound, plus the +Inf total and the observation sum.
type HistValue struct {
	UpperBounds []float64 // ascending; +Inf is implicit as the last bucket
	CumCounts   []uint64  // len(UpperBounds)+1, cumulative, last = Count
	Count       uint64
	Sum         float64
}

// Family is a gathered metric family.
type Family struct {
	Name       string
	Help       string
	Kind       Kind
	LabelNames []string
	Samples    []Sample
}

// Gather snapshots every family: families in registration order, samples
// sorted by label values. The ordering makes output byte-comparable
// across runs; values are read atomically, so gathering concurrently with
// updates sees each series' latest committed value.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	hooks := append([]func(){}, r.onGather...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}

	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		gf := Family{Name: f.name, Help: f.help, Kind: f.kind, LabelNames: f.labels}
		f.mu.Lock()
		children := f.series(nil)
		f.mu.Unlock()
		sort.Slice(children, func(i, j int) bool {
			return lessStrings(children[i].labelVals, children[j].labelVals)
		})
		for _, c := range children {
			s := Sample{LabelValues: c.labelVals}
			if f.kind == HistogramKind {
				hv := &HistValue{
					UpperBounds: f.buckets,
					CumCounts:   make([]uint64, len(c.hist.counts)),
				}
				var cum uint64
				for i := range c.hist.counts {
					cum += c.hist.counts[i].Load()
					hv.CumCounts[i] = cum
				}
				hv.Count = c.hist.count.Load()
				hv.Sum = math.Float64frombits(c.hist.sumBits.Load())
				s.Hist = hv
			} else {
				s.Value = math.Float64frombits(c.bits.Load())
			}
			gf.Samples = append(gf.Samples, s)
		}
		out = append(out, gf)
	}
	return out
}

// Value looks up the current value of one counter or gauge series, mainly
// for status endpoints and tests. labelValues must match the family's
// label names in order. ok is false for unknown families or series.
func (r *Registry) Value(name string, labelValues ...string) (v float64, ok bool) {
	r.mu.Lock()
	f := r.byName[name]
	r.mu.Unlock()
	if f == nil || f.kind == HistogramKind || len(labelValues) != len(f.labels) {
		return 0, false
	}
	f.mu.Lock()
	c := f.lookup(labelValues)
	f.mu.Unlock()
	if c == nil {
		return 0, false
	}
	return math.Float64frombits(c.bits.Load()), true
}

func lessStrings(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
