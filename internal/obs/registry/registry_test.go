package registry

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	jobs := r.Counter("sim_jobs_total", "Jobs by state.", "state")
	done := jobs.With("done")
	failed := jobs.With("failed")
	done.Inc()
	done.Add(2)
	failed.Inc()
	if got := done.Value(); got != 3 {
		t.Fatalf("done = %v, want 3", got)
	}
	if got := failed.Value(); got != 1 {
		t.Fatalf("failed = %v, want 1", got)
	}
	if v, ok := r.Value("sim_jobs_total", "done"); !ok || v != 3 {
		t.Fatalf("Value(done) = %v, %v", v, ok)
	}
	if _, ok := r.Value("sim_jobs_total", "nope"); ok {
		t.Fatal("Value for unknown series should be !ok")
	}
	if _, ok := r.Value("missing_family"); ok {
		t.Fatal("Value for unknown family should be !ok")
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := New()
	g := r.Gauge("queue_depth", "Queued jobs.", "site").With("3")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestZeroValueHandlesAreNoOps(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("zero-value handles should read 0")
	}
}

func TestCounterNegativePanics(t *testing.T) {
	r := New()
	c := r.Counter("x_total", "").With()
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add should panic")
		}
	}()
	c.Add(-1)
}

func TestRegisterIdempotentAndConflicts(t *testing.T) {
	r := New()
	a := r.Counter("same_total", "help", "l")
	b := r.Counter("same_total", "help", "l")
	a.With("x").Inc()
	b.With("x").Inc()
	if v, _ := r.Value("same_total", "x"); v != 2 {
		t.Fatalf("idempotent registration should share cells; got %v", v)
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("kind conflict", func() { r.Gauge("same_total", "help", "l") })
	mustPanic("label conflict", func() { r.Counter("same_total", "help", "other") })
	mustPanic("bad metric name", func() { r.Counter("bad name", "") })
	mustPanic("bad label name", func() { r.Counter("ok_total", "", "bad-label") })
	mustPanic("non-ascending buckets", func() { r.Histogram("h", "", []float64{1, 1}) })
	r.Histogram("hist_ok", "", []float64{1, 2})
	mustPanic("bucket conflict", func() { r.Histogram("hist_ok", "", []float64{1, 3}) })
	mustPanic("label arity", func() { r.Counter("same_total", "help", "l").With("a", "b") })
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("resp_seconds", "Response time.", []float64{1, 10, 100}).With()
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	fams := r.Gather()
	if len(fams) != 1 {
		t.Fatalf("families = %d", len(fams))
	}
	s := fams[0].Samples[0]
	if s.Hist == nil {
		t.Fatal("histogram sample missing Hist")
	}
	// le=1 captures 0.5 and 1 (inclusive), le=10 adds 5, le=100 adds 50,
	// +Inf adds 500.
	wantCum := []uint64{2, 3, 4, 5}
	if !reflect.DeepEqual(s.Hist.CumCounts, wantCum) {
		t.Fatalf("CumCounts = %v, want %v", s.Hist.CumCounts, wantCum)
	}
	if s.Hist.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Hist.Count)
	}
	if want := 0.5 + 1 + 5 + 50 + 500; s.Hist.Sum != want {
		t.Fatalf("Sum = %v, want %v", s.Hist.Sum, want)
	}
}

func TestGatherDeterministicOrder(t *testing.T) {
	build := func(order []string) string {
		r := New()
		c := r.Counter("b_total", "second family", "site")
		g := r.Gauge("a_level", "first family", "site")
		for _, s := range order {
			c.With(s).Inc()
			g.With(s).Set(1)
		}
		var sb strings.Builder
		if err := WritePrometheus(&sb, r.Gather()); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a := build([]string{"0", "1", "2", "10"})
	b := build([]string{"10", "2", "0", "1"})
	if a != b {
		t.Fatalf("Gather order depends on insertion order:\n%s\nvs\n%s", a, b)
	}
	// Families must appear in registration order (b_total before a_level).
	if ib, ia := strings.Index(a, "b_total"), strings.Index(a, "a_level"); ib > ia {
		t.Fatal("families not in registration order")
	}
}

func TestConcurrentUpdatesDeterministicTotals(t *testing.T) {
	r := New()
	c := r.Counter("n_total", "").With()
	h := r.Histogram("h", "", []float64{10, 100}).With()
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %v, want %d", got, workers*each)
	}
	fams := r.Gather()
	hv := fams[1].Samples[0].Hist
	if hv.Count != workers*each {
		t.Fatalf("hist count = %d, want %d", hv.Count, workers*each)
	}
	if hv.CumCounts[len(hv.CumCounts)-1] != hv.Count {
		t.Fatalf("last cum count %d != count %d", hv.CumCounts[len(hv.CumCounts)-1], hv.Count)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("jobs_total", "Jobs with \\ and \n in help.", "state").With("done").Add(4)
	r.Gauge("temp", "").With().Set(-1.5)
	r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1}, "site").With("s\"0\n").Observe(0.05)
	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Gather()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs with \\\\ and \\n in help.\n",
		"# TYPE jobs_total counter\n",
		`jobs_total{state="done"} 4` + "\n",
		"# TYPE temp gauge\n",
		"temp -1.5\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{site="s\"0\n",le="0.1"} 1` + "\n",
		`lat_seconds_bucket{site="s\"0\n",le="+Inf"} 1` + "\n",
		`lat_seconds_sum{site="s\"0\n"} 0.05` + "\n",
		`lat_seconds_count{site="s\"0\n"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "# HELP temp") {
		t.Fatal("empty help should emit no HELP line")
	}
	if err := CheckText(strings.NewReader(out)); err != nil {
		t.Fatalf("own output fails CheckText: %v", err)
	}
}

// TestHistogramZeroObservations: a registered-but-never-observed
// histogram must still gather and render as a complete, valid family —
// all-zero cumulative buckets, zero count and sum — because a monitor
// can scrape before the first job completes.
func TestHistogramZeroObservations(t *testing.T) {
	r := New()
	_ = r.Histogram("idle_seconds", "Never observed.", []float64{1, 10}).With()
	fams := r.Gather()
	hv := fams[0].Samples[0].Hist
	if hv.Count != 0 || hv.Sum != 0 {
		t.Fatalf("empty histogram count/sum = %d/%v, want 0/0", hv.Count, hv.Sum)
	}
	if want := []uint64{0, 0, 0}; !reflect.DeepEqual(hv.CumCounts, want) {
		t.Fatalf("CumCounts = %v, want %v", hv.CumCounts, want)
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb, fams); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`idle_seconds_bucket{le="1"} 0` + "\n",
		`idle_seconds_bucket{le="+Inf"} 0` + "\n",
		"idle_seconds_sum 0\n",
		"idle_seconds_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if err := CheckText(strings.NewReader(out)); err != nil {
		t.Fatalf("empty-histogram exposition fails CheckText: %v", err)
	}
}

// TestHistogramSingleBucket: the smallest legal bucket layout still
// splits observations between the one finite bound and +Inf.
func TestHistogramSingleBucket(t *testing.T) {
	r := New()
	h := r.Histogram("tiny_seconds", "", []float64{5}).With()
	h.Observe(3)
	h.Observe(5) // le is inclusive
	h.Observe(7)
	hv := r.Gather()[0].Samples[0].Hist
	if want := []uint64{2, 3}; !reflect.DeepEqual(hv.CumCounts, want) {
		t.Fatalf("CumCounts = %v, want %v", hv.CumCounts, want)
	}
	if hv.Count != 3 || hv.Sum != 15 {
		t.Fatalf("count/sum = %d/%v, want 3/15", hv.Count, hv.Sum)
	}
}

// TestCheckTextEmptyFamily: a family with headers but no sample lines
// (registered, no children yet) is valid exposition text, as is a fully
// empty document.
func TestCheckTextEmptyFamily(t *testing.T) {
	r := New()
	r.Counter("pending_total", "Registered before any labelled child exists.", "state")
	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Gather()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE pending_total counter\n") {
		t.Fatalf("missing TYPE header:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "pending_total") {
			t.Fatalf("childless family should emit no sample lines, got %q", line)
		}
	}
	if err := CheckText(strings.NewReader(out)); err != nil {
		t.Fatalf("header-only family fails CheckText: %v", err)
	}
	if err := CheckText(strings.NewReader("")); err != nil {
		t.Fatalf("empty document fails CheckText: %v", err)
	}
}

// TestRuntimeProbe: registering the Go runtime probe makes heap/GC/
// goroutine gauges appear with live values on Gather, and repeated
// registration is a no-op rather than a duplicate-family panic.
func TestRuntimeProbe(t *testing.T) {
	r := New()
	RegisterRuntimeProbe(r)
	RegisterRuntimeProbe(r) // idempotent
	got := map[string]float64{}
	for _, f := range r.Gather() {
		if len(f.Samples) == 1 {
			got[f.Name] = f.Samples[0].Value
		}
	}
	if got["go_heap_alloc_bytes"] <= 0 {
		t.Errorf("go_heap_alloc_bytes = %v, want > 0", got["go_heap_alloc_bytes"])
	}
	if got["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", got["go_goroutines"])
	}
	if _, ok := got["go_gc_cycles_total"]; !ok {
		t.Error("go_gc_cycles_total not gathered")
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Gather()); err != nil {
		t.Fatal(err)
	}
	if err := CheckText(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("runtime probe exposition fails CheckText: %v", err)
	}
}

// TestOnGatherHook: hooks run before the snapshot, so a pull-based gauge
// refreshed in a hook is current in the same Gather; nil hooks panic.
func TestOnGatherHook(t *testing.T) {
	r := New()
	g := r.Gauge("refreshed", "").With()
	calls := 0
	r.OnGather(func() { calls++; g.Set(float64(calls)) })
	if v := r.Gather()[0].Samples[0].Value; v != 1 {
		t.Fatalf("first gather saw %v, want 1", v)
	}
	if v := r.Gather()[0].Samples[0].Value; v != 2 {
		t.Fatalf("second gather saw %v, want 2", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("OnGather(nil) should panic")
		}
	}()
	r.OnGather(nil)
}

func TestFormatValueSpecials(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{0, "0"},
		{2.5, "2.5"},
	} {
		if got := formatValue(tc.v); got != tc.want {
			t.Errorf("formatValue(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}

// CheckText is exercised against deliberately malformed inputs too.
func TestCheckTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"name{unclosed=\"x\" 1\n",
		"name 12abc\n",
		"# TYPE x bogus\n",
	} {
		if err := CheckText(strings.NewReader(bad)); err == nil {
			t.Errorf("CheckText accepted %q", bad)
		}
	}
	good := "# HELP a_total help text\n# TYPE a_total counter\na_total{x=\"1\"} 5\n\n"
	if err := CheckText(strings.NewReader(good)); err != nil {
		t.Errorf("CheckText rejected good input: %v", err)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("bench_total", "").With()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	_ = c.Value()
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("bench_h", "", []float64{1, 2, 4, 8, 16, 32, 64}).With()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 100))
	}
}
