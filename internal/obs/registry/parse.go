package registry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CheckText validates that r is well-formed Prometheus text exposition
// format (version 0.0.4): every non-comment line is `name[{labels}] value
// [timestamp]`, label bodies are balanced and quoted, values parse as
// floats (or ±Inf/NaN), and # TYPE lines name a known metric type. It is
// the verification half of WritePrometheus, used by tests and the CI
// monitor smoke test to assert a live /metrics scrape parses.
func CheckText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := checkSample(line); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

func checkComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
			return nil
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	}
	return nil
}

func checkSample(line string) error {
	rest := line
	brace := strings.IndexByte(rest, '{')
	var name string
	if brace >= 0 {
		name = rest[:brace]
		var err error
		rest, err = consumeLabels(rest[brace+1:])
		if err != nil {
			return err
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return fmt.Errorf("sample without value: %q", line)
		}
		name, rest = rest[:sp], rest[sp:]
	}
	if !nameRE.MatchString(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("want value [timestamp] after name, got %q", rest)
	}
	switch fields[0] {
	case "+Inf", "-Inf", "Inf", "NaN":
	default:
		if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
			return fmt.Errorf("bad value %q", fields[0])
		}
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return nil
}

// consumeLabels validates the label body after '{' and returns what
// follows the closing '}'.
func consumeLabels(s string) (rest string, err error) {
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return "", fmt.Errorf("label pair without '=' in %q", s)
		}
		lname := strings.TrimSpace(s[:eq])
		if !nameRE.MatchString(lname) && lname != "le" && lname != "quantile" {
			return "", fmt.Errorf("invalid label name %q", lname)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return "", fmt.Errorf("label value not quoted in %q", s)
		}
		s = s[1:]
		// Scan to the closing quote, honoring backslash escapes.
		i := 0
		for ; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				break
			}
		}
		if i >= len(s) {
			return "", fmt.Errorf("unterminated label value")
		}
		s = s[i+1:]
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		}
	}
}
