package registry

import (
	"runtime/metrics"
	"sync"
)

// Names read from the Go runtime/metrics catalog by the runtime probe.
const (
	rtHeapBytes  = "/memory/classes/heap/objects:bytes"
	rtGCCycles   = "/gc/cycles/total:gc-cycles"
	rtGoroutines = "/sched/goroutines:goroutines"
)

// RegisterRuntimeProbe wires Go runtime self-observability into r: gauges
// for live heap bytes, completed GC cycles, and goroutine count, sampled
// from runtime/metrics on every Gather (so every /metrics scrape sees the
// process's current state — including the memory the results path itself
// holds, which is how a bounded-mode million-job run shows a flat heap
// where full mode climbs). Safe to call more than once per registry; later
// calls are no-ops.
func RegisterRuntimeProbe(r *Registry) {
	r.mu.Lock()
	if r.hasRT {
		r.mu.Unlock()
		return
	}
	r.hasRT = true
	r.mu.Unlock()

	heap := r.Gauge("go_heap_alloc_bytes", "Live heap memory occupied by objects (runtime/metrics).").With()
	gcs := r.Gauge("go_gc_cycles_total", "Completed GC cycles since process start.").With()
	gor := r.Gauge("go_goroutines", "Current number of live goroutines.").With()

	samples := []metrics.Sample{
		{Name: rtHeapBytes},
		{Name: rtGCCycles},
		{Name: rtGoroutines},
	}
	var mu sync.Mutex // metrics.Read reuses the samples slice
	r.OnGather(func() {
		mu.Lock()
		defer mu.Unlock()
		metrics.Read(samples)
		for i, s := range samples {
			var v float64
			switch s.Value.Kind() {
			case metrics.KindUint64:
				v = float64(s.Value.Uint64())
			case metrics.KindFloat64:
				v = s.Value.Float64()
			default:
				continue // unsupported kind; leave the gauge as-is
			}
			switch i {
			case 0:
				heap.Set(v)
			case 1:
				gcs.Set(v)
			case 2:
				gor.Set(v)
			}
		}
	})
}
