package registry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders gathered families in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, one sample
// line per series, histograms expanded into cumulative _bucket series
// plus _sum and _count. Output order follows Gather's deterministic
// ordering, so two snapshots of identical state render byte-identically.
func WritePrometheus(w io.Writer, fams []Family) error {
	for _, f := range fams {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Samples {
			if f.Kind == HistogramKind {
				if err := writeHistogram(w, f, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				f.Name, labelString(f.LabelNames, s.LabelValues, "", ""), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, f Family, s Sample) error {
	h := s.Hist
	for i, cum := range h.CumCounts {
		le := "+Inf"
		if i < len(h.UpperBounds) {
			le = formatValue(h.UpperBounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.Name, labelString(f.LabelNames, s.LabelValues, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		f.Name, labelString(f.LabelNames, s.LabelValues, "", ""), formatValue(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		f.Name, labelString(f.LabelNames, s.LabelValues, "", ""), h.Count)
	return err
}

// labelString renders {a="x",b="y"} with an optional extra pair (le for
// histogram buckets); empty when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraValue))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
