package monitor

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"chicsim/internal/obs/registry"
)

func startTestServer(t *testing.T, reg *registry.Registry, status func() any) *Server {
	t.Helper()
	s, err := Start("127.0.0.1:0", reg, status)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

func TestMetricsEndpoint(t *testing.T) {
	reg := registry.New()
	reg.Counter("jobs_total", "Jobs.", "state").With("done").Add(42)
	reg.Histogram("resp_seconds", "Response.", []float64{1, 10}).With().Observe(3)
	s := startTestServer(t, reg, nil)

	body, resp := get(t, "http://"+s.Addr()+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(body, `jobs_total{state="done"} 42`) {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}
	if err := registry.CheckText(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics not valid exposition format: %v", err)
	}
}

func TestMetricsEndpointNilRegistry(t *testing.T) {
	s := startTestServer(t, nil, nil)
	body, resp := get(t, "http://"+s.Addr()+"/metrics")
	if resp.StatusCode != http.StatusOK || body != "" {
		t.Fatalf("nil registry: status %d body %q", resp.StatusCode, body)
	}
}

func TestStatusEndpoint(t *testing.T) {
	type status struct {
		Done  int    `json:"done"`
		Total int    `json:"total"`
		Label string `json:"label"`
	}
	s := startTestServer(t, nil, func() any { return status{Done: 3, Total: 9, Label: "fig5"} })
	body, resp := get(t, "http://"+s.Addr()+"/status")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var got status
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("status not JSON: %v\n%s", err, body)
	}
	if got != (status{3, 9, "fig5"}) {
		t.Fatalf("status = %+v", got)
	}
}

func TestEventsStream(t *testing.T) {
	s := startTestServer(t, nil, nil)
	resp, err := http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	// First frame is the ": connected" comment.
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, ": connected") {
		t.Fatalf("greeting = %q, %v", line, err)
	}
	if _, err := br.ReadString('\n'); err != nil { // blank line
		t.Fatal(err)
	}

	// The subscriber is registered before the greeting is written, so a
	// publish after reading it must be delivered.
	s.Publish("cell_done", map[string]any{"cell": "f1,s2", "runs": 5})
	var frame strings.Builder
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading event: %v (got %q)", err, frame.String())
		}
		frame.WriteString(line)
		if line == "\n" {
			break
		}
	}
	got := frame.String()
	if !strings.Contains(got, "event: cell_done\n") || !strings.Contains(got, `"cell":"f1,s2"`) {
		t.Fatalf("event frame = %q", got)
	}
}

func TestPublishDoesNotBlockOnSlowSubscriber(t *testing.T) {
	s := startTestServer(t, nil, nil)
	resp, err := http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Never read from resp.Body: the subscriber channel fills up. Publish
	// must still return promptly for far more events than the buffer.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			s.Publish("tick", i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
}

func TestConcurrentScrapesAndPublishes(t *testing.T) {
	reg := registry.New()
	c := reg.Counter("n_total", "").With()
	s := startTestServer(t, reg, func() any { return map[string]float64{"n": c.Value()} })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.Inc()
				s.Publish("tick", i)
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				body, _ := get(t, "http://"+s.Addr()+"/metrics")
				if err := registry.CheckText(strings.NewReader(body)); err != nil {
					t.Errorf("scrape %d invalid: %v", i, err)
					return
				}
				get(t, "http://"+s.Addr()+"/status")
			}
		}()
	}
	wg.Wait()
	if c.Value() != 200 {
		t.Fatalf("counter = %v, want 200", c.Value())
	}
}

func TestIndexAndNotFound(t *testing.T) {
	s := startTestServer(t, nil, nil)
	body, resp := get(t, "http://"+s.Addr()+"/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", resp.StatusCode, body)
	}
	_, resp = get(t, fmt.Sprintf("http://%s/nope", s.Addr()))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %d", resp.StatusCode)
	}
}

// TestStartMuxExtraRoutes: callers (the fabric dispatcher) can mount
// additional handlers on the monitor's listener without losing the
// built-in /metrics, /status, /events surface.
func TestStartMuxExtraRoutes(t *testing.T) {
	reg := registry.New()
	reg.Counter("shards_total", "Shards.").With().Add(7)
	extra := map[string]http.Handler{
		"/api/ping": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprint(w, "pong")
		}),
	}
	s, err := StartMux("127.0.0.1:0", reg, func() any { return map[string]int{"n": 1} }, extra)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	body, resp := get(t, "http://"+s.Addr()+"/api/ping")
	if resp.StatusCode != http.StatusOK || body != "pong" {
		t.Fatalf("extra route: %d %q", resp.StatusCode, body)
	}
	body, _ = get(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(body, "shards_total 7") {
		t.Fatalf("built-in /metrics lost under StartMux:\n%s", body)
	}
	body, _ = get(t, "http://"+s.Addr()+"/status")
	var st map[string]int
	if err := json.Unmarshal([]byte(body), &st); err != nil || st["n"] != 1 {
		t.Fatalf("built-in /status lost under StartMux: %q (%v)", body, err)
	}
}

func TestCloseDisconnectsSubscribers(t *testing.T) {
	s, err := Start("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	br.ReadString('\n') // greeting
	br.ReadString('\n')
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The stream must terminate rather than hang.
	errc := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(br)
		errc <- err
	}()
	select {
	case <-errc:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber stream did not terminate on Close")
	}
}
