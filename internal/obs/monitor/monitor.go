// Package monitor is the opt-in HTTP face of the live control plane:
// started with `gridsweep -listen` / `chicsim -listen`, it serves
//
//	/metrics  current registry state in Prometheus text exposition format
//	/status   one JSON document of campaign progress (ETA, cells, seed)
//	/events   an SSE stream of cell-completion and watchdog events
//
// The monitor only ever *reads* simulation state through the registry's
// atomic snapshots and a status callback, and event publication happens
// after the fact of whatever it reports, so serving scrapes concurrently
// with a campaign cannot perturb results.
package monitor

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"chicsim/internal/obs/registry"
)

// PprofHandlers returns the net/http/pprof routes in StartMux's extra-map
// shape. Commands mount them behind an explicit -pprof flag: profiling
// endpoints expose stacks and heap contents, so they are opt-in rather
// than always-on.
func PprofHandlers() map[string]http.Handler {
	return map[string]http.Handler{
		"/debug/pprof/":        http.HandlerFunc(pprof.Index),
		"/debug/pprof/cmdline": http.HandlerFunc(pprof.Cmdline),
		"/debug/pprof/profile": http.HandlerFunc(pprof.Profile),
		"/debug/pprof/symbol":  http.HandlerFunc(pprof.Symbol),
		"/debug/pprof/trace":   http.HandlerFunc(pprof.Trace),
	}
}

// Server is a running monitor. Create with Start, stop with Close.
type Server struct {
	reg    *registry.Registry
	status func() any

	srv *http.Server
	ln  net.Listener

	mu   sync.Mutex
	subs map[chan []byte]struct{}
	next int
}

// Start listens on addr (host:port; use ":0" for an ephemeral port) and
// serves until Close. reg may be nil (/metrics serves an empty document);
// status may be nil (/status serves {}).
func Start(addr string, reg *registry.Registry, status func() any) (*Server, error) {
	return StartMux(addr, reg, status, nil)
}

// StartMux is Start with extra routes mounted alongside the built-in
// /metrics, /status, and /events — the hook that lets subsystems with
// their own HTTP surface (the fabric dispatcher's /api/... protocol)
// reuse the monitor's listener, SSE fan-out, and metrics exposition.
// Patterns must not collide with the built-ins.
func StartMux(addr string, reg *registry.Registry, status func() any, extra map[string]http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: %w", err)
	}
	if reg != nil {
		// Every monitored process self-reports Go runtime health (heap,
		// GC cycles, goroutines) alongside its domain metrics.
		registry.RegisterRuntimeProbe(reg)
	}
	s := &Server{reg: reg, status: status, ln: ln, subs: make(map[chan []byte]struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/", s.handleIndex)
	for pattern, h := range extra {
		mux.Handle(pattern, h)
	}
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43801" — needed when
// listening on ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and disconnects all SSE subscribers.
func (s *Server) Close() error {
	err := s.srv.Close()
	s.mu.Lock()
	for ch := range s.subs {
		close(ch)
		delete(s.subs, ch)
	}
	s.mu.Unlock()
	return err
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "chicsim monitor: /metrics /status /events")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.reg == nil {
		return
	}
	if err := registry.WritePrometheus(w, s.reg.Gather()); err != nil {
		// Connection-level write error; nothing more to do.
		return
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var doc any = struct{}{}
	if s.status != nil {
		doc = s.status()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // connection-level failure only
}

// Publish broadcasts an SSE event to all /events subscribers. data is
// JSON-marshalled; marshal failures are reported inline as an error
// event rather than dropped silently. Slow subscribers are skipped, not
// waited on, so Publish never blocks simulation progress.
func (s *Server) Publish(event string, data any) {
	body, err := json.Marshal(data)
	if err != nil {
		body = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	frame := []byte(fmt.Sprintf("event: %s\ndata: %s\n\n", event, body))
	s.mu.Lock()
	for ch := range s.subs {
		select {
		case ch <- frame:
		default: // subscriber not keeping up; drop this frame for it
		}
	}
	s.mu.Unlock()
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch := make(chan []byte, 64)
	s.mu.Lock()
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if _, live := s.subs[ch]; live {
			delete(s.subs, ch)
			close(ch)
		}
		s.mu.Unlock()
	}()

	fmt.Fprint(w, ": connected\n\n")
	fl.Flush()
	for {
		select {
		case frame, ok := <-ch:
			if !ok {
				return // server closing
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
