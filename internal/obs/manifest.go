package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Manifest records the provenance of one experiment run: what was run,
// with which configuration (by hash), on which code (git describe), and
// how long it took. Emit it next to result files so a series or table can
// always be traced back to the exact run that produced it.
//
// Runs that flowed through the campaign fabric additionally carry shard
// provenance: Merged marks a manifest whose result stream was assembled
// from worker-produced shards, and Shards attributes each shard to the
// worker (and host) that produced its record.
type Manifest struct {
	Command      string            `json:"command"`
	Args         []string          `json:"args"`
	ConfigSHA256 string            `json:"config_sha256"`
	Seeds        []uint64          `json:"seeds,omitempty"`
	GitDescribe  string            `json:"git_describe,omitempty"`
	GoVersion    string            `json:"go_version"`
	Started      time.Time         `json:"started"`
	Finished     time.Time         `json:"finished"`
	WallSeconds  float64           `json:"wall_seconds"`
	Interrupted  bool              `json:"interrupted,omitempty"`
	Merged       bool              `json:"merged,omitempty"`
	Shards       []ShardProvenance `json:"shards,omitempty"`
	Extra        map[string]any    `json:"extra,omitempty"`
}

// ShardProvenance attributes one campaign shard to the worker that
// produced its record — who computed what, and on which machine.
type ShardProvenance struct {
	Index    int    `json:"index"`
	Cell     string `json:"cell"`
	Worker   string `json:"worker"`
	Host     string `json:"host,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
}

// NewManifest starts a manifest for command, hashing the JSON encoding of
// config (so two runs with identical effective configurations hash
// identically regardless of how the flags were spelled).
func NewManifest(command string, config any, seeds []uint64) (*Manifest, error) {
	js, err := json.Marshal(config)
	if err != nil {
		return nil, fmt.Errorf("obs: hashing config: %w", err)
	}
	sum := sha256.Sum256(js)
	return &Manifest{
		Command:      command,
		Args:         os.Args[1:],
		ConfigSHA256: hex.EncodeToString(sum[:]),
		Seeds:        seeds,
		GitDescribe:  gitDescribe(),
		GoVersion:    runtime.Version(),
		Started:      time.Now(),
	}, nil
}

// SetExtra attaches an auxiliary key (worker count, cell count, ...).
func (m *Manifest) SetExtra(key string, value any) {
	if m.Extra == nil {
		m.Extra = make(map[string]any)
	}
	m.Extra[key] = value
}

// MarkInterrupted flags the run as cut short by a signal, so downstream
// consumers know the result files cover only the cells completed so far.
func (m *Manifest) MarkInterrupted() { m.Interrupted = true }

// MarkMerged flags the manifest as describing a stream merged from
// fabric shards and records which worker produced each shard.
func (m *Manifest) MarkMerged(shards []ShardProvenance) {
	m.Merged = true
	m.Shards = shards
}

// SetShards records shard provenance without marking the manifest merged
// (worker-side manifests: the shards this process produced).
func (m *Manifest) SetShards(shards []ShardProvenance) { m.Shards = shards }

// Finish stamps the end time and wall duration.
func (m *Manifest) Finish() {
	m.Finished = time.Now()
	m.WallSeconds = m.Finished.Sub(m.Started).Seconds()
}

// WriteFile writes the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	js, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding manifest: %w", err)
	}
	return os.WriteFile(path, append(js, '\n'), 0o644)
}

// gitDescribe best-effort identifies the working tree; "" when git or the
// repository is unavailable (e.g. a released binary).
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
