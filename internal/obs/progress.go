package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress reports wall-clock telemetry for a sweep of independent
// simulations: runs done/total, throughput, ETA, and worker occupancy.
// It is safe for concurrent use by the experiment runner's workers, and
// every method is a no-op on a nil receiver so call sites need no guards.
//
// Text lines go to the writer passed to NewProgress (normally stderr);
// JSONLTo additionally streams one JSON object per completed run to a
// machine-readable sink.
type Progress struct {
	mu      sync.Mutex
	text    io.Writer
	jsonl   io.Writer
	label   string
	total   int
	workers int
	done    int
	running int
	start   time.Time
	now     func() time.Time // injectable for tests
}

// NewProgress creates a reporter for total runs, writing human-readable
// lines prefixed with label to w. A nil w suppresses text output (useful
// with a JSONL-only sink).
func NewProgress(w io.Writer, label string, total int) *Progress {
	p := &Progress{text: w, label: label, total: total, now: time.Now}
	p.start = p.now()
	return p
}

// JSONLTo streams one JSON line per completed run to w.
func (p *Progress) JSONLTo(w io.Writer) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.jsonl = w
}

// SetWorkers records the size of the worker pool (for occupancy lines).
func (p *Progress) SetWorkers(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.workers = n
}

// RunStart notes that a worker picked up a simulation.
func (p *Progress) RunStart() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.running++
}

// RunDone notes that the simulation labelled `run` completed, and emits a
// progress line (and JSONL record, if a sink is set).
func (p *Progress) RunDone(run string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.running--
	p.done++
	elapsed, rate, eta := p.rates()
	if p.text != nil {
		fmt.Fprintf(p.text, "%s: %d/%d sims (%.0f%%) | %.1f sims/s | ETA %.0fs | %d/%d workers busy | done %s\n",
			p.label, p.done, p.total, p.percent(), rate, eta, p.running, p.workers, run)
	}
	if p.jsonl != nil {
		rec := struct {
			Label    string  `json:"label"`
			Run      string  `json:"run"`
			Done     int     `json:"done"`
			Total    int     `json:"total"`
			Running  int     `json:"running"`
			Workers  int     `json:"workers"`
			ElapsedS float64 `json:"elapsed_s"`
			SimsPerS float64 `json:"sims_per_s"`
			EtaS     float64 `json:"eta_s"`
		}{p.label, run, p.done, p.total, p.running, p.workers, elapsed, rate, eta}
		if b, err := json.Marshal(rec); err == nil {
			fmt.Fprintf(p.jsonl, "%s\n", b)
		}
	}
}

// rates computes elapsed wall seconds, completion rate, and remaining-time
// estimate. With nothing completed yet the rate is zero and the ETA stays
// zero ("unknown") rather than dividing through to +Inf or NaN, and a
// done count past total (tasks added after construction) clamps the ETA
// at zero instead of going negative. Caller holds p.mu.
func (p *Progress) rates() (elapsed, rate, eta float64) {
	elapsed = p.now().Sub(p.start).Seconds()
	if elapsed > 0 && p.done > 0 {
		rate = float64(p.done) / elapsed
	}
	if rate > 0 && p.total > p.done {
		eta = float64(p.total-p.done) / rate
	}
	return elapsed, rate, eta
}

// percent returns completion as a percentage, 0 when total is unknown or
// zero (never NaN or +Inf). Caller holds p.mu.
func (p *Progress) percent() float64 {
	if p.total <= 0 {
		return 0
	}
	return 100 * float64(p.done) / float64(p.total)
}

// Snapshot is the current progress state as one JSON-encodable record —
// the campaign half of a monitor's /status document.
type Snapshot struct {
	Label    string  `json:"label"`
	Done     int     `json:"done"`
	Total    int     `json:"total"`
	Running  int     `json:"running"`
	Workers  int     `json:"workers"`
	ElapsedS float64 `json:"elapsed_s"`
	SimsPerS float64 `json:"sims_per_s"`
	EtaS     float64 `json:"eta_s"`
}

// Snapshot returns the reporter's current state. Safe for concurrent use;
// a nil receiver returns the zero Snapshot.
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	elapsed, rate, eta := p.rates()
	return Snapshot{
		Label: p.label, Done: p.done, Total: p.total,
		Running: p.running, Workers: p.workers,
		ElapsedS: elapsed, SimsPerS: rate, EtaS: eta,
	}
}

// Finish emits a closing summary line.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	elapsed, rate, _ := p.rates()
	if p.text != nil {
		fmt.Fprintf(p.text, "%s: finished %d/%d sims in %.1fs (%.1f sims/s)\n",
			p.label, p.done, p.total, elapsed, rate)
	}
}
