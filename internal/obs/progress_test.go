package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock steps virtual wall time under test control.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestProgress(w *strings.Builder, total int) (*Progress, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	p := NewProgress(w, "test", total)
	p.now = clk.now
	p.start = clk.now()
	return p, clk
}

// TestProgressETA pins the rate/ETA arithmetic: after 4 of 10 runs in
// 20 s, the rate is 0.2 sims/s and the remaining 6 runs project to 30 s.
func TestProgressETA(t *testing.T) {
	var sb strings.Builder
	p, clk := newTestProgress(&sb, 10)
	p.SetWorkers(2)
	for i := 0; i < 4; i++ {
		p.RunStart()
		clk.advance(5 * time.Second)
		p.RunDone("r")
	}
	s := p.Snapshot()
	if s.Done != 4 || s.Total != 10 || s.Running != 0 || s.Workers != 2 {
		t.Fatalf("snapshot counts = %+v", s)
	}
	if s.ElapsedS != 20 {
		t.Errorf("ElapsedS = %v, want 20", s.ElapsedS)
	}
	if s.SimsPerS != 0.2 {
		t.Errorf("SimsPerS = %v, want 0.2", s.SimsPerS)
	}
	if s.EtaS != 30 {
		t.Errorf("EtaS = %v, want 30", s.EtaS)
	}
	if !strings.Contains(sb.String(), "4/10 sims (40%) | 0.2 sims/s | ETA 30s") {
		t.Errorf("progress line does not show the ETA math:\n%s", sb.String())
	}
}

// TestProgressSnapshotZeroElapsed: no divide-by-zero surprises before any
// time has passed or any run has finished.
func TestProgressSnapshotZeroElapsed(t *testing.T) {
	var sb strings.Builder
	p, _ := newTestProgress(&sb, 5)
	s := p.Snapshot()
	if s.SimsPerS != 0 || s.EtaS != 0 || s.ElapsedS != 0 {
		t.Fatalf("idle snapshot = %+v, want zero rates", s)
	}
	var nilP *Progress
	if got := nilP.Snapshot(); got != (Snapshot{}) {
		t.Fatalf("nil Snapshot = %+v", got)
	}
}

// TestProgressZeroTotalFinite: a reporter constructed with zero total
// (e.g. a campaign whose cell list is discovered later) must emit finite
// numbers — no NaN percent, no +Inf ETA — in both the text line and the
// JSONL record.
func TestProgressZeroTotalFinite(t *testing.T) {
	var text, jl strings.Builder
	p, clk := newTestProgress(&text, 0)
	p.JSONLTo(&jl)
	p.RunStart()
	clk.advance(5 * time.Second)
	p.RunDone("stray")
	out := text.String()
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("progress line contains %s:\n%s", bad, out)
		}
		if strings.Contains(jl.String(), bad) {
			t.Errorf("JSONL record contains %s:\n%s", bad, jl.String())
		}
	}
	if !strings.Contains(out, "(0%)") {
		t.Errorf("zero-total percent not clamped to 0:\n%s", out)
	}
	// done (1) exceeds total (0): ETA clamps to 0, never negative.
	if s := p.Snapshot(); s.EtaS != 0 || math.IsNaN(s.SimsPerS) {
		t.Fatalf("snapshot = %+v", s)
	}
}

// TestProgressETANeverNegative: more completions than the declared total
// (runs added mid-campaign) must not project a negative ETA.
func TestProgressETANeverNegative(t *testing.T) {
	var sb strings.Builder
	p, clk := newTestProgress(&sb, 2)
	for i := 0; i < 3; i++ {
		p.RunStart()
		clk.advance(time.Second)
		p.RunDone("r")
	}
	if s := p.Snapshot(); s.EtaS < 0 {
		t.Fatalf("EtaS = %v, want >= 0", s.EtaS)
	}
	if strings.Contains(sb.String(), "ETA -") {
		t.Errorf("negative ETA printed:\n%s", sb.String())
	}
}

// TestProgressJSONL checks the per-run JSONL record carries the same
// numbers as the snapshot.
func TestProgressJSONL(t *testing.T) {
	var text, jl strings.Builder
	p, clk := newTestProgress(&text, 4)
	p.JSONLTo(&jl)
	p.RunStart()
	clk.advance(10 * time.Second)
	p.RunDone("cellA seed=1")
	var rec struct {
		Run      string  `json:"run"`
		Done     int     `json:"done"`
		Total    int     `json:"total"`
		ElapsedS float64 `json:"elapsed_s"`
		SimsPerS float64 `json:"sims_per_s"`
		EtaS     float64 `json:"eta_s"`
	}
	if err := json.Unmarshal([]byte(jl.String()), &rec); err != nil {
		t.Fatalf("bad JSONL %q: %v", jl.String(), err)
	}
	if rec.Run != "cellA seed=1" || rec.Done != 1 || rec.Total != 4 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.ElapsedS != 10 || rec.SimsPerS != 0.1 || rec.EtaS != 30 {
		t.Fatalf("record rates = %+v, want elapsed 10, rate 0.1, eta 30", rec)
	}
}
