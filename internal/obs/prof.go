package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags is the shared observability flag block for commands: pprof
// profiling, probe-series output, and run-manifest emission. Bind it once
// per command with BindFlags so every binary exposes the same vocabulary.
type Flags struct {
	CPUProfile     string
	MemProfile     string
	SeriesPath     string  // -obs: CSV destination for the probe series
	SeriesInterval float64 // -obs-interval: virtual seconds between samples
	StreamPath     string  // -obs-stream: incremental JSONL/CSV sample stream
	ManifestPath   string  // -manifest: JSON run-manifest destination
	TracePath      string  // -trace-out: DGE event-trace destination (.gz = gzip)
	ListenAddr     string  // -listen: live monitor HTTP address
	MetricsPath    string  // -metrics-out: final Prometheus-text registry snapshot
	WatchdogMode   string  // -watchdog: invariant watchdog mode (off, warn, fail)
	Pprof          bool    // -pprof: mount /debug/pprof/* on the -listen monitor
}

// BindFlags registers the shared observability flags on fs (use
// flag.CommandLine in main) and returns the destination struct.
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	fs.StringVar(&f.SeriesPath, "obs", "", "sample observability probes and write the time series to this CSV file")
	fs.Float64Var(&f.SeriesInterval, "obs-interval", 60, "virtual-time probe sampling interval in seconds (with -obs)")
	fs.StringVar(&f.StreamPath, "obs-stream", "", "stream probe samples to this file as they are taken (.csv extension selects CSV, anything else JSON Lines)")
	fs.StringVar(&f.ManifestPath, "manifest", "", "write a run manifest (config hash, seeds, git describe, timings) to this JSON file")
	fs.StringVar(&f.TracePath, "trace-out", "", "record the DGE event trace to this JSONL file (.gz gzips; analyze with dgetrace)")
	fs.StringVar(&f.ListenAddr, "listen", "", "serve live /metrics, /status, and /events on this address (e.g. 127.0.0.1:8080) while running")
	fs.StringVar(&f.MetricsPath, "metrics-out", "", "write a final Prometheus-text snapshot of the metrics registry to this file")
	fs.StringVar(&f.WatchdogMode, "watchdog", "off", "online invariant watchdog: off, warn (log and continue), fail (abort the run)")
	fs.BoolVar(&f.Pprof, "pprof", false, "mount net/http/pprof profiling endpoints under /debug/pprof/ on the -listen monitor")
	return f
}

// StartProfiling begins CPU profiling if requested. The returned stop
// function ends CPU profiling and writes the heap profile if requested;
// it is safe to call when neither profile was enabled.
func (f *Flags) StartProfiling() (stop func() error, err error) {
	var cpu *os.File
	if f.CPUProfile != "" {
		cpu, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	return func() error {
		var first error
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil && first == nil {
				first = err
			}
		}
		if f.MemProfile != "" {
			mem, err := os.Create(f.MemProfile)
			if err != nil {
				if first == nil {
					first = err
				}
			} else {
				runtime.GC() // settle allocations so the heap profile is meaningful
				if err := pprof.WriteHeapProfile(mem); err != nil && first == nil {
					first = err
				}
				if err := mem.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
		return first
	}, nil
}
