package watchdog

import (
	"strings"
	"testing"
)

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"off", Off, true},
		{"", Off, true},
		{"warn", Warn, true},
		{"fail", Fail, true},
		{"panic", Off, false},
	} {
		got, err := ParseMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if Warn.String() != "warn" || Fail.String() != "fail" || Off.String() != "off" {
		t.Error("Mode.String mismatch")
	}
}

func TestOffModeIsNoOp(t *testing.T) {
	w := New(Config{Mode: Off})
	w.Register("always_bad", func() string { return "broken" })
	if err := w.Tick(1); err != nil {
		t.Fatalf("Off mode Tick returned %v", err)
	}
	if w.Count() != 0 {
		t.Fatalf("Off mode recorded %d violations", w.Count())
	}
}

func TestWarnModeLogsAndContinues(t *testing.T) {
	var seen []Violation
	w := New(Config{Mode: Warn, OnViolation: func(v Violation) { seen = append(seen, v) }})
	calls := 0
	w.Register("flaky", func() string {
		calls++
		if calls == 2 {
			return "call 2 broke"
		}
		return ""
	})
	for i := 1; i <= 3; i++ {
		if err := w.Tick(float64(i)); err != nil {
			t.Fatalf("Warn mode Tick returned %v", err)
		}
	}
	if w.Count() != 1 || len(seen) != 1 {
		t.Fatalf("count = %d, observed = %d; want 1, 1", w.Count(), len(seen))
	}
	v := seen[0]
	if v.T != 2 || v.Check != "flaky" || v.Detail != "call 2 broke" {
		t.Fatalf("violation = %+v", v)
	}
	if w.Tripped() {
		t.Fatal("Warn mode should never trip")
	}
}

func TestFailModeStopsAtFirstViolation(t *testing.T) {
	w := New(Config{Mode: Fail})
	w.Register("conservation", func() string { return "submitted 10 != accounted 9" })
	err := w.Tick(5)
	if err == nil {
		t.Fatal("Fail mode should return an error")
	}
	if !strings.Contains(err.Error(), "conservation") || !strings.Contains(err.Error(), "submitted 10 != accounted 9") {
		t.Fatalf("error lacks detail: %v", err)
	}
	if !w.Tripped() {
		t.Fatal("Tripped should be true")
	}
}

func TestTimeMonotonicity(t *testing.T) {
	w := New(Config{Mode: Fail})
	if err := w.Tick(10); err != nil {
		t.Fatal(err)
	}
	if err := w.Tick(10); err != nil {
		t.Fatalf("equal timestamps are fine: %v", err)
	}
	err := w.Tick(9)
	if err == nil || !strings.Contains(err.Error(), "time_monotonic") {
		t.Fatalf("backwards tick should trip monotonicity: %v", err)
	}
}

func TestMaxLogCapsRetainedNotCount(t *testing.T) {
	w := New(Config{Mode: Warn, MaxLog: 2})
	w.Register("bad", func() string { return "x" })
	for i := 0; i < 5; i++ {
		if err := w.Tick(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5 {
		t.Fatalf("count = %d, want 5", w.Count())
	}
	if len(w.Violations()) != 2 {
		t.Fatalf("retained = %d, want 2", len(w.Violations()))
	}
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil check fn should panic")
		}
	}()
	New(Config{Mode: Warn}).Register("nil", nil)
}
