// Package watchdog runs online invariant checks over a live simulation.
//
// A conservation bug — jobs leaking out of the submitted/queued/running/
// completed ledger, replicas the storage accounting lost track of, a link
// carrying more than its capacity — is caught after a run today by
// dgetrace -validate, long after thousands of virtual seconds of
// plausible-looking numbers were produced. The watchdog moves those
// checks online: the owning simulation registers closures over its own
// state and ticks the watchdog on its ObsInterval cadence, so a broken
// scheduler change dies loudly mid-run (Fail mode) or at least announces
// itself (Warn mode) instead of quietly corrupting a campaign.
//
// The watchdog is driven strictly from the simulation goroutine: checks
// read simulation state that must not be touched concurrently, and the
// tick is an ordinary deterministic engine event. Attaching a watchdog to
// a healthy run therefore changes nothing about its Results.
package watchdog

import (
	"fmt"
	"strings"
)

// Mode selects what a violation does to the run.
type Mode int

const (
	// Off disables the watchdog entirely.
	Off Mode = iota
	// Warn reports violations (observer callback + violation log) and
	// lets the run continue.
	Warn
	// Fail stops the run at the first violating tick: Tick returns an
	// error the simulation must treat as fatal.
	Fail
)

func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Warn:
		return "warn"
	case Fail:
		return "fail"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode converts a flag value ("off", "warn", "fail") to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off", "":
		return Off, nil
	case "warn":
		return Warn, nil
	case "fail":
		return Fail, nil
	default:
		return Off, fmt.Errorf("watchdog: unknown mode %q (want off, warn, or fail)", s)
	}
}

// Violation is one failed invariant at one tick.
type Violation struct {
	T      float64 `json:"t"`      // virtual time of the tick
	Check  string  `json:"check"`  // invariant name
	Detail string  `json:"detail"` // what disagreed with what
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%.0f %s: %s", v.T, v.Check, v.Detail)
}

// Config parameterizes a watchdog.
type Config struct {
	Mode Mode
	// OnViolation, when non-nil, observes every violation as it is found
	// (monitor event streams, logs). Called from the simulation
	// goroutine.
	OnViolation func(Violation)
	// MaxLog caps the retained violation log (default 100); the total
	// count keeps growing past the cap.
	MaxLog int
}

// Watchdog evaluates registered invariant checks. Not safe for concurrent
// use; it belongs to the simulation goroutine.
type Watchdog struct {
	mode        Mode
	onViolation func(Violation)
	maxLog      int

	checks []check

	lastT   float64
	ticked  bool
	count   int
	logged  []Violation
	tripped bool
}

type check struct {
	name string
	fn   func() string
}

// New builds a watchdog; a Config with Mode Off returns a watchdog whose
// Tick is a cheap no-op, so call sites need no nil guards.
func New(cfg Config) *Watchdog {
	maxLog := cfg.MaxLog
	if maxLog <= 0 {
		maxLog = 100
	}
	return &Watchdog{mode: cfg.Mode, onViolation: cfg.OnViolation, maxLog: maxLog}
}

// Register adds an invariant. fn returns "" while the invariant holds and
// a human-readable detail string when it does not. Checks run in
// registration order.
func (w *Watchdog) Register(name string, fn func() string) {
	if fn == nil {
		panic(fmt.Sprintf("watchdog: check %q with nil function", name))
	}
	w.checks = append(w.checks, check{name: name, fn: fn})
}

// Tick evaluates every check at virtual time t, plus the built-in
// virtual-time monotonicity invariant. In Fail mode the first violating
// tick returns an error summarizing that tick's violations; in Warn mode
// Tick always returns nil.
func (w *Watchdog) Tick(t float64) error {
	if w.mode == Off {
		return nil
	}
	var fired []Violation
	if w.ticked && t < w.lastT {
		fired = append(fired, Violation{T: t, Check: "time_monotonic",
			Detail: fmt.Sprintf("tick at t=%v after t=%v", t, w.lastT)})
	}
	w.lastT, w.ticked = t, true
	for _, c := range w.checks {
		if detail := c.fn(); detail != "" {
			fired = append(fired, Violation{T: t, Check: c.name, Detail: detail})
		}
	}
	for _, v := range fired {
		w.count++
		if len(w.logged) < w.maxLog {
			w.logged = append(w.logged, v)
		}
		if w.onViolation != nil {
			w.onViolation(v)
		}
	}
	if len(fired) > 0 && w.mode == Fail {
		w.tripped = true
		details := make([]string, len(fired))
		for i, v := range fired {
			details[i] = v.String()
		}
		return fmt.Errorf("watchdog: %d invariant violation(s): %s",
			len(fired), strings.Join(details, "; "))
	}
	return nil
}

// Count returns the total violations seen (including any beyond the log
// cap).
func (w *Watchdog) Count() int { return w.count }

// Tripped reports whether a Fail-mode tick returned an error.
func (w *Watchdog) Tripped() bool { return w.tripped }

// Violations returns the retained violation log (read-only).
func (w *Watchdog) Violations() []Violation { return w.logged }
