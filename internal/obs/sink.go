package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Sink receives probe samples incrementally as the simulation takes
// them, instead of (not in place of) the in-memory Series: attaching a
// sink never changes what a run returns, only where copies of the rows
// go while it is still running. Long sweeps can tail the output without
// waiting for the run to finish, and a crashed run leaves the samples
// taken so far on disk.
//
// Sinks are called from the simulation goroutine; implementations need
// no locking but must not block indefinitely. Errors are sticky: after
// the first failure the registry stops calling the sink and reports the
// error via SinkErr.
type Sink interface {
	// Begin is called once, before any points, with the probe columns in
	// registration order.
	Begin(names []string, kinds []Kind) error
	// Point is called once per sampling tick.
	Point(p Point) error
}

// jsonlSink streams one JSON object per line: a header object with the
// column metadata, then {"t": ..., "values": [...]} per tick.
type jsonlSink struct {
	enc *json.Encoder
}

// NewJSONLSink returns a Sink writing JSON Lines to w. The first line
// holds the column names and kinds; each subsequent line is one sample.
func NewJSONLSink(w io.Writer) Sink {
	return &jsonlSink{enc: json.NewEncoder(w)}
}

func (s *jsonlSink) Begin(names []string, kinds []Kind) error {
	ks := make([]string, len(kinds))
	for i, k := range kinds {
		ks[i] = k.String()
	}
	return s.enc.Encode(struct {
		Names []string `json:"names"`
		Kinds []string `json:"kinds"`
	}{names, ks})
}

func (s *jsonlSink) Point(p Point) error {
	return s.enc.Encode(struct {
		T      float64   `json:"t"`
		Values []float64 `json:"values"`
	}{p.T, p.Values})
}

// csvSink streams a header row ("t" plus probe names) and one comma-
// separated row per tick, matching report.SeriesCSV's layout.
type csvSink struct {
	w   io.Writer
	buf []byte
}

// NewCSVSink returns a Sink writing CSV rows to w.
func NewCSVSink(w io.Writer) Sink {
	return &csvSink{w: w}
}

func (s *csvSink) Begin(names []string, kinds []Kind) error {
	s.buf = append(s.buf[:0], 't')
	for _, n := range names {
		s.buf = append(s.buf, ',')
		s.buf = append(s.buf, n...)
	}
	s.buf = append(s.buf, '\n')
	_, err := s.w.Write(s.buf)
	return err
}

func (s *csvSink) Point(p Point) error {
	s.buf = strconv.AppendFloat(s.buf[:0], p.T, 'g', -1, 64)
	for _, v := range p.Values {
		s.buf = append(s.buf, ',')
		s.buf = strconv.AppendFloat(s.buf, v, 'g', -1, 64)
	}
	s.buf = append(s.buf, '\n')
	_, err := s.w.Write(s.buf)
	return err
}

// OpenStreamSink creates the -obs-stream file and returns the matching
// sink (CSV for a .csv extension, JSON Lines otherwise) plus a close
// function. Returns (nil, nil, nil) when the flag is unset.
func (f *Flags) OpenStreamSink() (Sink, func() error, error) {
	if f.StreamPath == "" {
		return nil, nil, nil
	}
	file, err := os.Create(f.StreamPath)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: stream sink: %w", err)
	}
	var sink Sink
	if strings.HasSuffix(f.StreamPath, ".csv") {
		sink = NewCSVSink(file)
	} else {
		sink = NewJSONLSink(file)
	}
	return sink, file.Close, nil
}

// StreamTo attaches a sink: the header goes out immediately and every
// subsequent Sample also emits one sink row. Call before sampling
// starts; attaching mid-run would hand the sink a headerless tail.
// A nil sink is a no-op, so call sites can pass configuration through
// unconditionally.
func (r *Registry) StreamTo(sink Sink) {
	if sink == nil {
		return
	}
	if len(r.points) > 0 {
		panic("obs: StreamTo after sampling started")
	}
	r.sink = sink
	if err := sink.Begin(r.names, r.kinds); err != nil {
		r.sink = nil
		r.sinkErr = fmt.Errorf("obs: sink header: %w", err)
	}
}

// SinkErr returns the first error the streaming sink hit, or nil. After
// an error the sink receives nothing further; the in-memory series is
// unaffected.
func (r *Registry) SinkErr() error { return r.sinkErr }
