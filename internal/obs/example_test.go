package obs_test

import (
	"fmt"

	"chicsim/internal/desim"
	"chicsim/internal/obs"
)

// A registry samples its probes on the virtual clock. Here a queue-depth
// gauge and a completed-jobs counter are sampled every 10 virtual seconds
// while a tiny "workload" (two state-changing events) plays out; sampling
// stops once the clock passes 30 so the engine can drain.
func Example() {
	eng := desim.New()
	queue, done := 4, 0

	reg := obs.NewRegistry()
	reg.Gauge("queue_len", func() float64 { return float64(queue) })
	reg.Counter("jobs_done", func() float64 { return float64(done) })

	eng.Schedule(5, func() { queue, done = 2, 2 })
	eng.Schedule(25, func() { queue, done = 0, 4 })
	reg.Attach(eng, 10, func() bool { return eng.Now() < 40 })
	eng.Run()

	s := reg.Series()
	fmt.Println("probes:", s.Names)
	for _, p := range s.Points {
		fmt.Printf("t=%g queue_len=%g jobs_done=%g\n", p.T, p.Values[0], p.Values[1])
	}
	// Output:
	// probes: [queue_len jobs_done]
	// t=10 queue_len=2 jobs_done=2
	// t=20 queue_len=2 jobs_done=2
	// t=30 queue_len=0 jobs_done=4
}
