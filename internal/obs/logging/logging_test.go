package logging

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNewJSONCarriesComponentAndAttrs(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, slog.LevelInfo, "json", "griddispatch")
	l.Info("shard requeued", "campaign", "abc123", "shard", 4, "worker", "w1-a")
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	for k, want := range map[string]any{
		"component": "griddispatch",
		"msg":       "shard requeued",
		"campaign":  "abc123",
		"shard":     float64(4),
		"worker":    "w1-a",
	} {
		if doc[k] != want {
			t.Errorf("field %q = %v, want %v", k, doc[k], want)
		}
	}
}

func TestNewTextLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, slog.LevelWarn, "text", "gridworker")
	l.Info("dropped")
	l.Warn("kept", "shard", 1)
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Errorf("info line not filtered at warn level:\n%s", out)
	}
	if !strings.Contains(out, "kept") || !strings.Contains(out, "shard=1") ||
		!strings.Contains(out, "component=gridworker") {
		t.Errorf("warn line missing content:\n%s", out)
	}
}

func TestFlagsLogger(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := BindFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Logger("test"); err != nil {
		t.Fatal(err)
	}
	f.Format = "yaml"
	if _, err := f.Logger("test"); err == nil {
		t.Error("unknown format accepted")
	}
	f.Format = "text"
	f.Level = "loud"
	if _, err := f.Logger("test"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestLogfAdapter(t *testing.T) {
	var lines []string
	l := Logf(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	l = l.With("campaign", "abc")
	l.Info("booked", "shard", 2, "worker", "w1")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	for _, frag := range []string{"INFO booked", "campaign=abc", "shard=2", "worker=w1"} {
		if !strings.Contains(lines[0], frag) {
			t.Errorf("line %q missing %q", lines[0], frag)
		}
	}
	// Groups prefix keys; WithAttrs accumulates.
	lines = nil
	g := l.WithGroup("fabric").With("shard", 9)
	g.Warn("lost lease")
	if len(lines) != 1 || !strings.Contains(lines[0], "fabric.shard=9") {
		t.Errorf("grouped line: %q", lines)
	}
	// Nil sink is a silent logger, not a panic.
	Logf(nil).Error("nobody hears this")
}
