// Package logging is the fleet's structured logging layer: a thin
// vocabulary over log/slog shared by every daemon and CLI so that one
// campaign's log lines correlate across processes. Each line carries the
// emitting component plus whatever fabric coordinates apply — campaign
// ID, shard index, worker ID — as attributes rather than prose, which
// makes a multi-process campaign greppable by `campaign=<id>` whether
// the handler renders text or JSON.
//
// Commands bind the shared -log-level / -log-format flags with
// BindFlags and build their logger with Flags.Logger. Libraries accept a
// *slog.Logger and never choose the handler themselves; the LogfHandler
// adapter keeps printf-style sinks (tests passing t.Logf, older Logf
// hooks) usable behind the same structured call sites.
package logging

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
)

// Flags is the destination of the shared logging flag block. Bind it
// per command with BindFlags so every binary exposes the same
// vocabulary.
type Flags struct {
	Level  string // -log-level: debug, info, warn, error
	Format string // -log-format: text or json
}

// BindFlags registers the shared logging flags on fs (use
// flag.CommandLine in main) and returns the destination struct.
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Level, "log-level", "info", "log verbosity: debug, info, warn, error")
	fs.StringVar(&f.Format, "log-format", "text", "log line encoding: text or json")
	return f
}

// Logger builds the command's logger on os.Stderr from the bound flags,
// tagging every line with the component name.
func (f *Flags) Logger(component string) (*slog.Logger, error) {
	level, err := ParseLevel(f.Level)
	if err != nil {
		return nil, err
	}
	switch f.Format {
	case "text", "json":
	default:
		return nil, fmt.Errorf("logging: unknown -log-format %q (want text or json)", f.Format)
	}
	return New(os.Stderr, level, f.Format, component), nil
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("logging: unknown -log-level %q (want debug, info, warn, error)", s)
	}
}

// New builds a logger writing to w with the given minimum level and
// format ("json" selects the JSON handler, anything else text), tagging
// every line with component. Pass component "" to skip the tag.
func New(w io.Writer, level slog.Leveler, format, component string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(h)
	if component != "" {
		l = l.With("component", component)
	}
	return l
}

// Discard returns a logger that drops everything — the nil-object for
// code paths that want an always-usable *slog.Logger.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Logf adapts a printf-style sink (testing.T.Logf, a legacy Logf hook)
// into a *slog.Logger, rendering each record as "LEVEL msg k=v ...".
// Nil logf yields a Discard logger, so call sites can pass an optional
// hook straight through.
func Logf(logf func(format string, args ...any)) *slog.Logger {
	if logf == nil {
		return Discard()
	}
	return slog.New(&logfHandler{logf: logf})
}

// logfHandler renders records to a printf sink. All levels are enabled:
// the sink owns any filtering (tests want everything anyway).
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
	group string
	mu    sync.Mutex
}

func (h *logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s", r.Level, r.Message)
	// Attrs accumulated via WithAttrs already carry their group prefix;
	// only the record's own attrs still need the current one.
	for _, a := range h.attrs {
		fmt.Fprintf(&sb, " %s=%v", a.Key, a.Value.Resolve().Any())
	}
	r.Attrs(func(a slog.Attr) bool {
		fmt.Fprintf(&sb, " %s=%v", h.prefixed(a.Key), a.Value.Resolve().Any())
		return true
	})
	h.mu.Lock()
	defer h.mu.Unlock()
	h.logf("%s", sb.String())
	return nil
}

func (h *logfHandler) prefixed(key string) string {
	if h.group == "" {
		return key
	}
	return h.group + "." + key
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	merged = append(merged, h.attrs...)
	for _, a := range attrs {
		a.Key = h.prefixed(a.Key)
		merged = append(merged, a)
	}
	return &logfHandler{logf: h.logf, attrs: merged, group: h.group}
}

func (h *logfHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	prefix := name
	if h.group != "" {
		prefix = h.group + "." + name
	}
	return &logfHandler{logf: h.logf, attrs: h.attrs, group: prefix}
}
