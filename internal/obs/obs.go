// Package obs is the live observability layer of the simulator: named
// probes sampled on the virtual clock (Registry), wall-clock progress
// telemetry for experiment sweeps (Progress), shared profiling/series
// flag wiring for commands (Flags), and run manifests for provenance
// (Manifest).
//
// The layer is strictly opt-in. A simulation with no registry attached
// schedules no sampling events and allocates nothing here, so the hot
// path is untouched when observability is off (bench_test.go's
// BenchmarkObservability pair measures exactly that). When a registry is
// attached, samples are taken by an ordinary recurring desim event, so
// the resulting time series is part of the deterministic event order:
// the same seed yields a bit-identical series regardless of how many
// simulations run in parallel around it.
package obs

import (
	"fmt"

	"chicsim/internal/desim"
	"chicsim/internal/metrics/stream"
)

// Kind distinguishes probe semantics: a Gauge is an instantaneous level
// (queue depth, utilization), a Counter is a monotone running total
// (dispatches, evictions).
type Kind uint8

const (
	// GaugeKind marks an instantaneous level.
	GaugeKind Kind = iota
	// CounterKind marks a monotone running total.
	CounterKind
)

func (k Kind) String() string {
	switch k {
	case GaugeKind:
		return "gauge"
	case CounterKind:
		return "counter"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Point is one sampling instant: the virtual time and the value of every
// registered probe, in registration order.
type Point struct {
	T      float64
	Values []float64
}

// Series is the output of a run's sampling: probe names/kinds plus one
// Point per tick. Treat as read-only once produced.
type Series struct {
	Names  []string
	Kinds  []Kind
	Points []Point
}

// Column returns the time series of the named probe, or nil if no such
// probe was registered.
func (s *Series) Column(name string) []float64 {
	if s == nil {
		return nil
	}
	for i, n := range s.Names {
		if n != name {
			continue
		}
		out := make([]float64, len(s.Points))
		for p, pt := range s.Points {
			out[p] = pt.Values[i]
		}
		return out
	}
	return nil
}

// Registry holds named probes and accumulates their sampled series. It is
// bound to a single simulation and, like the engine it samples on, is not
// safe for concurrent use.
type Registry struct {
	names  []string
	kinds  []Kind
	fns    []func() float64
	byName map[string]bool

	points []Point
	window *stream.Window // non-nil once LimitPoints caps the series
	maxPts int

	sink    Sink // optional streaming copy of every sample (see StreamTo)
	sinkErr error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

func (r *Registry) register(name string, kind Kind, fn func() float64) {
	if fn == nil {
		panic(fmt.Sprintf("obs: probe %q with nil function", name))
	}
	if r.byName[name] {
		panic(fmt.Sprintf("obs: duplicate probe %q", name))
	}
	r.byName[name] = true
	r.names = append(r.names, name)
	r.kinds = append(r.kinds, kind)
	r.fns = append(r.fns, fn)
}

// Gauge registers an instantaneous-level probe. Names must be unique
// within the registry; registration order fixes the column order of the
// resulting series.
func (r *Registry) Gauge(name string, fn func() float64) { r.register(name, GaugeKind, fn) }

// Counter registers a monotone running-total probe.
func (r *Registry) Counter(name string, fn func() float64) { r.register(name, CounterKind, fn) }

// Len returns the number of registered probes.
func (r *Registry) Len() int { return len(r.fns) }

// Sample evaluates every probe once and appends a Point at virtual time t.
func (r *Registry) Sample(t float64) {
	vals := make([]float64, len(r.fns))
	for i, fn := range r.fns {
		vals[i] = fn()
	}
	p := Point{T: t, Values: vals}
	if r.maxPts > 0 {
		if r.window == nil {
			isCounter := make([]bool, len(r.kinds))
			for i, k := range r.kinds {
				isCounter[i] = k == CounterKind
			}
			r.window = stream.NewWindow(r.maxPts, isCounter)
		}
		r.window.Add(p.T, p.Values)
	} else {
		r.points = append(r.points, p)
	}
	if r.sink != nil {
		if err := r.sink.Point(p); err != nil {
			r.sink = nil
			r.sinkErr = fmt.Errorf("obs: sink point: %w", err)
		}
	}
}

// Attach schedules sampling on eng every interval seconds of virtual
// time. Before each tick samples, keepGoing is consulted (nil means
// "always"); returning false ends the recurrence without taking a final
// sample, so a finished workload stops producing points and the engine
// can drain.
func (r *Registry) Attach(eng *desim.Engine, interval float64, keepGoing func() bool) {
	eng.Every(interval, func() bool {
		if keepGoing != nil && !keepGoing() {
			return false
		}
		r.Sample(eng.Now())
		return true
	})
}

// LimitPoints caps the in-memory series at roughly max points: samples
// are funneled through a stride-doubling downsampling window
// (metrics/stream.Window) instead of an unbounded slice, so memory stays
// O(max) however long the run. Gauge columns average over each merged
// window and counter columns keep the window-end value. Call before the
// first Sample; probes registered later still work, but a window built on
// first Sample fixes the column count. A streaming sink (StreamTo) is
// unaffected — it still receives every raw sample.
func (r *Registry) LimitPoints(max int) {
	if len(r.points) > 0 || r.window != nil {
		panic("obs: LimitPoints after sampling started")
	}
	r.maxPts = max
}

// Series returns everything sampled so far.
func (r *Registry) Series() *Series {
	pts := r.points
	if r.window != nil {
		wpts := r.window.Points()
		pts = make([]Point, len(wpts))
		for i, wp := range wpts {
			pts[i] = Point{T: wp.T, Values: wp.Values}
		}
	}
	return &Series{Names: r.names, Kinds: r.kinds, Points: pts}
}
