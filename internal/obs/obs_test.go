package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"chicsim/internal/desim"
)

func TestRegistrySamplesInRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	a, b := 1.0, 10.0
	r.Gauge("a", func() float64 { return a })
	r.Counter("b", func() float64 { return b })
	r.Sample(5)
	a, b = 2, 20
	r.Sample(6)

	s := r.Series()
	if !reflect.DeepEqual(s.Names, []string{"a", "b"}) {
		t.Fatalf("names = %v", s.Names)
	}
	if !reflect.DeepEqual(s.Kinds, []Kind{GaugeKind, CounterKind}) {
		t.Fatalf("kinds = %v", s.Kinds)
	}
	want := []Point{{T: 5, Values: []float64{1, 10}}, {T: 6, Values: []float64{2, 20}}}
	if !reflect.DeepEqual(s.Points, want) {
		t.Fatalf("points = %v, want %v", s.Points, want)
	}
	if got := s.Column("b"); !reflect.DeepEqual(got, []float64{10, 20}) {
		t.Fatalf("Column(b) = %v", got)
	}
	if s.Column("missing") != nil {
		t.Fatal("Column on unknown probe should be nil")
	}
}

func TestRegistryDuplicateProbePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate probe name did not panic")
		}
	}()
	r := NewRegistry()
	r.Gauge("x", func() float64 { return 0 })
	r.Counter("x", func() float64 { return 0 })
}

func TestAttachSamplesOnVirtualCadence(t *testing.T) {
	eng := desim.New()
	r := NewRegistry()
	level := 0.0
	r.Gauge("level", func() float64 { return level })
	eng.Schedule(15, func() { level = 7 })
	r.Attach(eng, 10, func() bool { return eng.Now() < 40 })
	eng.Run()

	s := r.Series()
	var ts []float64
	for _, p := range s.Points {
		ts = append(ts, p.T)
	}
	if !reflect.DeepEqual(ts, []float64{10, 20, 30}) {
		t.Fatalf("sampled at %v, want [10 20 30]", ts)
	}
	if got := s.Column("level"); !reflect.DeepEqual(got, []float64{0, 7, 7}) {
		t.Fatalf("level series = %v", got)
	}
}

func TestProgressReportsCountsAndOccupancy(t *testing.T) {
	var text, jsonl bytes.Buffer
	p := NewProgress(&text, "sweep", 4)
	p.JSONLTo(&jsonl)
	p.SetWorkers(2)
	base := time.Unix(1000, 0)
	tick := 0
	p.now = func() time.Time { tick++; return base.Add(time.Duration(tick) * time.Second) }

	p.RunStart()
	p.RunStart()
	p.RunDone("cell-a")
	p.RunDone("cell-b")
	p.Finish()

	out := text.String()
	for _, want := range []string{"sweep: 1/4 sims", "sweep: 2/4 sims", "workers busy", "ETA", "finished 2/4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d, want 2", len(lines))
	}
	var rec struct {
		Run   string `json:"run"`
		Done  int    `json:"done"`
		Total int    `json:"total"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Run != "cell-b" || rec.Done != 2 || rec.Total != 4 {
		t.Fatalf("jsonl record = %+v", rec)
	}
}

func TestProgressNilReceiverIsSafe(t *testing.T) {
	var p *Progress
	p.SetWorkers(3)
	p.RunStart()
	p.RunDone("x")
	p.JSONLTo(nil)
	p.Finish() // must not panic
}

func TestManifestHashStableAndWritable(t *testing.T) {
	type cfg struct{ A, B int }
	m1, err := NewManifest("test", cfg{1, 2}, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewManifest("test", cfg{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m1.ConfigSHA256 != m2.ConfigSHA256 {
		t.Fatalf("same config hashed differently: %s vs %s", m1.ConfigSHA256, m2.ConfigSHA256)
	}
	m3, _ := NewManifest("test", cfg{9, 2}, nil)
	if m3.ConfigSHA256 == m1.ConfigSHA256 {
		t.Fatal("different configs share a hash")
	}

	m1.SetExtra("workers", 8)
	m1.Finish()
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m1.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Command != "test" || back.ConfigSHA256 != m1.ConfigSHA256 || back.Extra["workers"] != float64(8) {
		t.Fatalf("round-tripped manifest = %+v", back)
	}
}
