package storage

import (
	"testing"
	"testing/quick"

	"chicsim/internal/rng"
)

func TestAddAndContains(t *testing.T) {
	s := New(100, nil)
	if !s.AddReplica(1, 40) {
		t.Fatal("add failed")
	}
	if !s.Contains(1) {
		t.Fatal("file 1 missing")
	}
	if s.Contains(2) {
		t.Fatal("phantom file 2")
	}
	h, m := s.HitRate()
	if h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d", h, m)
	}
	if s.Used() != 40 {
		t.Fatalf("Used = %v", s.Used())
	}
}

func TestLRUEviction(t *testing.T) {
	var evicted []FileID
	s := New(100, func(id FileID) { evicted = append(evicted, id) })
	s.AddReplica(1, 40)
	s.AddReplica(2, 40)
	s.Contains(1) // touch 1: now 2 is LRU
	if !s.AddReplica(3, 40) {
		t.Fatal("add 3 failed")
	}
	if s.Peek(2) {
		t.Fatal("LRU file 2 should have been evicted")
	}
	if !s.Peek(1) || !s.Peek(3) {
		t.Fatal("wrong file evicted")
	}
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted = %v", evicted)
	}
	if s.Evictions() != 1 {
		t.Fatalf("Evictions = %d", s.Evictions())
	}
}

func TestMastersNeverEvicted(t *testing.T) {
	s := New(100, nil)
	if err := s.AddMaster(1, 60); err != nil {
		t.Fatal(err)
	}
	s.AddReplica(2, 30)
	// Needs 50: only replica 2 (30) is evictable; master must survive.
	if s.AddReplica(3, 50) {
		t.Fatal("add should fail: master not evictable")
	}
	if !s.Peek(1) {
		t.Fatal("master evicted")
	}
	if !s.Peek(2) {
		t.Fatal("failed AddReplica must not evict when it cannot fit anyway")
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	s := New(100, nil)
	s.AddReplica(1, 60)
	if err := s.Pin(1); err != nil {
		t.Fatal(err)
	}
	if s.AddReplica(2, 60) {
		t.Fatal("add should fail while 1 pinned")
	}
	if err := s.Unpin(1); err != nil {
		t.Fatal(err)
	}
	if !s.AddReplica(2, 60) {
		t.Fatal("add should succeed after unpin")
	}
	if s.Peek(1) {
		t.Fatal("1 should be evicted after unpin")
	}
}

func TestPinErrors(t *testing.T) {
	s := New(100, nil)
	if err := s.Pin(9); err == nil {
		t.Fatal("pin of absent file must error")
	}
	s.AddReplica(1, 10)
	if err := s.Unpin(1); err == nil {
		t.Fatal("unpin of unpinned file must error")
	}
	s.Pin(1)
	s.Pin(1)
	if s.Pins(1) != 2 {
		t.Fatalf("Pins = %d", s.Pins(1))
	}
	s.Unpin(1)
	if s.Pins(1) != 1 {
		t.Fatalf("Pins = %d", s.Pins(1))
	}
	if s.Pins(42) != 0 {
		t.Fatal("absent file pin count should be 0")
	}
}

func TestDuplicateAdds(t *testing.T) {
	s := New(100, nil)
	s.AddReplica(1, 40)
	if !s.AddReplica(1, 40) {
		t.Fatal("re-add of resident replica should succeed (refresh)")
	}
	if s.Used() != 40 {
		t.Fatalf("Used = %v after duplicate add", s.Used())
	}
	if err := s.AddMaster(1, 40); err == nil {
		t.Fatal("AddMaster over resident file must error")
	}
}

func TestUnlimitedCapacity(t *testing.T) {
	s := New(0, nil)
	for i := 0; i < 1000; i++ {
		if !s.AddReplica(FileID(i), 1e12) {
			t.Fatal("unlimited store rejected a file")
		}
	}
	if s.Evictions() != 0 {
		t.Fatal("unlimited store evicted")
	}
}

func TestMasterLargerThanCapacityAllowed(t *testing.T) {
	s := New(10, nil)
	if err := s.AddMaster(1, 100); err != nil {
		t.Fatal(err)
	}
	if !s.Peek(1) {
		t.Fatal("oversized master not resident")
	}
}

func TestResident(t *testing.T) {
	s := New(0, nil)
	s.AddMaster(3, 1)
	s.AddReplica(7, 1)
	got := map[FileID]bool{}
	for _, id := range s.Resident() {
		got[id] = true
	}
	if !got[3] || !got[7] || len(got) != 2 {
		t.Fatalf("Resident = %v", got)
	}
	if !s.IsMaster(3) || s.IsMaster(7) || s.IsMaster(99) {
		t.Fatal("IsMaster wrong")
	}
}

// Property: used never exceeds capacity when only replicas are stored, and
// used always equals the sum of resident sizes.
func TestQuickCapacityInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		const capacity = 1000.0
		sizes := make(map[FileID]float64)
		s := New(capacity, nil)
		pinned := map[FileID]bool{}
		for op := 0; op < 500; op++ {
			id := FileID(src.Intn(30))
			switch src.Intn(5) {
			case 0, 1:
				size := src.Range(1, 400)
				if prev, ok := sizes[id]; ok {
					size = prev // re-add keeps original size
				}
				if s.AddReplica(id, size) {
					sizes[id] = size
				}
			case 2:
				s.Contains(id)
			case 3:
				if s.Peek(id) && s.Pin(id) == nil {
					pinned[id] = true
				}
			case 4:
				if pinned[id] && s.Pins(id) > 0 {
					if err := s.Unpin(id); err != nil {
						return false
					}
					if s.Pins(id) == 0 {
						delete(pinned, id)
					}
				}
			}
			if s.Used() > capacity+1e-9 {
				return false
			}
			sum := 0.0
			for _, rid := range s.Resident() {
				sum += sizes[rid]
				if pinned[rid] && !s.Peek(rid) {
					return false
				}
			}
			if diff := sum - s.Used(); diff > 1e-6 || diff < -1e-6 {
				return false
			}
			// Pinned files must all still be resident.
			for id := range pinned {
				if !s.Peek(id) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: eviction strictly follows recency — after any access pattern,
// forcing one eviction removes exactly the least recently used unpinned
// replica.
func TestQuickLRUOrder(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		s := New(10, nil)
		// Ten unit-size replicas fill the store.
		for i := 0; i < 10; i++ {
			s.AddReplica(FileID(i), 1)
		}
		// Random touches define recency; track our own order.
		order := make([]FileID, 10) // order[0] = least recent
		for i := range order {
			order[i] = FileID(i)
		}
		touch := func(id FileID) {
			for i, v := range order {
				if v == id {
					order = append(append(order[:i], order[i+1:]...), id)
					return
				}
			}
		}
		for k := 0; k < 40; k++ {
			id := FileID(src.Intn(10))
			s.Contains(id)
			touch(id)
		}
		// Force one eviction; the victim must be order[0].
		victim := order[0]
		if !s.AddReplica(99, 1) {
			return false
		}
		return !s.Peek(victim)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveReplica(t *testing.T) {
	var evicted []FileID
	s := New(100, func(id FileID) { evicted = append(evicted, id) })
	s.AddMaster(1, 10)
	s.AddReplica(2, 10)
	s.AddReplica(3, 10)
	s.Pin(3)
	if s.RemoveReplica(1) {
		t.Fatal("removed a master")
	}
	if s.RemoveReplica(3) {
		t.Fatal("removed a pinned file")
	}
	if s.RemoveReplica(9) {
		t.Fatal("removed an absent file")
	}
	if !s.RemoveReplica(2) {
		t.Fatal("failed to remove an unpinned replica")
	}
	if s.Peek(2) {
		t.Fatal("file still resident")
	}
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evict callback = %v", evicted)
	}
	if s.Used() != 20 {
		t.Fatalf("Used = %v", s.Used())
	}
}

func TestAddReplicaNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10, nil).AddReplica(1, -1)
}

func TestAddMasterNegativeSize(t *testing.T) {
	if err := New(10, nil).AddMaster(1, -1); err == nil {
		t.Fatal("expected error")
	}
}
