// Package storage implements a site's capacity-limited dataset store.
//
// Each site holds "master" copies (the initial mapping of datasets to
// sites, never evicted) plus cached replicas fetched for jobs or pushed by
// the dataset scheduler. Caches are "managed using LRU" (paper §4,
// DataDoNothing description); files in use by queued or running jobs are
// pinned and cannot be evicted.
package storage

import (
	"container/list"
	"fmt"
)

// FileID identifies a dataset grid-wide.
type FileID int

// entry is a resident file.
type entry struct {
	id     FileID
	size   float64
	master bool
	pins   int
	lru    *list.Element // nil for masters (never in the LRU list)
}

// EvictFunc is notified when a cached replica is evicted.
type EvictFunc func(FileID)

// Store is one site's storage. Not safe for concurrent use (the simulation
// is single-threaded).
type Store struct {
	capacity float64
	used     float64
	files    map[FileID]*entry
	lru      *list.List // front = most recently used; values are *entry
	onEvict  EvictFunc

	evictions int
	hits      int
	misses    int
}

// New creates a store with the given capacity in bytes. A non-positive
// capacity means "unlimited" (the paper's Table 1 does not bound storage;
// bounded storage is the documented default in DESIGN.md).
func New(capacity float64, onEvict EvictFunc) *Store {
	return &Store{
		capacity: capacity,
		files:    make(map[FileID]*entry),
		lru:      list.New(),
		onEvict:  onEvict,
	}
}

// Capacity returns the configured capacity (<= 0 means unlimited).
func (s *Store) Capacity() float64 { return s.capacity }

// Used returns the bytes currently resident.
func (s *Store) Used() float64 { return s.used }

// Len returns the number of resident files.
func (s *Store) Len() int { return len(s.files) }

// Evictions returns how many replicas have been evicted.
func (s *Store) Evictions() int { return s.evictions }

// HitRate returns cache hits/(hits+misses) as observed via Contains.
func (s *Store) HitRate() (hits, misses int) { return s.hits, s.misses }

// Contains reports whether the file is resident, updating recency and
// hit/miss accounting.
func (s *Store) Contains(id FileID) bool {
	e, ok := s.files[id]
	if ok {
		s.touch(e)
		s.hits++
	} else {
		s.misses++
	}
	return ok
}

// Touch refreshes a file's recency without hit/miss accounting. No-op for
// absent files and masters.
func (s *Store) Touch(id FileID) {
	if e, ok := s.files[id]; ok {
		s.touch(e)
	}
}

// Peek reports residency without touching recency or accounting.
func (s *Store) Peek(id FileID) bool {
	_, ok := s.files[id]
	return ok
}

// AddMaster installs a permanent master copy. Masters bypass the LRU and
// count against capacity; installing masters larger than capacity is the
// configuration's problem and is allowed (a site must hold its masters).
func (s *Store) AddMaster(id FileID, size float64) error {
	if _, ok := s.files[id]; ok {
		return fmt.Errorf("storage: file %d already resident", id)
	}
	if size < 0 {
		return fmt.Errorf("storage: negative size %v", size)
	}
	s.files[id] = &entry{id: id, size: size, master: true}
	s.used += size
	return nil
}

// AddReplica caches a replica, evicting least-recently-used unpinned
// replicas as needed. It returns false (and stores nothing) if the file
// cannot fit even after evicting everything evictable. Adding an
// already-resident file only refreshes recency.
func (s *Store) AddReplica(id FileID, size float64) bool {
	if e, ok := s.files[id]; ok {
		s.touch(e)
		return true
	}
	if size < 0 {
		panic(fmt.Sprintf("storage: negative size %v", size))
	}
	if s.capacity > 0 {
		if !s.makeRoom(size) {
			return false
		}
	}
	e := &entry{id: id, size: size}
	e.lru = s.lru.PushFront(e)
	s.files[id] = e
	s.used += size
	return true
}

// makeRoom evicts LRU unpinned replicas until size fits. It is
// all-or-nothing: if the file cannot fit even after evicting everything
// evictable, nothing is evicted and false is returned.
func (s *Store) makeRoom(size float64) bool {
	if s.used+size <= s.capacity {
		return true
	}
	evictable := 0.0
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		if e := el.Value.(*entry); e.pins == 0 {
			evictable += e.size
		}
	}
	if s.used-evictable+size > s.capacity {
		return false
	}
	// Walk from the back (least recently used), skipping pinned entries.
	for el := s.lru.Back(); el != nil && s.used+size > s.capacity; {
		prev := el.Prev()
		e := el.Value.(*entry)
		if e.pins == 0 {
			s.removeReplica(e)
		}
		el = prev
	}
	return true
}

func (s *Store) removeReplica(e *entry) {
	s.lru.Remove(e.lru)
	delete(s.files, e.id)
	s.used -= e.size
	s.evictions++
	if s.onEvict != nil {
		s.onEvict(e.id)
	}
}

// RemoveReplica explicitly deletes a cached replica (the Dataset
// Scheduler's "delete local files" action). It refuses masters, pinned
// files, and absent files, returning false; a successful removal notifies
// the eviction callback like an LRU eviction would.
func (s *Store) RemoveReplica(id FileID) bool {
	e, ok := s.files[id]
	if !ok || e.master || e.pins > 0 {
		return false
	}
	s.removeReplica(e)
	return true
}

// Pin marks a resident file as in-use; pinned files are never evicted.
// Pinning a non-resident file is an error (callers must fetch first).
func (s *Store) Pin(id FileID) error {
	e, ok := s.files[id]
	if !ok {
		return fmt.Errorf("storage: pin of non-resident file %d", id)
	}
	e.pins++
	return nil
}

// Unpin releases one pin.
func (s *Store) Unpin(id FileID) error {
	e, ok := s.files[id]
	if !ok {
		return fmt.Errorf("storage: unpin of non-resident file %d", id)
	}
	if e.pins == 0 {
		return fmt.Errorf("storage: unpin of unpinned file %d", id)
	}
	e.pins--
	return nil
}

// Pins returns the pin count (0 if not resident).
func (s *Store) Pins(id FileID) int {
	if e, ok := s.files[id]; ok {
		return e.pins
	}
	return 0
}

// IsMaster reports whether the resident copy is a master.
func (s *Store) IsMaster(id FileID) bool {
	e, ok := s.files[id]
	return ok && e.master
}

// Resident returns the IDs of all resident files (order unspecified).
func (s *Store) Resident() []FileID {
	out := make([]FileID, 0, len(s.files))
	for id := range s.files {
		out = append(out, id)
	}
	return out
}

func (s *Store) touch(e *entry) {
	if e.lru != nil {
		s.lru.MoveToFront(e.lru)
	}
}
