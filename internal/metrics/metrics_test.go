package metrics

import (
	"math"
	"testing"

	"chicsim/internal/job"
	"chicsim/internal/storage"
)

func doneJob(id job.ID, submit, start, end float64) *job.Job {
	j := job.New(id, 0, 0, []storage.FileID{1}, end-start)
	j.Advance(job.Submitted, submit)
	j.Advance(job.Queued, submit)
	j.Advance(job.Running, start)
	j.Advance(job.Done, end)
	return j
}

func TestJobDoneAndSummarize(t *testing.T) {
	c := NewCollector()
	c.JobDone(doneJob(1, 0, 10, 110))  // response 110
	c.JobDone(doneJob(2, 50, 60, 160)) // response 110
	c.JobDone(doneJob(3, 0, 0, 400))   // response 400
	c.Transfer(FetchTransfer, 300e6)
	c.Transfer(ReplicationTransfer, 600e6)

	// Busy integral: 3 CEs over makespan 400, busy 300 CE-seconds.
	r := c.Summarize(300, 3)
	if r.JobsDone != 3 {
		t.Fatalf("JobsDone = %d", r.JobsDone)
	}
	if r.Makespan != 400 {
		t.Fatalf("Makespan = %v", r.Makespan)
	}
	want := (110.0 + 110 + 400) / 3
	if math.Abs(r.AvgResponseSec-want) > 1e-9 {
		t.Fatalf("AvgResponse = %v, want %v", r.AvgResponseSec, want)
	}
	if r.MedResponseSec != 110 {
		t.Fatalf("Median = %v", r.MedResponseSec)
	}
	if r.P95ResponseSec != 400 {
		t.Fatalf("P95 = %v", r.P95ResponseSec)
	}
	if math.Abs(r.AvgDataPerJobMB-300) > 1e-9 {
		t.Fatalf("AvgData = %v, want 300", r.AvgDataPerJobMB)
	}
	if math.Abs(r.FetchMBPerJob-100) > 1e-9 || math.Abs(r.ReplMBPerJob-200) > 1e-9 {
		t.Fatalf("split = %v/%v", r.FetchMBPerJob, r.ReplMBPerJob)
	}
	// Idle: 1 - 300/(3*400) = 0.75.
	if math.Abs(r.IdleFrac-0.75) > 1e-9 {
		t.Fatalf("IdleFrac = %v", r.IdleFrac)
	}
	if r.FetchCount != 1 || r.ReplCount != 1 {
		t.Fatalf("counts = %d/%d", r.FetchCount, r.ReplCount)
	}
}

func TestEmptyCollector(t *testing.T) {
	r := NewCollector().Summarize(0, 10)
	if r.JobsDone != 0 || r.AvgResponseSec != 0 || r.IdleFrac != 0 {
		t.Fatalf("empty results = %+v", r)
	}
}

func TestJobDonePanicsOnUnfinished(t *testing.T) {
	c := NewCollector()
	j := job.New(1, 0, 0, nil, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.JobDone(j)
}

func TestIdleClamped(t *testing.T) {
	c := NewCollector()
	c.JobDone(doneJob(1, 0, 0, 100))
	// Busy integral exceeding capacity (numeric excursion) clamps to 0.
	r := c.Summarize(1e9, 1)
	if r.IdleFrac != 0 {
		t.Fatalf("IdleFrac = %v, want clamp to 0", r.IdleFrac)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(xs, 0.5); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(xs, 0.95); got != 10 {
		t.Fatalf("p95 = %v", got)
	}
	if got := percentile(xs, 0.01); got != 1 {
		t.Fatalf("p1 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestRecordFields(t *testing.T) {
	c := NewCollector()
	j := job.New(7, 3, 2, []storage.FileID{1}, 50)
	j.Advance(job.Submitted, 5)
	j.Advance(job.Queued, 6)
	j.Advance(job.Running, 10)
	j.Advance(job.Done, 60)
	j.Site = 4
	c.JobDone(j)
	rec := c.Records()[0]
	if rec.ID != 7 || rec.User != 3 || rec.Origin != 2 || rec.Site != 4 {
		t.Fatalf("identity fields wrong: %+v", rec)
	}
	if rec.Response() != 55 {
		t.Fatalf("Response = %v", rec.Response())
	}
}

func TestTransferPanicsOnUnknownPurpose(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCollector().Transfer(TransferPurpose(9), 1)
}
