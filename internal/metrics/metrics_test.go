package metrics

import (
	"math"
	"testing"

	"chicsim/internal/job"
	"chicsim/internal/rng"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

func doneJob(id job.ID, submit, start, end float64) *job.Job {
	j := job.New(id, 0, 0, []storage.FileID{1}, end-start)
	j.Advance(job.Submitted, submit)
	j.Advance(job.Queued, submit)
	j.Advance(job.Running, start)
	j.Advance(job.Done, end)
	return j
}

func TestJobDoneAndSummarize(t *testing.T) {
	c := NewCollector()
	c.JobDone(doneJob(1, 0, 10, 110))  // response 110
	c.JobDone(doneJob(2, 50, 60, 160)) // response 110
	c.JobDone(doneJob(3, 0, 0, 400))   // response 400
	c.Transfer(FetchTransfer, 300e6)
	c.Transfer(ReplicationTransfer, 600e6)

	// Busy integral: 3 CEs over makespan 400, busy 300 CE-seconds.
	r := c.Summarize(300, 3)
	if r.JobsDone != 3 {
		t.Fatalf("JobsDone = %d", r.JobsDone)
	}
	if r.Makespan != 400 {
		t.Fatalf("Makespan = %v", r.Makespan)
	}
	want := (110.0 + 110 + 400) / 3
	if math.Abs(r.AvgResponseSec-want) > 1e-9 {
		t.Fatalf("AvgResponse = %v, want %v", r.AvgResponseSec, want)
	}
	if r.MedResponseSec != 110 {
		t.Fatalf("Median = %v", r.MedResponseSec)
	}
	if r.P95ResponseSec != 400 {
		t.Fatalf("P95 = %v", r.P95ResponseSec)
	}
	if math.Abs(r.AvgDataPerJobMB-300) > 1e-9 {
		t.Fatalf("AvgData = %v, want 300", r.AvgDataPerJobMB)
	}
	if math.Abs(r.FetchMBPerJob-100) > 1e-9 || math.Abs(r.ReplMBPerJob-200) > 1e-9 {
		t.Fatalf("split = %v/%v", r.FetchMBPerJob, r.ReplMBPerJob)
	}
	// Idle: 1 - 300/(3*400) = 0.75.
	if math.Abs(r.IdleFrac-0.75) > 1e-9 {
		t.Fatalf("IdleFrac = %v", r.IdleFrac)
	}
	if r.FetchCount != 1 || r.ReplCount != 1 {
		t.Fatalf("counts = %d/%d", r.FetchCount, r.ReplCount)
	}
}

func TestEmptyCollector(t *testing.T) {
	r := NewCollector().Summarize(0, 10)
	if r.JobsDone != 0 || r.AvgResponseSec != 0 || r.IdleFrac != 0 {
		t.Fatalf("empty results = %+v", r)
	}
}

func TestJobDonePanicsOnUnfinished(t *testing.T) {
	c := NewCollector()
	j := job.New(1, 0, 0, nil, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.JobDone(j)
}

func TestIdleClamped(t *testing.T) {
	c := NewCollector()
	c.JobDone(doneJob(1, 0, 0, 100))
	// Busy integral exceeding capacity (numeric excursion) clamps to 0.
	r := c.Summarize(1e9, 1)
	if r.IdleFrac != 0 {
		t.Fatalf("IdleFrac = %v, want clamp to 0", r.IdleFrac)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(xs, 0.5); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(xs, 0.95); got != 10 {
		t.Fatalf("p95 = %v", got)
	}
	if got := percentile(xs, 0.01); got != 1 {
		t.Fatalf("p1 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestRecordFields(t *testing.T) {
	c := NewCollector()
	j := job.New(7, 3, 2, []storage.FileID{1}, 50)
	j.Advance(job.Submitted, 5)
	j.Advance(job.Queued, 6)
	j.Advance(job.Running, 10)
	j.Advance(job.Done, 60)
	j.Site = 4
	c.JobDone(j)
	rec := c.Records()[0]
	if rec.ID != 7 || rec.User != 3 || rec.Origin != 2 || rec.Site != 4 {
		t.Fatalf("identity fields wrong: %+v", rec)
	}
	if rec.Response() != 55 {
		t.Fatalf("Response = %v", rec.Response())
	}
}

// fillBoth feeds the same synthetic completion stream to a full and a
// bounded collector and returns both summaries.
func fillBoth(t *testing.T, n int) (full, bounded Results) {
	t.Helper()
	feed := func(c *Collector) Results {
		src := rng.New(99)
		for i := 0; i < n; i++ {
			submit := float64(i)
			start := submit + src.Range(1, 50)
			end := start + src.Range(10, 500)
			j := doneJob(job.ID(i), submit, start, end)
			j.Site = topology.SiteID(i % 5)
			c.JobDone(j)
		}
		c.Transfer(FetchTransfer, 250e6)
		c.Transfer(ReplicationTransfer, 100e6)
		return c.Summarize(float64(n)*20, 8)
	}
	full = feed(NewCollector())
	bounded = feed(NewBounded(rng.New(99).Derive("results")))
	return full, bounded
}

func TestBoundedExactFieldsMatchFull(t *testing.T) {
	full, bounded := fillBoth(t, 500)
	if bounded.ResultMode != "bounded" || full.ResultMode != "" {
		t.Fatalf("ResultMode = %q / %q", full.ResultMode, bounded.ResultMode)
	}
	// Every exact field must match to the bit.
	pairs := [][2]float64{
		{full.Makespan, bounded.Makespan},
		{full.AvgResponseSec, bounded.AvgResponseSec},
		{full.MinResponseSec, bounded.MinResponseSec},
		{full.MaxResponseSec, bounded.MaxResponseSec},
		{full.AvgQueueWait, bounded.AvgQueueWait},
		{full.AvgDispatchWaitSec, bounded.AvgDispatchWaitSec},
		{full.AvgDataWaitSec, bounded.AvgDataWaitSec},
		{full.AvgCPUWaitSec, bounded.AvgCPUWaitSec},
		{full.AvgExecSec, bounded.AvgExecSec},
		{full.AvgDataPerJobMB, bounded.AvgDataPerJobMB},
		{full.IdleFrac, bounded.IdleFrac},
	}
	for i, p := range pairs {
		if p[0] != p[1] {
			t.Errorf("exact field %d differs: full %v, bounded %v", i, p[0], p[1])
		}
	}
	if full.JobsDone != bounded.JobsDone || full.FetchCount != bounded.FetchCount {
		t.Fatal("count fields differ")
	}
	// Quantiles are approximate but bounded by the documented error.
	for _, q := range [][2]float64{
		{full.MedResponseSec, bounded.MedResponseSec},
		{full.P95ResponseSec, bounded.P95ResponseSec},
	} {
		if rel := math.Abs(q[1]-q[0]) / q[0]; rel > bounded.RespQuantileRelErr {
			t.Errorf("quantile error %v exceeds bound %v (full %v, bounded %v)",
				rel, bounded.RespQuantileRelErr, q[0], q[1])
		}
	}
}

func TestBoundedSketchOutputs(t *testing.T) {
	_, bounded := fillBoth(t, 500)
	if len(bounded.Exemplars) != ExemplarK {
		t.Fatalf("exemplars = %d, want %d", len(bounded.Exemplars), ExemplarK)
	}
	if len(bounded.TopSites) != 5 {
		t.Fatalf("top sites = %d, want 5 distinct", len(bounded.TopSites))
	}
	// 500 jobs round-robined over 5 sites: each site exactly 100.
	for _, s := range bounded.TopSites {
		if s.Count != 100 || s.Over != 0 {
			t.Fatalf("site sketch inexact under capacity: %+v", s)
		}
	}
	if len(bounded.TopDatasets) == 0 || bounded.TopDatasets[0].Key != 1 {
		t.Fatalf("datasets = %+v (every job reads file 1)", bounded.TopDatasets)
	}
	if bounded.RespHistCounts == nil || len(bounded.RespHistCounts) != RespHistBins {
		t.Fatalf("hist bins = %v", bounded.RespHistCounts)
	}
	total := 0
	for _, c := range bounded.RespHistCounts {
		total += c
	}
	if total != 500 {
		t.Fatalf("hist total = %d", total)
	}
}

func TestBoundedExemplarsDeterministic(t *testing.T) {
	_, a := fillBoth(t, 300)
	_, b := fillBoth(t, 300)
	if len(a.Exemplars) != len(b.Exemplars) {
		t.Fatal("exemplar counts differ")
	}
	for i := range a.Exemplars {
		if a.Exemplars[i] != b.Exemplars[i] {
			t.Fatalf("exemplar %d diverged between identical runs", i)
		}
	}
}

func TestBoundedRecordsNil(t *testing.T) {
	c := NewBounded(rng.New(1))
	c.JobDone(doneJob(1, 0, 10, 20))
	if c.Records() != nil {
		t.Fatal("bounded collector kept records")
	}
	if !c.Bounded() {
		t.Fatal("Bounded() = false")
	}
	if c.JobsDone() != 1 {
		t.Fatalf("JobsDone = %d", c.JobsDone())
	}
}

func TestSiteJobCountsPadded(t *testing.T) {
	c := NewCollector()
	j := doneJob(1, 0, 5, 10)
	j.Site = 2
	c.JobDone(j)
	got := c.SiteJobCounts(6)
	want := []float64{0, 0, 1, 0, 0, 0}
	if len(got) != 6 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts = %v", got)
		}
	}
}

func TestTransferPanicsOnUnknownPurpose(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCollector().Transfer(TransferPurpose(9), 1)
}
