package stream

import "chicsim/internal/rng"

// Reservoir is a fixed-capacity uniform sample of a stream (Vitter's
// Algorithm R): after n Adds each item has been kept with probability
// k/n, using exactly one rng draw per Add beyond the first k. All
// randomness comes from the Source passed at construction, so a reservoir
// fed the same stream from the same seeded sub-stream yields
// byte-identical samples — across runs and across however many campaign
// workers execute sibling simulations.
type Reservoir[T any] struct {
	k     int
	n     int
	items []T
	src   *rng.Source
}

// NewReservoir returns a reservoir keeping at most k items, drawing
// replacement decisions from src.
func NewReservoir[T any](k int, src *rng.Source) *Reservoir[T] {
	if k <= 0 {
		panic("stream: reservoir capacity must be positive")
	}
	if src == nil {
		panic("stream: reservoir needs an rng source")
	}
	return &Reservoir[T]{k: k, items: make([]T, 0, k), src: src}
}

// Add offers one item to the sample.
func (r *Reservoir[T]) Add(item T) {
	r.n++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		return
	}
	if j := r.src.Intn(r.n); j < r.k {
		r.items[j] = item
	}
}

// Seen returns how many items have been offered.
func (r *Reservoir[T]) Seen() int { return r.n }

// Items returns the current sample in slot order (a copy; at most k
// items, fewer when the stream was shorter).
func (r *Reservoir[T]) Items() []T {
	out := make([]T, len(r.items))
	copy(out, r.items)
	return out
}
