package stream

import (
	"math"
	"sort"
	"testing"

	"chicsim/internal/rng"
)

func TestHistogramExactAggregates(t *testing.T) {
	h := NewHistogram()
	vals := []float64{110, 110, 400, 0.5, 1e6}
	sum := 0.0
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != sum {
		t.Fatalf("Sum = %v, want %v", h.Sum(), sum)
	}
	if h.Min() != 0.5 || h.Max() != 1e6 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	if c, e := h.Bins(12); c != nil || e != nil {
		t.Fatalf("empty bins = %v/%v", c, e)
	}
}

// TestHistogramQuantileErrorBound checks the documented contract: over a
// wide value range, every quantile estimate is within RelativeError() of
// the exact nearest-rank quantile.
func TestHistogramQuantileErrorBound(t *testing.T) {
	h := NewHistogram()
	src := rng.New(42)
	vals := make([]float64, 5000)
	for i := range vals {
		// Span six orders of magnitude.
		vals[i] = math.Exp(src.Range(0, 14))
		h.Observe(vals[i])
	}
	sort.Float64s(vals)
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0} {
		idx := int(math.Ceil(p*float64(len(vals)))) - 1
		if idx < 0 {
			idx = 0
		}
		exact := vals[idx]
		got := h.Quantile(p)
		if rel := math.Abs(got-exact) / exact; rel > h.RelativeError() {
			t.Errorf("p=%g: got %v, exact %v, rel err %.4f > %v", p, got, exact, rel, h.RelativeError())
		}
	}
}

func TestHistogramQuantileClampedToMinMax(t *testing.T) {
	h := NewHistogram()
	h.Observe(100)
	h.Observe(200)
	if q := h.Quantile(0); q < 100 {
		t.Fatalf("p0 = %v, below exact min", q)
	}
	if q := h.Quantile(1); q > 200 {
		t.Fatalf("p100 = %v, above exact max", q)
	}
}

func TestHistogramZeroAndExtremeValues(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(0)
	h.Observe(1e300) // clamps into the top bucket
	h.Observe(math.NaN())
	if h.Count() != 3 {
		t.Fatalf("Count = %d (NaN must be ignored)", h.Count())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("median of {0,0,1e300} = %v, want 0", q)
	}
	if q := h.Quantile(1); q != 1e300 {
		t.Fatalf("max quantile = %v (clamp to exact max)", q)
	}
}

func TestHistogramBinsSumToCount(t *testing.T) {
	h := NewHistogram()
	src := rng.New(7)
	for i := 0; i < 1000; i++ {
		h.Observe(src.Range(10, 5000))
	}
	counts, edges := h.Bins(12)
	if len(counts) != 12 || len(edges) != 13 {
		t.Fatalf("shape = %d bins / %d edges", len(counts), len(edges))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1000 {
		t.Fatalf("bin counts sum to %d, want 1000", total)
	}
	if edges[0] != h.Min() || edges[12] != h.Max() {
		t.Fatalf("edge range [%v,%v] != exact [%v,%v]", edges[0], edges[12], h.Min(), h.Max())
	}
}

func TestHistogramBinsSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Observe(50)
	counts, edges := h.Bins(4)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1 {
		t.Fatalf("total = %d", total)
	}
	// Degenerate range widens hi by 1, like stats.Histogram.
	if edges[0] != 50 || edges[len(edges)-1] != 51 {
		t.Fatalf("edges = %v", edges)
	}
}

func TestReservoirDeterministicAndUniform(t *testing.T) {
	fill := func() []int {
		r := NewReservoir[int](8, rng.New(3).Derive("results"))
		for i := 0; i < 10000; i++ {
			r.Add(i)
		}
		return r.Items()
	}
	a, b := fill(), fill()
	if len(a) != 8 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	// Uniformity smoke check over many seeds: the mean sampled index
	// should approach the stream midpoint.
	sum, n := 0.0, 0
	for seed := uint64(1); seed <= 50; seed++ {
		r := NewReservoir[int](8, rng.New(seed))
		for i := 0; i < 2000; i++ {
			r.Add(i)
		}
		for _, v := range r.Items() {
			sum += float64(v)
			n++
		}
	}
	if mean := sum / float64(n); mean < 800 || mean > 1200 {
		t.Fatalf("sampled index mean %v, want near 1000", mean)
	}
}

func TestReservoirShortStream(t *testing.T) {
	r := NewReservoir[string](4, rng.New(1))
	r.Add("a")
	r.Add("b")
	if got := r.Items(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("short stream sample = %v", got)
	}
	if r.Seen() != 2 {
		t.Fatalf("Seen = %d", r.Seen())
	}
}

func TestTopKExactWhenUnderCapacity(t *testing.T) {
	k := NewTopK(8)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			k.Add(int64(i))
		}
	}
	items := k.Items(3)
	if len(items) != 3 {
		t.Fatalf("len = %d", len(items))
	}
	if items[0].Key != 4 || items[0].Count != 5 || items[0].Over != 0 {
		t.Fatalf("top = %+v", items[0])
	}
	if items[1].Key != 3 || items[2].Key != 2 {
		t.Fatalf("order = %+v", items)
	}
}

func TestTopKHeavyHitterSurvivesEviction(t *testing.T) {
	k := NewTopK(4)
	// One heavy key among a churn of one-off keys.
	for i := 0; i < 400; i++ {
		k.Add(77)
		k.Add(int64(1000 + i))
	}
	items := k.Items(1)
	if items[0].Key != 77 {
		t.Fatalf("heavy hitter lost: %+v", items)
	}
	if true77 := uint64(400); items[0].Count < true77 || items[0].Count-items[0].Over > true77 {
		t.Fatalf("count bound violated: %+v (true 400)", items[0])
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	fill := func() []HotItem {
		k := NewTopK(3)
		for _, key := range []int64{5, 3, 9, 1, 8, 2, 5, 3} {
			k.Add(key)
		}
		return k.Items(3)
	}
	a, b := fill(), fill()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tie-break nondeterministic: %v vs %v", a, b)
		}
	}
}

func TestWindowCapsPointsAndPreservesCoverage(t *testing.T) {
	w := NewWindow(8, []bool{false, true}) // one gauge, one counter
	for i := 0; i < 100; i++ {
		w.Add(float64(i), []float64{2, float64(i)})
	}
	pts := w.Points()
	if len(pts) > 8 {
		t.Fatalf("stored %d points, cap 8", len(pts))
	}
	// Gauge column is constant 2; averaging must preserve it exactly.
	for _, p := range pts {
		if p.Values[0] != 2 {
			t.Fatalf("gauge merged to %v, want 2", p.Values[0])
		}
	}
	// Counter column keeps the last raw value of each window; the final
	// point must carry the stream's last counter value.
	last := pts[len(pts)-1]
	if last.Values[1] != 99 || last.T != 99 {
		t.Fatalf("final point = %+v, want counter 99 at t=99", last)
	}
	if w.Stride() < 2 {
		t.Fatalf("stride = %d after overflow", w.Stride())
	}
}

func TestWindowGaugeAveraging(t *testing.T) {
	w := NewWindow(4, []bool{false})
	for _, v := range []float64{1, 3, 5, 7} {
		w.Add(v, []float64{v})
	}
	// Cap 4 halves once: points are averages of (1,3) and (5,7).
	pts := w.Points()
	if len(pts) != 2 || pts[0].Values[0] != 2 || pts[1].Values[0] != 6 {
		t.Fatalf("points = %+v", pts)
	}
}

func TestWindowPartialGroupFlush(t *testing.T) {
	w := NewWindow(4, []bool{false})
	for i := 0; i < 5; i++ {
		w.Add(float64(i), []float64{10})
	}
	// Stride is 2 after the halve at 4 points; the 5th sample sits in a
	// partial group that Points must surface without mutating state.
	a := w.Points()
	b := w.Points()
	if len(a) != len(b) {
		t.Fatalf("Points not idempotent: %d vs %d", len(a), len(b))
	}
	if last := a[len(a)-1]; last.T != 4 || last.Values[0] != 10 {
		t.Fatalf("partial group = %+v", last)
	}
}

func TestWindowDeterministic(t *testing.T) {
	fill := func() []WindowPoint {
		w := NewWindow(16, []bool{false, true, false})
		src := rng.New(11)
		for i := 0; i < 333; i++ {
			w.Add(float64(i), []float64{src.Float64(), float64(i * 2), src.Float64() * 10})
		}
		return w.Points()
	}
	a, b := fill(), fill()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i].T != b[i].T {
			t.Fatalf("T diverged at %d", i)
		}
		for c := range a[i].Values {
			if a[i].Values[c] != b[i].Values[c] {
				t.Fatalf("value diverged at %d/%d", i, c)
			}
		}
	}
}
