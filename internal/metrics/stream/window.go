package stream

// Window caps a sampled time series at a fixed number of stored points by
// widening its effective sampling window: raw samples are merged in
// groups of `stride`, and whenever the store fills, adjacent stored
// points merge pairwise and the stride doubles. Memory is O(maxPoints)
// however long the run; the stored series always covers the whole run at
// uniform (power-of-two × base) resolution.
//
// Merging is kind-aware: gauge columns average over the merged window,
// counter columns keep the window's last value (counters are monotone
// running totals, so "value at window end" is the faithful downsample).
// The merge arithmetic is fixed-order, so the windowed series is as
// deterministic as the raw one.
type Window struct {
	max       int
	isCounter []bool
	stride    int

	points []WindowPoint

	pendT    float64
	pendVals []float64
	pendN    int
}

// WindowPoint is one stored (possibly merged) sample.
type WindowPoint struct {
	T      float64
	Values []float64
}

// NewWindow returns a window storing at most maxPoints merged points for
// a series whose columns have the given counter/gauge kinds. maxPoints is
// rounded up to an even minimum of 2.
func NewWindow(maxPoints int, isCounter []bool) *Window {
	if maxPoints < 2 {
		maxPoints = 2
	}
	if maxPoints%2 == 1 {
		maxPoints++
	}
	return &Window{
		max:       maxPoints,
		isCounter: append([]bool(nil), isCounter...),
		stride:    1,
		pendVals:  make([]float64, len(isCounter)),
	}
}

// Stride returns how many raw samples each stored point currently spans.
func (w *Window) Stride() int { return w.stride }

// Add feeds one raw sample. values must have one entry per column.
func (w *Window) Add(t float64, values []float64) {
	if len(values) != len(w.isCounter) {
		panic("stream: window sample has wrong column count")
	}
	w.pendT = t
	for i, v := range values {
		if w.isCounter[i] {
			w.pendVals[i] = v
		} else {
			w.pendVals[i] += v
		}
	}
	w.pendN++
	if w.pendN < w.stride {
		return
	}
	w.points = append(w.points, w.flushPending())
	if len(w.points) == w.max {
		w.halve()
	}
}

// flushPending finalizes the accumulating group into one point and resets
// the accumulator.
func (w *Window) flushPending() WindowPoint {
	vals := make([]float64, len(w.pendVals))
	for i, v := range w.pendVals {
		if w.isCounter[i] {
			vals[i] = v
		} else {
			vals[i] = v / float64(w.pendN)
		}
		w.pendVals[i] = 0
	}
	p := WindowPoint{T: w.pendT, Values: vals}
	w.pendN = 0
	return p
}

// halve merges stored points pairwise and doubles the stride.
func (w *Window) halve() {
	half := len(w.points) / 2
	for i := 0; i < half; i++ {
		a, b := w.points[2*i], w.points[2*i+1]
		merged := WindowPoint{T: b.T, Values: make([]float64, len(a.Values))}
		for c := range a.Values {
			if w.isCounter[c] {
				merged.Values[c] = b.Values[c]
			} else {
				merged.Values[c] = (a.Values[c] + b.Values[c]) / 2
			}
		}
		w.points[i] = merged
	}
	w.points = w.points[:half]
	w.stride *= 2
}

// Points returns the windowed series so far, including a partially filled
// trailing group (averaged over the samples it holds). The window itself
// is not modified; the result is a copy safe to retain.
func (w *Window) Points() []WindowPoint {
	out := make([]WindowPoint, len(w.points), len(w.points)+1)
	copy(out, w.points)
	if w.pendN > 0 {
		vals := make([]float64, len(w.pendVals))
		for i, v := range w.pendVals {
			if w.isCounter[i] {
				vals[i] = v
			} else {
				vals[i] = v / float64(w.pendN)
			}
		}
		out = append(out, WindowPoint{T: w.pendT, Values: vals})
	}
	return out
}
