package stream

import "sort"

// TopK is a space-saving heavy-hitters sketch (Metwally et al.): at most
// `capacity` keys are tracked; when a new key arrives with the table
// full, the key with the smallest count is evicted and the newcomer
// inherits its count as a documented overestimate. For any key whose true
// frequency exceeds N/capacity (N = total Adds) the sketch is guaranteed
// to hold it, and each entry's error is bounded by its Over value:
// trueCount ∈ [Count−Over, Count].
//
// Eviction is deterministic: the minimum is chosen by (count, key) order,
// never by map iteration, so two sketches fed the same stream are
// identical.
type TopK struct {
	cap     int
	entries []hotEntry
	index   map[int64]int // key → position in entries
}

type hotEntry struct {
	key   int64
	count uint64
	over  uint64
}

// HotItem is one reported heavy hitter. The true frequency of Key lies in
// [Count−Over, Count].
type HotItem struct {
	Key   int64
	Count uint64
	Over  uint64
}

// NewTopK returns an empty sketch tracking at most capacity keys.
func NewTopK(capacity int) *TopK {
	if capacity <= 0 {
		panic("stream: topk capacity must be positive")
	}
	return &TopK{cap: capacity, index: make(map[int64]int, capacity)}
}

// Add counts one occurrence of key.
func (t *TopK) Add(key int64) {
	if pos, ok := t.index[key]; ok {
		t.entries[pos].count++
		return
	}
	if len(t.entries) < t.cap {
		t.index[key] = len(t.entries)
		t.entries = append(t.entries, hotEntry{key: key, count: 1})
		return
	}
	// Evict the (count, key)-minimal entry; the newcomer inherits its
	// count as the overestimate bound.
	minPos := 0
	for i := 1; i < len(t.entries); i++ {
		e, m := t.entries[i], t.entries[minPos]
		if e.count < m.count || (e.count == m.count && e.key < m.key) {
			minPos = i
		}
	}
	old := t.entries[minPos]
	delete(t.index, old.key)
	t.entries[minPos] = hotEntry{key: key, count: old.count + 1, over: old.count}
	t.index[key] = minPos
}

// Seen returns how many distinct keys are currently tracked.
func (t *TopK) Seen() int { return len(t.entries) }

// Items returns the k highest-count entries, ordered by count descending
// then key ascending (deterministic). k larger than the tracked set
// returns everything.
func (t *TopK) Items(k int) []HotItem {
	out := make([]HotItem, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, HotItem{Key: e.key, Count: e.count, Over: e.over})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
