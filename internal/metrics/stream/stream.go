// Package stream holds the constant-memory streaming aggregators behind
// bounded result collection (core.Config.ResultMode = "bounded"): a
// fixed-boundary log-bucketed histogram with exact count/sum/min/max and
// bounded-relative-error quantiles, a seeded deterministic reservoir
// sampler for exemplar rows, a space-saving top-K sketch for hottest
// sites/datasets, and a windowed downsampler that caps an observability
// series at a fixed point budget.
//
// Every aggregator is deterministic: no wall clock, no global randomness
// (the reservoir draws from an explicitly passed rng.Source sub-stream),
// and no map iteration affects any output. Feeding the same observations
// in the same order therefore yields byte-identical summaries regardless
// of how many campaign workers run around the simulation — the same
// contract the rest of the simulator keeps.
package stream

import (
	"math"
)

// Histogram accuracy and index-range constants. The bucket boundaries are
// fixed at construction (they do not depend on the data), so two
// histograms fed different streams are always mergeable and a given value
// always lands in the same bucket.
const (
	// histRelAcc is the target relative accuracy α of quantile estimates:
	// a reported quantile q̂ satisfies |q̂ − q| ≤ α·q for true quantile q
	// within the indexable range. γ = (1+α)/(1−α).
	histRelAcc = 0.01
	// histMinIndexable is the smallest positive value with its own log
	// bucket; smaller observations (including zero) collapse into a
	// dedicated zero bucket whose quantile estimate is 0 (absolute error
	// ≤ histMinIndexable there).
	histMinIndexable = 1e-9
	// histMaxIndexable caps the top bucket; larger observations clamp into
	// it. 1e12 seconds is ~31,700 years of virtual time — far beyond any
	// simulated response.
	histMaxIndexable = 1e12
)

// Histogram is a fixed-boundary log-bucketed histogram (DDSketch-style):
// bucket i covers (γ^(i−1), γ^i] with γ = (1+α)/(1−α), α = 1%. Memory is
// O(1): the bucket array spans [histMinIndexable, histMaxIndexable] and
// is sized once at construction (~2.4k uint64 counters ≈ 19 KiB),
// independent of how many values are observed. Count, sum, min, and max
// are tracked exactly; only quantile positions are approximate.
type Histogram struct {
	counts []uint64
	offset int // counts[0] holds log-bucket index -offset
	zero   uint64

	count    uint64
	sum      float64
	min, max float64

	gamma     float64
	invLogGam float64
}

// NewHistogram returns an empty histogram with the package's fixed 1%
// relative-accuracy bucket layout.
func NewHistogram() *Histogram {
	gamma := (1 + histRelAcc) / (1 - histRelAcc)
	logGam := math.Log(gamma)
	lo := int(math.Ceil(math.Log(histMinIndexable) / logGam))
	hi := int(math.Ceil(math.Log(histMaxIndexable) / logGam))
	return &Histogram{
		counts:    make([]uint64, hi-lo+1),
		offset:    -lo,
		gamma:     gamma,
		invLogGam: 1 / logGam,
	}
}

// RelativeError returns the documented quantile accuracy bound α: within
// the indexable range, Quantile(p) is within ±α of the true quantile in
// relative terms.
func (h *Histogram) RelativeError() float64 { return histRelAcc }

// Observe records one value. NaN observations are ignored (they have no
// place on the bucket axis); negative values count into the zero bucket.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v <= histMinIndexable {
		h.zero++
		return
	}
	i := int(math.Ceil(math.Log(v)*h.invLogGam)) + h.offset
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
}

// Count returns the exact number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Min returns the exact minimum observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact maximum observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the p-quantile by nearest rank (the same rank
// convention the full-mode percentile helper uses: rank ⌈p·n⌉). The
// estimate is the geometric midpoint of the rank's bucket — within ±1%
// relative error of the true quantile — clamped into the exact [min, max]
// range so the extreme quantiles never overshoot the data.
func (h *Histogram) Quantile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank >= h.count {
		return h.max // the top rank's value is tracked exactly
	}
	if rank <= h.zero {
		return h.clamp(0)
	}
	cum := h.zero
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return h.clamp(h.bucketValue(i))
		}
	}
	return h.max // unreachable unless counters drifted; fail safe
}

// bucketValue returns bucket i's representative: the midpoint value
// 2·γ^idx/(γ+1), which bounds relative error at (γ−1)/(γ+1) = α.
func (h *Histogram) bucketValue(i int) float64 {
	idx := float64(i - h.offset)
	return 2 * math.Exp(idx*math.Log(h.gamma)) / (h.gamma + 1)
}

func (h *Histogram) clamp(v float64) float64 {
	if v < h.min {
		return h.min
	}
	if v > h.max {
		return h.max
	}
	return v
}

// Bins renders the sketch as an n-bin equal-width histogram over the
// exact [min, max] range — the same shape stats.Histogram produces from
// raw values, except each log bucket's count lands in the bin containing
// its representative value, so counts near bin edges can shift by one bin
// (bounded by the ±1% bucket width). Returns (nil, nil) when empty.
func (h *Histogram) Bins(n int) ([]int, []float64) {
	if h.count == 0 || n <= 0 {
		return nil, nil
	}
	lo, hi := h.min, h.max
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(n)
	edges := make([]float64, n+1)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	edges[n] = hi
	counts := make([]int, n)
	place := func(v float64, c uint64) {
		if c == 0 {
			return
		}
		i := int((h.clamp(v) - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		counts[i] += int(c)
	}
	place(0, h.zero)
	for i, c := range h.counts {
		place(h.bucketValue(i), c)
	}
	return counts, edges
}
