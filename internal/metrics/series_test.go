package metrics

import (
	"testing"

	"chicsim/internal/obs"
)

func TestSeriesStats(t *testing.T) {
	s := &obs.Series{
		Names: []string{"queue", "done"},
		Kinds: []obs.Kind{obs.GaugeKind, obs.CounterKind},
		Points: []obs.Point{
			{T: 10, Values: []float64{4, 0}},
			{T: 20, Values: []float64{1, 6}},
			{T: 30, Values: []float64{3, 10}},
		},
	}
	stats := SeriesStats(s)
	if len(stats) != 2 {
		t.Fatalf("stats len = %d", len(stats))
	}
	q := stats[0]
	if q.Name != "queue" || q.Min != 1 || q.Max != 4 || q.Last != 3 {
		t.Fatalf("gauge stats = %+v", q)
	}
	if want := (4.0 + 1 + 3) / 3; q.Mean != want {
		t.Fatalf("gauge mean = %v, want %v", q.Mean, want)
	}
	d := stats[1]
	if d.Kind != obs.CounterKind || d.Last != 10 {
		t.Fatalf("counter stats = %+v", d)
	}
	if want := 10.0 / 20; d.Rate != want { // (10−0)/(30−10)
		t.Fatalf("counter rate = %v, want %v", d.Rate, want)
	}

	if SeriesStats(nil) != nil {
		t.Fatal("nil series should yield nil stats")
	}
	if SeriesStats(&obs.Series{Names: []string{"x"}, Kinds: []obs.Kind{obs.GaugeKind}}) != nil {
		t.Fatal("empty series should yield nil stats")
	}
}
