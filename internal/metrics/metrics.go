// Package metrics collects the per-job and per-grid measurements the paper
// reports: average job completion (response) time, average data transferred
// per job, and average processor idle time (§5.2), plus supporting detail
// (queue waits, transfer split by cause, makespan, percentiles).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"chicsim/internal/desim"
	"chicsim/internal/job"
	"chicsim/internal/stats"
)

// RespHistBins is the bin count of the response-time histogram attached
// to Results (equal-width over the observed range; see stats.Histogram).
const RespHistBins = 12

// TransferPurpose labels why bytes moved.
type TransferPurpose int

const (
	// FetchTransfer is a job-driven input fetch (coupled data movement).
	FetchTransfer TransferPurpose = iota
	// ReplicationTransfer is an asynchronous DS push (decoupled movement).
	ReplicationTransfer
	// OutputTransfer ships a job's output back to its submitting site
	// (the output-cost extension; zero in the paper's configuration).
	OutputTransfer
)

// JobRecord is the completed-job measurement row.
type JobRecord struct {
	ID          job.ID
	User        job.UserID
	Origin      int
	Site        int
	Submit      desim.Time
	Dispatch    desim.Time
	DataReady   desim.Time
	Start       desim.Time
	End         desim.Time
	ComputeTime float64
}

// Response returns End − Submit.
func (r JobRecord) Response() float64 { return r.End - r.Submit }

// Decomposition splits one job's response time into the four disjoint
// phases of its lifecycle. The phases tile [Submit, End] exactly:
//
//	Response = DispatchWait + DataWait + CPUWait + Exec
//
// DispatchWait covers submit→(final) dispatch: zero in the paper's online
// model, the buffering window under batch scheduling, and failed attempts
// plus backoff on faulted runs — the "retry share". DataWait is
// dispatch→data-ready (the coupled transfer the paper's DS tries to
// hide), CPUWait is data-ready→start (waiting for a free compute element
// with data already in hand), and Exec is start→end.
type Decomposition struct {
	DispatchWait float64
	DataWait     float64
	CPUWait      float64
	Exec         float64
}

// Sum returns the total of the four phases (= the job's response time).
func (d Decomposition) Sum() float64 {
	return d.DispatchWait + d.DataWait + d.CPUWait + d.Exec
}

// Decompose returns the record's response-time decomposition. A record
// without a data-ready timestamp (defensive; completed jobs always have
// one) charges the whole wait to DataWait.
func (r JobRecord) Decompose() Decomposition {
	ready := r.DataReady
	if ready < 0 {
		ready = r.Start
	}
	return Decomposition{
		DispatchWait: r.Dispatch - r.Submit,
		DataWait:     ready - r.Dispatch,
		CPUWait:      r.Start - ready,
		Exec:         r.End - r.Start,
	}
}

// Collector accumulates measurements during a run.
type Collector struct {
	records     []JobRecord
	fetchBytes  float64
	replBytes   float64
	outputBytes float64
	fetchCount  int
	replCount   int
	outputCount int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// JobDone records a completed job.
func (c *Collector) JobDone(j *job.Job) {
	if j.State != job.Done {
		panic(fmt.Sprintf("metrics: JobDone for job %d in state %v", j.ID, j.State))
	}
	c.records = append(c.records, JobRecord{
		ID:          j.ID,
		User:        j.User,
		Origin:      int(j.Origin),
		Site:        int(j.Site),
		Submit:      j.SubmitTime,
		Dispatch:    j.DispatchTime,
		DataReady:   j.DataReady,
		Start:       j.StartTime,
		End:         j.EndTime,
		ComputeTime: j.ComputeTime,
	})
}

// Transfer records bytes moved for the given purpose.
func (c *Collector) Transfer(p TransferPurpose, bytes float64) {
	switch p {
	case FetchTransfer:
		c.fetchBytes += bytes
		c.fetchCount++
	case ReplicationTransfer:
		c.replBytes += bytes
		c.replCount++
	case OutputTransfer:
		c.outputBytes += bytes
		c.outputCount++
	default:
		panic("metrics: unknown transfer purpose")
	}
}

// JobsDone returns the number of completed jobs recorded.
func (c *Collector) JobsDone() int { return len(c.records) }

// Records returns the recorded rows (shared slice; treat as read-only).
func (c *Collector) Records() []JobRecord { return c.records }

// Results are the aggregate measurements of one Data Grid execution.
type Results struct {
	JobsDone int
	Makespan float64 // time of last job completion

	AvgResponseSec float64 // paper Figure 3a / 5
	MedResponseSec float64
	P95ResponseSec float64
	AvgQueueWait   float64 // StartTime − DispatchTime

	// Response-time decomposition (means over jobs; see JobRecord.
	// Decompose). The four components sum to AvgResponseSec exactly, so
	// the §5 "where does response time go" story is a first-class
	// measurement: AvgDataWaitSec collapses under JobDataPresent with
	// replication while AvgCPUWaitSec grows at the hotspots.
	AvgDispatchWaitSec float64 // submit→dispatch (batch windows, retries)
	AvgDataWaitSec     float64 // dispatch→data ready (coupled transfers)
	AvgCPUWaitSec      float64 // data ready→start (processor contention)
	AvgExecSec         float64 // start→end

	// Response-time distribution: RespHistCounts[i] jobs finished with
	// response in [RespHistEdges[i], RespHistEdges[i+1]). Equal-width bins
	// over the observed range (RespHistBins of them); render with
	// report.ResponseHistogram.
	RespHistCounts []int     `json:",omitempty"`
	RespHistEdges  []float64 `json:",omitempty"`

	AvgDataPerJobMB float64 // paper Figure 3b (all traffic / jobs)
	FetchMBPerJob   float64
	ReplMBPerJob    float64
	OutputMBPerJob  float64
	FetchCount      int
	ReplCount       int
	OutputCount     int

	IdleFrac float64 // paper Figure 4: fraction of processor-time idle
}

// Summarize computes the aggregates. busyCEIntegral is Σ over sites of
// ∫ busy(t) dt up to makespan; totalCEs is the grid-wide processor count.
func (c *Collector) Summarize(busyCEIntegral float64, totalCEs int) Results {
	r := Results{
		JobsDone:    len(c.records),
		FetchCount:  c.fetchCount,
		ReplCount:   c.replCount,
		OutputCount: c.outputCount,
	}
	if len(c.records) == 0 {
		return r
	}
	responses := make([]float64, 0, len(c.records))
	for _, rec := range c.records {
		responses = append(responses, rec.Response())
		r.AvgQueueWait += rec.Start - rec.Dispatch
		d := rec.Decompose()
		r.AvgDispatchWaitSec += d.DispatchWait
		r.AvgDataWaitSec += d.DataWait
		r.AvgCPUWaitSec += d.CPUWait
		r.AvgExecSec += d.Exec
		if rec.End > r.Makespan {
			r.Makespan = rec.End
		}
	}
	sort.Float64s(responses)
	sum := 0.0
	for _, v := range responses {
		sum += v
	}
	n := float64(len(responses))
	r.AvgResponseSec = sum / n
	r.MedResponseSec = percentile(responses, 0.5)
	r.P95ResponseSec = percentile(responses, 0.95)
	r.RespHistCounts, r.RespHistEdges = stats.Histogram(responses, RespHistBins)
	r.AvgQueueWait /= n
	r.AvgDispatchWaitSec /= n
	r.AvgDataWaitSec /= n
	r.AvgCPUWaitSec /= n
	r.AvgExecSec /= n

	const mb = 1e6
	r.AvgDataPerJobMB = (c.fetchBytes + c.replBytes + c.outputBytes) / mb / n
	r.FetchMBPerJob = c.fetchBytes / mb / n
	r.ReplMBPerJob = c.replBytes / mb / n
	r.OutputMBPerJob = c.outputBytes / mb / n

	if totalCEs > 0 && r.Makespan > 0 {
		busyFrac := busyCEIntegral / (float64(totalCEs) * r.Makespan)
		r.IdleFrac = 1 - busyFrac
		// Clamp tiny numeric excursions.
		r.IdleFrac = math.Max(0, math.Min(1, r.IdleFrac))
	}
	return r
}

// percentile returns the p-quantile of sorted xs by nearest-rank.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
