// Package metrics collects the per-job and per-grid measurements the paper
// reports: average job completion (response) time, average data transferred
// per job, and average processor idle time (§5.2), plus supporting detail
// (queue waits, transfer split by cause, makespan, percentiles).
//
// The Collector runs in one of two modes. Full mode (NewCollector) keeps a
// JobRecord per completed job — O(jobs) memory — and computes distribution
// statistics from the raw rows. Bounded mode (NewBounded) replaces the
// record slice with the constant-memory aggregators in metrics/stream: a
// log-bucketed histogram for quantiles, a seeded reservoir of exemplar
// rows, and space-saving top-K sketches for the hottest sites and
// datasets. Every exact aggregate (counts, sums, means, min/max, makespan,
// transfer counters) is accumulated identically — same floating-point
// operations in the same completion order — so the exact fields of Results
// are byte-identical between the two modes; only quantile-shaped fields
// (median, P95, histogram bins) come from the sketch in bounded mode.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"chicsim/internal/desim"
	"chicsim/internal/job"
	"chicsim/internal/metrics/stream"
	"chicsim/internal/rng"
	"chicsim/internal/stats"
)

// RespHistBins is the bin count of the response-time histogram attached
// to Results (equal-width over the observed range; see stats.Histogram).
const RespHistBins = 12

// ExemplarK is how many exemplar job rows bounded mode samples uniformly
// from the completion stream (Vitter reservoir; deterministic for a given
// seed regardless of worker count).
const ExemplarK = 64

// HotTrackK is the capacity of the bounded-mode space-saving sketches: any
// site or dataset involved in more than jobs/HotTrackK completions is
// guaranteed to be tracked.
const HotTrackK = 64

// HotReportK is how many of the tracked heavy hitters Results reports.
const HotReportK = 16

// TransferPurpose labels why bytes moved.
type TransferPurpose int

const (
	// FetchTransfer is a job-driven input fetch (coupled data movement).
	FetchTransfer TransferPurpose = iota
	// ReplicationTransfer is an asynchronous DS push (decoupled movement).
	ReplicationTransfer
	// OutputTransfer ships a job's output back to its submitting site
	// (the output-cost extension; zero in the paper's configuration).
	OutputTransfer
)

// JobRecord is the completed-job measurement row.
type JobRecord struct {
	ID          job.ID
	User        job.UserID
	Origin      int
	Site        int
	Submit      desim.Time
	Dispatch    desim.Time
	DataReady   desim.Time
	Start       desim.Time
	End         desim.Time
	ComputeTime float64
}

// Response returns End − Submit.
func (r JobRecord) Response() float64 { return r.End - r.Submit }

// Decomposition splits one job's response time into the four disjoint
// phases of its lifecycle. The phases tile [Submit, End] exactly:
//
//	Response = DispatchWait + DataWait + CPUWait + Exec
//
// DispatchWait covers submit→(final) dispatch: zero in the paper's online
// model, the buffering window under batch scheduling, and failed attempts
// plus backoff on faulted runs — the "retry share". DataWait is
// dispatch→data-ready (the coupled transfer the paper's DS tries to
// hide), CPUWait is data-ready→start (waiting for a free compute element
// with data already in hand), and Exec is start→end.
type Decomposition struct {
	DispatchWait float64
	DataWait     float64
	CPUWait      float64
	Exec         float64
}

// Sum returns the total of the four phases (= the job's response time).
func (d Decomposition) Sum() float64 {
	return d.DispatchWait + d.DataWait + d.CPUWait + d.Exec
}

// Decompose returns the record's response-time decomposition. A record
// without a data-ready timestamp (defensive; completed jobs always have
// one) charges the whole wait to DataWait.
func (r JobRecord) Decompose() Decomposition {
	ready := r.DataReady
	if ready < 0 {
		ready = r.Start
	}
	return Decomposition{
		DispatchWait: r.Dispatch - r.Submit,
		DataWait:     ready - r.Dispatch,
		CPUWait:      r.Start - ready,
		Exec:         r.End - r.Start,
	}
}

// Collector accumulates measurements during a run.
type Collector struct {
	bounded bool

	// Exact aggregates, streamed in completion order by JobDone. Both
	// modes run the identical accumulation code, which is what makes the
	// exact Results fields byte-identical between them.
	jobs        int
	respSum     float64
	queueSum    float64
	dispatchSum float64
	dataSum     float64
	cpuSum      float64
	execSum     float64
	makespan    float64
	respMin     float64
	respMax     float64
	siteJobs    []float64

	// Full mode: the raw rows (quantiles and the response histogram are
	// computed exactly from these).
	records []JobRecord

	// Bounded mode: constant-memory sketches standing in for the rows.
	hist      *stream.Histogram
	exemplars *stream.Reservoir[JobRecord]
	topSites  *stream.TopK
	topFiles  *stream.TopK

	fetchBytes  float64
	replBytes   float64
	outputBytes float64
	fetchCount  int
	replCount   int
	outputCount int
}

// NewCollector returns an empty full-mode collector (one JobRecord kept
// per completed job).
func NewCollector() *Collector { return &Collector{} }

// NewBounded returns a bounded-mode collector whose memory is independent
// of how many jobs complete. src seeds the exemplar reservoir; pass a
// dedicated sub-stream (e.g. root.Derive("results")) so sampling never
// perturbs the simulation's own randomness.
func NewBounded(src *rng.Source) *Collector {
	return &Collector{
		bounded:   true,
		hist:      stream.NewHistogram(),
		exemplars: stream.NewReservoir[JobRecord](ExemplarK, src),
		topSites:  stream.NewTopK(HotTrackK),
		topFiles:  stream.NewTopK(HotTrackK),
	}
}

// Bounded reports whether the collector runs in bounded (constant-memory)
// mode.
func (c *Collector) Bounded() bool { return c.bounded }

// JobDone records a completed job.
func (c *Collector) JobDone(j *job.Job) {
	if j.State != job.Done {
		panic(fmt.Sprintf("metrics: JobDone for job %d in state %v", j.ID, j.State))
	}
	rec := JobRecord{
		ID:          j.ID,
		User:        j.User,
		Origin:      int(j.Origin),
		Site:        int(j.Site),
		Submit:      j.SubmitTime,
		Dispatch:    j.DispatchTime,
		DataReady:   j.DataReady,
		Start:       j.StartTime,
		End:         j.EndTime,
		ComputeTime: j.ComputeTime,
	}

	resp := rec.Response()
	if c.jobs == 0 || resp < c.respMin {
		c.respMin = resp
	}
	if c.jobs == 0 || resp > c.respMax {
		c.respMax = resp
	}
	c.jobs++
	c.respSum += resp
	c.queueSum += rec.Start - rec.Dispatch
	d := rec.Decompose()
	c.dispatchSum += d.DispatchWait
	c.dataSum += d.DataWait
	c.cpuSum += d.CPUWait
	c.execSum += d.Exec
	if rec.End > c.makespan {
		c.makespan = rec.End
	}
	if rec.Site >= 0 { // defensive: simulator jobs always have a site by Done
		for len(c.siteJobs) <= rec.Site {
			c.siteJobs = append(c.siteJobs, 0)
		}
		c.siteJobs[rec.Site]++
	}

	if !c.bounded {
		c.records = append(c.records, rec)
		return
	}
	c.hist.Observe(resp)
	c.exemplars.Add(rec)
	c.topSites.Add(int64(rec.Site))
	for _, f := range j.Inputs {
		c.topFiles.Add(int64(f))
	}
}

// Transfer records bytes moved for the given purpose.
func (c *Collector) Transfer(p TransferPurpose, bytes float64) {
	switch p {
	case FetchTransfer:
		c.fetchBytes += bytes
		c.fetchCount++
	case ReplicationTransfer:
		c.replBytes += bytes
		c.replCount++
	case OutputTransfer:
		c.outputBytes += bytes
		c.outputCount++
	default:
		panic("metrics: unknown transfer purpose")
	}
}

// JobsDone returns the number of completed jobs recorded.
func (c *Collector) JobsDone() int { return c.jobs }

// Records returns the recorded rows (shared slice; treat as read-only).
// Bounded mode keeps no rows and returns nil; use SiteJobCounts and the
// Results sketch fields instead.
func (c *Collector) Records() []JobRecord { return c.records }

// SiteJobCounts returns per-site completed-job counts padded with zeros to
// numSites entries (sites that completed nothing still count toward load
// spread). The returned slice is a copy.
func (c *Collector) SiteJobCounts(numSites int) []float64 {
	if numSites < len(c.siteJobs) {
		numSites = len(c.siteJobs)
	}
	out := make([]float64, numSites)
	copy(out, c.siteJobs)
	return out
}

// Results are the aggregate measurements of one Data Grid execution.
type Results struct {
	JobsDone int
	Makespan float64 // time of last job completion

	AvgResponseSec float64 // paper Figure 3a / 5
	MedResponseSec float64
	P95ResponseSec float64
	MinResponseSec float64 // exact in both result modes
	MaxResponseSec float64 // exact in both result modes
	AvgQueueWait   float64 // StartTime − DispatchTime

	// Response-time decomposition (means over jobs; see JobRecord.
	// Decompose). The four components sum to AvgResponseSec exactly, so
	// the §5 "where does response time go" story is a first-class
	// measurement: AvgDataWaitSec collapses under JobDataPresent with
	// replication while AvgCPUWaitSec grows at the hotspots.
	AvgDispatchWaitSec float64 // submit→dispatch (batch windows, retries)
	AvgDataWaitSec     float64 // dispatch→data ready (coupled transfers)
	AvgCPUWaitSec      float64 // data ready→start (processor contention)
	AvgExecSec         float64 // start→end

	// Response-time distribution: RespHistCounts[i] jobs finished with
	// response in [RespHistEdges[i], RespHistEdges[i+1]). Equal-width bins
	// over the observed range (RespHistBins of them); render with
	// report.ResponseHistogram. Exact in full mode; in bounded mode the
	// bins are reconstructed from the log-bucketed sketch, so counts near
	// bin edges may shift by one bin.
	RespHistCounts []int     `json:",omitempty"`
	RespHistEdges  []float64 `json:",omitempty"`

	AvgDataPerJobMB float64 // paper Figure 3b (all traffic / jobs)
	FetchMBPerJob   float64
	ReplMBPerJob    float64
	OutputMBPerJob  float64
	FetchCount      int
	ReplCount       int
	OutputCount     int

	IdleFrac float64 // paper Figure 4: fraction of processor-time idle

	// Bounded-mode extras. ResultMode records which collector produced
	// this Results. RespQuantileRelErr is the documented relative-error
	// bound on MedResponseSec/P95ResponseSec (zero when they are exact).
	// Exemplars is a uniform deterministic sample of completed-job rows;
	// TopSites and TopDatasets are space-saving heavy-hitter estimates
	// (true count within [Count−Over, Count]).
	ResultMode         string           `json:",omitempty"`
	RespQuantileRelErr float64          `json:",omitempty"`
	Exemplars          []JobRecord      `json:",omitempty"`
	TopSites           []stream.HotItem `json:",omitempty"`
	TopDatasets        []stream.HotItem `json:",omitempty"`
}

// Summarize computes the aggregates. busyCEIntegral is Σ over sites of
// ∫ busy(t) dt up to makespan; totalCEs is the grid-wide processor count.
func (c *Collector) Summarize(busyCEIntegral float64, totalCEs int) Results {
	r := Results{
		JobsDone:    c.jobs,
		FetchCount:  c.fetchCount,
		ReplCount:   c.replCount,
		OutputCount: c.outputCount,
	}
	if c.bounded {
		r.ResultMode = "bounded"
	}
	if c.jobs == 0 {
		return r
	}
	n := float64(c.jobs)
	r.Makespan = c.makespan
	r.AvgResponseSec = c.respSum / n
	r.MinResponseSec = c.respMin
	r.MaxResponseSec = c.respMax
	r.AvgQueueWait = c.queueSum / n
	r.AvgDispatchWaitSec = c.dispatchSum / n
	r.AvgDataWaitSec = c.dataSum / n
	r.AvgCPUWaitSec = c.cpuSum / n
	r.AvgExecSec = c.execSum / n

	if c.bounded {
		r.MedResponseSec = c.hist.Quantile(0.5)
		r.P95ResponseSec = c.hist.Quantile(0.95)
		r.RespQuantileRelErr = c.hist.RelativeError()
		r.RespHistCounts, r.RespHistEdges = c.hist.Bins(RespHistBins)
		r.Exemplars = c.exemplars.Items()
		r.TopSites = c.topSites.Items(HotReportK)
		r.TopDatasets = c.topFiles.Items(HotReportK)
	} else {
		responses := make([]float64, 0, len(c.records))
		for _, rec := range c.records {
			responses = append(responses, rec.Response())
		}
		sort.Float64s(responses)
		r.MedResponseSec = percentile(responses, 0.5)
		r.P95ResponseSec = percentile(responses, 0.95)
		r.RespHistCounts, r.RespHistEdges = stats.Histogram(responses, RespHistBins)
	}

	const mb = 1e6
	r.AvgDataPerJobMB = (c.fetchBytes + c.replBytes + c.outputBytes) / mb / n
	r.FetchMBPerJob = c.fetchBytes / mb / n
	r.ReplMBPerJob = c.replBytes / mb / n
	r.OutputMBPerJob = c.outputBytes / mb / n

	if totalCEs > 0 && r.Makespan > 0 {
		busyFrac := busyCEIntegral / (float64(totalCEs) * r.Makespan)
		r.IdleFrac = 1 - busyFrac
		// Clamp tiny numeric excursions.
		r.IdleFrac = math.Max(0, math.Min(1, r.IdleFrac))
	}
	return r
}

// percentile returns the p-quantile of sorted xs by nearest-rank.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
