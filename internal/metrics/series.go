package metrics

import "chicsim/internal/obs"

// SeriesStat summarizes one probe's time series. For gauges Min/Mean/Max
// describe the sampled levels; for counters Last is the final running
// total and Rate its average growth per virtual second over the sampled
// window.
type SeriesStat struct {
	Name string
	Kind obs.Kind
	Min  float64
	Mean float64
	Max  float64
	Last float64
	Rate float64 // counters: (last − first) / (tLast − tFirst)
}

// SeriesStats aggregates every probe of a sampled series, in probe order.
// It returns nil for a nil or empty series.
func SeriesStats(s *obs.Series) []SeriesStat {
	if s == nil || len(s.Points) == 0 {
		return nil
	}
	out := make([]SeriesStat, len(s.Names))
	first, last := s.Points[0], s.Points[len(s.Points)-1]
	span := last.T - first.T
	for i, name := range s.Names {
		st := SeriesStat{Name: name, Kind: s.Kinds[i]}
		st.Min = first.Values[i]
		st.Max = first.Values[i]
		sum := 0.0
		for _, p := range s.Points {
			v := p.Values[i]
			if v < st.Min {
				st.Min = v
			}
			if v > st.Max {
				st.Max = v
			}
			sum += v
		}
		st.Mean = sum / float64(len(s.Points))
		st.Last = last.Values[i]
		if st.Kind == obs.CounterKind && span > 0 {
			st.Rate = (last.Values[i] - first.Values[i]) / span
		}
		out[i] = st
	}
	return out
}
