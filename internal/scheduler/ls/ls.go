// Package ls implements Local Scheduler policies. The paper uses FIFO
// ("Management of internal resources is a problem widely researched in the
// past and we use FIFO as a simplification", §4); SJF and LIFO are
// extensions used in ablation benchmarks.
//
// All policies only consider *ready* jobs — jobs whose input data is
// resident — because a processor can only be assigned a job whose datasets
// are available (§5.2: a processor is idle when "the datasets needed for
// the jobs in the queue are not yet available at that site").
package ls

import (
	"chicsim/internal/job"
)

// FIFO runs the earliest-queued ready job.
type FIFO struct{}

// Name implements scheduler.Local.
func (FIFO) Name() string { return "FIFO" }

// Next implements scheduler.Local.
func (FIFO) Next(queue []*job.Job, ready func(*job.Job) bool) int {
	for i, j := range queue {
		if ready(j) {
			return i
		}
	}
	return -1
}

// SJF runs the ready job with the shortest compute time (extension).
type SJF struct{}

// Name implements scheduler.Local.
func (SJF) Name() string { return "SJF" }

// Next implements scheduler.Local.
func (SJF) Next(queue []*job.Job, ready func(*job.Job) bool) int {
	best := -1
	for i, j := range queue {
		if !ready(j) {
			continue
		}
		if best < 0 || j.ComputeTime < queue[best].ComputeTime {
			best = i
		}
	}
	return best
}

// LIFO runs the most recently queued ready job (extension; a stress case
// for fairness comparisons).
type LIFO struct{}

// Name implements scheduler.Local.
func (LIFO) Name() string { return "LIFO" }

// Next implements scheduler.Local.
func (LIFO) Next(queue []*job.Job, ready func(*job.Job) bool) int {
	for i := len(queue) - 1; i >= 0; i-- {
		if ready(queue[i]) {
			return i
		}
	}
	return -1
}
