package ls

import (
	"testing"
	"testing/quick"

	"chicsim/internal/job"
	"chicsim/internal/rng"
	"chicsim/internal/storage"
)

func jobs(computes ...float64) []*job.Job {
	out := make([]*job.Job, len(computes))
	for i, c := range computes {
		out[i] = job.New(job.ID(i), 0, 0, []storage.FileID{storage.FileID(i)}, c)
	}
	return out
}

func all(*job.Job) bool  { return true }
func none(*job.Job) bool { return false }

func TestFIFOPicksFirstReady(t *testing.T) {
	q := jobs(100, 200, 300)
	f := FIFO{}
	if got := f.Next(q, all); got != 0 {
		t.Fatalf("Next = %d, want 0", got)
	}
	onlySecond := func(j *job.Job) bool { return j.ID == 1 }
	if got := f.Next(q, onlySecond); got != 1 {
		t.Fatalf("Next = %d, want 1", got)
	}
	if got := f.Next(q, none); got != -1 {
		t.Fatalf("Next = %d, want -1", got)
	}
	if got := f.Next(nil, all); got != -1 {
		t.Fatalf("Next on empty = %d, want -1", got)
	}
}

func TestSJFPicksShortestReady(t *testing.T) {
	q := jobs(300, 100, 200)
	s := SJF{}
	if got := s.Next(q, all); got != 1 {
		t.Fatalf("Next = %d, want 1 (shortest)", got)
	}
	notShortest := func(j *job.Job) bool { return j.ID != 1 }
	if got := s.Next(q, notShortest); got != 2 {
		t.Fatalf("Next = %d, want 2", got)
	}
	if got := s.Next(q, none); got != -1 {
		t.Fatalf("Next = %d, want -1", got)
	}
}

func TestLIFOPicksLastReady(t *testing.T) {
	q := jobs(100, 200, 300)
	l := LIFO{}
	if got := l.Next(q, all); got != 2 {
		t.Fatalf("Next = %d, want 2", got)
	}
	if got := l.Next(q, func(j *job.Job) bool { return j.ID == 0 }); got != 0 {
		t.Fatalf("Next = %d, want 0", got)
	}
}

func TestNames(t *testing.T) {
	if (FIFO{}).Name() != "FIFO" || (SJF{}).Name() != "SJF" || (LIFO{}).Name() != "LIFO" {
		t.Fatal("names wrong")
	}
}

// Property: every policy returns either -1 or the index of a ready job.
func TestQuickAlwaysReturnsReadyIndex(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		src := rng.New(seed)
		q := make([]*job.Job, int(n)%20)
		readySet := make(map[job.ID]bool)
		for i := range q {
			q[i] = job.New(job.ID(i), 0, 0, nil, src.Range(1, 1000))
			if src.Intn(2) == 0 {
				readySet[job.ID(i)] = true
			}
		}
		ready := func(j *job.Job) bool { return readySet[j.ID] }
		for _, pol := range []interface {
			Next([]*job.Job, func(*job.Job) bool) int
		}{FIFO{}, SJF{}, LIFO{}} {
			idx := pol.Next(q, ready)
			if idx == -1 {
				if len(readySet) != 0 && anyReady(q, ready) {
					return false
				}
				continue
			}
			if idx < 0 || idx >= len(q) || !ready(q[idx]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func anyReady(q []*job.Job, ready func(*job.Job) bool) bool {
	for _, j := range q {
		if ready(j) {
			return true
		}
	}
	return false
}
