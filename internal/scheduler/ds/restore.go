package ds

import (
	"chicsim/internal/scheduler"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

// Restore decides which replicas lost to faults a site's DS should
// proactively re-replicate at its next wake-up: files whose access count
// in the window they were lost had reached the popularity threshold,
// that have not already found their way back (a job-driven fetch may
// beat the DS to it), and that still have a surviving copy somewhere to
// pull from. Input order is preserved; the core resolves the pull source
// against the authoritative catalog.
func Restore(g scheduler.GridView, self topology.SiteID, lost []scheduler.PopularFile, threshold int) []storage.FileID {
	var out []storage.FileID
	for _, p := range lost {
		if p.Count < threshold {
			continue
		}
		if g.HasReplica(p.File, self) {
			continue
		}
		if len(g.Replicas(p.File)) == 0 {
			continue
		}
		out = append(out, p.File)
	}
	return out
}
