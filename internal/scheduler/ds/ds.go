// Package ds implements Dataset Scheduler (replication) policies: the
// paper's DataDoNothing, DataRandom, and DataLeastLoaded (§4), plus the
// DataCascade and DataBestClient extensions adapted from the companion
// replication study (Ranganathan & Foster, "Identifying Dynamic Replication
// Strategies for a High-Performance Data Grid", 2001 — reference [23]).
//
// A DS runs asynchronously at each site: it observes the popularity of
// locally available datasets and pushes replicas of popular ones. The
// choice of *where* distinguishes the policies.
package ds

import (
	"chicsim/internal/rng"
	"chicsim/internal/scheduler"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

// DoNothing performs no active replication ("DataDoNothing"): data moves
// only as a side effect of job-driven fetches, which are cached with LRU.
type DoNothing struct{}

// Name implements scheduler.Dataset.
func (DoNothing) Name() string { return "DataDoNothing" }

// Decide implements scheduler.Dataset.
func (DoNothing) Decide(scheduler.GridView, topology.SiteID, []scheduler.PopularFile) []scheduler.Replication {
	return nil
}

// Random replicates each popular dataset "to a random site on the grid"
// that does not already hold it ("DataRandom").
type Random struct{ Src *rng.Source }

// Name implements scheduler.Dataset.
func (Random) Name() string { return "DataRandom" }

// Decide implements scheduler.Dataset.
func (r Random) Decide(g scheduler.GridView, self topology.SiteID, popular []scheduler.PopularFile) []scheduler.Replication {
	var out []scheduler.Replication
	for _, p := range popular {
		var cands []topology.SiteID
		for s := 0; s < g.NumSites(); s++ {
			sid := topology.SiteID(s)
			if sid != self && !g.HasReplica(p.File, sid) {
				cands = append(cands, sid)
			}
		}
		if len(cands) == 0 {
			continue
		}
		out = append(out, scheduler.Replication{File: p.File, Target: rng.Pick(r.Src, cands)})
	}
	return out
}

// LeastLoaded replicates each popular dataset to "the least loaded site
// from its list of known sites (we define this as neighbors)"
// ("DataLeastLoaded"). Neighbors are the sites sharing the deciding site's
// regional parent in the hierarchy; if every neighbor already holds the
// file the policy widens to the whole grid so popularity pressure is never
// silently dropped.
type LeastLoaded struct{ Src *rng.Source }

// Name implements scheduler.Dataset.
func (LeastLoaded) Name() string { return "DataLeastLoaded" }

// Decide implements scheduler.Dataset.
func (l LeastLoaded) Decide(g scheduler.GridView, self topology.SiteID, popular []scheduler.PopularFile) []scheduler.Replication {
	var out []scheduler.Replication
	for _, p := range popular {
		cands := CandidateTargets(g, p.File, self)
		if len(cands) == 0 {
			continue
		}
		out = append(out, scheduler.Replication{File: p.File, Target: PickLeastLoaded(g, cands, l.Src)})
	}
	return out
}

// CandidateTargets returns, in deterministic order, the replication
// targets DataLeastLoaded considers for file f at site self: the siblings
// not yet holding f, widening to the whole grid when every sibling already
// has it. Empty means the file is fully replicated. Exported so
// telemetry-driven extensions can rank exactly the baseline's candidate
// set with richer scores.
func CandidateTargets(g scheduler.GridView, f storage.FileID, self topology.SiteID) []topology.SiteID {
	cands := WithoutReplica(g, f, g.Topology().Siblings(self), self)
	if len(cands) == 0 {
		// Widen to the whole grid, filtering site ids directly — same
		// order as materializing 0..NumSites-1 first, without the
		// intermediate slice.
		for s := 0; s < g.NumSites(); s++ {
			sid := topology.SiteID(s)
			if sid != self && !g.HasReplica(f, sid) {
				cands = append(cands, sid)
			}
		}
	}
	return cands
}

// Cascade replicates popular data down the hierarchy toward clients: it
// targets the least loaded *sibling* first and, once all siblings hold the
// file, stops (extension modeled on [23]'s cascading strategy, where
// replicas flow tier-by-tier rather than jumping across the grid).
type Cascade struct{ Src *rng.Source }

// Name implements scheduler.Dataset.
func (Cascade) Name() string { return "DataCascade" }

// Decide implements scheduler.Dataset.
func (c Cascade) Decide(g scheduler.GridView, self topology.SiteID, popular []scheduler.PopularFile) []scheduler.Replication {
	neighbors := g.Topology().Siblings(self)
	var out []scheduler.Replication
	for _, p := range popular {
		cands := WithoutReplica(g, p.File, neighbors, self)
		if len(cands) == 0 {
			continue // tier saturated: cascading stops here
		}
		out = append(out, scheduler.Replication{File: p.File, Target: PickLeastLoaded(g, cands, c.Src)})
	}
	return out
}

// BestClient replicates each popular dataset to the site that generated
// the most requests for it (extension modeled on [23]'s Best Client
// strategy). Falls back to doing nothing when the best client already
// holds the file.
type BestClient struct{ Src *rng.Source }

// Name implements scheduler.Dataset.
func (BestClient) Name() string { return "DataBestClient" }

// Decide implements scheduler.Dataset.
func (b BestClient) Decide(g scheduler.GridView, self topology.SiteID, popular []scheduler.PopularFile) []scheduler.Replication {
	var out []scheduler.Replication
	for _, p := range popular {
		best := topology.SiteID(-1)
		bestCount := 0
		for s := 0; s < g.NumSites(); s++ { // site order for determinism
			sid := topology.SiteID(s)
			n := p.ByRequester[sid]
			if sid != self && n > bestCount && !g.HasReplica(p.File, sid) {
				best = sid
				bestCount = n
			}
		}
		if best < 0 {
			continue
		}
		out = append(out, scheduler.Replication{File: p.File, Target: best})
	}
	return out
}

// WithoutReplica filters sites down to those not holding f, excluding self.
func WithoutReplica(g scheduler.GridView, f storage.FileID, sites []topology.SiteID, self topology.SiteID) []topology.SiteID {
	var out []topology.SiteID
	for _, s := range sites {
		if s != self && !g.HasReplica(f, s) {
			out = append(out, s)
		}
	}
	return out
}

// PickLeastLoaded returns the least-loaded candidate, breaking ties
// uniformly at random.
func PickLeastLoaded(g scheduler.GridView, cands []topology.SiteID, tie *rng.Source) topology.SiteID {
	best := cands[:1]
	bestLoad := g.Load(cands[0])
	for _, c := range cands[1:] {
		l := g.Load(c)
		switch {
		case l < bestLoad:
			bestLoad = l
			best = []topology.SiteID{c}
		case l == bestLoad:
			best = append(best, c)
		}
	}
	if len(best) == 1 || tie == nil {
		return best[0]
	}
	return rng.Pick(tie, best)
}
