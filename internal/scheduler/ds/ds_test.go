package ds

import (
	"testing"

	"chicsim/internal/rng"
	"chicsim/internal/scheduler"
	"chicsim/internal/scheduler/schedtest"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

func pops(files ...storage.FileID) []scheduler.PopularFile {
	out := make([]scheduler.PopularFile, len(files))
	for i, f := range files {
		out[i] = scheduler.PopularFile{File: f, Count: 10}
	}
	return out
}

func TestNames(t *testing.T) {
	for _, c := range []struct {
		d    scheduler.Dataset
		want string
	}{
		{DoNothing{}, "DataDoNothing"},
		{Random{Src: rng.New(1)}, "DataRandom"},
		{LeastLoaded{Src: rng.New(1)}, "DataLeastLoaded"},
		{Cascade{Src: rng.New(1)}, "DataCascade"},
		{BestClient{Src: rng.New(1)}, "DataBestClient"},
	} {
		if c.d.Name() != c.want {
			t.Errorf("Name = %q, want %q", c.d.Name(), c.want)
		}
	}
}

func TestDoNothing(t *testing.T) {
	v := schedtest.NewView(4)
	if got := (DoNothing{}).Decide(v, 0, pops(1, 2)); got != nil {
		t.Fatalf("DoNothing decided %v", got)
	}
}

func TestRandomAvoidsSelfAndHolders(t *testing.T) {
	v := schedtest.NewView(5)
	v.Reps[1] = []topology.SiteID{0, 2}
	r := Random{Src: rng.New(3)}
	for i := 0; i < 200; i++ {
		reps := r.Decide(v, 0, pops(1))
		if len(reps) != 1 {
			t.Fatalf("decided %d replications, want 1", len(reps))
		}
		tgt := reps[0].Target
		if tgt == 0 || tgt == 2 {
			t.Fatalf("replicated to self or an existing holder: %d", tgt)
		}
	}
}

func TestRandomNoCandidates(t *testing.T) {
	v := schedtest.NewView(3)
	v.Reps[1] = []topology.SiteID{0, 1, 2}
	r := Random{Src: rng.New(3)}
	if got := r.Decide(v, 0, pops(1)); len(got) != 0 {
		t.Fatalf("decided %v with no eligible targets", got)
	}
}

func TestLeastLoadedPrefersIdleNeighbor(t *testing.T) {
	v := schedtest.NewHierView(9, 3)
	self := topology.SiteID(0)
	sibs := v.Topo.Siblings(self)
	if len(sibs) != 2 {
		t.Fatalf("expected 2 siblings, got %d", len(sibs))
	}
	v.Loads[sibs[0]] = 7
	v.Loads[sibs[1]] = 1
	l := LeastLoaded{Src: rng.New(1)}
	reps := l.Decide(v, self, pops(1))
	if len(reps) != 1 || reps[0].Target != sibs[1] {
		t.Fatalf("Decide = %v, want target %d", reps, sibs[1])
	}
}

func TestLeastLoadedWidensWhenNeighborsSaturated(t *testing.T) {
	v := schedtest.NewHierView(9, 3)
	self := topology.SiteID(0)
	holders := []topology.SiteID{self}
	holders = append(holders, v.Topo.Siblings(self)...)
	v.Reps[1] = holders
	l := LeastLoaded{Src: rng.New(1)}
	reps := l.Decide(v, self, pops(1))
	if len(reps) != 1 {
		t.Fatalf("expected grid-wide fallback, got %v", reps)
	}
	for _, h := range holders {
		if reps[0].Target == h {
			t.Fatalf("fallback chose a holder: %d", reps[0].Target)
		}
	}
}

func TestCascadeStopsWhenTierSaturated(t *testing.T) {
	v := schedtest.NewHierView(9, 3)
	self := topology.SiteID(0)
	holders := []topology.SiteID{self}
	holders = append(holders, v.Topo.Siblings(self)...)
	v.Reps[1] = holders
	c := Cascade{Src: rng.New(1)}
	if got := c.Decide(v, self, pops(1)); len(got) != 0 {
		t.Fatalf("cascade should stop at saturated tier, got %v", got)
	}
	// Unsaturated: targets a sibling only.
	v.Reps[1] = []topology.SiteID{self}
	reps := c.Decide(v, self, pops(1))
	if len(reps) != 1 {
		t.Fatalf("Decide = %v", reps)
	}
	isSib := false
	for _, s := range v.Topo.Siblings(self) {
		if reps[0].Target == s {
			isSib = true
		}
	}
	if !isSib {
		t.Fatalf("cascade target %d is not a sibling", reps[0].Target)
	}
}

func TestBestClientFollowsRequesters(t *testing.T) {
	v := schedtest.NewView(5)
	b := BestClient{Src: rng.New(1)}
	p := []scheduler.PopularFile{{
		File:  1,
		Count: 10,
		ByRequester: map[topology.SiteID]int{
			2: 7,
			3: 2,
			0: 1, // self: must be ignored
		},
	}}
	reps := b.Decide(v, 0, p)
	if len(reps) != 1 || reps[0].Target != 2 {
		t.Fatalf("Decide = %v, want target 2", reps)
	}
	// If the best client already holds it, next best is chosen... or none.
	v.Reps[1] = []topology.SiteID{2}
	reps = b.Decide(v, 0, p)
	if len(reps) != 1 || reps[0].Target != 3 {
		t.Fatalf("Decide = %v, want target 3", reps)
	}
}

func TestMultiplePopularFiles(t *testing.T) {
	v := schedtest.NewView(6)
	r := Random{Src: rng.New(9)}
	reps := r.Decide(v, 0, pops(1, 2, 3))
	if len(reps) != 3 {
		t.Fatalf("decided %d replications, want 3", len(reps))
	}
	seen := map[storage.FileID]bool{}
	for _, rep := range reps {
		seen[rep.File] = true
	}
	if len(seen) != 3 {
		t.Fatalf("files covered: %v", seen)
	}
}
