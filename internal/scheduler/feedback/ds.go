package feedback

import (
	"chicsim/internal/rng"
	"chicsim/internal/scheduler"
	"chicsim/internal/scheduler/ds"
	"chicsim/internal/topology"
)

// DS is the adaptive Dataset Scheduler ("DataFeedback"). Where the
// paper's DataLeastLoaded replicates on raw popularity counts, DataFeedback
// (1) lowers its replication gate as the network backlog trend grows —
// replicating eagerly *before* fetch costs climb — and (2) ranks target
// sites by the telemetry-blended load plus fault and predicted-transfer
// penalties instead of the bare GIS load snapshot. With zero-valued Params
// (or no tracker) it is byte-identical to DataLeastLoaded, including RNG
// consumption.
type DS struct {
	Src     *rng.Source
	Tracker *Tracker
	Params  Params
}

// Name implements scheduler.Dataset.
func (*DS) Name() string { return "DataFeedback" }

// Decide implements scheduler.Dataset.
func (d *DS) Decide(g scheduler.GridView, self topology.SiteID, popular []scheduler.PopularFile) []scheduler.Replication {
	gate := d.Params.TrendThreshold
	if gate > 0 && d.Params.CongestionBoost > 0 {
		gate /= 1 + d.Params.CongestionBoost*d.Tracker.NetworkBacklogSeconds()
	}
	var out []scheduler.Replication
	for _, p := range popular {
		if float64(p.Count) < gate {
			continue
		}
		cands := d.targets(g, p, self)
		if len(cands) == 0 {
			continue
		}
		out = append(out, scheduler.Replication{File: p.File, Target: d.rank(g, self, p, cands)})
	}
	return out
}

// targets selects the candidate set per the DSNeighborhood knob. The
// default (0) is the baseline's siblings-then-whole-grid widening.
func (d *DS) targets(g scheduler.GridView, p scheduler.PopularFile, self topology.SiteID) []topology.SiteID {
	switch d.Params.DSNeighborhood {
	case 1: // siblings only: cascading stays in-region, never widens
		return ds.WithoutReplica(g, p.File, g.Topology().Siblings(self), self)
	case 2: // whole grid from the start
		all := make([]topology.SiteID, 0, g.NumSites())
		for s := 0; s < g.NumSites(); s++ {
			all = append(all, topology.SiteID(s))
		}
		return ds.WithoutReplica(g, p.File, all, self)
	default:
		return ds.CandidateTargets(g, p.File, self)
	}
}

// rank scores each candidate target — telemetry-blended load, fault
// penalty, and predicted push cost in equivalent queued jobs — and picks
// the minimum, collecting exact ties in candidate order and breaking them
// with one rng.Pick draw, mirroring the baseline's least-loaded pick.
func (d *DS) rank(g scheduler.GridView, self topology.SiteID, p scheduler.PopularFile, cands []topology.SiteID) topology.SiteID {
	score := func(s topology.SiteID) float64 {
		sc := float64(g.Load(s))
		if w := d.Params.QueueWeight; w > 0 && d.Tracker.Ready() {
			sd := d.Tracker.StalenessDiscount()
			sc = (1-w*sd)*sc + w*sd*d.Tracker.PredictedLoad(s) + w*d.Tracker.Pressure(s)
		}
		if d.Params.FaultWeight > 0 {
			sc += d.Params.FaultWeight * d.Tracker.FaultPenalty(s)
		}
		if d.Params.TransferWeight > 0 {
			push := g.PredictTransfer(self, s, g.FileSize(p.File))
			if d.Params.CongestionWeight > 0 {
				push += d.Params.CongestionWeight * d.Tracker.RouteBacklogSeconds(self, s)
			}
			sc += d.Params.TransferWeight * push
		}
		return sc
	}
	best := cands[:1]
	bestScore := score(cands[0])
	for _, c := range cands[1:] {
		sc := score(c)
		switch {
		case sc < bestScore:
			bestScore = sc
			best = []topology.SiteID{c}
		case sc == bestScore:
			best = append(best, c)
		}
	}
	if len(best) == 1 || d.Src == nil {
		return best[0]
	}
	return rng.Pick(d.Src, best)
}
