package feedback

import (
	"math"
	"reflect"
	"testing"

	"chicsim/internal/job"
	"chicsim/internal/rng"
	"chicsim/internal/scheduler"
	"chicsim/internal/scheduler/ds"
	"chicsim/internal/scheduler/es"
	"chicsim/internal/scheduler/schedtest"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

func sample(now float64, queues []int, gisAge float64) Sample {
	return Sample{Now: now, QueueLens: queues, GISAge: gisAge}
}

func TestTrackerEWMA(t *testing.T) {
	p := Params{HalfLife: 100}
	p.Normalize()
	tr := NewTracker(p, nil, nil)
	tr.Observe(sample(0, []int{10}, 0))
	if got := tr.SmoothedLoad(0); got != 10 {
		t.Fatalf("first sample should seed the EWMA, got %v", got)
	}
	// One half-life later a sample of 0 should pull the EWMA halfway down.
	tr.Observe(sample(100, []int{0}, 0))
	if got := tr.SmoothedLoad(0); math.Abs(got-5) > 1e-9 {
		t.Fatalf("after one half-life EWMA = %v, want 5", got)
	}
}

func TestTrackerFaultDecay(t *testing.T) {
	now := 0.0
	p := Params{FaultDecay: 200}
	p.Normalize()
	tr := NewTracker(p, nil, func() float64 { return now })
	tr.NoteFault(3)
	if got := tr.FaultPenalty(3); math.Abs(got-1) > 1e-9 {
		t.Fatalf("fresh fault penalty = %v, want 1", got)
	}
	now = 200 // one decay half-life
	if got := tr.FaultPenalty(3); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("penalty after one half-life = %v, want 0.5", got)
	}
	tr.NoteFault(3) // decay-then-increment
	if got := tr.FaultPenalty(3); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("penalty after second fault = %v, want 1.5", got)
	}
	if got := tr.FaultPenalty(4); got != 0 {
		t.Fatalf("untouched site penalty = %v, want 0", got)
	}
}

func TestTrackerPressureResetsOnRefresh(t *testing.T) {
	p := Params{HalfLife: 100}
	p.Normalize()
	tr := NewTracker(p, nil, nil)
	tr.Observe(sample(0, []int{0}, 0))
	tr.NoteDispatch(0)
	tr.NoteDispatch(0)
	if got := tr.Pressure(0); got != 2 {
		t.Fatalf("pressure = %v, want 2", got)
	}
	// GIS age grew: snapshot is the same one, pressure persists (decayed).
	tr.Observe(sample(60, []int{0}, 60))
	if got := tr.Pressure(0); got <= 0 || got >= 2 {
		t.Fatalf("pressure should decay but persist across a stale sample, got %v", got)
	}
	// GIS age dropped: fresh snapshot already reflects our dispatches.
	tr.Observe(sample(120, []int{0}, 10))
	if got := tr.Pressure(0); got != 0 {
		t.Fatalf("pressure should reset on GIS refresh, got %v", got)
	}
}

func TestNilTrackerIsSafe(t *testing.T) {
	var tr *Tracker
	tr.Observe(sample(0, []int{1}, 0))
	tr.NoteDispatch(0)
	tr.NoteFault(0)
	if tr.Ready() {
		t.Fatal("nil tracker claims Ready")
	}
	if tr.SmoothedLoad(0) != 0 || tr.PredictedLoad(0) != 0 || tr.Pressure(0) != 0 ||
		tr.FaultPenalty(0) != 0 || tr.StalenessDiscount() != 0 ||
		tr.RouteBacklogSeconds(0, 1) != 0 || tr.NetworkBacklogSeconds() != 0 {
		t.Fatal("nil tracker returned nonzero telemetry")
	}
}

// TestESZeroWeightMatchesDataPresent replays many placements through the
// zero-weight feedback ES and the baseline JobDataPresent with cloned RNG
// streams: every decision, including randomized tie-breaks, must match.
func TestESZeroWeightMatchesDataPresent(t *testing.T) {
	v := schedtest.NewView(6)
	v.Reps[storage.FileID(1)] = []topology.SiteID{1, 2, 4}
	v.Reps[storage.FileID(2)] = []topology.SiteID{2, 4}
	v.Loads = map[topology.SiteID]int{0: 5, 1: 2, 2: 2, 3: 0, 4: 2, 5: 1}

	fb := &ES{Src: rng.New(42)}
	base := es.DataPresent{Src: rng.New(42)}
	jobs := []*job.Job{
		{Inputs: []storage.FileID{1}},    // three tied replicas → RNG tie-break
		{Inputs: []storage.FileID{2}},    // two tied replicas
		{Inputs: []storage.FileID{1, 2}}, // multi-input max-resident
		{Inputs: nil},                    // no inputs → all-sites fallback
		{Inputs: []storage.FileID{9}},    // unreplicated file → all-sites fallback
		{Inputs: []storage.FileID{1}},    // repeat: streams must stay aligned
	}
	for i, j := range jobs {
		got, want := fb.Place(v, j), base.Place(v, j)
		if got != want {
			t.Fatalf("job %d: feedback placed at %d, baseline at %d", i, got, want)
		}
	}
}

// TestDSZeroWeightMatchesLeastLoaded does the same for the dataset side:
// zero-weight DataFeedback must emit the identical replication decisions
// as DataLeastLoaded, RNG draws included.
func TestDSZeroWeightMatchesLeastLoaded(t *testing.T) {
	v := schedtest.NewView(6)
	v.Reps[storage.FileID(1)] = []topology.SiteID{0}
	v.Reps[storage.FileID(2)] = []topology.SiteID{0, 3}
	v.Sizes[storage.FileID(1)] = 1e9
	v.Sizes[storage.FileID(2)] = 2e9
	v.Loads = map[topology.SiteID]int{1: 1, 2: 1, 4: 1, 5: 3}

	fb := &DS{Src: rng.New(7)}
	base := ds.LeastLoaded{Src: rng.New(7)}
	popular := []scheduler.PopularFile{
		{File: 1, Count: 4},
		{File: 2, Count: 2},
	}
	got := fb.Decide(v, 0, popular)
	want := base.Decide(v, 0, popular)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("feedback decided %v, baseline %v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("decision lists empty; test exercises nothing")
	}
}

// TestESQueueWeightSteersAwayFromStaleHotspot: with a warm tracker whose
// EWMA knows site 1 is loaded, a stale GIS snapshot claiming site 1 is
// idle must not win against an actually-idle replica holder.
func TestESQueueWeightSteersAwayFromStaleHotspot(t *testing.T) {
	v := schedtest.NewView(4)
	v.Reps[storage.FileID(1)] = []topology.SiteID{1, 2}
	v.Loads = map[topology.SiteID]int{1: 0, 2: 1} // stale GIS: site 1 looks better

	p := DefaultParams()
	p.SpreadSeconds = 0 // isolate the ranking term
	now := 1000.0
	tr := NewTracker(p, v.Topo, func() float64 { return now })
	// Warm the tracker: site 1 has really been running an 8-deep queue.
	for ts := 0.0; ts <= 960; ts += p.Interval {
		tr.Observe(Sample{Now: ts, QueueLens: []int{0, 8, 1, 0}, GISAge: 110})
	}
	fb := &ES{Src: rng.New(1), Tracker: tr, Params: p}
	j := &job.Job{Inputs: []storage.FileID{1}}
	if got := fb.Place(v, j); got != 2 {
		t.Fatalf("feedback ES placed at %d, want the truly idle site 2", got)
	}
	// Sanity: the baseline (or zero weights) would chase the stale snapshot.
	zero := &ES{Src: rng.New(1)}
	if got := zero.Place(v, j); got != 1 {
		t.Fatalf("zero-weight ES placed at %d, want stale-snapshot site 1", got)
	}
}
