// Package feedback implements telemetry-driven adaptive scheduling: an
// External Scheduler ("JobFeedback") and a Dataset Scheduler
// ("DataFeedback") that close the loop from the simulator's observability
// substrate back to policy. A Tracker ingests periodic samples of live
// queue lengths, link loads and backlogs, GIS snapshot age, and fault
// events, maintaining exponentially weighted moving averages (EWMAs) and
// decaying fault penalties. The policies blend those trends with the
// (possibly stale) GIS view the paper's static policies consume.
//
// Every telemetry weight defaults to zero, and with all weights zero the
// policies reduce *exactly* — including random-number consumption — to
// their static counterparts (JobDataPresent and DataLeastLoaded), which is
// the regression baseline DESIGN.md §14 specifies.
package feedback

import (
	"fmt"
	"math"

	"chicsim/internal/topology"
)

// Params holds every knob of the feedback policy pair. The zero value is
// valid and reduces both policies to their static baselines; the fields
// under "telemetry cadence" are structural and are defaulted by Normalize
// when unset.
type Params struct {
	// Telemetry cadence (structural; defaulted by Normalize).
	Interval   float64 `json:"interval,omitempty"`    // tracker sampling period (s)
	HalfLife   float64 `json:"half_life,omitempty"`   // EWMA half-life (s)
	FaultDecay float64 `json:"fault_decay,omitempty"` // fault-penalty half-life (s)

	// External Scheduler weights.
	//
	// QueueWeight w ∈ [0,1] blends the GIS load snapshot with the
	// tracker's trend-projected queue estimate and dispatch-pressure
	// correction: effLoad = (1−w·d)·gisLoad + w·d·predicted + w·pressure,
	// where d is the staleness discount (see Tracker.StalenessDiscount).
	QueueWeight float64 `json:"queue_weight,omitempty"`
	// FaultWeight converts a site's decaying fault score into equivalent
	// queued jobs when ranking candidate sites.
	FaultWeight float64 `json:"fault_weight,omitempty"`
	// CongestionWeight scales the route-backlog penalty (seconds of
	// queued bytes per link) added to predicted transfer times.
	CongestionWeight float64 `json:"congestion_weight,omitempty"`
	// SpreadSeconds, when > 0, enables the divert phase: once the best
	// data-holding site's estimated queue wait exceeds this, the ES
	// considers fetching the data to a cheaper site instead, diverting
	// only when the alternative wins by more than SpreadSeconds
	// (hysteresis against churn).
	SpreadSeconds float64 `json:"spread_seconds,omitempty"`

	// Dataset Scheduler knobs.
	//
	// TrendThreshold gates replication on congestion-adjusted popularity:
	// a file replicates only when count ≥ threshold/(1+boost·backlog).
	// 0 passes everything the core's popularity filter admitted.
	TrendThreshold float64 `json:"trend_threshold,omitempty"`
	// CongestionBoost controls how strongly network backlog (mean queued
	// seconds per link) lowers the replication gate: congested grids
	// replicate more eagerly, before fetch costs climb further.
	CongestionBoost float64 `json:"congestion_boost,omitempty"`
	// TransferWeight converts the predicted seconds to push a replica to
	// a target into equivalent queued jobs when ranking targets.
	TransferWeight float64 `json:"transfer_weight,omitempty"`
	// DSNeighborhood selects the replication candidate set: 0 = the
	// baseline's siblings-then-whole-grid widening, 1 = siblings only,
	// 2 = the whole grid from the start.
	DSNeighborhood int `json:"ds_neighborhood,omitempty"`
}

// Structural defaults applied by Normalize.
const (
	DefaultInterval   = 60.0
	DefaultHalfLife   = 180.0
	DefaultFaultDecay = 900.0
)

// DefaultParams returns the tuned knob settings (the EXPERIMENTS.md
// feedback sweep's winning point, found with cmd/gridtune).
func DefaultParams() Params {
	return Params{
		Interval:   DefaultInterval,
		HalfLife:   DefaultHalfLife,
		FaultDecay: DefaultFaultDecay,

		QueueWeight:      0.9,
		FaultWeight:      4,
		CongestionWeight: 0.5,
		SpreadSeconds:    120,

		TrendThreshold:  0,
		CongestionBoost: 0.2,
		TransferWeight:  0.05,
		DSNeighborhood:  0,
	}
}

// Normalize fills the structural cadence fields when unset. Weights are
// deliberately left untouched: an explicit zero weight means "off", which
// is what the exact-reduction guarantee relies on.
func (p *Params) Normalize() {
	if p.Interval <= 0 {
		p.Interval = DefaultInterval
	}
	if p.HalfLife <= 0 {
		p.HalfLife = DefaultHalfLife
	}
	if p.FaultDecay <= 0 {
		p.FaultDecay = DefaultFaultDecay
	}
}

// Validate rejects out-of-range knobs.
func (p *Params) Validate() error {
	switch {
	case p.Interval < 0 || p.HalfLife < 0 || p.FaultDecay < 0:
		return fmt.Errorf("feedback: negative cadence (interval %v, half-life %v, fault decay %v)",
			p.Interval, p.HalfLife, p.FaultDecay)
	case p.QueueWeight < 0 || p.QueueWeight > 1:
		return fmt.Errorf("feedback: QueueWeight = %v, must be in [0, 1]", p.QueueWeight)
	case p.FaultWeight < 0 || p.CongestionWeight < 0 || p.SpreadSeconds < 0:
		return fmt.Errorf("feedback: negative ES weight (fault %v, congestion %v, spread %v)",
			p.FaultWeight, p.CongestionWeight, p.SpreadSeconds)
	case p.TrendThreshold < 0 || p.CongestionBoost < 0 || p.TransferWeight < 0:
		return fmt.Errorf("feedback: negative DS weight (threshold %v, boost %v, transfer %v)",
			p.TrendThreshold, p.CongestionBoost, p.TransferWeight)
	case p.DSNeighborhood < 0 || p.DSNeighborhood > 2:
		return fmt.Errorf("feedback: DSNeighborhood = %d, must be 0 (widen), 1 (siblings), or 2 (grid)", p.DSNeighborhood)
	}
	return nil
}

// Sample is one telemetry observation, assembled by the host (core) from
// live — not GIS-snapshot — state.
type Sample struct {
	Now          float64   // virtual time of the observation
	QueueLens    []int     // per site: jobs waiting right now
	LinkLoads    []float64 // per link: bytes/sec currently flowing
	LinkBacklog  []float64 // per link: bytes still to be delivered
	LinkCapacity []float64 // per link: effective bandwidth (bytes/sec)
	GISAge       float64   // seconds since the GIS snapshot refreshed
}

// Tracker maintains the smoothed telemetry the feedback policies consume.
// It is strictly an observer: Observe and the Note hooks never touch
// simulation state or any random stream, so attaching one perturbs nothing
// but the event count. All methods are nil-receiver safe, returning zero
// telemetry, so policies constructed without a tracker degrade to their
// static baselines.
type Tracker struct {
	p     Params
	topo  *topology.Topology
	clock func() float64

	samples int
	lastT   float64

	queueEWMA []float64 // smoothed queue length per site
	queueRate []float64 // d(smoothed)/dt, jobs per second
	pressure  []float64 // decayed dispatches not yet visible in the GIS

	fault   []float64 // decaying fault score per site
	faultAt []float64 // virtual time fault[i] was last updated

	linkBusy    []float64 // EWMA of load/capacity per link
	linkBacklog []float64 // EWMA of backlog/capacity (seconds) per link

	gisAge float64
}

// NewTracker builds a tracker for the given topology. clock supplies the
// current virtual time (used to decay fault scores and project trends
// between samples); nil freezes the clock at zero.
func NewTracker(p Params, topo *topology.Topology, clock func() float64) *Tracker {
	p.Normalize()
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	var n, l int
	if topo != nil {
		n, l = topo.NumSites(), topo.NumLinks()
	}
	return &Tracker{
		p: p, topo: topo, clock: clock,
		queueEWMA: make([]float64, n),
		queueRate: make([]float64, n),
		pressure:  make([]float64, n),
		fault:     make([]float64, n),
		faultAt:   make([]float64, n),

		linkBusy:    make([]float64, l),
		linkBacklog: make([]float64, l),
	}
}

// Ready reports whether at least one sample has been observed.
func (t *Tracker) Ready() bool { return t != nil && t.samples > 0 }

// Observe ingests one telemetry sample.
func (t *Tracker) Observe(s Sample) {
	if t == nil {
		return
	}
	t.growSites(len(s.QueueLens))
	nl := max(len(s.LinkLoads), len(s.LinkBacklog), len(s.LinkCapacity))
	if nl > len(t.linkBusy) {
		t.linkBusy = grow(t.linkBusy, nl)
		t.linkBacklog = grow(t.linkBacklog, nl)
	}
	dt := s.Now - t.lastT
	if t.samples == 0 || dt <= 0 {
		dt = t.p.Interval
	}
	alpha := 1 - math.Exp2(-dt/t.p.HalfLife)
	if t.samples == 0 {
		alpha = 1 // seed the EWMAs with the first sample, no cold-start bias
	}
	for i, q := range s.QueueLens {
		prev := t.queueEWMA[i]
		next := prev + alpha*(float64(q)-prev)
		t.queueEWMA[i] = next
		if t.samples == 0 {
			t.queueRate[i] = 0 // a seed sample carries no trend
		} else {
			t.queueRate[i] = (next - prev) / dt
		}
	}
	if s.GISAge < t.gisAge {
		// The GIS refreshed since the last sample: queued dispatches are
		// now visible in its load snapshot, so the correction resets.
		for i := range t.pressure {
			t.pressure[i] = 0
		}
	} else {
		decay := math.Exp2(-dt / t.p.HalfLife)
		for i := range t.pressure {
			t.pressure[i] *= decay
		}
	}
	t.gisAge = s.GISAge
	for l := range t.linkBusy {
		capacity := 0.0
		if l < len(s.LinkCapacity) {
			capacity = s.LinkCapacity[l]
		}
		busy, backlog := 0.0, 0.0
		if capacity > 0 {
			if l < len(s.LinkLoads) {
				busy = s.LinkLoads[l] / capacity
			}
			if l < len(s.LinkBacklog) {
				backlog = s.LinkBacklog[l] / capacity
			}
		}
		t.linkBusy[l] += alpha * (busy - t.linkBusy[l])
		t.linkBacklog[l] += alpha * (backlog - t.linkBacklog[l])
	}
	t.lastT = s.Now
	t.samples++
}

// NoteDispatch records that the ES just sent a job to site s. Until the
// next GIS refresh this dispatch is invisible in Load snapshots; the
// pressure counter corrects for the resulting herding.
func (t *Tracker) NoteDispatch(s topology.SiteID) {
	if t == nil {
		return
	}
	t.growSites(int(s) + 1)
	t.pressure[s]++
}

// NoteFault records a crash or CE failure at site s. Fault scores decay
// exponentially with the FaultDecay half-life.
func (t *Tracker) NoteFault(s topology.SiteID) {
	if t == nil {
		return
	}
	t.growSites(int(s) + 1)
	now := t.clock()
	t.fault[s] = t.faultDecayed(s, now) + 1
	t.faultAt[s] = now
}

// FaultPenalty returns site s's current decayed fault score.
func (t *Tracker) FaultPenalty(s topology.SiteID) float64 {
	if t == nil {
		return 0
	}
	return t.faultDecayed(s, t.clock())
}

func (t *Tracker) faultDecayed(s topology.SiteID, now float64) float64 {
	if int(s) >= len(t.fault) || t.fault[s] == 0 {
		return 0
	}
	return t.fault[s] * math.Exp2(-(now-t.faultAt[s])/t.p.FaultDecay)
}

// growSites widens the per-site slices to hold at least n sites. The sim
// sizes them once from the topology; this only matters for standalone
// trackers built without one.
func (t *Tracker) growSites(n int) {
	if n <= len(t.queueEWMA) {
		return
	}
	t.queueEWMA = grow(t.queueEWMA, n)
	t.queueRate = grow(t.queueRate, n)
	t.pressure = grow(t.pressure, n)
	t.fault = grow(t.fault, n)
	t.faultAt = grow(t.faultAt, n)
}

func grow(s []float64, n int) []float64 {
	return append(s, make([]float64, n-len(s))...)
}

// PredictedLoad projects site s's smoothed queue length forward to the
// current virtual time along its EWMA trend (clamped at zero).
func (t *Tracker) PredictedLoad(s topology.SiteID) float64 {
	if t == nil || t.samples == 0 || int(s) >= len(t.queueEWMA) {
		return 0
	}
	proj := t.queueEWMA[s] + t.queueRate[s]*(t.clock()-t.lastT)
	if proj < 0 {
		return 0
	}
	return proj
}

// SmoothedLoad returns site s's EWMA queue length at the last sample.
func (t *Tracker) SmoothedLoad(s topology.SiteID) float64 {
	if t == nil || int(s) >= len(t.queueEWMA) {
		return 0
	}
	return t.queueEWMA[s]
}

// LoadTrend returns site s's smoothed queue growth rate in jobs/second.
func (t *Tracker) LoadTrend(s topology.SiteID) float64 {
	if t == nil || int(s) >= len(t.queueRate) {
		return 0
	}
	return t.queueRate[s]
}

// Pressure returns the decayed count of dispatches to s not yet reflected
// in the GIS load snapshot.
func (t *Tracker) Pressure(s topology.SiteID) float64 {
	if t == nil || int(s) >= len(t.pressure) {
		return 0
	}
	return t.pressure[s]
}

// StalenessDiscount maps the GIS snapshot age into [0, 1): 0 when the
// snapshot is fresh (trust it), approaching 1 as the age dwarfs the EWMA
// half-life (trust the tracker's own trend instead).
func (t *Tracker) StalenessDiscount() float64 {
	if t == nil || t.samples == 0 {
		return 0
	}
	return t.gisAge / (t.gisAge + t.p.HalfLife)
}

// RouteBacklogSeconds returns the worst smoothed per-link backlog (queued
// seconds of traffic) along the route between two sites.
func (t *Tracker) RouteBacklogSeconds(a, b topology.SiteID) float64 {
	if t == nil || t.samples == 0 || a == b {
		return 0
	}
	worst := 0.0
	for _, l := range t.topo.Route(a, b) {
		if t.linkBacklog[l] > worst {
			worst = t.linkBacklog[l]
		}
	}
	return worst
}

// NetworkBacklogSeconds returns the mean smoothed per-link backlog over
// the whole grid — the DS's congestion-trend signal.
func (t *Tracker) NetworkBacklogSeconds() float64 {
	if t == nil || t.samples == 0 || len(t.linkBacklog) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range t.linkBacklog {
		sum += b
	}
	return sum / float64(len(t.linkBacklog))
}
