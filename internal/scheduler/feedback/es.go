package feedback

import (
	"chicsim/internal/job"
	"chicsim/internal/rng"
	"chicsim/internal/scheduler"
	"chicsim/internal/scheduler/es"
	"chicsim/internal/topology"
)

// ES is the adaptive External Scheduler ("JobFeedback"). It ranks the same
// data-holding candidates JobDataPresent would consider, but scores them
// with the tracker's staleness-discounted load blend, dispatch-pressure
// correction, and decaying fault penalties; with SpreadSeconds > 0 it can
// divert jobs off swamped holders to sites where fetching the data is
// cheaper than queueing behind it. With zero-valued Params (or no tracker)
// it is byte-identical to JobDataPresent, including RNG consumption.
type ES struct {
	Src           *rng.Source
	AvgComputeSec float64 // assumed mean compute time of a queued job
	CEsPerSite    float64 // assumed processors per site
	Tracker       *Tracker
	Params        Params
}

// Name implements scheduler.External.
func (*ES) Name() string { return "JobFeedback" }

// Place implements scheduler.External.
func (e *ES) Place(g scheduler.GridView, j *job.Job) topology.SiteID {
	cands := es.DataPresentCandidates(g, j)
	best := e.rank(g, cands)
	if e.Params.SpreadSeconds > 0 && e.Tracker.Ready() {
		if alt, ok := e.divert(g, j, best); ok {
			return alt
		}
	}
	return best
}

// effLoad is the telemetry-blended queue estimate for site s. With
// QueueWeight zero it is exactly float64(g.Load(s)) — the conversion of an
// int queue length is lossless, so score comparisons and tie sets match
// the static baseline's integer comparisons bit for bit.
func (e *ES) effLoad(g scheduler.GridView, s topology.SiteID) float64 {
	load := float64(g.Load(s))
	if w := e.Params.QueueWeight; w > 0 && e.Tracker.Ready() {
		d := e.Tracker.StalenessDiscount()
		load = (1-w*d)*load + w*d*e.Tracker.PredictedLoad(s) + w*e.Tracker.Pressure(s)
	}
	return load
}

// score ranks candidate sites: blended load plus fault penalty, in
// equivalent queued jobs.
func (e *ES) score(g scheduler.GridView, s topology.SiteID) float64 {
	sc := e.effLoad(g, s)
	if e.Params.FaultWeight > 0 {
		sc += e.Params.FaultWeight * e.Tracker.FaultPenalty(s)
	}
	return sc
}

// rank picks the lowest-scoring candidate, collecting exact ties in
// candidate order and breaking them with one rng.Pick draw — the same
// structure (and therefore the same stream consumption) as the static
// policies' least-loaded selection.
func (e *ES) rank(g scheduler.GridView, cands []topology.SiteID) topology.SiteID {
	best := cands[:1]
	bestScore := e.score(g, cands[0])
	for _, c := range cands[1:] {
		sc := e.score(g, c)
		switch {
		case sc < bestScore:
			bestScore = sc
			best = []topology.SiteID{c}
		case sc == bestScore:
			best = append(best, c)
		}
	}
	if len(best) == 1 || e.Src == nil {
		return best[0]
	}
	return rng.Pick(e.Src, best)
}

// divert decides whether to move job j off the chosen data holder. Only
// when the holder's estimated queue wait exceeds SpreadSeconds does it
// cost out every site — max(queue wait, congestion-penalized fetch time)
// plus fault penalty — and it diverts only when the cheapest alternative
// wins by more than SpreadSeconds (hysteresis). The search is a
// deterministic first-wins argmin: no extra RNG draws, so seeds stay
// comparable across SpreadSeconds settings.
func (e *ES) divert(g scheduler.GridView, j *job.Job, holder topology.SiteID) (topology.SiteID, bool) {
	holderCost := e.siteCost(g, j, holder)
	if e.queueSeconds(g, holder) <= e.Params.SpreadSeconds {
		return 0, false
	}
	bestCost := holderCost
	best := holder
	for s := 0; s < g.NumSites(); s++ {
		sid := topology.SiteID(s)
		if sid == holder {
			continue
		}
		if c := e.siteCost(g, j, sid); c < bestCost {
			bestCost = c
			best = sid
		}
	}
	if best != holder && bestCost+e.Params.SpreadSeconds < holderCost {
		return best, true
	}
	return 0, false
}

// queueSeconds estimates how long site s's current queue takes to drain.
func (e *ES) queueSeconds(g scheduler.GridView, s topology.SiteID) float64 {
	ces := e.CEsPerSite
	if c := g.CEs(s); c > 0 {
		ces = float64(c)
	}
	if ces <= 0 {
		ces = 1
	}
	return e.effLoad(g, s) * e.AvgComputeSec / ces
}

// siteCost estimates job j's wait at site s: the larger of queue drain and
// input fetch time (fetches overlap queueing), plus the fault penalty
// expressed in seconds.
func (e *ES) siteCost(g scheduler.GridView, j *job.Job, s topology.SiteID) float64 {
	fetch := 0.0
	for _, f := range j.Inputs {
		if g.HasReplica(f, s) {
			continue
		}
		reps := g.Replicas(f)
		if len(reps) == 0 {
			continue
		}
		best := -1.0
		for _, r := range reps {
			t := g.PredictTransfer(r, s, g.FileSize(f))
			if e.Params.CongestionWeight > 0 {
				t += e.Params.CongestionWeight * e.Tracker.RouteBacklogSeconds(r, s)
			}
			if best < 0 || t < best {
				best = t
			}
		}
		if best > fetch {
			fetch = best // inputs fetch in parallel: bound by the slowest
		}
	}
	cost := e.queueSeconds(g, s)
	if fetch > cost {
		cost = fetch
	}
	if e.Params.FaultWeight > 0 {
		ces := e.CEsPerSite
		if ces <= 0 {
			ces = 1
		}
		cost += e.Params.FaultWeight * e.Tracker.FaultPenalty(s) * e.AvgComputeSec / ces
	}
	return cost
}
