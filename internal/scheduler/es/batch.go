package es

import (
	"chicsim/internal/job"
	"chicsim/internal/scheduler"
	"chicsim/internal/topology"
)

// ect estimates the completion time of job j at site s, following the
// paper's own cost model: max(queue delay, input transfer) + compute. The
// queue delay estimate is (waiting jobs + extra assignments already made
// this batch) × avgCompute / CEs; the transfer estimate is the predicted
// time to pull the slowest missing input from its closest replica.
type ect struct {
	g          scheduler.GridView
	avgCompute float64
	extra      []float64 // work (seconds) assigned to each site this batch
}

func newECT(g scheduler.GridView, avgCompute float64) *ect {
	return &ect{g: g, avgCompute: avgCompute, extra: make([]float64, g.NumSites())}
}

func (e *ect) estimate(j *job.Job, s topology.SiteID) float64 {
	ces := e.g.CEs(s)
	if ces <= 0 {
		ces = 1
	}
	queue := (float64(e.g.Load(s))*e.avgCompute + e.extra[s]) / float64(ces)
	transfer := 0.0
	for _, f := range j.Inputs {
		if e.g.HasReplica(f, s) {
			continue
		}
		best := -1.0
		for _, r := range e.g.Replicas(f) {
			t := e.g.PredictTransfer(r, s, e.g.FileSize(f))
			if best < 0 || t < best {
				best = t
			}
		}
		if best > transfer {
			transfer = best
		}
	}
	wait := queue
	if transfer > wait {
		wait = transfer
	}
	return wait + j.ComputeTime
}

func (e *ect) commit(j *job.Job, s topology.SiteID) {
	e.extra[s] += j.ComputeTime
}

// bestSite returns the site minimizing the job's ECT (lowest id on ties,
// for determinism).
func (e *ect) bestSite(j *job.Job) (topology.SiteID, float64) {
	best := topology.SiteID(0)
	bestECT := e.estimate(j, 0)
	for s := 1; s < e.g.NumSites(); s++ {
		sid := topology.SiteID(s)
		if v := e.estimate(j, sid); v < bestECT {
			best, bestECT = sid, v
		}
	}
	return best, bestECT
}

// batchAssign runs the generic Min-Min/Max-Min/Sufferage loop: repeatedly
// compute each unassigned job's best (and second-best, for Sufferage)
// completion time, pick a job by the policy's criterion, assign it, and
// update the load estimates.
//
// pick receives (bestECT, sufferage) per remaining job and returns the
// index to schedule next.
func batchAssign(g scheduler.GridView, jobs []*job.Job, avgCompute float64,
	pick func(best, sufferage []float64) int) []topology.SiteID {

	e := newECT(g, avgCompute)
	out := make([]topology.SiteID, len(jobs))
	remaining := make([]int, len(jobs)) // indices into jobs
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		best := make([]float64, len(remaining))
		suffer := make([]float64, len(remaining))
		sites := make([]topology.SiteID, len(remaining))
		for k, idx := range remaining {
			j := jobs[idx]
			s, v := e.bestSite(j)
			sites[k], best[k] = s, v
			// Second-best ECT for the sufferage criterion.
			second := -1.0
			for c := 0; c < g.NumSites(); c++ {
				sid := topology.SiteID(c)
				if sid == s {
					continue
				}
				if v2 := e.estimate(j, sid); second < 0 || v2 < second {
					second = v2
				}
			}
			if second < 0 {
				second = best[k]
			}
			suffer[k] = second - best[k]
		}
		k := pick(best, suffer)
		idx := remaining[k]
		out[idx] = sites[k]
		e.commit(jobs[idx], sites[k])
		remaining = append(remaining[:k], remaining[k+1:]...)
	}
	return out
}

// BatchMinMin implements the Min-Min heuristic: schedule the job with the
// smallest best completion time first, so short jobs pack tightly.
type BatchMinMin struct{ AvgComputeSec float64 }

// Name implements scheduler.Batch.
func (BatchMinMin) Name() string { return "BatchMinMin" }

// Assign implements scheduler.Batch.
func (b BatchMinMin) Assign(g scheduler.GridView, jobs []*job.Job) []topology.SiteID {
	return batchAssign(g, jobs, b.AvgComputeSec, func(best, _ []float64) int {
		k := 0
		for i := 1; i < len(best); i++ {
			if best[i] < best[k] {
				k = i
			}
		}
		return k
	})
}

// BatchMaxMin implements the Max-Min heuristic: schedule the job with the
// largest best completion time first, so long jobs claim resources early.
type BatchMaxMin struct{ AvgComputeSec float64 }

// Name implements scheduler.Batch.
func (BatchMaxMin) Name() string { return "BatchMaxMin" }

// Assign implements scheduler.Batch.
func (b BatchMaxMin) Assign(g scheduler.GridView, jobs []*job.Job) []topology.SiteID {
	return batchAssign(g, jobs, b.AvgComputeSec, func(best, _ []float64) int {
		k := 0
		for i := 1; i < len(best); i++ {
			if best[i] > best[k] {
				k = i
			}
		}
		return k
	})
}

// BatchSufferage implements the Sufferage heuristic (Casanova et al.,
// AppLeS): schedule the job that would suffer most from losing its best
// site — the largest gap between best and second-best completion times.
type BatchSufferage struct{ AvgComputeSec float64 }

// Name implements scheduler.Batch.
func (BatchSufferage) Name() string { return "BatchSufferage" }

// Assign implements scheduler.Batch.
func (b BatchSufferage) Assign(g scheduler.GridView, jobs []*job.Job) []topology.SiteID {
	return batchAssign(g, jobs, b.AvgComputeSec, func(_, suffer []float64) int {
		k := 0
		for i := 1; i < len(suffer); i++ {
			if suffer[i] > suffer[k] {
				k = i
			}
		}
		return k
	})
}
