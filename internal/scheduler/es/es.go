// Package es implements the paper's four External Scheduler algorithms —
// JobRandom, JobLeastLoaded, JobDataPresent, JobLocal (§4) — plus two
// extensions: JobBestCost and Adaptive (the paper's future-work idea of
// selecting a strategy per job from current grid conditions).
package es

import (
	"chicsim/internal/job"
	"chicsim/internal/rng"
	"chicsim/internal/scheduler"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

// allSites enumerates 0..NumSites-1.
func allSites(g scheduler.GridView) []topology.SiteID {
	out := make([]topology.SiteID, g.NumSites())
	for i := range out {
		out[i] = topology.SiteID(i)
	}
	return out
}

// fillAllSites refills buf with 0..NumSites-1, growing it only when
// needed. Handing out a refilled buffer is equivalent to the historical
// fresh allocation: leastLoaded's tie-set writes into it are overwritten
// on the next fill.
func fillAllSites(g scheduler.GridView, buf []topology.SiteID) []topology.SiteID {
	n := g.NumSites()
	if cap(buf) < n {
		buf = make([]topology.SiteID, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = topology.SiteID(i)
	}
	return buf
}

// leastLoaded picks the least-loaded candidate, breaking ties with one
// rng.Pick draw. It reproduces the historical append-into-subslice tie
// construction without allocating: while the running best set still
// aliases candidates, ties are written into candidates[1:] — observable
// (and recorded in golden runs) when candidates aliases a GIS snapshot —
// and once a strictly lower load appears the set moves to *scratch (the
// historical fresh allocation), after which candidates is never written
// again.
func leastLoaded(g scheduler.GridView, candidates []topology.SiteID, tie *rng.Source, scratch *[]topology.SiteID) topology.SiteID {
	n := 1
	aliased := true
	bestLoad := g.Load(candidates[0])
	det := (*scratch)[:0]
	for i := 1; i < len(candidates); i++ {
		c := candidates[i]
		l := g.Load(c)
		switch {
		case l < bestLoad:
			bestLoad = l
			aliased = false
			det = append(det[:0], c)
		case l == bestLoad:
			if aliased {
				candidates[n] = c
				n++
			} else {
				det = append(det, c)
			}
		}
	}
	*scratch = det
	best := candidates[:n]
	if !aliased {
		best = det
	}
	if len(best) == 1 || tie == nil {
		return best[0]
	}
	return rng.Pick(tie, best)
}

// Random sends each job to a uniformly random site ("JobRandom").
type Random struct{ Src *rng.Source }

// Name implements scheduler.External.
func (Random) Name() string { return "JobRandom" }

// Place implements scheduler.External.
func (r Random) Place(g scheduler.GridView, _ *job.Job) topology.SiteID {
	return topology.SiteID(r.Src.Intn(g.NumSites()))
}

// LeastLoaded sends each job to the site with the fewest jobs waiting to
// run ("JobLeastLoaded"), breaking ties randomly.
type LeastLoaded struct {
	Src *rng.Source

	sites, ties []topology.SiteID // reused per-placement scratch
}

// Name implements scheduler.External.
func (*LeastLoaded) Name() string { return "JobLeastLoaded" }

// Place implements scheduler.External.
func (l *LeastLoaded) Place(g scheduler.GridView, _ *job.Job) topology.SiteID {
	l.sites = fillAllSites(g, l.sites)
	return leastLoaded(g, l.sites, l.Src, &l.ties)
}

// Local always runs jobs at the submitting user's site ("JobLocal").
type Local struct{}

// Name implements scheduler.External.
func (Local) Name() string { return "JobLocal" }

// Place implements scheduler.External.
func (Local) Place(_ scheduler.GridView, j *job.Job) topology.SiteID { return j.Origin }

// DataPresent sends each job to "a site that already has the required
// data. If more than one site qualifies choose the least loaded one."
// With multiple inputs (extension), candidate sites are those holding the
// largest resident share of the job's input bytes. If no site holds any
// input (impossible when masters exist; defensive fallback), it degrades
// to least-loaded.
type DataPresent struct {
	Src *rng.Source

	sites, ties []topology.SiteID // reused per-placement scratch
}

// Name implements scheduler.External.
func (*DataPresent) Name() string { return "JobDataPresent" }

// Place implements scheduler.External.
func (d *DataPresent) Place(g scheduler.GridView, j *job.Job) topology.SiteID {
	return leastLoaded(g, d.candidates(g, j), d.Src, &d.ties)
}

// candidates mirrors DataPresentCandidates but serves the hot single-input
// case from reused scratch: the all-sites fallback refills a per-scheduler
// buffer instead of allocating. Multi-input jobs delegate to the exported
// (allocating) path.
func (d *DataPresent) candidates(g scheduler.GridView, j *job.Job) []topology.SiteID {
	if len(j.Inputs) == 1 {
		reps := g.Replicas(j.Inputs[0])
		if len(reps) == 0 {
			d.sites = fillAllSites(g, d.sites)
			return d.sites
		}
		return reps
	}
	return DataPresentCandidates(g, j)
}

// DataPresentCandidates returns, in deterministic order, the candidate
// sites JobDataPresent ranks for job j: the holders of its single input
// (or, with multiple inputs, the sites holding the largest resident share
// of its input bytes), widening to every site when nothing qualifies. The
// result is never empty. Exported so telemetry-driven extensions can rank
// exactly the baseline's candidate set with richer scores.
func DataPresentCandidates(g scheduler.GridView, j *job.Job) []topology.SiteID {
	if len(j.Inputs) == 1 {
		reps := g.Replicas(j.Inputs[0])
		if len(reps) == 0 {
			return allSites(g)
		}
		return reps
	}
	// Multi-input extension: maximize resident input bytes.
	bytesAt := make(map[topology.SiteID]float64)
	for _, f := range j.Inputs {
		size := g.FileSize(f)
		for _, s := range g.Replicas(f) {
			bytesAt[s] += size
		}
	}
	if len(bytesAt) == 0 {
		return allSites(g)
	}
	bestBytes := -1.0
	var cands []topology.SiteID
	for _, s := range allSites(g) { // iterate in site order for determinism
		b, ok := bytesAt[s]
		if !ok {
			continue
		}
		switch {
		case b > bestBytes:
			bestBytes = b
			cands = []topology.SiteID{s}
		case b == bestBytes:
			cands = append(cands, s)
		}
	}
	return cands
}

// Regional is an extension for tiered grids: run the job within the
// submitting user's region whenever any region member already holds the
// data (least-loaded such member wins), and otherwise run at the origin so
// the fetched copy lands in-region for future jobs. It keeps computation
// off the shared backbone without the full coupling of JobDataPresent.
type Regional struct {
	Src *rng.Source

	region, holders, ties []topology.SiteID // reused per-placement scratch
}

// Name implements scheduler.External.
func (*Regional) Name() string { return "JobRegional" }

// Place implements scheduler.External.
func (r *Regional) Place(g scheduler.GridView, j *job.Job) topology.SiteID {
	r.region = append(r.region[:0], j.Origin)
	r.region = append(r.region, g.Topology().Siblings(j.Origin)...)
	holders := r.holders[:0]
	for _, s := range r.region {
		hasAll := true
		for _, f := range j.Inputs {
			if !g.HasReplica(f, s) {
				hasAll = false
				break
			}
		}
		if hasAll {
			holders = append(holders, s)
		}
	}
	r.holders = holders
	if len(holders) == 0 {
		return j.Origin
	}
	return leastLoaded(g, holders, r.Src, &r.ties)
}

// BestCost is an extension: it estimates, for every site, the job's
// completion cost there — the larger of (a) predicted input transfer time
// from the closest replica and (b) queued work ahead of it — plus the
// job's own compute time, and picks the cheapest site. AvgComputeSec
// approximates the compute demand of queued jobs (the ES cannot see their
// exact requirements, matching the paper's decentralized-information
// stance).
type BestCost struct {
	Src           *rng.Source
	AvgComputeSec float64 // assumed mean compute time of a queued job
	CEsPerSite    float64 // assumed processors per site

	best []topology.SiteID // reused per-placement scratch
}

// Name implements scheduler.External.
func (*BestCost) Name() string { return "JobBestCost" }

// Place implements scheduler.External.
func (b *BestCost) Place(g scheduler.GridView, j *job.Job) topology.SiteID {
	ces := b.CEsPerSite
	if ces <= 0 {
		ces = 1
	}
	bestCost := -1.0
	best := b.best[:0]
	for si := 0; si < g.NumSites(); si++ { // site-id order for determinism
		s := topology.SiteID(si)
		transfer := 0.0
		for _, f := range j.Inputs {
			if g.HasReplica(f, s) {
				continue
			}
			t := b.closestTransfer(g, f, s)
			if t > transfer {
				transfer = t // inputs fetched in parallel: bound by slowest
			}
		}
		queue := float64(g.Load(s)) * b.AvgComputeSec / ces
		wait := transfer
		if queue > wait {
			wait = queue
		}
		cost := wait + j.ComputeTime
		switch {
		case bestCost < 0 || cost < bestCost:
			bestCost = cost
			best = append(best[:0], s)
		case cost == bestCost:
			best = append(best, s)
		}
	}
	b.best = best
	if len(best) == 1 || b.Src == nil {
		return best[0]
	}
	return rng.Pick(b.Src, best)
}

func (b *BestCost) closestTransfer(g scheduler.GridView, f storage.FileID, to topology.SiteID) float64 {
	reps := g.Replicas(f)
	if len(reps) == 0 {
		return 0
	}
	best := -1.0
	for _, r := range reps {
		t := g.PredictTransfer(r, to, g.FileSize(f))
		if best < 0 || t < best {
			best = t
		}
	}
	return best
}

// Adaptive is the paper's future-work idea (§5.3): "slow links and large
// datasets might imply scheduling the jobs at the data source ... if the
// data is small and network links are not congested, moving the data to
// the job source ... might be [a] viable alternative". It compares the
// predicted time to pull the job's inputs to the origin against a fraction
// of the job's compute time: cheap pulls run locally, expensive ones run
// where the data is.
type Adaptive struct {
	Src *rng.Source
	// PullFraction is the threshold: pull data home when predicted
	// transfer time < PullFraction × compute time. The paper suggests no
	// value; 0.5 is the documented default.
	PullFraction float64

	dp DataPresent // reused inner scheduler for the push decision
}

// Name implements scheduler.External.
func (*Adaptive) Name() string { return "JobAdaptive" }

// Place implements scheduler.External.
func (a *Adaptive) Place(g scheduler.GridView, j *job.Job) topology.SiteID {
	frac := a.PullFraction
	if frac <= 0 {
		frac = 0.5
	}
	pull := 0.0
	for _, f := range j.Inputs {
		if g.HasReplica(f, j.Origin) {
			continue
		}
		reps := g.Replicas(f)
		if len(reps) == 0 {
			continue
		}
		best := -1.0
		for _, r := range reps {
			t := g.PredictTransfer(r, j.Origin, g.FileSize(f))
			if best < 0 || t < best {
				best = t
			}
		}
		if best > pull {
			pull = best
		}
	}
	if pull < frac*j.ComputeTime {
		return j.Origin
	}
	a.dp.Src = a.Src
	return a.dp.Place(g, j)
}
