package es

import (
	"testing"

	"chicsim/internal/job"
	"chicsim/internal/rng"
	"chicsim/internal/scheduler"
	"chicsim/internal/scheduler/schedtest"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

func mkJob(origin topology.SiteID, inputs ...storage.FileID) *job.Job {
	return job.New(1, 0, origin, inputs, 300)
}

func TestNames(t *testing.T) {
	for _, c := range []struct {
		s    scheduler.External
		want string
	}{
		{Random{Src: rng.New(1)}, "JobRandom"},
		{&LeastLoaded{Src: rng.New(1)}, "JobLeastLoaded"},
		{&DataPresent{Src: rng.New(1)}, "JobDataPresent"},
		{Local{}, "JobLocal"},
		{&BestCost{}, "JobBestCost"},
		{&Adaptive{}, "JobAdaptive"},
	} {
		if c.s.Name() != c.want {
			t.Errorf("Name = %q, want %q", c.s.Name(), c.want)
		}
	}
}

func TestRandomCoversAllSites(t *testing.T) {
	v := schedtest.NewView(8)
	r := Random{Src: rng.New(5)}
	seen := map[topology.SiteID]bool{}
	for i := 0; i < 2000; i++ {
		s := r.Place(v, mkJob(0, 1))
		if s < 0 || int(s) >= 8 {
			t.Fatalf("placed at invalid site %d", s)
		}
		seen[s] = true
	}
	if len(seen) != 8 {
		t.Fatalf("random placement covered %d/8 sites", len(seen))
	}
}

func TestLeastLoadedPicksMinimum(t *testing.T) {
	v := schedtest.NewView(4)
	v.Loads[0] = 5
	v.Loads[1] = 2
	v.Loads[2] = 9
	v.Loads[3] = 2
	l := LeastLoaded{Src: rng.New(1)}
	counts := map[topology.SiteID]int{}
	for i := 0; i < 500; i++ {
		counts[l.Place(v, mkJob(0, 1))]++
	}
	if counts[0] != 0 || counts[2] != 0 {
		t.Fatalf("placed at loaded sites: %v", counts)
	}
	// Ties between 1 and 3 should both occur.
	if counts[1] == 0 || counts[3] == 0 {
		t.Fatalf("tie-breaking never picked one of the tied sites: %v", counts)
	}
}

func TestLocal(t *testing.T) {
	v := schedtest.NewView(4)
	if got := (Local{}).Place(v, mkJob(3, 1)); got != 3 {
		t.Fatalf("JobLocal placed at %d, want origin 3", got)
	}
}

func TestDataPresentPrefersReplicaSites(t *testing.T) {
	v := schedtest.NewView(6)
	v.Reps[7] = []topology.SiteID{2, 4}
	v.Loads[2] = 3
	v.Loads[4] = 1
	d := DataPresent{Src: rng.New(1)}
	if got := d.Place(v, mkJob(0, 7)); got != 4 {
		t.Fatalf("placed at %d, want least-loaded replica site 4", got)
	}
}

func TestDataPresentFallsBackWithoutReplicas(t *testing.T) {
	v := schedtest.NewView(5)
	v.Loads[0] = 1
	v.Loads[1] = 1
	v.Loads[2] = 0
	v.Loads[3] = 1
	v.Loads[4] = 1
	d := DataPresent{Src: rng.New(1)}
	if got := d.Place(v, mkJob(0, 99)); got != 2 {
		t.Fatalf("fallback placed at %d, want least-loaded 2", got)
	}
}

func TestDataPresentMultiInputMaximizesResidentBytes(t *testing.T) {
	v := schedtest.NewView(4)
	v.Sizes[1] = 2e9
	v.Sizes[2] = 1e9
	v.Reps[1] = []topology.SiteID{1}
	v.Reps[2] = []topology.SiteID{2}
	d := DataPresent{Src: rng.New(1)}
	// Site 1 holds 2 GB of the job's inputs, site 2 holds 1 GB.
	if got := d.Place(v, mkJob(0, 1, 2)); got != 1 {
		t.Fatalf("placed at %d, want site 1 (most input bytes)", got)
	}
}

func TestBestCostAvoidsExpensiveTransfers(t *testing.T) {
	v := schedtest.NewView(3)
	v.Sizes[1] = 1e9
	v.Reps[1] = []topology.SiteID{2}
	v.RatePerSec = 1e6 // 1000 s to move 1 GB
	b := BestCost{Src: rng.New(1), AvgComputeSec: 300, CEsPerSite: 3}
	// Site 2 has the data (no transfer); others pay 1000 s.
	if got := b.Place(v, mkJob(0, 1)); got != 2 {
		t.Fatalf("placed at %d, want data site 2", got)
	}
}

func TestBestCostAvoidsLongQueues(t *testing.T) {
	v := schedtest.NewView(3)
	v.Sizes[1] = 1e9
	v.Reps[1] = []topology.SiteID{2}
	v.RatePerSec = 100e6 // cheap transfers: 10 s
	v.Loads[2] = 50      // but site 2 is swamped
	b := BestCost{Src: rng.New(1), AvgComputeSec: 300, CEsPerSite: 3}
	if got := b.Place(v, mkJob(0, 1)); got == 2 {
		t.Fatal("placed at swamped site despite cheap transfer elsewhere")
	}
}

func TestAdaptivePullsWhenCheap(t *testing.T) {
	v := schedtest.NewView(3)
	v.Sizes[1] = 1e9
	v.Reps[1] = []topology.SiteID{2}
	v.RatePerSec = 1e9 // 1 s transfer vs 300 s compute: pull home
	a := Adaptive{Src: rng.New(1), PullFraction: 0.5}
	if got := a.Place(v, mkJob(0, 1)); got != 0 {
		t.Fatalf("placed at %d, want origin 0 (cheap pull)", got)
	}
}

func TestAdaptiveFollowsDataWhenExpensive(t *testing.T) {
	v := schedtest.NewView(3)
	v.Sizes[1] = 1e9
	v.Reps[1] = []topology.SiteID{2}
	v.RatePerSec = 1e6 // 1000 s transfer vs 300 s compute: go to data
	a := Adaptive{Src: rng.New(1), PullFraction: 0.5}
	if got := a.Place(v, mkJob(0, 1)); got != 2 {
		t.Fatalf("placed at %d, want data site 2", got)
	}
}

func TestAdaptiveLocalDataStaysLocal(t *testing.T) {
	v := schedtest.NewView(3)
	v.Sizes[1] = 1e9
	v.Reps[1] = []topology.SiteID{0}
	v.RatePerSec = 1 // transfers absurdly slow, but data is already home
	a := Adaptive{Src: rng.New(1)}
	if got := a.Place(v, mkJob(0, 1)); got != 0 {
		t.Fatalf("placed at %d, want origin (data local)", got)
	}
}

func TestRegionalPrefersInRegionData(t *testing.T) {
	v := schedtest.NewHierView(9, 3)
	origin := topology.SiteID(0)
	sibs := v.Topo.Siblings(origin)
	// Data at a sibling: run there.
	v.Reps[1] = []topology.SiteID{sibs[0]}
	r := Regional{Src: rng.New(1)}
	if got := r.Place(v, mkJob(origin, 1)); got != sibs[0] {
		t.Fatalf("placed at %d, want in-region holder %d", got, sibs[0])
	}
	// Data only out of region: run at origin (pull it home).
	var outsider topology.SiteID = -1
	inRegion := map[topology.SiteID]bool{origin: true}
	for _, s := range sibs {
		inRegion[s] = true
	}
	for s := topology.SiteID(0); s < 9; s++ {
		if !inRegion[s] {
			outsider = s
			break
		}
	}
	v.Reps[1] = []topology.SiteID{outsider}
	if got := r.Place(v, mkJob(origin, 1)); got != origin {
		t.Fatalf("placed at %d, want origin %d", got, origin)
	}
	// Origin itself holds the data: stay home.
	v.Reps[1] = []topology.SiteID{origin}
	if got := r.Place(v, mkJob(origin, 1)); got != origin {
		t.Fatalf("placed at %d, want origin", got)
	}
}

func TestRegionalLeastLoadedAmongHolders(t *testing.T) {
	v := schedtest.NewHierView(9, 3)
	origin := topology.SiteID(0)
	sibs := v.Topo.Siblings(origin)
	v.Reps[1] = []topology.SiteID{sibs[0], sibs[1]}
	v.Loads[sibs[0]] = 9
	v.Loads[sibs[1]] = 1
	r := Regional{Src: rng.New(1)}
	if got := r.Place(v, mkJob(origin, 1)); got != sibs[1] {
		t.Fatalf("placed at %d, want least-loaded holder %d", got, sibs[1])
	}
}

func TestDeterministicGivenSameStream(t *testing.T) {
	v := schedtest.NewView(10)
	for f := storage.FileID(0); f < 5; f++ {
		v.Reps[f] = []topology.SiteID{topology.SiteID(f), topology.SiteID(f + 5)}
		v.Sizes[f] = 1e9
	}
	place := func() []topology.SiteID {
		var out []topology.SiteID
		algs := []scheduler.External{
			Random{Src: rng.New(42)},
			&LeastLoaded{Src: rng.New(42)},
			&DataPresent{Src: rng.New(42)},
		}
		for _, alg := range algs {
			for i := 0; i < 50; i++ {
				out = append(out, alg.Place(v, mkJob(topology.SiteID(i%10), storage.FileID(i%5))))
			}
		}
		return out
	}
	a, b := place(), place()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic placement at %d", i)
		}
	}
}
