package es

import (
	"chicsim/internal/job"
	"chicsim/internal/rng"
	"chicsim/internal/scheduler"
	"chicsim/internal/topology"
)

// AvoidFailed wraps any External Scheduler with the fault-recovery
// contract: a retried job is never re-placed at the site it just failed
// on. If the inner policy picks that site again (JobLocal always
// re-picks the origin; data-affinity policies gravitate back to where
// the inputs were cached), the wrapper overrides it with the
// least-loaded of the remaining sites. Fresh jobs (no failure recorded)
// pass through untouched, so wrapping changes nothing on a
// failure-free run.
type AvoidFailed struct {
	Inner scheduler.External
	Src   *rng.Source // tie-break stream for the least-loaded fallback
}

// Name reports the inner policy's name: the wrapper is a contract, not a
// distinct policy.
func (a AvoidFailed) Name() string { return a.Inner.Name() }

// Place implements scheduler.External.
func (a AvoidFailed) Place(g scheduler.GridView, j *job.Job) topology.SiteID {
	target := a.Inner.Place(g, j)
	if j.LastFailedSite < 0 || target != j.LastFailedSite || g.NumSites() <= 1 {
		return target
	}
	candidates := make([]topology.SiteID, 0, g.NumSites()-1)
	for s := 0; s < g.NumSites(); s++ {
		if topology.SiteID(s) != j.LastFailedSite {
			candidates = append(candidates, topology.SiteID(s))
		}
	}
	// Retry fallback is cold (faulted runs only): a transient scratch is
	// fine here.
	var scratch []topology.SiteID
	return leastLoaded(g, candidates, a.Src, &scratch)
}
