package es

import (
	"testing"

	"chicsim/internal/job"
	"chicsim/internal/scheduler"
	"chicsim/internal/scheduler/schedtest"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

func batchJobs(computes ...float64) []*job.Job {
	out := make([]*job.Job, len(computes))
	for i, c := range computes {
		out[i] = job.New(job.ID(i), 0, 0, []storage.FileID{storage.FileID(i)}, c)
	}
	return out
}

func TestBatchNames(t *testing.T) {
	for _, c := range []struct {
		b    scheduler.Batch
		want string
	}{
		{BatchMinMin{}, "BatchMinMin"},
		{BatchMaxMin{}, "BatchMaxMin"},
		{BatchSufferage{}, "BatchSufferage"},
	} {
		if c.b.Name() != c.want {
			t.Errorf("Name = %q, want %q", c.b.Name(), c.want)
		}
	}
}

func TestBatchAssignsEveryJob(t *testing.T) {
	v := schedtest.NewView(4)
	for f := storage.FileID(0); f < 6; f++ {
		v.Sizes[f] = 1e9
		v.Reps[f] = []topology.SiteID{topology.SiteID(int(f) % 4)}
	}
	jobs := batchJobs(100, 500, 200, 300, 50, 400)
	for _, b := range []scheduler.Batch{
		BatchMinMin{AvgComputeSec: 250},
		BatchMaxMin{AvgComputeSec: 250},
		BatchSufferage{AvgComputeSec: 250},
	} {
		got := b.Assign(v, jobs)
		if len(got) != len(jobs) {
			t.Fatalf("%s: %d assignments for %d jobs", b.Name(), len(got), len(jobs))
		}
		for i, s := range got {
			if s < 0 || int(s) >= 4 {
				t.Fatalf("%s: job %d at invalid site %d", b.Name(), i, s)
			}
		}
	}
}

func TestBatchPrefersDataSites(t *testing.T) {
	// With free transfers being expensive and all queues empty, every
	// heuristic should co-locate a job with its (only) replica.
	v := schedtest.NewView(4)
	v.RatePerSec = 1e6 // 1000 s per GB: transfers dominate
	v.Sizes[0] = 1e9
	v.Reps[0] = []topology.SiteID{2}
	jobs := batchJobs(300)
	for _, b := range []scheduler.Batch{
		BatchMinMin{AvgComputeSec: 300},
		BatchMaxMin{AvgComputeSec: 300},
		BatchSufferage{AvgComputeSec: 300},
	} {
		if got := b.Assign(v, jobs); got[0] != 2 {
			t.Fatalf("%s placed job at %d, want data site 2", b.Name(), got[0])
		}
	}
}

func TestBatchSpreadsLoad(t *testing.T) {
	// Many equal jobs whose data is everywhere: assignments should not
	// all land on one site because the ECT estimator charges committed
	// work.
	v := schedtest.NewView(3)
	v.Sizes[0] = 1e9
	v.Reps[0] = []topology.SiteID{0, 1, 2}
	jobs := make([]*job.Job, 9)
	for i := range jobs {
		jobs[i] = job.New(job.ID(i), 0, 0, []storage.FileID{0}, 300)
	}
	got := BatchMinMin{AvgComputeSec: 300}.Assign(v, jobs)
	perSite := map[topology.SiteID]int{}
	for _, s := range got {
		perSite[s]++
	}
	if len(perSite) < 3 {
		t.Fatalf("min-min did not spread: %v", perSite)
	}
}

func TestMinMinShortJobsFirstMaxMinLongJobsFirst(t *testing.T) {
	// One fast site (many CEs) and congested alternatives: the first
	// *scheduled* job claims the emptiest estimate. For Min-Min that is
	// the shortest job; for Max-Min the longest. We detect scheduling
	// order indirectly: with a single site and rising committed load, the
	// first-picked job gets the lowest queue estimate, so for jobs of
	// identical data placement the ordering shows in nothing observable —
	// instead verify the policies differ on a crafted two-site case.
	v := schedtest.NewView(2)
	v.CECounts = map[topology.SiteID]int{0: 1, 1: 1}
	v.Sizes[0] = 1e6
	v.Sizes[1] = 1e6
	v.Reps[0] = []topology.SiteID{0, 1}
	v.Reps[1] = []topology.SiteID{0, 1}
	short := job.New(0, 0, 0, []storage.FileID{0}, 10)
	long := job.New(1, 0, 0, []storage.FileID{1}, 1000)
	jobs := []*job.Job{short, long}

	minmin := BatchMinMin{AvgComputeSec: 500}.Assign(v, jobs)
	maxmin := BatchMaxMin{AvgComputeSec: 500}.Assign(v, jobs)
	// Both must use both sites (spread), but they may disagree on which
	// job gets which; at minimum the assignments are valid and distinct
	// jobs do not pile on one site.
	if minmin[0] == minmin[1] {
		t.Fatalf("min-min piled both jobs on site %d", minmin[0])
	}
	if maxmin[0] == maxmin[1] {
		t.Fatalf("max-min piled both jobs on site %d", maxmin[0])
	}
}

func TestSufferagePicksContestedJobFirst(t *testing.T) {
	// Job A only runs well at site 0 (its data is there, transfers are
	// ruinous); job B's data is everywhere. Sufferage must give A its
	// preferred site even though B was listed first.
	v := schedtest.NewView(2)
	v.RatePerSec = 1e5 // 10000 s per GB
	v.Sizes[0] = 1e9
	v.Sizes[1] = 1e9
	v.Reps[0] = []topology.SiteID{0, 1} // B's file: everywhere
	v.Reps[1] = []topology.SiteID{0}    // A's file: only site 0
	b := job.New(0, 0, 0, []storage.FileID{0}, 300)
	a := job.New(1, 0, 0, []storage.FileID{1}, 300)
	got := BatchSufferage{AvgComputeSec: 300}.Assign(v, []*job.Job{b, a})
	if got[1] != 0 {
		t.Fatalf("sufferage sent the constrained job to %d, want 0", got[1])
	}
}

func TestBatchDeterministic(t *testing.T) {
	v := schedtest.NewView(5)
	for f := storage.FileID(0); f < 8; f++ {
		v.Sizes[f] = 1e9
		v.Reps[f] = []topology.SiteID{topology.SiteID(int(f) % 5)}
	}
	jobs := batchJobs(100, 200, 300, 400, 500, 600, 700, 800)
	a := BatchSufferage{AvgComputeSec: 400}.Assign(v, jobs)
	b := BatchSufferage{AvgComputeSec: 400}.Assign(v, jobs)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("batch assignment not deterministic")
		}
	}
}
