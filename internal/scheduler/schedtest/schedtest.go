// Package schedtest provides a scriptable GridView fake for unit-testing
// scheduling algorithms in isolation from the full simulator.
package schedtest

import (
	"chicsim/internal/rng"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

// View is a fake scheduler.GridView backed by plain maps.
type View struct {
	Topo       *topology.Topology
	Loads      map[topology.SiteID]int
	Reps       map[storage.FileID][]topology.SiteID
	Sizes      map[storage.FileID]float64
	Congest    map[[2]topology.SiteID]int
	CECounts   map[topology.SiteID]int // per-site CEs; absent = 1
	RatePerSec float64                 // bytes/sec used by PredictTransfer; 0 = instant
}

// NewView builds a fake over a star topology with n sites.
func NewView(n int) *View {
	topo, err := topology.NewStar(n, 10e6)
	if err != nil {
		panic(err)
	}
	return &View{
		Topo:       topo,
		Loads:      make(map[topology.SiteID]int),
		Reps:       make(map[storage.FileID][]topology.SiteID),
		Sizes:      make(map[storage.FileID]float64),
		Congest:    make(map[[2]topology.SiteID]int),
		RatePerSec: 10e6,
	}
}

// NewHierView builds a fake over a hierarchical topology.
func NewHierView(sites, fanout int) *View {
	topo, err := topology.NewHierarchical(topology.Config{Sites: sites, RegionFanout: fanout, Bandwidth: 10e6}, rng.New(7))
	if err != nil {
		panic(err)
	}
	v := NewView(1)
	v.Topo = topo
	return v
}

// NumSites implements scheduler.GridView.
func (v *View) NumSites() int { return v.Topo.NumSites() }

// Load implements scheduler.GridView.
func (v *View) Load(s topology.SiteID) int { return v.Loads[s] }

// CEs implements scheduler.GridView.
func (v *View) CEs(s topology.SiteID) int {
	if v.CECounts == nil {
		return 1
	}
	if n, ok := v.CECounts[s]; ok {
		return n
	}
	return 1
}

// Replicas implements scheduler.GridView.
func (v *View) Replicas(f storage.FileID) []topology.SiteID { return v.Reps[f] }

// HasReplica implements scheduler.GridView.
func (v *View) HasReplica(f storage.FileID, s topology.SiteID) bool {
	for _, r := range v.Reps[f] {
		if r == s {
			return true
		}
	}
	return false
}

// FileSize implements scheduler.GridView.
func (v *View) FileSize(f storage.FileID) float64 { return v.Sizes[f] }

// Topology implements scheduler.GridView.
func (v *View) Topology() *topology.Topology { return v.Topo }

// Congestion implements scheduler.GridView.
func (v *View) Congestion(a, b topology.SiteID) int { return v.Congest[[2]topology.SiteID{a, b}] }

// PredictTransfer implements scheduler.GridView.
func (v *View) PredictTransfer(a, b topology.SiteID, size float64) float64 {
	if a == b || v.RatePerSec <= 0 {
		return 0
	}
	return size / v.RatePerSec
}
