package schedtest_test

import (
	"fmt"
	"testing"

	"chicsim/internal/core"
	"chicsim/internal/faults"
	"chicsim/internal/job"
	"chicsim/internal/rng"
	"chicsim/internal/scheduler/es"
	"chicsim/internal/scheduler/schedtest"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

// Every ES policy, wrapped in the fault-recovery contract (es.AvoidFailed
// + faults.RetryPolicy), must resubmit a failed job at most MaxRetries
// times and never to the site the job just failed on — regardless of how
// strongly the inner policy gravitates back (JobLocal always re-picks the
// origin; data-affinity policies chase the inputs' replicas).
func TestESRetryContract(t *testing.T) {
	const maxRetries = 4
	policy := faults.RetryPolicy{MaxRetries: maxRetries, Backoff: 30, BackoffMax: 600}

	for _, name := range core.ExternalNames() {
		t.Run(name, func(t *testing.T) {
			src := rng.New(1).Derive("es")
			inner, err := core.NewExternal(name, src, 300, 3)
			if err != nil {
				t.Fatal(err)
			}
			wrapped := es.AvoidFailed{Inner: inner, Src: rng.New(1).Derive("retry")}

			g := schedtest.NewHierView(6, 3)
			// One input, replicated only at the job's origin, so affinity
			// policies have a strong pull back to the failed site.
			g.Reps[storage.FileID(1)] = []topology.SiteID{0}
			g.Sizes[storage.FileID(1)] = 1e9

			j := job.New(1, 0, 0, []storage.FileID{1}, 300)
			j.Advance(job.Submitted, 0)

			resubmissions := 0
			for {
				target := wrapped.Place(g, j)
				if target < 0 || int(target) >= g.NumSites() {
					t.Fatalf("placed at invalid site %d", target)
				}
				if j.LastFailedSite >= 0 && target == j.LastFailedSite {
					t.Fatalf("resubmission %d landed on the site it just failed on (%d)",
						resubmissions, target)
				}
				// Every placement fails: the target site crashes.
				j.Advance(job.Queued, 0)
				j.Site = target
				j.Fail(target)
				if policy.Exhausted(j.Retries) {
					break
				}
				resubmissions++
			}
			// First placement + up to MaxRetries resubmissions, then abandon.
			if resubmissions != maxRetries {
				t.Errorf("resubmissions = %d, want exactly MaxRetries = %d", resubmissions, maxRetries)
			}
		})
	}
}

// AvoidFailed must leave fresh jobs (no recorded failure) entirely to the
// inner policy: same placements, same RNG consumption.
func TestAvoidFailedTransparentForFreshJobs(t *testing.T) {
	for _, name := range core.ExternalNames() {
		t.Run(name, func(t *testing.T) {
			place := func(wrap bool) []topology.SiteID {
				src := rng.New(9).Derive("es")
				inner, err := core.NewExternal(name, src, 300, 3)
				if err != nil {
					t.Fatal(err)
				}
				var sched = inner
				if wrap {
					sched = es.AvoidFailed{Inner: inner, Src: rng.New(9).Derive("retry")}
				}
				g := schedtest.NewHierView(6, 3)
				g.Reps[storage.FileID(1)] = []topology.SiteID{2}
				g.Sizes[storage.FileID(1)] = 1e9
				var got []topology.SiteID
				for i := 0; i < 20; i++ {
					j := job.New(job.ID(i), 0, topology.SiteID(i%g.NumSites()), []storage.FileID{1}, 300)
					j.Advance(job.Submitted, 0)
					got = append(got, sched.Place(g, j))
				}
				return got
			}
			bare, wrapped := place(false), place(true)
			if fmt.Sprint(bare) != fmt.Sprint(wrapped) {
				t.Errorf("wrapping changed fresh-job placements:\nbare    %v\nwrapped %v", bare, wrapped)
			}
		})
	}
}

// On a single-site grid there is nowhere else to go: AvoidFailed must
// hand back the inner policy's pick rather than loop or panic.
func TestAvoidFailedSingleSite(t *testing.T) {
	src := rng.New(3).Derive("es")
	inner, err := core.NewExternal("JobLocal", src, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := es.AvoidFailed{Inner: inner, Src: rng.New(3).Derive("retry")}
	g := schedtest.NewView(1)
	j := job.New(1, 0, 0, nil, 300)
	j.Advance(job.Submitted, 0)
	j.Advance(job.Queued, 0)
	j.Fail(0)
	if target := wrapped.Place(g, j); target != 0 {
		t.Fatalf("single-site placement = %d", target)
	}
}
