// Package scheduler defines the three scheduling roles of the paper's
// framework — External Scheduler (ES), Local Scheduler (LS), and Dataset
// Scheduler (DS) — as interfaces, plus the grid view they consult.
//
// "Within this framework, scheduling logic is encapsulated in three
// modules" (§3). Concrete algorithms live in the es, ls, and ds
// subpackages; a simulation is configured by picking one implementation of
// each.
package scheduler

import (
	"chicsim/internal/job"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

// GridView is the information a scheduling module may consult: site load,
// replica locations, file metadata, topology, and network conditions. It is
// implemented by the core simulation (backed by the GIS) and kept minimal
// so algorithms remain comparable — an algorithm can only be as informed as
// the paper's information services allow.
type GridView interface {
	// NumSites returns the number of sites on the grid.
	NumSites() int
	// Load returns a site's load (number of jobs waiting to run).
	Load(topology.SiteID) int
	// CEs returns a site's compute-element count (static capacity
	// information any grid information index publishes).
	CEs(topology.SiteID) int
	// Replicas returns the sites currently holding a file, sorted by id.
	Replicas(storage.FileID) []topology.SiteID
	// HasReplica reports whether a site holds a file.
	HasReplica(storage.FileID, topology.SiteID) bool
	// FileSize returns a file's size in bytes.
	FileSize(storage.FileID) float64
	// Topology returns the routed network (for hops and neighbor sets).
	Topology() *topology.Topology
	// Congestion returns the number of active transfers crossing the most
	// loaded link on the route between two sites.
	Congestion(src, dst topology.SiteID) int
	// PredictTransfer estimates seconds to move size bytes between two
	// sites under current conditions.
	PredictTransfer(src, dst topology.SiteID, size float64) float64
}

// External decides, at submission time, which site a job is sent to.
type External interface {
	// Name identifies the algorithm in reports (e.g. "JobDataPresent").
	Name() string
	// Place returns the execution site for a job submitted at j.Origin.
	Place(g GridView, j *job.Job) topology.SiteID
}

// Local orders a site's incoming queue. It selects which queued job a free
// processor should run next.
type Local interface {
	// Name identifies the algorithm in reports (e.g. "FIFO").
	Name() string
	// Next returns the index into queue of the job to run, or -1 when no
	// queued job is eligible. ready reports whether a job's input data is
	// resident at the site; a processor may only run ready jobs (the
	// paper: a processor is idle when "the datasets needed for the jobs
	// in the queue are not yet available").
	Next(queue []*job.Job, ready func(*job.Job) bool) int
}

// PopularFile is a dataset-popularity observation reported by a site to
// its Dataset Scheduler: accesses recorded since the DS last woke.
type PopularFile struct {
	File  storage.FileID
	Count int
	// ByRequester breaks Count down by the site that triggered the
	// access (the execution site of the job, or the site that fetched a
	// copy from here). Used by the DataBestClient extension.
	ByRequester map[topology.SiteID]int
}

// Replication is a DS decision: push File from the deciding site to Target.
type Replication struct {
	File   storage.FileID
	Target topology.SiteID
}

// Batch is an alternative External Scheduler contract for the classical
// batch-mode heuristics the paper contrasts with in §2 (Min-Min/Max-Min
// level-by-level scheduling, AppLeS-style sweeps): jobs accumulate over a
// scheduling window and are assigned together, so the heuristic can reason
// about the whole set. Assign returns one execution site per job, in
// order. Implementations may assume estimates are accurate — exactly the
// assumption the paper's decentralized online policies avoid — which makes
// the comparison an ablation of that assumption.
type Batch interface {
	// Name identifies the algorithm in reports (e.g. "BatchMinMin").
	Name() string
	// Assign maps every job in the batch to a site.
	Assign(g GridView, jobs []*job.Job) []topology.SiteID
}

// Dataset is the asynchronous replication policy run periodically at each
// site. It sees the popularity of locally available datasets and returns
// the replicas to push. Returning nil means no action (DataDoNothing).
type Dataset interface {
	// Name identifies the algorithm in reports (e.g. "DataLeastLoaded").
	Name() string
	// Decide is invoked at each DS wake-up with the files whose recorded
	// access count reached the popularity threshold, most popular first.
	Decide(g GridView, self topology.SiteID, popular []PopularFile) []Replication
}
