package kernelbench

import (
	"fmt"
	"testing"

	"chicsim/internal/netsim"
)

// TestKernelBodiesRunAllocFree pins the zero-alloc contract of the kernel
// hot paths by running the real benchmark bodies and asserting their
// measured allocs/op: steady-state engine stepping and — with the pooled
// flow storage — both reflow policies at every flow tier the suite
// tracks. One-time pool growth before the timer reset is excluded by
// testing.Benchmark itself; growth after it amortizes to zero over the
// benchmark's iteration count.
func TestKernelBodiesRunAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-driven assertions skipped in -short mode")
	}
	bodies := []struct {
		name string
		body func(*testing.B)
	}{
		{"EngineStep", EngineStep},
	}
	for _, p := range []struct {
		label  string
		policy netsim.SharingPolicy
	}{{"ReflowEqualShare", netsim.EqualShare}, {"ReflowMaxMin", netsim.MaxMinFair}} {
		for _, flows := range []int{10, 100, 1000} {
			bodies = append(bodies, struct {
				name string
				body func(*testing.B)
			}{fmt.Sprintf("%s/flows=%d", p.label, flows), Reflow(p.policy, flows)})
		}
	}
	for _, bm := range bodies {
		t.Run(bm.name, func(t *testing.T) {
			br := testing.Benchmark(bm.body)
			if allocs := br.AllocsPerOp(); allocs != 0 {
				t.Errorf("%s: %d allocs/op (%d B/op), want 0", bm.name, allocs, br.AllocedBytesPerOp())
			}
		})
	}
}
