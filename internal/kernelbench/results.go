package kernelbench

import (
	"runtime"
	"testing"

	"chicsim/internal/core"
	"chicsim/internal/desim"
	"chicsim/internal/job"
	"chicsim/internal/metrics"
	"chicsim/internal/rng"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

// ResultsMemory returns a benchmark body that streams `jobs` synthetic
// completed jobs through one metrics.Collector per iteration and then
// Summarizes — the whole results pipeline of a run, isolated from the
// simulation kernel. One Job struct is reused for every synthetic
// completion, so allocs/op and B/op charge the collector alone: full
// mode appends one JobRecord per job (linear in jobs), bounded mode
// touches fixed-size sketches (flat). The run's retained results
// memory is reported as live-results-bytes, measured on the final
// iteration while the collector is still holding its state.
func ResultsMemory(mode string, jobs int) func(*testing.B) {
	return func(b *testing.B) {
		j := job.New(0, 0, 0, make([]storage.FileID, 1), 60)
		j.State = job.Done
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		base := ms.HeapAlloc
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			var c *metrics.Collector
			if mode == core.ResultModeBounded {
				c = metrics.NewBounded(rng.New(1).Derive("results"))
			} else {
				c = metrics.NewCollector()
			}
			for i := 0; i < jobs; i++ {
				j.ID = job.ID(i)
				j.Site = topology.SiteID(i % 30)
				j.Inputs[0] = storage.FileID(i % 997)
				t := desim.Time(i)
				j.SubmitTime = t
				j.DispatchTime = t + 1
				j.DataReady = t + 5
				j.StartTime = t + 10
				j.EndTime = t + 10 + desim.Time(60+i%120)
				c.JobDone(j)
			}
			if n == b.N-1 {
				b.StopTimer()
				runtime.GC()
				runtime.ReadMemStats(&ms)
				live := float64(0)
				if ms.HeapAlloc > base {
					live = float64(ms.HeapAlloc - base)
				}
				b.ReportMetric(live, "live-results-bytes")
				b.StartTimer()
			}
			if res := c.Summarize(float64(jobs)*60, 30); res.JobsDone != jobs {
				b.Fatalf("JobsDone = %d, want %d", res.JobsDone, jobs)
			}
		}
	}
}
