// Package kernelbench holds the simulation-kernel benchmark bodies shared
// between `go test -bench` wrappers (internal/desim, internal/netsim, the
// repo-root suite) and cmd/kernelbench, which runs the same bodies through
// testing.Benchmark and emits BENCH_kernel.json so the kernel's perf
// trajectory is tracked across PRs.
//
// The two microbenchmarks target the hot paths ROADMAP calls out: the
// event queue under schedule/cancel churn (the flow-cancellation matrix
// cancels constantly) and netsim's reflow on every flow admission and
// completion. Sim is the end-to-end anchor, reporting events/sec.
package kernelbench

import (
	"runtime"
	"testing"

	"chicsim/internal/core"
	"chicsim/internal/desim"
	"chicsim/internal/netsim"
	"chicsim/internal/rng"
	"chicsim/internal/topology"
)

// EngineChurn measures the event queue under a schedule/cancel-heavy load:
// every iteration cancels one pending event and schedules a replacement,
// with a Step every fourth iteration so the clock advances and the queue
// drains. A pool of self-rescheduling tickers keeps Step fueled.
func EngineChurn(b *testing.B) {
	e := desim.New()
	const lanes = 512
	evs := make([]desim.Event, lanes)
	fn := func() {}
	var tick func()
	tick = func() { e.Schedule(1, tick) }
	for i := 0; i < 64; i++ {
		e.Schedule(1, tick)
	}
	for i := range evs {
		evs[i] = e.Schedule(desim.Time(1+i%61), fn)
	}
	x := uint64(0x9E3779B97F4A7C15) // xorshift: deterministic lane choice
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		idx := int(x % lanes)
		e.Cancel(evs[idx])
		evs[idx] = e.Schedule(desim.Time(1+x%61), fn)
		if i&3 == 0 {
			e.Step()
		}
	}
}

// EngineStep measures steady-state stepping: a fixed population of
// self-rescheduling events, one Step per iteration. With the pooled
// event queue this path must run at 0 allocs/op.
func EngineStep(b *testing.B) {
	e := desim.New()
	const lanes = 256
	for i := 0; i < lanes; i++ {
		d := desim.Time(1 + i%17)
		var fn func()
		fn = func() { e.Schedule(d, fn) }
		e.Schedule(d, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// Reflow returns a benchmark body measuring one flow admission + one flow
// cancellation against a pool of `flows` concurrent background transfers
// on the paper's 30-site hierarchical topology — exactly the two reflow
// passes every transfer start/abort costs the simulation.
func Reflow(policy netsim.SharingPolicy, flows int) func(*testing.B) {
	return func(b *testing.B) {
		eng := desim.New()
		topo, err := topology.NewHierarchical(
			topology.Config{Sites: 30, RegionFanout: 6, Bandwidth: 10e6}, rng.New(1))
		if err != nil {
			b.Fatal(err)
		}
		n := netsim.New(eng, topo, policy)
		const sites = 30
		x := uint64(0x2545F4914F6CDD1D)
		for i := 0; i < flows; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			src := topology.SiteID(x % sites)
			dst := topology.SiteID((x>>32 + 1 + x%sites) % sites)
			if dst == src {
				dst = (dst + 1) % sites
			}
			// Effectively infinite: background flows never complete.
			n.Transfer(src, dst, 1e15, nil)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := n.Transfer(topology.SiteID(i%sites), topology.SiteID((i+7)%sites), 1e15, nil)
			n.Cancel(f)
		}
	}
}

// Sim is the end-to-end anchor: full default-scenario simulations,
// reporting kernel throughput as events/sec.
func Sim(b *testing.B) {
	cfg := core.DefaultConfig()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := core.RunConfig(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.SimEvents
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
}

// ScaleConfig is the fixed large-grid scenario behind SimScale: a
// 1000-site hierarchy, bounded result mode, with only the job count
// varying across tiers. Exported so tests and ad-hoc tooling can run the
// exact benchmark scenario.
func ScaleConfig(jobs int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Sites = 1000
	cfg.RegionFanout = 25
	cfg.Users = 4000
	cfg.Files = 2000
	cfg.TotalJobs = jobs
	cfg.ResultMode = core.ResultModeBounded
	return cfg
}

// SimScale returns a benchmark body running the ScaleConfig scenario at
// the given job count. Beyond events/sec it reports mallocs/job — total
// heap allocations over the run divided by jobs. Because the slab job
// store, pooled flow records, and scheduler scratch buffers make the
// steady-state loop allocation-free, mallocs/job is dominated by one-time
// setup and falls toward zero as the tier grows; a flat or rising curve
// across 10k→1M is a per-job allocation regression.
func SimScale(jobs int) func(*testing.B) {
	return func(b *testing.B) {
		cfg := ScaleConfig(jobs)
		var events, mallocs uint64
		var ms runtime.MemStats
		for i := 0; i < b.N; i++ {
			runtime.ReadMemStats(&ms)
			before := ms.Mallocs
			res, err := core.RunConfig(cfg)
			if err != nil {
				b.Fatal(err)
			}
			runtime.ReadMemStats(&ms)
			events += res.SimEvents
			mallocs += ms.Mallocs - before
		}
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(events)/s, "events/sec")
		}
		b.ReportMetric(float64(mallocs)/float64(b.N)/float64(jobs), "mallocs/job")
	}
}
