// Package site implements the per-site runtime of the Data Grid: the
// incoming job queue, compute elements, the data-fetch path that overlaps
// transfers with queueing (the paper's "max(queue time, transfer time) +
// compute time" model), dataset pinning, and the popularity bookkeeping
// consumed by the Dataset Scheduler.
package site

import (
	"fmt"
	"sort"

	"chicsim/internal/catalog"
	"chicsim/internal/desim"
	"chicsim/internal/job"
	"chicsim/internal/scheduler"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

// DataMover moves a file between sites on behalf of a site runtime. The
// core simulation implements it over netsim, attributing the traffic to
// job-driven fetches. requester is the job whose arrival triggered the
// fetch (-1 when no single job can be credited, e.g. a restart with no
// waiters), so traces can reconstruct causal fetch→job spans. done fires
// when the last byte arrives.
type DataMover interface {
	Fetch(f storage.FileID, from, to topology.SiteID, requester job.ID, done func())
}

// Config sizes one site.
type Config struct {
	ID       topology.SiteID
	CEs      int     // compute elements ("processors"), paper: 2–5
	Capacity float64 // storage bytes; <= 0 means unlimited
	// OnEvict, when non-nil, observes LRU evictions of cached replicas
	// (in addition to the automatic catalog deregistration).
	OnEvict func(storage.FileID)
	// Speed scales processor performance: a job's wall time is
	// ComputeTime/Speed. <= 0 means 1.0 (the paper's homogeneous grid).
	Speed float64
}

// Site is a single grid site. All methods must be called from simulation
// events (single-threaded).
type Site struct {
	id    topology.SiteID
	ces   int
	speed float64
	eng   *desim.Engine
	topo  *topology.Topology
	cat   *catalog.Catalog
	mover DataMover
	ls    scheduler.Local
	store *storage.Store

	queue    []*job.Job
	busy     int
	waiting  map[storage.FileID][]*job.Job // queued jobs missing this file
	waitPool [][]*job.Job                  // recycled waiter slices (cap reuse)
	fetching map[storage.FileID]bool
	// transient holds files that arrived for waiting jobs but could not be
	// cached (capacity exhausted by pinned data). They live in a staging
	// area, usable by the jobs that needed them, refcounted and discarded
	// afterwards; they are not registered as grid replicas.
	transient map[storage.FileID]int
	holds     int        // outstanding data holds across all jobs here (leak check)
	running   []*job.Job // jobs on CEs; each job's RunEv/RunIdx index into this

	// Pooled completion/arrival records: the per-run and per-fetch
	// callbacks are closures built once per record and recycled, so the
	// steady-state execute and fetch paths allocate nothing.
	runPool []*runRec
	arrPool []*arriveRec

	// Fault state (see faults.go). A down site accepts no work; failedCEs
	// shrinks the schedulable CE count below the nominal ces.
	down      bool
	failedCEs int

	popularity map[storage.FileID]int
	popByReq   map[storage.FileID]map[topology.SiteID]int
	popBuf     []scheduler.PopularFile   // DrainPopularity output, reused per drain
	lentReq    []map[topology.SiteID]int // ByRequester maps lent out until the next drain
	reqPool    []map[topology.SiteID]int // cleared requester maps ready for reuse

	onDone func(*job.Job)

	// Busy-time integral for the idle-time metric.
	busyInt  float64
	lastBusy desim.Time

	fetchesStarted int
}

// New creates a site. onDone fires after each job completes (used by the
// workload driver to submit the user's next job and by metrics).
func New(eng *desim.Engine, topo *topology.Topology, cat *catalog.Catalog, mover DataMover, lsched scheduler.Local, cfg Config, onDone func(*job.Job)) (*Site, error) {
	if cfg.CEs <= 0 {
		return nil, fmt.Errorf("site %d: CEs = %d, must be > 0", cfg.ID, cfg.CEs)
	}
	speed := cfg.Speed
	if speed <= 0 {
		speed = 1
	}
	s := &Site{
		id:         cfg.ID,
		ces:        cfg.CEs,
		speed:      speed,
		eng:        eng,
		topo:       topo,
		cat:        cat,
		mover:      mover,
		ls:         lsched,
		waiting:    make(map[storage.FileID][]*job.Job),
		fetching:   make(map[storage.FileID]bool),
		transient:  make(map[storage.FileID]int),
		popularity: make(map[storage.FileID]int),
		popByReq:   make(map[storage.FileID]map[topology.SiteID]int),
		onDone:     onDone,
	}
	s.store = storage.New(cfg.Capacity, func(f storage.FileID) {
		cat.Deregister(f, s.id)
		if cfg.OnEvict != nil {
			cfg.OnEvict(f)
		}
	})
	return s, nil
}

// ID returns the site id.
func (s *Site) ID() topology.SiteID { return s.id }

// CEs returns the number of compute elements.
func (s *Site) CEs() int { return s.ces }

// Speed returns the processor speed factor (1 = the paper's baseline).
func (s *Site) Speed() float64 { return s.speed }

// QueueLen returns the number of jobs waiting to run — the paper's load
// metric for JobLeastLoaded and DataLeastLoaded.
func (s *Site) QueueLen() int { return len(s.queue) }

// Busy returns the number of occupied compute elements.
func (s *Site) Busy() int { return s.busy }

// DataWaitingJobs returns how many queued jobs are still waiting on at
// least one input transfer (read-only; the monitor's data-stall gauge).
func (s *Site) DataWaitingJobs() int {
	n := 0
	for _, j := range s.queue {
		if !s.jobReady(j) {
			n++
		}
	}
	return n
}

// Store exposes the site's storage (read-mostly; used by setup and tests).
func (s *Site) Store() *storage.Store { return s.store }

// FetchesStarted returns how many job-driven fetches this site initiated.
func (s *Site) FetchesStarted() int { return s.fetchesStarted }

// InstallMaster places a permanent master copy and registers it.
func (s *Site) InstallMaster(f storage.FileID, size float64) error {
	if err := s.store.AddMaster(f, size); err != nil {
		return err
	}
	s.cat.Register(f, s.id)
	return nil
}

// BusyIntegral returns ∫ busy(t) dt over [0, at]. Call from an event at
// time `at` (it settles the integral to the engine's current time).
func (s *Site) BusyIntegral(at desim.Time) float64 {
	s.settleBusy()
	if at != s.lastBusy {
		// Extrapolate a settled integral to `at` with the current busy
		// level (valid only when at == now; guard against misuse).
		panic("site: BusyIntegral must be called at the current virtual time")
	}
	return s.busyInt
}

func (s *Site) settleBusy() {
	now := s.eng.Now()
	s.busyInt += float64(s.busy) * (now - s.lastBusy)
	s.lastBusy = now
}

func (s *Site) setBusy(b int) {
	s.settleBusy()
	s.busy = b
}

// present reports whether f is usable at this site right now.
func (s *Site) present(f storage.FileID) bool {
	return s.store.Peek(f) || s.transient[f] > 0
}

// Enqueue places a dispatched job in the incoming queue, starts fetches for
// missing inputs, and records dataset popularity. Matching the paper, the
// data transfer overlaps with the queue wait.
func (s *Site) Enqueue(j *job.Job) {
	if s.down {
		panic(fmt.Sprintf("site %d: Enqueue while down (the ES must treat a down site as a placement failure)", s.id))
	}
	j.Site = s.id
	j.Advance(job.Queued, s.eng.Now())
	s.queue = append(s.queue, j)
	s.arm(j, true)
	s.trySchedule()
}

// arm takes the data holds a queued job needs: pin present inputs, start
// fetches for missing ones. record controls popularity accounting — true
// on first arrival, false when re-arming after a site recovery (the job
// is not requesting the data again, the site is restoring its own state).
func (s *Site) arm(j *job.Job, record bool) {
	for _, f := range j.Inputs {
		if record {
			s.recordAccess(f, j.Origin)
		}
		if s.store.Contains(f) || s.transient[f] > 0 { // Contains also books the hit/miss
			s.acquire(j, f)
			continue
		}
		w, ok := s.waiting[f]
		if !ok {
			if n := len(s.waitPool); n > 0 {
				w = s.waitPool[n-1]
				s.waitPool[n-1] = nil
				s.waitPool = s.waitPool[:n-1]
			}
		}
		s.waiting[f] = append(w, j)
		if !s.fetching[f] {
			s.startFetch(f, j.ID)
		}
	}
	if s.jobReady(j) {
		j.DataReady = s.eng.Now()
	}
}

// acquire pins (or transient-refs) a present input for a job. The hold
// kind is fixed at acquire time so a later state change (e.g. the file
// getting cached after being staged) cannot unbalance the accounting.
// Holds live on the job itself (job.Hold), so the bookkeeping recycles
// with the job instead of churning a per-site map.
func (s *Site) acquire(j *job.Job, f storage.FileID) {
	ref := job.Hold{File: f}
	if s.store.Peek(f) {
		if err := s.store.Pin(f); err != nil {
			panic(err)
		}
	} else {
		s.transient[f]++
		ref.Transient = true
	}
	j.Holds = append(j.Holds, ref)
	s.holds++
}

func (s *Site) release(j *job.Job) {
	for _, ref := range j.Holds {
		if ref.Transient {
			s.transient[ref.File]--
			if s.transient[ref.File] <= 0 {
				delete(s.transient, ref.File)
			}
			continue
		}
		if err := s.store.Unpin(ref.File); err != nil {
			panic(err)
		}
		s.store.Touch(ref.File) // refresh recency on use
	}
	s.holds -= len(j.Holds)
	j.Holds = j.Holds[:0]
}

// jobReady reports whether all of j's inputs are locally usable.
func (s *Site) jobReady(j *job.Job) bool {
	return len(j.Holds) == len(j.Inputs)
}

// arriveRec is a pooled arrival callback for mover fetches: the closure
// is built once per record and captures the record, not the fetch, so a
// site's steady-state fetch path allocates no per-fetch closures. The
// record frees itself before delivering, making it reusable by any
// cascading fetch the arrival triggers. A record whose fetch never
// completes (transfer aborted by a fault) is simply dropped to the GC —
// the same cost the old per-fetch closure paid on every fetch.
type arriveRec struct {
	s    *Site
	f    storage.FileID
	size float64
	fn   func()
}

func (s *Site) newArriveRec(f storage.FileID, size float64) *arriveRec {
	var r *arriveRec
	if n := len(s.arrPool); n > 0 {
		r = s.arrPool[n-1]
		s.arrPool[n-1] = nil
		s.arrPool = s.arrPool[:n-1]
	} else {
		r = &arriveRec{s: s}
		r.fn = func() {
			f, size := r.f, r.size
			r.s.arrPool = append(r.s.arrPool, r)
			r.s.fileArrived(f, size)
		}
	}
	r.f, r.size = f, size
	return r
}

// startFetch picks the closest replica source and asks the data mover to
// bring the file here on behalf of the requesting job.
func (s *Site) startFetch(f storage.FileID, requester job.ID) {
	src, ok := s.cat.Closest(f, s.id, s.topo)
	if !ok {
		panic(fmt.Sprintf("site %d: no replica of file %d anywhere", s.id, f))
	}
	s.fetching[f] = true
	s.fetchesStarted++
	size, _ := s.cat.Size(f)
	s.mover.Fetch(f, src, s.id, requester, s.newArriveRec(f, size).fn)
}

// fileArrived lands a file (from a fetch or a DS push). It caches the file
// if capacity allows, satisfies waiting jobs, and re-runs the local
// scheduler.
func (s *Site) fileArrived(f storage.FileID, size float64) {
	delete(s.fetching, f)
	waiters := s.waiting[f]
	delete(s.waiting, f)
	if s.store.AddReplica(f, size) {
		s.cat.Register(f, s.id)
	} else if len(waiters) == 0 {
		return // nowhere to cache it and nobody needs it
		// (non-nil waiter slices are never empty, so nothing to recycle)
	}
	// Otherwise stage transiently for the jobs that are waiting.
	now := s.eng.Now()
	for _, j := range waiters {
		if j.State == job.Done {
			continue
		}
		s.acquire(j, f)
		if s.jobReady(j) && j.DataReady < 0 {
			j.DataReady = now
		}
	}
	if waiters != nil {
		s.waitPool = append(s.waitPool, waiters[:0])
	}
	s.trySchedule()
}

// ReceiveReplica lands a pushed replica from a remote Dataset Scheduler.
func (s *Site) ReceiveReplica(f storage.FileID, size float64) {
	s.fileArrived(f, size)
}

// trySchedule assigns free compute elements to ready queued jobs according
// to the local scheduling policy.
func (s *Site) trySchedule() {
	if s.down {
		return
	}
	for s.busy < s.ces-s.failedCEs {
		idx := s.ls.Next(s.queue, s.jobReady)
		if idx < 0 {
			return
		}
		j := s.queue[idx]
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
		s.run(j)
	}
}

// runRec is a pooled completion callback for job execution, recycled the
// same way as arriveRec. A record whose completion event is cancelled by
// a crash or CE failure is dropped to the GC.
type runRec struct {
	s  *Site
	j  *job.Job
	fn func()
}

func (s *Site) newRunRec(j *job.Job) *runRec {
	var r *runRec
	if n := len(s.runPool); n > 0 {
		r = s.runPool[n-1]
		s.runPool[n-1] = nil
		s.runPool = s.runPool[:n-1]
	} else {
		r = &runRec{s: s}
		r.fn = func() {
			j := r.j
			r.j = nil
			r.s.runPool = append(r.s.runPool, r)
			r.s.complete(j)
		}
	}
	r.j = j
	return r
}

func (s *Site) run(j *job.Job) {
	if !s.jobReady(j) {
		panic(fmt.Sprintf("site %d: scheduling job %d without its data", s.id, j.ID))
	}
	j.Advance(job.Running, s.eng.Now())
	s.setBusy(s.busy + 1)
	j.RunEv = s.eng.Schedule(j.ComputeTime/s.speed, s.newRunRec(j).fn)
	j.RunIdx = len(s.running)
	s.running = append(s.running, j)
}

// removeRunning takes a job off the CE list (swap-remove via its RunIdx
// back-pointer) and clears its run bookkeeping.
func (s *Site) removeRunning(j *job.Job) {
	i := j.RunIdx
	if i < 0 || i >= len(s.running) || s.running[i] != j {
		panic(fmt.Sprintf("site %d: running index out of sync for job %d", s.id, j.ID))
	}
	last := len(s.running) - 1
	s.running[i] = s.running[last]
	s.running[i].RunIdx = i
	s.running[last] = nil
	s.running = s.running[:last]
	j.RunIdx = -1
	j.RunEv = desim.Event{}
}

func (s *Site) complete(j *job.Job) {
	s.removeRunning(j)
	j.Advance(job.Done, s.eng.Now())
	s.setBusy(s.busy - 1)
	s.release(j)
	if s.onDone != nil {
		s.onDone(j)
	}
	s.trySchedule()
}

// recordAccess counts one request for f at this site on behalf of
// requester (a job's origin site or a remote fetching site).
func (s *Site) recordAccess(f storage.FileID, requester topology.SiteID) {
	s.popularity[f]++
	m := s.popByReq[f]
	if m == nil {
		if n := len(s.reqPool); n > 0 {
			m = s.reqPool[n-1]
			s.reqPool[n-1] = nil
			s.reqPool = s.reqPool[:n-1]
		} else {
			m = make(map[topology.SiteID]int)
		}
		s.popByReq[f] = m
	}
	m[requester]++
}

// RecordRemoteRequest counts a remote site fetching f from here — a use of
// this site's locally available copy.
func (s *Site) RecordRemoteRequest(f storage.FileID, requester topology.SiteID) {
	s.recordAccess(f, requester)
}

// DeleteReplica removes a cached replica on behalf of the Dataset
// Scheduler ("determines if and when to replicate data and/or delete
// local files", §3). Masters, pinned files, and files a fetch is still
// racing toward are left alone. Reports whether a copy was deleted.
func (s *Site) DeleteReplica(f storage.FileID) bool {
	if s.fetching[f] || len(s.waiting[f]) > 0 {
		return false
	}
	return s.store.RemoveReplica(f)
}

// CachedIdleFiles returns the resident non-master files that are neither
// pinned nor being fetched — the candidates for DS-driven deletion.
func (s *Site) CachedIdleFiles() []storage.FileID {
	var out []storage.FileID
	for _, f := range s.store.Resident() {
		if !s.store.IsMaster(f) && s.store.Pins(f) == 0 && !s.fetching[f] {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DrainPopularity returns and clears the per-file access counts recorded
// since the previous drain, restricted to files locally resident (the DS
// "keeps track of the popularity of each dataset locally available"),
// ordered most-popular first (ties by file id for determinism).
//
// The returned slice and the ByRequester maps inside it are reused
// backing storage: they are valid until the next DrainPopularity call —
// the DS wake that drains them consumes them synchronously.
func (s *Site) DrainPopularity() []scheduler.PopularFile {
	// The previous drain's ByRequester maps have been consumed by now;
	// reclaim them for reuse.
	for i, m := range s.lentReq {
		clear(m)
		s.reqPool = append(s.reqPool, m)
		s.lentReq[i] = nil
	}
	s.lentReq = s.lentReq[:0]

	out := s.popBuf[:0]
	for f, n := range s.popularity {
		if !s.store.Peek(f) {
			continue
		}
		out = append(out, scheduler.PopularFile{File: f, Count: n, ByRequester: s.popByReq[f]})
	}
	// Insertion sort: file ids are unique, so (Count desc, File asc) is a
	// total order and any sort yields the same result as sort.Slice did —
	// without sort.Slice's per-call reflection allocations. Windows are
	// small (files accessed at one site in one DS interval).
	for i := 1; i < len(out); i++ {
		for k := i; k > 0; k-- {
			a, b := out[k-1], out[k]
			if a.Count > b.Count || (a.Count == b.Count && a.File < b.File) {
				break
			}
			out[k-1], out[k] = b, a
		}
	}
	for _, m := range s.popByReq {
		s.lentReq = append(s.lentReq, m)
	}
	clear(s.popByReq)
	clear(s.popularity)
	s.popBuf = out
	return out
}
