package site

import (
	"testing"

	"chicsim/internal/job"
	"chicsim/internal/storage"
)

// A crash kills running jobs, hands them back in job-id order, and drops
// cached replicas while masters survive.
func TestCrashKillsRunningAndDropsCache(t *testing.T) {
	fx := newFixture(t, 2, 0, 50)
	fx.defineFile(t, 1, 1e9, 0) // master here
	fx.defineFile(t, 2, 1e9, 2) // master elsewhere; will be cached

	j1 := fx.submit([]storage.FileID{1}, 300)
	j2 := fx.submit([]storage.FileID{2}, 300)
	// Let the fetch of file 2 complete and both jobs start.
	for fx.site.Busy() < 2 {
		if !fx.eng.Step() {
			t.Fatal("engine drained before both jobs ran")
		}
	}

	running, dropped := fx.site.Crash(true)
	if len(running) != 2 || len(dropped) != 0 {
		t.Fatalf("crash returned %d running, %d dropped", len(running), len(dropped))
	}
	if running[0].ID > running[1].ID {
		t.Error("running jobs not in job-id order")
	}
	if !fx.site.Down() {
		t.Error("site not down after crash")
	}
	if fx.site.Busy() != 0 {
		t.Errorf("busy = %d after crash", fx.site.Busy())
	}
	// Cached copy of file 2 is gone (and deregistered); master 1 survives.
	if fx.site.Store().Contains(2) {
		t.Error("cached replica survived the crash")
	}
	if fx.cat.HasReplica(2, 0) {
		t.Error("crashed site's cached replica still in catalog")
	}
	if !fx.site.Store().Contains(1) {
		t.Error("master copy did not survive the crash")
	}

	// The killed jobs' completion events were cancelled: draining the
	// engine must not complete them.
	fx.eng.Run()
	if len(fx.done) != 0 {
		t.Fatalf("%d jobs completed after their site crashed", len(fx.done))
	}
	if j1.State != job.Running || j2.State != job.Running {
		t.Errorf("killed jobs advanced: %v, %v (caller owns Fail)", j1.State, j2.State)
	}
}

// Queued jobs kept across a crash re-acquire their inputs on recovery
// and finish; the local scheduler resumes.
func TestRecoverRequeuesQueuedJobs(t *testing.T) {
	fx := newFixture(t, 1, 0, 50)
	fx.defineFile(t, 1, 1e9, 0)
	running := fx.submit([]storage.FileID{1}, 300)
	queued := fx.submit([]storage.FileID{1}, 300)
	for fx.site.Busy() < 1 {
		if !fx.eng.Step() {
			t.Fatal("engine drained early")
		}
	}

	got, dropped := fx.site.Crash(true)
	if len(got) != 1 || got[0] != running || len(dropped) != 0 {
		t.Fatalf("crash returned running=%d dropped=%d", len(got), len(dropped))
	}
	if fx.site.QueueLen() != 1 {
		t.Fatalf("queue len = %d, want the kept job", fx.site.QueueLen())
	}

	fx.site.Recover()
	fx.eng.Run()
	if queued.State != job.Done {
		t.Fatalf("requeued job state = %v", queued.State)
	}
	if len(fx.done) != 1 {
		t.Fatalf("done = %d, want just the requeued job", len(fx.done))
	}
}

// Crash with keepQueued=false hands the queued jobs back instead.
func TestCrashDropsQueue(t *testing.T) {
	fx := newFixture(t, 1, 0, 50)
	fx.defineFile(t, 1, 1e9, 0)
	fx.submit([]storage.FileID{1}, 300)
	queued := fx.submit([]storage.FileID{1}, 300)
	for fx.site.Busy() < 1 {
		if !fx.eng.Step() {
			t.Fatal("engine drained early")
		}
	}
	_, dropped := fx.site.Crash(false)
	if len(dropped) != 1 || dropped[0] != queued {
		t.Fatalf("dropped = %v", dropped)
	}
	if fx.site.QueueLen() != 0 {
		t.Errorf("queue len = %d after dropping", fx.site.QueueLen())
	}
}

// A CE failure with a free CE just shrinks capacity; when all CEs are
// busy it kills the most recently dispatched running job. Repair
// restores capacity and resumes scheduling.
func TestCEFailureAndRepair(t *testing.T) {
	fx := newFixture(t, 2, 0, 50)
	fx.defineFile(t, 1, 1e9, 0)
	j1 := fx.submit([]storage.FileID{1}, 300)
	j2 := fx.submit([]storage.FileID{1}, 300)
	waiting := fx.submit([]storage.FileID{1}, 300)
	for fx.site.Busy() < 2 {
		if !fx.eng.Step() {
			t.Fatal("engine drained early")
		}
	}

	// Both CEs busy: the failure must evict the higher-id running job.
	victim, ok := fx.site.FailCE()
	if !ok || victim != j2 {
		t.Fatalf("FailCE = (%v, %v), want j2", victim, ok)
	}
	if fx.site.AvailableCEs() != 1 || fx.site.Busy() != 1 {
		t.Fatalf("available=%d busy=%d after CE failure", fx.site.AvailableCEs(), fx.site.Busy())
	}

	// The surviving CE keeps working: j1 finishes, then the waiting job
	// runs on it.
	fx.eng.Run()
	if j1.State != job.Done || waiting.State != job.Done {
		t.Fatalf("states after drain: j1=%v waiting=%v", j1.State, waiting.State)
	}

	// Fail the last CE while idle: new work must sit queued until repair.
	if v, ok := fx.site.FailCE(); !ok || v != nil {
		t.Fatalf("idle FailCE = (%v, %v)", v, ok)
	}
	if fx.site.AvailableCEs() != 0 {
		t.Fatalf("available = %d with every CE failed", fx.site.AvailableCEs())
	}
	stuck := fx.submit([]storage.FileID{1}, 300)
	fx.eng.Run()
	if stuck.State == job.Done {
		t.Fatal("job ran with every CE failed")
	}
	fx.site.RecoverCE()
	fx.eng.Run()
	if stuck.State != job.Done {
		t.Fatalf("job state = %v after CE repair", stuck.State)
	}

	// Failing every CE reports (nil, false) once none are left.
	fx.site.FailCE()
	if _, ok := fx.site.FailCE(); ok {
		t.Error("FailCE succeeded with no CE left")
	}
}

// RestartFetch re-issues an interrupted fetch only while the site still
// expects the file.
func TestRestartFetch(t *testing.T) {
	fx := newFixture(t, 1, 0, 1000)
	fx.defineFile(t, 1, 1e9, 2)
	j := fx.submit([]storage.FileID{1}, 300)
	// The fetch is now in flight (fakeMover scheduled delivery at 1000).
	if fx.mover.calls != 1 {
		t.Fatalf("fetch calls = %d", fx.mover.calls)
	}
	if !fx.site.RestartFetch(1) {
		t.Fatal("RestartFetch refused a pending fetch")
	}
	if fx.mover.calls != 2 {
		t.Fatalf("fetch calls = %d after restart", fx.mover.calls)
	}
	if fx.site.RestartFetch(2) {
		t.Error("RestartFetch accepted a file the site is not fetching")
	}
	fx.eng.Run()
	if j.State != job.Done {
		t.Fatalf("job state = %v", j.State)
	}
}

// Crash is idempotent and Recover on an up site is a no-op.
func TestCrashRecoverIdempotent(t *testing.T) {
	fx := newFixture(t, 1, 0, 50)
	fx.site.Recover() // up: no-op
	if fx.site.Down() {
		t.Fatal("Recover took an up site down")
	}
	fx.site.Crash(true)
	r, d := fx.site.Crash(true)
	if r != nil || d != nil {
		t.Errorf("second crash returned %v, %v", r, d)
	}
	fx.site.Recover()
	if fx.site.Down() {
		t.Error("site still down after recover")
	}
}
