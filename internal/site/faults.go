package site

import (
	"fmt"
	"sort"

	"chicsim/internal/desim"
	"chicsim/internal/job"
	"chicsim/internal/storage"
)

// This file holds the site's fault surface: whole-site crash/recovery,
// per-CE failure, and fetch restart after an aborted transfer. All of it
// is driven by the core simulation on behalf of internal/faults; the
// methods only mutate local state deterministically and hand affected
// jobs back to the caller, which owns retry policy.

// Down reports whether the site is crashed. A down site schedules
// nothing and accepts no work; its master copies remain reachable (they
// live on the mass-storage system, not the compute front-end).
func (s *Site) Down() bool { return s.down }

// AvailableCEs returns the compute elements currently serviceable:
// nominal CEs minus those taken out by CE failures.
func (s *Site) AvailableCEs() int { return s.ces - s.failedCEs }

// PopularityOf returns the access count recorded for f in the current
// DS window (used to decide whether a lost replica is worth restoring).
func (s *Site) PopularityOf(f storage.FileID) int { return s.popularity[f] }

// Crash takes the site down. Running jobs are killed (their completion
// events cancelled) and returned in job-id order; queued jobs either
// stay in the queue for requeue-on-recovery (keepQueued) or are dropped
// and returned. Cached replicas are lost and deregistered; masters
// survive on mass storage. The caller must cancel in-flight transfers
// involving this site — including DS pushes, whose source pins would
// otherwise block the replica drop — *before* calling Crash.
//
// Returned jobs are left in their Running/Queued states; the caller
// decides their fate (job.Fail + ES retry).
func (s *Site) Crash(keepQueued bool) (running, dropped []*job.Job) {
	if s.down {
		return nil, nil
	}
	// Kill running jobs in deterministic job-id order.
	victims := append([]*job.Job(nil), s.running...)
	sort.Slice(victims, func(i, j int) bool { return victims[i].ID < victims[j].ID })
	for _, j := range victims {
		s.eng.Cancel(j.RunEv)
		j.RunEv = desim.Event{}
		j.RunIdx = -1
		s.release(j)
		running = append(running, j)
	}
	clear(s.running)
	s.running = s.running[:0]
	s.setBusy(0)

	// Queued jobs lose whatever data holds they had; their inputs will be
	// re-acquired on recovery (keepQueued) or at the retry site.
	for _, j := range s.queue {
		s.release(j)
		j.DataReady = -1
	}
	if !keepQueued {
		dropped = s.queue
		s.queue = nil
	}

	// In-flight fetch bookkeeping dies with the site; the core has
	// already cancelled the underlying flows.
	for f, w := range s.waiting {
		s.waitPool = append(s.waitPool, w[:0])
		delete(s.waiting, f)
	}
	clear(s.fetching)
	clear(s.transient)

	// The DS's popularity window is lost with the site. The requester
	// maps are reclaimable immediately: nothing was lent out.
	clear(s.popularity)
	for f, m := range s.popByReq {
		clear(m)
		s.reqPool = append(s.reqPool, m)
		delete(s.popByReq, f)
	}

	if s.holds != 0 {
		panic(fmt.Sprintf("site %d: crash with %d data holds left", s.id, s.holds))
	}

	// Scratch cache is gone: drop every cached (non-master) replica.
	res := s.store.Resident()
	sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
	for _, f := range res {
		if s.store.IsMaster(f) {
			continue
		}
		if !s.store.RemoveReplica(f) {
			panic(fmt.Sprintf("site %d: crash could not drop replica %d (pin leaked across crash)", s.id, f))
		}
	}

	s.down = true
	return running, dropped
}

// Recover brings a crashed site back. Jobs kept in the queue (requeue on
// recovery) re-acquire their inputs — cache hits against surviving
// masters, fetches otherwise — and the local scheduler resumes.
func (s *Site) Recover() {
	if !s.down {
		return
	}
	s.down = false
	for _, j := range s.queue {
		s.arm(j, false)
	}
	s.trySchedule()
}

// FailCE takes one compute element offline. If the remaining CEs cannot
// hold the current running set, the most recently dispatched running job
// (highest id) is killed and returned for the caller to retry elsewhere.
// Reports false if the site is down or has no CE left to fail.
func (s *Site) FailCE() (*job.Job, bool) {
	if s.down || s.failedCEs >= s.ces {
		return nil, false
	}
	s.failedCEs++
	if s.busy <= s.ces-s.failedCEs {
		return nil, true // a free CE absorbed the failure
	}
	var victim *job.Job
	for _, j := range s.running {
		if victim == nil || j.ID > victim.ID {
			victim = j
		}
	}
	s.eng.Cancel(victim.RunEv)
	s.removeRunning(victim)
	s.setBusy(s.busy - 1)
	s.release(victim)
	return victim, true
}

// RecoverCE returns one failed compute element to service. CE repairs
// are independent of site crashes: a CE fixed while its site is down
// counts toward capacity once the site recovers.
func (s *Site) RecoverCE() {
	if s.failedCEs == 0 {
		return
	}
	s.failedCEs--
	if !s.down {
		s.trySchedule()
	}
}

// RestartFetch re-issues an interrupted inbound fetch from the closest
// surviving replica. No-op (false) if the site is down or no longer
// expects the file.
func (s *Site) RestartFetch(f storage.FileID) bool {
	if s.down || !s.fetching[f] {
		return false
	}
	src, ok := s.cat.Closest(f, s.id, s.topo)
	if !ok {
		panic(fmt.Sprintf("site %d: no surviving replica of file %d to restart fetch from", s.id, f))
	}
	// Credit the restart to the first job still waiting on the file; a
	// restart with no waiters has no job to attribute.
	requester := job.ID(-1)
	if ws := s.waiting[f]; len(ws) > 0 {
		requester = ws[0].ID
	}
	size, _ := s.cat.Size(f)
	s.mover.Fetch(f, src, s.id, requester, s.newArriveRec(f, size).fn)
	return true
}
