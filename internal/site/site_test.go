package site

import (
	"testing"

	"chicsim/internal/catalog"
	"chicsim/internal/desim"
	"chicsim/internal/job"
	"chicsim/internal/rng"
	"chicsim/internal/scheduler/ls"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

// fakeMover delivers files after a fixed virtual delay.
type fakeMover struct {
	eng   *desim.Engine
	delay desim.Time
	calls int
}

func (m *fakeMover) Fetch(f storage.FileID, from, to topology.SiteID, requester job.ID, done func()) {
	m.calls++
	m.eng.Schedule(m.delay, done)
}

type fixture struct {
	eng   *desim.Engine
	topo  *topology.Topology
	cat   *catalog.Catalog
	mover *fakeMover
	site  *Site
	done  []*job.Job
}

func newFixture(t *testing.T, ces int, capacity float64, delay desim.Time) *fixture {
	t.Helper()
	fx := &fixture{eng: desim.New(), cat: catalog.New()}
	topo, err := topology.NewHierarchical(topology.Config{Sites: 4, RegionFanout: 2, Bandwidth: 10e6}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	fx.topo = topo
	fx.mover = &fakeMover{eng: fx.eng, delay: delay}
	fx.site, err = New(fx.eng, topo, fx.cat, fx.mover, ls.FIFO{}, Config{ID: 0, CEs: ces, Capacity: capacity},
		func(j *job.Job) { fx.done = append(fx.done, j) })
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

func (fx *fixture) defineFile(t *testing.T, f storage.FileID, size float64, master topology.SiteID) {
	t.Helper()
	if err := fx.cat.DefineFile(f, size); err != nil {
		t.Fatal(err)
	}
	if master == 0 {
		if err := fx.site.InstallMaster(f, size); err != nil {
			t.Fatal(err)
		}
	} else {
		fx.cat.Register(f, master)
	}
}

func (fx *fixture) submit(f []storage.FileID, compute float64) *job.Job {
	j := job.New(job.ID(len(fx.done)+fx.site.QueueLen()+fx.site.Busy()+100), 0, 0, f, compute)
	j.Advance(job.Submitted, fx.eng.Now())
	fx.site.Enqueue(j)
	return j
}

func TestLocalDataRunsImmediately(t *testing.T) {
	fx := newFixture(t, 2, 0, 10)
	fx.defineFile(t, 1, 1e9, 0)
	j := fx.submit([]storage.FileID{1}, 300)
	fx.eng.Run()
	if j.State != job.Done {
		t.Fatalf("job state = %v", j.State)
	}
	if j.StartTime != 0 || j.EndTime != 300 {
		t.Fatalf("start=%v end=%v, want 0/300", j.StartTime, j.EndTime)
	}
	if fx.mover.calls != 0 {
		t.Fatalf("fetched %d times for local data", fx.mover.calls)
	}
	if len(fx.done) != 1 {
		t.Fatalf("done callbacks = %d", len(fx.done))
	}
}

func TestRemoteDataWaitsForTransfer(t *testing.T) {
	fx := newFixture(t, 2, 0, 50)
	fx.defineFile(t, 1, 1e9, 2) // master elsewhere
	j := fx.submit([]storage.FileID{1}, 300)
	fx.eng.Run()
	if j.StartTime != 50 {
		t.Fatalf("start = %v, want 50 (transfer delay)", j.StartTime)
	}
	if j.DataReady != 50 {
		t.Fatalf("DataReady = %v, want 50", j.DataReady)
	}
	if fx.mover.calls != 1 {
		t.Fatalf("fetch calls = %d", fx.mover.calls)
	}
	// The fetched file is now cached and registered as a replica.
	if !fx.cat.HasReplica(1, 0) {
		t.Fatal("fetched file not registered as replica")
	}
}

func TestFetchDeduplication(t *testing.T) {
	fx := newFixture(t, 4, 0, 50)
	fx.defineFile(t, 1, 1e9, 2)
	fx.submit([]storage.FileID{1}, 300)
	fx.submit([]storage.FileID{1}, 300)
	fx.submit([]storage.FileID{1}, 300)
	fx.eng.Run()
	if fx.mover.calls != 1 {
		t.Fatalf("fetch calls = %d, want 1 (deduplicated)", fx.mover.calls)
	}
	if len(fx.done) != 3 {
		t.Fatalf("done = %d", len(fx.done))
	}
}

func TestQueueWaitsForFreeCE(t *testing.T) {
	fx := newFixture(t, 1, 0, 0)
	fx.defineFile(t, 1, 1e9, 0)
	a := fx.submit([]storage.FileID{1}, 100)
	b := fx.submit([]storage.FileID{1}, 100)
	fx.eng.Run()
	if a.StartTime != 0 || b.StartTime != 100 {
		t.Fatalf("starts = %v/%v, want 0/100", a.StartTime, b.StartTime)
	}
	if b.QueueWait() != 100 {
		t.Fatalf("QueueWait = %v", b.QueueWait())
	}
}

func TestMaxQueueTransferOverlap(t *testing.T) {
	// One CE busy for 200 s; remote fetch takes 150 s. The second job's
	// wait is max(queue, transfer) = 200, not 350.
	fx := newFixture(t, 1, 0, 150)
	fx.defineFile(t, 1, 1e9, 0)
	fx.defineFile(t, 2, 1e9, 2)
	a := fx.submit([]storage.FileID{1}, 200)
	b := fx.submit([]storage.FileID{2}, 100)
	fx.eng.Run()
	if a.EndTime != 200 {
		t.Fatalf("a end = %v", a.EndTime)
	}
	if b.StartTime != 200 {
		t.Fatalf("b start = %v, want 200 (transfer overlapped queue wait)", b.StartTime)
	}
	if b.DataReady != 150 {
		t.Fatalf("b DataReady = %v, want 150", b.DataReady)
	}
}

func TestReadyJobOvertakesBlockedHead(t *testing.T) {
	// FIFO over *ready* jobs: a job whose data is present runs while the
	// queue head is still waiting on its transfer.
	fx := newFixture(t, 1, 0, 500)
	fx.defineFile(t, 1, 1e9, 2) // remote, slow
	fx.defineFile(t, 2, 1e9, 0) // local
	blocked := fx.submit([]storage.FileID{1}, 100)
	ready := fx.submit([]storage.FileID{2}, 100)
	fx.eng.Run()
	if ready.StartTime != 0 {
		t.Fatalf("ready job started at %v, want 0", ready.StartTime)
	}
	if blocked.StartTime != 500 {
		t.Fatalf("blocked job started at %v, want 500", blocked.StartTime)
	}
}

func TestProcessorIdleWhileDataMissing(t *testing.T) {
	fx := newFixture(t, 2, 0, 100)
	fx.defineFile(t, 1, 1e9, 2)
	fx.submit([]storage.FileID{1}, 50)
	fx.eng.Run()
	// Busy only during [100, 150] on one CE.
	if got := fx.site.BusyIntegral(fx.eng.Now()); got != 50 {
		t.Fatalf("busy integral = %v, want 50", got)
	}
}

func TestMultiInputJob(t *testing.T) {
	fx := newFixture(t, 1, 0, 100)
	fx.defineFile(t, 1, 1e9, 0)
	fx.defineFile(t, 2, 1e9, 2)
	fx.defineFile(t, 3, 1e9, 3)
	j := fx.submit([]storage.FileID{1, 2, 3}, 60)
	fx.eng.Run()
	if j.State != job.Done {
		t.Fatalf("state = %v", j.State)
	}
	if j.StartTime != 100 {
		t.Fatalf("start = %v, want 100 (both fetches in parallel)", j.StartTime)
	}
	if fx.mover.calls != 2 {
		t.Fatalf("fetch calls = %d, want 2", fx.mover.calls)
	}
}

func TestPinPreventsEvictionWhileQueued(t *testing.T) {
	// Capacity for 1 file beyond the master. Two jobs with different
	// remote inputs: the first's file must not be evicted by the
	// second's arrival before the first job runs.
	fx := newFixture(t, 1, 2.5e9, 0)
	fx.defineFile(t, 1, 1e9, 0) // master: 1 GB of 2.5
	fx.defineFile(t, 2, 1e9, 2)
	fx.defineFile(t, 3, 1e9, 3)
	a := fx.submit([]storage.FileID{2}, 100)
	b := fx.submit([]storage.FileID{3}, 100)
	fx.eng.Run()
	if a.State != job.Done || b.State != job.Done {
		t.Fatalf("states %v %v", a.State, b.State)
	}
	// b's file could not be cached while a's was pinned; it must have
	// gone through the transient staging path and b still completed.
	if len(fx.done) != 2 {
		t.Fatalf("done = %d", len(fx.done))
	}
}

func TestTransientStagingNotRegistered(t *testing.T) {
	fx := newFixture(t, 1, 1e9, 10)
	fx.defineFile(t, 1, 1e9, 0) // master fills capacity entirely
	fx.defineFile(t, 2, 1e9, 2)
	j := fx.submit([]storage.FileID{2}, 100)
	fx.eng.Run()
	if j.State != job.Done {
		t.Fatalf("state = %v", j.State)
	}
	if fx.cat.HasReplica(2, 0) {
		t.Fatal("transient staging must not be registered as a replica")
	}
	if fx.site.Store().Peek(2) {
		t.Fatal("transient file still resident after job done")
	}
}

func TestReceiveReplicaSatisfiesWaiters(t *testing.T) {
	fx := newFixture(t, 1, 0, 1e9) // fetch would take "forever"
	fx.defineFile(t, 1, 1e9, 2)
	j := fx.submit([]storage.FileID{1}, 100)
	// A DS push lands at t=20, long before the fetch would.
	fx.eng.Schedule(20, func() { fx.site.ReceiveReplica(1, 1e9) })
	fx.eng.RunUntil(1000)
	if j.State != job.Done {
		t.Fatalf("state = %v; push did not satisfy waiter", j.State)
	}
	if j.StartTime != 20 {
		t.Fatalf("start = %v, want 20", j.StartTime)
	}
}

func TestPopularityDrain(t *testing.T) {
	fx := newFixture(t, 2, 0, 10)
	fx.defineFile(t, 1, 1e9, 0)
	fx.defineFile(t, 2, 1e9, 0)
	fx.submit([]storage.FileID{1}, 100)
	fx.submit([]storage.FileID{1}, 100)
	fx.submit([]storage.FileID{2}, 100)
	fx.site.RecordRemoteRequest(1, 3)
	pops := fx.site.DrainPopularity()
	if len(pops) != 2 {
		t.Fatalf("pops = %v", pops)
	}
	if pops[0].File != 1 || pops[0].Count != 3 {
		t.Fatalf("top = %+v, want file 1 count 3", pops[0])
	}
	if pops[0].ByRequester[3] != 1 || pops[0].ByRequester[0] != 2 {
		t.Fatalf("ByRequester = %v", pops[0].ByRequester)
	}
	// Drained: second call is empty.
	if got := fx.site.DrainPopularity(); len(got) != 0 {
		t.Fatalf("second drain = %v", got)
	}
}

func TestDrainSkipsNonResident(t *testing.T) {
	fx := newFixture(t, 2, 0, 1e9)
	fx.defineFile(t, 1, 1e9, 2) // remote; fetch won't land during test
	fx.submit([]storage.FileID{1}, 100)
	pops := fx.site.DrainPopularity()
	if len(pops) != 0 {
		t.Fatalf("non-resident file reported popular: %v", pops)
	}
}

func TestDeleteReplicaAndIdleFiles(t *testing.T) {
	fx := newFixture(t, 2, 0, 10)
	fx.defineFile(t, 1, 1e9, 0) // master
	fx.defineFile(t, 2, 1e9, 2) // will be fetched and cached
	fx.defineFile(t, 3, 1e9, 3) // fetch stays in flight
	j := fx.submit([]storage.FileID{2}, 50)
	fx.eng.Run()
	if j.State != job.Done {
		t.Fatal("job not done")
	}
	idle := fx.site.CachedIdleFiles()
	if len(idle) != 1 || idle[0] != 2 {
		t.Fatalf("CachedIdleFiles = %v, want [2]", idle)
	}
	// Masters cannot be deleted; cached replica can.
	if fx.site.DeleteReplica(1) {
		t.Fatal("deleted a master")
	}
	if !fx.site.DeleteReplica(2) {
		t.Fatal("failed to delete idle replica")
	}
	if fx.cat.HasReplica(2, 0) {
		t.Fatal("catalog still lists the deleted replica")
	}
	// A file with a fetch in flight must not be deletable.
	fx.mover.delay = 1e9
	fx.submit([]storage.FileID{3}, 50)
	if fx.site.DeleteReplica(3) {
		t.Fatal("deleted a file with a pending fetch")
	}
}

func TestLoadMetric(t *testing.T) {
	fx := newFixture(t, 1, 0, 1e9)
	fx.defineFile(t, 1, 1e9, 2)
	if fx.site.QueueLen() != 0 {
		t.Fatal("fresh site has load")
	}
	fx.submit([]storage.FileID{1}, 100)
	fx.submit([]storage.FileID{1}, 100)
	if fx.site.QueueLen() != 2 {
		t.Fatalf("load = %d, want 2", fx.site.QueueLen())
	}
}

func TestInvalidCEs(t *testing.T) {
	fx := newFixture(t, 1, 0, 0)
	if _, err := New(fx.eng, fx.topo, fx.cat, fx.mover, ls.FIFO{}, Config{ID: 1, CEs: 0}, nil); err == nil {
		t.Fatal("expected error for 0 CEs")
	}
}

func TestManyJobsConservation(t *testing.T) {
	fx := newFixture(t, 3, 5e9, 25)
	src := rng.New(11)
	for f := storage.FileID(0); f < 10; f++ {
		master := topology.SiteID(0)
		if f%2 == 1 {
			master = topology.SiteID(src.IntRange(1, 3))
		}
		fx.defineFile(t, f, src.Range(0.5e9, 2e9), master)
	}
	const n = 200
	for i := 0; i < n; i++ {
		f := storage.FileID(src.Intn(10))
		delay := src.Range(0, 500)
		fx.eng.Schedule(delay, func() { fx.submit([]storage.FileID{f}, src.Range(10, 300)) })
	}
	fx.eng.Run()
	if len(fx.done) != n {
		t.Fatalf("done = %d, want %d", len(fx.done), n)
	}
	for _, j := range fx.done {
		if j.EndTime < j.StartTime || j.StartTime < j.DispatchTime {
			t.Fatalf("job %d has inverted timestamps", j.ID)
		}
		if d := j.EndTime - j.StartTime - j.ComputeTime; d > 1e-6 || d < -1e-6 {
			t.Fatalf("job %d ran %v, want %v", j.ID, j.EndTime-j.StartTime, j.ComputeTime)
		}
	}
	if fx.site.Busy() != 0 || fx.site.QueueLen() != 0 {
		t.Fatal("site not drained")
	}
}
