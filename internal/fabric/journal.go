package fabric

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"chicsim/internal/experiments"
)

// The queue journal is an append-only JSONL file recording what the
// dispatcher must not lose across a restart: the campaign spec, every
// terminal shard record, and the shard event timeline. Leases themselves
// are deliberately absent — they are soft state that reconstructs itself
// (an in-flight shard simply requeues when the restarted dispatcher
// never sees its heartbeat); "event" entries only narrate that history
// for observability, they never drive scheduling. The schema is
// backward-compatible in both directions: readers skip entry types they
// do not know, and tolerate journals with no events at all.

type journalEntry struct {
	T          string                  `json:"t"` // "spec", "done", "merged", "event"
	CampaignID string                  `json:"campaign_id,omitempty"`
	Spec       *CampaignSpec           `json:"spec,omitempty"`
	Shard      int                     `json:"shard,omitempty"`
	Worker     string                  `json:"worker,omitempty"`
	Host       string                  `json:"host,omitempty"`
	Attempts   int                     `json:"attempts,omitempty"`
	Record     *experiments.CellRecord `json:"record,omitempty"`
	Event      *ShardEvent             `json:"event,omitempty"`
}

type journal struct {
	f   *os.File
	enc *json.Encoder
}

// openJournal opens path for appending, creating it if needed.
func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fabric: opening journal: %w", err)
	}
	return &journal{f: f, enc: json.NewEncoder(f)}, nil
}

// reset truncates the journal (a new campaign replaces a finished one).
func (j *journal) reset() error {
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("fabric: resetting journal: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("fabric: resetting journal: %w", err)
	}
	return nil
}

// append writes one entry and syncs it to disk, so a completed shard
// survives a dispatcher crash immediately after its upload is acked.
func (j *journal) append(e journalEntry) error {
	if err := j.enc.Encode(e); err != nil {
		return fmt.Errorf("fabric: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("fabric: journal sync: %w", err)
	}
	return nil
}

func (j *journal) Close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}

// readJournal parses the journal at path, tolerating a truncated tail
// (a crash mid-append): entries after the first undecodable line are
// dropped and reported via the returned count.
func readJournal(path string) (entries []journalEntry, dropped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("fabric: opening journal: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReader(f))
	for {
		var e journalEntry
		if derr := dec.Decode(&e); derr == io.EOF {
			return entries, false, nil
		} else if derr != nil {
			// Truncated or corrupt tail: keep the intact prefix. The
			// shard whose record was cut off simply re-runs.
			return entries, true, nil
		}
		entries = append(entries, e)
	}
}
