package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client speaks the dispatcher's HTTP/JSON protocol. The zero value is
// not usable; set BaseURL (e.g. "http://127.0.0.1:7171").
type Client struct {
	BaseURL    string
	HTTPClient *http.Client // nil: a client with a 30 s timeout
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) url(path string) string {
	base := strings.TrimSuffix(c.BaseURL, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return base + path
}

// call POSTs in (or GETs when in is nil) and decodes the JSON response
// into out (skipped when out is nil).
func (c *Client) call(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		js, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("fabric: encoding %s request: %w", path, err)
		}
		body = bytes.NewReader(js)
	}
	req, err := http.NewRequest(method, c.url(path), body)
	if err != nil {
		return fmt.Errorf("fabric: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("fabric: %s: %w", path, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("fabric: reading %s response: %w", path, err)
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(payload, &e) == nil && e.Error != "" {
			return fmt.Errorf("fabric: %s: %s", path, e.Error)
		}
		return fmt.Errorf("fabric: %s: HTTP %d", path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("fabric: decoding %s response: %w", path, err)
	}
	return nil
}

// Submit sends a campaign to the dispatcher.
func (c *Client) Submit(spec CampaignSpec) (SubmitResponse, error) {
	var resp SubmitResponse
	err := c.call(http.MethodPost, "/api/submit", spec, &resp)
	return resp, err
}

// Campaign fetches the active campaign spec.
func (c *Client) Campaign() (CampaignDoc, error) {
	var doc CampaignDoc
	err := c.call(http.MethodGet, "/api/campaign", nil, &doc)
	return doc, err
}

// Register announces a worker.
func (c *Client) Register(req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	err := c.call(http.MethodPost, "/api/register", req, &resp)
	return resp, err
}

// Book asks for shards.
func (c *Client) Book(req BookRequest) (BookResponse, error) {
	var resp BookResponse
	err := c.call(http.MethodPost, "/api/book", req, &resp)
	return resp, err
}

// Heartbeat extends the worker's leases.
func (c *Client) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := c.call(http.MethodPost, "/api/heartbeat", req, &resp)
	return resp, err
}

// Result uploads one shard record.
func (c *Client) Result(req ResultRequest) (ResultResponse, error) {
	var resp ResultResponse
	err := c.call(http.MethodPost, "/api/result", req, &resp)
	return resp, err
}

// State fetches the dispatcher state document.
func (c *Client) State() (StateDoc, error) {
	var doc StateDoc
	err := c.call(http.MethodGet, "/api/state", nil, &doc)
	return doc, err
}

// Timeline fetches the campaign's per-shard event history.
func (c *Client) Timeline() (TimelineDoc, error) {
	var doc TimelineDoc
	err := c.call(http.MethodGet, "/api/timeline", nil, &doc)
	return doc, err
}

// Fleet fetches live fleet status.
func (c *Client) Fleet() (FleetDoc, error) {
	var doc FleetDoc
	err := c.call(http.MethodGet, "/api/fleet", nil, &doc)
	return doc, err
}

// Merged downloads the canonical merged JSONL stream.
func (c *Client) Merged() ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, c.url("/api/merged"), nil)
	if err != nil {
		return nil, fmt.Errorf("fabric: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("fabric: /api/merged: %w", err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("fabric: reading merged stream: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("fabric: /api/merged: HTTP %d", resp.StatusCode)
	}
	return payload, nil
}

// ErrCampaignUnknown is returned (wrapped) by WaitMerged when the
// dispatcher answers but has no record of the awaited campaign — the
// signature of a dispatcher restarted without its queue journal. The
// campaign will never merge on its own; resubmit it (or restart the
// dispatcher with -journal pointing at the original file).
var ErrCampaignUnknown = fmt.Errorf("fabric: dispatcher has no record of the campaign (restarted without its journal?)")

// WaitMerged polls the dispatcher until campaignID merges, then returns
// the merged stream. onState, when non-nil, observes every poll (for
// progress display). Transport-level poll errors are tolerated (the
// dispatcher may be momentarily restarting), but a dispatcher that
// answers with no campaign at all fails fast with ErrCampaignUnknown —
// it lost its journal, so the wait would otherwise spin forever; ctx
// bounds the total wait.
func (c *Client) WaitMerged(ctx context.Context, campaignID string, poll time.Duration, onState func(StateDoc)) ([]byte, error) {
	if poll <= 0 {
		poll = time.Second
	}
	for {
		doc, err := c.State()
		if err == nil {
			if onState != nil {
				onState(doc)
			}
			if doc.CampaignID == "" {
				return nil, fmt.Errorf("%w (waiting for %s)", ErrCampaignUnknown, campaignID)
			}
			if doc.CampaignID != campaignID {
				return nil, fmt.Errorf("fabric: dispatcher switched to campaign %s while waiting for %s", doc.CampaignID, campaignID)
			}
			if doc.Phase == "merged" {
				return c.Merged()
			}
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}
