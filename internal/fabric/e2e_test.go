package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"chicsim/internal/experiments"
	"chicsim/internal/obs"
)

// TestFabricGoldenByteIdentical is the fabric's determinism contract: a
// campaign sharded across a dispatcher and two workers — with one worker
// killed mid-campaign so its booked shard requeues onto the survivor —
// must produce a merged JSONL stream byte-identical to the stream a
// single-process campaign writes in canonical cell order.
func TestFabricGoldenByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spec := testSpec(1) // base config only; cells replaced below
	spec.Cells = experiments.PaperCells(10)[:4]
	spec.Seeds = []uint64{1, 2}

	// Single-process reference: the campaign run in one process, records
	// encoded in campaign cell order — exactly what `gridsweep -jsonl`
	// writes with one worker.
	ref := experiments.Run(experiments.Campaign{
		Base: spec.Base, Cells: spec.Cells, Seeds: spec.Seeds, Workers: 2,
	})
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	for i := range ref {
		if ref[i].Err != nil {
			t.Fatalf("reference cell %v: %v", ref[i].Cell, ref[i].Err)
		}
		if err := enc.Encode(experiments.RecordOf(&ref[i])); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "manifest.json")
	mergedPath := filepath.Join(dir, "merged.jsonl")
	d, err := NewDispatcher(Options{
		LeaseSeconds: 1,
		MaxAttempts:  10,
		JournalPath:  filepath.Join(dir, "queue.journal"),
		MergedPath:   mergedPath,
		ManifestPath: manifestPath,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", d)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &Client{BaseURL: srv.Addr()}

	sub, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Worker A books one shard and hangs in it (a stuck or crashed
	// process); we then cancel it, so its heartbeats stop and the lease
	// expires.
	aStarted := make(chan struct{})
	blocked := make(chan struct{})
	defer close(blocked)
	var once sync.Once
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	workerA := &Worker{
		Dispatcher: srv.Addr(),
		Name:       "doomed",
		Capacity:   1,
		Poll:       20 * time.Millisecond,
		Logf:       t.Logf,
		RunShard: func(_ CampaignSpec, _ Shard) experiments.CellRecord {
			once.Do(func() { close(aStarted) })
			<-blocked
			return experiments.CellRecord{}
		},
	}
	errA := make(chan error, 1)
	go func() { errA <- workerA.Run(ctxA) }()

	select {
	case <-aStarted:
	case <-time.After(10 * time.Second):
		t.Fatal("worker A never booked a shard")
	}

	// Worker B does the real work, including the shard A forfeits.
	var bMu sync.Mutex
	var bShards []int
	workerB := &Worker{
		Dispatcher: srv.Addr(),
		Name:       "survivor",
		Capacity:   2,
		Poll:       20 * time.Millisecond,
		Logf:       t.Logf,
		OnShardDone: func(shard Shard, _ experiments.CellRecord) {
			bMu.Lock()
			bShards = append(bShards, shard.Index)
			bMu.Unlock()
		},
	}
	errB := make(chan error, 1)
	go func() { errB <- workerB.Run(context.Background()) }()

	// Kill A mid-campaign: lease on its shard lapses 1 s later and the
	// shard requeues onto B.
	cancelA()
	if err := <-errA; err != context.Canceled {
		t.Fatalf("worker A exit: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	merged, err := client.WaitMerged(ctx, sub.CampaignID, 50*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errB; err != nil {
		t.Fatalf("worker B exit: %v", err)
	}

	if !bytes.Equal(merged, want.Bytes()) {
		t.Fatalf("merged stream differs from single-process reference:\nmerged  %d bytes\nwant    %d bytes", len(merged), want.Len())
	}
	// The -out file carries the same bytes.
	onDisk, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, merged) {
		t.Fatal("merged file on disk differs from served stream")
	}

	// The kill actually exercised the requeue path, and B produced every
	// surviving record.
	st := d.State()
	if st.Requeues < 1 {
		t.Fatalf("requeues = %d, want >= 1 (worker A's shard)", st.Requeues)
	}
	bMu.Lock()
	nB := len(bShards)
	bMu.Unlock()
	if nB != len(spec.Cells) {
		t.Fatalf("worker B uploaded %d shards, want %d", nB, len(spec.Cells))
	}

	// The merged manifest records shard/worker provenance.
	js, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var manifest obs.Manifest
	if err := json.Unmarshal(js, &manifest); err != nil {
		t.Fatal(err)
	}
	if !manifest.Merged {
		t.Fatal("merged manifest not marked merged")
	}
	if len(manifest.Shards) != len(spec.Cells) {
		t.Fatalf("manifest has %d shards, want %d", len(manifest.Shards), len(spec.Cells))
	}
	requeuedSeen := false
	for _, sp := range manifest.Shards {
		if sp.Worker != "survivor" {
			t.Fatalf("shard %d attributed to %q, want survivor", sp.Index, sp.Worker)
		}
		if sp.Attempts > 1 {
			requeuedSeen = true
		}
	}
	if !requeuedSeen {
		t.Fatal("no shard records more than one attempt despite the kill")
	}

	// The timeline recorded the kill cross-process: some shard carries a
	// booked attempt by the doomed worker, a lease expiry, a requeue, and
	// a final upload by the survivor.
	tl := d.Timeline()
	if tl.Phase != "merged" || len(tl.Shards) != len(spec.Cells) {
		t.Fatalf("timeline after merge: phase %s, %d shards", tl.Phase, len(tl.Shards))
	}
	killedShard := -1
	for _, sh := range tl.Shards {
		var sawDoomed, sawExpiry, sawRequeue bool
		lastWorker := ""
		for _, ev := range sh.Events {
			switch ev.Kind {
			case EventBooked:
				if strings.HasSuffix(ev.Worker, "-doomed") {
					sawDoomed = true
				}
			case EventLeaseExpired:
				sawExpiry = true
			case EventRequeued:
				sawRequeue = true
			case EventUploaded:
				lastWorker = ev.Worker
			}
		}
		if sawDoomed && sawExpiry && sawRequeue {
			killedShard = sh.Index
			if !strings.HasSuffix(lastWorker, "-survivor") {
				t.Fatalf("killed shard %d finally uploaded by %q, want the survivor", sh.Index, lastWorker)
			}
		}
	}
	if killedShard < 0 {
		t.Fatalf("no shard's timeline shows the doomed booking + expiry + requeue arc: %+v", tl.Shards)
	}

	// The Chrome export puts the killed attempt (aborted) on the doomed
	// worker's lane, the retry on the survivor's, and a lease-expiry
	// marker in between.
	spans, markers := FleetTraceData(tl)
	var doomedAborted, survivorRun, expiryMarker bool
	for _, sp := range spans {
		ab, _ := sp.Args["aborted"].(bool)
		if strings.HasSuffix(sp.Worker, "-doomed") && ab {
			doomedAborted = true
		}
		if strings.HasSuffix(sp.Worker, "-survivor") {
			survivorRun = true
		}
	}
	for _, m := range markers {
		if m.Name == EventLeaseExpired {
			expiryMarker = true
		}
	}
	if !doomedAborted || !survivorRun || !expiryMarker {
		t.Fatalf("fleet trace incomplete: doomedAborted=%v survivorRun=%v expiryMarker=%v",
			doomedAborted, survivorRun, expiryMarker)
	}

	// The fabric metrics agree with the story the timeline tells.
	mustMetric := func(name string, min float64, labels ...string) {
		t.Helper()
		v, ok := d.Registry().Value(name, labels...)
		if !ok || v < min {
			t.Fatalf("%s%v = %v (ok=%v), want >= %v", name, labels, v, ok, min)
		}
	}
	mustMetric("fabric_lease_expiries_total", 1)
	mustMetric("fabric_shards", float64(len(spec.Cells)), "completed")
	mustMetric("fabric_journal_appends_total", float64(len(spec.Cells)))

	// The streamed bytes parse back into the reference aggregates.
	results, err := experiments.ReadStream(bytes.NewReader(merged))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ref) {
		t.Fatalf("merged stream has %d cells, want %d", len(results), len(ref))
	}
	for i := range results {
		if results[i].Cell != ref[i].Cell {
			t.Fatalf("cell %d out of canonical order: %v, want %v", i, results[i].Cell, ref[i].Cell)
		}
	}
}

// TestExecuteShardMatchesSingleProcess pins the worker-side determinism
// half of the golden contract at the unit level: ExecuteShard's record
// for one cell is byte-identical to the record a whole-campaign run
// produces for that cell.
func TestExecuteShardMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spec := testSpec(1)
	spec.Cells = []experiments.Cell{
		{ES: "JobDataPresent", DS: "DataLeastLoaded", BandwidthMBps: 10},
		{ES: "JobRandom", DS: "DataRandom", BandwidthMBps: 10},
	}
	spec.Seeds = []uint64{1, 2}

	ref := experiments.Run(experiments.Campaign{
		Base: spec.Base, Cells: spec.Cells, Seeds: spec.Seeds, Workers: 4,
	})
	for i, cell := range spec.Cells {
		got := ExecuteShard(spec, Shard{Index: i, Cell: cell})
		wantJS, err := json.Marshal(experiments.RecordOf(&ref[i]))
		if err != nil {
			t.Fatal(err)
		}
		gotJS, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJS, wantJS) {
			t.Fatalf("cell %v: shard record differs from single-process record", cell)
		}
	}
}
