package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"sync"
	"time"

	"chicsim/internal/experiments"
	"chicsim/internal/obs"
	"chicsim/internal/obs/logging"
	"chicsim/internal/obs/registry"
)

// Options configures a Dispatcher. The zero value is usable: 60 s
// leases, 5 attempts per shard, no journal, no output files.
type Options struct {
	// LeaseSeconds is how long a booked/executing shard may go without a
	// heartbeat before it is requeued. Default 60.
	LeaseSeconds float64

	// MaxAttempts bounds how many times one shard may be booked before
	// the dispatcher gives up and marks it failed (with a synthesized
	// error record, so the campaign still completes). Default 5.
	MaxAttempts int

	// JournalPath, when non-empty, persists the campaign spec, every
	// terminal shard record, and the shard event timeline to an
	// append-only JSONL file; NewDispatcher resumes from it if it
	// already holds a campaign.
	JournalPath string

	// MergedPath, when non-empty, receives the merged canonical JSONL
	// stream the moment the last shard completes.
	MergedPath string

	// ManifestPath, when non-empty, receives a run manifest marked as
	// merged, with per-shard worker provenance.
	ManifestPath string

	// Logger, when non-nil, receives structured operational log lines
	// with campaign/shard/worker attributes.
	Logger *slog.Logger

	// Logf, when non-nil and Logger is nil, receives the same lines
	// through a printf-style adapter (tests pass t.Logf here).
	Logf func(format string, args ...any)

	// Now is the clock (tests inject a fake one). Default time.Now.
	Now func() time.Time
}

type shardInfo struct {
	Shard
	State       ShardState
	Worker      string // current or last owner
	WorkerName  string
	Host        string
	Attempts    int
	LeaseExpiry time.Time
	Record      *experiments.CellRecord
	Events      []ShardEvent
}

type workerInfo struct {
	ID          string
	Name        string
	Host        string
	Capacity    int
	LastSeen    time.Time
	FirstBooked time.Time
	ShardsDone  int
}

// Dispatcher owns the shard queue for one campaign at a time. All methods
// are safe for concurrent use; every mutating entry point first expires
// stale leases, so liveness needs no background goroutine — any worker
// polling for work (or any client polling state) drives requeues.
type Dispatcher struct {
	opts Options
	log  *slog.Logger
	reg  *registry.Registry

	booked, requeued, dupes, stale registry.Counter
	completedC, failedC, regC      registry.Counter
	heartbeats, leaseExpiries      registry.Counter
	poisonedC, journalAppends      registry.Counter
	remainingG                     registry.Gauge
	stateG                         [5]registry.Gauge // indexed by ShardState
	liveG, deadG                   registry.Gauge
	fsyncH                         registry.Histogram

	mu         sync.Mutex
	campaignID string
	spec       *CampaignSpec
	manifest   *obs.Manifest
	shards     []*shardInfo
	queue      []int // queued shard indexes, kept sorted ascending
	workers    map[string]*workerInfo
	nextWorker int
	remaining  int // shards not yet terminal
	nRequeues  int
	nDupes     int
	merged     []byte // canonical JSONL, set when remaining hits 0
	publish    func(event string, data any)
}

// NewDispatcher creates a dispatcher and, when opts.JournalPath names an
// existing journal with a campaign in it, resumes that campaign:
// completed shards keep their records and event histories, everything
// else requeues (with a requeued timeline event marking the takeover).
func NewDispatcher(opts Options) (*Dispatcher, error) {
	if opts.LeaseSeconds <= 0 {
		opts.LeaseSeconds = 60
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Logger == nil {
		opts.Logger = logging.Logf(opts.Logf)
	}
	d := &Dispatcher{
		opts:    opts,
		log:     opts.Logger,
		reg:     registry.New(),
		workers: make(map[string]*workerInfo),
	}
	d.booked = d.reg.Counter("fabric_shards_booked_total", "Shards leased to workers (rebookings included).").With()
	d.requeued = d.reg.Counter("fabric_shards_requeued_total", "Shards whose lease expired and went back to the queue.").With()
	rt := d.reg.Counter("fabric_results_total", "Shard result uploads, by outcome.", "status")
	d.completedC, d.failedC = rt.With("ok"), rt.With("failed")
	d.dupes, d.stale = rt.With("duplicate"), rt.With("stale")
	d.regC = d.reg.Counter("fabric_workers_registered_total", "Worker registrations accepted.").With()
	d.heartbeats = d.reg.Counter("fabric_heartbeats_total", "Worker heartbeats received.").With()
	d.leaseExpiries = d.reg.Counter("fabric_lease_expiries_total", "Shard leases that lapsed without a heartbeat.").With()
	d.poisonedC = d.reg.Counter("fabric_shards_poisoned_total", "Shards abandoned after exhausting MaxAttempts bookings.").With()
	d.journalAppends = d.reg.Counter("fabric_journal_appends_total", "Entries fsynced to the queue journal.").With()
	d.remainingG = d.reg.Gauge("fabric_shards_remaining", "Shards not yet in a terminal state.").With()
	sg := d.reg.Gauge("fabric_shards", "Shards by lifecycle state.", "state")
	for st := Queued; st <= Failed; st++ {
		d.stateG[st] = sg.With(st.String())
	}
	wg := d.reg.Gauge("fabric_workers", "Registered workers by liveness (live = heartbeat within one lease).", "liveness")
	d.liveG, d.deadG = wg.With("live"), wg.With("dead")
	d.fsyncH = d.reg.Histogram("fabric_journal_fsync_seconds", "Latency of one journal append incl. fsync.",
		[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1}).With()

	if opts.JournalPath != "" {
		if err := d.loadJournal(opts.JournalPath); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Registry exposes the dispatcher's metrics for /metrics.
func (d *Dispatcher) Registry() *registry.Registry { return d.reg }

// SetPublish wires an event sink (the monitor's SSE Publish); may be nil.
func (d *Dispatcher) SetPublish(fn func(event string, data any)) {
	d.mu.Lock()
	d.publish = fn
	d.mu.Unlock()
}

func (d *Dispatcher) emit(event string, data any) {
	if d.publish != nil {
		d.publish(event, data)
	}
}

// eventLocked appends one timeline event to a shard's history and
// returns the journal entry that persists it.
func (d *Dispatcher) eventLocked(si *shardInfo, kind, worker string) journalEntry {
	ev := ShardEvent{T: d.opts.Now(), Kind: kind, Worker: worker, Attempt: si.Attempts}
	si.Events = append(si.Events, ev)
	return journalEntry{T: "event", Shard: si.Index, Event: &ev}
}

// journalAppend fsyncs entries to the queue journal (when configured),
// tracking append counts and fsync latency.
func (d *Dispatcher) journalAppend(entries ...journalEntry) {
	if d.opts.JournalPath == "" || len(entries) == 0 {
		return
	}
	j, err := openJournal(d.opts.JournalPath)
	if err != nil {
		d.log.Error("journal open failed", "campaign", d.campaignID, "err", err)
		return
	}
	defer j.Close()
	for _, e := range entries {
		t0 := time.Now()
		if err := j.append(e); err != nil {
			d.log.Error("journal append failed", "campaign", d.campaignID, "err", err)
			return
		}
		d.journalAppends.Inc()
		d.fsyncH.Observe(time.Since(t0).Seconds())
	}
}

// loadJournal replays a journal into dispatcher state (called before the
// dispatcher serves, so no locking needed).
func (d *Dispatcher) loadJournal(path string) error {
	entries, truncated, err := readJournal(path)
	if err != nil {
		return err
	}
	if truncated {
		d.log.Warn("journal has a truncated tail; dropping it", "path", path)
	}
	for _, e := range entries {
		switch e.T {
		case "spec":
			if e.Spec == nil {
				return fmt.Errorf("fabric: journal spec entry without a spec")
			}
			d.installCampaign(e.Spec, e.CampaignID)
		case "done":
			if d.spec == nil || e.Shard < 0 || e.Shard >= len(d.shards) || e.Record == nil {
				return fmt.Errorf("fabric: journal done entry out of order or out of range (shard %d)", e.Shard)
			}
			si := d.shards[e.Shard]
			if si.State == Completed || si.State == Failed {
				continue // duplicate journal line; first record wins
			}
			si.Record = e.Record
			si.Worker, si.WorkerName, si.Host, si.Attempts = e.Worker, e.Worker, e.Host, e.Attempts
			if e.Record.Err != "" {
				si.State = Failed
			} else {
				si.State = Completed
			}
			d.remaining--
			d.dequeue(e.Shard)
		case "event":
			if d.spec == nil || e.Shard < 0 || e.Shard >= len(d.shards) || e.Event == nil {
				continue // tolerate stray events; the timeline is advisory
			}
			si := d.shards[e.Shard]
			si.Events = append(si.Events, *e.Event)
			// Booked events restore attempt/owner provenance for shards
			// that were in flight at the crash.
			if e.Event.Kind == EventBooked && si.State == Queued {
				si.Attempts = e.Event.Attempt
				si.Worker = e.Event.Worker
			}
		case "merged":
			// Informational; the merge re-derives from the shard records.
		}
	}
	if d.spec != nil {
		// Shards that were mid-flight when the dispatcher died requeue;
		// stamp the takeover so the timeline records the lost attempt.
		var requeues []journalEntry
		for _, si := range d.shards {
			if si.State != Queued || len(si.Events) == 0 {
				continue
			}
			if last := si.Events[len(si.Events)-1].Kind; last == EventBooked || last == EventExecuting {
				requeues = append(requeues, d.eventLocked(si, EventRequeued, si.Worker))
			}
		}
		d.journalAppend(requeues...)
		d.syncGaugesLocked()
		d.log.Info("resumed campaign from journal",
			"campaign", d.campaignID, "path", path,
			"done", len(d.shards)-d.remaining, "shards", len(d.shards))
		if d.remaining == 0 {
			d.mergeLocked()
		}
	}
	return nil
}

// installCampaign resets shard state for a (validated) spec. Caller holds
// the lock (or is pre-serve).
func (d *Dispatcher) installCampaign(spec *CampaignSpec, id string) {
	if id == "" {
		id = spec.ID()
	}
	d.campaignID = id
	d.spec = spec
	d.shards = make([]*shardInfo, len(spec.Cells))
	d.queue = d.queue[:0]
	for i, cell := range spec.Cells {
		d.shards[i] = &shardInfo{Shard: Shard{Index: i, Cell: cell}}
		d.queue = append(d.queue, i)
	}
	d.remaining = len(d.shards)
	d.merged = nil
	d.nRequeues, d.nDupes = 0, 0
	d.syncGaugesLocked()
	if d.opts.ManifestPath != "" {
		m, err := obs.NewManifest("griddispatch", spec.Base, spec.Seeds)
		if err != nil {
			d.log.Error("manifest failed", "campaign", id, "err", err)
		} else {
			m.SetExtra("campaign_id", id)
			m.SetExtra("cells", len(spec.Cells))
			d.manifest = m
		}
	}
}

// syncGaugesLocked refreshes the shard-state and worker-liveness gauges
// from current state. Cheap enough to run on every API entry.
func (d *Dispatcher) syncGaugesLocked() {
	var counts [5]int
	for _, si := range d.shards {
		counts[si.State]++
	}
	for st := Queued; st <= Failed; st++ {
		d.stateG[st].Set(float64(counts[st]))
	}
	now := d.opts.Now()
	live, dead := 0, 0
	for _, w := range d.workers {
		if d.liveLocked(w, now) {
			live++
		} else {
			dead++
		}
	}
	d.liveG.Set(float64(live))
	d.deadG.Set(float64(dead))
	d.remainingG.Set(float64(d.remaining))
}

// dequeue removes one index from the queue if present.
func (d *Dispatcher) dequeue(idx int) {
	for i, q := range d.queue {
		if q == idx {
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			return
		}
	}
}

// Submit installs a campaign. Identical respecs (same ID) attach to the
// existing campaign — the idempotent resume path. A different campaign is
// rejected while one is still running, and replaces it once merged.
func (d *Dispatcher) Submit(spec CampaignSpec) (SubmitResponse, error) {
	if err := spec.Validate(); err != nil {
		return SubmitResponse{}, err
	}
	id := spec.ID()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.spec != nil {
		if id == d.campaignID {
			return SubmitResponse{CampaignID: id, Resumed: true}, nil
		}
		if d.remaining > 0 {
			return SubmitResponse{}, fmt.Errorf("fabric: campaign %s still running (%d shards open)", d.campaignID, d.remaining)
		}
	}
	if d.opts.JournalPath != "" {
		// One journal holds one campaign: truncate before installing.
		j, err := openJournal(d.opts.JournalPath)
		if err != nil {
			return SubmitResponse{}, err
		}
		if err := j.reset(); err != nil {
			j.Close()
			return SubmitResponse{}, err
		}
		if err := j.append(journalEntry{T: "spec", CampaignID: id, Spec: &spec}); err != nil {
			j.Close()
			return SubmitResponse{}, err
		}
		j.Close()
	}
	d.installCampaign(&spec, id)
	entries := make([]journalEntry, 0, len(d.shards))
	for _, si := range d.shards {
		entries = append(entries, d.eventLocked(si, EventQueued, ""))
	}
	d.journalAppend(entries...)
	d.log.Info("campaign submitted", "campaign", id, "cells", len(spec.Cells), "seeds", len(spec.Seeds))
	d.emit("campaign_submitted", map[string]any{"campaign_id": id, "cells": len(spec.Cells)})
	d.emit("fleet", d.fleetLocked())
	return SubmitResponse{CampaignID: id}, nil
}

// Campaign returns the active campaign spec.
func (d *Dispatcher) Campaign() (CampaignDoc, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.spec == nil {
		return CampaignDoc{}, fmt.Errorf("fabric: no campaign submitted")
	}
	return CampaignDoc{CampaignID: d.campaignID, Spec: *d.spec}, nil
}

// Register admits a worker and assigns its ID.
func (d *Dispatcher) Register(req RegisterRequest) RegisterResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextWorker++
	id := fmt.Sprintf("w%d-%s", d.nextWorker, req.Name)
	cap := req.Capacity
	if cap <= 0 {
		cap = 1
	}
	d.workers[id] = &workerInfo{ID: id, Name: req.Name, Host: req.Host, Capacity: cap, LastSeen: d.opts.Now()}
	d.regC.Inc()
	d.syncGaugesLocked()
	d.log.Info("worker registered", "campaign", d.campaignID, "worker", id, "host", req.Host, "capacity", cap)
	d.emit("worker_registered", map[string]any{"worker": id, "host": req.Host, "capacity": cap})
	d.emit("fleet", d.fleetLocked())
	return RegisterResponse{WorkerID: id, LeaseSeconds: d.opts.LeaseSeconds}
}

// Book leases up to req.Max queued shards to a worker.
func (d *Dispatcher) Book(req BookRequest) (BookResponse, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLeasesLocked()
	w, ok := d.workers[req.WorkerID]
	if !ok {
		return BookResponse{}, fmt.Errorf("fabric: unknown worker %q (register first)", req.WorkerID)
	}
	w.LastSeen = d.opts.Now()
	resp := BookResponse{BackoffSeconds: 1}
	if d.spec == nil {
		d.syncGaugesLocked()
		return resp, nil
	}
	resp.CampaignID = d.campaignID
	resp.Done = d.remaining == 0
	n := req.Max
	if n <= 0 {
		n = 1
	}
	expiry := d.opts.Now().Add(time.Duration(d.opts.LeaseSeconds * float64(time.Second)))
	var entries []journalEntry
	for len(resp.Shards) < n && len(d.queue) > 0 {
		idx := d.queue[0]
		d.queue = d.queue[1:]
		si := d.shards[idx]
		si.State = Booked
		si.Worker, si.WorkerName, si.Host = w.ID, w.Name, w.Host
		si.Attempts++
		si.LeaseExpiry = expiry
		resp.Shards = append(resp.Shards, si.Shard)
		entries = append(entries, d.eventLocked(si, EventBooked, w.ID))
		d.booked.Inc()
	}
	if len(resp.Shards) > 0 {
		if w.FirstBooked.IsZero() {
			w.FirstBooked = d.opts.Now()
		}
		resp.LeaseSeconds = d.opts.LeaseSeconds
		resp.BackoffSeconds = 0
		d.journalAppend(entries...)
		d.emit("shards_booked", map[string]any{"worker": w.ID, "count": len(resp.Shards)})
	}
	d.syncGaugesLocked()
	return resp, nil
}

// Heartbeat extends leases on the listed shards and flags lost ones. A
// shard's first heartbeat moves it booked → executing on the timeline.
func (d *Dispatcher) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLeasesLocked()
	w, ok := d.workers[req.WorkerID]
	if !ok {
		return HeartbeatResponse{}, fmt.Errorf("fabric: unknown worker %q", req.WorkerID)
	}
	now := d.opts.Now()
	w.LastSeen = now
	d.heartbeats.Inc()
	expiry := now.Add(time.Duration(d.opts.LeaseSeconds * float64(time.Second)))
	var resp HeartbeatResponse
	var entries []journalEntry
	for _, idx := range req.Executing {
		if idx < 0 || idx >= len(d.shards) {
			continue
		}
		si := d.shards[idx]
		if si.Worker == w.ID && (si.State == Booked || si.State == Executing) {
			if si.State == Booked {
				entries = append(entries, d.eventLocked(si, EventExecuting, w.ID))
			}
			si.State = Executing
			si.LeaseExpiry = expiry
		} else {
			resp.Lost = append(resp.Lost, idx)
		}
	}
	d.journalAppend(entries...)
	d.syncGaugesLocked()
	return resp, nil
}

// Result ingests one shard's uploaded record. At-least-once delivery
// means duplicates (upload retries, or a lease-expired shard finishing on
// two workers) are expected: the first record for a cell wins — safe
// because determinism makes every copy byte-identical — and later copies
// are acked as duplicates so the worker stops retrying.
func (d *Dispatcher) Result(req ResultRequest) (ResultResponse, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLeasesLocked()
	if w, ok := d.workers[req.WorkerID]; ok {
		w.LastSeen = d.opts.Now()
	}
	if d.spec == nil || req.CampaignID != d.campaignID {
		d.stale.Inc()
		return ResultResponse{Stale: true}, nil
	}
	if req.Shard < 0 || req.Shard >= len(d.shards) {
		return ResultResponse{}, fmt.Errorf("fabric: shard %d out of range", req.Shard)
	}
	si := d.shards[req.Shard]
	if si.Cell != req.Record.Cell {
		return ResultResponse{}, fmt.Errorf("fabric: shard %d record is for cell %v, want %v", req.Shard, req.Record.Cell, si.Cell)
	}
	if si.State == Completed || si.State == Failed {
		d.nDupes++
		d.dupes.Inc()
		return ResultResponse{Duplicate: true}, nil
	}
	rec := req.Record
	si.Worker = req.WorkerID
	if w, ok := d.workers[req.WorkerID]; ok {
		si.WorkerName, si.Host = w.Name, w.Host
		w.ShardsDone++
	}
	d.finishLocked(si, &rec, EventUploaded, req.WorkerID)
	d.syncGaugesLocked()
	return ResultResponse{}, nil
}

// finishLocked moves a shard to its terminal state with rec as its
// merged record, journals the record plus the closing timeline event,
// and merges the campaign when it was last.
func (d *Dispatcher) finishLocked(si *shardInfo, rec *experiments.CellRecord, evKind, worker string) {
	si.Record = rec
	if rec.Err != "" {
		si.State = Failed
		d.failedC.Inc()
	} else {
		si.State = Completed
		d.completedC.Inc()
	}
	d.dequeue(si.Index)
	d.remaining--
	d.journalAppend(
		d.eventLocked(si, evKind, worker),
		journalEntry{
			T: "done", Shard: si.Index, Worker: si.WorkerName,
			Host: si.Host, Attempts: si.Attempts, Record: rec,
		})
	d.log.Info("shard terminal",
		"campaign", d.campaignID, "shard", si.Index, "cell", si.Cell.String(),
		"state", si.State.String(), "worker", si.Worker,
		"done", len(d.shards)-d.remaining, "shards", len(d.shards))
	d.emit("shard_done", map[string]any{
		"shard": si.Index, "cell": si.Cell.String(), "state": si.State.String(), "worker": si.Worker,
	})
	d.emit("fleet", d.fleetLocked())
	if d.remaining == 0 {
		d.mergeLocked()
	}
}

// expireLeasesLocked requeues booked/executing shards whose lease lapsed
// (worker crash or kill); a shard that has burnt MaxAttempts bookings is
// failed with a synthesized error record instead, so the campaign always
// reaches a terminal state.
func (d *Dispatcher) expireLeasesLocked() {
	if d.spec == nil || d.remaining == 0 {
		return
	}
	now := d.opts.Now()
	requeued := false
	for _, si := range d.shards {
		if (si.State != Booked && si.State != Executing) || now.Before(si.LeaseExpiry) {
			continue
		}
		d.leaseExpiries.Inc()
		if si.Attempts >= d.opts.MaxAttempts {
			d.poisonedC.Inc()
			d.log.Warn("shard poisoned",
				"campaign", d.campaignID, "shard", si.Index, "cell", si.Cell.String(),
				"attempts", si.Attempts, "worker", si.Worker)
			rec := experiments.CellRecord{
				Cell: si.Cell,
				Err:  fmt.Sprintf("fabric: shard abandoned after %d lease expiries (last worker %s)", si.Attempts, si.Worker),
			}
			d.finishLocked(si, &rec, EventPoisoned, si.Worker)
			continue
		}
		si.State = Queued
		expired := d.eventLocked(si, EventLeaseExpired, si.Worker)
		requeuedEv := d.eventLocked(si, EventRequeued, si.Worker)
		si.LeaseExpiry = time.Time{}
		d.queue = append(d.queue, si.Index)
		d.nRequeues++
		d.requeued.Inc()
		requeued = true
		d.journalAppend(expired, requeuedEv)
		d.log.Warn("shard lease expired; requeued",
			"campaign", d.campaignID, "shard", si.Index, "cell", si.Cell.String(),
			"worker", si.Worker, "attempt", si.Attempts, "max_attempts", d.opts.MaxAttempts)
		d.emit("shard_requeued", map[string]any{"shard": si.Index, "worker": si.Worker})
		d.emit("fleet", d.fleetLocked())
	}
	if requeued {
		// Keep the queue in campaign order so work drains canonically.
		sort.Ints(d.queue)
	}
}

// mergeLocked reorders the terminal shard records into canonical campaign
// order and encodes them exactly as a single-process StreamWriter would,
// so the merged stream is byte-identical to `gridsweep -jsonl` output.
func (d *Dispatcher) mergeLocked() {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, si := range d.shards {
		if si.Record == nil {
			d.log.Error("shard terminal without a record; merge aborted", "campaign", d.campaignID, "shard", si.Index)
			return
		}
		if err := enc.Encode(*si.Record); err != nil {
			d.log.Error("merge encode failed", "campaign", d.campaignID, "err", err)
			return
		}
	}
	d.merged = buf.Bytes()
	d.log.Info("campaign merged", "campaign", d.campaignID, "cells", len(d.shards), "bytes", len(d.merged))
	if d.opts.MergedPath != "" {
		if err := os.WriteFile(d.opts.MergedPath, d.merged, 0o644); err != nil {
			d.log.Error("writing merged stream failed", "campaign", d.campaignID, "err", err)
		}
	}
	d.journalAppend(journalEntry{T: "merged", CampaignID: d.campaignID})
	if d.manifest != nil {
		d.manifest.MarkMerged(d.provenanceLocked())
		d.manifest.Finish()
		if err := d.manifest.WriteFile(d.opts.ManifestPath); err != nil {
			d.log.Error("writing manifest failed", "campaign", d.campaignID, "err", err)
		}
	}
	d.emit("campaign_merged", map[string]any{"campaign_id": d.campaignID, "cells": len(d.shards)})
}

// provenanceLocked snapshots per-shard worker attribution for manifests.
func (d *Dispatcher) provenanceLocked() []obs.ShardProvenance {
	out := make([]obs.ShardProvenance, 0, len(d.shards))
	for _, si := range d.shards {
		out = append(out, obs.ShardProvenance{
			Index:    si.Index,
			Cell:     si.Cell.String(),
			Worker:   si.WorkerName,
			Host:     si.Host,
			Attempts: si.Attempts,
		})
	}
	return out
}

// Merged returns the canonical merged JSONL stream, or an error while
// shards are still open.
func (d *Dispatcher) Merged() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.merged == nil {
		return nil, fmt.Errorf("fabric: campaign not merged yet (%d shards open)", d.remaining)
	}
	return d.merged, nil
}

// State snapshots the fabric for /api/state and the monitor's /status.
func (d *Dispatcher) State() StateDoc {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLeasesLocked()
	d.syncGaugesLocked()
	doc := StateDoc{Phase: "idle", Duplicates: d.nDupes, Requeues: d.nRequeues}
	if d.spec != nil {
		doc.CampaignID = d.campaignID
		doc.Phase = "running"
		if d.merged != nil {
			doc.Phase = "merged"
		}
		doc.Counts = make(map[string]int)
		for _, si := range d.shards {
			doc.Counts[si.State.String()]++
			doc.Shards = append(doc.Shards, ShardStatus{
				Index: si.Index, Cell: si.Cell.String(), State: si.State.String(),
				Worker: si.Worker, Host: si.Host, Attempts: si.Attempts,
			})
		}
	}
	ids := make([]string, 0, len(d.workers))
	for id := range d.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := d.workers[id]
		doc.Workers = append(doc.Workers, WorkerStatus{
			ID: w.ID, Name: w.Name, Host: w.Host, Capacity: w.Capacity,
			LastSeen: w.LastSeen, ShardsDone: w.ShardsDone,
		})
	}
	return doc
}
