package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chicsim/internal/trace"
)

func kinds(sh ShardTimeline) []string {
	out := make([]string, len(sh.Events))
	for i, ev := range sh.Events {
		out[i] = ev.Kind
	}
	return out
}

func wantKinds(t *testing.T, sh ShardTimeline, want ...string) {
	t.Helper()
	got := kinds(sh)
	if len(got) != len(want) {
		t.Fatalf("shard %d events = %v, want %v", sh.Index, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shard %d events = %v, want %v", sh.Index, got, want)
		}
	}
}

func wantMonotone(t *testing.T, doc TimelineDoc) {
	t.Helper()
	for _, sh := range doc.Shards {
		var prev time.Time
		for _, ev := range sh.Events {
			if ev.T.Before(prev) {
				t.Fatalf("shard %d timeline not monotone: %s at %v after %v", sh.Index, ev.Kind, ev.T, prev)
			}
			prev = ev.T
		}
	}
}

// TestTimelineAcrossDispatcherResume is the golden cross-process
// timeline: a campaign's event history must survive a dispatcher kill
// and resume through the journal, with the in-flight shard's lost
// attempt closed by a requeued event, and the second incarnation's
// events appended to the same per-shard history.
func TestTimelineAcrossDispatcherResume(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "q.journal")
	d1, clock := mustDispatcher(t, Options{JournalPath: jp, Logf: t.Logf})
	spec := testSpec(3)
	if _, err := d1.Submit(spec); err != nil {
		t.Fatal(err)
	}
	a := d1.Register(RegisterRequest{Name: "a", Host: "h1", Capacity: 2})
	clock.Advance(time.Second)
	if resp, err := d1.Book(BookRequest{WorkerID: a.WorkerID, Max: 2}); err != nil || len(resp.Shards) != 2 {
		t.Fatalf("book: %+v, %v", resp, err)
	}
	clock.Advance(time.Second)
	if _, err := d1.Heartbeat(HeartbeatRequest{WorkerID: a.WorkerID, Executing: []int{0}}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	rec := fakeRecord(spec.Cells[0])
	if resp, err := d1.Result(ResultRequest{WorkerID: a.WorkerID, CampaignID: spec.ID(), Shard: 0, Record: rec}); err != nil || resp.Duplicate {
		t.Fatalf("result: %+v, %v", resp, err)
	}

	// "Kill" d1 (drop it; the journal is its only legacy) and resume.
	clock.Advance(time.Minute)
	d2, err := NewDispatcher(Options{JournalPath: jp, LeaseSeconds: 30, Now: clock.Now, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	tl := d2.Timeline()
	if tl.CampaignID != spec.ID() || tl.Phase != "running" || len(tl.Shards) != 3 {
		t.Fatalf("resumed timeline header: %+v", tl)
	}
	wantMonotone(t, tl)
	wantKinds(t, tl.Shards[0], EventQueued, EventBooked, EventExecuting, EventUploaded)
	wantKinds(t, tl.Shards[1], EventQueued, EventBooked, EventRequeued)
	wantKinds(t, tl.Shards[2], EventQueued)
	if tl.Shards[0].State != "completed" || tl.Shards[1].State != "queued" {
		t.Fatalf("resumed states: %s / %s", tl.Shards[0].State, tl.Shards[1].State)
	}
	// The lost attempt's provenance survived the crash.
	req := tl.Shards[1].Events[2]
	if req.Worker != a.WorkerID || tl.Shards[1].Attempts != 1 {
		t.Fatalf("requeued event %+v (attempts %d), want worker %s attempt 1", req, tl.Shards[1].Attempts, a.WorkerID)
	}

	// Finish the campaign on the second incarnation with a new worker.
	b := d2.Register(RegisterRequest{Name: "b", Host: "h2", Capacity: 2})
	resp, err := d2.Book(BookRequest{WorkerID: b.WorkerID, Max: 2})
	if err != nil || len(resp.Shards) != 2 || resp.Shards[0].Index != 1 {
		t.Fatalf("resume book: %+v, %v", resp, err)
	}
	clock.Advance(time.Second)
	for _, sh := range resp.Shards {
		r := fakeRecord(sh.Cell)
		if _, err := d2.Result(ResultRequest{WorkerID: b.WorkerID, CampaignID: spec.ID(), Shard: sh.Index, Record: r}); err != nil {
			t.Fatal(err)
		}
	}
	tl = d2.Timeline()
	if tl.Phase != "merged" {
		t.Fatalf("phase = %s, want merged", tl.Phase)
	}
	wantMonotone(t, tl)
	wantKinds(t, tl.Shards[1], EventQueued, EventBooked, EventRequeued, EventBooked, EventUploaded)
	if got := tl.Shards[1].Events[3].Worker; got != b.WorkerID {
		t.Fatalf("rebooked worker = %s, want %s", got, b.WorkerID)
	}
	if _, err := d2.Merged(); err != nil {
		t.Fatal(err)
	}

	// A third incarnation replays the full two-incarnation history
	// identically (the golden resume property: the timeline is a pure
	// function of the journal).
	d3, err := NewDispatcher(Options{JournalPath: jp, LeaseSeconds: 30, Now: clock.Now, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	js2, _ := json.Marshal(tl)
	js3, _ := json.Marshal(d3.Timeline())
	if !bytes.Equal(js2, js3) {
		t.Fatalf("timeline changed across a second resume:\n%s\nvs\n%s", js2, js3)
	}
}

// TestTimelineLeaseExpiryAndPoison covers the fault arc: lease expiry
// emits lease_expired + requeued events and bumps the counters; burning
// MaxAttempts poisons the shard with a synthesized failed record.
func TestTimelineLeaseExpiryAndPoison(t *testing.T) {
	d, clock := mustDispatcher(t, Options{MaxAttempts: 2})
	spec := testSpec(1)
	if _, err := d.Submit(spec); err != nil {
		t.Fatal(err)
	}
	a := d.Register(RegisterRequest{Name: "a", Capacity: 1})
	mustValue := func(name string, want float64, labels ...string) {
		t.Helper()
		v, ok := d.Registry().Value(name, labels...)
		if !ok || v != want {
			t.Fatalf("%s%v = %v (ok=%v), want %v", name, labels, v, ok, want)
		}
	}

	if _, err := d.Book(BookRequest{WorkerID: a.WorkerID, Max: 1}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(31 * time.Second)
	d.State() // any API entry sweeps leases
	tl := d.Timeline()
	wantKinds(t, tl.Shards[0], EventQueued, EventBooked, EventLeaseExpired, EventRequeued)
	mustValue("fabric_lease_expiries_total", 1)
	mustValue("fabric_shards_requeued_total", 1)
	mustValue("fabric_shards", 1, "queued")

	if _, err := d.Book(BookRequest{WorkerID: a.WorkerID, Max: 1}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(31 * time.Second)
	d.State()
	tl = d.Timeline()
	wantMonotone(t, tl)
	wantKinds(t, tl.Shards[0], EventQueued, EventBooked, EventLeaseExpired, EventRequeued, EventBooked, EventPoisoned)
	if tl.Shards[0].State != "failed" || tl.Phase != "merged" {
		t.Fatalf("poisoned shard state %s phase %s", tl.Shards[0].State, tl.Phase)
	}
	mustValue("fabric_lease_expiries_total", 2)
	mustValue("fabric_shards_poisoned_total", 1)
	mustValue("fabric_shards", 1, "failed")
	mustValue("fabric_shards_remaining", 0)
	merged, err := d.Merged()
	if err != nil || !bytes.Contains(merged, []byte("abandoned after 2 lease expiries")) {
		t.Fatalf("merged after poison: %v\n%s", err, merged)
	}
}

// TestFleetDoc covers /api/fleet: liveness tracks heartbeat recency,
// throughput and ETA come from live workers' completed shards.
func TestFleetDoc(t *testing.T) {
	d, clock := mustDispatcher(t, Options{})
	spec := testSpec(4)
	if _, err := d.Submit(spec); err != nil {
		t.Fatal(err)
	}
	a := d.Register(RegisterRequest{Name: "a", Capacity: 2})
	b := d.Register(RegisterRequest{Name: "b", Capacity: 1})
	if _, err := d.Book(BookRequest{WorkerID: a.WorkerID, Max: 2}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Second)
	if _, err := d.Heartbeat(HeartbeatRequest{WorkerID: a.WorkerID, Executing: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	rec := fakeRecord(spec.Cells[0])
	if _, err := d.Result(ResultRequest{WorkerID: a.WorkerID, CampaignID: spec.ID(), Shard: 0, Record: rec}); err != nil {
		t.Fatal(err)
	}

	if v, ok := d.Registry().Value("fabric_heartbeats_total"); !ok || v != 1 {
		t.Fatalf("fabric_heartbeats_total = %v (%v), want 1", v, ok)
	}
	fleet := d.Fleet()
	if fleet.Total != 4 || fleet.Done != 1 || fleet.Counts["executing"] != 1 {
		t.Fatalf("fleet counts: %+v", fleet)
	}
	if len(fleet.Workers) != 2 || !fleet.Workers[0].Live || !fleet.Workers[1].Live {
		t.Fatalf("fleet workers: %+v", fleet.Workers)
	}
	if fleet.Workers[1].ID != b.WorkerID {
		t.Fatalf("worker order: %+v", fleet.Workers)
	}
	wa := fleet.Workers[0]
	if wa.ID != a.WorkerID || wa.ShardsDone != 1 || wa.Busy != 1 || wa.ShardsPerMin != 6 {
		t.Fatalf("worker a row: %+v (want 1 done, busy 1, 6 shards/min)", wa)
	}
	// remaining 3 at 0.1 shards/s aggregate → 30 s.
	if fleet.ETASeconds != 30 {
		t.Fatalf("ETA = %v, want 30", fleet.ETASeconds)
	}

	// b goes silent past one lease: dead, and the liveness gauges agree.
	clock.Advance(25 * time.Second)
	fleet = d.Fleet()
	if !fleet.Workers[0].Live || fleet.Workers[1].Live {
		t.Fatalf("liveness after silence: %+v", fleet.Workers)
	}
	if v, ok := d.Registry().Value("fabric_workers", "live"); !ok || v != 1 {
		t.Fatalf("fabric_workers{live} = %v (%v), want 1", v, ok)
	}
	if v, ok := d.Registry().Value("fabric_workers", "dead"); !ok || v != 1 {
		t.Fatalf("fabric_workers{dead} = %v (%v), want 1", v, ok)
	}
}

// TestFleetTraceChrome renders a faulted campaign's timeline through the
// Chrome exporter and checks structural validity: every lane's spans are
// monotone and non-overlapping, the killed attempt is aborted, the
// fault markers are present, and both workers got their own process.
func TestFleetTraceChrome(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "q.journal")
	d, clock := mustDispatcher(t, Options{JournalPath: jp, Logf: t.Logf})
	spec := testSpec(2)
	if _, err := d.Submit(spec); err != nil {
		t.Fatal(err)
	}
	a := d.Register(RegisterRequest{Name: "a", Capacity: 1})
	b := d.Register(RegisterRequest{Name: "b", Capacity: 2})
	if _, err := d.Book(BookRequest{WorkerID: a.WorkerID, Max: 1}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	if _, err := d.Heartbeat(HeartbeatRequest{WorkerID: a.WorkerID, Executing: []int{0}}); err != nil {
		t.Fatal(err)
	}
	// a dies; its shard requeues and b runs everything.
	clock.Advance(31 * time.Second)
	resp, err := d.Book(BookRequest{WorkerID: b.WorkerID, Max: 2})
	if err != nil || len(resp.Shards) != 2 {
		t.Fatalf("book after expiry: %+v, %v", resp, err)
	}
	clock.Advance(2 * time.Second)
	if _, err := d.Heartbeat(HeartbeatRequest{WorkerID: b.WorkerID, Executing: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(3 * time.Second)
	for _, sh := range resp.Shards {
		r := fakeRecord(sh.Cell)
		if _, err := d.Result(ResultRequest{WorkerID: b.WorkerID, CampaignID: spec.ID(), Shard: sh.Index, Record: r}); err != nil {
			t.Fatal(err)
		}
	}

	doc := d.Timeline()
	spans, markers := FleetTraceData(doc)
	var gz bytes.Buffer
	if err := trace.WriteFleetChrome(&gz, spans, markers); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(gz.Bytes(), &chrome); err != nil {
		t.Fatalf("fleet trace is not JSON: %v", err)
	}

	processes := map[string]bool{}
	laneEnd := map[[2]int]float64{}
	markerNames := map[string]bool{}
	abortedSeen := false
	for _, ev := range chrome.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				processes[ev.Args["name"].(string)] = true
			}
		case "X":
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("span %q has negative time: ts=%g dur=%g", ev.Name, ev.Ts, ev.Dur)
			}
			key := [2]int{ev.Pid, ev.Tid}
			if ev.Ts < laneEnd[key] {
				t.Fatalf("lane %v not monotone: span %q at %g overlaps previous end %g", key, ev.Name, ev.Ts, laneEnd[key])
			}
			laneEnd[key] = ev.Ts + ev.Dur
			if ab, _ := ev.Args["aborted"].(bool); ab {
				abortedSeen = true
			}
		case "i":
			markerNames[ev.Name] = true
		}
	}
	if !processes["worker "+a.WorkerID] || !processes["worker "+b.WorkerID] {
		t.Fatalf("worker processes missing: %v", processes)
	}
	if !markerNames[EventLeaseExpired] || !markerNames[EventRequeued] {
		t.Fatalf("fault markers missing: %v", markerNames)
	}
	if !abortedSeen {
		t.Fatal("the killed attempt's span is not marked aborted")
	}
}

// TestJournalWithoutEventsStillLoads pins backward compatibility: a
// journal from before the timeline (spec + done entries only) resumes
// with empty histories and no spurious requeue events.
func TestJournalWithoutEventsStillLoads(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "old.journal")
	spec := testSpec(2)
	rec := fakeRecord(spec.Cells[0])
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range []journalEntry{
		{T: "spec", CampaignID: spec.ID(), Spec: &spec},
		{T: "done", Shard: 0, Worker: "a", Attempts: 1, Record: &rec},
	} {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(jp, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	d, clock := mustDispatcher(t, Options{JournalPath: jp, Logf: t.Logf})
	_ = clock
	tl := d.Timeline()
	if len(tl.Shards) != 2 || tl.Shards[0].State != "completed" || tl.Shards[1].State != "queued" {
		t.Fatalf("old journal resume: %+v", tl.Shards)
	}
	if len(tl.Shards[0].Events) != 0 || len(tl.Shards[1].Events) != 0 {
		t.Fatalf("old journal grew events: %+v", tl.Shards)
	}
}

// TestWaitMergedCampaignUnknown pins the fixed failure mode: a
// dispatcher that answers but knows no campaign (restarted without its
// journal) fails the wait immediately with ErrCampaignUnknown instead
// of polling forever.
func TestWaitMergedCampaignUnknown(t *testing.T) {
	d, _ := mustDispatcher(t, Options{})
	mux := http.NewServeMux()
	for pat, h := range d.Handlers() {
		mux.Handle(pat, h)
	}
	srv := httptest.NewServer(mux)
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := client.WaitMerged(ctx, "deadbeef", 10*time.Millisecond, nil)
	if !errors.Is(err, ErrCampaignUnknown) {
		t.Fatalf("WaitMerged error = %v, want ErrCampaignUnknown", err)
	}
	if ctx.Err() != nil {
		t.Fatal("WaitMerged only failed because the context expired")
	}
	if !strings.Contains(err.Error(), "deadbeef") {
		t.Fatalf("error does not name the campaign: %v", err)
	}
}
