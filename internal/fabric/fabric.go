// Package fabric shards a simulation campaign across processes and
// machines: a queue-owning dispatcher splits a campaign into per-cell
// shard jobs with an explicit lifecycle (queued → booked → executing →
// completed/failed), and worker daemons pull work when they have
// capacity, execute cells through the ordinary experiments.Run path, and
// stream CellRecord results back over HTTP/JSON.
//
// The design follows the paper's decoupling one level up: just as the
// External Scheduler decides *where a job runs* independently of the
// Dataset Scheduler deciding *where data lives*, the dispatcher decides
// *which process runs a cell* independently of how that cell simulates.
// Because every simulation is a deterministic single-threaded event loop,
// a shard's CellRecord is byte-identical no matter which worker produced
// it — so the dispatcher's merge step only has to reorder streamed
// records into canonical campaign order to reproduce, byte for byte, the
// JSONL stream a single-process `gridsweep` run would have written.
//
// Delivery is at-least-once: workers retry uploads, leases expire and
// shards requeue when a worker dies, so the dispatcher dedupes results by
// cell key (first completed record wins; duplicates are counted and
// dropped). A journal of completed shards makes a partial campaign
// resumable across dispatcher restarts.
package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"chicsim/internal/core"
	"chicsim/internal/experiments"
)

// CampaignSpec is the unit of submission: everything a worker needs to
// reproduce any shard of the campaign. It deliberately mirrors
// experiments.Campaign minus the process-local hooks (progress, metrics,
// callbacks), which stay on whichever process wants them.
type CampaignSpec struct {
	Name  string             `json:"name,omitempty"`
	Base  core.Config        `json:"base"`
	Cells []experiments.Cell `json:"cells"`
	Seeds []uint64           `json:"seeds"`

	// ObsInterval mirrors experiments.Campaign.ObsInterval: when > 0 it
	// overrides Base.ObsInterval on every run. Probe series are excluded
	// from CellRecord JSON, so this never perturbs the merged stream.
	ObsInterval float64 `json:"obs_interval,omitempty"`
}

// Validate checks the spec is runnable enough to shard.
func (s *CampaignSpec) Validate() error {
	if len(s.Cells) == 0 {
		return fmt.Errorf("fabric: campaign has no cells")
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("fabric: campaign has no seeds")
	}
	return nil
}

// ID derives a stable campaign identifier from the spec's JSON encoding,
// so resubmitting an identical campaign (e.g. `gridsweep -dispatch`
// rerun after an interruption) attaches to the in-progress one instead
// of starting over.
func (s *CampaignSpec) ID() string {
	js, err := json.Marshal(s)
	if err != nil {
		// core.Config and experiments.Cell marshal cleanly; a failure here
		// means a new non-marshalable field slipped in, which Submit's
		// round-trip would also reject. Fall back to a degenerate id.
		return "invalid"
	}
	sum := sha256.Sum256(js)
	return hex.EncodeToString(sum[:6])
}

// ShardState is a shard's position in the dispatcher lifecycle.
type ShardState int

// The lifecycle: Queued shards wait in the dispatcher's queue; Booked
// shards are leased to a worker that has not yet reported execution;
// Executing shards have heartbeats; Completed shards have a merged-in
// record; Failed shards exhausted their attempts (or completed with a
// simulation error). Booked and Executing shards whose lease expires go
// back to Queued.
const (
	Queued ShardState = iota
	Booked
	Executing
	Completed
	Failed
)

func (s ShardState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Booked:
		return "booked"
	case Executing:
		return "executing"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("ShardState(%d)", int(s))
	}
}

// Shard is one unit of bookable work: a single campaign cell with every
// seed replication. One cell per shard matches the JSONL wire format —
// each shard produces exactly one CellRecord, and cell identity is the
// dedupe key for at-least-once delivery.
type Shard struct {
	Index int              `json:"index"`
	Cell  experiments.Cell `json:"cell"`
}

// Wire messages. All endpoints speak JSON over POST (mutations) or GET
// (reads); error responses are {"error": "..."} with a non-2xx status.

// RegisterRequest announces a worker and its capacity attributes.
type RegisterRequest struct {
	Name     string `json:"name"`
	Host     string `json:"host,omitempty"`
	PID      int    `json:"pid,omitempty"`
	Capacity int    `json:"capacity"`
}

// RegisterResponse assigns the worker its ID and the lease duration it
// must heartbeat within.
type RegisterResponse struct {
	WorkerID     string  `json:"worker_id"`
	LeaseSeconds float64 `json:"lease_s"`
}

// BookRequest asks for up to Max shards under a lease.
type BookRequest struct {
	WorkerID string `json:"worker_id"`
	Max      int    `json:"max"`
}

// BookResponse grants zero or more shards. Done reports that every shard
// of the current campaign is terminal (the merged stream exists), which
// tells one-shot workers they can exit. BackoffSeconds hints how long to
// wait before asking again when no shards were granted.
type BookResponse struct {
	CampaignID     string  `json:"campaign_id,omitempty"`
	Shards         []Shard `json:"shards,omitempty"`
	LeaseSeconds   float64 `json:"lease_s,omitempty"`
	Done           bool    `json:"done,omitempty"`
	BackoffSeconds float64 `json:"backoff_s,omitempty"`
}

// HeartbeatRequest extends the lease on the shards a worker is running.
type HeartbeatRequest struct {
	WorkerID  string `json:"worker_id"`
	Executing []int  `json:"executing,omitempty"`
}

// HeartbeatResponse lists shards the worker no longer owns (lease
// expired and requeued, possibly already completed elsewhere); the
// worker should stop reporting them and may discard their results.
type HeartbeatResponse struct {
	Lost []int `json:"lost,omitempty"`
}

// ResultRequest uploads one completed shard's record.
type ResultRequest struct {
	WorkerID   string                 `json:"worker_id"`
	CampaignID string                 `json:"campaign_id"`
	Shard      int                    `json:"shard"`
	Record     experiments.CellRecord `json:"record"`
}

// ResultResponse acknowledges an upload. Duplicate means the shard was
// already terminal (the upload was dropped — at-least-once dedupe);
// Stale means the campaign ID no longer matches.
type ResultResponse struct {
	Duplicate bool `json:"duplicate,omitempty"`
	Stale     bool `json:"stale,omitempty"`
}

// SubmitResponse acknowledges a campaign submission. Resumed means an
// identical campaign was already loaded (from an earlier submission or
// the journal) and the caller attached to it.
type SubmitResponse struct {
	CampaignID string `json:"campaign_id"`
	Resumed    bool   `json:"resumed,omitempty"`
}

// CampaignDoc is the GET /api/campaign payload.
type CampaignDoc struct {
	CampaignID string       `json:"campaign_id"`
	Spec       CampaignSpec `json:"spec"`
}

// ShardStatus is one shard's row in the state document.
type ShardStatus struct {
	Index    int    `json:"index"`
	Cell     string `json:"cell"`
	State    string `json:"state"`
	Worker   string `json:"worker,omitempty"`
	Host     string `json:"host,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
}

// WorkerStatus is one worker's row in the state document.
type WorkerStatus struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	Host       string    `json:"host,omitempty"`
	Capacity   int       `json:"capacity"`
	LastSeen   time.Time `json:"last_seen"`
	ShardsDone int       `json:"shards_done"`
}

// StateDoc is the GET /api/state payload: the whole fabric at a glance.
type StateDoc struct {
	CampaignID string         `json:"campaign_id,omitempty"`
	Phase      string         `json:"phase"` // idle, running, merged
	Counts     map[string]int `json:"counts,omitempty"`
	Duplicates int            `json:"duplicate_results,omitempty"`
	Requeues   int            `json:"requeues,omitempty"`
	Shards     []ShardStatus  `json:"shards,omitempty"`
	Workers    []WorkerStatus `json:"workers,omitempty"`
}
