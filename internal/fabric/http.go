package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"chicsim/internal/obs/monitor"
)

// maxBodyBytes bounds request bodies: a shard record carries per-seed
// aggregate Results (no per-job data), so even generous campaigns stay
// far below this.
const maxBodyBytes = 64 << 20

// Serve mounts the dispatcher's API on the monitor's HTTP plumbing, so
// one listener offers both the fabric protocol (/api/...) and the live
// control-plane surface (/metrics, /status, /events SSE) — state changes
// are published as SSE events exactly like campaign progress is. extra
// routes (e.g. monitor.PprofHandlers for -pprof) mount alongside the
// fabric API; patterns must not collide.
func Serve(addr string, d *Dispatcher, extra ...map[string]http.Handler) (*monitor.Server, error) {
	routes := d.Handlers()
	for _, m := range extra {
		for pattern, h := range m {
			routes[pattern] = h
		}
	}
	srv, err := monitor.StartMux(addr, d.Registry(), func() any { return d.State() }, routes)
	if err != nil {
		return nil, err
	}
	d.SetPublish(srv.Publish)
	return srv, nil
}

// Handlers returns the dispatcher's HTTP API as pattern → handler, for
// mounting on any mux (monitor.StartMux in production, httptest in
// tests).
func (d *Dispatcher) Handlers() map[string]http.Handler {
	return map[string]http.Handler{
		"/api/submit":    post(d.handleSubmit),
		"/api/campaign":  get(d.handleCampaign),
		"/api/register":  post(d.handleRegister),
		"/api/book":      post(d.handleBook),
		"/api/heartbeat": post(d.handleHeartbeat),
		"/api/result":    post(d.handleResult),
		"/api/state":     get(d.handleState),
		"/api/timeline":  get(d.handleTimeline),
		"/api/fleet":     get(d.handleFleet),
		"/api/merged":    get(d.handleMerged),
	}
}

func post(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
			return
		}
		h(w, r)
	})
}

func get(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
			return
		}
		h(w, r)
	})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err == nil {
		err = json.Unmarshal(body, v)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("fabric: decoding request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // connection-level failure only
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}

func (d *Dispatcher) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	if !readJSON(w, r, &spec) {
		return
	}
	resp, err := d.Submit(spec)
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, resp)
}

func (d *Dispatcher) handleCampaign(w http.ResponseWriter, _ *http.Request) {
	doc, err := d.Campaign()
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, doc)
}

func (d *Dispatcher) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, d.Register(req))
}

func (d *Dispatcher) handleBook(w http.ResponseWriter, r *http.Request) {
	var req BookRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := d.Book(req)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, resp)
}

func (d *Dispatcher) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := d.Heartbeat(req)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, resp)
}

func (d *Dispatcher) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := d.Result(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, resp)
}

func (d *Dispatcher) handleState(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, d.State())
}

func (d *Dispatcher) handleTimeline(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, d.Timeline())
}

func (d *Dispatcher) handleFleet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, d.Fleet())
}

func (d *Dispatcher) handleMerged(w http.ResponseWriter, _ *http.Request) {
	merged, err := d.Merged()
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(merged) //nolint:errcheck // connection-level failure only
}
