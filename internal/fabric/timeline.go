package fabric

import (
	"fmt"
	"sort"
	"time"

	"chicsim/internal/trace"
)

// The campaign timeline is the fabric's answer to "where did the
// wall-clock go": every shard carries an append-only event history —
// queued, booked, executing, uploaded, lease_expired, requeued,
// poisoned — stamped with wall time and the worker involved. Events are
// persisted through the queue journal (backward-compatibly: old
// journals simply replay with empty histories, old readers skip the
// unknown entry type), so the timeline survives dispatcher restarts,
// and a resumed shard's history spans both incarnations. /api/timeline
// serves the raw history; FleetTraceData renders it as a
// Chrome/Perfetto trace with one process per worker.

// Shard event kinds, in lifecycle order.
const (
	EventQueued       = "queued"        // entered the dispatcher queue
	EventBooked       = "booked"        // leased to a worker
	EventExecuting    = "executing"     // worker's first heartbeat for the attempt
	EventUploaded     = "uploaded"      // record accepted (completed or failed)
	EventLeaseExpired = "lease_expired" // worker went silent past its lease
	EventRequeued     = "requeued"      // back in the queue for another attempt
	EventPoisoned     = "poisoned"      // abandoned after MaxAttempts bookings
)

// ShardEvent is one timeline entry: what happened to a shard, when, and
// which worker was involved (empty for dispatcher-side events like
// queued).
type ShardEvent struct {
	T       time.Time `json:"t"`
	Kind    string    `json:"kind"`
	Worker  string    `json:"worker,omitempty"`
	Attempt int       `json:"attempt,omitempty"`
}

// ShardTimeline is one shard's row in the timeline document.
type ShardTimeline struct {
	Index    int          `json:"index"`
	Cell     string       `json:"cell"`
	State    string       `json:"state"`
	Attempts int          `json:"attempts,omitempty"`
	Events   []ShardEvent `json:"events,omitempty"`
}

// TimelineDoc is the GET /api/timeline payload: the whole campaign's
// cross-process event history.
type TimelineDoc struct {
	CampaignID string          `json:"campaign_id,omitempty"`
	Phase      string          `json:"phase"`
	Shards     []ShardTimeline `json:"shards,omitempty"`
}

// Timeline snapshots the campaign's per-shard event history.
func (d *Dispatcher) Timeline() TimelineDoc {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLeasesLocked()
	d.syncGaugesLocked()
	doc := TimelineDoc{Phase: "idle"}
	if d.spec == nil {
		return doc
	}
	doc.CampaignID = d.campaignID
	doc.Phase = "running"
	if d.merged != nil {
		doc.Phase = "merged"
	}
	doc.Shards = make([]ShardTimeline, 0, len(d.shards))
	for _, si := range d.shards {
		doc.Shards = append(doc.Shards, ShardTimeline{
			Index:    si.Index,
			Cell:     si.Cell.String(),
			State:    si.State.String(),
			Attempts: si.Attempts,
			Events:   append([]ShardEvent(nil), si.Events...),
		})
	}
	return doc
}

// FleetWorker is one worker's row in the fleet document.
type FleetWorker struct {
	ID         string  `json:"id"`
	Name       string  `json:"name"`
	Host       string  `json:"host,omitempty"`
	Live       bool    `json:"live"`
	Capacity   int     `json:"capacity"`
	Busy       int     `json:"busy"`
	ShardsDone int     `json:"shards_done"`
	AgeSeconds float64 `json:"last_seen_age_s"`
	// ShardsPerMin is the worker's completed-shard throughput since its
	// first booking; 0 until it finishes a shard.
	ShardsPerMin float64 `json:"shards_per_min,omitempty"`
}

// FleetDoc is the GET /api/fleet payload: worker liveness, per-worker
// throughput, shard-state counts, and a completion estimate.
type FleetDoc struct {
	CampaignID string         `json:"campaign_id,omitempty"`
	Phase      string         `json:"phase"`
	Counts     map[string]int `json:"counts,omitempty"`
	Done       int            `json:"done"`
	Total      int            `json:"total"`
	Requeues   int            `json:"requeues,omitempty"`
	Duplicates int            `json:"duplicate_results,omitempty"`
	// ETASeconds extrapolates the remaining shards over the live
	// workers' aggregate throughput; 0 while unknown.
	ETASeconds float64       `json:"eta_s,omitempty"`
	Workers    []FleetWorker `json:"workers,omitempty"`
}

// Fleet snapshots live fleet status.
func (d *Dispatcher) Fleet() FleetDoc {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLeasesLocked()
	d.syncGaugesLocked()
	return d.fleetLocked()
}

func (d *Dispatcher) fleetLocked() FleetDoc {
	now := d.opts.Now()
	doc := FleetDoc{Phase: "idle", Requeues: d.nRequeues, Duplicates: d.nDupes}
	busy := make(map[string]int)
	if d.spec != nil {
		doc.CampaignID = d.campaignID
		doc.Phase = "running"
		if d.merged != nil {
			doc.Phase = "merged"
		}
		doc.Total = len(d.shards)
		doc.Done = len(d.shards) - d.remaining
		doc.Counts = make(map[string]int)
		for _, si := range d.shards {
			doc.Counts[si.State.String()]++
			if si.State == Booked || si.State == Executing {
				busy[si.Worker]++
			}
		}
	}
	ids := make([]string, 0, len(d.workers))
	for id := range d.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var rate float64 // live workers' aggregate shards/second
	for _, id := range ids {
		w := d.workers[id]
		fw := FleetWorker{
			ID: w.ID, Name: w.Name, Host: w.Host, Capacity: w.Capacity,
			Busy: busy[w.ID], ShardsDone: w.ShardsDone,
			AgeSeconds: now.Sub(w.LastSeen).Seconds(),
			Live:       d.liveLocked(w, now),
		}
		if !w.FirstBooked.IsZero() && w.ShardsDone > 0 {
			if elapsed := now.Sub(w.FirstBooked).Seconds(); elapsed > 0 {
				perSec := float64(w.ShardsDone) / elapsed
				fw.ShardsPerMin = perSec * 60
				if fw.Live {
					rate += perSec
				}
			}
		}
		doc.Workers = append(doc.Workers, fw)
	}
	if rate > 0 && d.remaining > 0 {
		doc.ETASeconds = float64(d.remaining) / rate
	}
	return doc
}

// liveLocked reports whether a worker has been seen within one lease.
func (d *Dispatcher) liveLocked(w *workerInfo, now time.Time) bool {
	return now.Sub(w.LastSeen) <= time.Duration(d.opts.LeaseSeconds*float64(time.Second))
}

// FleetTraceData renders a timeline as Chrome trace material: per-shard
// attempt phases become spans on the owning worker's lanes (cat "book"
// for lease-granted-but-not-yet-executing, cat "exec" while executing),
// and lease expiries, requeues, and poisonings become instant markers.
// Timestamps are seconds relative to the earliest event, so the trace
// starts at t=0 no matter when the campaign ran.
func FleetTraceData(doc TimelineDoc) (spans []trace.FleetSpan, markers []trace.FleetMarker) {
	base, last := timelineBounds(doc)
	if base.IsZero() {
		return nil, nil
	}
	rel := func(t time.Time) float64 { return t.Sub(base).Seconds() }
	for _, sh := range doc.Shards {
		var open *trace.FleetSpan
		closeOpen := func(end time.Time, aborted bool) {
			if open == nil {
				return
			}
			open.End = rel(end)
			if aborted {
				if open.Args == nil {
					open.Args = map[string]any{}
				}
				open.Args["aborted"] = true
			}
			spans = append(spans, *open)
			open = nil
		}
		mark := func(ev ShardEvent, cat string) {
			markers = append(markers, trace.FleetMarker{
				Worker: ev.Worker, Name: ev.Kind, Cat: cat, T: rel(ev.T),
				Args: map[string]any{"shard": sh.Index, "cell": sh.Cell, "attempt": ev.Attempt},
			})
		}
		for _, ev := range sh.Events {
			switch ev.Kind {
			case EventBooked:
				closeOpen(ev.T, true) // a re-book while open means the old attempt died
				open = shardSpan(sh, ev, "book", rel(ev.T))
			case EventExecuting:
				closeOpen(ev.T, false)
				open = shardSpan(sh, ev, "exec", rel(ev.T))
			case EventUploaded:
				closeOpen(ev.T, false)
			case EventLeaseExpired:
				closeOpen(ev.T, true)
				mark(ev, "fault")
			case EventRequeued:
				closeOpen(ev.T, true)
				mark(ev, "fault")
			case EventPoisoned:
				closeOpen(ev.T, true)
				mark(ev, "fault")
			}
		}
		// Still open at export time (campaign in flight): close at the
		// timeline's horizon so the span renders.
		closeOpen(last, false)
	}
	return spans, markers
}

// shardSpan opens one phase span for a shard attempt.
func shardSpan(sh ShardTimeline, ev ShardEvent, cat string, start float64) *trace.FleetSpan {
	return &trace.FleetSpan{
		Worker: ev.Worker,
		Name:   fmt.Sprintf("shard %d", sh.Index),
		Cat:    cat,
		Start:  start,
		Args:   map[string]any{"cell": sh.Cell, "attempt": ev.Attempt},
	}
}

// timelineBounds returns the earliest and latest event times.
func timelineBounds(doc TimelineDoc) (first, last time.Time) {
	for _, sh := range doc.Shards {
		for _, ev := range sh.Events {
			if first.IsZero() || ev.T.Before(first) {
				first = ev.T
			}
			if ev.T.After(last) {
				last = ev.T
			}
		}
	}
	return first, last
}
