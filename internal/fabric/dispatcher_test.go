package fabric

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"chicsim/internal/core"
	"chicsim/internal/experiments"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testSpec(nCells int) CampaignSpec {
	base := core.DefaultConfig()
	base.Sites = 6
	base.Users = 12
	base.Files = 30
	base.TotalJobs = 60
	base.RegionFanout = 3
	var cells []experiments.Cell
	for i := 0; i < nCells; i++ {
		cells = append(cells, experiments.Cell{ES: "JobRandom", DS: "DataRandom", BandwidthMBps: float64(10 * (i + 1))})
	}
	return CampaignSpec{Base: base, Cells: cells, Seeds: []uint64{1}}
}

// fakeRecord builds a record for a cell without running a simulation.
func fakeRecord(cell experiments.Cell) experiments.CellRecord {
	return experiments.CellRecord{Cell: cell, AvgResponseSec: cell.BandwidthMBps * 2}
}

func mustDispatcher(t *testing.T, opts Options) (*Dispatcher, *fakeClock) {
	t.Helper()
	clock := newFakeClock()
	if opts.Now == nil {
		opts.Now = clock.Now
	}
	if opts.LeaseSeconds == 0 {
		opts.LeaseSeconds = 30
	}
	d, err := NewDispatcher(opts)
	if err != nil {
		t.Fatal(err)
	}
	return d, clock
}

func TestDispatcherLifecycle(t *testing.T) {
	d, _ := mustDispatcher(t, Options{})
	spec := testSpec(3)
	sub, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sub.CampaignID != spec.ID() || sub.Resumed {
		t.Fatalf("submit response %+v", sub)
	}
	// Idempotent resubmission attaches.
	sub2, err := d.Submit(spec)
	if err != nil || !sub2.Resumed || sub2.CampaignID != sub.CampaignID {
		t.Fatalf("resubmit: %+v, %v", sub2, err)
	}
	// A different campaign is rejected while this one runs.
	other := testSpec(2)
	if _, err := d.Submit(other); err == nil {
		t.Fatal("concurrent different campaign accepted")
	}

	reg := d.Register(RegisterRequest{Name: "a", Host: "h1", Capacity: 2})
	if reg.WorkerID == "" || reg.LeaseSeconds != 30 {
		t.Fatalf("register response %+v", reg)
	}
	resp, err := d.Book(BookRequest{WorkerID: reg.WorkerID, Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Shards) != 2 || resp.Shards[0].Index != 0 || resp.Shards[1].Index != 1 {
		t.Fatalf("booked %+v, want shards 0 and 1 in campaign order", resp.Shards)
	}
	st := d.State()
	if st.Phase != "running" || st.Counts["booked"] != 2 || st.Counts["queued"] != 1 {
		t.Fatalf("state after booking: %+v", st)
	}

	// Heartbeat with an executing shard moves it to executing.
	hb, err := d.Heartbeat(HeartbeatRequest{WorkerID: reg.WorkerID, Executing: []int{0, 1}})
	if err != nil || len(hb.Lost) != 0 {
		t.Fatalf("heartbeat: %+v, %v", hb, err)
	}
	if st := d.State(); st.Counts["executing"] != 2 {
		t.Fatalf("state after heartbeat: %+v", st.Counts)
	}

	// Upload all three shard records; the third books first.
	r3, err := d.Book(BookRequest{WorkerID: reg.WorkerID, Max: 1})
	if err != nil || len(r3.Shards) != 1 || r3.Shards[0].Index != 2 {
		t.Fatalf("booking third shard: %+v, %v", r3, err)
	}
	for i, cell := range spec.Cells {
		rec := fakeRecord(cell)
		ack, err := d.Result(ResultRequest{WorkerID: reg.WorkerID, CampaignID: sub.CampaignID, Shard: i, Record: rec})
		if err != nil || ack.Duplicate || ack.Stale {
			t.Fatalf("result %d: %+v, %v", i, ack, err)
		}
	}
	if st := d.State(); st.Phase != "merged" || st.Counts["completed"] != 3 {
		t.Fatalf("state after completion: %+v", st)
	}
	merged, err := d.Merged()
	if err != nil {
		t.Fatal(err)
	}
	want := encodeRecords(t, spec.Cells)
	if string(merged) != want {
		t.Fatalf("merged stream:\n%s\nwant:\n%s", merged, want)
	}

	// Duplicate upload after completion is acked as duplicate, first wins.
	ack, err := d.Result(ResultRequest{WorkerID: reg.WorkerID, CampaignID: sub.CampaignID, Shard: 0, Record: fakeRecord(spec.Cells[0])})
	if err != nil || !ack.Duplicate {
		t.Fatalf("duplicate result: %+v, %v", ack, err)
	}

	// Once merged, a different campaign replaces this one.
	if _, err := d.Submit(other); err != nil {
		t.Fatalf("replacement campaign after merge: %v", err)
	}
}

// encodeRecords renders the canonical merged stream for fakeRecord cells.
func encodeRecords(t *testing.T, cells []experiments.Cell) string {
	t.Helper()
	var sb strings.Builder
	for _, cell := range cells {
		rec := fakeRecord(cell)
		js, err := jsonMarshalLine(rec)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(js)
	}
	return sb.String()
}

func TestDispatcherLeaseExpiryRequeues(t *testing.T) {
	d, clock := mustDispatcher(t, Options{LeaseSeconds: 30, MaxAttempts: 3})
	spec := testSpec(2)
	sub, _ := d.Submit(spec)
	a := d.Register(RegisterRequest{Name: "a", Capacity: 2})
	b := d.Register(RegisterRequest{Name: "b", Capacity: 2})

	resp, _ := d.Book(BookRequest{WorkerID: a.WorkerID, Max: 2})
	if len(resp.Shards) != 2 {
		t.Fatalf("booked %d shards, want 2", len(resp.Shards))
	}
	// Worker a dies silently. Before the lease lapses, b gets nothing.
	clock.Advance(29 * time.Second)
	if resp, _ := d.Book(BookRequest{WorkerID: b.WorkerID, Max: 2}); len(resp.Shards) != 0 {
		t.Fatalf("b booked %d shards before lease expiry", len(resp.Shards))
	}
	// After the lease lapses, both shards requeue in campaign order.
	clock.Advance(2 * time.Second)
	resp, _ = d.Book(BookRequest{WorkerID: b.WorkerID, Max: 2})
	if len(resp.Shards) != 2 || resp.Shards[0].Index != 0 {
		t.Fatalf("b booked %+v after expiry, want shards 0,1", resp.Shards)
	}
	if st := d.State(); st.Requeues != 2 {
		t.Fatalf("requeues = %d, want 2", st.Requeues)
	}
	// a's late upload still lands (first record wins, not yet terminal).
	ack, err := d.Result(ResultRequest{WorkerID: a.WorkerID, CampaignID: sub.CampaignID, Shard: 0, Record: fakeRecord(spec.Cells[0])})
	if err != nil || ack.Duplicate {
		t.Fatalf("late upload from expired worker: %+v, %v", ack, err)
	}
	// b finishing the same shard dedupes.
	ack, err = d.Result(ResultRequest{WorkerID: b.WorkerID, CampaignID: sub.CampaignID, Shard: 0, Record: fakeRecord(spec.Cells[0])})
	if err != nil || !ack.Duplicate {
		t.Fatalf("second completion not deduped: %+v, %v", ack, err)
	}
	// a's heartbeat for shard 1 reports the lease lost.
	hb, err := d.Heartbeat(HeartbeatRequest{WorkerID: a.WorkerID, Executing: []int{1}})
	if err != nil || len(hb.Lost) != 1 || hb.Lost[0] != 1 {
		t.Fatalf("expired worker heartbeat: %+v, %v", hb, err)
	}
}

func TestDispatcherMaxAttemptsFailsShard(t *testing.T) {
	d, clock := mustDispatcher(t, Options{LeaseSeconds: 10, MaxAttempts: 2})
	spec := testSpec(1)
	if _, err := d.Submit(spec); err != nil {
		t.Fatal(err)
	}
	w := d.Register(RegisterRequest{Name: "crashy", Capacity: 1})
	for attempt := 0; attempt < 2; attempt++ {
		resp, err := d.Book(BookRequest{WorkerID: w.WorkerID, Max: 1})
		if err != nil || len(resp.Shards) != 1 {
			t.Fatalf("attempt %d: %+v, %v", attempt, resp, err)
		}
		clock.Advance(11 * time.Second)
	}
	// Third book finds the shard abandoned: campaign terminal, record
	// synthesized with an error.
	resp, err := d.Book(BookRequest{WorkerID: w.WorkerID, Max: 1})
	if err != nil || len(resp.Shards) != 0 || !resp.Done {
		t.Fatalf("after exhausting attempts: %+v, %v", resp, err)
	}
	st := d.State()
	if st.Phase != "merged" || st.Counts["failed"] != 1 {
		t.Fatalf("state: %+v", st)
	}
	merged, err := d.Merged()
	if err != nil {
		t.Fatal(err)
	}
	results, err := experiments.ReadStreamFile(writeTemp(t, merged))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Err == nil {
		t.Fatalf("merged stream of abandoned shard: %+v", results)
	}
}

func TestDispatcherStaleAndBogusResults(t *testing.T) {
	d, _ := mustDispatcher(t, Options{})
	spec := testSpec(2)
	sub, _ := d.Submit(spec)
	w := d.Register(RegisterRequest{Name: "w", Capacity: 1})

	// Wrong campaign ID: stale.
	ack, err := d.Result(ResultRequest{WorkerID: w.WorkerID, CampaignID: "nope", Shard: 0, Record: fakeRecord(spec.Cells[0])})
	if err != nil || !ack.Stale {
		t.Fatalf("stale result: %+v, %v", ack, err)
	}
	// Out-of-range shard index: error.
	if _, err := d.Result(ResultRequest{WorkerID: w.WorkerID, CampaignID: sub.CampaignID, Shard: 7, Record: fakeRecord(spec.Cells[0])}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	// Record for the wrong cell: error (protects merge canonical order).
	if _, err := d.Result(ResultRequest{WorkerID: w.WorkerID, CampaignID: sub.CampaignID, Shard: 0, Record: fakeRecord(spec.Cells[1])}); err == nil {
		t.Fatal("mismatched cell record accepted")
	}
	// Unknown worker booking: error.
	if _, err := d.Book(BookRequest{WorkerID: "ghost", Max: 1}); err == nil {
		t.Fatal("unknown worker booked")
	}
}

func TestDispatcherJournalResume(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "queue.journal")
	spec := testSpec(3)

	d1, _ := mustDispatcher(t, Options{JournalPath: journal})
	sub, err := d1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := d1.Register(RegisterRequest{Name: "w", Host: "h", Capacity: 3})
	if _, err := d1.Book(BookRequest{WorkerID: w.WorkerID, Max: 3}); err != nil {
		t.Fatal(err)
	}
	// Shard 1 completes; shards 0 and 2 are in flight when the
	// dispatcher "crashes".
	if _, err := d1.Result(ResultRequest{WorkerID: w.WorkerID, CampaignID: sub.CampaignID, Shard: 1, Record: fakeRecord(spec.Cells[1])}); err != nil {
		t.Fatal(err)
	}

	// Restart: the journal restores the spec and the completed shard;
	// the in-flight shards requeue.
	d2, _ := mustDispatcher(t, Options{JournalPath: journal})
	st := d2.State()
	if st.CampaignID != sub.CampaignID {
		t.Fatalf("resumed campaign %q, want %q", st.CampaignID, sub.CampaignID)
	}
	if st.Counts["completed"] != 1 || st.Counts["queued"] != 2 {
		t.Fatalf("resumed state: %+v", st.Counts)
	}
	// Resubmitting the identical spec attaches.
	if sub2, err := d2.Submit(spec); err != nil || !sub2.Resumed {
		t.Fatalf("resubmit after resume: %+v, %v", sub2, err)
	}
	// Finish the rest on a new worker; merged stream is canonical.
	w2 := d2.Register(RegisterRequest{Name: "w2", Capacity: 2})
	resp, _ := d2.Book(BookRequest{WorkerID: w2.WorkerID, Max: 2})
	if len(resp.Shards) != 2 || resp.Shards[0].Index != 0 || resp.Shards[1].Index != 2 {
		t.Fatalf("resumed queue: %+v, want shards 0 and 2", resp.Shards)
	}
	for _, s := range resp.Shards {
		if _, err := d2.Result(ResultRequest{WorkerID: w2.WorkerID, CampaignID: sub.CampaignID, Shard: s.Index, Record: fakeRecord(s.Cell)}); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := d2.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if want := encodeRecords(t, spec.Cells); string(merged) != want {
		t.Fatalf("merged after resume:\n%s\nwant:\n%s", merged, want)
	}

	// A third restart of the fully merged campaign re-merges from the
	// journal alone.
	d3, _ := mustDispatcher(t, Options{JournalPath: journal})
	merged3, err := d3.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if string(merged3) != string(merged) {
		t.Fatal("journal-only re-merge differs")
	}
}

func TestDispatcherJournalTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "queue.journal")
	spec := testSpec(2)

	d1, _ := mustDispatcher(t, Options{JournalPath: journal})
	sub, _ := d1.Submit(spec)
	w := d1.Register(RegisterRequest{Name: "w", Capacity: 2})
	d1.Book(BookRequest{WorkerID: w.WorkerID, Max: 2})
	d1.Result(ResultRequest{WorkerID: w.WorkerID, CampaignID: sub.CampaignID, Shard: 0, Record: fakeRecord(spec.Cells[0])})

	// Simulate a crash mid-append: chop bytes off the journal tail.
	truncateTail(t, journal, 10)

	d2, _ := mustDispatcher(t, Options{JournalPath: journal})
	st := d2.State()
	if st.CampaignID != sub.CampaignID {
		t.Fatalf("campaign %q after truncated resume", st.CampaignID)
	}
	// The cut-off record is gone; its shard simply requeues.
	if got := st.Counts["completed"] + st.Counts["queued"]; got != 2 {
		t.Fatalf("resumed counts: %+v", st.Counts)
	}
}

func TestSubmitValidation(t *testing.T) {
	d, _ := mustDispatcher(t, Options{})
	if _, err := d.Submit(CampaignSpec{}); err == nil {
		t.Fatal("empty campaign accepted")
	}
	spec := testSpec(1)
	spec.Seeds = nil
	if _, err := d.Submit(spec); err == nil {
		t.Fatal("seedless campaign accepted")
	}
}

// jsonMarshalLine encodes exactly like the merge step (json.Encoder
// output is json.Marshal plus a trailing newline).
func jsonMarshalLine(v any) (string, error) {
	js, err := json.Marshal(v)
	return string(js) + "\n", err
}

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.jsonl")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func truncateTail(t *testing.T, path string, n int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) <= n {
		t.Fatalf("journal only %d bytes", len(data))
	}
	if err := os.WriteFile(path, data[:len(data)-n], 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestShardStateString(t *testing.T) {
	for st, want := range map[ShardState]string{
		Queued: "queued", Booked: "booked", Executing: "executing",
		Completed: "completed", Failed: "failed", ShardState(9): "ShardState(9)",
	} {
		if got := st.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(st), got, want)
		}
	}
}

func TestCampaignSpecID(t *testing.T) {
	a, b := testSpec(2), testSpec(2)
	if a.ID() != b.ID() {
		t.Fatal("identical specs hash differently")
	}
	b.Seeds = []uint64{1, 2}
	if a.ID() == b.ID() {
		t.Fatal("different specs hash identically")
	}
	if a.ID() == "" || len(a.ID()) != 12 {
		t.Fatalf("ID %q", a.ID())
	}
}
