package fabric

import (
	"context"
	"os"
	"runtime"
	"sync"
	"time"

	"chicsim/internal/experiments"
)

// Worker is a pull-based execution daemon: it registers with a
// dispatcher, books shards whenever it has free capacity, executes each
// shard through the ordinary experiments.Run path, heartbeats while
// executing, and uploads CellRecords with retry (the dispatcher dedupes).
type Worker struct {
	// Dispatcher is the dispatcher base URL, e.g. "http://127.0.0.1:7171".
	Dispatcher string

	// Name identifies the worker in logs and provenance. Default: host:pid.
	Name string

	// Host is the capacity attribute reported at registration. Default:
	// os.Hostname.
	Host string

	// Capacity is how many shards run concurrently (each shard's seeds
	// run sequentially, keeping per-shard determinism trivially intact).
	// Default: GOMAXPROCS.
	Capacity int

	// Poll is the idle re-book interval. Default 500 ms.
	Poll time.Duration

	// KeepAlive keeps the daemon polling for future campaigns after the
	// current one merges; false exits Run once the campaign is done.
	KeepAlive bool

	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)

	// RunShard executes one shard (test hook). Default ExecuteShard.
	RunShard func(spec CampaignSpec, shard Shard) experiments.CellRecord

	// OnShardDone, when non-nil, observes every shard this worker
	// uploaded (provenance for worker-side manifests). Called from shard
	// goroutines.
	OnShardDone func(shard Shard, rec experiments.CellRecord)

	// Client overrides the HTTP client (tests). Default: derived from
	// Dispatcher.
	Client *Client
}

// ExecuteShard runs one shard exactly as a single-process campaign would
// run that cell: same Base, same seeds, aggregates sorted by seed — so
// the resulting CellRecord is byte-identical to the record a
// single-process `gridsweep -jsonl` run streams for the cell.
func ExecuteShard(spec CampaignSpec, shard Shard) experiments.CellRecord {
	camp := experiments.Campaign{
		Base:        spec.Base,
		Cells:       []experiments.Cell{shard.Cell},
		Seeds:       spec.Seeds,
		Workers:     1,
		ObsInterval: spec.ObsInterval,
	}
	results := experiments.Run(camp)
	return experiments.RecordOf(&results[0])
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run drives the worker until ctx is canceled or — when KeepAlive is
// false — the campaign merges and no shards are in flight. Returns nil
// on a clean campaign-done exit.
func (w *Worker) Run(ctx context.Context) error {
	if w.Name == "" {
		host, _ := os.Hostname()
		w.Name = host
	}
	if w.Host == "" {
		w.Host, _ = os.Hostname()
	}
	if w.Capacity <= 0 {
		w.Capacity = runtime.GOMAXPROCS(0)
	}
	if w.Poll <= 0 {
		w.Poll = 500 * time.Millisecond
	}
	if w.RunShard == nil {
		w.RunShard = ExecuteShard
	}
	c := w.Client
	if c == nil {
		c = &Client{BaseURL: w.Dispatcher}
	}

	st := &workerState{
		worker:    w,
		client:    c,
		executing: make(map[int]Shard),
		specs:     make(map[string]*CampaignSpec),
		wake:      make(chan struct{}, 1),
	}
	lease, err := st.register(ctx)
	if err != nil {
		return err
	}
	hbEvery := time.Duration(lease / 3 * float64(time.Second))
	if hbEvery < 100*time.Millisecond {
		hbEvery = 100 * time.Millisecond
	}
	hb := time.NewTicker(hbEvery)
	defer hb.Stop()
	poll := time.NewTimer(0)
	defer poll.Stop()

	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-hb.C:
			st.heartbeat()
		case <-st.wake:
			if st.tryBook(ctx) {
				return nil
			}
		case <-poll.C:
			if st.tryBook(ctx) {
				return nil
			}
			poll.Reset(w.Poll)
		}
	}
}

// workerState is the mutable half of a running worker.
type workerState struct {
	worker *Worker
	client *Client

	mu        sync.Mutex
	id        string
	executing map[int]Shard
	specs     map[string]*CampaignSpec
	wake      chan struct{}
}

// register retries until the dispatcher admits the worker or ctx ends.
func (st *workerState) register(ctx context.Context) (lease float64, err error) {
	w := st.worker
	for {
		resp, rerr := st.client.Register(RegisterRequest{
			Name: w.Name, Host: w.Host, PID: os.Getpid(), Capacity: w.Capacity,
		})
		if rerr == nil {
			st.mu.Lock()
			st.id = resp.WorkerID
			st.mu.Unlock()
			w.logf("gridworker: registered as %s (lease %gs)", resp.WorkerID, resp.LeaseSeconds)
			return resp.LeaseSeconds, nil
		}
		w.logf("gridworker: register: %v (retrying)", rerr)
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(w.Poll):
		}
	}
}

func (st *workerState) workerID() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.id
}

func (st *workerState) inflight() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	idxs := make([]int, 0, len(st.executing))
	for idx := range st.executing {
		idxs = append(idxs, idx)
	}
	return idxs
}

func (st *workerState) heartbeat() {
	idxs := st.inflight()
	if len(idxs) == 0 {
		return
	}
	resp, err := st.client.Heartbeat(HeartbeatRequest{WorkerID: st.workerID(), Executing: idxs})
	if err != nil {
		st.worker.logf("gridworker: heartbeat: %v", err)
		return
	}
	for _, lost := range resp.Lost {
		// The lease expired (e.g. a long GC pause or dispatcher restart);
		// the shard is someone else's now. Keep computing — the upload
		// will be deduped or stale-acked — but say so.
		st.worker.logf("gridworker: lost lease on shard %d", lost)
	}
}

// tryBook books up to the free capacity and launches shard executions.
// Returns true when the worker should exit (campaign done, KeepAlive
// off, nothing in flight).
func (st *workerState) tryBook(ctx context.Context) (exit bool) {
	w := st.worker
	st.mu.Lock()
	free := w.Capacity - len(st.executing)
	idle := len(st.executing) == 0
	st.mu.Unlock()
	if free <= 0 {
		return false
	}
	resp, err := st.client.Book(BookRequest{WorkerID: st.workerID(), Max: free})
	if err != nil {
		// Dispatcher restarted and forgot us: re-register and retry on
		// the next tick.
		w.logf("gridworker: book: %v", err)
		if _, rerr := st.register(ctx); rerr != nil {
			return false
		}
		return false
	}
	if len(resp.Shards) == 0 {
		return resp.Done && idle && !w.KeepAlive
	}
	spec := st.specFor(resp.CampaignID)
	if spec == nil {
		return false
	}
	for _, shard := range resp.Shards {
		st.mu.Lock()
		st.executing[shard.Index] = shard
		st.mu.Unlock()
		go st.execute(ctx, resp.CampaignID, *spec, shard)
	}
	return false
}

// specFor returns (fetching and caching if needed) the spec for a
// campaign ID, or nil when the dispatcher has moved on.
func (st *workerState) specFor(id string) *CampaignSpec {
	st.mu.Lock()
	spec := st.specs[id]
	st.mu.Unlock()
	if spec != nil {
		return spec
	}
	doc, err := st.client.Campaign()
	if err != nil || doc.CampaignID != id {
		st.worker.logf("gridworker: campaign %s spec unavailable: %v", id, err)
		return nil
	}
	st.mu.Lock()
	st.specs[id] = &doc.Spec
	st.mu.Unlock()
	return &doc.Spec
}

// execute runs one shard and uploads its record with retry.
func (st *workerState) execute(ctx context.Context, campaignID string, spec CampaignSpec, shard Shard) {
	w := st.worker
	w.logf("gridworker: executing shard %d (%v)", shard.Index, shard.Cell)
	rec := w.RunShard(spec, shard)
	defer func() {
		st.mu.Lock()
		delete(st.executing, shard.Index)
		st.mu.Unlock()
		select {
		case st.wake <- struct{}{}:
		default:
		}
	}()
	for {
		resp, err := st.client.Result(ResultRequest{
			WorkerID: st.workerID(), CampaignID: campaignID, Shard: shard.Index, Record: rec,
		})
		if err == nil {
			switch {
			case resp.Stale:
				w.logf("gridworker: shard %d result stale (campaign moved on)", shard.Index)
			case resp.Duplicate:
				w.logf("gridworker: shard %d result was a duplicate", shard.Index)
			default:
				w.logf("gridworker: shard %d (%v) uploaded", shard.Index, shard.Cell)
			}
			if w.OnShardDone != nil && !resp.Stale {
				w.OnShardDone(shard, rec)
			}
			return
		}
		w.logf("gridworker: upload shard %d: %v (retrying)", shard.Index, err)
		select {
		case <-ctx.Done():
			return
		case <-time.After(w.Poll):
		}
	}
}
