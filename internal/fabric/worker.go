package fabric

import (
	"context"
	"log/slog"
	"os"
	"runtime"
	"sync"
	"time"

	"chicsim/internal/experiments"
	"chicsim/internal/obs/logging"
	"chicsim/internal/obs/registry"
)

// Worker is a pull-based execution daemon: it registers with a
// dispatcher, books shards whenever it has free capacity, executes each
// shard through the ordinary experiments.Run path, heartbeats while
// executing, and uploads CellRecords with retry (the dispatcher dedupes).
type Worker struct {
	// Dispatcher is the dispatcher base URL, e.g. "http://127.0.0.1:7171".
	Dispatcher string

	// Name identifies the worker in logs and provenance. Default: host:pid.
	Name string

	// Host is the capacity attribute reported at registration. Default:
	// os.Hostname.
	Host string

	// Capacity is how many shards run concurrently (each shard's seeds
	// run sequentially, keeping per-shard determinism trivially intact).
	// Default: GOMAXPROCS.
	Capacity int

	// Poll is the idle re-book interval. Default 500 ms.
	Poll time.Duration

	// KeepAlive keeps the daemon polling for future campaigns after the
	// current one merges; false exits Run once the campaign is done.
	KeepAlive bool

	// Logger, when non-nil, receives structured operational log lines.
	Logger *slog.Logger

	// Logf, when non-nil and Logger is nil, receives the same lines
	// through a printf-style adapter (tests pass t.Logf here).
	Logf func(format string, args ...any)

	// RunShard executes one shard (test hook). Default ExecuteShard.
	RunShard func(spec CampaignSpec, shard Shard) experiments.CellRecord

	// OnShardDone, when non-nil, observes every shard this worker
	// uploaded (provenance for worker-side manifests). Called from shard
	// goroutines.
	OnShardDone func(shard Shard, rec experiments.CellRecord)

	// Client overrides the HTTP client (tests). Default: derived from
	// Dispatcher.
	Client *Client

	log *slog.Logger

	obsOnce sync.Once
	reg     *registry.Registry
	m       workerMetrics

	stMu sync.Mutex
	st   *workerState
}

// workerMetrics are the worker-side fabric metrics, served on the
// daemon's /metrics endpoint when -listen is set.
type workerMetrics struct {
	executedOK, executedFailed registry.Counter
	uploadOK, uploadDup        registry.Counter
	uploadStale, uploadRetry   registry.Counter
	heartbeats                 registry.Counter
	busyG, capG                registry.Gauge
	uploadH                    registry.Histogram
}

// Metrics returns the worker's metrics registry, creating it on first
// use, so a daemon can mount it on /metrics before calling Run.
func (w *Worker) Metrics() *registry.Registry {
	w.obsOnce.Do(func() {
		w.reg = registry.New()
		ex := w.reg.Counter("worker_shards_executed_total", "Shards this worker finished computing, by record outcome.", "status")
		w.m.executedOK, w.m.executedFailed = ex.With("ok"), ex.With("failed")
		up := w.reg.Counter("worker_uploads_total", "Result upload attempts, by outcome (retry = attempt that errored).", "status")
		w.m.uploadOK, w.m.uploadDup = up.With("ok"), up.With("duplicate")
		w.m.uploadStale, w.m.uploadRetry = up.With("stale"), up.With("retry")
		w.m.heartbeats = w.reg.Counter("worker_heartbeats_total", "Heartbeats sent while shards were in flight.").With()
		w.m.busyG = w.reg.Gauge("worker_busy_slots", "Shards currently executing on this worker.").With()
		w.m.capG = w.reg.Gauge("worker_capacity", "Concurrent shard capacity.").With()
		w.m.uploadH = w.reg.Histogram("worker_upload_seconds", "Latency of one result upload attempt.",
			[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}).With()
	})
	return w.reg
}

// WorkerSnapshot is the worker daemon's /status document.
type WorkerSnapshot struct {
	ID         string `json:"id,omitempty"` // dispatcher-assigned, empty before registration
	Name       string `json:"name"`
	Host       string `json:"host,omitempty"`
	Capacity   int    `json:"capacity"`
	Busy       int    `json:"busy"`
	Executing  []int  `json:"executing,omitempty"`
	ShardsDone int    `json:"shards_done"`
}

// Status snapshots the worker for /status; safe to call at any time,
// including before Run.
func (w *Worker) Status() WorkerSnapshot {
	snap := WorkerSnapshot{Name: w.Name, Host: w.Host, Capacity: w.Capacity}
	w.stMu.Lock()
	st := w.st
	w.stMu.Unlock()
	if st == nil {
		return snap
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	snap.ID = st.id
	snap.Busy = len(st.executing)
	for idx := range st.executing {
		snap.Executing = append(snap.Executing, idx)
	}
	snap.ShardsDone = st.done
	return snap
}

// ExecuteShard runs one shard exactly as a single-process campaign would
// run that cell: same Base, same seeds, aggregates sorted by seed — so
// the resulting CellRecord is byte-identical to the record a
// single-process `gridsweep -jsonl` run streams for the cell.
func ExecuteShard(spec CampaignSpec, shard Shard) experiments.CellRecord {
	camp := experiments.Campaign{
		Base:        spec.Base,
		Cells:       []experiments.Cell{shard.Cell},
		Seeds:       spec.Seeds,
		Workers:     1,
		ObsInterval: spec.ObsInterval,
	}
	results := experiments.Run(camp)
	return experiments.RecordOf(&results[0])
}

// Run drives the worker until ctx is canceled or — when KeepAlive is
// false — the campaign merges and no shards are in flight. Returns nil
// on a clean campaign-done exit.
func (w *Worker) Run(ctx context.Context) error {
	if w.Name == "" {
		host, _ := os.Hostname()
		w.Name = host
	}
	if w.Host == "" {
		w.Host, _ = os.Hostname()
	}
	if w.Capacity <= 0 {
		w.Capacity = runtime.GOMAXPROCS(0)
	}
	if w.Poll <= 0 {
		w.Poll = 500 * time.Millisecond
	}
	if w.RunShard == nil {
		w.RunShard = ExecuteShard
	}
	if w.Logger != nil {
		w.log = w.Logger
	} else {
		w.log = logging.Logf(w.Logf)
	}
	w.Metrics()
	w.m.capG.Set(float64(w.Capacity))
	c := w.Client
	if c == nil {
		c = &Client{BaseURL: w.Dispatcher}
	}

	st := &workerState{
		worker:    w,
		client:    c,
		executing: make(map[int]Shard),
		specs:     make(map[string]*CampaignSpec),
		wake:      make(chan struct{}, 1),
	}
	w.stMu.Lock()
	w.st = st
	w.stMu.Unlock()
	lease, err := st.register(ctx)
	if err != nil {
		return err
	}
	hbEvery := time.Duration(lease / 3 * float64(time.Second))
	if hbEvery < 100*time.Millisecond {
		hbEvery = 100 * time.Millisecond
	}
	hb := time.NewTicker(hbEvery)
	defer hb.Stop()
	poll := time.NewTimer(0)
	defer poll.Stop()

	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-hb.C:
			st.heartbeat()
		case <-st.wake:
			if st.tryBook(ctx) {
				return nil
			}
		case <-poll.C:
			if st.tryBook(ctx) {
				return nil
			}
			poll.Reset(w.Poll)
		}
	}
}

// workerState is the mutable half of a running worker.
type workerState struct {
	worker *Worker
	client *Client

	mu        sync.Mutex
	id        string
	executing map[int]Shard
	specs     map[string]*CampaignSpec
	done      int
	wake      chan struct{}
}

// register retries until the dispatcher admits the worker or ctx ends.
func (st *workerState) register(ctx context.Context) (lease float64, err error) {
	w := st.worker
	for {
		resp, rerr := st.client.Register(RegisterRequest{
			Name: w.Name, Host: w.Host, PID: os.Getpid(), Capacity: w.Capacity,
		})
		if rerr == nil {
			st.mu.Lock()
			st.id = resp.WorkerID
			st.mu.Unlock()
			w.log.Info("registered", "worker", resp.WorkerID, "lease_s", resp.LeaseSeconds)
			return resp.LeaseSeconds, nil
		}
		w.log.Warn("register failed; retrying", "err", rerr)
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(w.Poll):
		}
	}
}

func (st *workerState) workerID() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.id
}

func (st *workerState) inflight() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	idxs := make([]int, 0, len(st.executing))
	for idx := range st.executing {
		idxs = append(idxs, idx)
	}
	return idxs
}

func (st *workerState) heartbeat() {
	idxs := st.inflight()
	if len(idxs) == 0 {
		return
	}
	w := st.worker
	resp, err := st.client.Heartbeat(HeartbeatRequest{WorkerID: st.workerID(), Executing: idxs})
	if err != nil {
		w.log.Warn("heartbeat failed", "err", err)
		return
	}
	w.m.heartbeats.Inc()
	for _, lost := range resp.Lost {
		// The lease expired (e.g. a long GC pause or dispatcher restart);
		// the shard is someone else's now. Keep computing — the upload
		// will be deduped or stale-acked — but say so.
		w.log.Warn("lost lease on shard", "shard", lost)
	}
}

// tryBook books up to the free capacity and launches shard executions.
// Returns true when the worker should exit (campaign done, KeepAlive
// off, nothing in flight).
func (st *workerState) tryBook(ctx context.Context) (exit bool) {
	w := st.worker
	st.mu.Lock()
	free := w.Capacity - len(st.executing)
	idle := len(st.executing) == 0
	st.mu.Unlock()
	if free <= 0 {
		return false
	}
	resp, err := st.client.Book(BookRequest{WorkerID: st.workerID(), Max: free})
	if err != nil {
		// Dispatcher restarted and forgot us: re-register and retry on
		// the next tick.
		w.log.Warn("book failed; re-registering", "err", err)
		if _, rerr := st.register(ctx); rerr != nil {
			return false
		}
		return false
	}
	if len(resp.Shards) == 0 {
		return resp.Done && idle && !w.KeepAlive
	}
	spec := st.specFor(resp.CampaignID)
	if spec == nil {
		return false
	}
	for _, shard := range resp.Shards {
		st.mu.Lock()
		st.executing[shard.Index] = shard
		w.m.busyG.Set(float64(len(st.executing)))
		st.mu.Unlock()
		go st.execute(ctx, resp.CampaignID, *spec, shard)
	}
	return false
}

// specFor returns (fetching and caching if needed) the spec for a
// campaign ID, or nil when the dispatcher has moved on.
func (st *workerState) specFor(id string) *CampaignSpec {
	st.mu.Lock()
	spec := st.specs[id]
	st.mu.Unlock()
	if spec != nil {
		return spec
	}
	doc, err := st.client.Campaign()
	if err != nil || doc.CampaignID != id {
		st.worker.log.Warn("campaign spec unavailable", "campaign", id, "err", err)
		return nil
	}
	st.mu.Lock()
	st.specs[id] = &doc.Spec
	st.mu.Unlock()
	return &doc.Spec
}

// execute runs one shard and uploads its record with retry.
func (st *workerState) execute(ctx context.Context, campaignID string, spec CampaignSpec, shard Shard) {
	w := st.worker
	w.log.Info("executing shard", "campaign", campaignID, "shard", shard.Index, "cell", shard.Cell.String())
	rec := w.RunShard(spec, shard)
	if rec.Err != "" {
		w.m.executedFailed.Inc()
	} else {
		w.m.executedOK.Inc()
	}
	defer func() {
		st.mu.Lock()
		delete(st.executing, shard.Index)
		w.m.busyG.Set(float64(len(st.executing)))
		st.mu.Unlock()
		select {
		case st.wake <- struct{}{}:
		default:
		}
	}()
	for {
		t0 := time.Now()
		resp, err := st.client.Result(ResultRequest{
			WorkerID: st.workerID(), CampaignID: campaignID, Shard: shard.Index, Record: rec,
		})
		w.m.uploadH.Observe(time.Since(t0).Seconds())
		if err == nil {
			switch {
			case resp.Stale:
				w.m.uploadStale.Inc()
				w.log.Warn("shard result stale (campaign moved on)", "shard", shard.Index)
			case resp.Duplicate:
				w.m.uploadDup.Inc()
				w.log.Info("shard result was a duplicate", "shard", shard.Index)
			default:
				w.m.uploadOK.Inc()
				w.log.Info("shard uploaded", "campaign", campaignID, "shard", shard.Index, "cell", shard.Cell.String())
			}
			if !resp.Stale {
				st.mu.Lock()
				st.done++
				st.mu.Unlock()
				if w.OnShardDone != nil {
					w.OnShardDone(shard, rec)
				}
			}
			return
		}
		w.m.uploadRetry.Inc()
		w.log.Warn("shard upload failed; retrying", "shard", shard.Index, "err", err)
		select {
		case <-ctx.Done():
			return
		case <-time.After(w.Poll):
		}
	}
}
