package intern

import "testing"

func TestTableAssignsDenseIDsInFirstSeenOrder(t *testing.T) {
	var tab Table
	if tab.Len() != 0 {
		t.Fatalf("zero table Len = %d, want 0", tab.Len())
	}
	if _, ok := tab.Lookup("a"); ok {
		t.Fatal("Lookup on empty table reported ok")
	}
	words := []string{"alpha", "beta", "", "gamma", "beta", "alpha"}
	wantID := []uint32{0, 1, 2, 3, 1, 0}
	for i, w := range words {
		if id := tab.Intern(w); id != wantID[i] {
			t.Fatalf("Intern(%q) = %d, want %d", w, id, wantID[i])
		}
	}
	if tab.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tab.Len())
	}
	for i, w := range words {
		id, ok := tab.Lookup(w)
		if !ok || id != wantID[i] {
			t.Fatalf("Lookup(%q) = %d,%v, want %d,true", w, id, ok, wantID[i])
		}
		if tab.Name(id) != w {
			t.Fatalf("Name(%d) = %q, want %q", id, tab.Name(id), w)
		}
	}
}

func TestNamePanicsOnUnassignedID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Name on an unassigned id did not panic")
		}
	}()
	var tab Table
	tab.Intern("only")
	tab.Name(1)
}

// FuzzIntern checks the round-trip invariants on arbitrary inputs:
// interning is idempotent, Name inverts Intern, Lookup agrees with
// Intern, and Len counts exactly the distinct strings seen.
func FuzzIntern(f *testing.F) {
	f.Add("a", "b", "a")
	f.Add("", "\x00", "x\x00y")
	f.Add("site-0", "site-1", "site-0")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		var tab Table
		distinct := make(map[string]bool)
		for _, s := range []string{a, b, c, a, b} {
			id := tab.Intern(s)
			distinct[s] = true
			if got := tab.Intern(s); got != id {
				t.Fatalf("Intern(%q) unstable: %d then %d", s, id, got)
			}
			if got, ok := tab.Lookup(s); !ok || got != id {
				t.Fatalf("Lookup(%q) = %d,%v after Intern returned %d", s, got, ok, id)
			}
			if name := tab.Name(id); name != s {
				t.Fatalf("Name(Intern(%q)) = %q", s, name)
			}
			if int(id) >= tab.Len() {
				t.Fatalf("id %d out of range for Len %d", id, tab.Len())
			}
		}
		if tab.Len() != len(distinct) {
			t.Fatalf("Len = %d, want %d distinct", tab.Len(), len(distinct))
		}
	})
}
