// Package intern maps strings to small dense integer ids.
//
// Several hot structures in the simulator key on identifiers that arrive
// as strings (metric label values, config-derived names) but are drawn
// from small, stable vocabularies. Interning each distinct string once
// yields a dense uint32 id, so the owning structure can replace a
// string-keyed map — hashing the full string on every access — with a
// slice indexed by id. The Table is the single source of truth for the
// id↔string bijection.
//
// A Table is not safe for concurrent use; callers that share one across
// goroutines must provide their own locking (the metrics registry guards
// its per-family Table with the family mutex it already holds).
package intern

// Table assigns dense ids to strings in first-seen order. The zero value
// is an empty table ready for use.
type Table struct {
	ids   map[string]uint32
	names []string
}

// Intern returns the id for s, assigning the next dense id on first
// sight. Ids start at 0 and never change once assigned.
func (t *Table) Intern(s string) uint32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	if t.ids == nil {
		t.ids = make(map[string]uint32)
	}
	id := uint32(len(t.names))
	t.ids[s] = id
	t.names = append(t.names, s)
	return id
}

// Lookup returns the id previously assigned to s, or ok=false if s has
// never been interned. It never assigns.
func (t *Table) Lookup(s string) (id uint32, ok bool) {
	id, ok = t.ids[s]
	return id, ok
}

// Name returns the string with the given id. It panics when id has not
// been assigned, mirroring slice indexing.
func (t *Table) Name(id uint32) string { return t.names[id] }

// Len returns the number of distinct strings interned so far; valid ids
// are exactly [0, Len).
func (t *Table) Len() int { return len(t.names) }
