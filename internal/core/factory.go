package core

import (
	"fmt"
	"sort"

	"chicsim/internal/rng"
	"chicsim/internal/scheduler"
	"chicsim/internal/scheduler/ds"
	"chicsim/internal/scheduler/es"
	"chicsim/internal/scheduler/feedback"
	"chicsim/internal/scheduler/ls"
)

// NewExternal instantiates an External Scheduler by name. The source seeds
// the algorithm's tie-breaking/choice stream. avgComputeSec and avgCEs feed
// the JobBestCost estimator.
func NewExternal(name string, src *rng.Source, avgComputeSec, avgCEs float64) (scheduler.External, error) {
	switch name {
	case "JobRandom":
		return es.Random{Src: src}, nil
	case "JobLeastLoaded":
		return &es.LeastLoaded{Src: src}, nil
	case "JobDataPresent":
		return &es.DataPresent{Src: src}, nil
	case "JobLocal":
		return es.Local{}, nil
	case "JobBestCost":
		return &es.BestCost{Src: src, AvgComputeSec: avgComputeSec, CEsPerSite: avgCEs}, nil
	case "JobAdaptive":
		return &es.Adaptive{Src: src, PullFraction: 0.5}, nil
	case "JobRegional":
		return &es.Regional{Src: src}, nil
	case "JobFeedback":
		// Constructed without a tracker: nil-safe telemetry reads make the
		// standalone policy behave exactly like JobDataPresent. The
		// simulation attaches its tracker and Config.Feedback after
		// construction (see wireFeedback in sim.go).
		return &feedback.ES{Src: src, AvgComputeSec: avgComputeSec, CEsPerSite: avgCEs}, nil
	default:
		return nil, fmt.Errorf("core: unknown external scheduler %q (have %v)", name, ExternalNames())
	}
}

// NewBatch instantiates a batch External Scheduler by name.
func NewBatch(name string, avgComputeSec float64) (scheduler.Batch, error) {
	switch name {
	case "BatchMinMin":
		return es.BatchMinMin{AvgComputeSec: avgComputeSec}, nil
	case "BatchMaxMin":
		return es.BatchMaxMin{AvgComputeSec: avgComputeSec}, nil
	case "BatchSufferage":
		return es.BatchSufferage{AvgComputeSec: avgComputeSec}, nil
	default:
		return nil, fmt.Errorf("core: unknown batch scheduler %q (have %v)", name, BatchNames())
	}
}

// BatchNames lists the available batch heuristics.
func BatchNames() []string { return []string{"BatchMinMin", "BatchMaxMin", "BatchSufferage"} }

// NewLocal instantiates a Local Scheduler by name.
func NewLocal(name string) (scheduler.Local, error) {
	switch name {
	case "FIFO":
		return ls.FIFO{}, nil
	case "SJF":
		return ls.SJF{}, nil
	case "LIFO":
		return ls.LIFO{}, nil
	default:
		return nil, fmt.Errorf("core: unknown local scheduler %q (have %v)", name, LocalNames())
	}
}

// NewDataset instantiates a Dataset Scheduler by name.
func NewDataset(name string, src *rng.Source) (scheduler.Dataset, error) {
	switch name {
	case "DataDoNothing":
		return ds.DoNothing{}, nil
	case "DataRandom":
		return ds.Random{Src: src}, nil
	case "DataLeastLoaded":
		return ds.LeastLoaded{Src: src}, nil
	case "DataCascade":
		return ds.Cascade{Src: src}, nil
	case "DataBestClient":
		return ds.BestClient{Src: src}, nil
	case "DataFeedback":
		// Tracker and params attached by the simulation (see NewExternal's
		// JobFeedback case); standalone it matches DataLeastLoaded.
		return &feedback.DS{Src: src}, nil
	default:
		return nil, fmt.Errorf("core: unknown dataset scheduler %q (have %v)", name, DatasetNames())
	}
}

// ExternalNames lists the available ES algorithms. The first four are the
// paper's; the rest are extensions.
func ExternalNames() []string {
	return []string{"JobRandom", "JobLeastLoaded", "JobDataPresent", "JobLocal", "JobBestCost", "JobAdaptive", "JobRegional", "JobFeedback"}
}

// PaperExternalNames lists the paper's four ES algorithms in figure order.
func PaperExternalNames() []string {
	return []string{"JobRandom", "JobLeastLoaded", "JobDataPresent", "JobLocal"}
}

// LocalNames lists the available LS algorithms (FIFO is the paper's).
func LocalNames() []string { return []string{"FIFO", "SJF", "LIFO"} }

// DatasetNames lists the available DS algorithms. The first three are the
// paper's; the rest are extensions.
func DatasetNames() []string {
	return []string{"DataDoNothing", "DataRandom", "DataLeastLoaded", "DataCascade", "DataBestClient", "DataFeedback"}
}

// PaperDatasetNames lists the paper's three DS algorithms in figure order.
func PaperDatasetNames() []string {
	return []string{"DataDoNothing", "DataRandom", "DataLeastLoaded"}
}

// AllNames returns every registered algorithm name, sorted, for help text.
func AllNames() []string {
	var out []string
	out = append(out, ExternalNames()...)
	out = append(out, LocalNames()...)
	out = append(out, DatasetNames()...)
	sort.Strings(out)
	return out
}
