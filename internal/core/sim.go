package core

import (
	"fmt"

	"chicsim/internal/catalog"
	"chicsim/internal/desim"
	"chicsim/internal/faults"
	"chicsim/internal/gis"
	"chicsim/internal/job"
	"chicsim/internal/metrics"
	"chicsim/internal/netsim"
	"chicsim/internal/obs"
	"chicsim/internal/obs/watchdog"
	"chicsim/internal/rng"
	"chicsim/internal/scheduler"
	"chicsim/internal/scheduler/es"
	"chicsim/internal/scheduler/feedback"
	"chicsim/internal/site"
	"chicsim/internal/stats"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
	"chicsim/internal/trace"
	"chicsim/internal/workload"
)

// maxBoundedSeriesPoints caps Results.Series under ResultModeBounded: the
// probe registry downsamples through a stride-doubling window instead of
// growing one Point per tick (see obs.Registry.LimitPoints).
const maxBoundedSeriesPoints = 512

// Results are the outputs of one Data Grid execution (DGE).
type Results struct {
	metrics.Results

	ES, LS, DS    string
	Seed          uint64
	BandwidthMBps float64

	TotalCEs       int
	Completed      bool // false when MaxTime aborted the run
	CacheHits      int
	CacheMisses    int
	Evictions      int
	FetchesStarted int
	Replications   int // DS pushes actually issued
	DSDeletions    int // DS-initiated replica deletions (DSDeleteAfter)
	SimEvents      uint64
	SimEndTime     float64 // virtual time when the engine drained

	// SiteJobGini measures how unevenly completed jobs concentrated over
	// sites (0 = even, →1 = one hotspot). High values under
	// JobDataPresent without replication are the paper's hotspot effect.
	SiteJobGini float64

	// Link utilization over the run (fraction of time each link carried
	// at least one transfer), split by tier.
	MeanLinkUtil     float64
	MaxLinkUtil      float64
	BackboneLinkUtil float64 // mean over root↔region links
	AccessLinkUtil   float64 // mean over region↔site links

	// Samples holds periodic grid snapshots when Config.SampleInterval
	// is set (see report.Heatmap).
	Samples []Sample

	// Series holds the observability probe time series when
	// Config.ObsInterval is set (see report.SeriesCSV). Excluded from
	// JSON results; render it with the report package instead.
	Series *obs.Series `json:"-"`

	// WatchdogViolations counts online invariant violations observed by
	// the watchdog over the run (0 when the watchdog is off or the run
	// was healthy; see Config.Watchdog).
	WatchdogViolations int `json:"watchdog_violations,omitempty"`

	// Fault-injection outcome (all zero on failure-free runs). Faults
	// counts what the injector did to the grid; the recovery counters
	// record what the scheduling layers did about it.
	Faults             faults.Stats
	JobsRetried        int // ES resubmissions of failed jobs
	JobsFailed         int // jobs abandoned after exhausting retries
	TransfersRestarted int // input fetches re-issued after an abort/crash
	ReplicasRestored   int // DS re-replications of fault-lost popular files
}

// Sample is one periodic snapshot of grid state.
type Sample struct {
	T           float64   // virtual time
	SiteBusy    []float64 // per-site fraction of compute elements busy
	QueuedJobs  int       // jobs waiting across all sites
	ActiveFlows int       // in-flight wide-area transfers
}

// Simulation is a fully assembled Data Grid ready to Run. Build with New;
// a Simulation is single-use.
type Simulation struct {
	cfg  Config
	eng  *desim.Engine
	topo *topology.Topology
	net  *netsim.Network
	cat  *catalog.Catalog
	gis  *gis.Service
	wl   *workload.Workload

	sites []*site.Site
	esFor []scheduler.External // indexed by user
	dsch  scheduler.Dataset

	batch    scheduler.Batch // non-nil in batch-scheduling mode
	batchBuf []*job.Job      // submissions awaiting the next batch window

	collector *metrics.Collector
	view      scheduler.GridView

	jobs *job.Store // slab job storage; slots recycle at completion

	// Prebuilt callbacks for the recurring engine events, so the steady
	// state schedules without allocating a closure per event.
	submitFns []func()    // per user: closed-loop submitNext
	arriveFns []func()    // per user: open-model submit + rebook
	dsWakeFns []func()    // per site: dsWake
	fetchPool []*fetchRec // recycled mover fetch-completion records

	nextJob      []int // per-user index of next job to submit
	jobsDone     int
	totalJobs    int
	finished     bool
	busyIntegral float64
	totalCEs     int

	pushesInFlight map[pushKey]bool
	replications   int
	dsDeletions    int
	dispatches     int // ES/batch dispatch hook-point counter

	probes      *obs.Registry            // nil unless cfg.ObsInterval > 0
	idleWindows []map[storage.FileID]int // per site: consecutive access-free DS windows

	// Feedback-scheduling telemetry (see internal/scheduler/feedback).
	// Nil unless a feedback policy is configured; all hooks are nil-safe.
	fb       *feedback.Tracker
	fbParams feedback.Params

	// Live control plane (see livemetrics.go). lm's handles are no-ops
	// when lmOn is false; wd is nil when the watchdog is off.
	lm            simMetrics
	lmOn          bool
	wd            *watchdog.Watchdog
	wdErr         error
	jobsSubmitted int // jobs entered into the system (the conservation ledger's left side)
	retryPending  int // failed jobs waiting out a retry backoff
	wdSkewDone    int // test hook: seeds a deliberate conservation violation

	// Fault injection (see faults.go in this package). All nil/zero
	// unless cfg.Faults enables at least one fault class.
	fcfg               faults.Config // normalized
	retry              faults.RetryPolicy
	faultRoot          *rng.Source
	injector           *faults.Injector
	liveFlows          map[int]*managedFlow      // in-flight transfers, by flow id
	lostAt             [][]scheduler.PopularFile // per site: popular replicas lost to faults
	jobsFailed         int
	jobsRetried        int
	transfersRestarted int
	replicasRestored   int

	rec trace.Recorder

	arrivalSrc *rng.Source // think-time / open-arrival draws
	samples    []Sample

	ran bool
}

type pushKey struct {
	file   storage.FileID
	target topology.SiteID
}

// mover implements site.DataMover over the network, attributing traffic to
// job-driven fetches and crediting the source site's popularity tracker.
type mover struct{ s *Simulation }

func (m mover) Fetch(f storage.FileID, from, to topology.SiteID, requester job.ID, done func()) {
	size, ok := m.s.cat.Size(f)
	if !ok {
		panic(fmt.Sprintf("core: fetch of undefined file %d", f))
	}
	if from != to {
		m.s.sites[from].RecordRemoteRequest(f, to)
		m.s.rec.Record(trace.Event{
			T: m.s.eng.Now(), Kind: trace.FetchStart,
			Job: int(requester), File: int(f), Src: int(from), Dst: int(to),
		})
	}
	fl := m.s.net.Transfer(from, to, size, m.s.newFetchRec(f, from, to, requester, size, done).fn)
	m.s.trackFlow(fl, fetchFlow, f, from, to)
}

// fetchRec is a pooled fetch-completion record: it replaces the per-fetch
// closure mover.Fetch used to allocate. The fn closure is built once per
// record and captures only the record, which self-releases to the pool
// before running the completion logic (so cascading fetches can reuse it).
// Records on flows that get cancelled are simply dropped to the GC — the
// same cost the old closure paid.
type fetchRec struct {
	s         *Simulation
	f         storage.FileID
	from, to  topology.SiteID
	requester job.ID
	size      float64
	done      func()
	fn        func(*netsim.Flow)
}

func (s *Simulation) newFetchRec(f storage.FileID, from, to topology.SiteID, requester job.ID, size float64, done func()) *fetchRec {
	var r *fetchRec
	if n := len(s.fetchPool); n > 0 {
		r = s.fetchPool[n-1]
		s.fetchPool[n-1] = nil
		s.fetchPool = s.fetchPool[:n-1]
	} else {
		r = &fetchRec{s: s}
		r.fn = func(fl *netsim.Flow) { r.finish(fl) }
	}
	r.f, r.from, r.to, r.requester, r.size, r.done = f, from, to, requester, size, done
	return r
}

func (r *fetchRec) finish(fl *netsim.Flow) {
	s, f, from, to, requester, size, done := r.s, r.f, r.from, r.to, r.requester, r.size, r.done
	r.done = nil
	s.fetchPool = append(s.fetchPool, r)
	s.untrackFlow(fl)
	if from != to {
		s.collector.Transfer(metrics.FetchTransfer, size)
		s.rec.Record(trace.Event{
			T: s.eng.Now(), Kind: trace.FetchEnd,
			Job: int(requester), File: int(f), Src: int(from), Dst: int(to), Bytes: size,
		})
	}
	done()
}

// view adapts the GIS + network to the scheduler.GridView interface. When
// regional information scoping is on, viewer (-1 = global) restricts the
// replica view to that site's region plus master locations.
type view struct {
	s      *Simulation
	viewer topology.SiteID
}

func (v view) NumSites() int                { return v.s.topo.NumSites() }
func (v view) Load(sid topology.SiteID) int { return v.s.gis.Load(sid) }
func (v view) CEs(sid topology.SiteID) int  { return v.s.sites[sid].CEs() }
func (v view) Replicas(f storage.FileID) []topology.SiteID {
	if v.viewer >= 0 {
		return v.s.gis.ReplicasVisibleTo(f, v.viewer)
	}
	return v.s.gis.Replicas(f)
}
func (v view) HasReplica(f storage.FileID, sid topology.SiteID) bool {
	if v.viewer >= 0 {
		for _, r := range v.s.gis.ReplicasVisibleTo(f, v.viewer) {
			if r == sid {
				return true
			}
		}
		return false
	}
	return v.s.gis.HasReplica(f, sid)
}
func (v view) FileSize(f storage.FileID) float64 { return v.s.gis.FileSize(f) }
func (v view) Topology() *topology.Topology      { return v.s.topo }
func (v view) Congestion(a, b topology.SiteID) int {
	return v.s.net.CongestionOn(a, b)
}
func (v view) PredictTransfer(a, b topology.SiteID, size float64) float64 {
	return v.s.net.PredictTime(a, b, size)
}

// New assembles a simulation from the config.
func New(cfg Config) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulation{
		cfg:            cfg,
		eng:            desim.New(),
		cat:            catalog.New(),
		pushesInFlight: make(map[pushKey]bool),
		rec:            cfg.Recorder,
	}
	if s.rec == nil {
		s.rec = trace.Discard
	}
	root := rng.New(cfg.Seed)
	if cfg.ResultMode == ResultModeBounded {
		// The reservoir draws from its own derived sub-stream; Derive does
		// not perturb root, so every other named stream below is identical
		// to full mode.
		s.collector = metrics.NewBounded(root.Derive("results"))
	} else {
		s.collector = metrics.NewCollector()
	}

	var err error
	if len(cfg.Tiers) > 0 {
		bws := []float64{cfg.BandwidthMBps * 1e6}
		if len(cfg.TierBandwidthsMBps) > 0 {
			bws = bws[:0]
			for _, b := range cfg.TierBandwidthsMBps {
				bws = append(bws, b*1e6)
			}
		}
		s.topo, err = topology.NewTiered(cfg.Tiers, bws)
	} else {
		s.topo, err = topology.NewHierarchical(topology.Config{
			Sites:             cfg.Sites,
			RegionFanout:      cfg.RegionFanout,
			Bandwidth:         cfg.BandwidthMBps * 1e6,
			BackboneBandwidth: cfg.BackboneMBps * 1e6,
		}, root.Derive("topology"))
	}
	if err != nil {
		return nil, err
	}
	s.net = netsim.New(s.eng, s.topo, cfg.Sharing)
	if cfg.LatencyMsPerHop > 0 {
		s.net.SetLatencyPerHop(cfg.LatencyMsPerHop / 1000)
	}

	if cfg.Trace != nil {
		s.wl = cfg.Trace
	} else {
		s.wl, err = workload.Generate(cfg.WorkloadSpec(), root.Derive("workload"))
		if err != nil {
			return nil, err
		}
	}
	s.totalJobs = s.wl.TotalJobs()
	for f, size := range s.wl.FileSizes {
		if err := s.cat.DefineFile(storage.FileID(f), size); err != nil {
			return nil, err
		}
	}

	lsched, err := NewLocal(cfg.LS)
	if err != nil {
		return nil, err
	}
	ceSrc := root.Derive("ces")
	speedSrc := root.Derive("speeds")
	s.sites = make([]*site.Site, cfg.Sites)
	for i := range s.sites {
		ces := ceSrc.IntRange(cfg.MinCEs, cfg.MaxCEs)
		s.totalCEs += ces
		speed := 1.0
		if cfg.CPUSpreadFrac > 0 {
			speed = speedSrc.Range(1-cfg.CPUSpreadFrac, 1+cfg.CPUSpreadFrac)
		}
		sid := topology.SiteID(i)
		s.sites[i], err = site.New(s.eng, s.topo, s.cat, mover{s}, lsched, site.Config{
			ID:       sid,
			CEs:      ces,
			Speed:    speed,
			Capacity: cfg.StorageGB * 1e9,
			OnEvict: func(f storage.FileID) {
				s.rec.Record(trace.Event{T: s.eng.Now(), Kind: trace.Evicted, File: int(f), Site: int(sid)})
			},
		}, s.jobDone)
		if err != nil {
			return nil, err
		}
	}
	for f, master := range s.wl.MasterSite {
		if err := s.sites[master].InstallMaster(storage.FileID(f), s.wl.FileSizes[f]); err != nil {
			return nil, err
		}
	}

	s.gis = gis.New(s.eng, s.cat, s.topo, func(sid topology.SiteID) int {
		return s.sites[sid].QueueLen()
	}, cfg.InfoStaleness)
	for f, master := range s.wl.MasterSite {
		s.gis.SetMaster(storage.FileID(f), master)
	}
	s.view = view{s: s, viewer: -1}

	if cfg.ES == "JobFeedback" || cfg.DS == "DataFeedback" {
		s.fbParams = cfg.Feedback
		s.fbParams.Normalize()
		s.fb = feedback.NewTracker(s.fbParams, s.topo, s.eng.Now)
	}

	avgCompute := cfg.ComputePerGB * (cfg.MinFileGB + cfg.MaxFileGB) / 2 * float64(cfg.InputsPerJob)
	avgCEs := float64(cfg.MinCEs+cfg.MaxCEs) / 2
	s.esFor = make([]scheduler.External, cfg.Users)
	esRoot := root.Derive("es")
	switch cfg.Mapping {
	case ESPerSite:
		perSite := make([]scheduler.External, cfg.Sites)
		for i := range perSite {
			perSite[i], err = NewExternal(cfg.ES, esRoot.Derive(fmt.Sprintf("site-%d", i)), avgCompute, avgCEs)
			if err != nil {
				return nil, err
			}
			s.wireFeedback(perSite[i])
		}
		for u := range s.esFor {
			s.esFor[u] = perSite[s.wl.UserHome[u]]
		}
	case ESCentral:
		central, err := NewExternal(cfg.ES, esRoot.Derive("central"), avgCompute, avgCEs)
		if err != nil {
			return nil, err
		}
		s.wireFeedback(central)
		for u := range s.esFor {
			s.esFor[u] = hostedES{inner: central, host: 0}
		}
	case ESPerUser:
		for u := range s.esFor {
			s.esFor[u], err = NewExternal(cfg.ES, esRoot.Derive(fmt.Sprintf("user-%d", u)), avgCompute, avgCEs)
			if err != nil {
				return nil, err
			}
			s.wireFeedback(s.esFor[u])
		}
	default:
		return nil, fmt.Errorf("core: unknown ES mapping %v", cfg.Mapping)
	}

	s.dsch, err = NewDataset(cfg.DS, root.Derive("ds"))
	if err != nil {
		return nil, err
	}
	if fds, ok := s.dsch.(*feedback.DS); ok {
		fds.Tracker = s.fb
		fds.Params = s.fbParams
	}
	if cfg.BatchES != "" {
		s.batch, err = NewBatch(cfg.BatchES, avgCompute)
		if err != nil {
			return nil, err
		}
	}

	s.fcfg = cfg.Faults.Normalized()
	s.retry = cfg.Faults.Retry()
	if s.fcfg.Enabled() {
		s.faultRoot = root.Derive("faults")
		s.liveFlows = make(map[int]*managedFlow)
		s.lostAt = make([][]scheduler.PopularFile, cfg.Sites)
		// Every ES gains the retry contract: never re-place a job on the
		// site it just failed on. Fresh jobs pass through untouched, and
		// Derive leaves the parent stream unperturbed, so a failure-free
		// workload is byte-identical with or without the wrapper.
		retrySrc := esRoot.Derive("retry")
		for u := range s.esFor {
			s.esFor[u] = es.AvoidFailed{Inner: s.esFor[u], Src: retrySrc}
		}
	}

	s.nextJob = make([]int, cfg.Users)
	s.arrivalSrc = root.Derive("arrivals")
	s.jobs = job.NewStore()
	s.submitFns = make([]func(), cfg.Users)
	s.arriveFns = make([]func(), cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		uid := job.UserID(u)
		s.submitFns[u] = func() { s.submitNext(uid) }
		s.arriveFns[u] = func() { s.submitNext(uid); s.scheduleArrival(uid) }
	}
	s.dsWakeFns = make([]func(), cfg.Sites)
	for i := range s.dsWakeFns {
		i := i
		s.dsWakeFns[i] = func() { s.dsWake(i) }
	}
	if cfg.ObsInterval > 0 {
		s.probes = obs.NewRegistry()
		s.registerProbes()
		s.probes.StreamTo(cfg.ObsSink)
		if cfg.ResultMode == ResultModeBounded {
			// Bounded results extend to the probe series: cap it at a
			// fixed point budget via the stride-doubling window. A sink
			// still streams every raw sample.
			s.probes.LimitPoints(maxBoundedSeriesPoints)
		}
	}
	if cfg.Metrics != nil {
		s.lmOn = true
		s.registerMetrics(cfg.Metrics)
	}
	if s.wd = newWatchdog(cfg); s.wd != nil {
		s.registerWatchdog()
	}
	return s, nil
}

// wireFeedback attaches the simulation's telemetry tracker and feedback
// params to a freshly constructed feedback ES (a no-op for every other
// policy, and for feedback instances on runs without a tracker).
func (s *Simulation) wireFeedback(e scheduler.External) {
	if fes, ok := e.(*feedback.ES); ok {
		fes.Tracker = s.fb
		fes.Params = s.fbParams
	}
}

// telemetry assembles one feedback tracker sample from live state (not
// the GIS snapshot). Strictly read-only: LinkBacklogBytes deliberately
// avoids settling the network, so sampling perturbs nothing but the
// engine's event count.
func (s *Simulation) telemetry() feedback.Sample {
	q := make([]int, len(s.sites))
	for i, st := range s.sites {
		q[i] = st.QueueLen()
	}
	return feedback.Sample{
		Now:          s.eng.Now(),
		QueueLens:    q,
		LinkLoads:    s.net.LinkLoads(),
		LinkBacklog:  s.net.LinkBacklogBytes(),
		LinkCapacity: s.net.EffectiveBandwidths(),
		GISAge:       s.gis.SnapshotAge(),
	}
}

// registerProbes installs the standard probe set. Registration order is
// fixed (grid-wide first, then per-site) so series columns are stable
// across runs and the output is byte-comparable.
func (s *Simulation) registerProbes() {
	r := s.probes
	r.Counter("jobs_done", func() float64 { return float64(s.jobsDone) })
	r.Counter("dispatches", func() float64 { return float64(s.dispatches) })
	r.Counter("replications", func() float64 { return float64(s.replications) })
	r.Counter("ds_deletions", func() float64 { return float64(s.dsDeletions) })
	r.Counter("evictions", func() float64 {
		n := 0
		for _, st := range s.sites {
			n += st.Store().Evictions()
		}
		return float64(n)
	})
	r.Gauge("jobs_running", func() float64 {
		n := 0
		for _, st := range s.sites {
			n += st.Busy()
		}
		return float64(n)
	})
	r.Gauge("jobs_queued", func() float64 {
		n := 0
		for _, st := range s.sites {
			n += st.QueueLen()
		}
		return float64(n)
	})
	r.Gauge("inflight_transfers", func() float64 { return float64(s.net.ActiveFlows()) })
	r.Gauge("gis_staleness_s", func() float64 { return s.gis.SnapshotAge() })
	if s.fcfg.Enabled() {
		// Fault probes register only on faulted runs, keeping the default
		// column set (and its regression tests) untouched. The injector is
		// attached in Run, before the first sample can fire.
		r.Counter("faults_injected", func() float64 {
			if s.injector == nil {
				return 0
			}
			return float64(s.injector.Stats().FaultsInjected)
		})
		r.Counter("faults_repaired", func() float64 {
			if s.injector == nil {
				return 0
			}
			return float64(s.injector.Stats().Repairs)
		})
		r.Counter("jobs_retried", func() float64 { return float64(s.jobsRetried) })
		r.Counter("jobs_failed", func() float64 { return float64(s.jobsFailed) })
		r.Counter("transfers_restarted", func() float64 { return float64(s.transfersRestarted) })
		r.Counter("replicas_lost", func() float64 {
			if s.injector == nil {
				return 0
			}
			return float64(s.injector.Stats().ReplicasLost)
		})
		r.Counter("replicas_restored", func() float64 { return float64(s.replicasRestored) })
		r.Gauge("sites_down", func() float64 {
			n := 0
			for _, st := range s.sites {
				if st.Down() {
					n++
				}
			}
			return float64(n)
		})
		r.Gauge("ces_failed", func() float64 {
			n := 0
			for _, st := range s.sites {
				n += st.CEs() - st.AvailableCEs()
			}
			return float64(n)
		})
	}
	for i, st := range s.sites {
		st := st
		r.Gauge(fmt.Sprintf("s%02d.queue_len", i), func() float64 { return float64(st.QueueLen()) })
		r.Gauge(fmt.Sprintf("s%02d.cpu_util", i), func() float64 {
			return float64(st.Busy()) / float64(st.CEs())
		})
		r.Gauge(fmt.Sprintf("s%02d.storage_gb", i), func() float64 { return st.Store().Used() / 1e9 })
		r.Gauge(fmt.Sprintf("s%02d.replicas", i), func() float64 { return float64(st.Store().Len()) })
	}
}

// hostedES reinterprets "local" as the scheduler's host site, used for the
// central-ES mapping: a job "runs locally" at the central scheduler's own
// site rather than the user's.
type hostedES struct {
	inner scheduler.External
	host  topology.SiteID
}

func (h hostedES) Name() string { return h.inner.Name() }
func (h hostedES) Place(g scheduler.GridView, j *job.Job) topology.SiteID {
	saved := j.Origin
	j.Origin = h.host
	target := h.inner.Place(g, j)
	j.Origin = saved
	return target
}

// Run executes the simulation to completion (or MaxTime) and returns the
// results. It may be called once.
func (s *Simulation) Run() (Results, error) {
	if s.ran {
		return Results{}, fmt.Errorf("core: Simulation is single-use; construct a new one")
	}
	s.ran = true

	if s.fcfg.Enabled() {
		s.injector = faults.Attach(s.eng, s.fcfg, s.faultRoot, faultOps{s},
			func() bool { return !s.finished })
		if s.lmOn {
			s.injector.SetObserver(func(class string) {
				s.lm.faultsByClass.With(class).Inc()
			})
		}
	}

	if s.cfg.ArrivalRate > 0 {
		// Open model: every user's submissions form a Poisson process,
		// decoupled from completions.
		for u := range s.nextJob {
			s.scheduleArrival(job.UserID(u))
		}
	} else {
		// Closed model (the paper): first submission at t = 0, next one
		// on completion of the previous.
		for u := range s.nextJob {
			s.eng.Schedule(0, s.submitFns[u])
		}
	}
	if s.cfg.SampleInterval > 0 {
		s.eng.Every(s.cfg.SampleInterval, func() bool {
			if s.finished {
				return false
			}
			s.sample()
			return true
		})
	}
	if s.probes != nil {
		s.probes.Attach(s.eng, s.cfg.ObsInterval, func() bool { return !s.finished })
	}
	if s.fb != nil {
		// Prime the tracker at t = 0 (queues empty, links idle) so the
		// first placements already see Ready() telemetry, then sample on
		// the feedback interval.
		s.fb.Observe(s.telemetry())
		s.eng.Every(s.fbParams.Interval, func() bool {
			if s.finished {
				return false
			}
			s.fb.Observe(s.telemetry())
			return true
		})
	}
	if s.lmOn || s.wd != nil {
		s.attachControlPlane()
	}
	if s.batch != nil {
		s.eng.Schedule(s.cfg.BatchWindow, s.flushBatch)
	}

	// Inject configured network failures (validated at construction).
	for _, d := range s.cfg.Degradations {
		d := d
		var links []topology.LinkID
		for _, l := range s.topo.Links() {
			if !d.BackboneOnly || s.topo.IsBackbone(l.ID) {
				links = append(links, l.ID)
			}
		}
		s.eng.At(d.At, func() {
			for _, l := range links {
				s.net.SetLinkBandwidth(l, d.Multiplier*s.topo.Link(l).Bandwidth)
			}
		})
		s.eng.At(d.At+d.Duration, func() {
			for _, l := range links {
				s.net.SetLinkBandwidth(l, -1)
			}
		})
	}

	// Start the per-site Dataset Scheduler loops, staggered across the
	// first interval so wake-ups don't all collide at the same instant.
	for i := range s.sites {
		offset := s.cfg.DSInterval * float64(i+1) / float64(len(s.sites))
		s.eng.Schedule(offset, s.dsWakeFns[i])
	}

	if s.cfg.MaxTime > 0 {
		s.eng.RunUntil(s.cfg.MaxTime)
	} else {
		s.eng.Run()
	}

	if !s.finished {
		// Aborted by MaxTime: settle busy integrals now for best-effort
		// reporting.
		for _, st := range s.sites {
			s.busyIntegral += st.BusyIntegral(s.eng.Now())
		}
	}
	esName := s.cfg.ES
	if s.batch != nil {
		esName = s.cfg.BatchES
	}
	r := Results{
		Results:        s.collector.Summarize(s.busyIntegral, s.totalCEs),
		ES:             esName,
		LS:             s.cfg.LS,
		DS:             s.cfg.DS,
		Seed:           s.cfg.Seed,
		BandwidthMBps:  s.cfg.BandwidthMBps,
		TotalCEs:       s.totalCEs,
		Completed:      s.finished,
		FetchesStarted: 0,
		Replications:   s.replications,
		DSDeletions:    s.dsDeletions,
		SimEvents:      s.eng.Fired(),
		SimEndTime:     s.eng.Now(),

		JobsRetried:        s.jobsRetried,
		JobsFailed:         s.jobsFailed,
		TransfersRestarted: s.transfersRestarted,
		ReplicasRestored:   s.replicasRestored,
	}
	if s.injector != nil {
		r.Faults = s.injector.Stats()
	}
	for _, st := range s.sites {
		h, m := st.Store().HitRate()
		r.CacheHits += h
		r.CacheMisses += m
		r.Evictions += st.Store().Evictions()
		r.FetchesStarted += st.FetchesStarted()
	}
	if g, err := stats.Gini(s.collector.SiteJobCounts(len(s.sites))); err == nil {
		r.SiteJobGini = g
	}
	r.Samples = s.samples
	if s.probes != nil {
		r.Series = s.probes.Series()
	}
	util := s.net.LinkUtilization()
	var nBack, nAcc int
	for i, u := range util {
		r.MeanLinkUtil += u
		if u > r.MaxLinkUtil {
			r.MaxLinkUtil = u
		}
		if s.topo.IsBackbone(topology.LinkID(i)) {
			r.BackboneLinkUtil += u
			nBack++
		} else {
			r.AccessLinkUtil += u
			nAcc++
		}
	}
	if len(util) > 0 {
		r.MeanLinkUtil /= float64(len(util))
	}
	if nBack > 0 {
		r.BackboneLinkUtil /= float64(nBack)
	}
	if nAcc > 0 {
		r.AccessLinkUtil /= float64(nAcc)
	}
	s.finishControlPlane(&r)
	if s.wdErr != nil {
		return r, s.wdErr
	}
	if !s.finished && s.cfg.MaxTime <= 0 {
		return r, fmt.Errorf("core: engine drained with %d/%d jobs accounted for (deadlock?)",
			s.jobsDone+s.jobsFailed, s.totalJobs)
	}
	if s.probes != nil {
		if err := s.probes.SinkErr(); err != nil {
			// The simulation itself is fine; the requested stream is not.
			return r, err
		}
	}
	return r, nil
}

// submitNext submits user u's next job, if any.
func (s *Simulation) submitNext(u job.UserID) {
	idx := s.nextJob[u]
	specs := s.wl.Jobs[u]
	if idx >= len(specs) {
		return
	}
	s.nextJob[u]++
	spec := specs[idx]
	j := s.jobs.Alloc(spec.ID, u, s.wl.UserHome[u], spec.Inputs, spec.Compute)
	j.Advance(job.Submitted, s.eng.Now())
	s.jobsSubmitted++
	s.lm.jobsSubmitted.Inc()
	s.rec.Record(trace.Event{T: s.eng.Now(), Kind: trace.JobSubmitted, Job: int(j.ID), User: int(u)})
	if s.batch != nil {
		s.batchBuf = append(s.batchBuf, j)
		return
	}
	placeView := s.view
	if s.cfg.RegionalInfo {
		placeView = view{s: s, viewer: s.wl.UserHome[u]}
	}
	target := s.esFor[u].Place(placeView, j)
	if target < 0 || int(target) >= len(s.sites) {
		panic(fmt.Sprintf("core: ES %s placed job %d at invalid site %d", s.cfg.ES, j.ID, target))
	}
	if s.sites[target].Down() {
		// The ES placed onto a dead site (its information is liveness-
		// blind, like the GIS): a placement failure that burns a retry.
		s.failJob(j, target)
		return
	}
	s.dispatches++
	s.lm.dispatches.Inc()
	s.fb.NoteDispatch(target)
	s.rec.Record(trace.Event{T: s.eng.Now(), Kind: trace.JobDispatched, Job: int(j.ID), Site: int(target)})
	s.sites[target].Enqueue(j)
}

// jobDone fires when any site completes a job: record metrics, let the
// user submit their next job, and detect end-of-workload.
func (s *Simulation) jobDone(j *job.Job) {
	s.collector.JobDone(j)
	// Lifecycle events are flushed at completion with their true virtual
	// timestamps; trace.Log sorts on output.
	if j.DataReady >= 0 {
		s.rec.Record(trace.Event{T: j.DataReady, Kind: trace.JobDataReady, Job: int(j.ID)})
	}
	s.rec.Record(trace.Event{T: j.StartTime, Kind: trace.JobStarted, Job: int(j.ID), Site: int(j.Site)})
	s.rec.Record(trace.Event{T: j.EndTime, Kind: trace.JobCompleted, Job: int(j.ID), Site: int(j.Site), User: int(j.User)})
	s.shipOutput(j)
	s.jobsDone++
	s.lm.jobsDone.Inc()
	if s.lm.respBySite != nil {
		s.lm.respBySite[j.Site].Observe(float64(j.ResponseTime()))
	}
	// Everything that needed the job has read it (the collector and trace
	// copy what they keep): recycle the slot before driving the next
	// submission, which may reuse it immediately.
	user := j.User
	s.jobs.Free(j)
	if s.workloadSettled() {
		return
	}
	s.driveUser(user)
}

// workloadSettled marks the run finished once every job is accounted for
// — completed or (on faulted runs) abandoned — and settles the busy-time
// integrals at that instant.
func (s *Simulation) workloadSettled() bool {
	if s.jobsDone+s.jobsFailed < s.totalJobs {
		return false
	}
	s.finished = true
	for _, st := range s.sites {
		s.busyIntegral += st.BusyIntegral(s.eng.Now())
	}
	return true
}

// driveUser advances the closed-loop workload for one user after their
// current job reached a terminal state (done or abandoned).
func (s *Simulation) driveUser(u job.UserID) {
	if s.cfg.ArrivalRate > 0 {
		return // open model: submissions are driven by the arrival process
	}
	if s.cfg.ThinkTimeMean > 0 {
		s.eng.Schedule(s.arrivalSrc.Exp(s.cfg.ThinkTimeMean), s.submitFns[u])
		return
	}
	s.submitNext(u)
}

// shipOutput moves a completed job's output back to the submitting site
// when the output-cost extension is enabled. The shipment is asynchronous:
// it contends for bandwidth and is accounted as traffic, but does not
// extend the job's response time (the user has their answer; the bytes
// follow).
func (s *Simulation) shipOutput(j *job.Job) {
	if s.cfg.OutputFraction <= 0 || j.Site == j.Origin {
		return
	}
	bytes := 0.0
	for _, f := range j.Inputs {
		if size, ok := s.cat.Size(f); ok {
			bytes += size
		}
	}
	bytes *= s.cfg.OutputFraction
	if bytes <= 0 {
		return
	}
	jobID, src, dst := int(j.ID), int(j.Site), int(j.Origin)
	s.rec.Record(trace.Event{T: s.eng.Now(), Kind: trace.OutputStart, Job: jobID, Src: src, Dst: dst})
	fl := s.net.Transfer(j.Site, j.Origin, bytes, func(fl *netsim.Flow) {
		s.untrackFlow(fl)
		s.collector.Transfer(metrics.OutputTransfer, bytes)
		s.rec.Record(trace.Event{T: s.eng.Now(), Kind: trace.OutputEnd, Job: jobID, Src: src, Dst: dst, Bytes: bytes})
	})
	s.trackFlow(fl, outputFlow, -1, j.Site, j.Origin)
}

// scheduleArrival drives the open-model Poisson submission process for one
// user: submit now, then book the next arrival.
func (s *Simulation) scheduleArrival(u job.UserID) {
	if s.nextJob[u] >= len(s.wl.Jobs[u]) {
		return
	}
	s.eng.Schedule(s.arrivalSrc.Exp(1/s.cfg.ArrivalRate), s.arriveFns[u])
}

// flushBatch assigns all buffered submissions with the batch heuristic and
// dispatches them, then books the next window.
func (s *Simulation) flushBatch() {
	if s.finished {
		return
	}
	if len(s.batchBuf) > 0 {
		jobs := s.batchBuf
		s.batchBuf = nil
		targets := s.batch.Assign(s.view, jobs)
		if len(targets) != len(jobs) {
			panic(fmt.Sprintf("core: batch scheduler %s returned %d targets for %d jobs",
				s.batch.Name(), len(targets), len(jobs)))
		}
		for i, j := range jobs {
			t := targets[i]
			if t < 0 || int(t) >= len(s.sites) {
				panic(fmt.Sprintf("core: batch scheduler placed job %d at invalid site %d", j.ID, t))
			}
			if s.sites[t].Down() {
				s.failJob(j, t)
				continue
			}
			s.dispatches++
			s.lm.dispatches.Inc()
			s.fb.NoteDispatch(t)
			s.rec.Record(trace.Event{T: s.eng.Now(), Kind: trace.JobDispatched, Job: int(j.ID), Site: int(t)})
			s.sites[t].Enqueue(j)
		}
	}
	s.eng.Schedule(s.cfg.BatchWindow, s.flushBatch)
}

// sample records one grid snapshot (driven by a recurring engine event
// while the workload runs).
func (s *Simulation) sample() {
	smp := Sample{
		T:           s.eng.Now(),
		SiteBusy:    make([]float64, len(s.sites)),
		ActiveFlows: s.net.ActiveFlows(),
	}
	for i, st := range s.sites {
		smp.SiteBusy[i] = float64(st.Busy()) / float64(st.CEs())
		smp.QueuedJobs += st.QueueLen()
	}
	s.samples = append(s.samples, smp)
}

// dsWake runs one Dataset Scheduler cycle at site i and reschedules itself
// while the workload is still running.
func (s *Simulation) dsWake(i int) {
	if s.finished {
		return
	}
	st := s.sites[i]
	if st.Down() {
		// The DS process is down with its site; it resumes (with an empty
		// popularity window) at the first wake-up after recovery.
		s.eng.Schedule(s.cfg.DSInterval, s.dsWakeFns[i])
		return
	}
	all := st.DrainPopularity()
	popular := all[:0]
	for _, p := range all {
		if p.Count >= s.cfg.DSThreshold {
			popular = append(popular, p)
		}
	}
	if len(popular) > 0 {
		dsView := s.view
		if s.cfg.RegionalInfo {
			dsView = view{s: s, viewer: topology.SiteID(i)}
		}
		for _, rep := range s.dsch.Decide(dsView, topology.SiteID(i), popular) {
			s.pushReplica(topology.SiteID(i), rep)
		}
	}
	if s.cfg.DSDeleteAfter > 0 {
		s.dsDelete(i, all)
	}
	if len(s.lostAt) > 0 && len(s.lostAt[i]) > 0 {
		s.restoreReplicas(i)
	}
	s.eng.Schedule(s.cfg.DSInterval, s.dsWakeFns[i])
}

// dsDelete ages cached replicas at site i and deletes those untouched for
// DSDeleteAfter consecutive DS windows (the DS's "delete local files"
// role).
func (s *Simulation) dsDelete(i int, accessed []scheduler.PopularFile) {
	if s.idleWindows == nil {
		s.idleWindows = make([]map[storage.FileID]int, len(s.sites))
	}
	if s.idleWindows[i] == nil {
		s.idleWindows[i] = make(map[storage.FileID]int)
	}
	windows := s.idleWindows[i]
	touched := make(map[storage.FileID]bool, len(accessed))
	for _, p := range accessed {
		touched[p.File] = true
		delete(windows, p.File)
	}
	for _, f := range s.sites[i].CachedIdleFiles() {
		if touched[f] {
			continue
		}
		windows[f]++
		if windows[f] >= s.cfg.DSDeleteAfter {
			if s.sites[i].DeleteReplica(f) {
				s.dsDeletions++
			}
			delete(windows, f)
		}
	}
}

// pushReplica executes one DS decision: an asynchronous replica push from
// `from` to rep.Target. The source copy is pinned for the duration of the
// transfer.
func (s *Simulation) pushReplica(from topology.SiteID, rep scheduler.Replication) {
	if rep.Target == from || int(rep.Target) < 0 || int(rep.Target) >= len(s.sites) {
		return
	}
	if !s.sites[from].Store().Peek(rep.File) {
		return // no longer resident here
	}
	if s.cat.HasReplica(rep.File, rep.Target) {
		return
	}
	key := pushKey{rep.File, rep.Target}
	if s.pushesInFlight[key] {
		return
	}
	size, ok := s.cat.Size(rep.File)
	if !ok {
		return
	}
	if err := s.sites[from].Store().Pin(rep.File); err != nil {
		return
	}
	s.pushesInFlight[key] = true
	s.replications++
	s.lm.replications.Inc()
	s.rec.Record(trace.Event{
		T: s.eng.Now(), Kind: trace.ReplPush,
		File: int(rep.File), Src: int(from), Dst: int(rep.Target),
	})
	fl := s.net.Transfer(from, rep.Target, size, func(fl *netsim.Flow) {
		s.untrackFlow(fl)
		delete(s.pushesInFlight, key)
		if err := s.sites[from].Store().Unpin(rep.File); err == nil {
			s.sites[from].Store().Touch(rep.File)
		}
		s.collector.Transfer(metrics.ReplicationTransfer, size)
		s.rec.Record(trace.Event{
			T: s.eng.Now(), Kind: trace.ReplArrive,
			File: int(rep.File), Src: int(from), Dst: int(rep.Target), Bytes: size,
		})
		s.sites[rep.Target].ReceiveReplica(rep.File, size)
	})
	s.trackFlow(fl, pushFlow, rep.File, from, rep.Target)
}

// Engine exposes the underlying engine (e.g. for embedding the simulation
// in a larger experiment loop). Read-only use only.
func (s *Simulation) Engine() *desim.Engine { return s.eng }

// Workload returns the workload being executed.
func (s *Simulation) Workload() *workload.Workload { return s.wl }

// RunConfig builds and runs a simulation in one call.
func RunConfig(cfg Config) (Results, error) {
	sim, err := New(cfg)
	if err != nil {
		return Results{}, err
	}
	return sim.Run()
}
