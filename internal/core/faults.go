package core

import (
	"fmt"
	"sort"

	"chicsim/internal/job"
	"chicsim/internal/netsim"
	"chicsim/internal/rng"
	"chicsim/internal/scheduler"
	"chicsim/internal/scheduler/ds"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
	"chicsim/internal/trace"
)

// This file wires internal/faults into the simulation: the Actions
// adapter the injector drives, in-flight transfer tracking (so crashes
// and aborts can kill flows deterministically and repair the bookkeeping
// their completion callbacks would have done), and the recovery paths —
// ES retry with capped exponential backoff, LS requeue on site recovery,
// DS re-replication of lost popular files.

// flowKind classifies a tracked transfer by what its completion callback
// maintains, which is exactly what an abort must clean up instead.
type flowKind uint8

const (
	fetchFlow  flowKind = iota // job-driven input fetch
	pushFlow                   // DS replica push (source copy pinned)
	outputFlow                 // job-output shipment
)

// managedFlow is one in-flight transfer under fault management.
type managedFlow struct {
	flow     *netsim.Flow
	kind     flowKind
	file     storage.FileID // -1 for output shipments
	src, dst topology.SiteID
}

// trackFlow registers an in-flight transfer for fault management. A
// no-op on failure-free runs (liveFlows stays nil), keeping the hot path
// identical to the pre-faults simulator.
func (s *Simulation) trackFlow(fl *netsim.Flow, kind flowKind, f storage.FileID, src, dst topology.SiteID) {
	if s.liveFlows == nil {
		return
	}
	s.liveFlows[fl.ID] = &managedFlow{flow: fl, kind: kind, file: f, src: src, dst: dst}
}

func (s *Simulation) untrackFlow(fl *netsim.Flow) {
	if s.liveFlows != nil {
		delete(s.liveFlows, fl.ID)
	}
}

// abortFlow cancels an in-flight managed transfer and repairs the
// bookkeeping its completion callback would have handled: a killed DS
// push unpins the source copy and clears the in-flight marker. Reports
// whether the aborted flow was an input fetch the destination site may
// want to restart from another replica.
func (s *Simulation) abortFlow(mf *managedFlow) bool {
	s.net.Cancel(mf.flow)
	delete(s.liveFlows, mf.flow.ID)
	switch mf.kind {
	case fetchFlow:
		return true
	case pushFlow:
		delete(s.pushesInFlight, pushKey{mf.file, mf.dst})
		if err := s.sites[mf.src].Store().Unpin(mf.file); err != nil {
			panic(fmt.Sprintf("core: aborting push of file %d from site %d: %v", mf.file, mf.src, err))
		}
	case outputFlow:
		// The user already has their answer; the bytes are simply lost.
	}
	return false
}

// sortedFlowIDs returns the live flow ids in ascending order, fixing the
// iteration order faults see (map order would break determinism).
func (s *Simulation) sortedFlowIDs() []int {
	ids := make([]int, 0, len(s.liveFlows))
	for id := range s.liveFlows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// fetchRestart remembers an input fetch some healthy site lost to a
// remote crash and should re-issue once catalog state settles.
type fetchRestart struct {
	file storage.FileID
	dst  topology.SiteID
}

// cancelFlowsAt kills the in-flight transfers a crash of site sid
// invalidates: everything inbound (the site's cache and jobs are gone),
// outbound DS pushes and output shipments (sourced from the dying
// scratch space), and outbound fetches serving a *cached* copy. Fetches
// streaming a master copy keep flowing — masters live on the site's
// mass-storage system, which survives the compute front-end's crash.
// Returns the fetches other sites must restart from a surviving replica.
func (s *Simulation) cancelFlowsAt(sid topology.SiteID) []fetchRestart {
	var restarts []fetchRestart
	for _, id := range s.sortedFlowIDs() {
		mf, ok := s.liveFlows[id]
		if !ok {
			continue
		}
		switch mf.kind {
		case fetchFlow:
			if mf.dst == sid {
				s.abortFlow(mf)
			} else if mf.src == sid && !s.sites[sid].Store().IsMaster(mf.file) {
				s.abortFlow(mf)
				restarts = append(restarts, fetchRestart{file: mf.file, dst: mf.dst})
			}
		case pushFlow:
			if mf.src == sid || mf.dst == sid {
				s.abortFlow(mf)
			}
		case outputFlow:
			if mf.src == sid {
				s.abortFlow(mf)
			}
		}
	}
	return restarts
}

// crashSite applies a site-crash fault: cancel the transfers the crash
// invalidates, take the site down (killing running jobs, dropping cached
// replicas), restart orphaned fetches elsewhere, and push every affected
// job into the retry path.
func (s *Simulation) crashSite(sid topology.SiteID) {
	st := s.sites[sid]
	if st.Down() {
		return
	}
	restarts := s.cancelFlowsAt(sid)
	s.fb.NoteFault(sid)
	running, dropped := st.Crash(s.fcfg.RequeueOnRecovery)
	if len(s.lostAt) > 0 {
		s.lostAt[sid] = nil // whatever was pending restore died with the cache
	}
	s.rec.Record(trace.Event{T: s.eng.Now(), Kind: trace.SiteCrashed, Site: int(sid)})
	for _, fr := range restarts {
		if s.sites[fr.dst].RestartFetch(fr.file) {
			s.transfersRestarted++
		}
	}
	for _, j := range running {
		s.failJob(j, sid)
	}
	for _, j := range dropped {
		s.failJob(j, sid)
	}
}

// recoverSite repairs a site crash: retained queued jobs re-acquire
// their data (LS requeue) and scheduling resumes.
func (s *Simulation) recoverSite(sid topology.SiteID) {
	st := s.sites[sid]
	if !st.Down() {
		return
	}
	s.rec.Record(trace.Event{T: s.eng.Now(), Kind: trace.SiteRecovered, Site: int(sid)})
	st.Recover()
}

// failJob moves a job through one failure: back to Submitted, then
// either abandoned (retries exhausted) or rescheduled after the policy's
// backoff. The job's original SubmitTime is preserved, so retried jobs
// pay their failures in response time.
func (s *Simulation) failJob(j *job.Job, at topology.SiteID) {
	j.Fail(at)
	if s.retry.Exhausted(j.Retries) {
		s.jobAbandoned(j)
		return
	}
	s.jobsRetried++
	s.lm.jobsRetried.Inc()
	s.retryPending++
	s.rec.Record(trace.Event{T: s.eng.Now(), Kind: trace.JobRetried, Job: int(j.ID), Site: int(at)})
	s.eng.Schedule(s.retry.Delay(j.Retries), func() {
		s.retryPending--
		s.redispatch(j)
	})
}

// redispatch re-places a failed job after its backoff. The wrapped ES
// (es.AvoidFailed) guarantees the target differs from the failed site;
// landing on a *different* down site is another placement failure and
// burns another retry.
func (s *Simulation) redispatch(j *job.Job) {
	if s.batch != nil {
		s.batchBuf = append(s.batchBuf, j)
		return
	}
	placeView := s.view
	if s.cfg.RegionalInfo {
		placeView = view{s: s, viewer: s.wl.UserHome[j.User]}
	}
	target := s.esFor[j.User].Place(placeView, j)
	if target < 0 || int(target) >= len(s.sites) {
		panic(fmt.Sprintf("core: ES %s re-placed job %d at invalid site %d", s.cfg.ES, j.ID, target))
	}
	if s.sites[target].Down() {
		s.failJob(j, target)
		return
	}
	s.dispatches++
	s.lm.dispatches.Inc()
	s.fb.NoteDispatch(target)
	s.rec.Record(trace.Event{T: s.eng.Now(), Kind: trace.JobDispatched, Job: int(j.ID), Site: int(target)})
	s.sites[target].Enqueue(j)
}

// jobAbandoned retires a job that ran out of retries. The closed-loop
// workload still advances — the user gives up on this job and submits
// their next one — and the job counts toward the finish condition.
func (s *Simulation) jobAbandoned(j *job.Job) {
	s.jobsFailed++
	s.lm.jobsAbandoned.Inc()
	s.rec.Record(trace.Event{T: s.eng.Now(), Kind: trace.JobAbandoned, Job: int(j.ID), User: int(j.User)})
	user := j.User
	s.jobs.Free(j)
	if s.workloadSettled() {
		return
	}
	s.driveUser(user)
}

// restoreReplicas is the DS's fault-recovery role: at wake-up,
// re-replicate the popular files this site lost to replica-loss faults,
// pulling each from the closest surviving copy.
func (s *Simulation) restoreReplicas(i int) {
	lost := s.lostAt[i]
	s.lostAt[i] = nil
	dsView := s.view
	if s.cfg.RegionalInfo {
		dsView = view{s: s, viewer: topology.SiteID(i)}
	}
	for _, f := range ds.Restore(dsView, topology.SiteID(i), lost, s.cfg.DSThreshold) {
		from, ok := s.cat.Closest(f, topology.SiteID(i), s.topo)
		if !ok {
			continue
		}
		before := s.replications
		s.pushReplica(from, scheduler.Replication{File: f, Target: topology.SiteID(i)})
		if s.replications > before {
			s.replicasRestored++
		}
	}
}

// faultOps adapts the simulation to faults.Actions. Sites and links are
// addressed by their dense integer ids.
type faultOps struct{ s *Simulation }

func (o faultOps) NumSites() int     { return len(o.s.sites) }
func (o faultOps) NumLinks() int     { return o.s.topo.NumLinks() }
func (o faultOps) SiteUp(i int) bool { return !o.s.sites[i].Down() }
func (o faultOps) CrashSite(i int)   { o.s.crashSite(topology.SiteID(i)) }
func (o faultOps) RecoverSite(i int) { o.s.recoverSite(topology.SiteID(i)) }

func (o faultOps) FailCE(i int) bool {
	victim, ok := o.s.sites[i].FailCE()
	if !ok {
		return false
	}
	o.s.rec.Record(trace.Event{T: o.s.eng.Now(), Kind: trace.CEFailed, Site: i})
	o.s.fb.NoteFault(topology.SiteID(i))
	if victim != nil {
		o.s.failJob(victim, topology.SiteID(i))
	}
	return true
}

func (o faultOps) RecoverCE(i int) {
	o.s.rec.Record(trace.Event{T: o.s.eng.Now(), Kind: trace.CERecovered, Site: i})
	o.s.sites[i].RecoverCE()
}

func (o faultOps) LinkNominal(l int) bool {
	return !o.s.net.OverrideActive(topology.LinkID(l))
}

func (o faultOps) DegradeLink(l int, factor float64) {
	lid := topology.LinkID(l)
	o.s.rec.Record(trace.Event{T: o.s.eng.Now(), Kind: trace.LinkFault, Src: l})
	o.s.net.SetLinkBandwidth(lid, factor*o.s.topo.Link(lid).Bandwidth)
}

func (o faultOps) RestoreLink(l int) {
	o.s.rec.Record(trace.Event{T: o.s.eng.Now(), Kind: trace.LinkRepair, Src: l})
	o.s.net.SetLinkBandwidth(topology.LinkID(l), -1)
}

func (o faultOps) AbortTransfer(pick *rng.Source) bool {
	s := o.s
	if len(s.liveFlows) == 0 {
		return false
	}
	ids := s.sortedFlowIDs()
	mf := s.liveFlows[ids[pick.Intn(len(ids))]]
	s.rec.Record(trace.Event{
		T: s.eng.Now(), Kind: trace.TransferAbort,
		File: int(mf.file), Src: int(mf.src), Dst: int(mf.dst),
	})
	if s.abortFlow(mf) && s.sites[mf.dst].RestartFetch(mf.file) {
		s.transfersRestarted++
	}
	return true
}

func (o faultOps) LoseReplica(pick *rng.Source) bool {
	s := o.s
	sid := topology.SiteID(pick.Intn(len(s.sites)))
	st := s.sites[sid]
	if st.Down() {
		return false
	}
	cands := st.CachedIdleFiles()
	if len(cands) == 0 {
		return false
	}
	f := cands[pick.Intn(len(cands))]
	count := st.PopularityOf(f)
	if !st.DeleteReplica(f) {
		return false
	}
	s.rec.Record(trace.Event{T: s.eng.Now(), Kind: trace.ReplicaLost, File: int(f), Site: int(sid)})
	if s.fcfg.RestoreReplicas {
		s.lostAt[sid] = append(s.lostAt[sid], scheduler.PopularFile{File: f, Count: count})
	}
	return true
}
