package core

import (
	"math"
	"testing"

	"chicsim/internal/netsim"
	"chicsim/internal/rng"
	"chicsim/internal/workload"
)

// smallConfig is a scaled-down Table 1 grid that runs in milliseconds.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Sites = 10
	cfg.Users = 40
	cfg.Files = 60
	cfg.TotalJobs = 800
	cfg.RegionFanout = 4
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 1 values.
	if cfg.Users != 120 || cfg.Sites != 30 || cfg.Files != 200 || cfg.TotalJobs != 6000 {
		t.Fatal("Table 1 values wrong")
	}
	if cfg.MinCEs != 2 || cfg.MaxCEs != 5 || cfg.BandwidthMBps != 10 {
		t.Fatal("Table 1 values wrong")
	}
}

func TestRunCompletesAllJobs(t *testing.T) {
	res, err := RunConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.JobsDone != 800 {
		t.Fatalf("done=%d completed=%v", res.JobsDone, res.Completed)
	}
	if res.AvgResponseSec <= 0 || res.Makespan <= 0 {
		t.Fatalf("degenerate metrics: %+v", res.Results)
	}
	if res.IdleFrac < 0 || res.IdleFrac > 1 {
		t.Fatalf("IdleFrac = %v", res.IdleFrac)
	}
}

func TestDeterminism(t *testing.T) {
	// Cover both a replication-dominated cell and a fetch-heavy cell:
	// the latter exercises heavy concurrent-flow churn in netsim, where a
	// map-iteration ordering bug once made tied transfer completions
	// nondeterministic.
	for _, pair := range [][2]string{
		{"JobDataPresent", "DataLeastLoaded"},
		{"JobRandom", "DataDoNothing"},
		{"JobLeastLoaded", "DataRandom"},
	} {
		cfg := smallConfig()
		cfg.ES, cfg.DS = pair[0], pair[1]
		run := func() Results {
			res, err := RunConfig(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		if a.AvgResponseSec != b.AvgResponseSec || a.Makespan != b.Makespan ||
			a.AvgDataPerJobMB != b.AvgDataPerJobMB || a.SimEvents != b.SimEvents {
			t.Fatalf("%s+%s non-deterministic: %+v vs %+v", pair[0], pair[1], a.Results, b.Results)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	cfg := smallConfig()
	a, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgResponseSec == b.AvgResponseSec {
		t.Fatal("different seeds produced identical response times")
	}
}

func TestAllAlgorithmCombinationsRun(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 200
	for _, esName := range ExternalNames() {
		for _, dsName := range DatasetNames() {
			cfg.ES, cfg.DS = esName, dsName
			res, err := RunConfig(cfg)
			if err != nil {
				t.Fatalf("%s+%s: %v", esName, dsName, err)
			}
			if res.JobsDone != 200 {
				t.Fatalf("%s+%s: %d jobs done", esName, dsName, res.JobsDone)
			}
		}
	}
}

func TestAllLocalSchedulersRun(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 200
	for _, lsName := range LocalNames() {
		cfg.LS = lsName
		res, err := RunConfig(cfg)
		if err != nil {
			t.Fatalf("%s: %v", lsName, err)
		}
		if res.JobsDone != 200 {
			t.Fatalf("%s: %d done", lsName, res.JobsDone)
		}
	}
}

func TestUnknownAlgorithmsRejected(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.ES = "JobBogus" },
		func(c *Config) { c.LS = "Bogus" },
		func(c *Config) { c.DS = "DataBogus" },
	} {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Error("expected error for unknown algorithm")
		}
	}
}

func TestInvalidConfigsRejected(t *testing.T) {
	for i, mutate := range []func(*Config){
		func(c *Config) { c.Sites = 0 },
		func(c *Config) { c.Users = 0 },
		func(c *Config) { c.Files = 0 },
		func(c *Config) { c.TotalJobs = 0 },
		func(c *Config) { c.MinCEs = 0 },
		func(c *Config) { c.MaxCEs = c.MinCEs - 1 },
		func(c *Config) { c.RegionFanout = 0 },
		func(c *Config) { c.BandwidthMBps = 0 },
		func(c *Config) { c.DSInterval = 0 },
		func(c *Config) { c.DSThreshold = 0 },
	} {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSimulationSingleUse(t *testing.T) {
	sim, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("second Run must error")
	}
}

func TestMaxTimeAbort(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxTime = 100 // virtual seconds: nowhere near enough
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("run claims completion under absurd MaxTime")
	}
	if res.JobsDone >= cfg.TotalJobs {
		t.Fatalf("JobsDone = %d", res.JobsDone)
	}
}

func TestTraceReplayMatchesSynthetic(t *testing.T) {
	cfg := smallConfig()
	synthetic, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Generate the identical workload externally and replay it.
	wl, err := workload.Generate(cfg.WorkloadSpec(), rng.New(cfg.Seed).Derive("workload"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = wl
	replayed, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if synthetic.AvgResponseSec != replayed.AvgResponseSec {
		t.Fatalf("replay diverged: %v vs %v", synthetic.AvgResponseSec, replayed.AvgResponseSec)
	}
}

func TestTraceSpecMismatchRejected(t *testing.T) {
	cfg := smallConfig()
	spec := cfg.WorkloadSpec()
	spec.Sites = cfg.Sites + 1
	spec.Users = cfg.Users
	wl, err := workload.Generate(spec, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = wl
	if _, err := New(cfg); err == nil {
		t.Fatal("expected trace/config mismatch error")
	}
}

func TestESMappings(t *testing.T) {
	for _, m := range []ESMapping{ESPerSite, ESCentral, ESPerUser} {
		cfg := smallConfig()
		cfg.TotalJobs = 200
		cfg.Mapping = m
		res, err := RunConfig(cfg)
		if err != nil {
			t.Fatalf("mapping %v: %v", m, err)
		}
		if res.JobsDone != 200 {
			t.Fatalf("mapping %v: %d done", m, res.JobsDone)
		}
	}
}

func TestCentralMappingJobLocalRunsAtHost(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 100
	cfg.ES = "JobLocal"
	cfg.DS = "DataDoNothing"
	cfg.Mapping = ESCentral
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// All jobs must have run at site 0, the central host.
	for _, rec := range sim.collector.Records() {
		if rec.Site != 0 {
			t.Fatalf("job %d ran at %d under central JobLocal", rec.ID, rec.Site)
		}
	}
}

func TestMultiInputJobsComplete(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 300
	cfg.InputsPerJob = 3
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsDone != 300 {
		t.Fatalf("done = %d", res.JobsDone)
	}
}

func TestSingleSiteGrid(t *testing.T) {
	cfg := smallConfig()
	cfg.Sites = 1
	cfg.Users = 4
	cfg.Files = 10
	cfg.TotalJobs = 50
	cfg.StorageGB = 0 // a single site must hold all masters anyway
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsDone != 50 {
		t.Fatalf("done = %d", res.JobsDone)
	}
	if res.FetchMBPerJob != 0 {
		t.Fatalf("single-site grid moved %v MB/job", res.FetchMBPerJob)
	}
}

func TestUnlimitedStorage(t *testing.T) {
	cfg := smallConfig()
	cfg.StorageGB = 0
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions != 0 {
		t.Fatalf("unlimited storage evicted %d times", res.Evictions)
	}
}

func TestMaxMinSharingRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 300
	cfg.Sharing = netsim.MaxMinFair
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsDone != 300 {
		t.Fatalf("done = %d", res.JobsDone)
	}
}

func TestResponseNeverBelowCompute(t *testing.T) {
	cfg := smallConfig()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, rec := range sim.collector.Records() {
		if rec.Response() < rec.ComputeTime-1e-9 {
			t.Fatalf("job %d response %v < compute %v", rec.ID, rec.Response(), rec.ComputeTime)
		}
		if rec.Start < rec.Dispatch || rec.End < rec.Start || rec.Dispatch < rec.Submit {
			t.Fatalf("job %d timestamps inverted", rec.ID)
		}
	}
}

// TestPaperShapes asserts the six qualitative results of the paper (see
// DESIGN.md §5) at full Table 1 scale with a single seed per cell.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale shape check skipped in -short mode")
	}
	cfg := DefaultConfig()
	run := func(esName, dsName string, bw float64) Results {
		c := cfg
		c.ES, c.DS, c.BandwidthMBps = esName, dsName, bw
		res, err := RunConfig(c)
		if err != nil {
			t.Fatalf("%s+%s@%g: %v", esName, dsName, bw, err)
		}
		return res
	}

	noRep := map[string]Results{}
	withRep := map[string]Results{}
	for _, esName := range PaperExternalNames() {
		noRep[esName] = run(esName, "DataDoNothing", 10)
		withRep[esName] = run(esName, "DataLeastLoaded", 10)
	}

	// (1) Without replication JobLocal is best, JobDataPresent worst.
	for _, esName := range []string{"JobRandom", "JobLeastLoaded", "JobDataPresent"} {
		if noRep["JobLocal"].AvgResponseSec >= noRep[esName].AvgResponseSec {
			t.Errorf("shape 1: JobLocal (%.0f) not better than %s (%.0f) without replication",
				noRep["JobLocal"].AvgResponseSec, esName, noRep[esName].AvgResponseSec)
		}
	}
	for _, esName := range []string{"JobRandom", "JobLeastLoaded", "JobLocal"} {
		if noRep["JobDataPresent"].AvgResponseSec <= noRep[esName].AvgResponseSec {
			t.Errorf("shape 1: JobDataPresent (%.0f) not worst vs %s (%.0f) without replication",
				noRep["JobDataPresent"].AvgResponseSec, esName, noRep[esName].AvgResponseSec)
		}
	}

	// (2) With replication JobDataPresent is best on all three metrics and
	// beats the best no-replication algorithm.
	dp := withRep["JobDataPresent"]
	for _, esName := range []string{"JobRandom", "JobLeastLoaded", "JobLocal"} {
		o := withRep[esName]
		if dp.AvgResponseSec >= o.AvgResponseSec {
			t.Errorf("shape 2: JobDataPresent response %.0f not better than %s %.0f", dp.AvgResponseSec, esName, o.AvgResponseSec)
		}
		if dp.AvgDataPerJobMB >= o.AvgDataPerJobMB {
			t.Errorf("shape 2: JobDataPresent data %.0f not lower than %s %.0f", dp.AvgDataPerJobMB, esName, o.AvgDataPerJobMB)
		}
		if dp.IdleFrac >= o.IdleFrac {
			t.Errorf("shape 2: JobDataPresent idle %.2f not lower than %s %.2f", dp.IdleFrac, esName, o.IdleFrac)
		}
	}
	if dp.AvgResponseSec >= noRep["JobLocal"].AvgResponseSec {
		t.Errorf("shape 2: JobDataPresent+rep (%.0f) does not beat best no-rep (%.0f)",
			dp.AvgResponseSec, noRep["JobLocal"].AvgResponseSec)
	}

	// (3) JobDataPresent transfers > 400 MB/job less than the others.
	for _, esName := range []string{"JobRandom", "JobLeastLoaded", "JobLocal"} {
		if diff := withRep[esName].AvgDataPerJobMB - dp.AvgDataPerJobMB; diff < 400 {
			t.Errorf("shape 3: data gap vs %s = %.0f MB, want > 400", esName, diff)
		}
	}

	// (4) Replication does not improve the other three algorithms'
	// response times (allow 10%% tolerance for "remain the same").
	for _, esName := range []string{"JobRandom", "JobLeastLoaded", "JobLocal"} {
		if withRep[esName].AvgResponseSec < 0.9*noRep[esName].AvgResponseSec {
			t.Errorf("shape 4: replication improved %s from %.0f to %.0f",
				esName, noRep[esName].AvgResponseSec, withRep[esName].AvgResponseSec)
		}
	}

	// (5) DataRandom ≈ DataLeastLoaded for the winning pair (within 20%).
	dpRand := run("JobDataPresent", "DataRandom", 10)
	ratio := dpRand.AvgResponseSec / dp.AvgResponseSec
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("shape 5: DataRandom/DataLeastLoaded = %.2f, want ~1", ratio)
	}

	// (6) At 100 MB/s JobLocal ≈ JobDataPresent (within 15%) and the
	// data-moving algorithms improve substantially (≥ 25%).
	fastLocal := run("JobLocal", "DataLeastLoaded", 100)
	fastDP := run("JobDataPresent", "DataLeastLoaded", 100)
	ratio = fastLocal.AvgResponseSec / fastDP.AvgResponseSec
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("shape 6: JobLocal/JobDataPresent at 100MB/s = %.2f, want ~1", ratio)
	}
	for _, esName := range []string{"JobRandom", "JobLeastLoaded", "JobLocal"} {
		fast := run(esName, "DataLeastLoaded", 100)
		if fast.AvgResponseSec > 0.75*withRep[esName].AvgResponseSec {
			t.Errorf("shape 6: %s only improved from %.0f to %.0f at 100MB/s",
				esName, withRep[esName].AvgResponseSec, fast.AvgResponseSec)
		}
	}
	// JobDataPresent roughly flat (within 20%).
	if r := fastDP.AvgResponseSec / dp.AvgResponseSec; r < 0.8 || r > 1.2 {
		t.Errorf("shape 6: JobDataPresent not flat across bandwidths: ratio %.2f", r)
	}
}

// TestSeedVariance mirrors the paper's observation: "we ran with different
// random seeds in order to evaluate variance; in practice, we found no
// significant variation."
func TestSeedVariance(t *testing.T) {
	if testing.Short() {
		t.Skip("variance check skipped in -short mode")
	}
	cfg := DefaultConfig()
	var responses []float64
	for seed := uint64(1); seed <= 3; seed++ {
		cfg.Seed = seed
		res, err := RunConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		responses = append(responses, res.AvgResponseSec)
	}
	mean := (responses[0] + responses[1] + responses[2]) / 3
	for _, r := range responses {
		if math.Abs(r-mean)/mean > 0.35 {
			t.Fatalf("seed variance too large: %v (mean %v)", responses, mean)
		}
	}
}

func TestWorkloadAccessor(t *testing.T) {
	sim, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sim.Workload().TotalJobs() != 800 {
		t.Fatal("Workload accessor wrong")
	}
	if sim.Engine() == nil {
		t.Fatal("Engine accessor nil")
	}
}
