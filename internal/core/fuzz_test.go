package core

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadConfig ensures the config parser never panics and that every
// accepted configuration is valid, serializable, and re-loadable.
func FuzzLoadConfig(f *testing.F) {
	var buf bytes.Buffer
	cfg := DefaultConfig()
	if err := cfg.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"Sites":0}`)
	f.Add(`{"ES":"JobBogus"}`)
	f.Add(`{"Degradations":[{"At":-5}]}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, input string) {
		got, err := LoadConfig(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("LoadConfig accepted an invalid config: %v", err)
		}
		var out bytes.Buffer
		if err := got.WriteJSON(&out); err != nil {
			t.Fatalf("accepted config failed to serialize: %v", err)
		}
		if _, err := LoadConfig(&out); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
