package core

import (
	"fmt"
	"math"

	"chicsim/internal/obs/registry"
	"chicsim/internal/obs/watchdog"
	"chicsim/internal/topology"
)

// This file wires the live control plane (internal/obs/registry,
// internal/obs/watchdog) into the simulation: counter hooks on the job
// lifecycle, gauges synced on the ObsInterval tick, per-site response
// histograms, and the online invariant checks.
//
// Determinism: every registry update is commutative arithmetic on values
// the simulation already maintains; nothing here schedules extra events
// beyond the single recurring obs tick, draws random numbers, or is read
// back by scheduling code. The watchdog checks are read-only over
// simulation state. A run with metrics + watchdog attached therefore
// produces byte-identical Results to a run without them (regression
// test: TestControlPlaneDoesNotPerturbResults).

// respBuckets are the upper bounds (seconds) of the per-site response
// histograms. Roughly geometric around the paper's ~300–600 s job scale.
var respBuckets = []float64{60, 120, 300, 600, 1200, 2400, 4800, 9600, 19200, 38400, 76800}

// simMetrics holds the registry handles one simulation updates. All
// handle types are no-ops in their zero value, so hook sites need no
// enable checks; the per-site slices are nil when metrics are off and
// guarded at their (few) call sites.
type simMetrics struct {
	jobsSubmitted registry.Counter
	jobsDone      registry.Counter
	jobsRetried   registry.Counter
	jobsAbandoned registry.Counter
	dispatches    registry.Counter
	replications  registry.Counter

	jobsRunning     registry.Gauge
	jobsQueued      registry.Gauge
	jobsDataWaiting registry.Gauge
	inflightFlows   registry.Gauge
	sitesDown       registry.Gauge
	virtualTime     registry.Gauge
	linkLoadMax     registry.Gauge
	linkBacklog     registry.Gauge

	faultsByClass *registry.CounterVec

	queueDepth  []registry.Gauge     // per site
	busyCEs     []registry.Gauge     // per site
	storageUsed []registry.Gauge     // per site
	replicas    []registry.Gauge     // per site
	respBySite  []registry.Histogram // per site
}

// registerMetrics registers (idempotently) the standard metric families
// on cfg.Metrics and binds this simulation's handles. Under a campaign,
// many concurrent simulations share one registry: counters and
// histograms merge deterministically (the updates commute); gauges are
// last-write-wins across workers and meaningful mainly for single-run
// monitoring.
func (s *Simulation) registerMetrics(reg *registry.Registry) {
	jobs := reg.Counter("sim_jobs_total",
		"Job lifecycle transitions by state.", "state")
	s.lm.jobsSubmitted = jobs.With("submitted")
	s.lm.jobsDone = jobs.With("done")
	s.lm.jobsRetried = jobs.With("retried")
	s.lm.jobsAbandoned = jobs.With("abandoned")
	s.lm.dispatches = reg.Counter("sim_dispatches_total",
		"Jobs handed to a site by the external/batch scheduler.").With()
	s.lm.replications = reg.Counter("sim_replications_total",
		"Dataset-scheduler replica pushes issued.").With()

	s.lm.jobsRunning = reg.Gauge("sim_jobs_running",
		"Jobs occupying a compute element right now.").With()
	s.lm.jobsQueued = reg.Gauge("sim_jobs_queued",
		"Jobs waiting in site queues.").With()
	s.lm.jobsDataWaiting = reg.Gauge("sim_jobs_data_waiting",
		"Queued jobs still waiting on at least one input transfer.").With()
	s.lm.inflightFlows = reg.Gauge("sim_inflight_transfers",
		"Wide-area transfers currently moving bytes.").With()
	s.lm.sitesDown = reg.Gauge("sim_sites_down",
		"Sites currently crashed.").With()
	s.lm.virtualTime = reg.Gauge("sim_virtual_time_seconds",
		"Current virtual time of the simulation.").With()
	s.lm.linkLoadMax = reg.Gauge("sim_link_load_max_frac",
		"Most loaded link: sum of flow rates over effective bandwidth.").With()
	s.lm.linkBacklog = reg.Gauge("sim_link_backlog_bytes",
		"Bytes still to deliver, summed over links crossed.").With()

	s.lm.faultsByClass = reg.Counter("sim_faults_total",
		"Faults applied and repairs completed, by class.", "class")

	qd := reg.Gauge("sim_queue_depth", "Jobs queued at the site.", "site")
	bc := reg.Gauge("sim_busy_ces", "Busy compute elements at the site.", "site")
	su := reg.Gauge("sim_storage_used_bytes", "Bytes resident at the site.", "site")
	rc := reg.Gauge("sim_replicas", "Files resident at the site.", "site")
	rh := reg.Histogram("sim_response_seconds",
		"Job response time (submit to completion).", respBuckets, "site")
	n := len(s.sites)
	s.lm.queueDepth = make([]registry.Gauge, n)
	s.lm.busyCEs = make([]registry.Gauge, n)
	s.lm.storageUsed = make([]registry.Gauge, n)
	s.lm.replicas = make([]registry.Gauge, n)
	s.lm.respBySite = make([]registry.Histogram, n)
	for i := 0; i < n; i++ {
		sv := fmt.Sprintf("%d", i)
		s.lm.queueDepth[i] = qd.With(sv)
		s.lm.busyCEs[i] = bc.With(sv)
		s.lm.storageUsed[i] = su.With(sv)
		s.lm.replicas[i] = rc.With(sv)
		s.lm.respBySite[i] = rh.With(sv)
	}
}

// syncGauges publishes the current grid state into the registry. Runs on
// the ObsInterval tick; all reads are the same accessors the probe layer
// already uses.
func (s *Simulation) syncGauges() {
	running, queued, waiting, down := 0, 0, 0, 0
	for i, st := range s.sites {
		b, q := st.Busy(), st.QueueLen()
		running += b
		queued += q
		waiting += st.DataWaitingJobs()
		if st.Down() {
			down++
		}
		s.lm.queueDepth[i].Set(float64(q))
		s.lm.busyCEs[i].Set(float64(b))
		s.lm.storageUsed[i].Set(st.Store().Used())
		s.lm.replicas[i].Set(float64(st.Store().Len()))
	}
	s.lm.jobsRunning.Set(float64(running))
	s.lm.jobsQueued.Set(float64(queued))
	s.lm.jobsDataWaiting.Set(float64(waiting))
	s.lm.inflightFlows.Set(float64(s.net.ActiveFlows()))
	s.lm.sitesDown.Set(float64(down))
	s.lm.virtualTime.Set(float64(s.eng.Now()))

	loads := s.net.LinkLoads()
	maxFrac, backlog := 0.0, 0.0
	for l, load := range loads {
		if bw := s.net.EffectiveBandwidth(topology.LinkID(l)); bw > 0 {
			if frac := load / bw; frac > maxFrac {
				maxFrac = frac
			}
		}
	}
	for _, b := range s.net.LinkBacklogBytes() {
		backlog += b
	}
	s.lm.linkLoadMax.Set(maxFrac)
	s.lm.linkBacklog.Set(backlog)
}

// registerWatchdog installs the invariant checks on s.wd. Every check is
// a read-only closure over simulation state, evaluated between events on
// the obs tick.
func (s *Simulation) registerWatchdog() {
	s.wd.Register("job_conservation", func() string {
		// Between events, every submitted job is in exactly one place:
		// batch buffer, a site queue, a compute element, awaiting a retry
		// backoff, completed, or abandoned.
		queued, running := 0, 0
		for _, st := range s.sites {
			queued += st.QueueLen()
			running += st.Busy()
		}
		done := s.jobsDone + s.wdSkewDone // wdSkewDone is a test-only fault seed
		accounted := done + s.jobsFailed + queued + running + len(s.batchBuf) + s.retryPending
		if accounted != s.jobsSubmitted {
			return fmt.Sprintf("submitted %d != accounted %d (done %d, abandoned %d, queued %d, running %d, batched %d, retry-pending %d)",
				s.jobsSubmitted, accounted, done, s.jobsFailed, queued, running, len(s.batchBuf), s.retryPending)
		}
		return ""
	})
	s.wd.Register("replica_accounting", func() string {
		// The grid-wide catalog and each site's own store must agree on
		// what is resident where (transient staging is registered in
		// neither).
		for i, st := range s.sites {
			if cat, res := s.cat.CountAt(topology.SiteID(i)), st.Store().Len(); cat != res {
				return fmt.Sprintf("site %d: catalog says %d replicas, store holds %d", i, cat, res)
			}
		}
		return ""
	})
	s.wd.Register("storage_capacity", func() string {
		if s.cfg.StorageGB <= 0 {
			return ""
		}
		capBytes := s.cfg.StorageGB * 1e9
		for i, st := range s.sites {
			if used := st.Store().Used(); used > capBytes*(1+1e-9) {
				return fmt.Sprintf("site %d: %.0f bytes resident exceeds capacity %.0f", i, used, capBytes)
			}
		}
		return ""
	})
	s.wd.Register("link_capacity", func() string {
		for l, load := range s.net.LinkLoads() {
			bw := s.net.EffectiveBandwidth(topology.LinkID(l))
			if load > bw*(1+1e-6)+1e-6 {
				return fmt.Sprintf("link %d: flow rates sum to %.0f B/s over capacity %.0f B/s", l, load, bw)
			}
		}
		return ""
	})
	s.wd.Register("counters_monotone", func() string {
		if s.jobsDone < 0 || s.jobsFailed < 0 || s.retryPending < 0 {
			return fmt.Sprintf("negative ledger: done %d, abandoned %d, retry-pending %d",
				s.jobsDone, s.jobsFailed, s.retryPending)
		}
		if math.IsNaN(float64(s.eng.Now())) {
			return "virtual time is NaN"
		}
		return ""
	})
}

// attachControlPlane books the single recurring obs tick that syncs
// gauges and runs the watchdog. Called from Run when either is enabled.
func (s *Simulation) attachControlPlane() {
	s.eng.Every(s.cfg.ObsInterval, func() bool {
		if s.finished {
			return false
		}
		if s.lmOn {
			s.syncGauges()
		}
		if s.wd != nil {
			if err := s.wd.Tick(float64(s.eng.Now())); err != nil {
				s.wdErr = err
				s.eng.Stop()
				return false
			}
		}
		return true
	})
}

// finishControlPlane runs one final gauge sync + watchdog pass at the end
// of the run (the Every tick stops with the workload, so without this the
// registry would be one interval stale) and records the violation count.
func (s *Simulation) finishControlPlane(r *Results) {
	if s.lmOn {
		s.syncGauges()
	}
	if s.wd != nil {
		if s.wdErr == nil {
			if err := s.wd.Tick(float64(s.eng.Now())); err != nil {
				s.wdErr = err
			}
		}
		r.WatchdogViolations = s.wd.Count()
	}
}

// newWatchdog builds the simulation's watchdog from the config.
func newWatchdog(cfg Config) *watchdog.Watchdog {
	if cfg.Watchdog == watchdog.Off {
		return nil
	}
	return watchdog.New(watchdog.Config{Mode: cfg.Watchdog, OnViolation: cfg.OnViolation})
}
