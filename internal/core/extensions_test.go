package core

import (
	"testing"

	"chicsim/internal/trace"
)

func TestThinkTimeStretchesWorkload(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 400
	base, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ThinkTimeMean = 500
	slow, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.JobsDone != 400 {
		t.Fatalf("think-time run done = %d", slow.JobsDone)
	}
	// Users pausing between jobs must lengthen the makespan...
	if slow.Makespan <= base.Makespan {
		t.Fatalf("think time did not stretch makespan: %v vs %v", slow.Makespan, base.Makespan)
	}
	// ...and reduce contention, so response should not get worse by much.
	if slow.AvgResponseSec > base.AvgResponseSec*1.2 {
		t.Fatalf("response degraded under think time: %v vs %v", slow.AvgResponseSec, base.AvgResponseSec)
	}
}

func TestOpenArrivalsComplete(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 400
	cfg.ArrivalRate = 1.0 / 400 // one job per user every ~400 s
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.JobsDone != 400 {
		t.Fatalf("open model: done=%d completed=%v", res.JobsDone, res.Completed)
	}
}

func TestOpenArrivalsOverload(t *testing.T) {
	// An arrival rate far above service capacity must still complete the
	// finite workload (queues absorb the burst), with long queue waits.
	cfg := smallConfig()
	cfg.TotalJobs = 300
	cfg.ArrivalRate = 1 // one submission per user per second: a flood
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsDone != 300 {
		t.Fatalf("done = %d", res.JobsDone)
	}
	if res.AvgQueueWait <= 0 {
		t.Fatal("flooded grid shows no queueing")
	}
}

func TestOpenArrivalsDeterministic(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 300
	cfg.ArrivalRate = 1.0 / 100
	a, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgResponseSec != b.AvgResponseSec || a.Makespan != b.Makespan {
		t.Fatal("open model not deterministic")
	}
}

func TestBackboneBandwidthHelps(t *testing.T) {
	// A transfer-heavy policy should benefit from a 10× backbone: the
	// root links are the shared bottleneck for cross-region traffic.
	cfg := smallConfig()
	cfg.ES, cfg.DS = "JobLeastLoaded", "DataDoNothing"
	slow, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BackboneMBps = 100
	fast, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.AvgResponseSec >= slow.AvgResponseSec {
		t.Fatalf("backbone upgrade did not help: %v vs %v", fast.AvgResponseSec, slow.AvgResponseSec)
	}
}

func TestLatencySlowsTransfers(t *testing.T) {
	// Low-contention setting (few users, fast links) so the per-hop
	// setup latency dominates and its effect is monotone. Under heavy
	// contention latency can help by staggering flows, which is why the
	// transfer-heavy cells are not a clean signal for this test.
	cfg := smallConfig()
	cfg.ES, cfg.DS = "JobRandom", "DataDoNothing"
	cfg.Users = 8
	cfg.TotalJobs = 80
	cfg.BandwidthMBps = 100
	base, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LatencyMsPerHop = 30000 // absurd 30 s/hop to make the effect plain
	slow, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.JobsDone != 80 {
		t.Fatalf("done = %d", slow.JobsDone)
	}
	if slow.AvgResponseSec <= base.AvgResponseSec {
		t.Fatalf("latency did not slow responses: %v vs %v", slow.AvgResponseSec, base.AvgResponseSec)
	}
}

func TestDegradationInjection(t *testing.T) {
	cfg := smallConfig()
	cfg.ES, cfg.DS = "JobLocal", "DataDoNothing"
	cfg.TotalJobs = 300
	base, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A long backbone brownout in the middle of the run: everything must
	// still complete, slower.
	cfg.Degradations = []Degradation{{At: 100, Duration: 5000, Multiplier: 0.05, BackboneOnly: true}}
	hurt, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hurt.Completed || hurt.JobsDone != 300 {
		t.Fatalf("degraded run: done=%d completed=%v", hurt.JobsDone, hurt.Completed)
	}
	if hurt.AvgResponseSec <= base.AvgResponseSec {
		t.Fatalf("backbone brownout did not hurt: %v vs %v", hurt.AvgResponseSec, base.AvgResponseSec)
	}
}

func TestFullOutageRecovery(t *testing.T) {
	// Total network outage: transfers stall entirely, then recover.
	cfg := smallConfig()
	cfg.TotalJobs = 200
	cfg.Degradations = []Degradation{{At: 50, Duration: 2000, Multiplier: 0}}
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.JobsDone != 200 {
		t.Fatalf("outage run: done=%d completed=%v", res.JobsDone, res.Completed)
	}
}

func TestInvalidDegradationRejected(t *testing.T) {
	cfg := smallConfig()
	cfg.Degradations = []Degradation{{At: -1, Duration: 10, Multiplier: 0.5}}
	if _, err := RunConfig(cfg); err == nil {
		t.Fatal("expected error for negative start")
	}
	cfg.Degradations = []Degradation{{At: 1, Duration: 0, Multiplier: 0.5}}
	if _, err := RunConfig(cfg); err == nil {
		t.Fatal("expected error for zero duration")
	}
}

func TestTieredTopologyRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.Sites = 12
	cfg.Users = 24
	cfg.TotalJobs = 240
	cfg.Tiers = []int{2, 3, 2} // 4-level GriPhyN tree, 12 leaf sites
	cfg.TierBandwidthsMBps = []float64{100, 20, 10}
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.JobsDone != 240 {
		t.Fatalf("done=%d", res.JobsDone)
	}
}

func TestTiersMustMatchSites(t *testing.T) {
	cfg := smallConfig()
	cfg.Tiers = []int{2, 3} // 6 != cfg.Sites (10)
	if _, err := New(cfg); err == nil {
		t.Fatal("mismatched tier product accepted")
	}
	cfg.Tiers = []int{0, 3}
	if _, err := New(cfg); err == nil {
		t.Fatal("zero fanout accepted")
	}
}

func TestCPUHeterogeneity(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 300
	cfg.CPUSpreadFrac = 0.5
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.JobsDone != 300 {
		t.Fatalf("done=%d", res.JobsDone)
	}
	// With spread, some jobs run faster than their nominal compute time.
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	faster := 0
	for _, rec := range sim.collector.Records() {
		if rec.End-rec.Start < rec.ComputeTime-1e-9 {
			faster++
		}
	}
	if faster == 0 {
		t.Fatal("no job ran on a faster-than-nominal processor")
	}
	cfg.CPUSpreadFrac = 1.5
	if _, err := New(cfg); err == nil {
		t.Fatal("spread >= 1 accepted")
	}
}

func TestJobRegionalCompletes(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 300
	cfg.ES = "JobRegional"
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.JobsDone != 300 {
		t.Fatalf("done=%d", res.JobsDone)
	}
	// Region-confined placement never crosses the backbone for compute:
	// fetched bytes may cross, but per-job traffic should sit below the
	// scatter policies (repeat hits inside the region).
	cfg.ES = "JobRandom"
	scatter, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgDataPerJobMB >= scatter.AvgDataPerJobMB {
		t.Fatalf("regional placement moved more data (%v) than random scatter (%v)",
			res.AvgDataPerJobMB, scatter.AvgDataPerJobMB)
	}
}

func TestRegionalInfoCompletes(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 400
	global, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RegionalInfo = true
	regional, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !regional.Completed || regional.JobsDone != 400 {
		t.Fatalf("regional info: done=%d", regional.JobsDone)
	}
	// Partial knowledge must change behavior (different placements), and
	// it cannot make JobDataPresent dramatically better than the oracle.
	if regional.AvgResponseSec == global.AvgResponseSec {
		t.Fatal("regional scoping had no effect at all")
	}
	if regional.AvgResponseSec < global.AvgResponseSec*0.7 {
		t.Fatalf("partial info mysteriously beat the oracle: %v vs %v",
			regional.AvgResponseSec, global.AvgResponseSec)
	}
}

func TestDSDeletion(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 400
	cfg.ES = "JobRandom" // scatter jobs so caches fill with one-off files
	cfg.DSDeleteAfter = 2
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.JobsDone != 400 {
		t.Fatalf("done=%d", res.JobsDone)
	}
	if res.DSDeletions == 0 {
		t.Fatal("deletion-enabled DS never deleted anything")
	}
	// Without the feature, no DS deletions are recorded.
	cfg.DSDeleteAfter = 0
	base, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.DSDeletions != 0 {
		t.Fatalf("paper config recorded %d DS deletions", base.DSDeletions)
	}
}

func TestDSDeletionKeepsCorrectness(t *testing.T) {
	// Aggressive deletion (1 idle window) must never break execution:
	// masters stay, and deleted replicas are refetched on demand.
	cfg := smallConfig()
	cfg.TotalJobs = 300
	cfg.DSDeleteAfter = 1
	cfg.DSInterval = 100
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.JobsDone != 300 {
		t.Fatalf("done=%d completed=%v", res.JobsDone, res.Completed)
	}
}

func TestOutputShipping(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 300
	cfg.ES = "JobLeastLoaded" // jobs usually run away from home
	base, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.OutputMBPerJob != 0 {
		t.Fatalf("paper config shipped output: %v", base.OutputMBPerJob)
	}
	cfg.OutputFraction = 0.1
	withOut, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withOut.OutputMBPerJob <= 0 || withOut.OutputCount == 0 {
		t.Fatalf("no output traffic recorded: %+v", withOut.Results)
	}
	// Output is ~10% of input volume for remotely run jobs.
	if withOut.OutputMBPerJob > withOut.FetchMBPerJob {
		t.Fatalf("output %v exceeds fetch %v at 10%%", withOut.OutputMBPerJob, withOut.FetchMBPerJob)
	}
	// Output contends for bandwidth: fetches should slow at least a bit,
	// so response must not improve.
	if withOut.AvgResponseSec < base.AvgResponseSec*0.98 {
		t.Fatalf("adding output traffic improved response: %v vs %v", withOut.AvgResponseSec, base.AvgResponseSec)
	}
}

func TestOutputLocalJobsShipNothing(t *testing.T) {
	cfg := smallConfig()
	cfg.Sites = 1
	cfg.Users = 4
	cfg.Files = 10
	cfg.TotalJobs = 50
	cfg.StorageGB = 0
	cfg.OutputFraction = 0.5
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputMBPerJob != 0 {
		t.Fatalf("single-site grid shipped output: %v", res.OutputMBPerJob)
	}
}

func TestOutputTraceValidates(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 200
	cfg.ES = "JobLeastLoaded"
	cfg.OutputFraction = 0.2
	log := trace.NewLog()
	cfg.Recorder = log
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	if a.OutputCount != res.OutputCount {
		t.Fatalf("trace outputs %d vs online %d", a.OutputCount, res.OutputCount)
	}
	if d := a.AvgDataPerJobMB() - res.AvgDataPerJobMB; d > 1e-6 || d < -1e-6 {
		t.Fatalf("data accounting diverged: %v vs %v", a.AvgDataPerJobMB(), res.AvgDataPerJobMB)
	}
}

func TestBatchSchedulingCompletes(t *testing.T) {
	for _, name := range BatchNames() {
		cfg := smallConfig()
		cfg.TotalJobs = 300
		cfg.BatchES = name
		cfg.BatchWindow = 120
		res, err := RunConfig(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Completed || res.JobsDone != 300 {
			t.Fatalf("%s: done=%d", name, res.JobsDone)
		}
		if res.ES != name {
			t.Fatalf("results report ES %q, want %q", res.ES, name)
		}
		// Buffered dispatch: queue wait includes the batch delay, so
		// dispatch must lag submission for most jobs.
		if res.AvgResponseSec <= 0 {
			t.Fatalf("%s: degenerate response", name)
		}
	}
}

func TestBatchRequiresWindow(t *testing.T) {
	cfg := smallConfig()
	cfg.BatchES = "BatchMinMin"
	cfg.BatchWindow = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("batch mode without window accepted")
	}
	cfg.BatchWindow = 60
	cfg.BatchES = "BatchBogus"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown batch scheduler accepted")
	}
}

func TestSampling(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 300
	cfg.SampleInterval = 120
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	want := int(res.Makespan / 120)
	if len(res.Samples) < want-2 || len(res.Samples) > want+2 {
		t.Fatalf("samples = %d, expected ~%d", len(res.Samples), want)
	}
	sawBusy := false
	for i, smp := range res.Samples {
		if len(smp.SiteBusy) != cfg.Sites {
			t.Fatalf("sample %d has %d sites", i, len(smp.SiteBusy))
		}
		if i > 0 && smp.T <= res.Samples[i-1].T {
			t.Fatalf("sample times not increasing at %d", i)
		}
		for _, b := range smp.SiteBusy {
			if b < 0 || b > 1 {
				t.Fatalf("busy fraction %v out of range", b)
			}
			if b > 0 {
				sawBusy = true
			}
		}
	}
	if !sawBusy {
		t.Fatal("no sample ever saw a busy processor")
	}
}

func TestSiteJobGiniHotspot(t *testing.T) {
	cfg := smallConfig()
	cfg.ES = "JobDataPresent"
	cfg.DS = "DataDoNothing"
	hot, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DS = "DataLeastLoaded"
	spread, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hot.SiteJobGini <= spread.SiteJobGini {
		t.Fatalf("hotspot Gini %v not above replicated %v", hot.SiteJobGini, spread.SiteJobGini)
	}
	if hot.SiteJobGini <= 0 || hot.SiteJobGini >= 1 {
		t.Fatalf("Gini out of range: %v", hot.SiteJobGini)
	}
}
