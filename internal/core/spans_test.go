package core

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"chicsim/internal/trace"
)

// TestDecompositionSumsToResponse is the tentpole's accounting property:
// for every completed job, across seeds and scheduler pairs, the four
// reconstructed phases (retry + data + queue + exec) must tile the
// measured response time exactly — and the online per-run means must
// agree with the offline reconstruction.
func TestDecompositionSumsToResponse(t *testing.T) {
	combos := []struct{ es, ds string }{
		{"JobRandom", "DataDoNothing"},
		{"JobDataPresent", "DataLeastLoaded"},
	}
	for _, combo := range combos {
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := smallConfig()
			cfg.ES, cfg.DS, cfg.Seed = combo.es, combo.ds, seed
			log := trace.NewLog()
			cfg.Recorder = log
			res, err := RunConfig(cfg)
			if err != nil {
				t.Fatal(err)
			}
			f, err := trace.BuildSpans(log)
			if err != nil {
				t.Fatalf("%s+%s seed %d: %v", combo.es, combo.ds, seed, err)
			}
			if len(f.Jobs) != res.JobsDone {
				t.Fatalf("%s+%s seed %d: %d span trees, %d jobs done",
					combo.es, combo.ds, seed, len(f.Jobs), res.JobsDone)
			}
			for _, jt := range f.Jobs {
				d := jt.Decomp
				if d.Retry < 0 || d.Data < 0 || d.Queue < 0 || d.Exec < 0 {
					t.Fatalf("job %d: negative phase in %+v", jt.Job, d)
				}
				if math.Abs(d.Response()-jt.Response()) > 1e-9 {
					t.Fatalf("job %d: phases sum to %v, response %v (%+v)",
						jt.Job, d.Response(), jt.Response(), d)
				}
			}
			// Online means agree with the offline reconstruction and tile
			// the mean response.
			st := f.DecompStats()
			onlineSum := res.AvgDispatchWaitSec + res.AvgDataWaitSec + res.AvgCPUWaitSec + res.AvgExecSec
			if math.Abs(onlineSum-res.AvgResponseSec) > 1e-9 {
				t.Fatalf("online decomposition sums to %v, mean response %v", onlineSum, res.AvgResponseSec)
			}
			for _, pair := range [][2]float64{
				{st.MeanRetry, res.AvgDispatchWaitSec},
				{st.MeanData, res.AvgDataWaitSec},
				{st.MeanQueue, res.AvgCPUWaitSec},
				{st.MeanExec, res.AvgExecSec},
			} {
				if math.Abs(pair[0]-pair[1]) > 1e-6 {
					t.Fatalf("%s+%s seed %d: offline %v vs online %v (stats %+v)",
						combo.es, combo.ds, seed, pair[0], pair[1], st)
				}
			}
		}
	}
}

// TestDataShareCollapsesUnderReplication reproduces §5 qualitatively:
// data-unaware placement without replication is dominated by data wait,
// while JobDataPresent with DataLeastLoaded replication collapses it.
func TestDataShareCollapsesUnderReplication(t *testing.T) {
	share := func(esName, dsName string) float64 {
		cfg := smallConfig()
		cfg.ES, cfg.DS = esName, dsName
		log := trace.NewLog()
		cfg.Recorder = log
		if _, err := RunConfig(cfg); err != nil {
			t.Fatal(err)
		}
		f, err := trace.BuildSpans(log)
		if err != nil {
			t.Fatal(err)
		}
		return f.DecompStats().DataShare
	}
	naive := share("JobRandom", "DataDoNothing")
	decoupled := share("JobDataPresent", "DataLeastLoaded")
	if naive < 0.2 {
		t.Fatalf("JobRandom+DataDoNothing data share %v; expected data-dominated", naive)
	}
	if decoupled > naive/2 {
		t.Fatalf("data share did not collapse: naive %v, JobDataPresent+repl %v", naive, decoupled)
	}
}

// TestFaultedTraceSpansConsistent runs the aggressive fault mix and
// checks that span reconstruction, fault validation, and the critical
// path all hold together on a degraded grid.
func TestFaultedTraceSpansConsistent(t *testing.T) {
	cfg := faultTestConfig(11)
	log := trace.NewLog()
	cfg.Recorder = log
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateFaults(log); err != nil {
		t.Fatalf("fault invariants: %v", err)
	}
	f, err := trace.BuildSpans(log)
	if err != nil {
		t.Fatalf("span reconstruction: %v", err)
	}
	if len(f.Jobs) != res.JobsDone || len(f.Abandoned) != res.JobsFailed {
		t.Fatalf("forest %d/%d vs results %d/%d",
			len(f.Jobs), len(f.Abandoned), res.JobsDone, res.JobsFailed)
	}
	for _, jt := range f.Jobs {
		d := jt.Decomp
		if d.Retry < 0 || d.Data < 0 || d.Queue < 0 || d.Exec < 0 {
			t.Fatalf("job %d: negative phase in %+v", jt.Job, d)
		}
		if math.Abs(d.Response()-jt.Response()) > 1e-9 {
			t.Fatalf("job %d: phases sum to %v, response %v", jt.Job, d.Response(), jt.Response())
		}
	}
	if res.JobsRetried > 0 {
		retried := 0
		for _, jt := range f.Jobs {
			retried += jt.Retries
		}
		for _, a := range f.Abandoned {
			retried += a.Retries
		}
		if retried != res.JobsRetried {
			t.Fatalf("span retries %d vs results %d", retried, res.JobsRetried)
		}
	}
	p := f.CriticalPath()
	sum := p.Retry + p.Data + p.Queue + p.Exec + p.Slack
	if math.Abs(sum-p.Length()) > 1e-9 {
		t.Fatalf("critical path components sum to %v, length %v", sum, p.Length())
	}
	var buf bytes.Buffer
	if err := f.WriteChrome(&buf, log); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("chrome export of faulted trace is not valid JSON")
	}
}

// TestRecorderDoesNotPerturbResults: attaching a trace recorder must not
// change a single measured number — tracing observes the DGE, it never
// participates in it.
func TestRecorderDoesNotPerturbResults(t *testing.T) {
	for _, faulted := range []bool{false, true} {
		cfg := smallConfig()
		if faulted {
			cfg = faultTestConfig(5)
		}
		plain, err := RunConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		traced := cfg
		traced.Recorder = trace.NewLog()
		withRec, err := RunConfig(traced)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, withRec) {
			t.Fatalf("faulted=%v: recorder changed results:\n%+v\n%+v", faulted, plain, withRec)
		}
	}
}
