package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 77
	cfg.StorageGB = 42
	cfg.ES = "JobLocal"
	cfg.Degradations = []Degradation{{At: 5, Duration: 10, Multiplier: 0.5, BackboneOnly: true}}
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 77 || got.StorageGB != 42 || got.ES != "JobLocal" {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if len(got.Degradations) != 1 || got.Degradations[0].Duration != 10 {
		t.Fatalf("degradations lost: %+v", got.Degradations)
	}
}

func TestLoadConfigLayersOverDefaults(t *testing.T) {
	// A sparse file keeps Table 1 defaults for everything unspecified.
	got, err := LoadConfig(strings.NewReader(`{"ES":"JobRandom","Seed":9}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.ES != "JobRandom" || got.Seed != 9 {
		t.Fatalf("explicit fields lost: %+v", got)
	}
	if got.Sites != 30 || got.Users != 120 || got.TotalJobs != 6000 {
		t.Fatalf("defaults not layered: %+v", got)
	}
}

func TestLoadConfigRejectsInvalid(t *testing.T) {
	if _, err := LoadConfig(strings.NewReader(`{"Sites":0}`)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := LoadConfig(strings.NewReader(`{broken`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestConfigJSONExcludesRuntimeFields(t *testing.T) {
	cfg := DefaultConfig()
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Contains(s, "Recorder") || strings.Contains(s, "\"Trace\"") {
		t.Fatalf("runtime fields serialized:\n%s", s)
	}
}
