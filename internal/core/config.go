// Package core assembles the full Data Grid simulation: topology, network,
// sites, schedulers, workload, and metrics. It is the public entry point of
// the library — construct a Config (DefaultConfig reproduces the paper's
// Table 1), call Run, and read the Results.
package core

import (
	"encoding/json"
	"fmt"
	"io"

	"chicsim/internal/faults"
	"chicsim/internal/netsim"
	"chicsim/internal/obs"
	"chicsim/internal/obs/registry"
	"chicsim/internal/obs/watchdog"
	"chicsim/internal/scheduler/feedback"
	"chicsim/internal/trace"
	"chicsim/internal/workload"
)

// ESMapping selects how users map to External Schedulers (§3: "Different
// mappings between users and External Schedulers lead to different
// scenarios").
type ESMapping int

const (
	// ESPerSite is the paper's default: "For our experiments we assume
	// one ES per site."
	ESPerSite ESMapping = iota
	// ESCentral models a single central scheduler all users submit to;
	// "local" execution then means the central host site (site 0).
	ESCentral
	// ESPerUser gives every user their own scheduler (each with its own
	// decision stream).
	ESPerUser
)

func (m ESMapping) String() string {
	switch m {
	case ESPerSite:
		return "per-site"
	case ESCentral:
		return "central"
	case ESPerUser:
		return "per-user"
	default:
		return fmt.Sprintf("ESMapping(%d)", int(m))
	}
}

// Result collection modes (Config.ResultMode).
const (
	// ResultModeFull keeps a record per completed job (the default; an
	// empty ResultMode means the same thing).
	ResultModeFull = "full"
	// ResultModeBounded collects results into constant-memory streaming
	// aggregators; memory is independent of TotalJobs.
	ResultModeBounded = "bounded"
)

// Degradation is one injected network failure window.
type Degradation struct {
	At         float64 // virtual time the failure starts (s)
	Duration   float64 // how long it lasts (s)
	Multiplier float64 // bandwidth factor during the window (0 = outage)
	// BackboneOnly restricts the failure to root↔region links; otherwise
	// every link degrades.
	BackboneOnly bool
}

// Config parameterizes one simulation. The zero value is not runnable; use
// DefaultConfig as the base.
type Config struct {
	Seed uint64

	// Grid shape (Table 1).
	Sites        int // paper: 30
	Users        int // paper: 120
	Files        int // paper: 200
	TotalJobs    int // paper: 6000
	MinCEs       int // compute elements per site, low end (paper: 2)
	MaxCEs       int // compute elements per site, high end (paper: 5)
	RegionFanout int // leaf sites per regional center in the hierarchy

	// Tiers, when non-empty, replaces the default three-level hierarchy
	// with a general GriPhyN-style tree: Tiers[i] children per node at
	// depth i, sites at the leaves. Sites must equal the product of the
	// fanouts. TierBandwidthsMBps optionally provisions each tier's
	// downlinks (defaults to BandwidthMBps everywhere).
	Tiers              []int
	TierBandwidthsMBps []float64

	// CPUSpreadFrac breaks the paper's "all processors have the same
	// performance" assumption (extension): each site's processors run at
	// a speed factor drawn uniformly from [1−spread, 1+spread]. 0 keeps
	// the paper's homogeneous grid.
	CPUSpreadFrac float64

	// Network.
	BandwidthMBps float64 // paper: 10 (scenario 1) or 100 (scenario 2)
	// BackboneMBps, when > 0, provisions the root↔region backbone links
	// at a different rate than the access links (extension; the paper
	// uses one "connectivity bandwidth" everywhere).
	BackboneMBps float64
	Sharing      netsim.SharingPolicy
	// LatencyMsPerHop charges a fixed setup delay per link crossed before
	// a transfer moves bytes (extension; the paper's transfer cost is
	// purely size/bandwidth).
	LatencyMsPerHop float64
	// Degradations injects network failures: at each entry's start time
	// the selected links drop to Multiplier × nominal bandwidth, and
	// recover after Duration (extension; used for robustness studies).
	Degradations []Degradation

	// Storage (not specified in Table 1; see DESIGN.md assumptions).
	StorageGB float64 // per-site capacity; <= 0 = unlimited

	// Workload (§5.1).
	MinFileGB    float64 // paper: 0.5
	MaxFileGB    float64 // paper: 2
	ComputePerGB float64 // paper: 300 s/GB
	Popularity   workload.Popularity
	GeomP        float64
	ZipfAlpha    float64
	InputsPerJob int
	// UserFocus blends community popularity with per-user working sets
	// (extension; see workload.Spec.UserFocus).
	UserFocus float64

	// OutputFraction models job output as this fraction of the job's
	// total input bytes (extension; the paper's §3 model includes output
	// files but §5.1 ignores their cost as negligible — set this > 0 to
	// un-ignore it). Output is shipped back to the submitting user's
	// site when the job ran elsewhere; the shipment is asynchronous and
	// does not extend the job's response time, but it does contend for
	// bandwidth and is accounted in the traffic metrics.
	OutputFraction float64

	// Scheduling algorithms by name (see NewExternal/NewLocal/NewDataset).
	ES string
	LS string
	DS string

	// Feedback parameterizes the adaptive scheduler pair (extension; see
	// internal/scheduler/feedback and DESIGN.md §14). Consulted only when
	// ES is "JobFeedback" or DS is "DataFeedback": a telemetry tracker is
	// then attached, sampling live queue, link, GIS-age, and fault state
	// every Feedback.Interval seconds. All-zero weights reduce the pair
	// exactly to JobDataPresent/DataLeastLoaded.
	Feedback feedback.Params `json:"feedback,omitzero"`

	// BatchES, when non-empty, replaces the online External Scheduler
	// with a centralized batch heuristic (BatchMinMin, BatchMaxMin,
	// BatchSufferage — the §2 related-work comparators): submissions
	// buffer at a central scheduler and are assigned together every
	// BatchWindow seconds.
	BatchES     string
	BatchWindow float64

	// Dataset Scheduler cadence: each site's DS wakes every DSInterval
	// seconds and replicates files whose access count since the last wake
	// reached DSThreshold.
	DSInterval  float64
	DSThreshold int
	// DSDeleteAfter, when > 0, enables the DS's deletion role (§3: the
	// DS "determines if and when to replicate data and/or delete local
	// files"): a cached replica that records zero accesses for this many
	// consecutive DS windows is deleted, freeing space ahead of LRU
	// pressure. 0 (the default) leaves deletion purely to LRU, as the
	// paper's evaluation does.
	DSDeleteAfter int

	Mapping       ESMapping
	InfoStaleness float64 // GIS snapshot age; 0 = oracle
	// RegionalInfo, when true, restricts each scheduler's replica view to
	// its own region plus global master locations — the decentralized
	// "its view of the Grid" model instead of a grid-wide replica index
	// (extension).
	RegionalInfo bool

	// ThinkTimeMean, when > 0, inserts an exponentially distributed pause
	// between a user's job completion and their next submission
	// (extension; the paper submits the next job immediately).
	ThinkTimeMean float64
	// ArrivalRate, when > 0, switches each user from the paper's closed
	// strict-sequence model to an open model: submissions arrive as a
	// Poisson process at this per-user rate (jobs/second) regardless of
	// completions (extension).
	ArrivalRate float64

	// MaxTime aborts a run at this virtual time (0 = no limit). Aborted
	// runs return Results with Completed == false.
	MaxTime float64

	// Trace, when non-nil, replaces synthetic workload generation. Its
	// spec must agree with Sites/Users. Not serialized: traces have their
	// own file format (workload.WriteTrace).
	Trace *workload.Workload `json:"-"`

	// Recorder, when non-nil, receives every DGE event (job lifecycle,
	// transfers, replications, evictions) for offline analysis with the
	// trace package. Recording a full Table 1 run emits ~30k events.
	Recorder trace.Recorder `json:"-"`

	// SampleInterval, when > 0, samples per-site processor occupancy,
	// queue lengths, and in-flight transfers every so many virtual
	// seconds into Results.Samples (feeds the utilization heatmap).
	SampleInterval float64

	// Faults configures deterministic fault injection (extension; see
	// internal/faults and DESIGN.md §10): per-class MTBF/MTTR for site
	// crashes, CE failures, link degradation/outage, transfer aborts, and
	// replica loss, plus the retry/requeue/re-replication recovery knobs.
	// The zero value disables injection entirely and leaves the simulation
	// byte-identical to a build without the subsystem.
	Faults faults.Config `json:"faults,omitzero"`

	// ResultMode selects how the run's results are collected.
	// ResultModeFull (or empty, the default) keeps one measurement row per
	// completed job — exact distribution statistics, O(jobs) memory.
	// ResultModeBounded swaps the row slice for constant-memory streaming
	// aggregators (internal/metrics/stream): every exact aggregate field
	// of Results (counts, sums, means, min/max, makespan, transfer and
	// fault counters, SiteJobGini) is byte-identical to full mode, while
	// median/P95/histogram come from a 1%-relative-error sketch, a seeded
	// deterministic reservoir samples exemplar rows, and top-K sketches
	// report the hottest sites and datasets. Use bounded for million-job
	// runs where the record slice would dominate memory.
	ResultMode string `json:",omitempty"`

	// ObsInterval, when > 0, attaches the observability probe registry
	// (internal/obs): per-site gauges (queue length, CPU utilization,
	// storage fill, replica count) and grid-wide gauges/counters
	// (in-flight transfers, GIS staleness, dispatches, replications,
	// evictions, deletions, jobs done) are sampled every so many virtual
	// seconds into Results.Series. Sampling rides an ordinary recurring
	// engine event, so the series is deterministic for a given seed; at 0
	// (the default) no probes exist and the hot path is untouched.
	ObsInterval float64

	// ObsSink, when non-nil (and ObsInterval > 0), additionally streams
	// every probe sample to the sink as it is taken — JSONL or CSV rows
	// on disk while the run is still going — without changing the
	// in-memory Series the run returns. See obs.NewJSONLSink/NewCSVSink.
	ObsSink obs.Sink `json:"-"`

	// Metrics, when non-nil, attaches the live metrics registry
	// (internal/obs/registry): job/fault counters update inline at their
	// hook points, gauges and per-site response histograms sync on the
	// ObsInterval tick, and an HTTP monitor can scrape the registry while
	// the run (or a whole campaign sharing one registry) is going.
	// Requires ObsInterval > 0. Attaching never perturbs Results.
	Metrics *registry.Registry `json:"-"`

	// Watchdog, when not Off, runs online invariant checks every
	// ObsInterval tick (internal/obs/watchdog): job conservation, replica
	// vs. storage accounting, link capacity, virtual-time monotonicity.
	// Warn logs violations into Results.WatchdogViolations; Fail stops
	// the run at the first violating tick and Run returns the violation
	// as its error. Requires ObsInterval > 0.
	Watchdog watchdog.Mode `json:"watchdog,omitempty"`

	// OnViolation, when non-nil (and Watchdog enabled), observes every
	// watchdog violation as it is found — the monitor streams these as
	// SSE events. Called from the simulation goroutine.
	OnViolation func(watchdog.Violation) `json:"-"`
}

// DefaultConfig returns the paper's Table 1 scenario 1 with the documented
// defaults for unstated parameters.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		Sites:        30,
		Users:        120,
		Files:        200,
		TotalJobs:    6000,
		MinCEs:       2,
		MaxCEs:       5,
		RegionFanout: 6,

		BandwidthMBps: 10,
		Sharing:       netsim.EqualShare,

		StorageGB: 25,

		MinFileGB:    0.5,
		MaxFileGB:    2.0,
		ComputePerGB: 300,
		Popularity:   workload.Geometric,
		GeomP:        0.1,
		InputsPerJob: 1,

		ES: "JobDataPresent",
		LS: "FIFO",
		DS: "DataLeastLoaded",

		DSInterval:  300,
		DSThreshold: 3,

		Feedback: feedback.DefaultParams(),

		Mapping:       ESPerSite,
		InfoStaleness: 30,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Sites <= 0:
		return fmt.Errorf("core: Sites = %d", c.Sites)
	case c.Users <= 0:
		return fmt.Errorf("core: Users = %d", c.Users)
	case c.Files <= 0:
		return fmt.Errorf("core: Files = %d", c.Files)
	case c.TotalJobs <= 0:
		return fmt.Errorf("core: TotalJobs = %d", c.TotalJobs)
	case c.MinCEs <= 0 || c.MaxCEs < c.MinCEs:
		return fmt.Errorf("core: CE range [%d, %d]", c.MinCEs, c.MaxCEs)
	case c.RegionFanout <= 0:
		return fmt.Errorf("core: RegionFanout = %d", c.RegionFanout)
	case c.BandwidthMBps <= 0:
		return fmt.Errorf("core: BandwidthMBps = %v", c.BandwidthMBps)
	case c.DSInterval <= 0:
		return fmt.Errorf("core: DSInterval = %v", c.DSInterval)
	case c.DSThreshold <= 0:
		return fmt.Errorf("core: DSThreshold = %d", c.DSThreshold)
	case c.BatchES != "" && c.BatchWindow <= 0:
		return fmt.Errorf("core: BatchES %q requires BatchWindow > 0", c.BatchES)
	case c.OutputFraction < 0:
		return fmt.Errorf("core: OutputFraction = %v", c.OutputFraction)
	case c.ObsInterval < 0:
		return fmt.Errorf("core: ObsInterval = %v", c.ObsInterval)
	case c.ResultMode != "" && c.ResultMode != ResultModeFull && c.ResultMode != ResultModeBounded:
		return fmt.Errorf("core: ResultMode = %q (want %q or %q)", c.ResultMode, ResultModeFull, ResultModeBounded)
	case c.Metrics != nil && c.ObsInterval == 0:
		return fmt.Errorf("core: Metrics registry requires ObsInterval > 0 (gauges sync on the obs tick)")
	case c.Watchdog != watchdog.Off && c.ObsInterval == 0:
		return fmt.Errorf("core: Watchdog %v requires ObsInterval > 0 (checks run on the obs tick)", c.Watchdog)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if err := c.Feedback.Validate(); err != nil {
		return err
	}
	for i, d := range c.Degradations {
		if d.At < 0 || d.Duration <= 0 || d.Multiplier < 0 {
			return fmt.Errorf("core: invalid degradation %d: %+v", i, d)
		}
	}
	if len(c.Tiers) > 0 {
		product := 1
		for i, f := range c.Tiers {
			if f <= 0 {
				return fmt.Errorf("core: Tiers[%d] = %d", i, f)
			}
			product *= f
		}
		if product != c.Sites {
			return fmt.Errorf("core: Tiers %v yields %d sites, config says %d", c.Tiers, product, c.Sites)
		}
	}
	if c.CPUSpreadFrac < 0 || c.CPUSpreadFrac >= 1 {
		return fmt.Errorf("core: CPUSpreadFrac = %v, must be in [0, 1)", c.CPUSpreadFrac)
	}
	if c.Trace != nil {
		if c.Trace.Spec.Sites != c.Sites || c.Trace.Spec.Users != c.Users {
			return fmt.Errorf("core: trace generated for %d sites/%d users, config has %d/%d",
				c.Trace.Spec.Sites, c.Trace.Spec.Users, c.Sites, c.Users)
		}
	}
	spec := c.WorkloadSpec()
	if err := spec.Validate(); err != nil {
		return err
	}
	return nil
}

// WriteJSON serializes the configuration (excluding the in-memory Trace
// and Recorder) for experiment provenance and replay.
func (c *Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("core: encoding config: %w", err)
	}
	return nil
}

// LoadConfig parses a configuration written by WriteJSON, layered over
// DefaultConfig (absent fields keep their defaults), and validates it.
func LoadConfig(r io.Reader) (Config, error) {
	cfg := DefaultConfig()
	if err := json.NewDecoder(r).Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("core: decoding config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// WorkloadSpec derives the workload generator spec from the config.
func (c *Config) WorkloadSpec() workload.Spec {
	return workload.Spec{
		Users:        c.Users,
		Sites:        c.Sites,
		Files:        c.Files,
		TotalJobs:    c.TotalJobs,
		MinFileBytes: c.MinFileGB * 1e9,
		MaxFileBytes: c.MaxFileGB * 1e9,
		ComputePerGB: c.ComputePerGB,
		Popularity:   c.Popularity,
		GeomP:        c.GeomP,
		ZipfAlpha:    c.ZipfAlpha,
		InputsPerJob: c.InputsPerJob,
		UserFocus:    c.UserFocus,
	}
}
