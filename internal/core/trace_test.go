package core

import (
	"math"
	"testing"

	"chicsim/internal/trace"
)

// TestTraceCrossValidatesMetrics records a full DGE and checks that the
// offline trace analysis reproduces the online collector's numbers exactly
// — the two pipelines share no code beyond the event stream.
func TestTraceCrossValidatesMetrics(t *testing.T) {
	cfg := smallConfig()
	log := trace.NewLog()
	cfg.Recorder = log
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(log)
	if err != nil {
		t.Fatalf("trace validation failed: %v", err)
	}
	if len(a.Jobs) != res.JobsDone {
		t.Fatalf("trace has %d jobs, results %d", len(a.Jobs), res.JobsDone)
	}
	if math.Abs(a.Response.Mean-res.AvgResponseSec) > 1e-6 {
		t.Fatalf("response mean: trace %v vs online %v", a.Response.Mean, res.AvgResponseSec)
	}
	if math.Abs(a.Makespan-res.Makespan) > 1e-6 {
		t.Fatalf("makespan: trace %v vs online %v", a.Makespan, res.Makespan)
	}
	if math.Abs(a.AvgDataPerJobMB()-res.AvgDataPerJobMB) > 1e-6 {
		t.Fatalf("data/job: trace %v vs online %v", a.AvgDataPerJobMB(), res.AvgDataPerJobMB)
	}
	if math.Abs(a.QueueWait.Mean-res.AvgQueueWait) > 1e-6 {
		t.Fatalf("queue wait: trace %v vs online %v", a.QueueWait.Mean, res.AvgQueueWait)
	}
	if a.EvictCount != res.Evictions {
		t.Fatalf("evictions: trace %d vs online %d", a.EvictCount, res.Evictions)
	}
	if a.PushCount != res.Replications {
		t.Fatalf("pushes: trace %d vs online %d", a.PushCount, res.Replications)
	}
}

// TestTraceHotspotSignal checks the motivating phenomenon directly: under
// JobDataPresent without replication, completed work concentrates on few
// sites (high Gini); adding replication spreads it.
func TestTraceHotspotSignal(t *testing.T) {
	gini := func(dsName string) float64 {
		cfg := smallConfig()
		cfg.ES = "JobDataPresent"
		cfg.DS = dsName
		log := trace.NewLog()
		cfg.Recorder = log
		if _, err := RunConfig(cfg); err != nil {
			t.Fatal(err)
		}
		a, err := trace.Analyze(log)
		if err != nil {
			t.Fatal(err)
		}
		return a.SiteLoadGini()
	}
	hot := gini("DataDoNothing")
	spread := gini("DataLeastLoaded")
	if hot <= spread {
		t.Fatalf("hotspot Gini %v not above replicated Gini %v", hot, spread)
	}
}
