package core

import (
	"reflect"
	"testing"

	"chicsim/internal/scheduler/feedback"
)

// TestFeedbackZeroWeightReducesToBaselines is the feedback pair's exact
// reduction guarantee: with every telemetry weight at zero, JobFeedback
// and DataFeedback must produce Results byte-identical to
// JobDataPresent and DataLeastLoaded — same placements, same replica
// pushes, same RNG consumption. Only the policy name strings, the Series
// pointers, and SimEvents (the tracker's sampling ticks are engine
// events) are excluded.
func TestFeedbackZeroWeightReducesToBaselines(t *testing.T) {
	for _, faulted := range []bool{false, true} {
		cfg := controlPlaneCfg(11)
		cfg.InfoStaleness = 120 // stale GIS: where the policies would diverge if weights leaked
		if faulted {
			cfg.Faults.SiteCrash.MTBF = 4000
			cfg.Faults.SiteCrash.MTTR = 500
			cfg.Faults.RequeueOnRecovery = true
			cfg.Faults.RestoreReplicas = true
		}
		cfg.ES, cfg.DS = "JobDataPresent", "DataLeastLoaded"
		base, err := RunConfig(cfg)
		if err != nil {
			t.Fatalf("faulted=%v baseline: %v", faulted, err)
		}
		if faulted && base.Faults.FaultsInjected == 0 {
			t.Fatal("faulted variant injected nothing; test exercises nothing")
		}

		fb := cfg
		fb.ES, fb.DS = "JobFeedback", "DataFeedback"
		fb.Feedback = feedback.Params{} // all weights zero; cadence fields fill from defaults
		adaptive, err := RunConfig(fb)
		if err != nil {
			t.Fatalf("faulted=%v feedback: %v", faulted, err)
		}

		base.ES, base.DS = "", ""
		adaptive.ES, adaptive.DS = "", ""
		base.Series, adaptive.Series = nil, nil
		base.SimEvents, adaptive.SimEvents = 0, 0
		if !reflect.DeepEqual(base, adaptive) {
			t.Errorf("faulted=%v: zero-weight feedback diverged from baselines:\nbaseline: %+v\nfeedback: %+v",
				faulted, base, adaptive)
		}
	}
}

// TestFeedbackNonzeroWeightsDiverge guards the guard: with the tuned
// default weights the adaptive pair must NOT replay the baseline
// placements on a stale-GIS grid, otherwise the reduction test above
// would pass vacuously.
func TestFeedbackNonzeroWeightsDiverge(t *testing.T) {
	cfg := controlPlaneCfg(11)
	cfg.InfoStaleness = 120
	cfg.ES, cfg.DS = "JobDataPresent", "DataLeastLoaded"
	base, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fb := cfg
	fb.ES, fb.DS = "JobFeedback", "DataFeedback"
	adaptive, err := RunConfig(fb)
	if err != nil {
		t.Fatal(err)
	}
	if base.AvgResponseSec == adaptive.AvgResponseSec && base.SiteJobGini == adaptive.SiteJobGini {
		t.Fatal("default-weight feedback pair replayed the baseline exactly; telemetry path is dead")
	}
}
