package core

import (
	"reflect"
	"testing"
)

// TestProbeSeriesContent checks the observability wiring end to end: a
// run with ObsInterval set produces a series with the standard probe set,
// sensible values, and counters consistent with the run's results.
func TestProbeSeriesContent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalJobs = 300
	cfg.ObsInterval = 120
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series
	if s == nil || len(s.Points) == 0 {
		t.Fatal("ObsInterval set but Series empty")
	}
	// 9 grid-wide probes + 4 per site.
	if want := 9 + 4*cfg.Sites; len(s.Names) != want {
		t.Fatalf("probe count = %d, want %d", len(s.Names), want)
	}
	jobsDone := s.Column("jobs_done")
	if jobsDone == nil {
		t.Fatal("missing jobs_done probe")
	}
	for i := 1; i < len(jobsDone); i++ {
		if jobsDone[i] < jobsDone[i-1] {
			t.Fatalf("jobs_done counter decreased at point %d: %v", i, jobsDone[:i+1])
		}
	}
	if last := jobsDone[len(jobsDone)-1]; last > float64(res.JobsDone) {
		t.Fatalf("sampled jobs_done %v exceeds final total %d", last, res.JobsDone)
	}
	disp := s.Column("dispatches")
	if last := disp[len(disp)-1]; last > float64(cfg.TotalJobs) {
		t.Fatalf("dispatches %v exceeds total jobs %d", last, cfg.TotalJobs)
	}
	for _, u := range s.Column("s00.cpu_util") {
		if u < 0 || u > 1 {
			t.Fatalf("cpu_util out of range: %v", u)
		}
	}
	for i := 1; i < len(s.Points); i++ {
		if dt := s.Points[i].T - s.Points[i-1].T; dt != cfg.ObsInterval {
			t.Fatalf("sampling cadence %v at point %d, want %v", dt, i, cfg.ObsInterval)
		}
	}
}

// TestProbeSeriesDeterministic checks bit-identical series for a repeated
// seed, and that disabling observability leaves Results.Series nil.
func TestProbeSeriesDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalJobs = 300
	cfg.ObsInterval = 120
	a, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Series, b.Series) {
		t.Fatal("same seed produced different probe series")
	}

	cfg.ObsInterval = 0
	c, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Series != nil {
		t.Fatal("observability disabled but Series non-nil")
	}
	// Sampling is read-only: headline metrics must not depend on whether
	// probes observed the run.
	if c.AvgResponseSec != a.AvgResponseSec || c.JobsDone != a.JobsDone {
		t.Fatalf("probes changed the simulation: response %v/%d jobs (on) vs %v/%d jobs (off)",
			a.AvgResponseSec, a.JobsDone, c.AvgResponseSec, c.JobsDone)
	}
}
