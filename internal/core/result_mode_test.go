package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

// stripApprox zeroes the fields that are allowed to differ between result
// modes: the quantile-shaped statistics (approximate in bounded mode) and
// the bounded-only sketch extras. Everything left — every count, sum,
// mean, min/max, makespan, Gini, cache/fault/transfer counter — must then
// be byte-identical between the two modes.
func stripApprox(r Results) Results {
	r.MedResponseSec = 0
	r.P95ResponseSec = 0
	r.RespHistCounts = nil
	r.RespHistEdges = nil
	r.ResultMode = ""
	r.RespQuantileRelErr = 0
	r.Exemplars = nil
	r.TopSites = nil
	r.TopDatasets = nil
	r.Series = nil
	return r
}

// TestResultModeEquivalence is the bounded-mode contract: across every
// kernel-golden configuration, a bounded-mode run produces exactly the
// same exact aggregate fields as a full-mode run — same bits, enforced on
// the JSON encoding so newly added Results fields are covered by default
// unless stripApprox explicitly exempts them.
func TestResultModeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	names, cfgs := kernelGoldenCases()
	for _, name := range names {
		full := cfgs[name]
		full.ResultMode = ResultModeFull
		bounded := cfgs[name]
		bounded.ResultMode = ResultModeBounded

		fr, err := RunConfig(full)
		if err != nil {
			t.Fatalf("%s full: %v", name, err)
		}
		br, err := RunConfig(bounded)
		if err != nil {
			t.Fatalf("%s bounded: %v", name, err)
		}
		if br.ResultMode != ResultModeBounded {
			t.Fatalf("%s: bounded run reported ResultMode %q", name, br.ResultMode)
		}

		fb, err := json.Marshal(stripApprox(fr))
		if err != nil {
			t.Fatal(err)
		}
		bb, err := json.Marshal(stripApprox(br))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fb, bb) {
			t.Errorf("%s: exact fields differ between result modes\nfull:    %s\nbounded: %s", name, fb, bb)
		}
	}
}

// TestBoundedModeSketchFields checks the bounded-only outputs on one
// configuration: quantiles within the documented error of the exact ones,
// exemplars present, and hot-site/dataset sketches populated.
func TestBoundedModeSketchFields(t *testing.T) {
	_, cfgs := kernelGoldenCases()
	cfg := cfgs["JobDataPresent+DataLeastLoaded"]
	cfg.ResultMode = ResultModeBounded
	br, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := RunConfig(cfgs["JobDataPresent+DataLeastLoaded"])
	if err != nil {
		t.Fatal(err)
	}
	if br.RespQuantileRelErr <= 0 {
		t.Fatal("RespQuantileRelErr not set")
	}
	for _, q := range [][2]float64{
		{fr.MedResponseSec, br.MedResponseSec},
		{fr.P95ResponseSec, br.P95ResponseSec},
	} {
		rel := (q[1] - q[0]) / q[0]
		if rel < 0 {
			rel = -rel
		}
		if rel > br.RespQuantileRelErr {
			t.Errorf("quantile error %v exceeds bound %v (exact %v, sketch %v)",
				rel, br.RespQuantileRelErr, q[0], q[1])
		}
	}
	if len(br.Exemplars) == 0 || len(br.TopSites) == 0 || len(br.TopDatasets) == 0 {
		t.Fatalf("sketch outputs missing: %d exemplars, %d sites, %d datasets",
			len(br.Exemplars), len(br.TopSites), len(br.TopDatasets))
	}
	var siteTotal uint64
	for _, s := range br.TopSites {
		if s.Over != 0 {
			t.Errorf("site sketch evicted below capacity: %+v", s)
		}
		siteTotal += s.Count
	}
	if siteTotal != uint64(br.JobsDone) {
		t.Errorf("site counts sum to %d, want %d", siteTotal, br.JobsDone)
	}
	if fr.ResultMode != "" {
		t.Errorf("full run reported ResultMode %q", fr.ResultMode)
	}
}

// TestBoundedSeriesCapped checks that bounded mode caps Results.Series at
// the fixed point budget while full mode keeps one point per tick.
func TestBoundedSeriesCapped(t *testing.T) {
	_, cfgs := kernelGoldenCases()
	cfg := cfgs["JobDataPresent+DataLeastLoaded"]
	cfg.ObsInterval = 5 // fine-grained: thousands of virtual seconds / 5
	full, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ResultMode = ResultModeBounded
	bounded, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Series == nil || bounded.Series == nil {
		t.Fatal("series missing")
	}
	if len(bounded.Series.Points) > maxBoundedSeriesPoints {
		t.Fatalf("bounded series has %d points, cap %d", len(bounded.Series.Points), maxBoundedSeriesPoints)
	}
	// The windowed series still covers the whole run.
	fullLast := full.Series.Points[len(full.Series.Points)-1]
	boundedLast := bounded.Series.Points[len(bounded.Series.Points)-1]
	if boundedLast.T != fullLast.T {
		t.Fatalf("bounded series ends at t=%v, full at t=%v", boundedLast.T, fullLast.T)
	}
}

func TestResultModeValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResultMode = "sketchy"
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid ResultMode accepted")
	}
	for _, mode := range []string{"", ResultModeFull, ResultModeBounded} {
		cfg.ResultMode = mode
		if err := cfg.Validate(); err != nil {
			t.Fatalf("mode %q rejected: %v", mode, err)
		}
	}
}
