package core

import (
	"testing"

	"chicsim/internal/rng"
)

func TestFactoriesCoverAllNames(t *testing.T) {
	src := rng.New(1)
	for _, name := range ExternalNames() {
		es, err := NewExternal(name, src, 375, 3.5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if es.Name() != name {
			t.Fatalf("%s: Name() = %s", name, es.Name())
		}
	}
	for _, name := range LocalNames() {
		lsched, err := NewLocal(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if lsched.Name() != name {
			t.Fatalf("%s: Name() = %s", name, lsched.Name())
		}
	}
	for _, name := range DatasetNames() {
		dsched, err := NewDataset(name, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if dsched.Name() != name {
			t.Fatalf("%s: Name() = %s", name, dsched.Name())
		}
	}
	for _, name := range BatchNames() {
		b, err := NewBatch(name, 375)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Name() != name {
			t.Fatalf("%s: Name() = %s", name, b.Name())
		}
	}
}

func TestFactoriesRejectUnknown(t *testing.T) {
	if _, err := NewExternal("JobWarp", nil, 1, 1); err == nil {
		t.Error("unknown ES accepted")
	}
	if _, err := NewLocal("Psychic"); err == nil {
		t.Error("unknown LS accepted")
	}
	if _, err := NewDataset("DataWarp", nil); err == nil {
		t.Error("unknown DS accepted")
	}
	if _, err := NewBatch("BatchWarp", 1); err == nil {
		t.Error("unknown batch accepted")
	}
}

func TestPaperNameSubsets(t *testing.T) {
	if len(PaperExternalNames()) != 4 || len(PaperDatasetNames()) != 3 {
		t.Fatal("paper algorithm families wrong size")
	}
	all := map[string]bool{}
	for _, n := range AllNames() {
		all[n] = true
	}
	for _, n := range append(PaperExternalNames(), PaperDatasetNames()...) {
		if !all[n] {
			t.Fatalf("paper algorithm %s missing from AllNames", n)
		}
	}
}
