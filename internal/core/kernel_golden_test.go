package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"chicsim/internal/faults"
	"chicsim/internal/netsim"
)

var updateKernelGolden = flag.Bool("update-kernel-golden", false,
	"rewrite testdata/kernel_golden.json with hashes from the current kernel")

// kernelGoldenCases enumerates the runs whose Results the kernel swap must
// reproduce bit-for-bit: all 12 ES×DS combos of the paper's campaign, the
// max-min sharing ablation on a transfer-heavy cell, and two faulted runs
// (one per sharing policy) that exercise the flow-cancellation matrix and
// the same-timestamp cancel-race semantics PR 2 pinned, plus the adaptive
// feedback pair on a stale-GIS grid.
func kernelGoldenCases() (names []string, cfgs map[string]Config) {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Seed = 7
		cfg.Sites = 6
		cfg.Users = 12
		cfg.Files = 30
		cfg.TotalJobs = 240
		cfg.RegionFanout = 3
		return cfg
	}
	cfgs = make(map[string]Config)
	for _, dsName := range PaperDatasetNames() {
		for _, esName := range PaperExternalNames() {
			cfg := base()
			cfg.ES, cfg.DS = esName, dsName
			cfgs[esName+"+"+dsName] = cfg
		}
	}
	maxmin := base()
	maxmin.ES, maxmin.DS = "JobLeastLoaded", "DataDoNothing" // transfer-heavy
	maxmin.Sharing = netsim.MaxMinFair
	cfgs["maxmin"] = maxmin

	faulted := base()
	faulted.Faults.SiteCrash = faults.Spec{MTBF: 4000, MTTR: 500}
	faulted.Faults.CEFailure = faults.Spec{MTBF: 6000, MTTR: 600}
	faulted.Faults.LinkDegrade = faults.Spec{MTBF: 5000, MTTR: 800}
	faulted.Faults.TransferAbort = faults.Spec{MTBF: 3000}
	faulted.Faults.ReplicaLoss = faults.Spec{MTBF: 5000}
	faulted.Faults.RequeueOnRecovery = true
	faulted.Faults.RestoreReplicas = true
	cfgs["faulted"] = faulted

	faultedMM := faulted
	faultedMM.Sharing = netsim.MaxMinFair
	cfgs["faulted-maxmin"] = faultedMM

	// Adaptive feedback pair on a contended (stale-GIS) grid: pins the
	// telemetry sampling cadence, EWMA arithmetic, and divert decisions.
	feedback := base()
	feedback.ES, feedback.DS = "JobFeedback", "DataFeedback"
	feedback.InfoStaleness = 120
	cfgs["feedback"] = feedback

	for name := range cfgs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, cfgs
}

func hashResults(t *testing.T, r Results) string {
	t.Helper()
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

// TestKernelGolden is the byte-identity regression for the simulation
// kernel: the hashes in testdata/kernel_golden.json were captured on the
// pre-optimization kernel (container/heap event queue, full netsim
// reflow), so any drift in event ordering, float arithmetic, or rng
// consumption introduced by kernel changes fails here. Regenerate with
//
//	go test ./internal/core -run TestKernelGolden -update-kernel-golden
//
// only when a semantic change to Results is intended and reviewed.
func TestKernelGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	names, cfgs := kernelGoldenCases()
	got := make(map[string]string, len(names))
	for _, name := range names {
		res, err := RunConfig(cfgs[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "faulted" || name == "faulted-maxmin" {
			if res.Faults.FaultsInjected == 0 {
				t.Fatalf("%s: no faults injected; case exercises nothing", name)
			}
		}
		got[name] = hashResults(t, res)
	}

	path := filepath.Join("testdata", "kernel_golden.json")
	if *updateKernelGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d hashes", path, len(got))
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-kernel-golden): %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d cases, run produced %d", len(want), len(got))
	}
	for _, name := range names {
		if want[name] == "" {
			t.Errorf("%s: missing from golden file", name)
			continue
		}
		if got[name] != want[name] {
			t.Errorf("%s: Results hash %s, want %s — kernel changed simulation outcomes",
				name, got[name], want[name])
		}
	}
}
