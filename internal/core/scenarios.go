package core

import (
	"fmt"
	"sort"
)

// scenarios maps preset names to configuration builders. Each returns a
// self-contained Config so callers can mutate freely.
var scenarios = map[string]struct {
	describe string
	build    func() Config
}{
	"table1": {
		describe: "the paper's Table 1, scenario 1 (10 MB/s links)",
		build:    DefaultConfig,
	},
	"table1-fast": {
		describe: "Table 1, scenario 2 (bandwidth increased by a factor of ten)",
		build: func() Config {
			cfg := DefaultConfig()
			cfg.BandwidthMBps = 100
			return cfg
		},
	},
	"coupled-baseline": {
		describe: "Table 1 with the best coupled pair (JobLocal + DataDoNothing)",
		build: func() Config {
			cfg := DefaultConfig()
			cfg.ES, cfg.DS = "JobLocal", "DataDoNothing"
			return cfg
		},
	},
	"hep-vo": {
		describe: "a CMS-style virtual organization: 12 institutes, large files, long analyses",
		build: func() Config {
			cfg := DefaultConfig()
			cfg.Sites = 12
			cfg.RegionFanout = 4
			cfg.Users = 48
			cfg.Files = 100
			cfg.TotalJobs = 2400
			cfg.MinFileGB = 1.0
			cfg.MaxFileGB = 2.0
			cfg.GeomP = 0.15
			cfg.ComputePerGB = 600
			cfg.StorageGB = 20
			return cfg
		},
	},
	"campus": {
		describe: "a small campus grid: 6 sites, fast LAN-class links, small files",
		build: func() Config {
			cfg := DefaultConfig()
			cfg.Sites = 6
			cfg.RegionFanout = 3
			cfg.Users = 24
			cfg.Files = 80
			cfg.TotalJobs = 1200
			cfg.BandwidthMBps = 100
			cfg.MinFileGB = 0.1
			cfg.MaxFileGB = 0.5
			cfg.StorageGB = 10
			return cfg
		},
	},
	"decentralized": {
		describe: "Table 1 with regional information views and MDS-style staleness",
		build: func() Config {
			cfg := DefaultConfig()
			cfg.RegionalInfo = true
			cfg.InfoStaleness = 120
			return cfg
		},
	},
	"stressed-network": {
		describe: "Table 1 at 5 MB/s with a mid-run backbone brownout",
		build: func() Config {
			cfg := DefaultConfig()
			cfg.BandwidthMBps = 5
			cfg.Degradations = []Degradation{{At: 3000, Duration: 7200, Multiplier: 0.1, BackboneOnly: true}}
			return cfg
		},
	},
}

// Scenario returns a named preset configuration.
func Scenario(name string) (Config, error) {
	s, ok := scenarios[name]
	if !ok {
		return Config{}, fmt.Errorf("core: unknown scenario %q (have %v)", name, ScenarioNames())
	}
	return s.build(), nil
}

// ScenarioNames lists the available presets, sorted.
func ScenarioNames() []string {
	out := make([]string, 0, len(scenarios))
	for name := range scenarios {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ScenarioDescription returns the one-line description of a preset.
func ScenarioDescription(name string) string {
	if s, ok := scenarios[name]; ok {
		return s.describe
	}
	return ""
}
