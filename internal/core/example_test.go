package core_test

import (
	"fmt"

	"chicsim/internal/core"
)

// Run the paper's winning decoupled pair on a small grid. Identical seeds
// give identical executions, so the comparison below is exact.
func Example() {
	cfg := core.DefaultConfig()
	cfg.Sites = 8
	cfg.RegionFanout = 4
	cfg.Users = 16
	cfg.Files = 40
	cfg.TotalJobs = 320

	cfg.ES, cfg.DS = "JobDataPresent", "DataLeastLoaded"
	decoupled, err := core.RunConfig(cfg)
	if err != nil {
		panic(err)
	}
	cfg.ES, cfg.DS = "JobLeastLoaded", "DataDoNothing"
	coupled, err := core.RunConfig(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("all jobs done:", decoupled.JobsDone == 320 && coupled.JobsDone == 320)
	fmt.Println("decoupled responds faster:", decoupled.AvgResponseSec < coupled.AvgResponseSec)
	fmt.Println("decoupled moves less data:", decoupled.AvgDataPerJobMB < coupled.AvgDataPerJobMB/5)
	// Output:
	// all jobs done: true
	// decoupled responds faster: true
	// decoupled moves less data: true
}

// Algorithms are selected by name; unknown names fail fast.
func ExampleNewExternal() {
	es, err := core.NewExternal("JobDataPresent", nil, 375, 3.5)
	fmt.Println(es.Name(), err)
	_, err = core.NewExternal("JobTeleport", nil, 0, 0)
	fmt.Println(err != nil)
	// Output:
	// JobDataPresent <nil>
	// true
}
