package core

import (
	"reflect"
	"strings"
	"testing"

	"chicsim/internal/obs/registry"
	"chicsim/internal/obs/watchdog"
)

func controlPlaneCfg(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Sites = 6
	cfg.Users = 12
	cfg.Files = 30
	cfg.TotalJobs = 240
	cfg.RegionFanout = 3
	cfg.ObsInterval = 500
	return cfg
}

// TestControlPlaneDoesNotPerturbResults is the tentpole determinism
// regression: attaching the registry and the watchdog must leave every
// field of Results byte-identical to a bare run with the same
// ObsInterval.
func TestControlPlaneDoesNotPerturbResults(t *testing.T) {
	for _, faulted := range []bool{false, true} {
		cfg := controlPlaneCfg(7)
		if faulted {
			cfg.Faults.SiteCrash.MTBF = 4000
			cfg.Faults.SiteCrash.MTTR = 500
			cfg.Faults.TransferAbort.MTBF = 3000
		}
		bare, err := RunConfig(cfg)
		if err != nil {
			t.Fatalf("faulted=%v bare: %v", faulted, err)
		}
		if faulted && bare.Faults.FaultsInjected == 0 {
			t.Fatal("faulted variant injected nothing; test exercises nothing")
		}

		attached := cfg
		attached.Metrics = registry.New()
		attached.Watchdog = watchdog.Fail
		wired, err := RunConfig(attached)
		if err != nil {
			t.Fatalf("faulted=%v wired: %v", faulted, err)
		}

		// Series pointers differ by construction. SimEvents counts every
		// engine event fired, including the observer's own recurring tick
		// — it is a meta-metric of engine activity (the baseline already
		// includes the probe layer's ticks), not a simulation outcome, so
		// it is excluded the same way.
		bare.Series, wired.Series = nil, nil
		bare.SimEvents, wired.SimEvents = 0, 0
		if wired.WatchdogViolations != 0 {
			t.Fatalf("faulted=%v: healthy run reported %d violations", faulted, wired.WatchdogViolations)
		}
		wired.WatchdogViolations = 0
		if !reflect.DeepEqual(bare, wired) {
			t.Errorf("faulted=%v: Results differ with control plane attached:\nbare:  %+v\nwired: %+v",
				faulted, bare, wired)
		}
	}
}

// TestRegistryPopulated checks the registry's totals against the run's
// own Results after a healthy run.
func TestRegistryPopulated(t *testing.T) {
	cfg := controlPlaneCfg(3)
	reg := registry.New()
	cfg.Metrics = reg
	r, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Value("sim_jobs_total", "done"); !ok || int(v) != cfg.TotalJobs {
		t.Errorf("sim_jobs_total{done} = %v, %v; want %d", v, ok, cfg.TotalJobs)
	}
	if v, ok := reg.Value("sim_jobs_total", "submitted"); !ok || int(v) != cfg.TotalJobs {
		t.Errorf("sim_jobs_total{submitted} = %v, %v; want %d", v, ok, cfg.TotalJobs)
	}
	if v, ok := reg.Value("sim_replications_total"); !ok || int(v) != r.Replications {
		t.Errorf("sim_replications_total = %v, %v; want %d", v, ok, r.Replications)
	}
	if v, ok := reg.Value("sim_virtual_time_seconds"); !ok || v != r.SimEndTime {
		t.Errorf("sim_virtual_time_seconds = %v, %v; want %v", v, ok, r.SimEndTime)
	}
	// The per-site response histograms must jointly hold every job.
	var total uint64
	for _, fam := range reg.Gather() {
		if fam.Name != "sim_response_seconds" {
			continue
		}
		for _, smp := range fam.Samples {
			total += smp.Hist.Count
		}
	}
	if total != uint64(cfg.TotalJobs) {
		t.Errorf("response histogram holds %d observations, want %d", total, cfg.TotalJobs)
	}
	// And the whole thing must render as valid exposition text.
	var sb strings.Builder
	if err := registry.WritePrometheus(&sb, reg.Gather()); err != nil {
		t.Fatal(err)
	}
	if err := registry.CheckText(strings.NewReader(sb.String())); err != nil {
		t.Errorf("registry output not valid Prometheus text: %v", err)
	}
}

// TestWatchdogCatchesSeededViolation seeds a deliberate conservation bug
// (wdSkewDone shifts the done count inside the check) and asserts Fail
// mode aborts the run mid-flight with the violation as the error.
func TestWatchdogCatchesSeededViolation(t *testing.T) {
	cfg := controlPlaneCfg(5)
	cfg.Watchdog = watchdog.Fail
	var seen []watchdog.Violation
	cfg.OnViolation = func(v watchdog.Violation) { seen = append(seen, v) }
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.wdSkewDone = 1 // the seeded accounting bug
	r, err := sim.Run()
	if err == nil {
		t.Fatal("Run succeeded despite broken job accounting")
	}
	if !strings.Contains(err.Error(), "job_conservation") {
		t.Fatalf("error does not name the violated invariant: %v", err)
	}
	if r.Completed {
		t.Error("fail-fast run reported Completed")
	}
	if r.WatchdogViolations == 0 {
		t.Error("Results.WatchdogViolations is 0")
	}
	if len(seen) == 0 || seen[0].Check != "job_conservation" {
		t.Errorf("OnViolation observed %+v", seen)
	}
	// Fail-fast means early: the run must have stopped at the first obs
	// tick, long before the workload drained.
	if r.SimEndTime > cfg.ObsInterval*2 {
		t.Errorf("run continued to t=%v after the violation (ObsInterval %v)", r.SimEndTime, cfg.ObsInterval)
	}
}

// TestWatchdogWarnModeCompletes seeds the same bug in Warn mode: the run
// finishes, with the violations counted.
func TestWatchdogWarnModeCompletes(t *testing.T) {
	cfg := controlPlaneCfg(5)
	cfg.Watchdog = watchdog.Warn
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.wdSkewDone = 1
	r, err := sim.Run()
	if err != nil {
		t.Fatalf("Warn mode failed the run: %v", err)
	}
	if !r.Completed {
		t.Error("run did not complete")
	}
	if r.WatchdogViolations == 0 {
		t.Error("violations not counted in Warn mode")
	}
}

// TestWatchdogHealthyFaultedRun runs the watchdog in Fail mode over a
// heavily faulted workload: the retry/requeue/re-replication paths must
// keep every invariant intact at every tick.
func TestWatchdogHealthyFaultedRun(t *testing.T) {
	cfg := controlPlaneCfg(11)
	cfg.Watchdog = watchdog.Fail
	cfg.Faults.SiteCrash.MTBF = 20000
	cfg.Faults.SiteCrash.MTTR = 2000
	cfg.Faults.CEFailure.MTBF = 15000
	cfg.Faults.CEFailure.MTTR = 1500
	cfg.Faults.LinkDegrade.MTBF = 15000
	cfg.Faults.LinkDegrade.MTTR = 2000
	cfg.Faults.TransferAbort.MTBF = 10000
	cfg.Faults.ReplicaLoss.MTBF = 10000
	r, err := RunConfig(cfg)
	if err != nil {
		t.Fatalf("watchdog tripped on a correct (faulted) run: %v", err)
	}
	if r.Faults.FaultsInjected == 0 {
		t.Fatal("fault config injected nothing; test exercises nothing")
	}
	if r.WatchdogViolations != 0 {
		t.Errorf("%d violations on a correct run", r.WatchdogViolations)
	}
}

// TestConfigValidatesControlPlane: registry/watchdog without an obs tick
// is a config error, not a silent no-op.
func TestConfigValidatesControlPlane(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Metrics = registry.New()
	if err := cfg.Validate(); err == nil {
		t.Error("Metrics without ObsInterval passed validation")
	}
	cfg = DefaultConfig()
	cfg.Watchdog = watchdog.Warn
	if err := cfg.Validate(); err == nil {
		t.Error("Watchdog without ObsInterval passed validation")
	}
}
