package core

import (
	"testing"
	"testing/quick"

	"chicsim/internal/rng"
	"chicsim/internal/trace"
)

// Property: any well-formed small configuration — random grid shape,
// algorithms, popularity, storage — completes every job with consistent
// metrics and a valid DGE trace.
func TestQuickRandomConfigsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized full-sim property skipped in -short mode")
	}
	esNames := ExternalNames()
	dsNames := DatasetNames()
	lsNames := LocalNames()
	f := func(seed uint64) bool {
		src := rng.New(seed)
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Sites = src.IntRange(1, 12)
		cfg.RegionFanout = src.IntRange(1, 5)
		cfg.Users = src.IntRange(1, 30)
		cfg.Files = src.IntRange(5, 50)
		cfg.TotalJobs = src.IntRange(20, 200)
		cfg.MinCEs = src.IntRange(1, 3)
		cfg.MaxCEs = cfg.MinCEs + src.Intn(3)
		cfg.BandwidthMBps = src.Range(1, 100)
		cfg.StorageGB = float64(src.Intn(3)) * src.Range(10, 60) // sometimes unlimited
		cfg.GeomP = src.Range(0.02, 0.5)
		cfg.InputsPerJob = src.IntRange(1, 2)
		if cfg.InputsPerJob > cfg.Files {
			cfg.InputsPerJob = 1
		}
		cfg.ES = esNames[src.Intn(len(esNames))]
		cfg.DS = dsNames[src.Intn(len(dsNames))]
		cfg.LS = lsNames[src.Intn(len(lsNames))]
		cfg.DSThreshold = src.IntRange(1, 10)
		cfg.DSInterval = src.Range(50, 600)
		cfg.InfoStaleness = float64(src.Intn(2)) * src.Range(5, 120)
		log := trace.NewLog()
		cfg.Recorder = log

		res, err := RunConfig(cfg)
		if err != nil {
			t.Logf("seed %d: %v (cfg %+v)", seed, err, cfg)
			return false
		}
		if !res.Completed || res.JobsDone != cfg.TotalJobs {
			t.Logf("seed %d: done=%d/%d", seed, res.JobsDone, cfg.TotalJobs)
			return false
		}
		if res.AvgResponseSec <= 0 || res.Makespan <= 0 || res.IdleFrac < 0 || res.IdleFrac > 1 {
			t.Logf("seed %d: degenerate metrics %+v", seed, res.Results)
			return false
		}
		a, err := trace.Analyze(log)
		if err != nil {
			t.Logf("seed %d: trace invalid: %v", seed, err)
			return false
		}
		if len(a.Jobs) != cfg.TotalJobs {
			t.Logf("seed %d: trace jobs %d", seed, len(a.Jobs))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
