package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"chicsim/internal/faults"
	"chicsim/internal/trace"
)

// faultTestConfig is a small grid with every fault class switched on
// aggressively enough that a short run exercises all of them.
func faultTestConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Sites = 8
	cfg.RegionFanout = 4
	cfg.Users = 16
	cfg.Files = 30
	cfg.TotalJobs = 240
	cfg.ObsInterval = 200
	cfg.Faults = faults.Config{
		SiteCrash:         faults.Spec{MTBF: 4000, MTTR: 400},
		CEFailure:         faults.Spec{MTBF: 2500, MTTR: 300},
		LinkDegrade:       faults.Spec{MTBF: 3000, MTTR: 500},
		LinkOutage:        faults.Spec{MTBF: 8000, MTTR: 200},
		TransferAbort:     faults.Spec{MTBF: 1500},
		ReplicaLoss:       faults.Spec{MTBF: 2000},
		MaxRetries:        5,
		RequeueOnRecovery: true,
		RestoreReplicas:   true,
	}
	return cfg
}

// resultsFingerprint renders everything observable about a run — the
// JSON results and the full probe time series — into one byte slice.
func resultsFingerprint(t *testing.T, res Results) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(res); err != nil {
		t.Fatalf("encoding results: %v", err)
	}
	if res.Series != nil {
		if err := enc.Encode(res.Series); err != nil {
			t.Fatalf("encoding series: %v", err)
		}
	}
	return buf.Bytes()
}

// A faulted run must be exactly reproducible: same seed, same faults,
// same Results and observability series, byte for byte.
func TestFaultedRunDeterministic(t *testing.T) {
	run := func() Results {
		res, err := RunConfig(faultTestConfig(7))
		if err != nil {
			t.Fatalf("faulted run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("faulted runs differ:\n%+v\n%+v", a, b)
	}
	fa, fb := resultsFingerprint(t, a), resultsFingerprint(t, b)
	if !bytes.Equal(fa, fb) {
		t.Errorf("faulted run fingerprints differ:\n%s\n%s", fa, fb)
	}
	if a.Faults.FaultsInjected == 0 {
		t.Error("fault config injected nothing; test exercises no fault path")
	}
}

// A faults.Config with every MTBF zero must leave the simulation
// byte-identical to one with no fault config at all: the injector never
// attaches, flows are never tracked, the ES is never wrapped.
func TestZeroFaultRatesMatchBaseline(t *testing.T) {
	base := DefaultConfig()
	base.Seed = 11
	base.Sites = 6
	base.RegionFanout = 3
	base.Users = 12
	base.Files = 20
	base.TotalJobs = 120
	base.ObsInterval = 150

	disabled := base
	// Recovery knobs set but every MTBF zero: still disabled.
	disabled.Faults = faults.Config{MaxRetries: 7, RequeueOnRecovery: true, RestoreReplicas: true}

	ra, err := RunConfig(base)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	rb, err := RunConfig(disabled)
	if err != nil {
		t.Fatalf("zero-rate run: %v", err)
	}
	if !bytes.Equal(resultsFingerprint(t, ra), resultsFingerprint(t, rb)) {
		t.Errorf("zero fault rates perturbed the simulation:\n%+v\n%+v", ra, rb)
	}
	if rb.Faults != (faults.Stats{}) {
		t.Errorf("zero-rate run reported fault stats %+v", rb.Faults)
	}
}

// Site crashes must kill work and drive the retry machinery, and every
// job must still be accounted for: done + abandoned == submitted.
func TestSiteCrashRetryAccounting(t *testing.T) {
	cfg := faultTestConfig(3)
	log := trace.NewLog()
	cfg.Recorder = log

	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Completed {
		t.Fatal("faulted run did not complete")
	}
	if res.Faults.SiteCrashes == 0 {
		t.Error("no site crashes injected")
	}
	if res.Faults.Repairs == 0 {
		t.Error("no repairs recorded")
	}
	if res.JobsRetried == 0 {
		t.Error("faults killed jobs but nothing was retried")
	}
	if res.JobsDone+res.JobsFailed != cfg.TotalJobs {
		t.Errorf("jobs accounted: done %d + failed %d != %d",
			res.JobsDone, res.JobsFailed, cfg.TotalJobs)
	}

	a, err := trace.Analyze(log)
	if err != nil {
		t.Fatalf("faulted trace rejected: %v", err)
	}
	if a.FaultCount == 0 || a.RepairCount == 0 {
		t.Errorf("trace saw %d faults, %d repairs", a.FaultCount, a.RepairCount)
	}
	if a.RetryCount != res.JobsRetried {
		t.Errorf("trace retries %d, results %d", a.RetryCount, res.JobsRetried)
	}
	if a.AbandonedCount != res.JobsFailed {
		t.Errorf("trace abandoned %d, results %d", a.AbandonedCount, res.JobsFailed)
	}
	if len(a.Jobs) != res.JobsDone {
		t.Errorf("trace completed jobs %d, results %d", len(a.Jobs), res.JobsDone)
	}
}

// Each fault class works alone: enable one at a time and check the run
// completes with that class's counter moving and the others at zero.
func TestFaultClassesInIsolation(t *testing.T) {
	cases := []struct {
		name    string
		set     func(*faults.Config)
		counter func(faults.Stats) int
	}{
		{"site-crash", func(c *faults.Config) { c.SiteCrash = faults.Spec{MTBF: 3000, MTTR: 300} },
			func(s faults.Stats) int { return s.SiteCrashes }},
		{"ce-failure", func(c *faults.Config) { c.CEFailure = faults.Spec{MTBF: 1500, MTTR: 200} },
			func(s faults.Stats) int { return s.CEFailures }},
		{"link-degrade", func(c *faults.Config) { c.LinkDegrade = faults.Spec{MTBF: 2000, MTTR: 400} },
			func(s faults.Stats) int { return s.LinkDegradations }},
		{"link-outage", func(c *faults.Config) { c.LinkOutage = faults.Spec{MTBF: 4000, MTTR: 150} },
			func(s faults.Stats) int { return s.LinkOutages }},
		{"transfer-abort", func(c *faults.Config) { c.TransferAbort = faults.Spec{MTBF: 1200} },
			func(s faults.Stats) int { return s.TransfersAborted }},
		{"replica-loss", func(c *faults.Config) { c.ReplicaLoss = faults.Spec{MTBF: 200} },
			func(s faults.Stats) int { return s.ReplicasLost }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := faultTestConfig(5)
			cfg.Faults = faults.Config{MaxRetries: 5, RequeueOnRecovery: true, RestoreReplicas: true}
			tc.set(&cfg.Faults)
			log := trace.NewLog()
			cfg.Recorder = log
			res, err := RunConfig(cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !res.Completed {
				t.Fatal("run did not complete")
			}
			if got := tc.counter(res.Faults); got == 0 {
				t.Errorf("%s: counter did not move (stats %+v)", tc.name, res.Faults)
			}
			if res.Faults.FaultsInjected != tc.counter(res.Faults) {
				t.Errorf("%s: total %d != class count %d — another class fired",
					tc.name, res.Faults.FaultsInjected, tc.counter(res.Faults))
			}
			if _, err := trace.Analyze(log); err != nil {
				t.Errorf("%s: trace rejected: %v", tc.name, err)
			}
		})
	}
}

// MaxRetries = 0 (after normalization, via -1 semantics) means abandon on
// first failure; jobs must still be accounted for and the grid drains.
func TestRetriesExhaustedAbandons(t *testing.T) {
	cfg := faultTestConfig(13)
	cfg.Faults.MaxRetries = -1 // no retries: first failure abandons
	cfg.Faults.RequeueOnRecovery = false
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.JobsDone+res.JobsFailed != cfg.TotalJobs {
		t.Errorf("jobs accounted: done %d + failed %d != %d",
			res.JobsDone, res.JobsFailed, cfg.TotalJobs)
	}
	if res.Faults.SiteCrashes > 0 && res.JobsFailed == 0 {
		t.Error("crashes with zero retries should abandon jobs")
	}
	if res.JobsRetried != 0 {
		t.Errorf("MaxRetries -1 but %d retries happened", res.JobsRetried)
	}
}
