package core

import "testing"

func TestScenariosValidAndRunnable(t *testing.T) {
	for _, name := range ScenarioNames() {
		cfg, err := Scenario(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: invalid preset: %v", name, err)
		}
		if ScenarioDescription(name) == "" {
			t.Fatalf("%s: no description", name)
		}
		// Run a shrunken version of each scenario end to end.
		cfg.TotalJobs = 100
		if cfg.Users > 20 {
			cfg.Users = 20
		}
		res, err := RunConfig(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Completed || res.JobsDone != 100 {
			t.Fatalf("%s: done=%d", name, res.JobsDone)
		}
	}
}

func TestScenarioUnknown(t *testing.T) {
	if _, err := Scenario("marsnet"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if ScenarioDescription("marsnet") != "" {
		t.Fatal("unknown scenario has a description")
	}
}

func TestScenarioReturnsFreshCopies(t *testing.T) {
	a, _ := Scenario("table1")
	a.Sites = 1
	b, _ := Scenario("table1")
	if b.Sites == 1 {
		t.Fatal("scenario presets share state")
	}
}
