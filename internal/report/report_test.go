package report

import (
	"strings"
	"testing"

	"chicsim/internal/core"
	"chicsim/internal/experiments"
	"chicsim/internal/metrics"
)

func fakeResults() []experiments.CellResult {
	var out []experiments.CellResult
	v := 100.0
	for _, dsName := range core.PaperDatasetNames() {
		for _, esName := range core.PaperExternalNames() {
			cr := experiments.CellResult{
				Cell:            experiments.Cell{ES: esName, DS: dsName, BandwidthMBps: 10},
				AvgResponseSec:  v,
				AvgDataPerJobMB: v / 2,
				AvgIdleFrac:     0.5,
				Runs:            []core.Results{{Results: metrics.Results{JobsDone: 1}}},
			}
			out = append(out, cr)
			v += 100
		}
	}
	return out
}

func TestGrid(t *testing.T) {
	var sb strings.Builder
	Grid(&sb, fakeResults(), ResponseTime, core.PaperExternalNames(), core.PaperDatasetNames(), 10)
	got := sb.String()
	for _, name := range core.PaperExternalNames() {
		if !strings.Contains(got, name) {
			t.Fatalf("missing row %s in:\n%s", name, got)
		}
	}
	for _, name := range core.PaperDatasetNames() {
		if !strings.Contains(got, name) {
			t.Fatalf("missing column %s", name)
		}
	}
	if !strings.Contains(got, "100.0") || !strings.Contains(got, "1200.0") {
		t.Fatalf("missing values:\n%s", got)
	}
}

func TestGridMissingCell(t *testing.T) {
	var sb strings.Builder
	Grid(&sb, nil, ResponseTime, []string{"JobLocal"}, []string{"DataRandom"}, 10)
	if !strings.Contains(sb.String(), "-") {
		t.Fatalf("missing cells should render '-': %q", sb.String())
	}
}

func TestMetricsSelection(t *testing.T) {
	rs := fakeResults()
	var a, b, c strings.Builder
	Grid(&a, rs, ResponseTime, []string{"JobRandom"}, []string{"DataDoNothing"}, 10)
	Grid(&b, rs, DataTransferred, []string{"JobRandom"}, []string{"DataDoNothing"}, 10)
	Grid(&c, rs, IdleTime, []string{"JobRandom"}, []string{"DataDoNothing"}, 10)
	if !strings.Contains(a.String(), "100.0") {
		t.Fatalf("response: %q", a.String())
	}
	if !strings.Contains(b.String(), "50.0") {
		t.Fatalf("data: %q", b.String())
	}
	if !strings.Contains(c.String(), "50.0") {
		t.Fatalf("idle pct: %q", c.String())
	}
}

func TestBandwidths(t *testing.T) {
	rs := fakeResults()
	// Add a 100 MB/s cell.
	rs = append(rs, experiments.CellResult{
		Cell:           experiments.Cell{ES: "JobLocal", DS: "DataDoNothing", BandwidthMBps: 100},
		AvgResponseSec: 42,
		Runs:           []core.Results{{}},
	})
	var sb strings.Builder
	Bandwidths(&sb, rs, []string{"JobLocal"}, "DataDoNothing", []float64{10, 100})
	got := sb.String()
	if !strings.Contains(got, "42.0") {
		t.Fatalf("missing 100MB/s value:\n%s", got)
	}
}

func TestMarkdownGrid(t *testing.T) {
	var sb strings.Builder
	MarkdownGrid(&sb, fakeResults(), ResponseTime, core.PaperExternalNames(), core.PaperDatasetNames(), 10)
	got := sb.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 6 { // header + separator + 4 ES rows
		t.Fatalf("lines = %d:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[1], "|---|") {
		t.Fatalf("separator = %q", lines[1])
	}
	if !strings.Contains(lines[2], "| JobRandom | 100.0 |") {
		t.Fatalf("row = %q", lines[2])
	}
	// Missing cells render an en dash.
	sb.Reset()
	MarkdownGrid(&sb, nil, ResponseTime, []string{"JobLocal"}, []string{"DataRandom"}, 10)
	if !strings.Contains(sb.String(), "–") {
		t.Fatalf("missing cell marker absent: %q", sb.String())
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	CSV(&sb, fakeResults())
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 13 { // header + 12 cells
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "es,ds,bandwidth_mbps") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "JobRandom,DataDoNothing,10,0,1,100.00") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestHistogram(t *testing.T) {
	var sb strings.Builder
	Histogram(&sb, []int{100, 50, 25, 0}, 4, 20)
	got := sb.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], strings.Repeat("#", 20)) {
		t.Fatalf("peak bar wrong: %q", lines[0])
	}
	if strings.Contains(lines[3], "#") {
		t.Fatalf("zero row has bars: %q", lines[3])
	}
}

func TestHistogramEmpty(t *testing.T) {
	var sb strings.Builder
	Histogram(&sb, []int{0, 0}, 5, 10)
	if !strings.Contains(sb.String(), "no requests") {
		t.Fatalf("empty histogram output: %q", sb.String())
	}
}

func TestCSVErrorRow(t *testing.T) {
	rs := []experiments.CellResult{{
		Cell: experiments.Cell{ES: "JobBogus", DS: "DataRandom", BandwidthMBps: 10},
		Err:  errFake{},
	}}
	var sb strings.Builder
	CSV(&sb, rs)
	if !strings.Contains(sb.String(), "error") {
		t.Fatalf("error row missing: %q", sb.String())
	}
}

type errFake struct{}

func (errFake) Error() string { return "boom" }

func TestGridSkipsErrorCells(t *testing.T) {
	rs := []experiments.CellResult{{
		Cell: experiments.Cell{ES: "JobRandom", DS: "DataRandom", BandwidthMBps: 10},
		Err:  errFake{},
	}}
	var sb strings.Builder
	Grid(&sb, rs, ResponseTime, []string{"JobRandom"}, []string{"DataRandom"}, 10)
	if !strings.Contains(sb.String(), "-") {
		t.Fatalf("error cell should render '-': %q", sb.String())
	}
}

func TestHeatmapAndTimeline(t *testing.T) {
	samples := []core.Sample{
		{T: 60, SiteBusy: []float64{0, 1}, QueuedJobs: 3, ActiveFlows: 2},
		{T: 120, SiteBusy: []float64{0.5, 1}, QueuedJobs: 7, ActiveFlows: 1},
	}
	var sb strings.Builder
	Heatmap(&sb, samples, 80)
	got := sb.String()
	if !strings.Contains(got, "s0") || !strings.Contains(got, "s1") {
		t.Fatalf("missing site rows:\n%s", got)
	}
	if !strings.Contains(got, "@@") {
		t.Fatalf("fully busy site not rendered dark:\n%s", got)
	}
	sb.Reset()
	Timeline(&sb, samples, 80)
	if !strings.Contains(sb.String(), "peak queued jobs: 7") ||
		!strings.Contains(sb.String(), "peak concurrent transfers: 2") {
		t.Fatalf("timeline peaks wrong:\n%s", sb.String())
	}
}

func TestHeatmapDownsamples(t *testing.T) {
	var samples []core.Sample
	for i := 0; i < 500; i++ {
		samples = append(samples, core.Sample{T: float64(i), SiteBusy: []float64{0.5}})
	}
	var sb strings.Builder
	Heatmap(&sb, samples, 50)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	row := lines[1]
	if len(row) > 60 {
		t.Fatalf("row not downsampled: %d chars", len(row))
	}
}

func TestHeatmapEmpty(t *testing.T) {
	var sb strings.Builder
	Heatmap(&sb, nil, 80)
	Timeline(&sb, nil, 80)
	if !strings.Contains(sb.String(), "no samples") {
		t.Fatalf("empty-sample hint missing: %q", sb.String())
	}
}

func TestSignificance(t *testing.T) {
	mk := func(cell experiments.Cell, vals ...float64) experiments.CellResult {
		cr := experiments.CellResult{Cell: cell}
		for i, v := range vals {
			cr.Runs = append(cr.Runs, core.Results{
				Results: metrics.Results{AvgResponseSec: v},
				Seed:    uint64(i + 1),
			})
		}
		return cr
	}
	a := experiments.Cell{ES: "JobDataPresent", DS: "DataRandom", BandwidthMBps: 10}
	b := experiments.Cell{ES: "JobDataPresent", DS: "DataLeastLoaded", BandwidthMBps: 10}
	results := []experiments.CellResult{
		mk(a, 520, 530, 525),
		mk(b, 515, 528, 522),
	}
	var sb strings.Builder
	Significance(&sb, results, a, b)
	if !strings.Contains(sb.String(), "NO significant difference") {
		t.Fatalf("overlapping samples flagged: %s", sb.String())
	}
	sb.Reset()
	results[1] = mk(b, 100, 102, 101)
	Significance(&sb, results, a, b)
	if !strings.Contains(sb.String(), "SIGNIFICANT difference") {
		t.Fatalf("distinct samples not flagged: %s", sb.String())
	}
	sb.Reset()
	Significance(&sb, results, a, experiments.Cell{ES: "Nope"})
	if !strings.Contains(sb.String(), "not present") {
		t.Fatalf("missing-cell case: %s", sb.String())
	}
}

func TestMetricString(t *testing.T) {
	if ResponseTime.String() == "" || DataTransferred.String() == "" || IdleTime.String() == "" {
		t.Fatal("metric strings empty")
	}
}
