// Package report renders experiment results as the ASCII tables and CSV
// series corresponding to the paper's figures.
package report

import (
	"fmt"
	"io"
	"strings"

	"chicsim/internal/core"
	"chicsim/internal/experiments"
	"chicsim/internal/metrics/stream"
)

// Metric selects which measurement a figure-style table shows.
type Metric int

const (
	// ResponseTime renders average response time per job in seconds
	// (Figures 3a and 5).
	ResponseTime Metric = iota
	// DataTransferred renders average data transferred per job in MB
	// (Figure 3b).
	DataTransferred
	// IdleTime renders average processor idle time in percent (Figure 4).
	IdleTime
)

func (m Metric) String() string {
	switch m {
	case ResponseTime:
		return "avg response time (s)"
	case DataTransferred:
		return "avg data transferred/job (MB)"
	case IdleTime:
		return "processor idle time (%)"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

func value(cr *experiments.CellResult, m Metric) float64 {
	switch m {
	case ResponseTime:
		return cr.AvgResponseSec
	case DataTransferred:
		return cr.AvgDataPerJobMB
	case IdleTime:
		return 100 * cr.AvgIdleFrac
	default:
		panic("report: unknown metric")
	}
}

// Grid writes a figure-3-style matrix: one row per ES algorithm, one
// column per DS algorithm, at a fixed bandwidth.
func Grid(w io.Writer, results []experiments.CellResult, m Metric, esNames, dsNames []string, bandwidth float64) {
	idx := experiments.ByCell(results)
	fmt.Fprintf(w, "%s at %g MB/s\n", m, bandwidth)
	fmt.Fprintf(w, "%-16s", "")
	for _, dsName := range dsNames {
		fmt.Fprintf(w, "%18s", dsName)
	}
	fmt.Fprintln(w)
	for _, esName := range esNames {
		fmt.Fprintf(w, "%-16s", esName)
		for _, dsName := range dsNames {
			cr, ok := idx[experiments.Cell{ES: esName, DS: dsName, BandwidthMBps: bandwidth}]
			if !ok || cr.Err != nil || len(cr.Runs) == 0 {
				fmt.Fprintf(w, "%18s", "-")
				continue
			}
			fmt.Fprintf(w, "%18.1f", value(cr, m))
		}
		fmt.Fprintln(w)
	}
}

// Bandwidths writes a figure-5-style table: one row per ES algorithm, one
// column per bandwidth, at a fixed DS algorithm, showing response time.
func Bandwidths(w io.Writer, results []experiments.CellResult, esNames []string, dsName string, bws []float64) {
	idx := experiments.ByCell(results)
	fmt.Fprintf(w, "avg response time (s), DS=%s\n", dsName)
	fmt.Fprintf(w, "%-16s", "")
	for _, bw := range bws {
		fmt.Fprintf(w, "%14.0fMB/s", bw)
	}
	fmt.Fprintln(w)
	for _, esName := range esNames {
		fmt.Fprintf(w, "%-16s", esName)
		for _, bw := range bws {
			cr, ok := idx[experiments.Cell{ES: esName, DS: dsName, BandwidthMBps: bw}]
			if !ok || cr.Err != nil || len(cr.Runs) == 0 {
				fmt.Fprintf(w, "%18s", "-")
				continue
			}
			fmt.Fprintf(w, "%18.1f", cr.AvgResponseSec)
		}
		fmt.Fprintln(w)
	}
}

// MarkdownGrid writes a figure matrix as a GitHub-flavored markdown table
// (one row per ES algorithm, one column per DS algorithm) — the format
// used by EXPERIMENTS.md.
func MarkdownGrid(w io.Writer, results []experiments.CellResult, m Metric, esNames, dsNames []string, bandwidth float64) {
	idx := experiments.ByCell(results)
	fmt.Fprintf(w, "| %s |", m)
	for _, dsName := range dsNames {
		fmt.Fprintf(w, " %s |", dsName)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|---|")
	for range dsNames {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, esName := range esNames {
		fmt.Fprintf(w, "| %s |", esName)
		for _, dsName := range dsNames {
			cr, ok := idx[experiments.Cell{ES: esName, DS: dsName, BandwidthMBps: bandwidth}]
			if !ok || cr.Err != nil || len(cr.Runs) == 0 {
				fmt.Fprint(w, " – |")
				continue
			}
			fmt.Fprintf(w, " %.1f |", value(cr, m))
		}
		fmt.Fprintln(w)
	}
}

// CSV writes every cell as one comma-separated row, suitable for plotting.
func CSV(w io.Writer, results []experiments.CellResult) {
	fmt.Fprintln(w, "es,ds,bandwidth_mbps,site_mtbf_s,seeds,avg_response_s,std_response_s,avg_data_mb_per_job,idle_pct,dispatch_wait_s,data_wait_s,cpu_wait_s,exec_s")
	for i := range results {
		cr := &results[i]
		if cr.Err != nil {
			fmt.Fprintf(w, "%s,%s,%g,%g,0,error,%q,,,,,,\n", cr.Cell.ES, cr.Cell.DS, cr.Cell.BandwidthMBps, cr.Cell.SiteMTBF, cr.Err.Error())
			continue
		}
		fmt.Fprintf(w, "%s,%s,%g,%g,%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
			cr.Cell.ES, cr.Cell.DS, cr.Cell.BandwidthMBps, cr.Cell.SiteMTBF, len(cr.Runs),
			cr.AvgResponseSec, cr.StdResponseSec, cr.AvgDataPerJobMB, 100*cr.AvgIdleFrac,
			cr.AvgDispatchWaitSec, cr.AvgDataWaitSec, cr.AvgCPUWaitSec, cr.AvgExecSec)
	}
}

// DecompositionMarkdown writes the response-time decomposition of the
// four ES algorithms at a fixed DS and bandwidth as a markdown table:
// one row per ES, columns for the dispatch/data/cpu/exec phase means and
// their total (= the cell's average response time). It renders the §5
// causal story directly: JobDataPresent with replication collapses the
// data column, JobLocal trades it for cpu wait at the hotspots.
func DecompositionMarkdown(w io.Writer, results []experiments.CellResult, esNames []string, dsName string, bandwidth float64) {
	idx := experiments.ByCell(results)
	fmt.Fprintf(w, "| response decomposition (s), DS=%s @ %g MB/s | dispatch | data | cpu | exec | total |\n", dsName, bandwidth)
	fmt.Fprintln(w, "|---|---|---|---|---|---|")
	for _, esName := range esNames {
		cr, ok := idx[experiments.Cell{ES: esName, DS: dsName, BandwidthMBps: bandwidth}]
		if !ok || cr.Err != nil || len(cr.Runs) == 0 {
			fmt.Fprintf(w, "| %s | – | – | – | – | – |\n", esName)
			continue
		}
		total := cr.AvgDispatchWaitSec + cr.AvgDataWaitSec + cr.AvgCPUWaitSec + cr.AvgExecSec
		fmt.Fprintf(w, "| %s | %.1f | %.1f | %.1f | %.1f | %.1f |\n",
			esName, cr.AvgDispatchWaitSec, cr.AvgDataWaitSec, cr.AvgCPUWaitSec, cr.AvgExecSec, total)
	}
}

// heatChars maps busy fraction to display density.
const heatChars = " .:-=+*#%@"

// Heatmap renders per-site processor occupancy over time: one row per
// site, one character column per (downsampled) snapshot, darker = busier.
// It visualizes the paper's hotspot story at a glance — JobDataPresent
// without replication shows a few dark rows on a pale field.
func Heatmap(w io.Writer, samples []core.Sample, maxWidth int) {
	if len(samples) == 0 {
		fmt.Fprintln(w, "(no samples; set Config.SampleInterval)")
		return
	}
	if maxWidth <= 0 {
		maxWidth = 80
	}
	sites := len(samples[0].SiteBusy)
	cols := len(samples)
	stride := 1
	if cols > maxWidth {
		stride = (cols + maxWidth - 1) / maxWidth
	}
	fmt.Fprintf(w, "site occupancy, %d sites × %d samples (t=%.0f..%.0f s), '%c'=idle '%c'=full\n",
		sites, cols, samples[0].T, samples[cols-1].T, heatChars[0], heatChars[len(heatChars)-1])
	for s := 0; s < sites; s++ {
		fmt.Fprintf(w, "s%-3d |", s)
		for c := 0; c < cols; c += stride {
			// Average the bucket.
			sum, n := 0.0, 0
			for k := c; k < c+stride && k < cols; k++ {
				sum += samples[k].SiteBusy[s]
				n++
			}
			frac := sum / float64(n)
			idx := int(frac * float64(len(heatChars)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(heatChars) {
				idx = len(heatChars) - 1
			}
			fmt.Fprintf(w, "%c", heatChars[idx])
		}
		fmt.Fprintln(w, "|")
	}
}

// Timeline renders grid-wide aggregates per sample: mean occupancy, queued
// jobs, and in-flight transfers.
func Timeline(w io.Writer, samples []core.Sample, maxWidth int) {
	if len(samples) == 0 {
		fmt.Fprintln(w, "(no samples; set Config.SampleInterval)")
		return
	}
	if maxWidth <= 0 {
		maxWidth = 80
	}
	stride := 1
	if len(samples) > maxWidth {
		stride = (len(samples) + maxWidth - 1) / maxWidth
	}
	fmt.Fprintln(w, "grid occupancy over time (each char = mean busy fraction):")
	fmt.Fprint(w, "     |")
	for c := 0; c < len(samples); c += stride {
		sum, n := 0.0, 0
		for k := c; k < c+stride && k < len(samples); k++ {
			for _, b := range samples[k].SiteBusy {
				sum += b
				n++
			}
		}
		frac := sum / float64(n)
		idx := int(frac * float64(len(heatChars)-1))
		if idx >= len(heatChars) {
			idx = len(heatChars) - 1
		}
		fmt.Fprintf(w, "%c", heatChars[idx])
	}
	fmt.Fprintln(w, "|")
	peakQ, peakF := 0, 0
	for _, s := range samples {
		if s.QueuedJobs > peakQ {
			peakQ = s.QueuedJobs
		}
		if s.ActiveFlows > peakF {
			peakF = s.ActiveFlows
		}
	}
	fmt.Fprintf(w, "peak queued jobs: %d, peak concurrent transfers: %d\n", peakQ, peakF)
}

// Significance prints the Welch t-test verdict on the response times of
// two cells — the statistical form of the paper's "we found no significant
// performance differences between the two replication algorithms" (§5.3).
func Significance(w io.Writer, results []experiments.CellResult, a, b experiments.Cell) {
	idx := experiments.ByCell(results)
	ca, cb := idx[a], idx[b]
	if ca == nil || cb == nil {
		fmt.Fprintf(w, "significance %v vs %v: cells not present\n", a, b)
		return
	}
	r, err := experiments.CompareResponse(ca, cb)
	if err != nil {
		fmt.Fprintf(w, "significance %v vs %v: %v\n", a, b, err)
		return
	}
	verdict := "NO significant difference (p > 0.05)"
	if r.SignificantAt05 {
		verdict = "SIGNIFICANT difference (p < 0.05)"
	}
	fmt.Fprintf(w, "%s (%.1f s) vs %s (%.1f s): t=%.2f df=%.1f → %s\n",
		a, ca.AvgResponseSec, b, cb.AvgResponseSec, r.T, r.DF, verdict)
}

// Histogram renders a text histogram of per-rank request counts — the
// Figure 2 reproduction. Bars are scaled to maxWidth characters; only the
// first `ranks` datasets are shown.
func Histogram(w io.Writer, counts []int, ranks, maxWidth int) {
	if ranks > len(counts) {
		ranks = len(counts)
	}
	peak := 0
	for _, c := range counts[:ranks] {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		fmt.Fprintln(w, "(no requests)")
		return
	}
	for i := 0; i < ranks; i++ {
		bar := counts[i] * maxWidth / peak
		fmt.Fprintf(w, "%4d %6d %s\n", i, counts[i], strings.Repeat("#", bar))
	}
}

// HotItems renders a bounded-mode heavy-hitter table (Results.TopSites or
// Results.TopDatasets): one row per item with its estimated count and,
// when the space-saving sketch may have overcounted it, the ± error bound
// (true count lies in [Count−Over, Count]).
func HotItems(w io.Writer, label string, items []stream.HotItem) {
	if len(items) == 0 {
		fmt.Fprintf(w, "(no %s recorded)\n", label)
		return
	}
	fmt.Fprintf(w, "%-10s %12s\n", label, "jobs")
	for _, it := range items {
		if it.Over > 0 {
			fmt.Fprintf(w, "%-10d %12d (−%d possible overcount)\n", it.Key, it.Count, it.Over)
		} else {
			fmt.Fprintf(w, "%-10d %12d\n", it.Key, it.Count)
		}
	}
}

// ResponseHistogram renders the response-time distribution of a run
// (Results.RespHistCounts/RespHistEdges): one row per bin with its
// seconds range, job count, and a bar scaled to maxWidth characters.
func ResponseHistogram(w io.Writer, counts []int, edges []float64, maxWidth int) {
	if len(counts) == 0 || len(edges) != len(counts)+1 {
		fmt.Fprintln(w, "(no response histogram)")
		return
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		fmt.Fprintln(w, "(no completed jobs)")
		return
	}
	fmt.Fprintln(w, "response time (s)        jobs")
	for i, c := range counts {
		bar := c * maxWidth / peak
		fmt.Fprintf(w, "%8.0f-%-8.0f %10d %s\n", edges[i], edges[i+1], c, strings.Repeat("#", bar))
	}
}
