package report

import (
	"fmt"
	"io"

	"chicsim/internal/metrics"
	"chicsim/internal/obs"
)

// SeriesCSV writes a sampled probe series as CSV: a `t` column of virtual
// timestamps followed by one column per probe in registration order. The
// output is bit-identical for a given seed (values are engine state
// sampled at deterministic event times, formatted with %g).
func SeriesCSV(w io.Writer, s *obs.Series) {
	if s == nil || len(s.Names) == 0 {
		fmt.Fprintln(w, "(no series; set Config.ObsInterval)")
		return
	}
	fmt.Fprint(w, "t")
	for _, n := range s.Names {
		fmt.Fprintf(w, ",%s", n)
	}
	fmt.Fprintln(w)
	for _, p := range s.Points {
		fmt.Fprintf(w, "%g", p.T)
		for _, v := range p.Values {
			fmt.Fprintf(w, ",%g", v)
		}
		fmt.Fprintln(w)
	}
}

// SeriesMarkdown writes a per-probe summary table (min/mean/max/last, and
// average rate for counters) in GitHub-flavored markdown — the compact
// companion to the full SeriesCSV dump.
func SeriesMarkdown(w io.Writer, s *obs.Series) {
	stats := metrics.SeriesStats(s)
	if len(stats) == 0 {
		fmt.Fprintln(w, "(no series; set Config.ObsInterval)")
		return
	}
	fmt.Fprintln(w, "| probe | kind | min | mean | max | last | rate/s |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|")
	for _, st := range stats {
		rate := "–"
		if st.Kind == obs.CounterKind {
			rate = fmt.Sprintf("%.3g", st.Rate)
		}
		fmt.Fprintf(w, "| %s | %s | %.3g | %.3g | %.3g | %.3g | %s |\n",
			st.Name, st.Kind, st.Min, st.Mean, st.Max, st.Last, rate)
	}
}
