package report

import (
	"strings"
	"testing"

	"chicsim/internal/obs"
)

func sampleSeries() *obs.Series {
	return &obs.Series{
		Names: []string{"queue", "done"},
		Kinds: []obs.Kind{obs.GaugeKind, obs.CounterKind},
		Points: []obs.Point{
			{T: 60, Values: []float64{4, 0}},
			{T: 120, Values: []float64{1.5, 6}},
		},
	}
}

func TestSeriesCSV(t *testing.T) {
	var sb strings.Builder
	SeriesCSV(&sb, sampleSeries())
	want := "t,queue,done\n60,4,0\n120,1.5,6\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}

	sb.Reset()
	SeriesCSV(&sb, nil)
	if !strings.Contains(sb.String(), "no series") {
		t.Fatalf("nil series CSV = %q", sb.String())
	}
}

func TestSeriesMarkdown(t *testing.T) {
	var sb strings.Builder
	SeriesMarkdown(&sb, sampleSeries())
	out := sb.String()
	for _, want := range []string{"| probe |", "| queue | gauge |", "| done | counter |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	// Gauges have no rate; counters do: (6−0)/(120−60) = 0.1.
	if !strings.Contains(out, "0.1 |") {
		t.Fatalf("counter rate missing:\n%s", out)
	}
	if !strings.Contains(out, "| – |") {
		t.Fatalf("gauge rate placeholder missing:\n%s", out)
	}
}
