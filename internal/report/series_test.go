package report

import (
	"strings"
	"testing"

	"chicsim/internal/obs"
)

func sampleSeries() *obs.Series {
	return &obs.Series{
		Names: []string{"queue", "done"},
		Kinds: []obs.Kind{obs.GaugeKind, obs.CounterKind},
		Points: []obs.Point{
			{T: 60, Values: []float64{4, 0}},
			{T: 120, Values: []float64{1.5, 6}},
		},
	}
}

func TestSeriesCSV(t *testing.T) {
	var sb strings.Builder
	SeriesCSV(&sb, sampleSeries())
	want := "t,queue,done\n60,4,0\n120,1.5,6\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}

	sb.Reset()
	SeriesCSV(&sb, nil)
	if !strings.Contains(sb.String(), "no series") {
		t.Fatalf("nil series CSV = %q", sb.String())
	}
}

func TestSeriesMarkdown(t *testing.T) {
	var sb strings.Builder
	SeriesMarkdown(&sb, sampleSeries())
	out := sb.String()
	for _, want := range []string{"| probe |", "| queue | gauge |", "| done | counter |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	// Gauges have no rate; counters do: (6−0)/(120−60) = 0.1.
	if !strings.Contains(out, "0.1 |") {
		t.Fatalf("counter rate missing:\n%s", out)
	}
	if !strings.Contains(out, "| – |") {
		t.Fatalf("gauge rate placeholder missing:\n%s", out)
	}
}

// TestSeriesMarkdownGolden pins the exact rendering, so report formatting
// changes are deliberate rather than accidental.
func TestSeriesMarkdownGolden(t *testing.T) {
	var sb strings.Builder
	SeriesMarkdown(&sb, sampleSeries())
	want := "| probe | kind | min | mean | max | last | rate/s |\n" +
		"|---|---|---|---|---|---|---|\n" +
		"| queue | gauge | 1.5 | 2.75 | 4 | 1.5 | – |\n" +
		"| done | counter | 0 | 3 | 6 | 6 | 0.1 |\n"
	if sb.String() != want {
		t.Fatalf("markdown golden mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}

	sb.Reset()
	SeriesMarkdown(&sb, nil)
	if !strings.Contains(sb.String(), "no series") {
		t.Fatalf("nil series markdown = %q", sb.String())
	}
}

// TestResponseHistogramGolden pins the run-level response histogram
// rendering used by `chicsim -hist`.
func TestResponseHistogramGolden(t *testing.T) {
	var sb strings.Builder
	counts := []int{3, 6, 1}
	edges := []float64{0, 100, 200, 300}
	ResponseHistogram(&sb, counts, edges, 12)
	want := "response time (s)        jobs\n" +
		"       0-100               3 ######\n" +
		"     100-200               6 ############\n" +
		"     200-300               1 ##\n"
	if sb.String() != want {
		t.Fatalf("histogram golden mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}

	sb.Reset()
	ResponseHistogram(&sb, nil, nil, 12)
	if !strings.Contains(sb.String(), "no response histogram") {
		t.Fatalf("empty histogram = %q", sb.String())
	}
	sb.Reset()
	ResponseHistogram(&sb, []int{0, 0}, []float64{0, 1, 2}, 12)
	if !strings.Contains(sb.String(), "no completed jobs") {
		t.Fatalf("all-zero histogram = %q", sb.String())
	}
}
