package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 identical draws across seeds", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	root := New(7)
	a := root.Derive("workload")
	b := root.Derive("topology")
	a2 := New(7).Derive("workload")
	for i := 0; i < 100; i++ {
		if a.Uint64() != a2.Uint64() {
			t.Fatal("same-name derivation not reproducible")
		}
	}
	// Draws from b should not correlate with a fresh "workload" stream.
	c := New(7).Derive("workload")
	same := 0
	for i := 0; i < 100; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatal("derived streams with different names look identical")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("only %d/7 values seen", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	s := New(9)
	for i := 0; i < 1000; i++ {
		v := s.IntRange(2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("IntRange(2,5) = %d", v)
		}
	}
	if got := s.IntRange(4, 4); got != 4 {
		t.Fatalf("IntRange(4,4) = %d", got)
	}
}

func TestExpMean(t *testing.T) {
	s := New(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Exp(300)
		if v < 0 {
			t.Fatalf("Exp < 0: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-300)/300 > 0.02 {
		t.Fatalf("Exp mean = %v, want ~300", mean)
	}
}

func TestGeometricShape(t *testing.T) {
	s := New(17)
	const n, p = 200, 0.05
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[s.Geometric(p, n)]++
	}
	// Monotone non-increasing in expectation: compare coarse buckets.
	b0 := counts[0] + counts[1] + counts[2] + counts[3] + counts[4]
	b1 := counts[20] + counts[21] + counts[22] + counts[23] + counts[24]
	b2 := counts[60] + counts[61] + counts[62] + counts[63] + counts[64]
	if !(b0 > b1 && b1 > b2) {
		t.Fatalf("geometric not decaying: %d %d %d", b0, b1, b2)
	}
	// Ratio check: P(k+1)/P(k) should be ~(1-p).
	ratio := float64(counts[1]) / float64(counts[0])
	if math.Abs(ratio-(1-p)) > 0.03 {
		t.Fatalf("decay ratio = %v, want ~%v", ratio, 1-p)
	}
	// Paper's Figure 2 envelope: with p=0.05 the first 60 ranks carry
	// ~95% of all requests.
	head := 0
	for i := 0; i < 60; i++ {
		head += counts[i]
	}
	if frac := float64(head) / draws; frac < 0.90 {
		t.Fatalf("first 60 ranks carry %v of mass, want > 0.90", frac)
	}
}

func TestGeometricBounds(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			if k := s.Geometric(0.1, 30); k < 0 || k >= 30 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, c := range []struct {
		p float64
		n int
	}{{0, 10}, {1, 10}, {0.5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v,%d): expected panic", c.p, c.n)
				}
			}()
			New(1).Geometric(c.p, c.n)
		}()
	}
}

func TestZipfShape(t *testing.T) {
	z := NewZipf(New(23), 1.0, 100)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if !(counts[0] > counts[9] && counts[9] > counts[49]) {
		t.Fatalf("zipf not decaying: %d %d %d", counts[0], counts[9], counts[49])
	}
	// Rank 1 vs rank 2 should be ~2:1 for alpha=1.
	r := float64(counts[0]) / float64(counts[1])
	if r < 1.7 || r > 2.3 {
		t.Fatalf("rank1/rank2 = %v, want ~2", r)
	}
}

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	z := NewZipf(New(29), 0, 10)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-10000) > 600 {
			t.Fatalf("rank %d count %d deviates from uniform", i, c)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		s := New(seed)
		xs := make([]int, int(n)%50+1)
		for i := range xs {
			xs[i] = i
		}
		Shuffle(s, xs)
		seen := make(map[int]bool)
		for _, v := range xs {
			seen[v] = true
		}
		return len(seen) == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPick(t *testing.T) {
	s := New(31)
	xs := []string{"a", "b", "c"}
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		seen[Pick(s, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick never chose some element: %v", seen)
	}
}

func TestRangeBounds(t *testing.T) {
	s := New(37)
	for i := 0; i < 10000; i++ {
		v := s.Range(500, 2000)
		if v < 500 || v >= 2000 {
			t.Fatalf("Range(500,2000) = %v", v)
		}
	}
}
