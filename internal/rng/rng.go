// Package rng provides deterministic, splittable random number generation
// and the probability distributions used by the simulator.
//
// Every stochastic component of a simulation (workload generation, scheduler
// tie-breaking, topology construction, ...) draws from its own named
// sub-stream derived from the experiment seed, so adding randomness to one
// component never perturbs another — a property the reproduction relies on
// when comparing algorithm pairs run under "the same" workload.
package rng

import "math"

// Source is a deterministic 64-bit PRNG (xoshiro256**) seeded via SplitMix64.
// The zero value is not useful; construct with New or Derive.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64 state expansion.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start at the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x853c49e6748fea9b
	}
	return &src
}

// Derive returns an independent sub-stream identified by name. Identical
// (parent seed, name) pairs always produce identical streams.
func (s *Source) Derive(name string) *Source {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return New(h ^ s.s[0] ^ (s.s[1] << 1))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n)) // modulo bias negligible for simulator-scale n
}

// Range returns a uniform float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// IntRange returns a uniform integer in [lo, hi] inclusive.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Geometric returns a value in [0, n) from a truncated geometric
// distribution with success probability p: P(k) ∝ (1-p)^k. This is the
// dataset-popularity distribution of the paper's Figure 2.
func (s *Source) Geometric(p float64, n int) int {
	if p <= 0 || p >= 1 || n <= 0 {
		panic("rng: Geometric requires 0 < p < 1 and n > 0")
	}
	for {
		// Inverse-CDF sampling of the untruncated geometric, rejecting
		// draws beyond the truncation point keeps the ∝(1-p)^k shape exact.
		u := s.Float64()
		k := int(math.Floor(math.Log1p(-u) / math.Log1p(-p)))
		if k < n {
			return k
		}
	}
}

// Zipf returns a value in [0, n) following a Zipf distribution with
// exponent alpha ≥ 0 (alpha = 0 degenerates to uniform). Used for the
// workload-extension experiments.
type Zipf struct {
	src *Source
	cdf []float64
}

// NewZipf precomputes the CDF for n ranks with the given exponent.
func NewZipf(src *Source, alpha float64, n int) *Zipf {
	if n <= 0 || alpha < 0 {
		panic("rng: NewZipf requires n > 0 and alpha >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{src: src, cdf: cdf}
}

// Draw samples a rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Shuffle permutes xs in place (Fisher–Yates).
func Shuffle[T any](s *Source, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Pick returns a uniformly chosen element of xs. It panics on an empty slice.
func Pick[T any](s *Source, xs []T) T {
	return xs[s.Intn(len(xs))]
}
