package workload

import (
	"bytes"
	"strings"
	"testing"

	"chicsim/internal/rng"
)

// FuzzReadTrace ensures the workload trace parser never panics and accepts
// its own output.
func FuzzReadTrace(f *testing.F) {
	w, err := Generate(Spec{
		Users: 2, Sites: 2, Files: 4, TotalJobs: 6,
		MinFileBytes: 1e6, MaxFileBytes: 2e6, ComputePerGB: 300,
		Popularity: Geometric, GeomP: 0.2, InputsPerJob: 1,
	}, rng.New(1))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteTrace(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"spec":{}}`)
	f.Add(`not json at all`)
	f.Add(`{"spec":{"users":1},"file_sizes":[1]}` + "\n" + `{"id":0,"user":5,"inputs":[0],"compute_sec":1}`)
	f.Fuzz(func(t *testing.T, input string) {
		w, err := ReadTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		// Anything accepted must re-serialize without panicking.
		var out bytes.Buffer
		_ = w.WriteTrace(&out)
		_ = w.TotalJobs()
		_ = w.PopularityHistogram()
	})
}
