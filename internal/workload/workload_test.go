package workload

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"chicsim/internal/rng"
	"chicsim/internal/storage"
)

func baseSpec() Spec {
	return Spec{
		Users:        12,
		Sites:        6,
		Files:        40,
		TotalJobs:    600,
		MinFileBytes: 0.5e9,
		MaxFileBytes: 2e9,
		ComputePerGB: 300,
		Popularity:   Geometric,
		GeomP:        0.1,
		InputsPerJob: 1,
	}
}

func TestGenerateBasics(t *testing.T) {
	w, err := Generate(baseSpec(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalJobs() != 600 {
		t.Fatalf("TotalJobs = %d", w.TotalJobs())
	}
	if len(w.FileSizes) != 40 || len(w.MasterSite) != 40 {
		t.Fatal("file metadata sizes wrong")
	}
	for f, size := range w.FileSizes {
		if size < 0.5e9 || size >= 2e9 {
			t.Fatalf("file %d size %v out of range", f, size)
		}
		if w.MasterSite[f] < 0 || int(w.MasterSite[f]) >= 6 {
			t.Fatalf("file %d master %d invalid", f, w.MasterSite[f])
		}
	}
	// Users mapped evenly: user u at site u mod sites.
	for u, home := range w.UserHome {
		if int(home) != u%6 {
			t.Fatalf("user %d home %d", u, home)
		}
	}
	// Jobs dealt evenly: 600/12 = 50 each.
	for u, js := range w.Jobs {
		if len(js) != 50 {
			t.Fatalf("user %d has %d jobs", u, len(js))
		}
	}
}

func TestComputeTimeFollowsSize(t *testing.T) {
	w, err := Generate(baseSpec(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range w.Jobs {
		for _, j := range js {
			want := 300 * w.FileSizes[j.Inputs[0]] / 1e9
			if math.Abs(j.Compute-want) > 1e-9 {
				t.Fatalf("job %d compute %v, want %v", j.ID, j.Compute, want)
			}
		}
	}
}

func TestUniqueSequentialIDs(t *testing.T) {
	w, _ := Generate(baseSpec(), rng.New(3))
	seen := make(map[int]bool)
	for _, js := range w.Jobs {
		for _, j := range js {
			if seen[int(j.ID)] {
				t.Fatalf("duplicate job id %d", j.ID)
			}
			seen[int(j.ID)] = true
		}
	}
	if len(seen) != 600 {
		t.Fatalf("ids = %d", len(seen))
	}
}

func TestGeometricConcentration(t *testing.T) {
	w, _ := Generate(baseSpec(), rng.New(4))
	h := w.PopularityHistogram()
	head := 0
	for i := 0; i < 10; i++ {
		head += h[i]
	}
	// p=0.1: first 10 ranks carry ~65% of requests.
	frac := float64(head) / 600
	if frac < 0.5 {
		t.Fatalf("head mass = %v, geometric concentration lost", frac)
	}
	if h[0] < h[20] {
		t.Fatal("histogram not decaying")
	}
}

func TestUniformPopularity(t *testing.T) {
	spec := baseSpec()
	spec.Popularity = Uniform
	spec.TotalJobs = 8000
	w, err := Generate(spec, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	h := w.PopularityHistogram()
	for f, c := range h {
		if c == 0 {
			t.Fatalf("uniform popularity never chose file %d", f)
		}
	}
}

func TestZipfPopularity(t *testing.T) {
	spec := baseSpec()
	spec.Popularity = Zipf
	spec.ZipfAlpha = 1.2
	w, err := Generate(spec, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	h := w.PopularityHistogram()
	if h[0] <= h[20] {
		t.Fatal("zipf head not dominant")
	}
}

func TestMultiInputDistinct(t *testing.T) {
	spec := baseSpec()
	spec.InputsPerJob = 3
	w, err := Generate(spec, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range w.Jobs {
		for _, j := range js {
			if len(j.Inputs) != 3 {
				t.Fatalf("job %d has %d inputs", j.ID, len(j.Inputs))
			}
			seen := map[int]bool{}
			for _, f := range j.Inputs {
				if seen[int(f)] {
					t.Fatalf("job %d repeats input %d", j.ID, f)
				}
				seen[int(f)] = true
			}
		}
	}
}

func TestUserFocusSpreadsDemand(t *testing.T) {
	// Full user focus destroys community hotspots: request mass spreads
	// over far more distinct files than the shared geometric ranking.
	shared := baseSpec()
	shared.TotalJobs = 4000
	wShared, err := Generate(shared, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	focused := shared
	focused.UserFocus = 1
	wFocused, err := Generate(focused, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	distinct := func(w *Workload) int {
		n := 0
		for _, c := range w.PopularityHistogram() {
			if c > 0 {
				n++
			}
		}
		return n
	}
	// Peak concentration: requests for the single hottest file.
	peak := func(w *Workload) int {
		p := 0
		for _, c := range w.PopularityHistogram() {
			if c > p {
				p = c
			}
		}
		return p
	}
	if distinct(wFocused) < distinct(wShared) {
		t.Fatalf("focus reduced coverage: %d vs %d files", distinct(wFocused), distinct(wShared))
	}
	if peak(wFocused) >= peak(wShared) {
		t.Fatalf("focus did not flatten the hotspot: peak %d vs %d", peak(wFocused), peak(wShared))
	}
	// Each user individually still concentrates on a small working set.
	perUserTop := func(w *Workload, u int) float64 {
		counts := map[storage.FileID]int{}
		for _, j := range w.Jobs[u] {
			counts[j.Inputs[0]]++
		}
		top, total := 0, 0
		for _, c := range counts {
			total += c
			if c > top {
				top = c
			}
		}
		return float64(top) / float64(total)
	}
	if perUserTop(wFocused, 0) < 0.05 {
		t.Fatalf("focused user has no working set: top fraction %v", perUserTop(wFocused, 0))
	}
}

func TestUserFocusValidation(t *testing.T) {
	spec := baseSpec()
	spec.UserFocus = -0.1
	if _, err := Generate(spec, rng.New(1)); err == nil {
		t.Fatal("negative focus accepted")
	}
	spec.UserFocus = 1.5
	if _, err := Generate(spec, rng.New(1)); err == nil {
		t.Fatal("focus > 1 accepted")
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Users = 0 },
		func(s *Spec) { s.Sites = 0 },
		func(s *Spec) { s.Files = -1 },
		func(s *Spec) { s.TotalJobs = 0 },
		func(s *Spec) { s.MinFileBytes = 0 },
		func(s *Spec) { s.MaxFileBytes = s.MinFileBytes - 1 },
		func(s *Spec) { s.ComputePerGB = 0 },
		func(s *Spec) { s.GeomP = 0 },
		func(s *Spec) { s.GeomP = 1 },
		func(s *Spec) { s.InputsPerJob = 0 },
	}
	for i, mutate := range bad {
		spec := baseSpec()
		mutate(&spec)
		if _, err := Generate(spec, rng.New(1)); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Generate(baseSpec(), rng.New(9))
	b, _ := Generate(baseSpec(), rng.New(9))
	for u := range a.Jobs {
		for i := range a.Jobs[u] {
			if a.Jobs[u][i].Inputs[0] != b.Jobs[u][i].Inputs[0] {
				t.Fatal("generation not deterministic")
			}
		}
	}
	c, _ := Generate(baseSpec(), rng.New(10))
	same := 0
	total := 0
	for u := range a.Jobs {
		for i := range a.Jobs[u] {
			total++
			if a.Jobs[u][i].Inputs[0] == c.Jobs[u][i].Inputs[0] {
				same++
			}
		}
	}
	if same == total {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	w, _ := Generate(baseSpec(), rng.New(11))
	var buf bytes.Buffer
	if err := w.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w2.TotalJobs() != w.TotalJobs() {
		t.Fatalf("jobs %d != %d", w2.TotalJobs(), w.TotalJobs())
	}
	if len(w2.FileSizes) != len(w.FileSizes) {
		t.Fatal("file metadata lost")
	}
	for u := range w.Jobs {
		for i := range w.Jobs[u] {
			if w.Jobs[u][i].ID != w2.Jobs[u][i].ID ||
				w.Jobs[u][i].Inputs[0] != w2.Jobs[u][i].Inputs[0] ||
				w.Jobs[u][i].Compute != w2.Jobs[u][i].Compute {
				t.Fatalf("job mismatch at user %d index %d", u, i)
			}
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("expected header error")
	}
	w, _ := Generate(baseSpec(), rng.New(12))
	var buf bytes.Buffer
	w.WriteTrace(&buf)
	// Corrupt a job's user to an out-of-range value.
	s := buf.String()
	s = s[:len(s)-1] + "\n" + `{"id":9999,"user":999,"inputs":[1],"compute_sec":1}` + "\n"
	if _, err := ReadTrace(bytes.NewBufferString(s)); err == nil {
		t.Fatal("expected out-of-range user error")
	}
}

// Property: generation never emits invalid file references or non-positive
// compute times.
func TestQuickValidity(t *testing.T) {
	f := func(seed uint64, files, jobs uint8) bool {
		spec := baseSpec()
		spec.Files = int(files)%60 + 1
		spec.TotalJobs = int(jobs)%300 + 1
		w, err := Generate(spec, rng.New(seed))
		if err != nil {
			return false
		}
		for _, js := range w.Jobs {
			for _, j := range js {
				for _, fid := range j.Inputs {
					if int(fid) < 0 || int(fid) >= spec.Files {
						return false
					}
				}
				if j.Compute <= 0 {
					return false
				}
			}
		}
		return w.TotalJobs() == spec.TotalJobs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPopularityStrings(t *testing.T) {
	if Geometric.String() != "geometric" || Zipf.String() != "zipf" || Uniform.String() != "uniform" {
		t.Fatal("strings wrong")
	}
}
