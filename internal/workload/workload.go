// Package workload generates the synthetic Data Grid workloads of the
// paper's §5.1 and reads/writes them as trace files.
//
// Parameters follow Table 1 and the surrounding prose: dataset sizes are
// uniform in [500 MB, 2 GB] with one initial replica each, users are mapped
// evenly across sites and submit jobs in strict sequence, each job needs
// one input file and computes for 300 s per GB of input, and the files a
// user requests follow a geometric distribution over dataset ranks
// (Figure 2). Zipf and uniform popularity plus multi-input jobs are
// extensions.
package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"chicsim/internal/job"
	"chicsim/internal/rng"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

// Popularity selects the dataset-popularity distribution.
type Popularity int

const (
	// Geometric is the paper's distribution (Figure 2).
	Geometric Popularity = iota
	// Zipf popularity (extension).
	Zipf
	// Uniform popularity (extension; every dataset equally likely).
	Uniform
)

func (p Popularity) String() string {
	switch p {
	case Geometric:
		return "geometric"
	case Zipf:
		return "zipf"
	case Uniform:
		return "uniform"
	default:
		return fmt.Sprintf("Popularity(%d)", int(p))
	}
}

// Spec describes a workload to generate.
type Spec struct {
	Users     int // total users, mapped evenly across sites
	Sites     int
	Files     int
	TotalJobs int // jobs across all users (paper: 6000)

	MinFileBytes float64 // paper: 500 MB
	MaxFileBytes float64 // paper: 2 GB
	ComputePerGB float64 // seconds of compute per GB of input (paper: 300)

	Popularity Popularity
	GeomP      float64 // geometric parameter (core default 0.1; see DESIGN.md)
	ZipfAlpha  float64 // zipf exponent (extension)

	InputsPerJob int // 1 in the paper; > 1 is the multi-file extension

	// UserFocus (extension) blends community-wide popularity with
	// per-user working sets: with probability UserFocus a job's input is
	// drawn from the user's private rank permutation instead of the
	// shared ranking. 0 (the paper) means every user samples the same
	// community distribution; 1 gives fully personal working sets (no
	// community hotspots). Must be in [0, 1].
	UserFocus float64
}

// Validate checks the spec for consistency.
func (s *Spec) Validate() error {
	switch {
	case s.Users <= 0:
		return fmt.Errorf("workload: Users = %d", s.Users)
	case s.Sites <= 0:
		return fmt.Errorf("workload: Sites = %d", s.Sites)
	case s.Files <= 0:
		return fmt.Errorf("workload: Files = %d", s.Files)
	case s.TotalJobs <= 0:
		return fmt.Errorf("workload: TotalJobs = %d", s.TotalJobs)
	case s.MinFileBytes <= 0 || s.MaxFileBytes < s.MinFileBytes:
		return fmt.Errorf("workload: file size range [%v, %v]", s.MinFileBytes, s.MaxFileBytes)
	case s.ComputePerGB <= 0:
		return fmt.Errorf("workload: ComputePerGB = %v", s.ComputePerGB)
	case s.Popularity == Geometric && (s.GeomP <= 0 || s.GeomP >= 1):
		return fmt.Errorf("workload: GeomP = %v", s.GeomP)
	case s.Popularity == Zipf && s.ZipfAlpha < 0:
		return fmt.Errorf("workload: ZipfAlpha = %v", s.ZipfAlpha)
	case s.InputsPerJob < 1:
		return fmt.Errorf("workload: InputsPerJob = %d", s.InputsPerJob)
	case s.UserFocus < 0 || s.UserFocus > 1:
		return fmt.Errorf("workload: UserFocus = %v, must be in [0, 1]", s.UserFocus)
	}
	return nil
}

// JobSpec is one generated job, before being instantiated as a *job.Job.
type JobSpec struct {
	ID      job.ID           `json:"id"`
	User    job.UserID       `json:"user"`
	Inputs  []storage.FileID `json:"inputs"`
	Compute float64          `json:"compute_sec"`
}

// Workload is a fully generated scenario: file metadata, master placement,
// user homes, and each user's job sequence.
type Workload struct {
	Spec       Spec              `json:"spec"`
	FileSizes  []float64         `json:"file_sizes"`  // bytes, by FileID
	MasterSite []topology.SiteID `json:"master_site"` // initial replica per file
	UserHome   []topology.SiteID `json:"user_home"`   // by UserID
	Jobs       [][]JobSpec       `json:"jobs"`        // [user][sequence]
}

// Generate builds a workload from the spec using the given random stream.
// Dataset rank equals FileID: lower ids are more popular (the mapping of
// ids to sites is itself uniform, so this loses no generality).
func Generate(spec Spec, src *rng.Source) (*Workload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	w := &Workload{
		Spec:       spec,
		FileSizes:  make([]float64, spec.Files),
		MasterSite: make([]topology.SiteID, spec.Files),
		UserHome:   make([]topology.SiteID, spec.Users),
		Jobs:       make([][]JobSpec, spec.Users),
	}
	fileSrc := src.Derive("files")
	for f := range w.FileSizes {
		w.FileSizes[f] = fileSrc.Range(spec.MinFileBytes, spec.MaxFileBytes)
		w.MasterSite[f] = topology.SiteID(fileSrc.Intn(spec.Sites))
	}
	for u := range w.UserHome {
		w.UserHome[u] = topology.SiteID(u % spec.Sites) // mapped evenly
	}

	jobSrc := src.Derive("jobs")
	var zipf *rng.Zipf
	if spec.Popularity == Zipf {
		zipf = rng.NewZipf(jobSrc.Derive("zipf"), spec.ZipfAlpha, spec.Files)
	}
	// Per-user rank permutations for the UserFocus extension: a user's
	// private working set reinterprets rank k as their own k-th favorite.
	var userRanks [][]int
	if spec.UserFocus > 0 {
		permSrc := src.Derive("user-ranks")
		userRanks = make([][]int, spec.Users)
		for u := range userRanks {
			perm := make([]int, spec.Files)
			for i := range perm {
				perm[i] = i
			}
			rng.Shuffle(permSrc, perm)
			userRanks[u] = perm
		}
	}
	draw := func(user int) storage.FileID {
		var rank int
		switch spec.Popularity {
		case Geometric:
			rank = jobSrc.Geometric(spec.GeomP, spec.Files)
		case Zipf:
			rank = zipf.Draw()
		case Uniform:
			rank = jobSrc.Intn(spec.Files)
		default:
			panic("workload: unknown popularity distribution")
		}
		if spec.UserFocus > 0 && jobSrc.Float64() < spec.UserFocus {
			return storage.FileID(userRanks[user][rank])
		}
		return storage.FileID(rank)
	}

	id := job.ID(0)
	for n := 0; n < spec.TotalJobs; n++ {
		u := n % spec.Users // deal jobs round-robin so users get ±1 of each other
		inputs := make([]storage.FileID, 0, spec.InputsPerJob)
		seen := make(map[storage.FileID]bool, spec.InputsPerJob)
		for len(inputs) < spec.InputsPerJob {
			f := draw(u)
			if seen[f] {
				continue // distinct inputs per job
			}
			seen[f] = true
			inputs = append(inputs, f)
		}
		totalGB := 0.0
		for _, f := range inputs {
			totalGB += w.FileSizes[f] / 1e9
		}
		w.Jobs[u] = append(w.Jobs[u], JobSpec{
			ID:      id,
			User:    job.UserID(u),
			Inputs:  inputs,
			Compute: spec.ComputePerGB * totalGB,
		})
		id++
	}
	return w, nil
}

// TotalJobs returns the number of generated jobs.
func (w *Workload) TotalJobs() int {
	n := 0
	for _, js := range w.Jobs {
		n += len(js)
	}
	return n
}

// PopularityHistogram counts requests per dataset across the whole
// workload — the reproduction of Figure 2.
func (w *Workload) PopularityHistogram() []int {
	h := make([]int, len(w.FileSizes))
	for _, js := range w.Jobs {
		for _, j := range js {
			for _, f := range j.Inputs {
				h[f]++
			}
		}
	}
	return h
}

// WriteTrace serializes the workload as JSON-lines: a header line with the
// scenario, then one line per job in global submission order. The format
// is the hook for replaying real traces (the paper's planned Fermi
// workloads) through the same pipeline.
func (w *Workload) WriteTrace(out io.Writer) error {
	bw := bufio.NewWriter(out)
	enc := json.NewEncoder(bw)
	header := struct {
		Spec       Spec              `json:"spec"`
		FileSizes  []float64         `json:"file_sizes"`
		MasterSite []topology.SiteID `json:"master_site"`
		UserHome   []topology.SiteID `json:"user_home"`
	}{w.Spec, w.FileSizes, w.MasterSite, w.UserHome}
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("workload: writing header: %w", err)
	}
	for _, js := range w.Jobs {
		for _, j := range js {
			if err := enc.Encode(j); err != nil {
				return fmt.Errorf("workload: writing job %d: %w", j.ID, err)
			}
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace produced by WriteTrace.
func ReadTrace(in io.Reader) (*Workload, error) {
	dec := json.NewDecoder(in)
	var header struct {
		Spec       Spec              `json:"spec"`
		FileSizes  []float64         `json:"file_sizes"`
		MasterSite []topology.SiteID `json:"master_site"`
		UserHome   []topology.SiteID `json:"user_home"`
	}
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("workload: reading header: %w", err)
	}
	w := &Workload{
		Spec:       header.Spec,
		FileSizes:  header.FileSizes,
		MasterSite: header.MasterSite,
		UserHome:   header.UserHome,
		Jobs:       make([][]JobSpec, header.Spec.Users),
	}
	for {
		var j JobSpec
		if err := dec.Decode(&j); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("workload: reading job: %w", err)
		}
		if int(j.User) < 0 || int(j.User) >= len(w.Jobs) {
			return nil, fmt.Errorf("workload: job %d has out-of-range user %d", j.ID, j.User)
		}
		for _, f := range j.Inputs {
			if int(f) < 0 || int(f) >= len(w.FileSizes) {
				return nil, fmt.Errorf("workload: job %d references undefined file %d", j.ID, f)
			}
		}
		if j.Compute < 0 || math.IsNaN(j.Compute) {
			return nil, fmt.Errorf("workload: job %d has invalid compute time %v", j.ID, j.Compute)
		}
		w.Jobs[j.User] = append(w.Jobs[j.User], j)
	}
	return w, nil
}
