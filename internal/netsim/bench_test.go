package netsim_test

import (
	"fmt"
	"testing"

	"chicsim/internal/kernelbench"
	"chicsim/internal/netsim"
)

// Reflow cost per flow admission+cancellation at increasing levels of
// concurrency (bodies shared with cmd/kernelbench). The flow counts
// bracket the default scenario (tens of concurrent flows) and the
// congested 100k+ events/s campaigns ROADMAP targets.
func benchReflow(b *testing.B, policy netsim.SharingPolicy) {
	for _, flows := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("flows=%d", flows), kernelbench.Reflow(policy, flows))
	}
}

func BenchmarkReflowEqualShare(b *testing.B) { benchReflow(b, netsim.EqualShare) }

func BenchmarkReflowMaxMin(b *testing.B) { benchReflow(b, netsim.MaxMinFair) }
