package netsim_test

import (
	"testing"

	"chicsim/internal/desim"
	"chicsim/internal/netsim"
	"chicsim/internal/rng"
	"chicsim/internal/topology"
)

// TestSteadyStateReflowDoesNotAllocate is the zero-alloc acceptance check
// for the pooled flow storage: once the flow pool is warm, a transfer
// admission (one reflow), its cancellation (another reflow), and the
// engine step in between must not touch the heap allocator, under both
// sharing policies.
func TestSteadyStateReflowDoesNotAllocate(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy netsim.SharingPolicy
	}{
		{"EqualShare", netsim.EqualShare},
		{"MaxMin", netsim.MaxMinFair},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := desim.New()
			topo, err := topology.NewHierarchical(
				topology.Config{Sites: 30, RegionFanout: 6, Bandwidth: 10e6}, rng.New(1))
			if err != nil {
				t.Fatal(err)
			}
			n := netsim.New(eng, topo, tc.policy)
			// A bed of long-lived background flows keeps reflow busy.
			for i := 0; i < 64; i++ {
				src := topology.SiteID(i % 30)
				dst := topology.SiteID((i + 11) % 30)
				n.Transfer(src, dst, 1e15, nil)
			}
			i := 0
			op := func() {
				f := n.Transfer(topology.SiteID(i%30), topology.SiteID((i+7)%30), 1e15, nil)
				n.Cancel(f)
				i++
			}
			// Warm up the flow pool and the engine's node free list.
			for j := 0; j < 512; j++ {
				op()
			}
			if allocs := testing.AllocsPerRun(1000, op); allocs != 0 {
				t.Fatalf("steady-state reflow allocates %v/op, want 0", allocs)
			}
		})
	}
}
