package netsim

import (
	"math"
	"testing"

	"chicsim/internal/desim"
	"chicsim/internal/rng"
	"chicsim/internal/topology"
)

// TestIncrementalReflowMatchesFull cross-checks the epoch-marked
// equal-share recompute against a from-scratch evaluation after every
// change point of a randomized admit/cancel/degrade/advance schedule. The
// comparison is exact (==, not within-epsilon): the optimization's whole
// claim is that untouched flows keep bit-identical rates.
func TestIncrementalReflowMatchesFull(t *testing.T) {
	eng := desim.New()
	topo, err := topology.NewHierarchical(
		topology.Config{Sites: 18, RegionFanout: 4, Bandwidth: 5e6}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	n := New(eng, topo, EqualShare)
	r := rng.New(99)

	check := func(step int) {
		t.Helper()
		for _, f := range n.ordered {
			want := math.Inf(1)
			for _, l := range f.path {
				share := n.linkBandwidth(l) / float64(n.onLink[l])
				if share < want {
					want = share
				}
			}
			if f.rate != want {
				t.Fatalf("step %d: flow %d rate %v != full recompute %v",
					step, f.ID, f.rate, want)
			}
		}
	}

	var open []*Flow
	degraded := topology.LinkID(0)
	for i := 0; i < 600; i++ {
		switch r.Intn(5) {
		case 0, 1: // admit
			src := topology.SiteID(r.Intn(18))
			dst := topology.SiteID(r.Intn(18))
			open = append(open, n.Transfer(src, dst, 1e6+float64(r.Intn(1e7)), nil))
		case 2: // cancel a random open flow
			if len(open) > 0 {
				j := r.Intn(len(open))
				n.Cancel(open[j])
				open = append(open[:j], open[j+1:]...)
			}
		case 3: // degrade or restore one link
			if r.Intn(2) == 0 {
				degraded = topology.LinkID(r.Intn(topo.NumLinks()))
				n.SetLinkBandwidth(degraded, float64(r.Intn(3))*1e5)
			} else {
				n.SetLinkBandwidth(degraded, -1)
			}
		case 4: // advance virtual time so completions fire
			eng.RunUntil(eng.Now() + r.Range(0, 2))
		}
		check(i)
	}
	// Restore every link so stalled flows resume, then drain to completion.
	for l := 0; l < topo.NumLinks(); l++ {
		n.SetLinkBandwidth(topology.LinkID(l), -1)
		check(600 + l)
	}
	eng.Run()
	check(-1)
	if n.ActiveFlows() != 0 {
		t.Fatalf("flows still active after drain: %d", n.ActiveFlows())
	}
}
