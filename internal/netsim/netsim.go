// Package netsim simulates wide-area data transfers over a routed topology
// using a fluid-flow model.
//
// The paper's contention model is: "We model network contention by keeping
// track of the number of simultaneous data transfers across a link and
// decreasing the bandwidth available for each transfer accordingly." That
// is the default EqualShare policy here: a link with bandwidth B and n
// concurrent flows gives each flow B/n, and a flow's end-to-end rate is the
// minimum share along its path. A max-min fair policy is provided as an
// ablation (see DESIGN.md §6).
//
// Whenever any flow starts or finishes, all in-flight flows have their
// transferred bytes advanced at the old rates and their completion events
// rescheduled at the new rates. The reflow is incremental: only flows
// sharing a link with the change have their equal-share rate recomputed
// (the others' shares are provably unchanged), and completion events are
// moved in place via desim's Reschedule instead of cancel+schedule churn —
// see DESIGN.md §13 for why this keeps results byte-identical.
package netsim

import (
	"fmt"
	"math"

	"chicsim/internal/desim"
	"chicsim/internal/topology"
)

// SharingPolicy selects how concurrent flows split link bandwidth.
type SharingPolicy int

const (
	// EqualShare is the paper's model: each flow on a link gets
	// bandwidth/#flows; a flow's rate is its minimum share on the path.
	EqualShare SharingPolicy = iota
	// MaxMinFair runs progressive filling so that bandwidth unused by
	// bottlenecked flows is redistributed to the others.
	MaxMinFair
)

func (p SharingPolicy) String() string {
	switch p {
	case EqualShare:
		return "EqualShare"
	case MaxMinFair:
		return "MaxMinFair"
	default:
		return fmt.Sprintf("SharingPolicy(%d)", int(p))
	}
}

// Flow is an in-progress transfer. Exposed fields are read-only snapshots
// maintained by the Network.
//
// Flow structs are pooled: when a transfer finishes or is cancelled the
// struct returns to the Network's free list and a later Transfer reuses
// it (with a fresh ID). A *Flow handle is therefore only valid between
// Transfer and the flow's completion or cancellation — exactly the window
// the simulator uses them in. The three scheduling closures are built
// once per struct, when it is first allocated, so the steady-state
// transfer loop allocates nothing per flow.
type Flow struct {
	ID         int
	Src, Dst   topology.SiteID
	Size       float64 // total bytes
	remaining  float64
	rate       float64 // bytes/sec at last update
	path       []topology.LinkID
	done       func(*Flow)
	ev         desim.Event // pending completion event; zero when stalled or inactive
	completeFn func()      // completion closure, built once per pooled struct
	localFn    func()      // zero-hop/zero-size delivery closure
	activateFn func()      // startup-latency expiry closure
	ord        int         // index into Network.ordered while active
	started    desim.Time
	canceled   bool
	pooled     bool // on the free list (double-release guard)
}

// Remaining returns the bytes not yet delivered as of the last rate change.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the current transfer rate in bytes/sec.
func (f *Flow) Rate() float64 { return f.rate }

// Started returns the virtual time the transfer began.
func (f *Flow) Started() desim.Time { return f.started }

// Network manages all concurrent flows over one topology.
type Network struct {
	eng    *desim.Engine
	topo   *topology.Topology
	policy SharingPolicy

	// latencyPerHop is a fixed startup delay per link crossed before a
	// flow begins moving bytes (propagation + protocol setup). 0 by
	// default — the paper models transfer cost purely as size/bandwidth.
	latencyPerHop float64

	// bwOverride holds dynamic per-link bandwidth overrides (failures,
	// degradations); -1 means "use the topology's nominal bandwidth".
	bwOverride []float64

	flows   map[int]*Flow
	ordered []*Flow // active flows in admission order: deterministic iteration
	onLink  []int   // active flow count per link
	nextID  int
	pool    []*Flow // recycled Flow structs with prebuilt closures

	// Reflow scratch state, reused across calls so the per-change-point
	// hot path allocates nothing.
	linkEpoch []uint64           // epoch mark per link: "touched by the current change"
	epoch     uint64             // current reflow epoch (bumping it clears all marks)
	oneLink   [1]topology.LinkID // changed-set buffer for single-link updates
	lsBuf     []linkState        // maxMin per-link progressive-filling state
	frozenBuf []bool             // maxMin frozen marks, indexed like ordered

	// Accounting.
	bytesMoved   float64   // bytes delivered by completed flows
	transfers    int       // completed transfers
	linkBusy     []float64 // integral of (active?1:0) dt per link
	linkBytes    []float64 // bytes attributed per link (Σ rate·dt)
	lastAccounts desim.Time
}

// linkState is per-link progressive-filling bookkeeping for maxMin.
type linkState struct {
	cap   float64 // capacity not yet claimed by frozen flows
	count int     // unfrozen flows crossing the link
}

// consume books a newly frozen flow's share out of the link: the residual
// capacity drops (clamped at zero against float drift accumulated over
// filling rounds) and so does the unfrozen-flow count.
func (s *linkState) consume(rate float64) {
	s.cap -= rate
	if s.cap < 0 {
		s.cap = 0
	}
	s.count--
}

// New creates a network simulator bound to an engine and topology.
func New(eng *desim.Engine, topo *topology.Topology, policy SharingPolicy) *Network {
	n := &Network{
		eng:    eng,
		topo:   topo,
		policy: policy,
		flows:  make(map[int]*Flow),
		onLink: make([]int, topo.NumLinks()),

		bwOverride: make([]float64, topo.NumLinks()),
		linkEpoch:  make([]uint64, topo.NumLinks()),
		linkBusy:   make([]float64, topo.NumLinks()),
		linkBytes:  make([]float64, topo.NumLinks()),
	}
	for i := range n.bwOverride {
		n.bwOverride[i] = -1
	}
	return n
}

// SetLatencyPerHop sets the fixed startup delay charged per link crossed
// before a transfer begins moving bytes. Applies to transfers started
// after the call.
func (n *Network) SetLatencyPerHop(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		panic(fmt.Sprintf("netsim: invalid latency %v", seconds))
	}
	n.latencyPerHop = seconds
}

// OverrideActive reports whether a dynamic bandwidth override (degradation,
// outage, or scheduled Degradation window) is currently in force on the
// link. The fault injector uses this to avoid stacking faults on a link
// that is already impaired.
func (n *Network) OverrideActive(l topology.LinkID) bool { return n.bwOverride[l] >= 0 }

// linkBandwidth returns the effective bandwidth of a link, honoring any
// dynamic override.
func (n *Network) linkBandwidth(l topology.LinkID) float64 {
	if o := n.bwOverride[l]; o >= 0 {
		return o
	}
	return n.topo.Link(l).Bandwidth
}

// SetLinkBandwidth dynamically changes one link's bandwidth (degradation
// or repair), immediately re-sharing all in-flight transfers. A bandwidth
// of 0 stalls flows crossing the link until it recovers; negative restores
// the nominal value.
func (n *Network) SetLinkBandwidth(l topology.LinkID, bytesPerSec float64) {
	if math.IsNaN(bytesPerSec) {
		panic("netsim: NaN bandwidth")
	}
	n.settle()
	if bytesPerSec < 0 {
		n.bwOverride[l] = -1
	} else {
		n.bwOverride[l] = bytesPerSec
	}
	n.oneLink[0] = l
	n.reflow(n.oneLink[:])
}

// Transfer starts moving size bytes from src to dst and calls done when the
// last byte arrives. A zero-hop transfer (src == dst) or zero-size transfer
// completes via an immediately scheduled event, preserving event ordering.
// It returns the flow handle, which may be passed to Cancel.
func (n *Network) Transfer(src, dst topology.SiteID, size float64, done func(*Flow)) *Flow {
	if size < 0 || math.IsNaN(size) {
		panic(fmt.Sprintf("netsim: Transfer with invalid size %v", size))
	}
	f := n.newFlow()
	f.ID = n.nextID
	f.Src, f.Dst = src, dst
	f.Size = size
	f.remaining = size
	f.rate = 0
	f.path = n.topo.Route(src, dst)
	f.done = done
	f.started = n.eng.Now()
	n.nextID++
	if len(f.path) == 0 || size == 0 {
		// Local or empty: delivered "instantly" but still via the event
		// queue so callers observe a consistent ordering.
		f.ev = n.eng.Schedule(0, f.localFn)
		return f
	}
	if n.latencyPerHop > 0 {
		// Startup latency: the flow consumes no bandwidth until the path
		// is established.
		f.ev = n.eng.Schedule(n.latencyPerHop*float64(len(f.path)), f.activateFn)
		return f
	}
	n.activate(f)
	return f
}

// newFlow pops a recycled Flow or builds a fresh one with its scheduling
// closures bound. The closures capture the struct, not a transfer, so
// they survive reuse.
func (n *Network) newFlow() *Flow {
	if len(n.pool) > 0 {
		f := n.pool[len(n.pool)-1]
		n.pool = n.pool[:len(n.pool)-1]
		f.pooled = false
		f.canceled = false
		return f
	}
	f := &Flow{}
	f.completeFn = func() { n.complete(f) }
	f.localFn = func() { n.finishLocal(f) }
	f.activateFn = func() { n.activate(f) }
	return f
}

// release returns a finished or cancelled flow to the free list. Any
// handle the caller still holds is dead from here on.
func (n *Network) release(f *Flow) {
	if f.pooled {
		panic("netsim: flow released twice")
	}
	f.pooled = true
	f.done = nil
	f.path = nil
	n.pool = append(n.pool, f)
}

// activate admits a flow to the bandwidth-sharing pool.
func (n *Network) activate(f *Flow) {
	if f.canceled {
		return
	}
	n.settle()
	f.ev = desim.Event{} // any startup-latency event has fired by now
	f.ord = len(n.ordered)
	n.flows[f.ID] = f
	n.ordered = append(n.ordered, f)
	for _, l := range f.path {
		n.onLink[l]++
	}
	n.reflow(f.path)
}

// Cancel aborts an in-flight transfer; its done callback never fires.
// Bytes already moved remain accounted as link traffic. The flow struct
// is recycled: the handle must not be used (or Cancelled again) after
// this returns.
func (n *Network) Cancel(f *Flow) {
	if f == nil || f.canceled {
		return
	}
	f.canceled = true
	pending := !f.ev.IsZero()
	n.eng.Cancel(f.ev)
	f.ev = desim.Event{}
	if _, ok := n.flows[f.ID]; !ok {
		if pending {
			// Cancelled before activation (startup latency) or delivery
			// (local transfer): the scheduled event will never fire, so
			// recycle here.
			n.release(f)
		}
		return
	}
	n.settle()
	n.remove(f)
	n.reflow(f.path)
	n.release(f)
}

// ActiveFlows returns the number of in-flight (non-local) transfers.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// BytesMoved returns total bytes delivered by completed transfers.
func (n *Network) BytesMoved() float64 { return n.bytesMoved }

// CompletedTransfers returns the number of finished transfers (including
// zero-hop local ones).
func (n *Network) CompletedTransfers() int { return n.transfers }

// LinkUtilization returns, for every link, the fraction of [0, now] during
// which at least one flow crossed it. Call settle-free at end of run.
func (n *Network) LinkUtilization() []float64 {
	n.settle()
	out := make([]float64, len(n.linkBusy))
	now := n.eng.Now()
	if now <= 0 {
		return out
	}
	for i, b := range n.linkBusy {
		out[i] = b / now
	}
	return out
}

// LinkBytes returns the bytes carried per link so far.
func (n *Network) LinkBytes() []float64 {
	n.settle()
	out := make([]float64, len(n.linkBytes))
	copy(out, n.linkBytes)
	return out
}

// EffectiveBandwidth returns the link's current capacity in bytes/sec,
// honoring any fault override (the exported face of linkBandwidth, for
// monitoring and invariant checks).
func (n *Network) EffectiveBandwidth(l topology.LinkID) float64 {
	return n.linkBandwidth(l)
}

// EffectiveBandwidths returns every link's current capacity in bytes/sec
// (EffectiveBandwidth in bulk) — one telemetry sample for trend trackers.
func (n *Network) EffectiveBandwidths() []float64 {
	out := make([]float64, n.topo.NumLinks())
	for i := range out {
		out[i] = n.linkBandwidth(topology.LinkID(i))
	}
	return out
}

// LinkLoads returns, per link, the sum of the current rates of the flows
// crossing it. With correct flow control this never exceeds
// EffectiveBandwidth for any link — the watchdog's link-capacity
// invariant.
func (n *Network) LinkLoads() []float64 {
	out := make([]float64, n.topo.NumLinks())
	for _, f := range n.ordered {
		for _, l := range f.path {
			out[l] += f.rate
		}
	}
	return out
}

// LinkBacklogBytes returns, per link, the bytes still to be delivered by
// the flows crossing it (each flow's remaining bytes counted on every
// link of its route), projected to the current virtual time. It is
// strictly read-only — deliberately NOT calling settle(), whose
// incremental float accounting would make results depend on when
// monitoring sampled it.
func (n *Network) LinkBacklogBytes() []float64 {
	dt := n.eng.Now() - n.lastAccounts
	out := make([]float64, n.topo.NumLinks())
	for _, f := range n.ordered {
		rem := f.remaining
		if dt > 0 {
			rem -= f.rate * dt
			if rem < 0 {
				rem = 0
			}
		}
		for _, l := range f.path {
			out[l] += rem
		}
	}
	return out
}

// CongestionOn reports the current number of active flows crossing the
// route between two sites at its most loaded link. The adaptive scheduler
// extension uses this as its congestion signal.
func (n *Network) CongestionOn(src, dst topology.SiteID) int {
	maxFlows := 0
	for _, l := range n.topo.Route(src, dst) {
		if c := n.onLink[l]; c > maxFlows {
			maxFlows = c
		}
	}
	return maxFlows
}

// PredictTime estimates, under current conditions, the seconds needed to
// move size bytes between the sites (∞-free: returns size/rate with at
// least one competing slot assumed for the new flow itself).
func (n *Network) PredictTime(src, dst topology.SiteID, size float64) float64 {
	path := n.topo.Route(src, dst)
	if len(path) == 0 {
		return 0
	}
	rate := math.Inf(1)
	for _, l := range path {
		share := n.linkBandwidth(l) / float64(n.onLink[l]+1)
		if share < rate {
			rate = share
		}
	}
	if rate <= 0 {
		return math.Inf(1)
	}
	return size/rate + n.latencyPerHop*float64(len(path))
}

// settle advances every active flow's remaining bytes to "now" at the rates
// fixed at the previous change point, and accrues link busy-time integrals.
func (n *Network) settle() {
	now := n.eng.Now()
	dt := now - n.lastAccounts
	if dt < 0 {
		panic("netsim: time went backwards")
	}
	if dt > 0 {
		for _, f := range n.ordered {
			f.remaining -= f.rate * dt
			if f.remaining < 1e-9 {
				f.remaining = 0
			}
			for _, l := range f.path {
				n.linkBytes[l] += f.rate * dt
			}
		}
		for l, c := range n.onLink {
			if c > 0 {
				n.linkBusy[l] += dt
			}
		}
	}
	n.lastAccounts = now
}

// reflow recomputes flow rates after a change to the links in changed — a
// started, finished, or cancelled flow's path, or a link whose bandwidth
// was overridden — and re-anchors every flow's completion event. Must be
// called with settled accounts.
//
// Byte-identity contract (the golden-hash test enforces it): the
// pre-optimization reflow recomputed every rate and cancel+rescheduled
// every completion event at every change point. The equal-share rate of a
// flow crossing none of the changed links is provably bit-identical (no
// bandwidth or flow count on its path moved), so skipping its
// recomputation is exact. Completion *times* must still be re-derived for
// every flow: remaining/rate recomputed at the new change point differs
// from the previously scheduled time by float rounding, and the old
// kernel's results embed exactly that jitter. Each running flow is
// therefore Rescheduled in admission order, burning engine sequence
// numbers precisely like the cancel+schedule pair it replaces — see
// desim.Engine.Reschedule.
func (n *Network) reflow(changed []topology.LinkID) {
	switch n.policy {
	case EqualShare:
		n.epoch++
		for _, l := range changed {
			n.linkEpoch[l] = n.epoch
		}
		for _, f := range n.ordered {
			touched := false
			for _, l := range f.path {
				if n.linkEpoch[l] == n.epoch {
					touched = true
					break
				}
			}
			if !touched {
				continue
			}
			rate := math.Inf(1)
			for _, l := range f.path {
				share := n.linkBandwidth(l) / float64(n.onLink[l])
				if share < rate {
					rate = share
				}
			}
			f.rate = rate
		}
	case MaxMinFair:
		n.maxMin()
	default:
		panic("netsim: unknown sharing policy")
	}
	for _, f := range n.ordered {
		if f.rate <= 0 {
			// Stalled (a link on the path is down); no completion event.
			if !f.ev.IsZero() {
				n.eng.Cancel(f.ev)
				f.ev = desim.Event{}
			}
			continue
		}
		delay := f.remaining / f.rate
		if f.ev.IsZero() {
			f.ev = n.eng.Schedule(delay, f.completeFn)
		} else {
			n.eng.Reschedule(f.ev, delay)
		}
	}
}

// maxMin runs progressive filling: repeatedly saturate the link with the
// smallest fair share among unfrozen flows, freeze its flows at that rate,
// and redistribute.
func (n *Network) maxMin() {
	numLinks := n.topo.NumLinks()
	if cap(n.lsBuf) < numLinks {
		n.lsBuf = make([]linkState, numLinks)
	}
	ls := n.lsBuf[:numLinks]
	for i := range ls {
		ls[i] = linkState{cap: n.linkBandwidth(topology.LinkID(i))}
	}
	if cap(n.frozenBuf) < len(n.ordered) {
		n.frozenBuf = make([]bool, len(n.ordered))
	}
	frozen := n.frozenBuf[:len(n.ordered)]
	for i := range frozen {
		frozen[i] = false
	}
	for _, f := range n.ordered {
		f.rate = 0
		for _, l := range f.path {
			ls[l].count++
		}
	}
	remaining := len(n.ordered)
	for remaining > 0 {
		// Find bottleneck link: min cap/count over links with count > 0.
		bottleneck := -1
		best := math.Inf(1)
		for i := range ls {
			if ls[i].count > 0 {
				if share := ls[i].cap / float64(ls[i].count); share < best {
					best = share
					bottleneck = i
				}
			}
		}
		if bottleneck < 0 {
			break
		}
		// Freeze all unfrozen flows crossing the bottleneck at `best`,
		// in admission order for determinism.
		for i, f := range n.ordered {
			if frozen[i] {
				continue
			}
			crosses := false
			for _, l := range f.path {
				if int(l) == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			f.rate = best
			frozen[i] = true
			remaining--
			for _, l := range f.path {
				ls[l].consume(best)
			}
		}
	}
}

// complete fires when a flow's completion event triggers.
func (n *Network) complete(f *Flow) {
	n.settle()
	f.remaining = 0
	f.ev = desim.Event{}
	n.remove(f)
	n.reflow(f.path)
	n.finish(f)
	n.release(f)
}

// finishLocal delivers a zero-hop or zero-size transfer when its
// scheduled event fires, then recycles the flow.
func (n *Network) finishLocal(f *Flow) {
	f.ev = desim.Event{}
	n.finish(f)
	n.release(f)
}

func (n *Network) remove(f *Flow) {
	if _, ok := n.flows[f.ID]; !ok {
		return
	}
	delete(n.flows, f.ID)
	i := f.ord
	if i >= len(n.ordered) || n.ordered[i] != f {
		panic("netsim: flow ordinal out of sync")
	}
	last := len(n.ordered) - 1
	copy(n.ordered[i:], n.ordered[i+1:])
	n.ordered[last] = nil
	n.ordered = n.ordered[:last]
	for ; i < last; i++ {
		n.ordered[i].ord = i
	}
	for _, l := range f.path {
		n.onLink[l]--
		if n.onLink[l] < 0 {
			panic("netsim: negative link occupancy")
		}
	}
}

func (n *Network) finish(f *Flow) {
	if f.canceled {
		return
	}
	n.bytesMoved += f.Size
	n.transfers++
	if f.done != nil {
		f.done(f)
	}
}
