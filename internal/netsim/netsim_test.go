package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"chicsim/internal/desim"
	"chicsim/internal/rng"
	"chicsim/internal/topology"
)

func star(t testing.TB, sites int, bw float64) *topology.Topology {
	t.Helper()
	topo, err := topology.NewStar(sites, bw)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func hier(t testing.TB, sites, fanout int, bw float64) *topology.Topology {
	t.Helper()
	topo, err := topology.NewHierarchical(topology.Config{Sites: sites, RegionFanout: fanout, Bandwidth: bw}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestSingleTransferTime(t *testing.T) {
	eng := desim.New()
	n := New(eng, star(t, 3, 10e6), EqualShare)
	var doneAt desim.Time = -1
	n.Transfer(0, 1, 100e6, func(*Flow) { doneAt = eng.Now() })
	eng.Run()
	// 100 MB across two 10 MB/s links with no contention: 10 s.
	if math.Abs(doneAt-10) > 1e-9 {
		t.Fatalf("transfer finished at %v, want 10", doneAt)
	}
	if n.BytesMoved() != 100e6 {
		t.Fatalf("BytesMoved = %v", n.BytesMoved())
	}
	if n.CompletedTransfers() != 1 {
		t.Fatalf("transfers = %d", n.CompletedTransfers())
	}
}

func TestLocalTransferInstant(t *testing.T) {
	eng := desim.New()
	n := New(eng, star(t, 2, 10e6), EqualShare)
	done := false
	n.Transfer(1, 1, 500e6, func(*Flow) { done = true })
	if done {
		t.Fatal("local transfer completed synchronously; must go through event queue")
	}
	eng.Run()
	if !done {
		t.Fatal("local transfer never completed")
	}
	if eng.Now() != 0 {
		t.Fatalf("local transfer advanced clock to %v", eng.Now())
	}
}

func TestZeroSizeTransfer(t *testing.T) {
	eng := desim.New()
	n := New(eng, star(t, 2, 10e6), EqualShare)
	done := false
	n.Transfer(0, 1, 0, func(*Flow) { done = true })
	eng.Run()
	if !done {
		t.Fatal("zero-size transfer never completed")
	}
}

func TestContentionSharesLink(t *testing.T) {
	eng := desim.New()
	n := New(eng, star(t, 3, 10e6), EqualShare)
	var t1, t2 desim.Time
	// Both flows target site 2: they share the hub->2 link.
	n.Transfer(0, 2, 100e6, func(*Flow) { t1 = eng.Now() })
	n.Transfer(1, 2, 100e6, func(*Flow) { t2 = eng.Now() })
	eng.Run()
	// Shared link gives each 5 MB/s: 20 s for both.
	if math.Abs(t1-20) > 1e-6 || math.Abs(t2-20) > 1e-6 {
		t.Fatalf("finish times %v %v, want 20", t1, t2)
	}
}

func TestDisjointPathsDoNotContend(t *testing.T) {
	eng := desim.New()
	// Hierarchy with 4 sites, fanout 2 => two regions of two sites.
	topo := hier(t, 4, 2, 10e6)
	n := New(eng, topo, EqualShare)
	// Find two sibling pairs; transfers within each pair are disjoint.
	sibsOf0 := topo.Siblings(0)
	a := sibsOf0[0]
	var c, d topology.SiteID = -1, -1
	for s := topology.SiteID(1); s < 4; s++ {
		if s != a {
			if c < 0 {
				c = s
			} else {
				d = s
			}
		}
	}
	var tA, tB desim.Time
	n.Transfer(0, a, 100e6, func(*Flow) { tA = eng.Now() })
	n.Transfer(c, d, 100e6, func(*Flow) { tB = eng.Now() })
	eng.Run()
	if math.Abs(tA-10) > 1e-6 || math.Abs(tB-10) > 1e-6 {
		t.Fatalf("finish times %v %v, want 10 (no contention)", tA, tB)
	}
}

func TestStaggeredArrivalSlowsFirstFlow(t *testing.T) {
	eng := desim.New()
	n := New(eng, star(t, 3, 10e6), EqualShare)
	var t1 desim.Time
	n.Transfer(0, 2, 100e6, func(*Flow) { t1 = eng.Now() })
	eng.Schedule(5, func() {
		n.Transfer(1, 2, 100e6, func(*Flow) {})
	})
	eng.Run()
	// First flow: 5 s alone (50 MB), then 50 MB at 5 MB/s = 10 s more.
	if math.Abs(t1-15) > 1e-6 {
		t.Fatalf("first flow finished at %v, want 15", t1)
	}
}

func TestCancelStopsCallbackAndFreesBandwidth(t *testing.T) {
	eng := desim.New()
	n := New(eng, star(t, 3, 10e6), EqualShare)
	var t2 desim.Time
	f1 := n.Transfer(0, 2, 1000e6, func(*Flow) { t.Error("cancelled flow completed") })
	n.Transfer(1, 2, 100e6, func(*Flow) { t2 = eng.Now() })
	eng.Schedule(10, func() { n.Cancel(f1) })
	eng.Run()
	// Flow 2: 10 s at 5 MB/s (50 MB), then 50 MB at 10 MB/s = 5 s. Total 15.
	if math.Abs(t2-15) > 1e-6 {
		t.Fatalf("surviving flow finished at %v, want 15", t2)
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after run", n.ActiveFlows())
	}
}

func TestCancelTwiceAndAfterDone(t *testing.T) {
	eng := desim.New()
	n := New(eng, star(t, 2, 10e6), EqualShare)
	f := n.Transfer(0, 1, 10e6, func(*Flow) {})
	eng.Run()
	n.Cancel(f) // after completion: no-op
	n.Cancel(f)
	n.Cancel(nil)
}

func TestMaxMinRedistributes(t *testing.T) {
	// Star: flows A(0->2) and B(1->2) share hub->2; flow C(0->1) shares
	// 0->hub with A and 1->hub with B. Under max-min, C is bottlenecked
	// to 5, freeing capacity that A and B pick up on their shared access
	// links — equal share would cap A and B at 5 via their own links.
	eng := desim.New()
	n := New(eng, star(t, 3, 10e6), MaxMinFair)
	n.Transfer(0, 2, 1e9, func(*Flow) {})
	n.Transfer(1, 2, 1e9, func(*Flow) {})
	n.Transfer(0, 1, 1e9, func(*Flow) {})
	// Inspect rates right after start: settle via a zero-delay event.
	var rates []float64
	eng.Schedule(0, func() {
		for _, f := range n.flows {
			rates = append(rates, f.rate)
		}
		// Link capacity invariant: per-link sum of rates <= bandwidth.
		sum := make(map[topology.LinkID]float64)
		for _, f := range n.flows {
			for _, l := range f.path {
				sum[l] += f.rate
			}
		}
		for l, s := range sum {
			if s > 10e6+1e-6 {
				t.Errorf("link %d oversubscribed: %v", l, s)
			}
		}
		eng.Stop()
	})
	eng.Run()
	if len(rates) != 3 {
		t.Fatalf("expected 3 active flows, got %d", len(rates))
	}
	total := 0.0
	for _, r := range rates {
		total += r
	}
	// Max-min here: hub->2 carries A+B = 10 MB/s total; C gets 5 MB/s.
	if math.Abs(total-15e6) > 1e-3 {
		t.Fatalf("total max-min throughput = %v, want 15e6", total)
	}
}

func TestEqualShareNeverOversubscribes(t *testing.T) {
	f := func(seed uint64) bool {
		eng := desim.New()
		topo := hier(t, 12, 4, 10e6)
		n := New(eng, topo, EqualShare)
		src := rng.New(seed)
		for i := 0; i < 30; i++ {
			a := topology.SiteID(src.Intn(12))
			b := topology.SiteID(src.Intn(12))
			delay := src.Range(0, 50)
			size := src.Range(1e6, 500e6)
			eng.Schedule(delay, func() { n.Transfer(a, b, size, nil) })
		}
		ok := true
		check := func() {
			sum := make(map[topology.LinkID]float64)
			for _, fl := range n.flows {
				for _, l := range fl.path {
					sum[l] += fl.rate
				}
			}
			for l, s := range sum {
				if s > topo.Link(l).Bandwidth+1e-6 {
					ok = false
				}
			}
		}
		for i := 0; i < 100; i++ {
			eng.Schedule(desim.Time(i), check)
		}
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: total bytes delivered equals the sum of requested sizes, for
// random workloads under both policies.
func TestQuickByteConservation(t *testing.T) {
	f := func(seed uint64, usePolicy bool) bool {
		policy := EqualShare
		if usePolicy {
			policy = MaxMinFair
		}
		eng := desim.New()
		n := New(eng, hier(t, 8, 3, 5e6), policy)
		src := rng.New(seed)
		want := 0.0
		completed := 0
		total := 25
		for i := 0; i < total; i++ {
			a := topology.SiteID(src.Intn(8))
			b := topology.SiteID(src.Intn(8))
			size := src.Range(1e5, 200e6)
			want += size
			delay := src.Range(0, 100)
			eng.Schedule(delay, func() {
				n.Transfer(a, b, size, func(*Flow) { completed++ })
			})
		}
		eng.Run()
		if completed != total {
			return false
		}
		return math.Abs(n.BytesMoved()-want) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkUtilizationAndBytes(t *testing.T) {
	eng := desim.New()
	topo := star(t, 2, 10e6)
	n := New(eng, topo, EqualShare)
	n.Transfer(0, 1, 100e6, nil)
	eng.Schedule(20, func() {}) // extend run to 20 s
	eng.Run()
	util := n.LinkUtilization()
	for _, u := range util {
		if math.Abs(u-0.5) > 1e-6 {
			t.Fatalf("link utilization = %v, want 0.5 (busy 10 of 20 s)", u)
		}
	}
	for _, b := range n.LinkBytes() {
		if math.Abs(b-100e6) > 1 {
			t.Fatalf("link bytes = %v, want 100e6", b)
		}
	}
}

func TestCongestionAndPredict(t *testing.T) {
	eng := desim.New()
	n := New(eng, star(t, 3, 10e6), EqualShare)
	if got := n.CongestionOn(0, 1); got != 0 {
		t.Fatalf("idle congestion = %d", got)
	}
	if pt := n.PredictTime(0, 1, 100e6); math.Abs(pt-10) > 1e-9 {
		t.Fatalf("PredictTime idle = %v, want 10", pt)
	}
	if pt := n.PredictTime(1, 1, 100e6); pt != 0 {
		t.Fatalf("PredictTime local = %v, want 0", pt)
	}
	n.Transfer(0, 2, 1e9, nil)
	eng.Schedule(0, func() {
		if got := n.CongestionOn(1, 2); got != 1 {
			t.Errorf("congestion on shared link = %d, want 1", got)
		}
		// New flow would share hub->2 with the existing one: 5 MB/s.
		if pt := n.PredictTime(1, 2, 100e6); math.Abs(pt-20) > 1e-9 {
			t.Errorf("PredictTime contended = %v, want 20", pt)
		}
		eng.Stop()
	})
	eng.Run()
}

func TestTransferPanicsOnNegativeSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	eng := desim.New()
	n := New(eng, star(t, 2, 1e6), EqualShare)
	n.Transfer(0, 1, -5, nil)
}

func TestManyFlowsDeterministic(t *testing.T) {
	run := func() (float64, desim.Time) {
		eng := desim.New()
		n := New(eng, hier(t, 10, 3, 10e6), EqualShare)
		src := rng.New(99)
		for i := 0; i < 200; i++ {
			a := topology.SiteID(src.Intn(10))
			b := topology.SiteID(src.Intn(10))
			size := src.Range(1e6, 2e9)
			eng.Schedule(src.Range(0, 1000), func() { n.Transfer(a, b, size, nil) })
		}
		eng.Run()
		return n.BytesMoved(), eng.Now()
	}
	b1, t1 := run()
	b2, t2 := run()
	if b1 != b2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%v,%v) vs (%v,%v)", b1, t1, b2, t2)
	}
}
