package netsim

import (
	"math"
	"testing"

	"chicsim/internal/desim"
	"chicsim/internal/topology"
)

func TestLatencyDelaysTransfer(t *testing.T) {
	eng := desim.New()
	n := New(eng, star(t, 3, 10e6), EqualShare)
	n.SetLatencyPerHop(2) // 2 links => 4 s of setup
	var done desim.Time = -1
	n.Transfer(0, 1, 100e6, func(*Flow) { done = eng.Now() })
	eng.Run()
	if math.Abs(done-14) > 1e-9 {
		t.Fatalf("finished at %v, want 14 (4 s latency + 10 s transfer)", done)
	}
}

func TestLatencyLocalTransferUnaffected(t *testing.T) {
	eng := desim.New()
	n := New(eng, star(t, 2, 10e6), EqualShare)
	n.SetLatencyPerHop(5)
	done := false
	n.Transfer(1, 1, 1e9, func(*Flow) { done = true })
	eng.Run()
	if !done || eng.Now() != 0 {
		t.Fatalf("local transfer done=%v at %v", done, eng.Now())
	}
}

func TestLatencyPredictTime(t *testing.T) {
	eng := desim.New()
	n := New(eng, star(t, 2, 10e6), EqualShare)
	n.SetLatencyPerHop(3)
	if pt := n.PredictTime(0, 1, 100e6); math.Abs(pt-16) > 1e-9 {
		t.Fatalf("PredictTime = %v, want 16", pt)
	}
}

func TestCancelPendingFlow(t *testing.T) {
	eng := desim.New()
	n := New(eng, star(t, 2, 10e6), EqualShare)
	n.SetLatencyPerHop(10)
	f := n.Transfer(0, 1, 1e9, func(*Flow) { t.Error("cancelled pending flow completed") })
	eng.Schedule(1, func() { n.Cancel(f) })
	eng.Run()
	if n.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d", n.ActiveFlows())
	}
}

func TestSetLatencyPanicsOnInvalid(t *testing.T) {
	eng := desim.New()
	n := New(eng, star(t, 2, 1e6), EqualShare)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.SetLatencyPerHop(-1)
}

func TestDegradeLinkSlowsFlow(t *testing.T) {
	eng := desim.New()
	topo := star(t, 2, 10e6)
	n := New(eng, topo, EqualShare)
	var done desim.Time = -1
	n.Transfer(0, 1, 100e6, func(*Flow) { done = eng.Now() })
	// After 5 s (50 MB moved), halve one link's bandwidth.
	eng.Schedule(5, func() { n.SetLinkBandwidth(0, 5e6) })
	eng.Run()
	// Remaining 50 MB at 5 MB/s: 10 s more → total 15 s.
	if math.Abs(done-15) > 1e-9 {
		t.Fatalf("finished at %v, want 15", done)
	}
}

func TestLinkOutageStallsAndRecovers(t *testing.T) {
	eng := desim.New()
	topo := star(t, 2, 10e6)
	n := New(eng, topo, EqualShare)
	var done desim.Time = -1
	n.Transfer(0, 1, 100e6, func(*Flow) { done = eng.Now() })
	eng.Schedule(5, func() { n.SetLinkBandwidth(0, 0) })    // outage: flow stalls
	eng.Schedule(105, func() { n.SetLinkBandwidth(0, -1) }) // repair to nominal
	eng.Run()
	// 5 s moving + 100 s stalled + 5 s to finish the remaining 50 MB.
	if math.Abs(done-110) > 1e-9 {
		t.Fatalf("finished at %v, want 110", done)
	}
}

func TestOutageStallsUnderMaxMin(t *testing.T) {
	eng := desim.New()
	topo := star(t, 3, 10e6)
	n := New(eng, topo, MaxMinFair)
	var t1, t2 desim.Time = -1, -1
	n.Transfer(0, 2, 100e6, func(*Flow) { t1 = eng.Now() })
	n.Transfer(1, 2, 100e6, func(*Flow) { t2 = eng.Now() })
	// Kill site 0's access link at t=2; flow 1 then gets the full shared
	// link to itself.
	link0 := topo.Route(0, 2)[0]
	eng.Schedule(2, func() { n.SetLinkBandwidth(link0, 0) })
	eng.Schedule(1000, func() { n.SetLinkBandwidth(link0, -1) })
	eng.Run()
	// Flow 2: 2 s at 5 MB/s (10 MB), then 90 MB at 10 MB/s = 9 s → 11 s.
	if math.Abs(t2-11) > 1e-9 {
		t.Fatalf("flow 2 finished at %v, want 11", t2)
	}
	if t1 < 1000 {
		t.Fatalf("stalled flow finished at %v before repair", t1)
	}
}

func TestDegradedByteConservation(t *testing.T) {
	eng := desim.New()
	topo := topoHier(t)
	n := New(eng, topo, EqualShare)
	want := 0.0
	for i := 0; i < 20; i++ {
		size := float64(i+1) * 10e6
		want += size
		a := topology.SiteID(i % 8)
		b := topology.SiteID((i + 3) % 8)
		if a == b {
			want -= size
			continue
		}
		n.Transfer(a, b, size, nil)
	}
	// Degrade and repair random links during the run.
	for i := 0; i < 10; i++ {
		l := topology.LinkID(i % topo.NumLinks())
		eng.Schedule(float64(i)*3+1, func() { n.SetLinkBandwidth(l, 1e6) })
		eng.Schedule(float64(i)*3+2, func() { n.SetLinkBandwidth(l, -1) })
	}
	eng.Run()
	if math.Abs(n.BytesMoved()-want) > 1 {
		t.Fatalf("BytesMoved = %v, want %v", n.BytesMoved(), want)
	}
}

func TestOrderedFlowListConsistency(t *testing.T) {
	eng := desim.New()
	topo := topoHier(t)
	n := New(eng, topo, EqualShare)
	var handles []*Flow
	for i := 0; i < 40; i++ {
		a := topology.SiteID(i % 8)
		b := topology.SiteID((i + 1) % 8)
		size := float64(i+1) * 5e6
		delay := float64(i) * 2
		eng.Schedule(delay, func() { handles = append(handles, n.Transfer(a, b, size, nil)) })
	}
	// Cancel some mid-run and check the map and ordered list agree.
	check := func() {
		if len(n.flows) != len(n.ordered) {
			t.Fatalf("flows map %d != ordered %d", len(n.flows), len(n.ordered))
		}
		for _, f := range n.ordered {
			if n.flows[f.ID] != f {
				t.Fatal("ordered list references a non-active flow")
			}
		}
	}
	for i := 0; i < 30; i++ {
		i := i
		eng.Schedule(float64(i)*3+1, func() {
			if i < len(handles) && i%3 == 0 {
				n.Cancel(handles[i])
			}
			check()
		})
	}
	eng.Run()
	check()
	if n.ActiveFlows() != 0 {
		t.Fatalf("flows left active: %d", n.ActiveFlows())
	}
}

func TestFetchHeavyDeterminismWithTies(t *testing.T) {
	// Many identical-size transfers that complete simultaneously: the
	// regression case for map-iteration nondeterminism in reflow.
	run := func() float64 {
		eng := desim.New()
		n := New(eng, star(t, 6, 10e6), EqualShare)
		last := 0.0
		for i := 0; i < 24; i++ {
			src := topology.SiteID(i % 3)
			dst := topology.SiteID(3 + i%3)
			n.Transfer(src, dst, 100e6, func(*Flow) { last = eng.Now() })
		}
		eng.Run()
		return last
	}
	a := run()
	for i := 0; i < 5; i++ {
		if b := run(); b != a {
			t.Fatalf("tied completions nondeterministic: %v vs %v", a, b)
		}
	}
}

// Property: under EqualShare, every active flow's rate equals the minimum
// over its path of bandwidth/occupancy — the paper's contention model,
// verified directly against the implementation at random instants.
func TestEqualShareRateFormula(t *testing.T) {
	eng := desim.New()
	topo := topoHier(t)
	n := New(eng, topo, EqualShare)
	for i := 0; i < 25; i++ {
		a := topology.SiteID(i % 8)
		b := topology.SiteID((i + 5) % 8)
		size := float64(i+1) * 20e6
		delay := float64(i * 7 % 40)
		eng.Schedule(delay, func() { n.Transfer(a, b, size, nil) })
	}
	checks := 0
	verify := func() {
		for _, f := range n.ordered {
			want := -1.0
			for _, l := range f.path {
				share := topo.Link(l).Bandwidth / float64(n.onLink[l])
				if want < 0 || share < want {
					want = share
				}
			}
			if f.rate != want {
				t.Fatalf("flow %d rate %v, want %v", f.ID, f.rate, want)
			}
			checks++
		}
	}
	for i := 0; i < 60; i++ {
		eng.Schedule(float64(i), verify)
	}
	eng.Run()
	if checks == 0 {
		t.Fatal("property never exercised")
	}
}

func topoHier(t *testing.T) *topology.Topology {
	t.Helper()
	return hier(t, 8, 3, 10e6)
}
