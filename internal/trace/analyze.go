package trace

import (
	"fmt"
	"sort"

	"chicsim/internal/stats"
)

// JobTimeline is the reconstructed lifecycle of one job from a DGE trace.
type JobTimeline struct {
	Job       int
	User      int
	Site      int
	Submit    float64
	Dispatch  float64
	DataReady float64 // -1 when the trace carries no data-ready event
	Start     float64
	End       float64
}

// Response returns End − Submit.
func (jt JobTimeline) Response() float64 { return jt.End - jt.Submit }

// Analysis is the offline recomputation of DGE metrics from a trace.
type Analysis struct {
	Jobs      []JobTimeline
	Makespan  float64
	Response  stats.Summary
	QueueWait stats.Summary

	FetchBytes   float64
	ReplBytes    float64
	OutputBytes  float64
	FetchCount   int
	ReplCount    int
	OutputCount  int
	PushCount    int
	EvictCount   int
	JobsPerSite  map[int]int
	BytesPerFile map[int]float64

	// Fault-injection events (zero on failure-free traces).
	FaultCount     int // site/CE/link faults + aborts + replica losses
	RepairCount    int
	RetryCount     int
	AbandonedCount int // jobs that ran out of retries (absent from Jobs)
}

// AvgDataPerJobMB returns total traffic per completed job, matching the
// paper's Figure 3b definition.
func (a *Analysis) AvgDataPerJobMB() float64 {
	if len(a.Jobs) == 0 {
		return 0
	}
	return (a.FetchBytes + a.ReplBytes + a.OutputBytes) / 1e6 / float64(len(a.Jobs))
}

// SiteLoadGini returns the Gini coefficient of completed-job counts per
// execution site: the hotspot concentration measure.
func (a *Analysis) SiteLoadGini() float64 {
	if len(a.JobsPerSite) == 0 {
		return 0
	}
	var xs []float64
	for _, n := range a.JobsPerSite {
		xs = append(xs, float64(n))
	}
	g, err := stats.Gini(xs)
	if err != nil {
		return 0
	}
	return g
}

// Analyze reconstructs per-job timelines and aggregate metrics from a
// trace, validating DGE invariants as it goes:
//
//   - each job has exactly one submitted/dispatched/started/completed
//     event, in non-decreasing timestamp order;
//   - every fetch_start is matched by exactly one fetch_end (same src/dst/
//     file) and likewise for replica pushes;
//   - no event precedes time zero.
func Analyze(l *Log) (*Analysis, error) {
	type lifecycle struct {
		submit, dispatch, dataReady, start, end float64
		seen                                    map[Kind]int
		user, site                              int
		retries                                 int
		abandoned                               bool
	}
	jobs := make(map[int]*lifecycle)
	get := func(id int) *lifecycle {
		lc, ok := jobs[id]
		if !ok {
			lc = &lifecycle{seen: map[Kind]int{}, dataReady: -1}
			jobs[id] = lc
		}
		return lc
	}

	a := &Analysis{
		JobsPerSite:  make(map[int]int),
		BytesPerFile: make(map[int]float64),
	}
	type flowKey struct {
		file, src, dst int
	}
	openFetch := make(map[flowKey]int)
	openPush := make(map[flowKey]int)
	openOutput := make(map[flowKey]int)

	for i, e := range l.Events() {
		if e.T < 0 {
			return nil, fmt.Errorf("trace: event %d at negative time %v", i, e.T)
		}
		if e.T > a.Makespan && isJobKind(e.Kind) {
			a.Makespan = e.T
		}
		switch e.Kind {
		case JobSubmitted:
			lc := get(e.Job)
			lc.submit = e.T
			lc.user = e.User
			lc.seen[JobSubmitted]++
		case JobDispatched:
			lc := get(e.Job)
			lc.dispatch = e.T
			lc.site = e.Site
			lc.seen[JobDispatched]++
		case JobDataReady:
			get(e.Job).dataReady = e.T
		case JobStarted:
			lc := get(e.Job)
			lc.start = e.T
			lc.seen[JobStarted]++
		case JobCompleted:
			lc := get(e.Job)
			lc.end = e.T
			lc.seen[JobCompleted]++
		case FetchStart:
			openFetch[flowKey{e.File, e.Src, e.Dst}]++
		case FetchEnd:
			k := flowKey{e.File, e.Src, e.Dst}
			if openFetch[k] == 0 {
				return nil, fmt.Errorf("trace: fetch_end without start (file %d %d->%d)", e.File, e.Src, e.Dst)
			}
			openFetch[k]--
			a.FetchBytes += e.Bytes
			a.FetchCount++
			a.BytesPerFile[e.File] += e.Bytes
		case ReplPush:
			a.PushCount++
			openPush[flowKey{e.File, e.Src, e.Dst}]++
		case ReplArrive:
			k := flowKey{e.File, e.Src, e.Dst}
			if openPush[k] == 0 {
				return nil, fmt.Errorf("trace: repl_arrive without push (file %d %d->%d)", e.File, e.Src, e.Dst)
			}
			openPush[k]--
			a.ReplBytes += e.Bytes
			a.ReplCount++
			a.BytesPerFile[e.File] += e.Bytes
		case Evicted:
			a.EvictCount++
		case OutputStart:
			openOutput[flowKey{e.Job, e.Src, e.Dst}]++
		case OutputEnd:
			k := flowKey{e.Job, e.Src, e.Dst}
			if openOutput[k] == 0 {
				return nil, fmt.Errorf("trace: output_end without start (job %d %d->%d)", e.Job, e.Src, e.Dst)
			}
			openOutput[k]--
			a.OutputBytes += e.Bytes
			a.OutputCount++
		case SiteCrashed, CEFailed, LinkFault, TransferAbort, ReplicaLost:
			a.FaultCount++
		case SiteRecovered, CERecovered, LinkRepair:
			a.RepairCount++
		case JobRetried:
			get(e.Job).retries++
			a.RetryCount++
		case JobAbandoned:
			get(e.Job).abandoned = true
			a.AbandonedCount++
		default:
			return nil, fmt.Errorf("trace: unknown event kind %q", e.Kind)
		}
	}

	var responses, waits []float64
	ids := make([]int, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		lc := jobs[id]
		if lc.seen[JobSubmitted] != 1 {
			return nil, fmt.Errorf("trace: job %d has %d %s events, want 1", id, lc.seen[JobSubmitted], JobSubmitted)
		}
		if lc.abandoned {
			// Out of retries: the job never completed, by definition. It
			// contributes to no response-time statistics.
			if lc.seen[JobCompleted] != 0 {
				return nil, fmt.Errorf("trace: job %d both abandoned and completed", id)
			}
			continue
		}
		if lc.retries == 0 {
			// Failure-free lifecycle: the strict DGE invariants hold.
			for _, k := range []Kind{JobDispatched, JobStarted, JobCompleted} {
				if lc.seen[k] != 1 {
					return nil, fmt.Errorf("trace: job %d has %d %s events, want 1", id, lc.seen[k], k)
				}
			}
		} else {
			// Retried jobs repeat dispatch/start; each attempt count is
			// bounded by retries+1 and exactly one attempt completes.
			if lc.seen[JobCompleted] != 1 {
				return nil, fmt.Errorf("trace: retried job %d has %d completions, want 1", id, lc.seen[JobCompleted])
			}
			if lc.seen[JobDispatched] < 1 || lc.seen[JobDispatched] > lc.retries+1 ||
				lc.seen[JobStarted] > lc.retries+1 {
				return nil, fmt.Errorf("trace: retried job %d has implausible attempt counts (%d dispatched, %d started, %d retries)",
					id, lc.seen[JobDispatched], lc.seen[JobStarted], lc.retries)
			}
		}
		if lc.submit > lc.dispatch || lc.dispatch > lc.start || lc.start > lc.end {
			return nil, fmt.Errorf("trace: job %d lifecycle out of order (%v %v %v %v)",
				id, lc.submit, lc.dispatch, lc.start, lc.end)
		}
		a.Jobs = append(a.Jobs, JobTimeline{
			Job: id, User: lc.user, Site: lc.site,
			Submit: lc.submit, Dispatch: lc.dispatch, DataReady: lc.dataReady,
			Start: lc.start, End: lc.end,
		})
		a.JobsPerSite[lc.site]++
		responses = append(responses, lc.end-lc.submit)
		waits = append(waits, lc.start-lc.dispatch)
	}
	a.Response = stats.Summarize(responses)
	a.QueueWait = stats.Summarize(waits)
	return a, nil
}

func isJobKind(k Kind) bool {
	switch k {
	case JobSubmitted, JobDispatched, JobDataReady, JobStarted, JobCompleted, JobAbandoned:
		return true
	}
	return false
}
