package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Fleet Chrome-trace export: where chrome.go lays out one simulation's
// virtual time (processes = sites and links), this file lays out a
// distributed campaign's wall-clock time. Track layout follows the same
// conventions:
//
//   - One process per fabric worker, with as many "slot k" thread lanes
//     as the worker ran shards concurrently, holding shard phase spans
//     (cat "book" between lease grant and first heartbeat, cat "exec"
//     while executing).
//   - An "events" lane per process of instant markers (lease expiry,
//     requeue, poison).
//   - Spans or markers with no worker attribution land on a synthetic
//     "dispatcher" process.
//
// Within every lane the greedy interval assignment guarantees spans are
// monotone and non-overlapping. Timestamps are microseconds of
// wall-clock time relative to the campaign's first event.

const (
	fleetPIDBase   = 1
	fleetEventsTID = 999
)

// FleetSpan is one shard phase on one worker's lanes. Start and End are
// seconds relative to the trace origin.
type FleetSpan struct {
	Worker string // lane owner; "" lands on the dispatcher process
	Name   string
	Cat    string
	Start  float64
	End    float64
	Args   map[string]any
}

// FleetMarker is one instant event on a worker's events lane.
type FleetMarker struct {
	Worker string
	Name   string
	Cat    string
	T      float64
	Args   map[string]any
}

// WriteFleetChrome writes spans and markers as Chrome trace-event JSON
// (viewable in chrome://tracing and Perfetto).
func WriteFleetChrome(w io.Writer, spans []FleetSpan, markers []FleetMarker) error {
	const usec = 1e6
	var out chromeFile
	out.DisplayTimeUnit = "ms"

	laneOwner := func(name string) string {
		if name == "" {
			return "dispatcher"
		}
		return name
	}
	workers := map[string]bool{}
	for _, sp := range spans {
		workers[laneOwner(sp.Worker)] = true
	}
	for _, m := range markers {
		workers[laneOwner(m.Worker)] = true
	}
	names := make([]string, 0, len(workers))
	for name := range workers {
		names = append(names, name)
	}
	sort.Strings(names)
	pidOf := make(map[string]int, len(names))
	for i, name := range names {
		pid := fleetPIDBase + i
		pidOf[name] = pid
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": "worker " + name},
		})
	}

	byWorker := make(map[string][]FleetSpan)
	for _, sp := range spans {
		name := laneOwner(sp.Worker)
		byWorker[name] = append(byWorker[name], sp)
	}
	for _, name := range names {
		pid := pidOf[name]
		ws := byWorker[name]
		sort.SliceStable(ws, func(i, j int) bool {
			if ws[i].Start != ws[j].Start {
				return ws[i].Start < ws[j].Start
			}
			return ws[i].Name < ws[j].Name
		})
		lanes := assignIntervalLanes(ws,
			func(sp FleetSpan) float64 { return sp.Start },
			func(sp FleetSpan) float64 { return sp.End })
		for lane, laneSpans := range lanes {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: lane,
				Args: map[string]any{"name": fmt.Sprintf("slot %d", lane)},
			})
			for _, sp := range laneSpans {
				dur := (sp.End - sp.Start) * usec
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: sp.Name, Cat: sp.Cat, Ph: "X", Ts: sp.Start * usec,
					Dur: &dur, Pid: pid, Tid: lane, Args: sp.Args,
				})
			}
		}
	}

	markerLaneNamed := map[int]bool{}
	for _, m := range markers {
		pid := pidOf[laneOwner(m.Worker)]
		if !markerLaneNamed[pid] {
			markerLaneNamed[pid] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: fleetEventsTID,
				Args: map[string]any{"name": "events"},
			})
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: m.Name, Cat: m.Cat, Ph: "i", Ts: m.T * usec,
			Pid: pid, Tid: fleetEventsTID, S: "t", Args: m.Args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// assignIntervalLanes partitions already-sorted intervals into the
// minimum number of lanes such that no lane holds two overlapping
// intervals (greedy interval coloring). Items must be ordered by start.
func assignIntervalLanes[T any](items []T, start, end func(T) float64) [][]T {
	var lanes [][]T
	var laneEnd []float64
	for _, it := range items {
		placed := false
		for i := range lanes {
			if laneEnd[i] <= start(it) {
				lanes[i] = append(lanes[i], it)
				laneEnd[i] = end(it)
				placed = true
				break
			}
		}
		if !placed {
			lanes = append(lanes, []T{it})
			laneEnd = append(laneEnd, end(it))
		}
	}
	return lanes
}
