package trace

import (
	"fmt"
	"sort"
)

// This file reconstructs the causal structure of a DGE from its event
// stream: a span tree per completed job (placement wait, retry attempts,
// input fetches, data wait, processor wait, execution, output shipment)
// plus the asynchronous DS replication spans. The tree makes the paper's
// §5 response-time story a computable object — see critpath.go for the
// decomposition aggregates and critical-path walk built on top of it.

// SpanKind classifies one reconstructed interval of attributed activity.
type SpanKind string

// Span kinds.
const (
	SpanJob      SpanKind = "job"       // submit → completion (tree root)
	SpanDispatch SpanKind = "dispatch"  // submit → first dispatch (batch window)
	SpanAttempt  SpanKind = "attempt"   // a failed attempt, up to its retry event
	SpanFetch    SpanKind = "fetch"     // one input transfer on its src→dst route
	SpanData     SpanKind = "data_wait" // final dispatch → all inputs resident
	SpanCPU      SpanKind = "cpu_wait"  // data ready → start (CE contention)
	SpanExec     SpanKind = "exec"      // start → end on a compute element
	SpanOutput   SpanKind = "output"    // asynchronous output shipment
	SpanRepl     SpanKind = "repl"      // asynchronous DS replica push
)

// Span is one interval of the reconstructed execution. Identity fields
// that do not apply to a kind are -1. Children may overlap in time (an
// input fetch overlaps the data wait it causes); sibling order is by
// start time.
type Span struct {
	Kind       SpanKind
	Start, End float64
	Job        int // owning job; -1 for repl and unattributed transfers
	File       int // transferred file; -1 for non-transfer spans and outputs
	Src, Dst   int // transfer route endpoints; -1 for non-transfer spans
	Site       int // site the span happened at; -1 when not site-bound
	Bytes      float64
	// Aborted marks a transfer killed by a fault (explicit abort or a
	// site crash); End is then the kill time, not a delivery.
	Aborted  bool
	Children []*Span
}

// Duration returns End − Start.
func (s *Span) Duration() float64 { return s.End - s.Start }

// Decomposition splits a completed job's response time into four phases
// that tile [submit, end] exactly:
//
//	Response = Retry + Data + Queue + Exec
//
// Retry covers submit → final dispatch (zero for clean online jobs;
// batch-window buffering and failed attempts plus backoff otherwise),
// Data covers final dispatch → data ready, Queue covers data ready →
// start, and Exec covers start → end. This is the offline mirror of
// metrics.Decomposition.
type Decomposition struct {
	Retry float64
	Data  float64
	Queue float64
	Exec  float64
}

// Response returns the sum of the four phases.
func (d Decomposition) Response() float64 { return d.Retry + d.Data + d.Queue + d.Exec }

// JobTree is the reconstructed span tree of one completed job.
type JobTree struct {
	Job     int
	User    int
	Site    int // final execution site
	Retries int
	Root    *Span // SpanJob covering [submit, end]
	Decomp  Decomposition
}

// Response returns the job's measured response time (root duration).
func (t *JobTree) Response() float64 { return t.Root.Duration() }

// AbandonedJob records a job that ran out of retries: it has no span
// tree (it never completed) but still occupies its user's closed-loop
// submission chain from submit to abandonment.
type AbandonedJob struct {
	Job       int
	User      int
	Submit    float64
	Abandoned float64
	Retries   int
}

// Forest is the full causal reconstruction of a DGE.
type Forest struct {
	Jobs      []*JobTree     // completed jobs, ascending id
	Abandoned []AbandonedJob // ascending id
	Repl      []*Span        // DS replication spans, by push time
	// Loose holds transfer spans not attributable to a completed job:
	// fetches credited to an abandoned job or to no job (-1 requester on
	// restarts with no waiters, pre-attribution traces), and aborted
	// transfers whose job never finished. They still occupy link tracks.
	Loose    []*Span
	Makespan float64

	byJob map[int]*JobTree
}

// Job returns the span tree for one job id, or nil.
func (f *Forest) Job(id int) *JobTree { return f.byJob[id] }

// jobBuild accumulates one job's milestones during the event walk.
type jobBuild struct {
	job, user, site          int
	submit, dataReady, start float64
	end                      float64
	haveSubmit, haveEnd      bool
	haveReady, haveStart     bool
	dispatches               []float64
	attempts                 []*Span // closed failed attempts
	fetches                  []*Span
	outputs                  []*Span
	retries                  int
	abandoned                bool
	abandonT                 float64
	lastMilestone            float64 // start of the attempt in progress
}

// flowKey identifies an in-flight transfer during reconstruction.
type spanFlowKey struct{ file, src, dst int }

// BuildSpans reconstructs the span forest from a trace. The log is
// sorted as a side effect (Events). Malformed traces — transfer ends
// without starts, duplicate lifecycle events — return an error.
func BuildSpans(l *Log) (*Forest, error) {
	jobs := make(map[int]*jobBuild)
	get := func(id int) *jobBuild {
		jb, ok := jobs[id]
		if !ok {
			jb = &jobBuild{job: id, user: -1, site: -1, dataReady: -1, lastMilestone: -1}
			jobs[id] = jb
		}
		return jb
	}

	f := &Forest{byJob: make(map[int]*JobTree)}
	openFetch := make(map[spanFlowKey][]*Span)
	openPush := make(map[spanFlowKey][]*Span)
	openOutput := make(map[[2]int][]*Span) // src,dst → FIFO of output spans
	crashesAt := make(map[int][]float64)   // site → crash times, ascending

	popFront := func(m map[spanFlowKey][]*Span, k spanFlowKey) *Span {
		q := m[k]
		if len(q) == 0 {
			return nil
		}
		sp := q[0]
		if len(q) == 1 {
			delete(m, k)
		} else {
			m[k] = q[1:]
		}
		return sp
	}

	for i, e := range l.Events() {
		if e.T < 0 {
			return nil, fmt.Errorf("trace: event %d at negative time %v", i, e.T)
		}
		if e.T > f.Makespan && isJobKind(e.Kind) {
			f.Makespan = e.T
		}
		switch e.Kind {
		case JobSubmitted:
			jb := get(e.Job)
			if jb.haveSubmit {
				return nil, fmt.Errorf("trace: job %d submitted twice", e.Job)
			}
			jb.haveSubmit = true
			jb.submit = e.T
			jb.user = e.User
			jb.lastMilestone = e.T
		case JobDispatched:
			jb := get(e.Job)
			jb.dispatches = append(jb.dispatches, e.T)
			jb.site = e.Site
			jb.lastMilestone = e.T
		case JobDataReady:
			jb := get(e.Job)
			jb.haveReady = true
			jb.dataReady = e.T
		case JobStarted:
			jb := get(e.Job)
			jb.haveStart = true
			jb.start = e.T
		case JobCompleted:
			jb := get(e.Job)
			if jb.haveEnd {
				return nil, fmt.Errorf("trace: job %d completed twice", e.Job)
			}
			jb.haveEnd = true
			jb.end = e.T
		case JobRetried:
			jb := get(e.Job)
			start := jb.lastMilestone
			if start < 0 {
				start = e.T
			}
			jb.attempts = append(jb.attempts, &Span{
				Kind: SpanAttempt, Start: start, End: e.T,
				Job: e.Job, File: -1, Src: -1, Dst: -1, Site: e.Site,
			})
			jb.retries++
			jb.lastMilestone = e.T // backoff runs from the failure
		case JobAbandoned:
			jb := get(e.Job)
			jb.abandoned = true
			jb.abandonT = e.T
		case FetchStart:
			sp := &Span{
				Kind: SpanFetch, Start: e.T, End: -1,
				Job: e.Job, File: e.File, Src: e.Src, Dst: e.Dst, Site: e.Dst,
			}
			openFetch[spanFlowKey{e.File, e.Src, e.Dst}] = append(openFetch[spanFlowKey{e.File, e.Src, e.Dst}], sp)
		case FetchEnd:
			sp := popFront(openFetch, spanFlowKey{e.File, e.Src, e.Dst})
			if sp == nil {
				return nil, fmt.Errorf("trace: fetch_end without start (file %d %d->%d)", e.File, e.Src, e.Dst)
			}
			sp.End = e.T
			sp.Bytes = e.Bytes
			if jb, ok := jobs[sp.Job]; ok && sp.Job >= 0 {
				jb.fetches = append(jb.fetches, sp)
			} else {
				f.Loose = append(f.Loose, sp)
			}
		case ReplPush:
			sp := &Span{
				Kind: SpanRepl, Start: e.T, End: -1,
				Job: -1, File: e.File, Src: e.Src, Dst: e.Dst, Site: e.Dst,
			}
			openPush[spanFlowKey{e.File, e.Src, e.Dst}] = append(openPush[spanFlowKey{e.File, e.Src, e.Dst}], sp)
			f.Repl = append(f.Repl, sp)
		case ReplArrive:
			sp := popFront(openPush, spanFlowKey{e.File, e.Src, e.Dst})
			if sp == nil {
				return nil, fmt.Errorf("trace: repl_arrive without push (file %d %d->%d)", e.File, e.Src, e.Dst)
			}
			sp.End = e.T
			sp.Bytes = e.Bytes
		case OutputStart:
			sp := &Span{
				Kind: SpanOutput, Start: e.T, End: -1,
				Job: e.Job, File: -1, Src: e.Src, Dst: e.Dst, Site: e.Dst,
			}
			openOutput[[2]int{e.Src, e.Dst}] = append(openOutput[[2]int{e.Src, e.Dst}], sp)
		case OutputEnd:
			k := [2]int{e.Src, e.Dst}
			q := openOutput[k]
			// Outputs between the same pair are FIFO per job id; find the
			// matching job (aborts may have holes).
			idx := -1
			for qi, sp := range q {
				if sp.Job == e.Job {
					idx = qi
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("trace: output_end without start (job %d %d->%d)", e.Job, e.Src, e.Dst)
			}
			sp := q[idx]
			openOutput[k] = append(q[:idx:idx], q[idx+1:]...)
			sp.End = e.T
			sp.Bytes = e.Bytes
			if jb, ok := jobs[sp.Job]; ok {
				jb.outputs = append(jb.outputs, sp)
			} else {
				f.Loose = append(f.Loose, sp)
			}
		case TransferAbort:
			// Close the matching in-flight transfer at the kill time.
			var sp *Span
			if e.File >= 0 {
				k := spanFlowKey{e.File, e.Src, e.Dst}
				if sp = popFront(openFetch, k); sp == nil {
					sp = popFront(openPush, k)
				}
			} else if q := openOutput[[2]int{e.Src, e.Dst}]; len(q) > 0 {
				sp = q[0]
				openOutput[[2]int{e.Src, e.Dst}] = q[1:]
			}
			if sp != nil {
				sp.End = e.T
				sp.Aborted = true
				if sp.Kind != SpanRepl {
					f.Loose = append(f.Loose, sp)
				}
			}
		case SiteCrashed:
			crashesAt[e.Site] = append(crashesAt[e.Site], e.T)
		case Evicted, SiteRecovered, CEFailed, CERecovered, LinkFault, LinkRepair, ReplicaLost:
			// No span representation (instant markers; see chrome.go).
		default:
			return nil, fmt.Errorf("trace: unknown event kind %q", e.Kind)
		}
	}

	// Transfers still open at end-of-trace were killed by a site crash
	// without an explicit abort event (the core cancels them inline).
	// Close each at the first crash of either endpoint after it started;
	// drop spans with no such crash (truncated trace).
	closeOrphan := func(sp *Span) {
		t, ok := firstCrashAfter(crashesAt, sp.Src, sp.Dst, sp.Start)
		if !ok {
			return
		}
		sp.End = t
		sp.Aborted = true
		if sp.Kind != SpanRepl {
			f.Loose = append(f.Loose, sp)
		}
	}
	for _, q := range openFetch {
		for _, sp := range q {
			closeOrphan(sp)
		}
	}
	for _, q := range openPush {
		for _, sp := range q {
			closeOrphan(sp)
		}
	}
	for _, q := range openOutput {
		for _, sp := range q {
			closeOrphan(sp)
		}
	}
	// Replication spans that never closed and saw no crash are dropped.
	kept := f.Repl[:0]
	for _, sp := range f.Repl {
		if sp.End >= 0 {
			kept = append(kept, sp)
		}
	}
	f.Repl = kept

	ids := make([]int, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		jb := jobs[id]
		if !jb.haveSubmit {
			return nil, fmt.Errorf("trace: job %d has events but no submission", id)
		}
		if jb.abandoned {
			if jb.haveEnd {
				return nil, fmt.Errorf("trace: job %d both abandoned and completed", id)
			}
			f.Abandoned = append(f.Abandoned, AbandonedJob{
				Job: id, User: jb.user, Submit: jb.submit,
				Abandoned: jb.abandonT, Retries: jb.retries,
			})
			for _, sp := range jb.fetches {
				f.Loose = append(f.Loose, sp)
			}
			for _, sp := range jb.outputs {
				f.Loose = append(f.Loose, sp)
			}
			continue
		}
		if !jb.haveEnd || !jb.haveStart || len(jb.dispatches) == 0 {
			return nil, fmt.Errorf("trace: job %d has an incomplete lifecycle", id)
		}
		tree, err := jb.build()
		if err != nil {
			return nil, err
		}
		f.Jobs = append(f.Jobs, tree)
		f.byJob[id] = tree
	}
	sortSpans(f.Loose)
	return f, nil
}

// build assembles the span tree for one completed job.
func (jb *jobBuild) build() (*JobTree, error) {
	finalDispatch := jb.dispatches[len(jb.dispatches)-1]
	ready := jb.dataReady
	if !jb.haveReady {
		ready = jb.start // defensive: treat the wait as pure data wait
	}
	if jb.submit > finalDispatch || finalDispatch > ready || ready > jb.start || jb.start > jb.end {
		return nil, fmt.Errorf("trace: job %d lifecycle out of order (%v %v %v %v %v)",
			jb.job, jb.submit, finalDispatch, ready, jb.start, jb.end)
	}
	root := &Span{
		Kind: SpanJob, Start: jb.submit, End: jb.end,
		Job: jb.job, File: -1, Src: -1, Dst: -1, Site: jb.site,
	}
	if len(jb.dispatches) > 0 && jb.dispatches[0] > jb.submit && jb.retries == 0 {
		// Pure placement wait (batch-window buffering). On retried jobs
		// the attempt spans already cover [submit, finalDispatch].
		root.Children = append(root.Children, &Span{
			Kind: SpanDispatch, Start: jb.submit, End: jb.dispatches[0],
			Job: jb.job, File: -1, Src: -1, Dst: -1, Site: -1,
		})
	}
	root.Children = append(root.Children, jb.attempts...)
	root.Children = append(root.Children, jb.fetches...)
	if ready > finalDispatch {
		root.Children = append(root.Children, &Span{
			Kind: SpanData, Start: finalDispatch, End: ready,
			Job: jb.job, File: -1, Src: -1, Dst: -1, Site: jb.site,
		})
	}
	if jb.start > ready {
		root.Children = append(root.Children, &Span{
			Kind: SpanCPU, Start: ready, End: jb.start,
			Job: jb.job, File: -1, Src: -1, Dst: -1, Site: jb.site,
		})
	}
	root.Children = append(root.Children, &Span{
		Kind: SpanExec, Start: jb.start, End: jb.end,
		Job: jb.job, File: -1, Src: -1, Dst: -1, Site: jb.site,
	})
	root.Children = append(root.Children, jb.outputs...)
	sortSpans(root.Children)
	return &JobTree{
		Job: jb.job, User: jb.user, Site: jb.site, Retries: jb.retries,
		Root: root,
		Decomp: Decomposition{
			Retry: finalDispatch - jb.submit,
			Data:  ready - finalDispatch,
			Queue: jb.start - ready,
			Exec:  jb.end - jb.start,
		},
	}, nil
}

// firstCrashAfter returns the earliest crash of either endpoint at or
// after t.
func firstCrashAfter(crashes map[int][]float64, src, dst int, t float64) (float64, bool) {
	best, ok := 0.0, false
	for _, site := range [2]int{src, dst} {
		for _, ct := range crashes[site] {
			if ct >= t && (!ok || ct < best) {
				best, ok = ct, true
			}
		}
	}
	return best, ok
}

// sortSpans orders spans by start time, breaking ties by kind then ids,
// for deterministic output.
func sortSpans(spans []*Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Job != b.Job {
			return a.Job < b.Job
		}
		return a.File < b.File
	})
}
