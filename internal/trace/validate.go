package trace

import (
	"fmt"
)

// ValidateFaults checks the fault-injection event kinds of a trace
// against the simulator's invariants. It complements Analyze, which
// validates the job-lifecycle and transfer kinds:
//
//   - Site crash/recover strictly alternate per site; no dispatch,
//     start, completion, or replica loss at a site that went down
//     strictly earlier and has not recovered (boundary-time events are
//     allowed: a crash and a completion at the same instant are ordered
//     arbitrarily in the stream).
//   - CE failures never exceed repairs + the plausible CE pool; repairs
//     never outnumber failures.
//   - Link fault/repair strictly alternate per link id.
//   - Every transfer_abort matches an in-flight transfer of the same
//     route (fetch or replication push by file, output shipment by
//     route).
//   - job_retried and job_abandoned reference submitted jobs; an
//     abandoned job never completes.
//
// A nil error means the fault stream is consistent.
func ValidateFaults(l *Log) error {
	downSince := make(map[int]float64) // site → crash time, while down
	failedCEs := make(map[int]int)
	linkDown := make(map[int]bool)
	openFetch := make(map[spanFlowKey]int)
	openPush := make(map[spanFlowKey]int)
	openOutput := make(map[[2]int]int)
	submitted := make(map[int]bool)
	retried := make(map[int]bool)
	abandoned := make(map[int]bool)

	// checkUp rejects activity at a site that went down strictly before t.
	checkUp := func(site int, t float64, what string, arg int) error {
		if since, down := downSince[site]; down && since < t {
			return fmt.Errorf("trace: %s %d at site %d which crashed at %v and has not recovered (t=%v)",
				what, arg, site, since, t)
		}
		return nil
	}

	for _, e := range l.Events() {
		switch e.Kind {
		case SiteCrashed:
			if _, down := downSince[e.Site]; down {
				return fmt.Errorf("trace: site %d crashed twice without recovery (t=%v)", e.Site, e.T)
			}
			downSince[e.Site] = e.T
			// Transfers killed by the crash are closed without events;
			// forget in-flight state involving the site so later aborts
			// cannot match ghosts. Outbound fetches from surviving master
			// copies continue, but dropping their count only relaxes the
			// abort check, never tightens it wrongly.
			for k := range openFetch {
				if k.src == e.Site || k.dst == e.Site {
					delete(openFetch, k)
				}
			}
			for k := range openPush {
				if k.src == e.Site || k.dst == e.Site {
					delete(openPush, k)
				}
			}
			for k := range openOutput {
				if k[0] == e.Site || k[1] == e.Site {
					delete(openOutput, k)
				}
			}
		case SiteRecovered:
			if _, down := downSince[e.Site]; !down {
				return fmt.Errorf("trace: site %d recovered while up (t=%v)", e.Site, e.T)
			}
			delete(downSince, e.Site)
		case CEFailed:
			if err := checkUp(e.Site, e.T, "ce_failed", e.Site); err != nil {
				return err
			}
			failedCEs[e.Site]++
		case CERecovered:
			if failedCEs[e.Site] == 0 {
				return fmt.Errorf("trace: ce_recovered at site %d with no failed CE (t=%v)", e.Site, e.T)
			}
			failedCEs[e.Site]--
		case LinkFault:
			if linkDown[e.Src] {
				return fmt.Errorf("trace: link %d faulted twice without repair (t=%v)", e.Src, e.T)
			}
			linkDown[e.Src] = true
		case LinkRepair:
			if !linkDown[e.Src] {
				return fmt.Errorf("trace: link %d repaired while nominal (t=%v)", e.Src, e.T)
			}
			delete(linkDown, e.Src)
		case TransferAbort:
			if e.File >= 0 {
				k := spanFlowKey{e.File, e.Src, e.Dst}
				switch {
				case openFetch[k] > 0:
					openFetch[k]--
				case openPush[k] > 0:
					openPush[k]--
				default:
					return fmt.Errorf("trace: transfer_abort of file %d %d->%d with no matching transfer (t=%v)",
						e.File, e.Src, e.Dst, e.T)
				}
			} else {
				k := [2]int{e.Src, e.Dst}
				if openOutput[k] == 0 {
					return fmt.Errorf("trace: transfer_abort of output %d->%d with no matching shipment (t=%v)",
						e.Src, e.Dst, e.T)
				}
				openOutput[k]--
			}
		case ReplicaLost:
			if err := checkUp(e.Site, e.T, "replica_lost of file", e.File); err != nil {
				return err
			}
		case JobRetried:
			if !submitted[e.Job] {
				return fmt.Errorf("trace: job %d retried before submission (t=%v)", e.Job, e.T)
			}
			retried[e.Job] = true
		case JobAbandoned:
			if !submitted[e.Job] {
				return fmt.Errorf("trace: job %d abandoned before submission (t=%v)", e.Job, e.T)
			}
			if !retried[e.Job] {
				return fmt.Errorf("trace: job %d abandoned without any retry (t=%v)", e.Job, e.T)
			}
			abandoned[e.Job] = true

		case JobSubmitted:
			submitted[e.Job] = true
		case JobDispatched:
			if err := checkUp(e.Site, e.T, "job_dispatched", e.Job); err != nil {
				return err
			}
		case JobCompleted:
			if abandoned[e.Job] {
				return fmt.Errorf("trace: job %d completed after abandonment (t=%v)", e.Job, e.T)
			}
		case FetchStart:
			openFetch[spanFlowKey{e.File, e.Src, e.Dst}]++
		case FetchEnd:
			k := spanFlowKey{e.File, e.Src, e.Dst}
			if openFetch[k] > 0 {
				openFetch[k]--
			}
		case ReplPush:
			openPush[spanFlowKey{e.File, e.Src, e.Dst}]++
		case ReplArrive:
			k := spanFlowKey{e.File, e.Src, e.Dst}
			if openPush[k] > 0 {
				openPush[k]--
			}
		case OutputStart:
			openOutput[[2]int{e.Src, e.Dst}]++
		case OutputEnd:
			k := [2]int{e.Src, e.Dst}
			if openOutput[k] > 0 {
				openOutput[k]--
			}
		}
	}
	return nil
}
