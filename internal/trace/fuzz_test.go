package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSONL ensures the trace parser never panics and that anything it
// accepts can be re-serialized and re-parsed to the same event count.
func FuzzReadJSONL(f *testing.F) {
	f.Add(`{"t":1,"kind":"job_submitted","job":1}`)
	f.Add(`{"t":0,"kind":"fetch_start","file":3,"src":1,"dst":2}` + "\n" +
		`{"t":5,"kind":"fetch_end","file":3,"src":1,"dst":2,"bytes":1e9}`)
	f.Add(`{"t":-1,"kind":"evicted"}`)
	f.Add(`garbage`)
	f.Add(`{"kind":""}`)
	f.Fuzz(func(t *testing.T, input string) {
		l, err := ReadJSONL(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := l.WriteJSONL(&buf); err != nil {
			t.Fatalf("accepted log failed to serialize: %v", err)
		}
		l2, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if l2.Len() != l.Len() {
			t.Fatalf("round trip changed event count: %d -> %d", l.Len(), l2.Len())
		}
		// Analysis must never panic on parsed input (errors are fine).
		_, _ = Analyze(l)
	})
}
