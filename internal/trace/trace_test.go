package trace

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

func lifecycleEvents(jobID int, submit, dispatch, start, end float64, site int) []Event {
	return []Event{
		{T: submit, Kind: JobSubmitted, Job: jobID, User: 1},
		{T: dispatch, Kind: JobDispatched, Job: jobID, Site: site},
		{T: start, Kind: JobStarted, Job: jobID, Site: site},
		{T: end, Kind: JobCompleted, Job: jobID, Site: site, User: 1},
	}
}

func TestLogSortsByTime(t *testing.T) {
	l := NewLog()
	l.Record(Event{T: 5, Kind: JobCompleted, Job: 1})
	l.Record(Event{T: 1, Kind: JobSubmitted, Job: 1})
	l.Record(Event{T: 3, Kind: JobStarted, Job: 1})
	evs := l.Events()
	if evs[0].Kind != JobSubmitted || evs[2].Kind != JobCompleted {
		t.Fatalf("not sorted: %v", evs)
	}
}

func TestLogStableTies(t *testing.T) {
	l := NewLog()
	l.Record(Event{T: 2, Kind: JobSubmitted, Job: 7})
	l.Record(Event{T: 2, Kind: JobDispatched, Job: 7})
	evs := l.Events()
	if evs[0].Kind != JobSubmitted {
		t.Fatal("tie order not stable")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := NewLog()
	for _, e := range lifecycleEvents(3, 0, 0, 10, 110, 4) {
		l.Record(e)
	}
	l.Record(Event{T: 2, Kind: FetchStart, File: 9, Src: 1, Dst: 4})
	l.Record(Event{T: 8, Kind: FetchEnd, File: 9, Src: 1, Dst: 4, Bytes: 5e8})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	l2, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != l.Len() {
		t.Fatalf("lost events: %d vs %d", l2.Len(), l.Len())
	}
	if l2.Events()[2].Kind != FetchStart {
		t.Fatalf("order lost: %v", l2.Events())
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString("{broken")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ReadJSONL(bytes.NewBufferString(`{"t":1}` + "\n")); err == nil {
		t.Fatal("expected missing-kind error")
	}
}

func TestDiscard(t *testing.T) {
	Discard.Record(Event{T: 1, Kind: JobSubmitted}) // must not panic
}

func TestStreamRecorderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewStreamRecorder(&buf)
	r.Record(Event{T: 5, Kind: JobCompleted, Job: 1})
	r.Record(Event{T: 0, Kind: JobSubmitted, Job: 1})
	r.Record(Event{T: 0, Kind: JobDispatched, Job: 1})
	r.Record(Event{T: 2, Kind: JobStarted, Job: 1})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.Recorded() != 4 {
		t.Fatalf("Recorded = %d", r.Recorded())
	}
	l, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != 1 || a.Jobs[0].Response() != 5 {
		t.Fatalf("analysis = %+v", a.Jobs)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk full") }

func TestStreamRecorderWriteError(t *testing.T) {
	r := NewStreamRecorder(failWriter{})
	for i := 0; i < 10000; i++ { // exceed the bufio buffer so Write fires
		r.Record(Event{T: float64(i), Kind: Evicted, File: i})
	}
	if err := r.Flush(); err == nil {
		t.Fatal("write error not surfaced")
	}
}

func TestAnalyzeHappyPath(t *testing.T) {
	l := NewLog()
	for _, e := range lifecycleEvents(1, 0, 0, 10, 110, 2) {
		l.Record(e)
	}
	for _, e := range lifecycleEvents(2, 0, 5, 20, 220, 3) {
		l.Record(e)
	}
	l.Record(Event{T: 1, Kind: FetchStart, File: 4, Src: 0, Dst: 2})
	l.Record(Event{T: 9, Kind: FetchEnd, File: 4, Src: 0, Dst: 2, Bytes: 1e9})
	l.Record(Event{T: 50, Kind: ReplPush, File: 4, Src: 2, Dst: 5})
	l.Record(Event{T: 80, Kind: ReplArrive, File: 4, Src: 2, Dst: 5, Bytes: 1e9})
	l.Record(Event{T: 90, Kind: Evicted, File: 7, Site: 5})

	a, err := Analyze(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(a.Jobs))
	}
	if a.Makespan != 220 {
		t.Fatalf("makespan = %v", a.Makespan)
	}
	if a.Response.Mean != (110+220)/2.0 {
		t.Fatalf("response mean = %v", a.Response.Mean)
	}
	if a.FetchBytes != 1e9 || a.ReplBytes != 1e9 || a.FetchCount != 1 || a.ReplCount != 1 {
		t.Fatalf("transfer accounting: %+v", a)
	}
	if a.PushCount != 1 || a.EvictCount != 1 {
		t.Fatalf("push/evict: %d/%d", a.PushCount, a.EvictCount)
	}
	if a.AvgDataPerJobMB() != 1000 {
		t.Fatalf("data/job = %v", a.AvgDataPerJobMB())
	}
	if a.JobsPerSite[2] != 1 || a.JobsPerSite[3] != 1 {
		t.Fatalf("jobs per site: %v", a.JobsPerSite)
	}
	if a.BytesPerFile[4] != 2e9 {
		t.Fatalf("bytes per file: %v", a.BytesPerFile)
	}
	if a.Jobs[0].Response() != 110 {
		t.Fatalf("timeline response = %v", a.Jobs[0].Response())
	}
}

func TestAnalyzeDetectsDuplicateLifecycle(t *testing.T) {
	l := NewLog()
	for _, e := range lifecycleEvents(1, 0, 0, 10, 110, 2) {
		l.Record(e)
	}
	l.Record(Event{T: 120, Kind: JobCompleted, Job: 1})
	if _, err := Analyze(l); err == nil {
		t.Fatal("duplicate completion not detected")
	}
}

func TestAnalyzeDetectsMissingLifecycle(t *testing.T) {
	l := NewLog()
	l.Record(Event{T: 0, Kind: JobSubmitted, Job: 1})
	l.Record(Event{T: 5, Kind: JobCompleted, Job: 1})
	if _, err := Analyze(l); err == nil {
		t.Fatal("missing dispatch/start not detected")
	}
}

func TestAnalyzeDetectsOutOfOrderLifecycle(t *testing.T) {
	l := NewLog()
	l.Record(Event{T: 10, Kind: JobSubmitted, Job: 1})
	l.Record(Event{T: 5, Kind: JobDispatched, Job: 1})
	l.Record(Event{T: 20, Kind: JobStarted, Job: 1})
	l.Record(Event{T: 30, Kind: JobCompleted, Job: 1})
	if _, err := Analyze(l); err == nil {
		t.Fatal("dispatch-before-submit not detected")
	}
}

func TestAnalyzeDetectsUnbalancedTransfers(t *testing.T) {
	l := NewLog()
	l.Record(Event{T: 5, Kind: FetchEnd, File: 1, Src: 0, Dst: 1, Bytes: 1})
	if _, err := Analyze(l); err == nil {
		t.Fatal("fetch_end without start not detected")
	}
	l2 := NewLog()
	l2.Record(Event{T: 5, Kind: ReplArrive, File: 1, Src: 0, Dst: 1, Bytes: 1})
	if _, err := Analyze(l2); err == nil {
		t.Fatal("repl_arrive without push not detected")
	}
}

func TestAnalyzeRejectsNegativeTime(t *testing.T) {
	l := NewLog()
	l.Record(Event{T: -1, Kind: JobSubmitted, Job: 1})
	if _, err := Analyze(l); err == nil {
		t.Fatal("negative time not detected")
	}
}

func TestAnalyzeRejectsUnknownKind(t *testing.T) {
	l := NewLog()
	l.Record(Event{T: 1, Kind: "martian"})
	if _, err := Analyze(l); err == nil {
		t.Fatal("unknown kind not detected")
	}
}

func TestSiteLoadGini(t *testing.T) {
	l := NewLog()
	// Nine jobs at site 0, one at site 1: concentrated.
	id := 0
	for i := 0; i < 9; i++ {
		for _, e := range lifecycleEvents(id, 0, 0, 1, 2, 0) {
			l.Record(e)
		}
		id++
	}
	for _, e := range lifecycleEvents(id, 0, 0, 1, 2, 1) {
		l.Record(e)
	}
	a, err := Analyze(l)
	if err != nil {
		t.Fatal(err)
	}
	if g := a.SiteLoadGini(); math.Abs(g-0.4) > 1e-9 {
		t.Fatalf("Gini = %v, want 0.4 for (9,1) split", g)
	}
}
