package trace

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// Transparent gzip trace I/O: trace files whose names end in ".gz" are
// compressed on write and decompressed on read, so multi-gigabyte DGE
// streams stay manageable without a separate pipeline step.

// OpenLog reads and parses the JSONL trace at path, gunzipping
// transparently when the name ends in ".gz".
func OpenLog(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("trace: opening %s: %w", path, err)
		}
		defer zr.Close()
		r = zr
	}
	return ReadJSONL(r)
}

// CreateWriter creates path for trace writing, layering gzip when the
// name ends in ".gz". Close flushes and closes every layer.
func CreateWriter(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	return &gzipFileWriter{zw: gzip.NewWriter(f), f: f}, nil
}

type gzipFileWriter struct {
	zw *gzip.Writer
	f  *os.File
}

func (w *gzipFileWriter) Write(p []byte) (int, error) { return w.zw.Write(p) }

func (w *gzipFileWriter) Close() error {
	zerr := w.zw.Close()
	ferr := w.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}
