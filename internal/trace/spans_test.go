package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"testing"
)

// goldenLog builds a small DGE by hand: job 1 retried once (crashed
// site 2, rerun at site 3 with one input fetch and an output shipment),
// job 2 clean at site 4, plus one DS replication.
func goldenLog() *Log {
	l := NewLog()
	evs := []Event{
		{T: 0, Kind: JobSubmitted, Job: 1, User: 5},
		{T: 0, Kind: JobDispatched, Job: 1, Site: 2},
		{T: 40, Kind: SiteCrashed, Site: 2},
		{T: 40, Kind: JobRetried, Job: 1, Site: 2},
		{T: 50, Kind: JobDispatched, Job: 1, Site: 3},
		{T: 50, Kind: FetchStart, Job: 1, File: 9, Src: 0, Dst: 3},
		{T: 80, Kind: FetchEnd, Job: 1, File: 9, Src: 0, Dst: 3, Bytes: 3e8},
		{T: 80, Kind: JobDataReady, Job: 1, Site: 3},
		{T: 90, Kind: JobStarted, Job: 1, Site: 3},
		{T: 190, Kind: JobCompleted, Job: 1, Site: 3, User: 5},
		{T: 190, Kind: OutputStart, Job: 1, Src: 3, Dst: 0},
		{T: 210, Kind: OutputEnd, Job: 1, Src: 3, Dst: 0, Bytes: 1e8},

		{T: 10, Kind: JobSubmitted, Job: 2, User: 6},
		{T: 10, Kind: JobDispatched, Job: 2, Site: 4},
		{T: 10, Kind: JobDataReady, Job: 2, Site: 4},
		{T: 30, Kind: JobStarted, Job: 2, Site: 4},
		{T: 150, Kind: JobCompleted, Job: 2, Site: 4, User: 6},

		{T: 100, Kind: ReplPush, File: 9, Src: 0, Dst: 4},
		{T: 130, Kind: ReplArrive, File: 9, Src: 0, Dst: 4, Bytes: 3e8},
	}
	for _, e := range evs {
		l.Record(e)
	}
	return l
}

func TestBuildSpansGolden(t *testing.T) {
	f, err := BuildSpans(goldenLog())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Jobs) != 2 || len(f.Abandoned) != 0 || len(f.Repl) != 1 {
		t.Fatalf("forest shape: %d jobs, %d abandoned, %d repl", len(f.Jobs), len(f.Abandoned), len(f.Repl))
	}
	if f.Makespan != 190 {
		t.Fatalf("makespan = %v", f.Makespan)
	}

	j1 := f.Job(1)
	if j1 == nil || j1.User != 5 || j1.Site != 3 || j1.Retries != 1 {
		t.Fatalf("job 1 header: %+v", j1)
	}
	want := Decomposition{Retry: 50, Data: 30, Queue: 10, Exec: 100}
	if j1.Decomp != want {
		t.Fatalf("job 1 decomposition = %+v, want %+v", j1.Decomp, want)
	}
	if got := j1.Decomp.Response(); got != j1.Response() {
		t.Fatalf("decomposition sums to %v, response is %v", got, j1.Response())
	}
	// Children in start order: attempt(0-40)@site2, fetch(50-80),
	// data_wait(50-80), cpu_wait(80-90), exec(90-190), output(190-210).
	wantKinds := []SpanKind{SpanAttempt, SpanData, SpanFetch, SpanCPU, SpanExec, SpanOutput}
	if len(j1.Root.Children) != len(wantKinds) {
		t.Fatalf("job 1 has %d children: %+v", len(j1.Root.Children), j1.Root.Children)
	}
	for i, c := range j1.Root.Children {
		if c.Kind != wantKinds[i] {
			t.Fatalf("child %d kind = %s, want %s", i, c.Kind, wantKinds[i])
		}
	}
	attempt := j1.Root.Children[0]
	if attempt.Start != 0 || attempt.End != 40 || attempt.Site != 2 {
		t.Fatalf("attempt span: %+v", attempt)
	}
	var fetch *Span
	for _, c := range j1.Root.Children {
		if c.Kind == SpanFetch {
			fetch = c
		}
	}
	if fetch.File != 9 || fetch.Src != 0 || fetch.Dst != 3 || fetch.Bytes != 3e8 || fetch.Job != 1 {
		t.Fatalf("fetch span: %+v", fetch)
	}

	j2 := f.Job(2)
	if j2.Decomp != (Decomposition{Retry: 0, Data: 0, Queue: 20, Exec: 120}) {
		t.Fatalf("job 2 decomposition = %+v", j2.Decomp)
	}
	// Clean job with data already present: cpu_wait + exec only.
	if len(j2.Root.Children) != 2 || j2.Root.Children[0].Kind != SpanCPU || j2.Root.Children[1].Kind != SpanExec {
		t.Fatalf("job 2 children: %+v", j2.Root.Children)
	}

	if r := f.Repl[0]; r.Start != 100 || r.End != 130 || r.File != 9 || r.Dst != 4 {
		t.Fatalf("repl span: %+v", r)
	}
}

func TestBuildSpansClosesCrashKilledTransfers(t *testing.T) {
	l := NewLog()
	for _, e := range []Event{
		{T: 0, Kind: JobSubmitted, Job: 1, User: 0},
		{T: 0, Kind: JobDispatched, Job: 1, Site: 2},
		{T: 5, Kind: FetchStart, Job: 1, File: 3, Src: 7, Dst: 2},
		// Site 2 crashes; the fetch dies silently (no fetch_end).
		{T: 20, Kind: SiteCrashed, Site: 2},
		{T: 20, Kind: JobRetried, Job: 1, Site: 2},
		{T: 30, Kind: JobDispatched, Job: 1, Site: 4},
		{T: 30, Kind: JobDataReady, Job: 1, Site: 4},
		{T: 30, Kind: JobStarted, Job: 1, Site: 4},
		{T: 60, Kind: JobCompleted, Job: 1, Site: 4, User: 0},
	} {
		l.Record(e)
	}
	f, err := BuildSpans(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Loose) != 1 {
		t.Fatalf("loose spans = %+v", f.Loose)
	}
	sp := f.Loose[0]
	if !sp.Aborted || sp.End != 20 || sp.Kind != SpanFetch {
		t.Fatalf("crash-killed fetch not closed at crash time: %+v", sp)
	}
}

func TestCriticalPathTilesChain(t *testing.T) {
	l := NewLog()
	// One user, two jobs back to back with a 5 s gap; a second user whose
	// job ends earlier.
	for _, e := range []Event{
		{T: 0, Kind: JobSubmitted, Job: 1, User: 3},
		{T: 0, Kind: JobDispatched, Job: 1, Site: 1},
		{T: 10, Kind: JobDataReady, Job: 1, Site: 1},
		{T: 10, Kind: JobStarted, Job: 1, Site: 1},
		{T: 100, Kind: JobCompleted, Job: 1, Site: 1, User: 3},
		{T: 105, Kind: JobSubmitted, Job: 2, User: 3},
		{T: 105, Kind: JobDispatched, Job: 2, Site: 1},
		{T: 105, Kind: JobDataReady, Job: 2, Site: 1},
		{T: 120, Kind: JobStarted, Job: 2, Site: 1},
		{T: 200, Kind: JobCompleted, Job: 2, Site: 1, User: 3},
		{T: 0, Kind: JobSubmitted, Job: 3, User: 4},
		{T: 0, Kind: JobDispatched, Job: 3, Site: 2},
		{T: 0, Kind: JobDataReady, Job: 3, Site: 2},
		{T: 0, Kind: JobStarted, Job: 3, Site: 2},
		{T: 150, Kind: JobCompleted, Job: 3, Site: 2, User: 4},
	} {
		l.Record(e)
	}
	f, err := BuildSpans(l)
	if err != nil {
		t.Fatal(err)
	}
	p := f.CriticalPath()
	if p.User != 3 || len(p.Jobs) != 2 {
		t.Fatalf("critical path: %+v", p)
	}
	if p.Slack != 5 || p.Data != 10 || p.Queue != 15 || p.Exec != 170 || p.Retry != 0 {
		t.Fatalf("components: %+v", p)
	}
	sum := p.Retry + p.Data + p.Queue + p.Exec + p.Slack
	if math.Abs(sum-p.Length()) > 1e-9 {
		t.Fatalf("components sum to %v, chain length %v", sum, p.Length())
	}
	if p.End != f.Makespan {
		t.Fatalf("chain ends at %v, makespan %v", p.End, f.Makespan)
	}
}

func TestWriteChromeTraceValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenLog()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	// Per-track spans must be monotone and non-overlapping.
	type track struct{ pid, tid int }
	last := make(map[track]float64)
	spans, metas, instants := 0, 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
		case "i":
			instants++
		case "X":
			spans++
			k := track{e.Pid, e.Tid}
			if e.Ts < last[k] {
				t.Fatalf("track %v: span %q at %v overlaps previous ending %v", k, e.Name, e.Ts, last[k])
			}
			last[k] = e.Ts + e.Dur
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	// Golden log: 2 exec + 1 fetch + 1 output + 1 repl spans, 1 crash.
	if spans != 5 || instants != 1 || metas == 0 {
		t.Fatalf("event mix: %d spans, %d instants, %d metas", spans, instants, metas)
	}
}

func TestGzipRoundTrip(t *testing.T) {
	for _, name := range []string{"dge.jsonl", "dge.jsonl.gz"} {
		path := filepath.Join(t.TempDir(), name)
		w, err := CreateWriter(path)
		if err != nil {
			t.Fatal(err)
		}
		rec := NewStreamRecorder(w)
		for _, e := range goldenLog().Events() {
			rec.Record(e)
		}
		if err := rec.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		l, err := OpenLog(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if l.Len() != goldenLog().Len() {
			t.Fatalf("%s: %d events round-tripped, want %d", name, l.Len(), goldenLog().Len())
		}
		if _, err := BuildSpans(l); err != nil {
			t.Fatalf("%s: reloaded trace invalid: %v", name, err)
		}
	}
}

func TestValidateFaultsAcceptsGoldenLog(t *testing.T) {
	if err := ValidateFaults(goldenLog()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateFaultsRejections(t *testing.T) {
	cases := []struct {
		name string
		evs  []Event
	}{
		{"double-crash", []Event{
			{T: 1, Kind: SiteCrashed, Site: 2},
			{T: 2, Kind: SiteCrashed, Site: 2},
		}},
		{"recover-while-up", []Event{
			{T: 1, Kind: SiteRecovered, Site: 2},
		}},
		{"dispatch-to-down-site", []Event{
			{T: 0, Kind: JobSubmitted, Job: 1},
			{T: 1, Kind: SiteCrashed, Site: 2},
			{T: 5, Kind: JobDispatched, Job: 1, Site: 2},
		}},
		{"ce-recover-without-failure", []Event{
			{T: 1, Kind: CERecovered, Site: 3},
		}},
		{"link-repair-while-nominal", []Event{
			{T: 1, Kind: LinkRepair, Src: 4},
		}},
		{"abort-without-transfer", []Event{
			{T: 1, Kind: TransferAbort, File: 7, Src: 0, Dst: 1},
		}},
		{"output-abort-without-shipment", []Event{
			{T: 1, Kind: TransferAbort, File: -1, Src: 0, Dst: 1},
		}},
		{"replica-lost-at-down-site", []Event{
			{T: 1, Kind: SiteCrashed, Site: 2},
			{T: 5, Kind: ReplicaLost, Site: 2, File: 3},
		}},
		{"retry-before-submit", []Event{
			{T: 1, Kind: JobRetried, Job: 9, Site: 0},
		}},
		{"abandon-without-retry", []Event{
			{T: 0, Kind: JobSubmitted, Job: 9},
			{T: 5, Kind: JobAbandoned, Job: 9},
		}},
		{"complete-after-abandon", []Event{
			{T: 0, Kind: JobSubmitted, Job: 9},
			{T: 1, Kind: JobRetried, Job: 9, Site: 0},
			{T: 2, Kind: JobAbandoned, Job: 9},
			{T: 3, Kind: JobCompleted, Job: 9},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewLog()
			for _, e := range tc.evs {
				l.Record(e)
			}
			if err := ValidateFaults(l); err == nil {
				t.Fatal("invalid fault stream accepted")
			}
		})
	}
}

func TestValidateFaultsAllowsBoundaryTimeEvents(t *testing.T) {
	// A completion and a crash at the same instant are ordered arbitrarily
	// in the stream; the validator must not flag them.
	l := NewLog()
	for _, e := range []Event{
		{T: 0, Kind: JobSubmitted, Job: 1},
		{T: 0, Kind: JobDispatched, Job: 1, Site: 2},
		{T: 10, Kind: SiteCrashed, Site: 2},
		{T: 10, Kind: JobCompleted, Job: 1, Site: 2},
		{T: 20, Kind: SiteRecovered, Site: 2},
	} {
		l.Record(e)
	}
	if err := ValidateFaults(l); err != nil {
		t.Fatal(err)
	}
}

func TestValidateFaultsMatchesAborts(t *testing.T) {
	l := NewLog()
	for _, e := range []Event{
		{T: 0, Kind: FetchStart, File: 5, Src: 1, Dst: 2},
		{T: 3, Kind: TransferAbort, File: 5, Src: 1, Dst: 2},
		{T: 4, Kind: OutputStart, Job: 8, Src: 2, Dst: 1},
		{T: 6, Kind: TransferAbort, File: -1, Src: 2, Dst: 1},
	} {
		l.Record(e)
	}
	if err := ValidateFaults(l); err != nil {
		t.Fatal(err)
	}
}

func TestAssignLanes(t *testing.T) {
	mk := func(s, e float64) *Span { return &Span{Kind: SpanExec, Start: s, End: e, Job: -1, File: -1} }
	lanes := assignLanes([]*Span{mk(0, 10), mk(5, 15), mk(10, 20), mk(15, 18)})
	if len(lanes) != 2 {
		t.Fatalf("lanes = %d, want 2", len(lanes))
	}
	for li, lane := range lanes {
		for i := 1; i < len(lane); i++ {
			if lane[i].Start < lane[i-1].End {
				t.Fatalf("lane %d overlaps: %+v after %+v", li, lane[i], lane[i-1])
			}
		}
	}
}
