// Package trace records Data Grid executions (DGEs) as event sequences.
//
// The paper defines a DGE as "a sequence of job submissions, allocations,
// and executions along with data movements" (§3) and characterizes it by
// metrics computed over that sequence. This package captures the sequence
// itself: every lifecycle transition, transfer, replication, and eviction,
// with virtual timestamps. A recorded DGE can be written as JSON lines,
// reloaded, validated against the simulator's invariants, and re-analyzed
// offline — which also cross-checks the online metrics pipeline.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Kind enumerates DGE event types.
type Kind string

// DGE event kinds.
const (
	JobSubmitted  Kind = "job_submitted"  // user hands the job to its ES
	JobDispatched Kind = "job_dispatched" // ES placed the job at a site
	JobDataReady  Kind = "job_data_ready" // all inputs resident at the site
	JobStarted    Kind = "job_started"    // job occupies a compute element
	JobCompleted  Kind = "job_completed"  // job finished
	FetchStart    Kind = "fetch_start"    // job-driven transfer began
	FetchEnd      Kind = "fetch_end"      // job-driven transfer delivered
	ReplPush      Kind = "repl_push"      // DS decided to push a replica
	ReplArrive    Kind = "repl_arrive"    // pushed replica delivered
	Evicted       Kind = "evicted"        // LRU evicted a cached replica
	OutputStart   Kind = "output_start"   // job-output shipment began
	OutputEnd     Kind = "output_end"     // job-output shipment delivered

	// Fault-injection kinds (degraded-grid runs only).
	SiteCrashed   Kind = "site_crashed"   // site went down; Site set
	SiteRecovered Kind = "site_recovered" // site came back
	CEFailed      Kind = "ce_failed"      // one compute element went offline
	CERecovered   Kind = "ce_recovered"   // one compute element repaired
	LinkFault     Kind = "link_fault"     // link degraded or cut; Src holds link id
	LinkRepair    Kind = "link_repair"    // link back to nominal bandwidth
	TransferAbort Kind = "transfer_abort" // in-flight transfer killed
	ReplicaLost   Kind = "replica_lost"   // cached replica dropped by fault
	JobRetried    Kind = "job_retried"    // failed job scheduled for resubmission
	JobAbandoned  Kind = "job_abandoned"  // job out of retries, permanently failed
)

// Event is one DGE record. Fields that do not apply to a kind are -1 (ids)
// or 0 (bytes).
type Event struct {
	T     float64 `json:"t"`
	Kind  Kind    `json:"kind"`
	Job   int     `json:"job,omitempty"`
	User  int     `json:"user,omitempty"`
	File  int     `json:"file,omitempty"`
	Src   int     `json:"src,omitempty"`
	Dst   int     `json:"dst,omitempty"`
	Site  int     `json:"site,omitempty"`
	Bytes float64 `json:"bytes,omitempty"`
}

// Recorder consumes DGE events as the simulation emits them. Emission
// order is not guaranteed to be timestamp order (lifecycle events are
// flushed at completion); sinks that need order should sort, as Log does.
type Recorder interface {
	Record(Event)
}

// Discard is a Recorder that drops everything.
var Discard Recorder = discard{}

type discard struct{}

func (discard) Record(Event) {}

// Log is an in-memory Recorder.
type Log struct {
	events []Event
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Record implements Recorder.
func (l *Log) Record(e Event) { l.events = append(l.events, e) }

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Events returns the events sorted by timestamp (stable: emission order
// breaks ties). The log itself is sorted in place.
func (l *Log) Events() []Event {
	sort.SliceStable(l.events, func(i, j int) bool { return l.events[i].T < l.events[j].T })
	return l.events
}

// WriteJSONL writes the sorted events as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range l.Events() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encoding event: %w", err)
		}
	}
	return bw.Flush()
}

// StreamRecorder writes events to an io.Writer as JSON lines the moment
// they are recorded, keeping memory flat for very long executions. Events
// are emitted in *recording* order, which is not timestamp order (job
// lifecycle events flush at completion); ReadJSONL + Log.Events restores
// timestamp order on load. Call Flush before reading the output.
type StreamRecorder struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
	n   int
}

// NewStreamRecorder wraps w.
func NewStreamRecorder(w io.Writer) *StreamRecorder {
	bw := bufio.NewWriter(w)
	return &StreamRecorder{w: bw, enc: json.NewEncoder(bw)}
}

// Record implements Recorder. The first write error is retained and
// surfaces from Flush; later events are dropped.
func (r *StreamRecorder) Record(e Event) {
	if r.err != nil {
		return
	}
	if err := r.enc.Encode(e); err != nil {
		r.err = err
		return
	}
	r.n++
}

// Recorded returns the number of events successfully written.
func (r *StreamRecorder) Recorded() int { return r.n }

// Flush drains buffers and reports the first error encountered.
func (r *StreamRecorder) Flush() error {
	if r.err != nil {
		return fmt.Errorf("trace: stream recorder: %w", r.err)
	}
	return r.w.Flush()
}

// ReadJSONL parses a JSON-lines DGE trace.
func ReadJSONL(r io.Reader) (*Log, error) {
	l := NewLog()
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding event %d: %w", l.Len(), err)
		}
		if e.Kind == "" {
			return nil, fmt.Errorf("trace: event %d has no kind", l.Len())
		}
		l.Record(e)
	}
	return l, nil
}
