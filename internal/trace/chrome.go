package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event JSON export (viewable in chrome://tracing and
// Perfetto). Track layout:
//
//   - One process per site ("site N"), with one thread lane per
//     concurrently busy compute element ("CE k") holding exec spans, and
//     a "faults" lane of instant markers (crash/recover, CE fail/repair,
//     replica loss).
//   - One process per directed link route ("link A→B"), with as many
//     "xfer k" lanes as transfers overlap, holding fetch, replication,
//     and output spans.
//
// Within every lane the greedy interval assignment guarantees spans are
// monotone and non-overlapping. Timestamps are microseconds of virtual
// time.

const (
	sitePIDBase = 1000
	linkPIDBase = 100000
)

// chromeEvent is one entry in the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace reconstructs spans from l and writes a Chrome
// trace-event JSON file to w.
func WriteChromeTrace(w io.Writer, l *Log) error {
	f, err := BuildSpans(l)
	if err != nil {
		return err
	}
	return f.WriteChrome(w, l)
}

// WriteChrome writes the forest as Chrome trace-event JSON. The log is
// consulted for fault instant markers; pass nil to omit them.
func (f *Forest) WriteChrome(w io.Writer, l *Log) error {
	const usec = 1e6
	var out chromeFile
	out.DisplayTimeUnit = "ms"

	meta := func(pid, tid int, kind, name string) {
		args := map[string]any{"name": name}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: kind, Ph: "M", Pid: pid, Tid: tid, Args: args,
		})
	}
	complete := func(pid, tid int, name, cat string, sp *Span) {
		dur := (sp.End - sp.Start) * usec
		args := map[string]any{}
		if sp.Job >= 0 {
			args["job"] = sp.Job
		}
		if sp.File >= 0 {
			args["file"] = sp.File
		}
		if sp.Bytes > 0 {
			args["bytes"] = sp.Bytes
		}
		if sp.Aborted {
			args["aborted"] = true
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Cat: cat, Ph: "X", Ts: sp.Start * usec, Dur: &dur,
			Pid: pid, Tid: tid, Args: args,
		})
	}

	// Site tracks: exec spans grouped by site, lane-assigned to CEs.
	execBySite := make(map[int][]*Span)
	for _, t := range f.Jobs {
		for _, sp := range t.Root.Children {
			if sp.Kind == SpanExec {
				execBySite[t.Site] = append(execBySite[t.Site], sp)
			}
		}
	}
	sites := sortedKeys(execBySite)
	for _, site := range sites {
		pid := sitePIDBase + site
		meta(pid, 0, "process_name", fmt.Sprintf("site %d", site))
		for lane, spans := range assignLanes(execBySite[site]) {
			meta(pid, lane, "thread_name", fmt.Sprintf("CE %d", lane))
			for _, sp := range spans {
				complete(pid, lane, fmt.Sprintf("job %d", sp.Job), "exec", sp)
			}
		}
	}

	// Link tracks: all transfer spans grouped by directed route.
	byRoute := make(map[[2]int][]*Span)
	addXfer := func(sp *Span) {
		if sp.Src < 0 || sp.Dst < 0 {
			return
		}
		k := [2]int{sp.Src, sp.Dst}
		byRoute[k] = append(byRoute[k], sp)
	}
	for _, t := range f.Jobs {
		for _, sp := range t.Root.Children {
			if sp.Kind == SpanFetch || sp.Kind == SpanOutput {
				addXfer(sp)
			}
		}
	}
	for _, sp := range f.Repl {
		addXfer(sp)
	}
	for _, sp := range f.Loose {
		addXfer(sp)
	}
	routes := make([][2]int, 0, len(byRoute))
	for k := range byRoute {
		routes = append(routes, k)
	}
	sort.Slice(routes, func(i, j int) bool {
		if routes[i][0] != routes[j][0] {
			return routes[i][0] < routes[j][0]
		}
		return routes[i][1] < routes[j][1]
	})
	for ri, k := range routes {
		pid := linkPIDBase + ri
		meta(pid, 0, "process_name", fmt.Sprintf("link %d→%d", k[0], k[1]))
		for lane, spans := range assignLanes(byRoute[k]) {
			meta(pid, lane, "thread_name", fmt.Sprintf("xfer %d", lane))
			for _, sp := range spans {
				var name, cat string
				switch sp.Kind {
				case SpanFetch:
					name, cat = fmt.Sprintf("fetch file %d", sp.File), "fetch"
				case SpanRepl:
					name, cat = fmt.Sprintf("repl file %d", sp.File), "repl"
				default:
					name, cat = fmt.Sprintf("output job %d", sp.Job), "output"
				}
				complete(pid, lane, name, cat, sp)
			}
		}
	}

	// Fault instant markers on each site's process.
	if l != nil {
		faultTID := 999
		named := make(map[int]bool)
		for _, e := range l.Events() {
			var name string
			switch e.Kind {
			case SiteCrashed, SiteRecovered, CEFailed, CERecovered, ReplicaLost:
				name = string(e.Kind)
			default:
				continue
			}
			pid := sitePIDBase + e.Site
			if !named[e.Site] {
				named[e.Site] = true
				meta(pid, 0, "process_name", fmt.Sprintf("site %d", e.Site))
				meta(pid, faultTID, "thread_name", "faults")
			}
			args := map[string]any{}
			if e.File >= 0 && e.Kind == ReplicaLost {
				args["file"] = e.File
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Cat: "fault", Ph: "i", Ts: e.T * usec,
				Pid: pid, Tid: faultTID, S: "t", Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// assignLanes partitions spans into the minimum number of lanes such
// that no lane holds two overlapping spans (greedy interval coloring,
// shared with the fleet export's wall-clock lanes). Spans are ordered
// by start within each lane.
func assignLanes(spans []*Span) [][]*Span {
	ordered := make([]*Span, len(spans))
	copy(ordered, spans)
	sortSpans(ordered)
	return assignIntervalLanes(ordered,
		func(sp *Span) float64 { return sp.Start },
		func(sp *Span) float64 { return sp.End })
}

func sortedKeys(m map[int][]*Span) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
