package trace

// Critical-path analysis over the reconstructed span forest. Two views:
//
//   - Per job: the Decomposition already on each JobTree — the four
//     phases tile [submit, end] exactly, so each job's critical path
//     through its own span tree is the phase sequence itself.
//   - Whole DGE: the workload is closed-loop (a user submits job k the
//     moment job k−1 finishes plus think time), so the causal chain
//     ending at the globally last completion is that user's job
//     sequence. Walking it back decomposes the makespan into retry,
//     data, queue, exec, and slack (think time / submission gaps) that
//     sum to the chain length exactly.

// CriticalPath is the causal chain of the user whose job finished last,
// with the chain duration decomposed by phase. Invariant:
//
//	Retry + Data + Queue + Exec + Slack = End − Start
type CriticalPath struct {
	User  int
	Jobs  []int // chain members in submission order (abandoned included)
	Start float64
	End   float64

	Retry float64 // placement waits, failed attempts, abandoned jobs
	Data  float64 // final dispatch → data ready
	Queue float64 // data ready → start
	Exec  float64 // start → end
	Slack float64 // gaps between one job's end and the next submit
}

// Length returns End − Start.
func (p CriticalPath) Length() float64 { return p.End - p.Start }

// chainStep is one job on a user's closed-loop chain.
type chainStep struct {
	job       int
	submit    float64
	terminal  float64 // completion or abandonment
	tree      *JobTree
	abandoned bool
}

// CriticalPath computes the whole-DGE critical path. An empty forest
// returns the zero value.
func (f *Forest) CriticalPath() CriticalPath {
	// Find the globally last completion (completed jobs define makespan).
	var last *JobTree
	for _, t := range f.Jobs {
		if last == nil || t.Root.End > last.Root.End ||
			(t.Root.End == last.Root.End && t.Job > last.Job) {
			last = t
		}
	}
	if last == nil {
		return CriticalPath{User: -1}
	}

	// Collect that user's chain up to the terminal job.
	var chain []chainStep
	for _, t := range f.Jobs {
		if t.User == last.User && t.Root.End <= last.Root.End {
			chain = append(chain, chainStep{
				job: t.Job, submit: t.Root.Start, terminal: t.Root.End, tree: t,
			})
		}
	}
	for _, a := range f.Abandoned {
		if a.User == last.User && a.Abandoned <= last.Root.End {
			chain = append(chain, chainStep{
				job: a.Job, submit: a.Submit, terminal: a.Abandoned, abandoned: true,
			})
		}
	}
	sortChain(chain)

	p := CriticalPath{User: last.User, Start: chain[0].submit, End: last.Root.End}
	prevEnd := chain[0].submit
	for _, step := range chain {
		p.Jobs = append(p.Jobs, step.job)
		if gap := step.submit - prevEnd; gap > 0 {
			p.Slack += gap
		}
		if step.abandoned {
			// The whole occupancy of an abandoned job is retry overhead.
			p.Retry += step.terminal - step.submit
		} else {
			d := step.tree.Decomp
			p.Retry += d.Retry
			p.Data += d.Data
			p.Queue += d.Queue
			p.Exec += d.Exec
		}
		prevEnd = step.terminal
	}
	return p
}

func sortChain(chain []chainStep) {
	for i := 1; i < len(chain); i++ {
		for j := i; j > 0 && less(chain[j], chain[j-1]); j-- {
			chain[j], chain[j-1] = chain[j-1], chain[j]
		}
	}
}

func less(a, b chainStep) bool {
	if a.submit != b.submit {
		return a.submit < b.submit
	}
	return a.job < b.job
}

// DecompStats aggregates the per-job decompositions of every completed
// job: totals, means, and shares of total response time.
type DecompStats struct {
	Jobs int

	// Totals (seconds summed over jobs).
	Retry, Data, Queue, Exec float64

	// Means per job.
	MeanRetry, MeanData, MeanQueue, MeanExec, MeanResponse float64

	// Shares of Σ response (sum to 1 when Jobs > 0).
	RetryShare, DataShare, QueueShare, ExecShare float64
}

// DecompStats computes the aggregate decomposition over f.Jobs.
func (f *Forest) DecompStats() DecompStats {
	var s DecompStats
	for _, t := range f.Jobs {
		d := t.Decomp
		s.Retry += d.Retry
		s.Data += d.Data
		s.Queue += d.Queue
		s.Exec += d.Exec
	}
	s.Jobs = len(f.Jobs)
	if s.Jobs == 0 {
		return s
	}
	n := float64(s.Jobs)
	s.MeanRetry = s.Retry / n
	s.MeanData = s.Data / n
	s.MeanQueue = s.Queue / n
	s.MeanExec = s.Exec / n
	total := s.Retry + s.Data + s.Queue + s.Exec
	s.MeanResponse = total / n
	if total > 0 {
		s.RetryShare = s.Retry / total
		s.DataShare = s.Data / total
		s.QueueShare = s.Queue / total
		s.ExecShare = s.Exec / total
	}
	return s
}
