package queueing

import (
	"fmt"

	"chicsim/internal/desim"
	"chicsim/internal/rng"
)

// SimResult summarizes a simulated queueing run.
type SimResult struct {
	Served      int
	AvgWait     float64 // time in queue, excluding service
	AvgInSystem float64 // time-averaged number in system
	Utilization float64 // busy-server time fraction
}

// SimulateMMC runs an M/M/c queue for `customers` arrivals on a fresh
// simulation engine: Poisson arrivals at rate lambda, exponential service
// at rate mu, c servers, FIFO discipline. Identical seeds reproduce
// identical runs.
func SimulateMMC(lambda, mu float64, c, customers int, seed uint64) (SimResult, error) {
	if lambda <= 0 || mu <= 0 || c <= 0 || customers <= 0 {
		return SimResult{}, fmt.Errorf("queueing: invalid parameters (λ=%v μ=%v c=%d n=%d)", lambda, mu, c, customers)
	}
	eng := desim.New()
	src := rng.New(seed)
	arrivals := src.Derive("arrivals")
	services := src.Derive("services")

	type customer struct{ arrived desim.Time }
	var queue []customer
	busy := 0
	served := 0
	totalWait := 0.0

	// Time integrals for L (number in system) and utilization.
	inSystem := 0
	lastT := desim.Time(0)
	areaL := 0.0
	areaBusy := 0.0
	account := func() {
		now := eng.Now()
		dt := now - lastT
		areaL += float64(inSystem) * dt
		areaBusy += float64(busy) * dt
		lastT = now
	}

	var depart func()
	startService := func(cust customer) {
		busy++
		totalWait += eng.Now() - cust.arrived
		eng.Schedule(services.Exp(1/mu), depart)
	}
	depart = func() {
		account()
		busy--
		inSystem--
		served++
		if len(queue) > 0 {
			next := queue[0]
			queue = queue[1:]
			startService(next)
		}
	}

	remaining := customers
	var arrive func()
	arrive = func() {
		account()
		inSystem++
		cust := customer{arrived: eng.Now()}
		if busy < c {
			startService(cust)
		} else {
			queue = append(queue, cust)
		}
		remaining--
		if remaining > 0 {
			eng.Schedule(arrivals.Exp(1/lambda), arrive)
		}
	}
	eng.Schedule(arrivals.Exp(1/lambda), arrive)
	eng.Run()
	account()

	end := eng.Now()
	res := SimResult{
		Served:  served,
		AvgWait: totalWait / float64(served),
	}
	if end > 0 {
		res.AvgInSystem = areaL / end
		res.Utilization = areaBusy / (float64(c) * end)
	}
	return res, nil
}
