package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMM1Formulas(t *testing.T) {
	// Textbook case: λ=0.5, μ=1 → Wq = 0.5/(1·0.5) = 1, L = 1.
	w, err := MM1AvgWait(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-1) > 1e-12 {
		t.Fatalf("Wq = %v, want 1", w)
	}
	l, err := MM1AvgInSystem(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-1) > 1e-12 {
		t.Fatalf("L = %v, want 1", l)
	}
}

func TestMM1Errors(t *testing.T) {
	if _, err := MM1AvgWait(1, 1); err == nil {
		t.Fatal("unstable system accepted")
	}
	if _, err := MM1AvgWait(-1, 1); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := MM1AvgInSystem(2, 1); err == nil {
		t.Fatal("unstable L accepted")
	}
}

func TestErlangC(t *testing.T) {
	// Known value: c=2, a=1 → C(2,1) = 1/3.
	p, err := ErlangC(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1.0/3) > 1e-12 {
		t.Fatalf("ErlangC(2,1) = %v, want 1/3", p)
	}
	// c=1 reduces to ρ.
	p, err = ErlangC(1, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.7) > 1e-12 {
		t.Fatalf("ErlangC(1,0.7) = %v, want 0.7", p)
	}
	if _, err := ErlangC(0, 0.5); err == nil {
		t.Fatal("c=0 accepted")
	}
	if _, err := ErlangC(2, 2.5); err == nil {
		t.Fatal("overload accepted")
	}
}

func TestMMCReducesToMM1(t *testing.T) {
	w1, err := MM1AvgWait(0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := MMCAvgWait(0.6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w1-wc) > 1e-12 {
		t.Fatalf("MMC(c=1) %v != MM1 %v", wc, w1)
	}
}

func TestUtilization(t *testing.T) {
	if u := MMCUtilization(3, 1, 4); math.Abs(u-0.75) > 1e-12 {
		t.Fatalf("rho = %v", u)
	}
	if !math.IsNaN(MMCUtilization(1, 1, 0)) {
		t.Fatal("c=0 should be NaN")
	}
}

// The simulator validation: DES results must match closed-form M/M/1 and
// M/M/c within Monte-Carlo tolerance. This exercises the event engine,
// exponential sampling, and time-integral accounting end-to-end.
func TestSimMatchesMM1Theory(t *testing.T) {
	const lambda, mu = 0.8, 1.0
	want, _ := MM1AvgWait(lambda, mu)
	res, err := SimulateMMC(lambda, mu, 1, 200000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 200000 {
		t.Fatalf("served = %d", res.Served)
	}
	if rel := math.Abs(res.AvgWait-want) / want; rel > 0.05 {
		t.Fatalf("sim Wq = %v, theory %v (rel err %.3f)", res.AvgWait, want, rel)
	}
	wantL, _ := MM1AvgInSystem(lambda, mu)
	if rel := math.Abs(res.AvgInSystem-wantL) / wantL; rel > 0.05 {
		t.Fatalf("sim L = %v, theory %v", res.AvgInSystem, wantL)
	}
	if rel := math.Abs(res.Utilization-lambda/mu) / (lambda / mu); rel > 0.02 {
		t.Fatalf("sim rho = %v, theory %v", res.Utilization, lambda/mu)
	}
}

func TestSimMatchesMMCTheory(t *testing.T) {
	const lambda, mu = 2.4, 1.0
	const c = 3
	want, _ := MMCAvgWait(lambda, mu, c)
	res, err := SimulateMMC(lambda, mu, c, 200000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.AvgWait-want) / want; rel > 0.06 {
		t.Fatalf("sim Wq = %v, theory %v (rel err %.3f)", res.AvgWait, want, rel)
	}
	wantRho := MMCUtilization(lambda, mu, c)
	if rel := math.Abs(res.Utilization-wantRho) / wantRho; rel > 0.02 {
		t.Fatalf("sim rho = %v, theory %v", res.Utilization, wantRho)
	}
}

func TestSimDeterministic(t *testing.T) {
	a, err := SimulateMMC(0.5, 1, 2, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateMMC(0.5, 1, 2, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgWait != b.AvgWait || a.AvgInSystem != b.AvgInSystem {
		t.Fatal("simulation not deterministic")
	}
}

func TestSimInvalidParams(t *testing.T) {
	for _, c := range []struct{ l, m float64 }{{0, 1}, {1, 0}, {-1, 1}} {
		if _, err := SimulateMMC(c.l, c.m, 1, 10, 1); err == nil {
			t.Fatalf("accepted λ=%v μ=%v", c.l, c.m)
		}
	}
	if _, err := SimulateMMC(1, 2, 0, 10, 1); err == nil {
		t.Fatal("accepted c=0")
	}
	if _, err := SimulateMMC(1, 2, 1, 0, 1); err == nil {
		t.Fatal("accepted n=0")
	}
}

// Property: adding servers never increases the analytical wait.
func TestQuickMoreServersNeverWorse(t *testing.T) {
	f := func(seedLambda, seedMu uint16) bool {
		lambda := 0.1 + float64(seedLambda%80)/100 // 0.1..0.89
		mu := 1.0 + float64(seedMu%100)/100        // 1.0..1.99
		prev := math.Inf(1)
		for c := 1; c <= 4; c++ {
			w, err := MMCAvgWait(lambda, mu, c)
			if err != nil {
				return false
			}
			if w > prev+1e-12 {
				return false
			}
			prev = w
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
