// Package queueing provides analytical queueing-theory baselines (M/M/1,
// M/M/c with Erlang-C) and a discrete-event implementation of the same
// systems on the simulation engine.
//
// Its purpose is validation: the simulator's event core, random streams,
// and timestamp accounting are checked end-to-end against closed-form
// results — a standard credibility step for a from-scratch simulator like
// ChicSim's Go reimplementation. The formulas are also handy as sanity
// baselines when interpreting grid results (a site with c compute elements
// fed by Poisson-ish arrivals is approximately M/G/c).
package queueing

import (
	"fmt"
	"math"
)

// MM1AvgWait returns the expected time in queue (excluding service) for an
// M/M/1 system with arrival rate lambda and service rate mu. It errors
// when the system is unstable (lambda >= mu) or rates are non-positive.
func MM1AvgWait(lambda, mu float64) (float64, error) {
	if lambda <= 0 || mu <= 0 {
		return 0, fmt.Errorf("queueing: rates must be positive (λ=%v μ=%v)", lambda, mu)
	}
	if lambda >= mu {
		return 0, fmt.Errorf("queueing: unstable system (λ=%v ≥ μ=%v)", lambda, mu)
	}
	return lambda / (mu * (mu - lambda)), nil
}

// MM1AvgInSystem returns the expected number of customers in an M/M/1
// system (queue + service).
func MM1AvgInSystem(lambda, mu float64) (float64, error) {
	if _, err := MM1AvgWait(lambda, mu); err != nil {
		return 0, err
	}
	rho := lambda / mu
	return rho / (1 - rho), nil
}

// ErlangC returns the probability that an arriving customer must queue in
// an M/M/c system with offered load a = lambda/mu and c servers.
func ErlangC(c int, a float64) (float64, error) {
	if c <= 0 {
		return 0, fmt.Errorf("queueing: c = %d servers", c)
	}
	if a <= 0 || a >= float64(c) {
		return 0, fmt.Errorf("queueing: offered load a=%v outside (0, c=%d)", a, c)
	}
	// Iteratively build Σ a^k/k! and a^c/c! to avoid overflow.
	sum := 1.0  // k = 0 term
	term := 1.0 // a^k / k!
	for k := 1; k < c; k++ {
		term *= a / float64(k)
		sum += term
	}
	top := term * a / float64(c) // a^c / c!
	rho := a / float64(c)
	pWait := top / (1 - rho) / (sum + top/(1-rho))
	return pWait, nil
}

// MMCAvgWait returns the expected queueing delay (excluding service) for
// an M/M/c system.
func MMCAvgWait(lambda, mu float64, c int) (float64, error) {
	if lambda <= 0 || mu <= 0 {
		return 0, fmt.Errorf("queueing: rates must be positive (λ=%v μ=%v)", lambda, mu)
	}
	a := lambda / mu
	pWait, err := ErlangC(c, a)
	if err != nil {
		return 0, err
	}
	return pWait / (float64(c)*mu - lambda), nil
}

// MMCUtilization returns per-server utilization ρ = λ/(cμ).
func MMCUtilization(lambda, mu float64, c int) float64 {
	if c <= 0 || mu <= 0 {
		return math.NaN()
	}
	return lambda / (float64(c) * mu)
}
