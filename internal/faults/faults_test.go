package faults

import (
	"fmt"
	"reflect"
	"testing"

	"chicsim/internal/desim"
	"chicsim/internal/rng"
)

func TestConfigEnabled(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Error("zero config reports enabled")
	}
	c.MaxRetries = 5
	c.RequeueOnRecovery = true
	if c.Enabled() {
		t.Error("recovery knobs alone report enabled")
	}
	c.ReplicaLoss = Spec{MTBF: 100}
	if !c.Enabled() {
		t.Error("class with MTBF > 0 reports disabled")
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"full", Config{SiteCrash: Spec{MTBF: 100, MTTR: 10}, TransferAbort: Spec{MTBF: 50}}, true},
		{"negative mtbf", Config{SiteCrash: Spec{MTBF: -1, MTTR: 10}}, false},
		{"negative mttr", Config{CEFailure: Spec{MTBF: 1, MTTR: -1}}, false},
		{"repairable class without mttr", Config{LinkOutage: Spec{MTBF: 100}}, false},
		{"abort without mttr", Config{TransferAbort: Spec{MTBF: 100}}, true},
		{"degrade factor one", Config{DegradeFactor: 1}, false},
		{"max retries -2", Config{MaxRetries: -2}, false},
		{"max retries -1", Config{MaxRetries: -1}, true},
		{"negative backoff", Config{RetryBackoff: -1}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestNormalizedDefaults(t *testing.T) {
	n := Config{}.Normalized()
	if n.DegradeFactor != 0.1 || n.MaxRetries != 3 || n.RetryBackoff != 30 || n.RetryBackoffMax != 600 {
		t.Errorf("defaults = %+v", n)
	}
	// Explicit values survive; -1 retries is not "unset".
	c := Config{DegradeFactor: 0.5, MaxRetries: -1, RetryBackoff: 5, RetryBackoffMax: 40}
	n = c.Normalized()
	if n.DegradeFactor != 0.5 || n.MaxRetries != -1 || n.RetryBackoff != 5 || n.RetryBackoffMax != 40 {
		t.Errorf("explicit values clobbered: %+v", n)
	}
}

func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{MaxRetries: 5, Backoff: 10, BackoffMax: 60}
	want := []float64{10, 20, 40, 60, 60}
	for i, w := range want {
		if d := p.Delay(i + 1); d != w {
			t.Errorf("Delay(%d) = %g, want %g", i+1, d, w)
		}
	}
	if d := p.Delay(0); d != 10 {
		t.Errorf("Delay(0) = %g, want clamp to first attempt", d)
	}
}

func TestRetryPolicyExhausted(t *testing.T) {
	p := RetryPolicy{MaxRetries: 2}
	for failures, want := range map[int]bool{1: false, 2: false, 3: true} {
		if got := p.Exhausted(failures); got != want {
			t.Errorf("Exhausted(%d) = %v, want %v", failures, got, want)
		}
	}
	if !(RetryPolicy{MaxRetries: -1}).Exhausted(1) {
		t.Error("MaxRetries -1 should abandon on first failure")
	}
}

// scriptedActions records every call the injector makes, with virtual
// timestamps, and simulates simple up/down state so repairs and
// already-down skips behave as in the real grid.
type scriptedActions struct {
	eng      *desim.Engine
	log      []string
	siteDown []bool
	ceDown   []bool
	linkHit  []bool
}

func newScripted(eng *desim.Engine, sites, links int) *scriptedActions {
	return &scriptedActions{
		eng:      eng,
		siteDown: make([]bool, sites),
		ceDown:   make([]bool, sites),
		linkHit:  make([]bool, links),
	}
}

func (a *scriptedActions) note(format string, args ...any) {
	a.log = append(a.log, fmt.Sprintf("%.3f "+format, append([]any{a.eng.Now()}, args...)...))
}

func (a *scriptedActions) NumSites() int          { return len(a.siteDown) }
func (a *scriptedActions) NumLinks() int          { return len(a.linkHit) }
func (a *scriptedActions) SiteUp(i int) bool      { return !a.siteDown[i] }
func (a *scriptedActions) CrashSite(i int)        { a.siteDown[i] = true; a.note("crash %d", i) }
func (a *scriptedActions) RecoverSite(i int)      { a.siteDown[i] = false; a.note("recover %d", i) }
func (a *scriptedActions) RecoverCE(i int)        { a.ceDown[i] = false; a.note("ce-recover %d", i) }
func (a *scriptedActions) LinkNominal(l int) bool { return !a.linkHit[l] }
func (a *scriptedActions) RestoreLink(l int)      { a.linkHit[l] = false; a.note("link-repair %d", l) }

func (a *scriptedActions) FailCE(i int) bool {
	if a.siteDown[i] || a.ceDown[i] {
		return false
	}
	a.ceDown[i] = true
	a.note("ce-fail %d", i)
	return true
}

func (a *scriptedActions) DegradeLink(l int, factor float64) {
	a.linkHit[l] = true
	a.note("link-fault %d %.2f", l, factor)
}

func (a *scriptedActions) AbortTransfer(pick *rng.Source) bool {
	a.note("abort %d", pick.Intn(100))
	return true
}

func (a *scriptedActions) LoseReplica(pick *rng.Source) bool {
	a.note("lose %d", pick.Intn(100))
	return true
}

func fullConfig() Config {
	return Config{
		SiteCrash:     Spec{MTBF: 500, MTTR: 100},
		CEFailure:     Spec{MTBF: 300, MTTR: 80},
		LinkDegrade:   Spec{MTBF: 400, MTTR: 90},
		LinkOutage:    Spec{MTBF: 700, MTTR: 60},
		TransferAbort: Spec{MTBF: 250},
		ReplicaLoss:   Spec{MTBF: 350},
	}
}

// runScripted drives the injector against scripted actions until the
// given virtual time, returning the call log and stats.
func runScripted(seed uint64, until float64) ([]string, Stats) {
	eng := desim.New()
	acts := newScripted(eng, 6, 9)
	active := func() bool { return eng.Now() < until }
	in := Attach(eng, fullConfig(), rng.New(seed).Derive("faults"), acts, active)
	eng.Run()
	return acts.log, in.Stats()
}

// The injector's entire call sequence is reproducible from the seed.
func TestInjectorDeterministic(t *testing.T) {
	logA, statsA := runScripted(42, 5000)
	logB, statsB := runScripted(42, 5000)
	if !reflect.DeepEqual(logA, logB) {
		t.Errorf("logs differ:\n%v\n%v", logA, logB)
	}
	if statsA != statsB {
		t.Errorf("stats differ: %+v vs %+v", statsA, statsB)
	}
	if statsA.FaultsInjected == 0 {
		t.Fatal("nothing injected in 5000s with every class enabled")
	}
	logC, _ := runScripted(43, 5000)
	if reflect.DeepEqual(logA, logC) {
		t.Error("different seeds produced identical fault schedules")
	}
}

// Every fault is eventually repaired: once active() goes false the
// processes stop re-arming, pending repairs still fire, and the engine
// drains with no element left broken.
func TestInjectorDrainsRepaired(t *testing.T) {
	eng := desim.New()
	acts := newScripted(eng, 6, 9)
	active := func() bool { return eng.Now() < 3000 }
	in := Attach(eng, fullConfig(), rng.New(7).Derive("faults"), acts, active)
	eng.Run() // must terminate: fault processes stop, repairs all fire

	st := in.Stats()
	repairable := st.SiteCrashes + st.CEFailures + st.LinkDegradations + st.LinkOutages
	if st.Repairs != repairable {
		t.Errorf("repairs %d != repairable faults %d", st.Repairs, repairable)
	}
	for i, down := range acts.siteDown {
		if down {
			t.Errorf("site %d still down after drain", i)
		}
	}
	for i, down := range acts.ceDown {
		if down {
			t.Errorf("CE at site %d still down after drain", i)
		}
	}
	for l, hit := range acts.linkHit {
		if hit {
			t.Errorf("link %d still degraded after drain", l)
		}
	}
}

// A draw that lands on an unavailable target is skipped without
// counting, and stats classes stay consistent with the call log.
func TestInjectorStatsMatchLog(t *testing.T) {
	log, st := runScripted(11, 8000)
	counts := map[string]int{}
	for _, line := range log {
		var ts float64
		var kind string
		fmt.Sscanf(line, "%f %s", &ts, &kind)
		counts[kind]++
	}
	if counts["crash"] != st.SiteCrashes {
		t.Errorf("crash calls %d, stats %d", counts["crash"], st.SiteCrashes)
	}
	if counts["ce-fail"] != st.CEFailures {
		t.Errorf("ce-fail calls %d, stats %d", counts["ce-fail"], st.CEFailures)
	}
	if counts["abort"] != st.TransfersAborted {
		t.Errorf("abort calls %d, stats %d", counts["abort"], st.TransfersAborted)
	}
	if counts["lose"] != st.ReplicasLost {
		t.Errorf("lose calls %d, stats %d", counts["lose"], st.ReplicasLost)
	}
	linkFaults := counts["link-fault"]
	if linkFaults != st.LinkDegradations+st.LinkOutages {
		t.Errorf("link faults %d, stats %d+%d", linkFaults, st.LinkDegradations, st.LinkOutages)
	}
	total := st.SiteCrashes + st.CEFailures + st.LinkDegradations + st.LinkOutages +
		st.TransfersAborted + st.ReplicasLost
	if st.FaultsInjected != total {
		t.Errorf("FaultsInjected %d != class sum %d", st.FaultsInjected, total)
	}
}
