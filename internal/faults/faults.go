// Package faults is a deterministic, seed-reproducible fault injector
// for the grid simulation. It schedules fault and repair events on the
// desim engine, drawing every inter-fault gap, target choice, and repair
// delay from named sub-streams of the simulation's own seeded RNG — so a
// faulted run is bit-identical for a given seed regardless of how many
// worker goroutines run *other* simulations.
//
// The package knows nothing about sites, links, or jobs concretely: the
// simulation hands it an Actions implementation, and the injector only
// decides *when* each fault class strikes and *which* integer target it
// hits. All semantic consequences (killing jobs, reflowing transfers,
// invalidating catalog entries) live behind Actions, which keeps the
// dependency arrow pointing from core to faults and not back.
package faults

import (
	"fmt"

	"chicsim/internal/desim"
	"chicsim/internal/rng"
)

// Spec parameterises one fault class as a pair of exponential
// distributions: mean time between faults and mean time to repair, both
// in virtual seconds. MTBF <= 0 disables the class. The MTBF clock is
// per grid, not per element: with MTBF 3600 some element somewhere
// faults about once an hour.
type Spec struct {
	MTBF float64 `json:"mtbf"`
	MTTR float64 `json:"mttr,omitempty"`
}

// Enabled reports whether the class injects faults at all.
func (sp Spec) Enabled() bool { return sp.MTBF > 0 }

// Config holds every fault knob. The zero value disables injection
// entirely and must leave a simulation byte-identical to one built
// before this package existed.
type Config struct {
	// SiteCrash takes a whole site down: running jobs are killed, queued
	// jobs are dropped (or kept for requeue, see RequeueOnRecovery), and
	// cached replicas are lost. Master copies survive — they live on the
	// site's mass-storage system, which stays reachable while the
	// compute front-end is down.
	SiteCrash Spec `json:"site_crash,omitzero"`
	// CEFailure takes one compute element at a site offline. If every CE
	// is busy, the most recently dispatched running job is killed and
	// retried elsewhere.
	CEFailure Spec `json:"ce_failure,omitzero"`
	// LinkDegrade multiplies a link's bandwidth by DegradeFactor until
	// repair; in-flight transfers reflow at the reduced rate.
	LinkDegrade Spec `json:"link_degrade,omitzero"`
	// LinkOutage drops a link's bandwidth to zero: transfers crossing it
	// stall (no progress, no completion event) until repair.
	LinkOutage Spec `json:"link_outage,omitzero"`
	// TransferAbort kills one in-flight transfer outright. Aborted input
	// fetches restart from the closest surviving replica; MTTR is unused.
	TransferAbort Spec `json:"transfer_abort,omitzero"`
	// ReplicaLoss silently corrupts one cached replica (disk failure):
	// the copy is dropped and deregistered from the catalog. Masters are
	// never lost. MTTR is unused.
	ReplicaLoss Spec `json:"replica_loss,omitzero"`

	// DegradeFactor is the bandwidth multiplier a LinkDegrade fault
	// applies, in (0,1). Defaults to 0.1.
	DegradeFactor float64 `json:"degrade_factor,omitempty"`

	// MaxRetries caps how many times the ES resubmits a failed job
	// before abandoning it. 0 means the default (3); use -1 to abandon
	// on first failure.
	MaxRetries int `json:"max_retries,omitempty"`
	// RetryBackoff is the delay before the first resubmission; each
	// further retry doubles it, capped at RetryBackoffMax. Defaults:
	// 30s base, 600s cap.
	RetryBackoff    float64 `json:"retry_backoff,omitempty"`
	RetryBackoffMax float64 `json:"retry_backoff_max,omitempty"`

	// RequeueOnRecovery keeps a crashed site's queued jobs in its queue
	// and re-arms them (LS requeue) when the site comes back, instead of
	// failing them over to other sites.
	RequeueOnRecovery bool `json:"requeue_on_recovery,omitempty"`
	// RestoreReplicas lets the DS re-replicate popular files lost to
	// replica-loss faults at its next periodic evaluation.
	RestoreReplicas bool `json:"restore_replicas,omitempty"`
}

// Enabled reports whether any fault class is active.
func (c Config) Enabled() bool {
	return c.SiteCrash.Enabled() || c.CEFailure.Enabled() ||
		c.LinkDegrade.Enabled() || c.LinkOutage.Enabled() ||
		c.TransferAbort.Enabled() || c.ReplicaLoss.Enabled()
}

// Validate rejects configurations the injector cannot run.
func (c Config) Validate() error {
	classes := []struct {
		name        string
		spec        Spec
		needsRepair bool
	}{
		{"site_crash", c.SiteCrash, true},
		{"ce_failure", c.CEFailure, true},
		{"link_degrade", c.LinkDegrade, true},
		{"link_outage", c.LinkOutage, true},
		{"transfer_abort", c.TransferAbort, false},
		{"replica_loss", c.ReplicaLoss, false},
	}
	for _, cl := range classes {
		if cl.spec.MTBF < 0 || cl.spec.MTTR < 0 {
			return fmt.Errorf("faults: %s has negative MTBF or MTTR", cl.name)
		}
		if cl.spec.Enabled() && cl.needsRepair && cl.spec.MTTR == 0 {
			return fmt.Errorf("faults: %s enabled (MTBF %g) but MTTR is zero", cl.name, cl.spec.MTBF)
		}
	}
	if c.DegradeFactor < 0 || c.DegradeFactor >= 1 {
		return fmt.Errorf("faults: degrade_factor %g outside [0,1)", c.DegradeFactor)
	}
	if c.MaxRetries < -1 {
		return fmt.Errorf("faults: max_retries %d < -1", c.MaxRetries)
	}
	if c.RetryBackoff < 0 || c.RetryBackoffMax < 0 {
		return fmt.Errorf("faults: negative retry backoff")
	}
	return nil
}

// Normalized returns a copy with defaults filled in for every knob left
// at its zero value.
func (c Config) Normalized() Config {
	if c.DegradeFactor == 0 {
		c.DegradeFactor = 0.1
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 30
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = 600
	}
	return c
}

// Retry returns the retry policy the config implies (after defaults).
func (c Config) Retry() RetryPolicy {
	n := c.Normalized()
	return RetryPolicy{MaxRetries: n.MaxRetries, Backoff: n.RetryBackoff, BackoffMax: n.RetryBackoffMax}
}

// Stats counts what the injector actually did. All counts are faults
// successfully applied; a draw that landed on an already-down target is
// not counted (and not retried — the class just waits for its next tick).
type Stats struct {
	FaultsInjected   int `json:"faults_injected"`
	SiteCrashes      int `json:"site_crashes,omitempty"`
	CEFailures       int `json:"ce_failures,omitempty"`
	LinkDegradations int `json:"link_degradations,omitempty"`
	LinkOutages      int `json:"link_outages,omitempty"`
	TransfersAborted int `json:"transfers_aborted,omitempty"`
	ReplicasLost     int `json:"replicas_lost,omitempty"`
	Repairs          int `json:"repairs,omitempty"`
}

// Actions is the surface the simulation exposes to the injector. Sites
// and links are addressed by dense integer index. Implementations must
// be deterministic: any internal choice (which transfer to abort, which
// replica to lose) is drawn from the *rng.Source the injector passes in.
type Actions interface {
	NumSites() int
	NumLinks() int

	SiteUp(site int) bool
	CrashSite(site int)
	RecoverSite(site int)

	// FailCE takes one compute element at the site offline, reporting
	// false if the site is down or has no CE left to fail.
	FailCE(site int) bool
	RecoverCE(site int)

	// LinkNominal reports whether the link currently runs at its nominal
	// bandwidth (no degradation or outage in force).
	LinkNominal(link int) bool
	DegradeLink(link int, factor float64)
	RestoreLink(link int)

	// AbortTransfer kills one in-flight transfer chosen via pick,
	// reporting false if nothing is in flight.
	AbortTransfer(pick *rng.Source) bool
	// LoseReplica drops one cached (non-master, idle) replica chosen via
	// pick, reporting false if no candidate exists.
	LoseReplica(pick *rng.Source) bool
}

// Injector owns the fault processes. Create with Attach.
type Injector struct {
	eng     *desim.Engine
	cfg     Config
	acts    Actions
	active  func() bool
	stats   Stats
	observe func(class string)
}

// Attach starts one fault process per enabled class on eng. Each class
// derives its own named sub-stream from root, so enabling one class
// never perturbs another's schedule. active gates injection: once it
// reports false (workload finished), fault processes stop re-arming so
// the engine can drain. Repairs already scheduled still fire — no
// element stays broken across the end of a run.
func Attach(eng *desim.Engine, cfg Config, root *rng.Source, acts Actions, active func() bool) *Injector {
	cfg = cfg.Normalized()
	in := &Injector{eng: eng, cfg: cfg, acts: acts, active: active}
	in.process("site-crash", cfg.SiteCrash, root, in.siteCrash)
	in.process("ce-failure", cfg.CEFailure, root, in.ceFailure)
	in.process("link-degrade", cfg.LinkDegrade, root, in.linkDegrade)
	in.process("link-outage", cfg.LinkOutage, root, in.linkOutage)
	in.process("transfer-abort", cfg.TransferAbort, root, in.transferAbort)
	in.process("replica-loss", cfg.ReplicaLoss, root, in.replicaLoss)
	return in
}

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Stats { return in.stats }

// SetObserver registers a callback invoked once per applied fault or
// repair with its class name ("site_crash", "ce_failure",
// "link_degrade", "link_outage", "transfer_abort", "replica_loss",
// "repair"). The live metrics registry uses it for per-class fault
// counters; it runs inside the fault event and must not touch
// simulation state.
func (in *Injector) SetObserver(fn func(class string)) { in.observe = fn }

func (in *Injector) event(class string) {
	if in.observe != nil {
		in.observe(class)
	}
}

// process arms the recurring fault loop for one class: wait Exp(MTBF),
// fire, repeat. The loop stops re-arming once active() is false.
func (in *Injector) process(name string, spec Spec, root *rng.Source, fire func(src *rng.Source, spec Spec)) {
	if !spec.Enabled() {
		return
	}
	src := root.Derive(name)
	var arm func()
	arm = func() {
		in.eng.Schedule(src.Exp(spec.MTBF), func() {
			if in.active != nil && !in.active() {
				return
			}
			fire(src, spec)
			arm()
		})
	}
	arm()
}

func (in *Injector) siteCrash(src *rng.Source, spec Spec) {
	target := src.Intn(in.acts.NumSites())
	if !in.acts.SiteUp(target) {
		return
	}
	in.acts.CrashSite(target)
	in.stats.FaultsInjected++
	in.stats.SiteCrashes++
	in.event("site_crash")
	in.eng.Schedule(src.Exp(spec.MTTR), func() {
		in.acts.RecoverSite(target)
		in.stats.Repairs++
		in.event("repair")
	})
}

func (in *Injector) ceFailure(src *rng.Source, spec Spec) {
	target := src.Intn(in.acts.NumSites())
	if !in.acts.FailCE(target) {
		return
	}
	in.stats.FaultsInjected++
	in.stats.CEFailures++
	in.event("ce_failure")
	in.eng.Schedule(src.Exp(spec.MTTR), func() {
		in.acts.RecoverCE(target)
		in.stats.Repairs++
		in.event("repair")
	})
}

func (in *Injector) linkDegrade(src *rng.Source, spec Spec) {
	in.linkFault(src, spec, in.cfg.DegradeFactor, &in.stats.LinkDegradations, "link_degrade")
}

func (in *Injector) linkOutage(src *rng.Source, spec Spec) {
	in.linkFault(src, spec, 0, &in.stats.LinkOutages, "link_outage")
}

func (in *Injector) linkFault(src *rng.Source, spec Spec, factor float64, counter *int, class string) {
	target := src.Intn(in.acts.NumLinks())
	if !in.acts.LinkNominal(target) {
		return
	}
	in.acts.DegradeLink(target, factor)
	in.stats.FaultsInjected++
	*counter++
	in.event(class)
	in.eng.Schedule(src.Exp(spec.MTTR), func() {
		in.acts.RestoreLink(target)
		in.stats.Repairs++
		in.event("repair")
	})
}

func (in *Injector) transferAbort(src *rng.Source, _ Spec) {
	if !in.acts.AbortTransfer(src) {
		return
	}
	in.stats.FaultsInjected++
	in.stats.TransfersAborted++
	in.event("transfer_abort")
}

func (in *Injector) replicaLoss(src *rng.Source, _ Spec) {
	if !in.acts.LoseReplica(src) {
		return
	}
	in.stats.FaultsInjected++
	in.stats.ReplicasLost++
	in.event("replica_loss")
}
