package faults

// RetryPolicy is the ES-level resubmission contract for failed jobs:
// capped exponential backoff, at most MaxRetries resubmissions, never to
// the site the job just failed on (enforced by es.AvoidFailed).
type RetryPolicy struct {
	// MaxRetries is the number of resubmissions allowed after the first
	// failure. Negative means abandon immediately.
	MaxRetries int
	// Backoff is the delay before the first resubmission; each further
	// retry doubles it, capped at BackoffMax.
	Backoff    float64
	BackoffMax float64
}

// Exhausted reports whether a job that has failed `failures` times is
// out of retries and must be abandoned.
func (p RetryPolicy) Exhausted(failures int) bool { return failures > p.MaxRetries }

// Delay returns the backoff before the attempt-th resubmission
// (attempt counts from 1): Backoff·2^(attempt-1), capped at BackoffMax.
func (p RetryPolicy) Delay(attempt int) float64 {
	if attempt < 1 {
		attempt = 1
	}
	d := p.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.BackoffMax {
			return p.BackoffMax
		}
	}
	if d > p.BackoffMax {
		d = p.BackoffMax
	}
	return d
}
