// Package catalog implements the grid-wide replica catalog: a mapping from
// dataset to the set of sites currently holding a copy.
//
// The paper assumes schedulers "may need external information like ... the
// location of a dataset", obtained from an information service such as the
// Globus replica catalog / MDS. Sites register replicas when a transfer or
// replication completes and deregister them on LRU eviction.
package catalog

import (
	"fmt"
	"sort"

	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

// Catalog maps each file to the ordered set of sites holding it. Orderings
// are deterministic (sorted by site id) so scheduler tie-breaking is
// reproducible.
type Catalog struct {
	locations map[storage.FileID]map[topology.SiteID]bool
	sizes     map[storage.FileID]float64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		locations: make(map[storage.FileID]map[topology.SiteID]bool),
		sizes:     make(map[storage.FileID]float64),
	}
}

// DefineFile registers a dataset's size. Must be called once per file
// before Register.
func (c *Catalog) DefineFile(f storage.FileID, size float64) error {
	if size <= 0 {
		return fmt.Errorf("catalog: file %d with non-positive size %v", f, size)
	}
	if _, ok := c.sizes[f]; ok {
		return fmt.Errorf("catalog: file %d already defined", f)
	}
	c.sizes[f] = size
	return nil
}

// Size returns a file's size in bytes; ok is false for unknown files.
func (c *Catalog) Size(f storage.FileID) (size float64, ok bool) {
	size, ok = c.sizes[f]
	return size, ok
}

// NumFiles returns the number of defined files.
func (c *Catalog) NumFiles() int { return len(c.sizes) }

// Files returns all defined file IDs in ascending order.
func (c *Catalog) Files() []storage.FileID {
	out := make([]storage.FileID, 0, len(c.sizes))
	for f := range c.sizes {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Register records that site holds a replica of f.
func (c *Catalog) Register(f storage.FileID, site topology.SiteID) {
	m, ok := c.locations[f]
	if !ok {
		m = make(map[topology.SiteID]bool)
		c.locations[f] = m
	}
	m[site] = true
}

// Deregister removes site from f's replica set (no-op if absent).
func (c *Catalog) Deregister(f storage.FileID, site topology.SiteID) {
	if m, ok := c.locations[f]; ok {
		delete(m, site)
		if len(m) == 0 {
			delete(c.locations, f)
		}
	}
}

// Replicas returns the sites holding f, sorted ascending. The slice is
// freshly allocated.
func (c *Catalog) Replicas(f storage.FileID) []topology.SiteID {
	m := c.locations[f]
	out := make([]topology.SiteID, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasReplica reports whether site holds f.
func (c *Catalog) HasReplica(f storage.FileID, site topology.SiteID) bool {
	return c.locations[f][site]
}

// ReplicaCount returns the number of sites holding f.
func (c *Catalog) ReplicaCount(f storage.FileID) int { return len(c.locations[f]) }

// CountAt returns how many distinct files the catalog believes are
// replicated at the given site. The watchdog compares this against the
// site store's own resident count to catch accounting drift.
func (c *Catalog) CountAt(site topology.SiteID) int {
	n := 0
	for _, sites := range c.locations {
		if sites[site] {
			n++
		}
	}
	return n
}

// Closest returns the replica site nearest to `from` by hop count, with
// ties broken by lowest site id. ok is false when no replica exists.
func (c *Catalog) Closest(f storage.FileID, from topology.SiteID, topo *topology.Topology) (topology.SiteID, bool) {
	best := topology.SiteID(-1)
	bestHops := int(^uint(0) >> 1)
	for _, s := range c.Replicas(f) {
		h := topo.Hops(from, s)
		if h < bestHops {
			bestHops = h
			best = s
		}
	}
	return best, best >= 0
}
