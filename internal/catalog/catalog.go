// Package catalog implements the grid-wide replica catalog: a mapping from
// dataset to the set of sites currently holding a copy.
//
// The paper assumes schedulers "may need external information like ... the
// location of a dataset", obtained from an information service such as the
// Globus replica catalog / MDS. Sites register replicas when a transfer or
// replication completes and deregister them on LRU eviction.
//
// File ids are dense small integers (the workload generator numbers files
// 0..N−1), so the catalog stores everything in file-indexed slices instead
// of maps: a size array and one sorted replica list per file, maintained
// incrementally on Register/Deregister. Hot readers (placement, fetch
// source selection, the GIS snapshot) index straight into these arrays —
// no map lookups, no per-query sorting, no per-query allocation.
package catalog

import (
	"fmt"

	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

// Catalog maps each file to the ordered set of sites holding it. Orderings
// are deterministic (sorted by site id) so scheduler tie-breaking is
// reproducible.
type Catalog struct {
	sizes   []float64           // by FileID, valid where defined[f]
	defined []bool              // by FileID
	repl    [][]topology.SiteID // sorted replica sites per FileID
	files   int                 // number of defined files
}

// New returns an empty catalog.
func New() *Catalog { return &Catalog{} }

// growTo extends the file-indexed arrays to cover id f.
func (c *Catalog) growTo(f storage.FileID) {
	for int(f) >= len(c.repl) {
		c.repl = append(c.repl, nil)
		c.sizes = append(c.sizes, 0)
		c.defined = append(c.defined, false)
	}
}

// DefineFile registers a dataset's size. Must be called once per file
// before Register. File ids must be non-negative (they index the
// catalog's dense storage).
func (c *Catalog) DefineFile(f storage.FileID, size float64) error {
	if f < 0 {
		return fmt.Errorf("catalog: negative file id %d", f)
	}
	if size <= 0 {
		return fmt.Errorf("catalog: file %d with non-positive size %v", f, size)
	}
	c.growTo(f)
	if c.defined[f] {
		return fmt.Errorf("catalog: file %d already defined", f)
	}
	c.defined[f] = true
	c.sizes[f] = size
	c.files++
	return nil
}

// Size returns a file's size in bytes; ok is false for unknown files.
func (c *Catalog) Size(f storage.FileID) (size float64, ok bool) {
	if f < 0 || int(f) >= len(c.defined) || !c.defined[f] {
		return 0, false
	}
	return c.sizes[f], true
}

// NumFiles returns the number of defined files.
func (c *Catalog) NumFiles() int { return c.files }

// FileIDBound returns one past the highest file id the catalog has seen —
// the dense iteration bound for snapshotters indexing by file id.
func (c *Catalog) FileIDBound() int { return len(c.defined) }

// Files returns all defined file IDs in ascending order.
func (c *Catalog) Files() []storage.FileID {
	out := make([]storage.FileID, 0, c.files)
	for f, ok := range c.defined {
		if ok {
			out = append(out, storage.FileID(f))
		}
	}
	return out
}

// replicaIndex returns where site sits (or would sit) in f's sorted
// replica list, and whether it is present.
func replicaIndex(lst []topology.SiteID, site topology.SiteID) (int, bool) {
	lo, hi := 0, len(lst)
	for lo < hi {
		mid := (lo + hi) / 2
		if lst[mid] < site {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(lst) && lst[lo] == site
}

// Register records that site holds a replica of f.
func (c *Catalog) Register(f storage.FileID, site topology.SiteID) {
	if f < 0 {
		panic(fmt.Sprintf("catalog: Register with negative file id %d", f))
	}
	c.growTo(f)
	lst := c.repl[f]
	i, ok := replicaIndex(lst, site)
	if ok {
		return
	}
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = site
	c.repl[f] = lst
}

// Deregister removes site from f's replica set (no-op if absent).
func (c *Catalog) Deregister(f storage.FileID, site topology.SiteID) {
	if f < 0 || int(f) >= len(c.repl) {
		return
	}
	lst := c.repl[f]
	if i, ok := replicaIndex(lst, site); ok {
		copy(lst[i:], lst[i+1:])
		c.repl[f] = lst[:len(lst)-1]
	}
}

// ReplicaList returns the sites holding f, sorted ascending, as the
// catalog's internal list: valid only until the next Register/Deregister
// for f, and must not be mutated or retained. Hot paths (fetch-source
// selection, the GIS) read through this; everyone else should use
// Replicas.
func (c *Catalog) ReplicaList(f storage.FileID) []topology.SiteID {
	if f < 0 || int(f) >= len(c.repl) {
		return nil
	}
	return c.repl[f]
}

// Replicas returns the sites holding f, sorted ascending. The slice is
// freshly allocated and the caller owns it.
func (c *Catalog) Replicas(f storage.FileID) []topology.SiteID {
	lst := c.ReplicaList(f)
	out := make([]topology.SiteID, len(lst))
	copy(out, lst)
	return out
}

// HasReplica reports whether site holds f.
func (c *Catalog) HasReplica(f storage.FileID, site topology.SiteID) bool {
	if f < 0 || int(f) >= len(c.repl) {
		return false
	}
	_, ok := replicaIndex(c.repl[f], site)
	return ok
}

// ReplicaCount returns the number of sites holding f.
func (c *Catalog) ReplicaCount(f storage.FileID) int {
	if f < 0 || int(f) >= len(c.repl) {
		return 0
	}
	return len(c.repl[f])
}

// CountAt returns how many distinct files the catalog believes are
// replicated at the given site. The watchdog compares this against the
// site store's own resident count to catch accounting drift.
func (c *Catalog) CountAt(site topology.SiteID) int {
	n := 0
	for _, lst := range c.repl {
		if _, ok := replicaIndex(lst, site); ok {
			n++
		}
	}
	return n
}

// Closest returns the replica site nearest to `from` by hop count, with
// ties broken by lowest site id. ok is false when no replica exists.
func (c *Catalog) Closest(f storage.FileID, from topology.SiteID, topo *topology.Topology) (topology.SiteID, bool) {
	best := topology.SiteID(-1)
	bestHops := int(^uint(0) >> 1)
	for _, s := range c.ReplicaList(f) {
		h := topo.Hops(from, s)
		if h < bestHops {
			bestHops = h
			best = s
		}
	}
	return best, best >= 0
}
