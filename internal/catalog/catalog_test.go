package catalog

import (
	"testing"
	"testing/quick"

	"chicsim/internal/rng"
	"chicsim/internal/storage"
	"chicsim/internal/topology"
)

func TestDefineAndSize(t *testing.T) {
	c := New()
	if err := c.DefineFile(1, 500e6); err != nil {
		t.Fatal(err)
	}
	if err := c.DefineFile(1, 2); err == nil {
		t.Fatal("duplicate define must error")
	}
	if err := c.DefineFile(2, 0); err == nil {
		t.Fatal("zero size must error")
	}
	if sz, ok := c.Size(1); !ok || sz != 500e6 {
		t.Fatalf("Size = %v %v", sz, ok)
	}
	if _, ok := c.Size(42); ok {
		t.Fatal("unknown file reported a size")
	}
	if c.NumFiles() != 1 {
		t.Fatalf("NumFiles = %d", c.NumFiles())
	}
}

func TestRegisterDeregister(t *testing.T) {
	c := New()
	c.DefineFile(7, 1e9)
	c.Register(7, 3)
	c.Register(7, 1)
	c.Register(7, 3) // idempotent
	reps := c.Replicas(7)
	if len(reps) != 2 || reps[0] != 1 || reps[1] != 3 {
		t.Fatalf("Replicas = %v", reps)
	}
	if !c.HasReplica(7, 3) || c.HasReplica(7, 9) {
		t.Fatal("HasReplica wrong")
	}
	c.Deregister(7, 3)
	if c.ReplicaCount(7) != 1 {
		t.Fatalf("ReplicaCount = %d", c.ReplicaCount(7))
	}
	c.Deregister(7, 3) // no-op
	c.Deregister(7, 1)
	if c.ReplicaCount(7) != 0 {
		t.Fatal("replicas remain after full deregistration")
	}
	if len(c.Replicas(99)) != 0 {
		t.Fatal("unknown file has replicas")
	}
}

func TestFilesSorted(t *testing.T) {
	c := New()
	for _, f := range []storage.FileID{5, 1, 3} {
		c.DefineFile(f, 1)
	}
	fs := c.Files()
	if len(fs) != 3 || fs[0] != 1 || fs[1] != 3 || fs[2] != 5 {
		t.Fatalf("Files = %v", fs)
	}
}

func TestClosest(t *testing.T) {
	topo, err := topology.NewHierarchical(topology.Config{Sites: 12, RegionFanout: 4, Bandwidth: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.DefineFile(1, 1)
	if _, ok := c.Closest(1, 0, topo); ok {
		t.Fatal("closest of replica-less file should be not-ok")
	}
	// Local replica always wins (0 hops).
	c.Register(1, 0)
	sib := topo.Siblings(0)[0]
	c.Register(1, sib)
	if got, ok := c.Closest(1, 0, topo); !ok || got != 0 {
		t.Fatalf("Closest = %v %v, want local site 0", got, ok)
	}
	c.Deregister(1, 0)
	if got, ok := c.Closest(1, 0, topo); !ok || got != sib {
		t.Fatalf("Closest = %v %v, want sibling %v", got, ok, sib)
	}
}

func TestClosestTieBreakDeterministic(t *testing.T) {
	topo, _ := topology.NewStar(5, 1)
	c := New()
	c.DefineFile(1, 1)
	c.Register(1, 4)
	c.Register(1, 2)
	// All non-local sites are 2 hops; lowest id wins.
	if got, _ := c.Closest(1, 0, topo); got != 2 {
		t.Fatalf("Closest tie-break = %v, want 2", got)
	}
}

// Property: after any register/deregister sequence, Replicas is sorted,
// duplicate-free, and consistent with HasReplica.
func TestQuickConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		c := New()
		for i := 0; i < 10; i++ {
			c.DefineFile(storage.FileID(i), 1)
		}
		for op := 0; op < 300; op++ {
			file := storage.FileID(src.Intn(10))
			site := topology.SiteID(src.Intn(8))
			if src.Intn(2) == 0 {
				c.Register(file, site)
			} else {
				c.Deregister(file, site)
			}
		}
		for i := 0; i < 10; i++ {
			reps := c.Replicas(storage.FileID(i))
			seen := map[topology.SiteID]bool{}
			for j, s := range reps {
				if seen[s] {
					return false
				}
				seen[s] = true
				if j > 0 && reps[j-1] >= s {
					return false
				}
				if !c.HasReplica(storage.FileID(i), s) {
					return false
				}
			}
			if len(reps) != c.ReplicaCount(storage.FileID(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
