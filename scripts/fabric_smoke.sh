#!/usr/bin/env bash
# Fabric smoke test: run the same campaign single-process and through a
# dispatcher + two loopback workers — killing one worker mid-campaign so
# its shards requeue — and require the merged JSONL stream and CSV report
# to be byte-identical to the single-process run. Along the way, scrape
# /metrics from both daemons, validate the campaign timeline and the
# exported fleet Chrome trace with obscheck, and require the lease-expiry
# and requeue evidence of the kill to show up in all three.
#
# Usage: scripts/fabric_smoke.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."
port="${1:-7171}"
wport=$((port + 1))
base="http://127.0.0.1:$port"
wbase="http://127.0.0.1:$wport"
workdir="$(mktemp -d)"
cleanup() {
  # shellcheck disable=SC2046 # word-splitting of PIDs is intended
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir" ./cmd/gridsweep ./cmd/griddispatch ./cmd/gridworker ./cmd/obscheck

echo "smoke: single-process reference run"
# One worker: completion order == campaign order == the fabric's
# canonical merge order.
"$workdir/gridsweep" -fig 3a -quick -workers 1 \
  -jsonl "$workdir/single.jsonl" -csv >"$workdir/single.csv"

echo "smoke: starting dispatcher on $base (2 s leases)"
"$workdir/griddispatch" -listen "127.0.0.1:$port" -lease 2 \
  -journal "$workdir/queue.journal" -out "$workdir/merged.jsonl" \
  -manifest "$workdir/merged.manifest.json" -log-format json \
  2>"$workdir/dispatcher.log" &

for _ in $(seq 50); do
  curl -sf "$base/api/state" >/dev/null && break
  sleep 0.2
done

echo "smoke: submitting campaign through the fabric"
"$workdir/gridsweep" -fig 3a -quick -dispatch "$base" \
  -jsonl "$workdir/dist.jsonl" -fleet-trace "$workdir/fleet.json.gz" \
  -csv >"$workdir/dist.csv" &
submit=$!

echo "smoke: starting doomed worker-a"
# Capacity 12 = the whole fig-3a grid: worker-a books every shard in its
# first poll, so killing it strands leased shards no matter how fast the
# individual simulations run.
"$workdir/gridworker" -dispatcher "$base" -name worker-a -capacity 12 -stay &
wa=$!

# Kill worker-a cold the moment it holds bookings: its leases must lapse
# and the unfinished shards requeue onto worker-b.
for _ in $(seq 2000); do
  curl -s "$base/api/state" | grep -Eq '"state":"(booked|executing)"' && break
done
echo "smoke: killing worker-a mid-campaign (SIGKILL)"
kill -9 "$wa" 2>/dev/null || true

echo "smoke: starting surviving worker-b (monitor on $wbase)"
"$workdir/gridworker" -dispatcher "$base" -name worker-b -stay \
  -listen "127.0.0.1:$wport" &
wb=$!

# Mid-campaign: both daemons' /metrics must already be well-formed
# Prometheus text (obscheck validates the exposition format).
for _ in $(seq 50); do
  curl -sf "$wbase/metrics" >/dev/null && break
  sleep 0.2
done
curl -s "$base/metrics" >"$workdir/dispatcher.mid.prom"
curl -s "$wbase/metrics" >"$workdir/worker.mid.prom"
"$workdir/obscheck" -metrics "$workdir/dispatcher.mid.prom"
"$workdir/obscheck" -metrics "$workdir/worker.mid.prom"

wait "$submit"

state="$(curl -s "$base/api/state")"
echo "smoke: final state: $state"
if ! grep -q '"requeues":' <<<"$state"; then
  echo "smoke: FAIL — no shard was requeued, the kill tested nothing" >&2
  exit 1
fi

# Post-merge observability: the SIGKILL must be visible in the metrics,
# the journal-backed timeline, and the exported Chrome trace.
curl -s "$base/metrics" >"$workdir/dispatcher.prom"
curl -s "$wbase/metrics" >"$workdir/worker.prom"
curl -s "$base/api/timeline" >"$workdir/timeline.json"
curl -sf "$base/api/fleet" | grep -q '"phase":"merged"'
"$workdir/obscheck" -metrics "$workdir/dispatcher.prom" \
  -require fabric_lease_expiries_total,fabric_shards_requeued_total,fabric_shards,fabric_journal_appends_total,fabric_workers_registered_total,fabric_results_total
"$workdir/obscheck" -metrics "$workdir/worker.prom" \
  -require worker_shards_executed_total,worker_uploads_total
"$workdir/obscheck" -timeline "$workdir/timeline.json" \
  -require-events queued,booked,uploaded,lease_expired,requeued
"$workdir/obscheck" -chrome "$workdir/fleet.json.gz" \
  -require-marker lease_expired -require-process worker-b

kill "$wb" 2>/dev/null || true
wait "$wb" 2>/dev/null || true

cmp "$workdir/single.jsonl" "$workdir/dist.jsonl"
cmp "$workdir/single.jsonl" "$workdir/merged.jsonl"
cmp "$workdir/single.csv" "$workdir/dist.csv"
grep -q '"merged": true' "$workdir/merged.manifest.json"
grep -q '"worker": "worker-b"' "$workdir/merged.manifest.json"
# Structured JSON logs: every dispatcher line parses and carries the
# component attribute.
head -1 "$workdir/dispatcher.log" | grep -q '"component":"griddispatch"'

echo "smoke: OK — merged stream, dispatcher -out copy, and CSV report"
echo "smoke:      byte-identical to the single-process run;"
echo "smoke:      metrics, timeline, and fleet trace all recorded the kill"
