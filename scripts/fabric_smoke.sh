#!/usr/bin/env bash
# Fabric smoke test: run the same campaign single-process and through a
# dispatcher + two loopback workers — killing one worker mid-campaign so
# its shards requeue — and require the merged JSONL stream and CSV report
# to be byte-identical to the single-process run.
#
# Usage: scripts/fabric_smoke.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."
port="${1:-7171}"
base="http://127.0.0.1:$port"
workdir="$(mktemp -d)"
cleanup() {
  # shellcheck disable=SC2046 # word-splitting of PIDs is intended
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir" ./cmd/gridsweep ./cmd/griddispatch ./cmd/gridworker

echo "smoke: single-process reference run"
# One worker: completion order == campaign order == the fabric's
# canonical merge order.
"$workdir/gridsweep" -fig 3a -quick -workers 1 \
  -jsonl "$workdir/single.jsonl" -csv >"$workdir/single.csv"

echo "smoke: starting dispatcher on $base (2 s leases)"
"$workdir/griddispatch" -listen "127.0.0.1:$port" -lease 2 \
  -journal "$workdir/queue.journal" -out "$workdir/merged.jsonl" \
  -manifest "$workdir/merged.manifest.json" &

for _ in $(seq 50); do
  curl -sf "$base/api/state" >/dev/null && break
  sleep 0.2
done

echo "smoke: submitting campaign through the fabric"
"$workdir/gridsweep" -fig 3a -quick -dispatch "$base" \
  -jsonl "$workdir/dist.jsonl" -csv >"$workdir/dist.csv" &
submit=$!

echo "smoke: starting doomed worker-a"
# Capacity 12 = the whole fig-3a grid: worker-a books every shard in its
# first poll, so killing it strands leased shards no matter how fast the
# individual simulations run.
"$workdir/gridworker" -dispatcher "$base" -name worker-a -capacity 12 -stay &
wa=$!

# Kill worker-a cold the moment it holds bookings: its leases must lapse
# and the unfinished shards requeue onto worker-b.
for _ in $(seq 2000); do
  curl -s "$base/api/state" | grep -Eq '"state":"(booked|executing)"' && break
done
echo "smoke: killing worker-a mid-campaign (SIGKILL)"
kill -9 "$wa" 2>/dev/null || true

echo "smoke: starting surviving worker-b"
"$workdir/gridworker" -dispatcher "$base" -name worker-b &
wb=$!

wait "$submit"
wait "$wb"

state="$(curl -s "$base/api/state")"
echo "smoke: final state: $state"
if ! grep -q '"requeues":' <<<"$state"; then
  echo "smoke: FAIL — no shard was requeued, the kill tested nothing" >&2
  exit 1
fi

cmp "$workdir/single.jsonl" "$workdir/dist.jsonl"
cmp "$workdir/single.jsonl" "$workdir/merged.jsonl"
cmp "$workdir/single.csv" "$workdir/dist.csv"
grep -q '"merged": true' "$workdir/merged.manifest.json"
grep -q '"worker": "worker-b"' "$workdir/merged.manifest.json"

echo "smoke: OK — merged stream, dispatcher -out copy, and CSV report"
echo "smoke:      byte-identical to the single-process run"
