// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§5), one benchmark per artifact, plus ablations for the
// design choices called out in DESIGN.md §6.
//
// Each sub-benchmark runs full Table 1 simulations and publishes the
// figure's quantity via b.ReportMetric, so
//
//	go test -bench=Figure -benchmem
//
// prints the same rows/series the paper reports (resp-s/job, MB/job,
// idle-%). Absolute values differ from the 2002 testbed; the shapes are
// asserted in internal/core's TestPaperShapes.
package chicsim_test

import (
	"fmt"
	"testing"

	"chicsim/internal/core"
	"chicsim/internal/experiments"
	"chicsim/internal/faults"
	"chicsim/internal/kernelbench"
	"chicsim/internal/netsim"
	"chicsim/internal/obs/registry"
	"chicsim/internal/obs/watchdog"
	"chicsim/internal/rng"
	"chicsim/internal/stats"
	"chicsim/internal/trace"
	"chicsim/internal/workload"
)

// runCell executes one full-scale simulation and reports figure metrics.
func runCell(b *testing.B, cfg core.Config) core.Results {
	b.Helper()
	var last core.Results
	for i := 0; i < b.N; i++ {
		res, err := core.RunConfig(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.AvgResponseSec, "resp-s/job")
	b.ReportMetric(last.AvgDataPerJobMB, "MB/job")
	b.ReportMetric(100*last.IdleFrac, "idle-%")
	return last
}

// BenchmarkTable1Defaults runs the paper's default scenario (Table 1,
// scenario 1) with the winning algorithm pair.
func BenchmarkTable1Defaults(b *testing.B) {
	runCell(b, core.DefaultConfig())
}

// BenchmarkFigure2Popularity regenerates the dataset-popularity histogram:
// the workload generator's geometric draw over 200 datasets. Reported
// metrics give the share of requests landing in the head of the ranking.
func BenchmarkFigure2Popularity(b *testing.B) {
	cfg := core.DefaultConfig()
	var head60 float64
	for i := 0; i < b.N; i++ {
		wl, err := workload.Generate(cfg.WorkloadSpec(), rng.New(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		h := wl.PopularityHistogram()
		total, head := 0, 0
		for r, c := range h {
			total += c
			if r < 60 {
				head += c
			}
		}
		head60 = 100 * float64(head) / float64(total)
	}
	b.ReportMetric(head60, "head60-%")
}

// figureCells runs each (ES, DS) cell of a figure as a sub-benchmark.
func figureCells(b *testing.B, cells []experiments.Cell, metric func(core.Results) (float64, string)) {
	base := core.DefaultConfig()
	for _, cell := range cells {
		cell := cell
		b.Run(fmt.Sprintf("%s/%s/%gMBps", cell.ES, cell.DS, cell.BandwidthMBps), func(b *testing.B) {
			cfg := base
			cfg.ES, cfg.DS, cfg.BandwidthMBps = cell.ES, cell.DS, cell.BandwidthMBps
			var v float64
			var unit string
			for i := 0; i < b.N; i++ {
				res, err := core.RunConfig(cfg)
				if err != nil {
					b.Fatal(err)
				}
				v, unit = metric(res)
			}
			b.ReportMetric(v, unit)
		})
	}
}

// BenchmarkFigure3aResponseTime regenerates Figure 3a: average response
// time per job for all 12 algorithm pairs at 10 MB/s.
func BenchmarkFigure3aResponseTime(b *testing.B) {
	figureCells(b, experiments.PaperCells(10), func(r core.Results) (float64, string) {
		return r.AvgResponseSec, "resp-s/job"
	})
}

// BenchmarkFigure3bDataTransferred regenerates Figure 3b: average data
// transferred per job for all 12 algorithm pairs at 10 MB/s.
func BenchmarkFigure3bDataTransferred(b *testing.B) {
	figureCells(b, experiments.PaperCells(10), func(r core.Results) (float64, string) {
		return r.AvgDataPerJobMB, "MB/job"
	})
}

// BenchmarkFigure4IdleTime regenerates Figure 4: percentage of time
// processors are idle (not in use or waiting for data) for all 12 pairs.
func BenchmarkFigure4IdleTime(b *testing.B) {
	figureCells(b, experiments.PaperCells(10), func(r core.Results) (float64, string) {
		return 100 * r.IdleFrac, "idle-%"
	})
}

// BenchmarkFigure5Bandwidth regenerates Figure 5: response times of the
// four ES algorithms at 10 vs 100 MB/s with DataLeastLoaded replication.
func BenchmarkFigure5Bandwidth(b *testing.B) {
	figureCells(b, experiments.Figure5Cells(), func(r core.Results) (float64, string) {
		return r.AvgResponseSec, "resp-s/job"
	})
}

// BenchmarkAblationDatasetSchedulers compares all five DS policies (the
// paper's three plus the DataCascade/DataBestClient extensions) under the
// winning JobDataPresent placement.
func BenchmarkAblationDatasetSchedulers(b *testing.B) {
	for _, dsName := range core.DatasetNames() {
		dsName := dsName
		b.Run(dsName, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.ES, cfg.DS = "JobDataPresent", dsName
			runCell(b, cfg)
		})
	}
}

// BenchmarkAblationLocalSchedulers compares FIFO (the paper's LS) against
// the SJF and LIFO extensions with the winning pair.
func BenchmarkAblationLocalSchedulers(b *testing.B) {
	for _, lsName := range core.LocalNames() {
		lsName := lsName
		b.Run(lsName, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.LS = lsName
			runCell(b, cfg)
		})
	}
}

// BenchmarkAblationSharingPolicy compares the paper's equal-share link
// contention model against max-min fairness.
func BenchmarkAblationSharingPolicy(b *testing.B) {
	for _, p := range []netsim.SharingPolicy{netsim.EqualShare, netsim.MaxMinFair} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.ES, cfg.DS = "JobLeastLoaded", "DataDoNothing" // transfer-heavy cell
			cfg.Sharing = p
			runCell(b, cfg)
		})
	}
}

// BenchmarkAblationAdaptive compares the future-work adaptive scheduler
// against both fixed policies at slow and fast networks.
func BenchmarkAblationAdaptive(b *testing.B) {
	for _, bw := range []float64{10, 100} {
		for _, esName := range []string{"JobLocal", "JobDataPresent", "JobAdaptive"} {
			bw, esName := bw, esName
			b.Run(fmt.Sprintf("%s/%gMBps", esName, bw), func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.ES, cfg.BandwidthMBps = esName, bw
				runCell(b, cfg)
			})
		}
	}
}

// BenchmarkAblationMultiInput exercises the multiple-input-files extension
// (paper §5.3 future work) with the winning pair.
func BenchmarkAblationMultiInput(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		n := n
		b.Run(fmt.Sprintf("inputs-%d", n), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.InputsPerJob = n
			cfg.TotalJobs = 3000 // heavier jobs; keep total work comparable
			runCell(b, cfg)
		})
	}
}

// BenchmarkAblationInformationStaleness varies the GIS snapshot age from
// oracle to five minutes.
func BenchmarkAblationInformationStaleness(b *testing.B) {
	for _, stale := range []float64{0, 30, 300} {
		stale := stale
		b.Run(fmt.Sprintf("stale-%gs", stale), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.ES = "JobLeastLoaded" // most load-information-sensitive policy
			cfg.InfoStaleness = stale
			runCell(b, cfg)
		})
	}
}

// BenchmarkAblationESMapping compares the paper's one-ES-per-site mapping
// against a central scheduler and per-user schedulers (§3).
func BenchmarkAblationESMapping(b *testing.B) {
	for _, m := range []core.ESMapping{core.ESPerSite, core.ESCentral, core.ESPerUser} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Mapping = m
			runCell(b, cfg)
		})
	}
}

// BenchmarkAblationBatchHeuristics compares the related-work centralized
// batch heuristics (§2: Min-Min/Max-Min level-by-level, Sufferage) against
// the paper's decoupled online winner.
func BenchmarkAblationBatchHeuristics(b *testing.B) {
	b.Run("online-JobDataPresent", func(b *testing.B) {
		runCell(b, core.DefaultConfig())
	})
	for _, name := range core.BatchNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.BatchES = name
			cfg.BatchWindow = 120
			runCell(b, cfg)
		})
	}
}

// BenchmarkAblationUserFocus sweeps the per-user working-set extension:
// 0 = the paper's shared community popularity, 1 = fully private sets.
func BenchmarkAblationUserFocus(b *testing.B) {
	for _, focus := range []float64{0, 0.5, 1} {
		focus := focus
		b.Run(fmt.Sprintf("focus-%g", focus), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.UserFocus = focus
			runCell(b, cfg)
		})
	}
}

// BenchmarkAblationCPUHeterogeneity breaks the paper's homogeneous-
// processor assumption with increasing per-site speed spread.
func BenchmarkAblationCPUHeterogeneity(b *testing.B) {
	for _, spread := range []float64{0, 0.25, 0.5} {
		spread := spread
		b.Run(fmt.Sprintf("spread-%g", spread), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.CPUSpreadFrac = spread
			runCell(b, cfg)
		})
	}
}

// BenchmarkAblationTieredTopology compares the paper's three-level tree
// against a four-level GriPhyN-style hierarchy with provisioned tiers,
// holding site count constant at 30.
func BenchmarkAblationTieredTopology(b *testing.B) {
	b.Run("three-level", func(b *testing.B) {
		runCell(b, core.DefaultConfig())
	})
	b.Run("four-level", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Tiers = []int{5, 3, 2} // 30 leaves at depth 3
		cfg.TierBandwidthsMBps = []float64{40, 20, 10}
		runCell(b, cfg)
	})
}

// BenchmarkAblationRegionalInfo compares global replica knowledge (oracle
// index) against the decentralized regional view ("each site takes
// informed decisions based on its view of the Grid").
func BenchmarkAblationRegionalInfo(b *testing.B) {
	for _, regional := range []bool{false, true} {
		regional := regional
		name := "global-index"
		if regional {
			name = "regional-view"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.RegionalInfo = regional
			runCell(b, cfg)
		})
	}
}

// BenchmarkAblationDSDeletion exercises the DS's "delete local files" role
// (§3) on a storage-pressured grid: proactive deletion vs pure LRU.
func BenchmarkAblationDSDeletion(b *testing.B) {
	for _, after := range []int{0, 2, 5} {
		after := after
		name := "lru-only"
		if after > 0 {
			name = fmt.Sprintf("delete-after-%d", after)
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.StorageGB = 15 // pressure the caches
			cfg.DSDeleteAfter = after
			runCell(b, cfg)
		})
	}
}

// BenchmarkAblationOutputCost un-ignores the output costs the paper's
// §5.1 drops: output = {0, 10%, 50%} of input, shipped home.
func BenchmarkAblationOutputCost(b *testing.B) {
	for _, frac := range []float64{0, 0.1, 0.5} {
		frac := frac
		b.Run(fmt.Sprintf("output-%g", frac), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.ES = "JobLeastLoaded" // jobs run remotely, so output ships
			cfg.OutputFraction = frac
			runCell(b, cfg)
		})
	}
}

// BenchmarkAblationBackbone compares the paper's uniform connectivity
// against a 10× provisioned backbone for a transfer-heavy policy.
func BenchmarkAblationBackbone(b *testing.B) {
	for _, bb := range []float64{0, 100} {
		bb := bb
		name := "uniform"
		if bb > 0 {
			name = fmt.Sprintf("backbone-%gMBps", bb)
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.ES, cfg.DS = "JobLeastLoaded", "DataDoNothing"
			cfg.BackboneMBps = bb
			runCell(b, cfg)
		})
	}
}

// BenchmarkAblationSubmissionModel compares the paper's closed model
// (immediate resubmission) against think-time and open Poisson arrivals.
func BenchmarkAblationSubmissionModel(b *testing.B) {
	models := []struct {
		name  string
		think float64
		rate  float64
	}{
		{"closed", 0, 0},
		{"think-300s", 300, 0},
		{"open-1per600s", 0, 1.0 / 600},
	}
	for _, m := range models {
		m := m
		b.Run(m.name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.ThinkTimeMean = m.think
			cfg.ArrivalRate = m.rate
			runCell(b, cfg)
		})
	}
}

// BenchmarkObservability measures the cost of the probe layer on the
// default scenario: probes-off must match the uninstrumented seed hot
// path (no sampling events are scheduled and no registry exists), and
// probes-on shows the marginal cost of sampling ~129 probes every 60
// virtual seconds. Compare the pair across BENCH_*.json entries to keep
// the "zero cost when disabled" claim measurable.
func BenchmarkObservability(b *testing.B) {
	for _, interval := range []float64{0, 60} {
		interval := interval
		name := "probes-off"
		if interval > 0 {
			name = "probes-on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.ObsInterval = interval
			var points int
			for i := 0; i < b.N; i++ {
				res, err := core.RunConfig(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Series != nil {
					points = len(res.Series.Points)
				}
			}
			b.ReportMetric(float64(points), "samples/run")
		})
	}
}

// BenchmarkTrace measures the cost of DGE event tracing on the default
// scenario: trace-off must match the uninstrumented seed hot path (the
// Discard recorder is a no-op and lifecycle events are never
// materialized), and trace-on shows the marginal cost of recording every
// submission, dispatch, transfer, and completion into an in-memory log.
// Compare the pair across BENCH_*.json entries to keep the "zero cost
// when disabled" claim measurable.
func BenchmarkTrace(b *testing.B) {
	for _, traced := range []bool{false, true} {
		traced := traced
		name := "trace-off"
		if traced {
			name = "trace-on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			var events int
			for i := 0; i < b.N; i++ {
				if traced {
					log := trace.NewLog()
					cfg.Recorder = log
					if _, err := core.RunConfig(cfg); err != nil {
						b.Fatal(err)
					}
					events = log.Len()
				} else {
					cfg.Recorder = nil
					if _, err := core.RunConfig(cfg); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(events), "events/run")
		})
	}
}

// BenchmarkRegistry measures the cost of the live metrics registry and
// watchdog on the default scenario: registry-off must match the
// uninstrumented seed hot path (every handle is a zero-value no-op and no
// obs tick is scheduled), and registry-on shows the marginal cost of
// counter hooks on the job lifecycle plus gauge syncs and invariant
// checks every 60 virtual seconds. Compare the pair across BENCH_*.json
// entries to keep the "zero cost when disabled" claim measurable.
func BenchmarkRegistry(b *testing.B) {
	for _, wired := range []bool{false, true} {
		wired := wired
		name := "registry-off"
		if wired {
			name = "registry-on"
		}
		b.Run(name, func(b *testing.B) {
			var families int
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				if wired {
					cfg.ObsInterval = 60
					cfg.Metrics = registry.New()
					cfg.Watchdog = watchdog.Fail
				}
				if _, err := core.RunConfig(cfg); err != nil {
					b.Fatal(err)
				}
				if wired {
					families = len(cfg.Metrics.Gather())
				}
			}
			b.ReportMetric(float64(families), "families")
		})
	}
}

// BenchmarkFaults measures the cost of the fault subsystem on the
// default scenario: faults-off must match the uninstrumented seed hot
// path (no injector is attached and flow tracking stays nil), and
// faults-on shows the cost of a realistically degraded grid — site
// crashes, CE failures, and transfer aborts with recovery enabled.
// Compare the pair across BENCH_*.json entries to keep the "zero cost
// when disabled" claim measurable.
func BenchmarkFaults(b *testing.B) {
	for _, faulted := range []bool{false, true} {
		faulted := faulted
		name := "faults-off"
		if faulted {
			name = "faults-on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			if faulted {
				cfg.Faults.SiteCrash = faults.Spec{MTBF: 7200, MTTR: 600}
				cfg.Faults.CEFailure = faults.Spec{MTBF: 3600, MTTR: 300}
				cfg.Faults.TransferAbort = faults.Spec{MTBF: 1800}
				cfg.Faults.RequeueOnRecovery = true
				cfg.Faults.RestoreReplicas = true
			}
			var injected int
			for i := 0; i < b.N; i++ {
				res, err := core.RunConfig(cfg)
				if err != nil {
					b.Fatal(err)
				}
				injected = res.Faults.FaultsInjected
			}
			b.ReportMetric(float64(injected), "faults/run")
		})
	}
}

// BenchmarkSim is the kernel suite's end-to-end anchor: full default-
// scenario simulations reporting events/sec (body shared with
// cmd/kernelbench, which tracks it in BENCH_kernel.json).
func BenchmarkSim(b *testing.B) { kernelbench.Sim(b) }

// BenchmarkSimScale runs the fixed 1000-site bounded-results scenario at
// three job counts (body shared with cmd/kernelbench, which tracks it in
// BENCH_scale.json). The mallocs/job metric falls toward zero as tiers
// grow because the slab job store and pooled flow records make the
// steady-state loop allocation-free; see DESIGN.md §18.
func BenchmarkSimScale(b *testing.B) {
	for _, tier := range []struct {
		name string
		jobs int
	}{{"10k", 10_000}, {"100k", 100_000}, {"1M", 1_000_000}} {
		b.Run(tier.name, kernelbench.SimScale(tier.jobs))
	}
}

// BenchmarkResultsMemory streams one million synthetic completed jobs
// through the results pipeline in each mode (body shared with
// cmd/resultsbench, which tracks it in BENCH_results_mem.json). Full
// mode's B/op and live-results-bytes grow linearly with jobs — one
// JobRecord each — while bounded mode's stay flat, the O(1) claim of
// DESIGN.md §17 as a measurement.
func BenchmarkResultsMemory(b *testing.B) {
	for _, mode := range []string{core.ResultModeFull, core.ResultModeBounded} {
		b.Run(mode, kernelbench.ResultsMemory(mode, 1_000_000))
	}
}

// BenchmarkEngineThroughput measures raw simulator performance: virtual
// events processed per wall second on the default scenario.
func BenchmarkEngineThroughput(b *testing.B) {
	cfg := core.DefaultConfig()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := core.RunConfig(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events = res.SimEvents
	}
	b.ReportMetric(float64(events), "events/run")
}

// BenchmarkWorkloadGeneration measures synthetic workload generation at
// Table 1 scale (200 datasets, 6000 jobs).
func BenchmarkWorkloadGeneration(b *testing.B) {
	cfg := core.DefaultConfig()
	spec := cfg.WorkloadSpec()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(spec, rng.New(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetricsAggregation measures Summarize over a Table 1-sized
// record set plus statistical helpers.
func BenchmarkMetricsAggregation(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.TotalJobs = 600
	sim, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	xs := make([]float64, 6000)
	for i := range xs {
		xs[i] = src.Range(100, 5000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stats.Mean(xs)
		_ = stats.StdDev(xs)
	}
}
