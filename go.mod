module chicsim

go 1.22
