// Command wlgen generates synthetic Data Grid workload traces and inspects
// them. With -hist it prints the dataset-popularity histogram — the
// reproduction of the paper's Figure 2.
package main

import (
	"flag"
	"fmt"
	"os"

	"chicsim/internal/core"
	"chicsim/internal/report"
	"chicsim/internal/rng"
	"chicsim/internal/workload"
)

func main() {
	cfg := core.DefaultConfig()
	seed := flag.Uint64("seed", 1, "random seed")
	users := flag.Int("users", cfg.Users, "number of users")
	sites := flag.Int("sites", cfg.Sites, "number of sites")
	files := flag.Int("files", cfg.Files, "number of datasets")
	jobs := flag.Int("jobs", cfg.TotalJobs, "total jobs")
	geomP := flag.Float64("geom-p", cfg.GeomP, "geometric popularity parameter")
	inputs := flag.Int("inputs", 1, "input files per job")
	out := flag.String("o", "", "write trace to this file (default: stdout unless -hist)")
	hist := flag.Bool("hist", false, "print the Figure 2 popularity histogram instead of a trace")
	ranks := flag.Int("ranks", 60, "histogram: number of dataset ranks to show")
	flag.Parse()

	spec := workload.Spec{
		Users:        *users,
		Sites:        *sites,
		Files:        *files,
		TotalJobs:    *jobs,
		MinFileBytes: cfg.MinFileGB * 1e9,
		MaxFileBytes: cfg.MaxFileGB * 1e9,
		ComputePerGB: cfg.ComputePerGB,
		Popularity:   workload.Geometric,
		GeomP:        *geomP,
		InputsPerJob: *inputs,
	}
	w, err := workload.Generate(spec, rng.New(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}

	if *hist {
		fmt.Printf("Figure 2: dataset popularity (geometric p=%g, %d jobs, first %d of %d datasets)\n",
			*geomP, *jobs, *ranks, *files)
		report.Histogram(os.Stdout, w.PopularityHistogram(), *ranks, 60)
		return
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wlgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := w.WriteTrace(dst); err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wlgen: wrote %d jobs to %s\n", w.TotalJobs(), *out)
	}
}
